package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/bounds"
	"repro/internal/beebs"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/mcc"
)

// runBounds implements the `flashram bounds` subcommand: for each
// benchmark × level cell it computes the static energy/cycle brackets of
// both the all-flash baseline and the optimized placement, simulates
// both, and verifies the analysis' defining invariant
//
//	lower ≤ simulated ≤ upper
//
// on every cell. Exits 1 on any bracket violation, or when fewer than
// -minfinite cells produce finite (non-⊤) brackets.
func runBounds(args []string) {
	fs := flag.NewFlagSet("bounds", flag.ExitOnError)
	var (
		benchName = fs.String("bench", "", "built-in BEEBS benchmark name")
		all       = fs.Bool("all", false, "bracket every built-in benchmark")
		level     = fs.String("O", "", "optimization level (default: both O2 and Os)")
		minFinite = fs.Int("minfinite", 0, "fail unless at least this many cells have finite brackets")
		jsonOut   = fs.Bool("json", false, "emit the bracket table as JSON")
		timeout   = fs.Duration("timeout", 0, "overall wall-clock budget (0 = none); SIGINT also cancels")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: flashram bounds [-bench name | -all] [flags]

Computes whole-program static energy/cycle brackets (lower and upper
bounds, no simulation needed) for the baseline and the optimized
placement of each benchmark, then simulates both and checks
lower <= simulated <= upper. Prints one row per cell with the bracket
tightness (upper / simulated); ⊤ marks a cell whose bounds analysis
could not bound some loop or call.`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	levels := []mcc.OptLevel{mcc.O2, mcc.Os}
	if *level != "" {
		lv, err := mcc.ParseOptLevel(*level)
		if err != nil {
			fatal(err)
		}
		levels = []mcc.OptLevel{lv}
	}

	var benches []*beebs.Benchmark
	switch {
	case *all:
		benches = beebs.All()
	case *benchName != "":
		b := beebs.Get(*benchName)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q (use flashram -list)", *benchName))
		}
		benches = []*beebs.Benchmark{b}
	default:
		fs.Usage()
		os.Exit(2)
	}

	ctx, stop := cliutil.Context(*timeout)
	defer stop()

	var rows []boundsRow
	violations := 0
	finite := 0
	for _, b := range benches {
		for _, lv := range levels {
			row, err := boundsCell(ctx, b, lv)
			if err != nil {
				fatal(fmt.Errorf("%s %v: %w", b.Name, lv, err))
			}
			rows = append(rows, *row)
			violations += len(row.Violations)
			if row.Baseline.Bounded && row.Optimized.Bounded {
				finite++
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("%-15s %-3s %-9s %12s %12s %12s %9s  %s\n",
			"bench", "O", "image", "lower", "simulated", "upper", "hi/sim", "loops")
		for _, r := range rows {
			printBracket(r.Bench, r.Level, "baseline", r.Baseline)
			printBracket(r.Bench, r.Level, "optimized", r.Optimized)
			for _, v := range r.Violations {
				fmt.Printf("%-15s %-3s BRACKET VIOLATION: %s\n", r.Bench, r.Level, v)
			}
		}
		fmt.Printf("finite brackets: %d/%d cells\n", finite, len(rows))
	}

	if violations > 0 {
		fmt.Fprintf(os.Stderr, "flashram bounds: %d bracket violation(s)\n", violations)
		os.Exit(1)
	}
	if finite < *minFinite {
		fmt.Fprintf(os.Stderr, "flashram bounds: only %d/%d cells have finite brackets, want >= %d\n",
			finite, len(rows), *minFinite)
		os.Exit(1)
	}
}

// bracketJSON is one image's bound-versus-simulation comparison in the
// shared CLI schema.
type bracketJSON struct {
	LowerCycles   float64 `json:"lower_cycles"`
	SimCycles     uint64  `json:"sim_cycles"`
	UpperCycles   float64 `json:"upper_cycles,omitempty"`
	LowerEnergyNJ float64 `json:"lower_energy_nj"`
	SimEnergyNJ   float64 `json:"sim_energy_nj"`
	UpperEnergyNJ float64 `json:"upper_energy_nj,omitempty"`
	Bounded       bool    `json:"bounded"`
	Reason        string  `json:"reason,omitempty"`
	Tightness     float64 `json:"tightness,omitempty"` // upper / simulated cycles
	LoopsInferred int     `json:"loops_inferred"`
	LoopsTotal    int     `json:"loops_total"`
}

type boundsRow struct {
	Bench      string      `json:"bench"`
	Level      string      `json:"level"`
	Baseline   bracketJSON `json:"baseline"`
	Optimized  bracketJSON `json:"optimized"`
	Violations []string    `json:"violations,omitempty"`
}

// boundsCell brackets and simulates both images of one benchmark × level
// cell through a shared session, collecting any bracket violations
// instead of failing fast.
func boundsCell(ctx context.Context, b *beebs.Benchmark, lv mcc.OptLevel) (*boundsRow, error) {
	prog, err := mcc.Compile(b.Source, lv)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(prog, core.SessionConfig{})
	if err != nil {
		return nil, err
	}
	row := &boundsRow{Bench: b.Name, Level: lv.String()}

	baseBr, err := sess.BaselineBounds()
	if err != nil {
		return nil, err
	}
	baseM, err := sess.Baseline(ctx)
	if err != nil {
		return nil, err
	}
	row.Baseline = newBracketJSON(baseBr, baseM.Stats.Cycles, baseM.Stats.EnergyNJ)
	if err := baseBr.Check(baseM.Stats.Cycles, baseM.Stats.EnergyNJ); err != nil {
		row.Violations = append(row.Violations, fmt.Sprintf("baseline: %v", err))
	}

	optBr, err := sess.StaticBounds(ctx, core.Options{})
	if err != nil {
		return nil, err
	}
	rep, err := sess.Optimize(ctx, core.Options{})
	if err != nil {
		return nil, err
	}
	row.Optimized = newBracketJSON(optBr, rep.Optimized.Stats.Cycles, rep.Optimized.Stats.EnergyNJ)
	if err := optBr.Check(rep.Optimized.Stats.Cycles, rep.Optimized.Stats.EnergyNJ); err != nil {
		row.Violations = append(row.Violations, fmt.Sprintf("optimized: %v", err))
	}
	return row, nil
}

func newBracketJSON(br *bounds.Result, cycles uint64, energyNJ float64) bracketJSON {
	j := bracketJSON{
		LowerCycles:   br.Whole.LoCycles,
		SimCycles:     cycles,
		LowerEnergyNJ: br.Whole.LoEnergyNJ,
		SimEnergyNJ:   energyNJ,
		Bounded:       br.Whole.Bounded,
		Reason:        br.Whole.Reason,
		LoopsInferred: br.LoopsInferred,
		LoopsTotal:    br.LoopsTotal,
	}
	if br.Whole.Bounded {
		j.UpperCycles = br.Whole.HiCycles
		j.UpperEnergyNJ = br.Whole.HiEnergyNJ
		if cycles > 0 {
			j.Tightness = br.Whole.HiCycles / float64(cycles)
		}
	}
	return j
}

func printBracket(bench, level, image string, b bracketJSON) {
	upper, tight := "⊤", "-"
	if b.Bounded {
		upper = fmt.Sprintf("%12.0f", b.UpperCycles)
		tight = fmt.Sprintf("%9.2f", b.Tightness)
	}
	fmt.Printf("%-15s %-3s %-9s %12.0f %12d %12s %9s  %d/%d\n",
		bench, level, image, b.LowerCycles, b.SimCycles, upper, tight,
		b.LoopsInferred, b.LoopsTotal)
}
