package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/bounds"
	"repro/internal/beebs"
	"repro/internal/cfg"
	"repro/internal/cliutil"
	"repro/internal/freq"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/mcc"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/transform"
)

// runAnalyze implements the `flashram analyze` subcommand: compile, place,
// transform and then lint the result with the full static-analysis suite —
// no simulation. Exits 1 when any pass reports an error diagnostic.
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	var (
		benchName = fs.String("bench", "", "built-in BEEBS benchmark name")
		srcFile   = fs.String("src", "", "mcc source file to compile")
		all       = fs.Bool("all", false, "analyze every built-in benchmark")
		level     = fs.String("O", "O2", "optimization level: O0 O1 O2 O3 Os")
		solver    = fs.String("solver", "ilp", "placement solver: ilp greedy function exhaustive")
		xlimit    = fs.Float64("xlimit", 0, "max execution-time ratio (0 = default 2.0)")
		rspare    = fs.Float64("rspare", 0, "RAM budget for code in bytes (0 = derive)")
		linktime  = fs.Bool("linktime", false, "link-time mode: library code becomes placeable")
		baseline  = fs.Bool("baseline", false, "lint the untransformed program instead")
		bounds_   = fs.Bool("bounds", false, "also run the energy-bounds pass (EB diagnostics)")
		jsonOut   = fs.Bool("json", false, "emit diagnostics as a JSON array of result objects")
		verbose   = fs.Bool("v", false, "print a per-pass summary even when clean")
		timeout   = fs.Duration("timeout", 0, "overall wall-clock budget (0 = none); SIGINT also cancels")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: flashram analyze [-bench name | -src file | -all] [flags]

Runs the placement pipeline up to the code transformation, then verifies
the result with the static-analysis suite (branch-range, instrumentation,
cfg-equivalence, memory-map, stack-depth; -bounds adds energy-bounds).
Prints one line per diagnostic (or, with -json, a JSON array of result
objects) and exits 1 if any error-severity diagnostic is found.`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	optLevel, err := mcc.ParseOptLevel(*level)
	if err != nil {
		fatal(err)
	}

	type target struct{ name, source string }
	var targets []target
	switch {
	case *all:
		for _, b := range beebs.All() {
			targets = append(targets, target{b.Name, b.Source})
		}
	case *benchName != "":
		b := beebs.Get(*benchName)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q (use flashram -list)", *benchName))
		}
		targets = []target{{b.Name, b.Source}}
	case *srcFile != "":
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			fatal(err)
		}
		targets = []target{{*srcFile, string(data)}}
	default:
		fs.Usage()
		os.Exit(2)
	}

	ctx, stop := cliutil.Context(*timeout)
	defer stop()

	failed := 0
	var docs []analysis.ResultJSON
	for _, t := range targets {
		res, err := analyzeOne(ctx, t.source, optLevel, *solver, *xlimit, *rspare, *linktime, *baseline, *bounds_)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", t.name, err))
		}
		if *jsonOut {
			docs = append(docs, analysis.NewResultJSON(t.name, optLevel.String(), res))
		} else {
			for _, d := range res.Diags {
				fmt.Printf("%s: %s\n", t.name, d)
			}
		}
		nerr := len(res.Errors())
		if nerr > 0 {
			failed++
		}
		if !*jsonOut && (*verbose || nerr > 0) {
			fmt.Printf("%s at %v: %s\n", t.name, optLevel, res.Summary())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(docs); err != nil {
			fatal(err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "flashram analyze: %d of %d program(s) failed verification\n",
			failed, len(targets))
		os.Exit(1)
	}
}

// analyzeOne runs compile → model → placement → transform → analysis for
// one source, mirroring core.Optimize without the simulations. withBounds
// appends the energy-bounds pass to the default suite — it is not a
// default pass, so the pipeline's own verification stays the 5-pass gate.
func analyzeOne(ctx context.Context, source string, level mcc.OptLevel, solver string, xlimit, rspare float64, linktime, baseline, withBounds bool) (*analysis.Result, error) {
	passes := analysis.DefaultPasses()
	if withBounds {
		passes = append(passes, bounds.Pass{})
	}
	prog, err := mcc.Compile(source, level)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(prog); err != nil {
		return nil, err
	}
	cfgLayout := layout.DefaultConfig()
	if baseline {
		return analysis.Run(&analysis.Context{Prog: prog, Config: cfgLayout}, passes...)
	}

	graphs, err := cfg.BuildAll(prog)
	if err != nil {
		return nil, err
	}
	est := freq.Static(prog, graphs)
	if rspare == 0 {
		rspare = float64(layout.SpareRAM(prog, cfgLayout))
	}
	if xlimit == 0 {
		xlimit = 2.0
	}
	ef, er := power.STM32F100().Coefficients()
	mdl, err := model.Build(prog, graphs, est, model.Params{
		EFlash: ef, ERAM: er, Rspare: rspare, Xlimit: xlimit,
		IncludeLibrary: linktime,
	})
	if err != nil {
		return nil, err
	}

	var res *placement.Result
	switch solver {
	case "ilp":
		res, err = placement.SolveILP(ctx, mdl, placement.Budget{})
	case "greedy":
		res = placement.SolveGreedy(mdl)
	case "function":
		res = placement.SolveFunctionLevel(mdl, prog)
	case "exhaustive":
		res, err = placement.SolveExhaustive(mdl, 12)
	default:
		return nil, fmt.Errorf("unknown solver %q", solver)
	}
	if err != nil {
		return nil, err
	}

	opt := prog.Clone()
	applyFn := transform.Apply
	if linktime {
		applyFn = transform.ApplyLinkTime
	}
	if _, err := applyFn(opt, res.InRAM); err != nil {
		return nil, err
	}
	return analysis.Run(&analysis.Context{
		Original: prog, Prog: opt, InRAM: res.InRAM,
		Config: cfgLayout, Rspare: rspare,
	}, passes...)
}
