package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/beebs"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/evaluation"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/power"
	"repro/internal/trace"
)

// profileDoc is the `flashram profile -json` document. The run and
// attribution sections reuse the shared schema (internal/evaluation and
// internal/trace JSON types) so beebsbench/tradeoff consumers parse the
// same field names.
type profileDoc struct {
	Bench     string                 `json:"bench"`
	Level     string                 `json:"level"`
	Solver    string                 `json:"solver"`
	Run       evaluation.RunJSON     `json:"run"`
	Baseline  trace.ProfileJSON      `json:"baseline_profile"`
	Optimized trace.ProfileJSON      `json:"optimized_profile"`
	Savers    []evaluation.SaverJSON `json:"savers"`
	ModelDiff trace.DiffJSON         `json:"model_diff"`
}

// runProfile implements the `flashram profile` subcommand: run the full
// pipeline with the energy-attribution tracer attached, then report where
// the cycles and nanojoules went — per block, function, memory and class —
// plus the before/after attribution diff and the model-vs-measured
// comparison of §6.
func runProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	var (
		benchName = fs.String("bench", "", "built-in BEEBS benchmark name")
		srcFile   = fs.String("src", "", "mcc source file to compile")
		level     = fs.String("O", "O2", "optimization level: O0 O1 O2 O3 Os")
		solver    = fs.String("solver", "ilp", "placement solver: ilp greedy function exhaustive")
		xlimit    = fs.Float64("xlimit", 0, "max execution-time ratio (0 = default 2.0)")
		rspare    = fs.Float64("rspare", 0, "RAM budget for code in bytes (0 = derive)")
		useFreq   = fs.Bool("profile", false, "use measured block frequencies instead of the static estimate")
		linktime  = fs.Bool("linktime", false, "link-time mode: library code becomes placeable")
		top       = fs.Int("top", 10, "rows per table (<= 0 shows everything)")
		outlier   = fs.Float64("outlier", 0.5, "relative model-vs-measured disagreement that flags a block")
		maxinstr  = fs.Uint64("maxinstr", 0, "per-run instruction limit (0 = simulator default)")
		asJSON    = fs.Bool("json", false, "emit one machine-readable JSON document")
		timeout   = fs.Duration("timeout", 0, "overall wall-clock budget (0 = none); SIGINT also cancels")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: flashram profile [-bench name | -src file] [flags]

Runs the placement pipeline with the cycle-level energy-attribution tracer
attached to both simulations and reports the hot blocks, the per-memory and
per-class splits, which blocks produced the energy saving, and where the
ILP cost model disagrees with the measured attribution.`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	optLevel, err := mcc.ParseOptLevel(*level)
	if err != nil {
		fatal(err)
	}

	var source, name string
	switch {
	case *benchName != "":
		b := beebs.Get(*benchName)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q (use flashram -list)", *benchName))
		}
		source, name = b.Source, b.Name
	case *srcFile != "":
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			fatal(err)
		}
		source, name = string(data), *srcFile
	default:
		fs.Usage()
		os.Exit(2)
	}

	prog, err := mcc.Compile(source, optLevel)
	if err != nil {
		fatal(err)
	}
	// The traced run comes out of a session so the -profile frequency
	// estimate shares the baseline simulation with the report itself.
	sess, err := core.NewSession(prog, core.SessionConfig{})
	if err != nil {
		fatal(err)
	}
	ctx, stop := cliutil.Context(*timeout)
	defer stop()
	rep, err := sess.Optimize(ctx, core.Options{
		Solver:     core.Solver(*solver),
		Xlimit:     *xlimit,
		Rspare:     *rspare,
		UseProfile: *useFreq,
		LinkTime:   *linktime,
		Trace:      true,
		MaxInstrs:  *maxinstr,
	})
	if err != nil {
		fatal(err)
	}

	diff := trace.ModelDiff(rep.OptimizedTrace, rep.Model, rep.Placement.InRAM,
		trace.DiffOptions{OutlierRelErr: *outlier})
	savers := rep.BlockSavings(*top)
	run := &evaluation.Run{Bench: name, Level: optLevel, Report: rep}

	if *asJSON {
		doc := profileDoc{
			Bench:     name,
			Level:     optLevel.String(),
			Solver:    *solver,
			Run:       evaluation.NewRunJSON(run),
			Baseline:  rep.BaselineTrace.JSON(*top),
			Optimized: rep.OptimizedTrace.JSON(*top),
			ModelDiff: diff.JSON(*top),
		}
		for _, s := range savers {
			doc.Savers = append(doc.Savers, evaluation.NewSaverJSON(s))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("%s at %v (%s solver)\n", name, optLevel, *solver)
	fmt.Printf("  baseline : %.4f mJ, %.3f ms, %.2f mW (%d cycles)\n",
		rep.Baseline.EnergyMJ, 1e3*rep.Baseline.TimeS, rep.Baseline.PowerMW, rep.Baseline.Cycles)
	fmt.Printf("  optimized: %.4f mJ, %.3f ms, %.2f mW (%d cycles)\n",
		rep.Optimized.EnergyMJ, 1e3*rep.Optimized.TimeS, rep.Optimized.PowerMW, rep.Optimized.Cycles)
	fmt.Printf("  change   : energy %+.1f%%, time %+.1f%%, power %+.1f%%\n",
		100*rep.EnergyChange, 100*rep.TimeChange, 100*rep.PowerChange)

	printHotBlocks("baseline", rep.BaselineTrace, *top)
	printHotBlocks("optimized", rep.OptimizedTrace, *top)
	printMemAndClass(rep.OptimizedTrace)
	printSavers(rep, savers)
	printDiff(diff, *top)
}

func printHotBlocks(which string, p *trace.Profile, top int) {
	fmt.Printf("\nhot blocks (%s run), by attributed energy:\n", which)
	fmt.Printf("  %-22s %-14s %-5s %9s %10s %7s %11s %6s\n",
		"block", "func", "mem", "entries", "cycles", "stalls", "energy(uJ)", "share")
	for _, b := range p.TopBlocks(top) {
		mem := power.Flash
		if b.InRAM {
			mem = power.RAM
		}
		share := 0.0
		if p.TotalEnergyNJ > 0 {
			share = b.EnergyNJ / p.TotalEnergyNJ
		}
		fmt.Printf("  %-22s %-14s %-5s %9d %10d %7d %11.2f %5.1f%%\n",
			b.Label, b.Func, mem, b.Entries, b.Cycles, b.StallCycles,
			b.EnergyNJ/1e3, 100*share)
	}
}

func printMemAndClass(p *trace.Profile) {
	fmt.Println("\nattribution by fetch memory and instruction class (optimized run):")
	for _, mem := range []power.Memory{power.Flash, power.RAM} {
		fmt.Printf("  %-6s %12d cycles %12.2f uJ (%5.1f%% of energy)\n",
			mem, p.ByMem[mem].Cycles, p.ByMem[mem].EnergyNJ/1e3, 100*p.MemShare(mem))
	}
	for i, c := range p.ByClass {
		if c.Instructions == 0 {
			continue
		}
		share := 0.0
		if p.TotalEnergyNJ > 0 {
			share = c.EnergyNJ / p.TotalEnergyNJ
		}
		fmt.Printf("  %-6s %12d cycles %12.2f uJ (%5.1f%% of energy)\n",
			isa.Class(i), c.Cycles, c.EnergyNJ/1e3, 100*share)
	}
}

func printSavers(rep *core.Report, savers []core.BlockSaving) {
	fmt.Println("\nwhere the saving came from (baseline → optimized attribution diff):")
	fmt.Printf("  %-22s %-14s %-5s %11s %11s %11s\n",
		"block", "func", "mem", "base(uJ)", "opt(uJ)", "saved(uJ)")
	for _, s := range savers {
		mem := "flash"
		if s.InRAM {
			mem = "ram"
		}
		fmt.Printf("  %-22s %-14s %-5s %11.2f %11.2f %+11.2f\n",
			s.Label, s.Func, mem, s.BaselineNJ/1e3, s.OptimizedNJ/1e3, s.SavedNJ/1e3)
	}
}

func printDiff(d *trace.Diff, top int) {
	fmt.Printf("\nmodel vs measured energy shares (optimized run): %d outlier block(s)\n", d.Outliers)
	fmt.Printf("  %-22s %-14s %-5s %9s %9s %9s %9s %7s\n",
		"block", "func", "mem", "meas", "pred", "Fmeas", "Fpred", "relerr")
	n := 0
	for _, b := range d.Blocks {
		if n >= top && top > 0 {
			break
		}
		flag := " "
		if b.Outlier {
			flag = "!"
		}
		mem := "flash"
		if b.InRAM {
			mem = "ram"
		}
		fmt.Printf("%s %-22s %-14s %-5s %8.1f%% %8.1f%% %9.0f %9.0f %6.0f%%\n",
			flag, b.Label, b.Func, mem, 100*b.MeasuredShare, 100*b.PredictedShare,
			b.MeasuredF, b.PredictedF, 100*b.RelErr)
		n++
	}
	if d.Outliers > 0 {
		fmt.Println("  (! = model off by more than the -outlier threshold on a significant block —")
		fmt.Println("   §6: usually the static frequency estimate missing data-dependent behaviour)")
	}
}
