// Command flashram is the one-shot driver for the flash→RAM placement
// optimization: it compiles a program (a built-in BEEBS benchmark or an
// mcc source file), runs the paper's pipeline, and reports baseline
// versus optimized energy, time and power on the simulated board.
//
// Usage:
//
//	flashram -bench int_matmult -O O2
//	flashram -src kernel.c -O Os -xlimit 1.1 -rspare 1024
//	flashram -bench crc32 -powertrace steady -ckptaware   # harvested-power replay
//	flashram -fig1
//	flashram analyze -all            # static-analysis lint, no simulation
//	flashram analyze -bench crc32 -v
//	flashram analyze -all -bounds -json  # machine-readable diagnostics
//	flashram bounds -all             # static energy brackets vs simulation
//	flashram profile -bench sha -O Os -top 5
//	flashram profile -bench crc32 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/beebs"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/evaluation"
	"repro/internal/mcc"
	"repro/internal/placement"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		runAnalyze(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "profile" {
		runProfile(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bounds" {
		runBounds(os.Args[2:])
		return
	}
	var (
		benchName = flag.String("bench", "", "built-in BEEBS benchmark name")
		srcFile   = flag.String("src", "", "mcc source file to compile")
		level     = flag.String("O", "O2", "optimization level: O0 O1 O2 O3 Os")
		solver    = flag.String("solver", "ilp", "placement solver: ilp greedy function exhaustive")
		xlimit    = flag.Float64("xlimit", 0, "max execution-time ratio (0 = default 2.0)")
		rspare    = flag.Float64("rspare", 0, "RAM budget for code in bytes (0 = derive)")
		profile   = flag.Bool("profile", false, "use measured block frequencies instead of the static estimate")
		linktime  = flag.Bool("linktime", false, "link-time mode: library code (soft-float) becomes placeable (§8 future work)")
		maxinstr  = flag.Uint64("maxinstr", 0, "per-run instruction limit (0 = simulator default)")
		ptrace    = flag.String("powertrace", "", "replay both images under injected power failures: a harvest profile (steady bursty adversarial), an inline trace spec, or @file")
		ckptCyc   = flag.Uint64("checkpoint", 0, "checkpoint interval in executed cycles for -powertrace runs (0 = default)")
		ckptAware = flag.Bool("ckptaware", false, "price per-checkpoint journal traffic of RAM residency into the placement model")
		dump      = flag.Bool("dump", false, "dump the optimized assembly")
		emit      = flag.String("emit", "", "write the encoded machine-code image to <prefix>.flash.bin and <prefix>.ram.bin")
		disasm    = flag.Bool("disasm", false, "disassemble the optimized image (encoded bytes + assembly)")
		asJSON    = flag.Bool("json", false, "emit the run as one JSON document (the schema shared with beebsbench/tradeoff and the flashramd service)")
		fig1      = flag.Bool("fig1", false, "print the Figure 1 instruction-power table and exit")
		list      = flag.Bool("list", false, "list built-in benchmarks and exit")
		timeout   = flag.Duration("timeout", 0, "overall wall-clock budget (0 = none); SIGINT also cancels")
		snodes    = flag.Int("solvenodes", 0, "branch-and-bound node budget (0 = solver default); on exhaustion the degradation ladder keeps the best answer it has")
		stimeout  = flag.Duration("solvetimeout", 0, "ILP solve wall-clock budget (0 = none); on expiry the ladder degrades instead of failing")
	)
	flag.Parse()

	if *list {
		for _, b := range beebs.All() {
			kind := "integer"
			if b.UsesFloat {
				kind = "soft-float"
			}
			fmt.Printf("%-15s %s\n", b.Name, kind)
		}
		return
	}
	ctx, stop := cliutil.Context(*timeout)
	defer stop()

	if *fig1 {
		rows, err := evaluation.NewSweep(1).Figure1(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 1: average power per instruction class (mW)")
		fmt.Printf("%-12s %-7s %8s\n", "class", "memory", "power")
		for _, r := range rows {
			fmt.Printf("%-12s %-7s %8.2f\n", r.Label, r.Mem, r.PowerMW)
		}
		return
	}

	optLevel, err := mcc.ParseOptLevel(*level)
	if err != nil {
		fatal(err)
	}

	var source, name string
	switch {
	case *benchName != "":
		b := beebs.Get(*benchName)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q (use -list)", *benchName))
		}
		source, name = b.Source, b.Name
	case *srcFile != "":
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			fatal(err)
		}
		source, name = string(data), *srcFile
	default:
		fatal(fmt.Errorf("one of -bench or -src is required"))
	}

	prog, err := mcc.Compile(source, optLevel)
	if err != nil {
		fatal(err)
	}
	// One session per invocation: with -profile the frequency estimate
	// reuses the baseline run the report measures anyway, so the program
	// is simulated twice (baseline + optimized), not three times.
	sess, err := core.NewSession(prog, core.SessionConfig{})
	if err != nil {
		fatal(err)
	}
	traceSpec := *ptrace
	if strings.HasPrefix(traceSpec, "@") {
		data, err := os.ReadFile(traceSpec[1:])
		if err != nil {
			fatal(err)
		}
		traceSpec = string(data)
	}
	rep, err := sess.Optimize(ctx, core.Options{
		Solver:           core.Solver(*solver),
		Xlimit:           *xlimit,
		Rspare:           *rspare,
		UseProfile:       *profile,
		LinkTime:         *linktime,
		MaxInstrs:        *maxinstr,
		PowerTrace:       traceSpec,
		CheckpointCycles: *ckptCyc,
		CkptAware:        *ckptAware,
		SolveMaxNodes:    *snodes,
		SolveTimeout:     *stimeout,
	})
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		// Exactly the document — and exactly the encoding — the flashramd
		// service returns for the same request, so `flashram -json` and a
		// /v1/optimize response are byte-comparable.
		doc := evaluation.NewRunJSON(&evaluation.Run{Bench: name, Level: optLevel, Report: rep})
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("%s at %v (%s solver)\n", name, optLevel, *solver)
	fmt.Printf("  baseline : %.4f mJ, %.3f ms, %.2f mW (%d cycles)\n",
		rep.Baseline.EnergyMJ, 1e3*rep.Baseline.TimeS, rep.Baseline.PowerMW, rep.Baseline.Cycles)
	fmt.Printf("  optimized: %.4f mJ, %.3f ms, %.2f mW (%d cycles)\n",
		rep.Optimized.EnergyMJ, 1e3*rep.Optimized.TimeS, rep.Optimized.PowerMW, rep.Optimized.Cycles)
	fmt.Printf("  change   : energy %+.1f%%, time %+.1f%%, power %+.1f%%\n",
		100*rep.EnergyChange, 100*rep.TimeChange, 100*rep.PowerChange)
	fmt.Printf("  placement: %d blocks (%d bytes RAM code), solver nodes %d, proven %v\n",
		len(rep.MovedLabels()), rep.Optimized.RAMCodeBytes, rep.Placement.Nodes, rep.Placement.Proven)
	if rep.Strategy != "" && rep.Strategy != placement.StrategyILPOptimal &&
		rep.Strategy != placement.StrategyWarmILPOptimal {
		fmt.Printf("  strategy : %s (%s)\n", rep.Strategy, rep.StrategyReason)
	}
	fmt.Printf("  moved    : %v\n", rep.MovedLabels())
	if ic := rep.Intermittent; ic != nil {
		j := evaluation.NewIntermittentJSON(ic)
		mode := "checkpoint-oblivious"
		if ic.CkptAware {
			mode = fmt.Sprintf("checkpoint-aware (%.3f nJ/byte)", ic.CkptNJPerByte)
		}
		fmt.Printf("  intermittent: %d outages, checkpoint every %d cycles, %s placement\n",
			ic.Outages, ic.CheckpointCycles, mode)
		fmt.Printf("    baseline : %.0f useful instr/mJ, %.3f ms to completion (%d replayed)\n",
			j.Baseline.WorkPerMJ, j.Baseline.WallMS, j.Baseline.ReplayedInstructions)
		fmt.Printf("    optimized: %.0f useful instr/mJ, %.3f ms to completion (%d replayed)\n",
			j.Optimized.WorkPerMJ, j.Optimized.WallMS, j.Optimized.ReplayedInstructions)
		fmt.Printf("    work per delivered mJ: %+.1f%%\n", 100*j.WorkChange)
	}
	if *dump {
		fmt.Println("---- optimized program ----")
		fmt.Print(rep.Optimized0.String())
	}
	if *disasm {
		lines, err := encode.Disassemble(rep.Image)
		if err != nil {
			fatal(err)
		}
		fmt.Println("---- disassembly ----")
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	if *emit != "" {
		flash, ram, err := encode.Image(rep.Image)
		if err != nil {
			fatal(err)
		}
		flashFile := *emit + ".flash.bin"
		ramFile := *emit + ".ram.bin"
		flashLen := rep.Image.FlashCodeBytes + rep.Image.RodataBytes
		if err := os.WriteFile(flashFile, flash[:flashLen], 0o644); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(ramFile, ram, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  emitted  : %s (%d bytes), %s (%d bytes of .ramcode, copied at boot)\n",
			flashFile, flashLen, ramFile, len(ram))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flashram:", err)
	os.Exit(1)
}
