// Command flashramd is the placement-as-a-service daemon: a
// long-running HTTP/JSON server wrapping the staged optimization
// pipeline (core.Session) behind a cross-request, content-addressed
// artifact store, so identical stage inputs from different requests and
// tenants are computed once and shared.
//
//	flashramd -addr :8377                 serve until SIGTERM/SIGINT
//	flashramd -selftest                   boot in-process, fire the load
//	                                      harness, print the ledger
//	flashramd -selftest -target URL -n 64 load-test a running daemon
//
// Endpoints (see README "Run as a service" for curl examples):
//
//	POST /v1/optimize  one pipeline run → the same Report JSON document
//	                   `flashram -json` emits (byte-identical)
//	POST /v1/sweep     many runs → NDJSON stream in request order
//	GET  /healthz      liveness; 503 once draining
//	GET  /statsz       request counters + hit/miss/eviction ledger
//
// On SIGTERM (or SIGINT) the daemon drains gracefully: health flips to
// 503 so load balancers stop routing here, new optimization requests
// are rejected, in-flight ones run to completion (bounded by -drain),
// and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8377", "listen address")
		workers  = flag.Int("workers", 0, "admission slots / sweep pool width (0 = GOMAXPROCS, min 2)")
		sessions = flag.Int("cache", 0, "max sessions in the cross-request store (0 = default 64)")
		reqTO    = flag.Duration("reqtimeout", 0, "default per-request deadline (0 = none; requests may set timeout_ms)")
		drain    = flag.Duration("drain", 15*time.Second, "graceful-drain bound after SIGTERM/SIGINT")

		selftest = flag.Bool("selftest", false, "run the load-test harness instead of serving")
		target   = flag.String("target", "", "selftest: load-test this base URL instead of booting in-process")
		n        = flag.Int("n", 1000, "selftest: total requests")
		conc     = flag.Int("concurrency", 0, "selftest: concurrent requests (0 = all at once)")
		asJSON   = flag.Bool("json", false, "selftest: emit the ledger as JSON")
		timeout  = flag.Duration("timeout", 0, "selftest: overall wall-clock budget (0 = none)")
	)
	flag.Parse()

	if *selftest {
		runSelftest(*target, *n, *conc, *workers, *sessions, *asJSON, *timeout)
		return
	}

	srv := service.New(service.Config{
		Workers:        *workers,
		MaxSessions:    *sessions,
		DefaultTimeout: *reqTO,
	})
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
	}

	// One shared root-context constructor with the CLIs: the signals
	// that cancel a sweep mid-figure start the daemon's drain.
	ctx, stop := cliutil.SignalContext(context.Background(), 0, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "flashramd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "flashramd: draining (up to %v)\n", *drain)
	srv.StartDrain()
	stop() // a second signal now kills the process the default way
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "flashramd: drained; served %d requests (%d ok), store %d hits / %d misses / %d evictions\n",
		st.Requests.Total, st.Requests.OK, st.Store.Hits, st.Store.Misses, st.Store.Evictions)
}

// runSelftest boots the daemon in-process (or targets a running one),
// fires the load harness, prints the ledger, and exits non-zero if the
// acceptance bar — 0 dropped, 0 non-2xx, >50% cross-request hit rate on
// the repeated mix, byte-identical cold/warm probes — is missed.
func runSelftest(target string, n, conc, workers, sessions int, asJSON bool, timeout time.Duration) {
	ctx, stop := cliutil.Context(timeout)
	defer stop()
	rep, err := service.LoadTest(ctx, service.LoadConfig{
		N:           n,
		Concurrency: conc,
		BaseURL:     target,
		Workers:     workers,
		MaxSessions: sessions,
	})
	if err != nil {
		fatal(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(rep.String())
	}
	if err := rep.Check(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flashramd:", err)
	os.Exit(1)
}
