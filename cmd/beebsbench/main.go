// Command beebsbench regenerates the paper's BEEBS evaluation:
//
//	beebsbench -fig5        Figure 5 (per-benchmark % change at O2 and Os,
//	                        with the actual-frequency dots)
//	beebsbench -aggregate   the §6 averages over O0..Os
//	beebsbench -savers      the blocks behind each benchmark's saving
//	beebsbench -casestudy   the §7 periodic-sensing numbers for fdct
//	beebsbench -fig9        Figure 9 (energy % versus period T)
//
// All selected sections run through one evaluation.Sweep, so each
// benchmark × level cell is compiled and baseline-simulated once no
// matter how many experiments revisit it. -workers N runs the benchmark
// × level sweeps across N goroutines (the output is deterministic at any
// worker count); -json emits the selected sections as one
// machine-readable document — including the session_stats reuse counters
// — using the schema shared with `flashram profile -json` and
// `tradeoff -json`.
//
// Sweeps also shard across processes: `-shard i/n` runs only the cells
// whose stable index j satisfies j%n == i and emits a mergeable JSON
// fragment; `beebsbench -merge frag0.json … fragN-1.json` validates the
// fragments form one partition and reassembles the exact unsharded
// document. Merged documents are ledger-free, so compare them against an
// unsharded `-noledger` run. `-nofuse` forces the simulator's slot-at-a-
// time dispatch (identical output, no superblock fusion — the
// differential-testing knob).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/beebs"
	"repro/internal/casestudy"
	"repro/internal/cliutil"
	"repro/internal/errs"
	"repro/internal/evaluation"
	"repro/internal/mcc"
	"repro/internal/power"
	"repro/internal/sim"
)

// document is the `beebsbench -json` output: one optional section per
// selected experiment, plus the sweep's pipeline-reuse counters (all the
// sections run through one evaluation.Sweep, so e.g. -all pays for each
// benchmark×level compile and baseline simulation once). The schema
// lives in internal/evaluation so shard fragments merge against the
// exact emitted shape.
type document = evaluation.Document

func main() {
	var (
		fig5      = flag.Bool("fig5", false, "regenerate Figure 5")
		aggregate = flag.Bool("aggregate", false, "regenerate the §6 aggregate numbers")
		savers    = flag.Bool("savers", false, "report which blocks produced each benchmark's energy saving (O2, Os)")
		study     = flag.Bool("casestudy", false, "regenerate the §7 case study")
		fig9      = flag.Bool("fig9", false, "regenerate Figure 9")
		intermit  = flag.Bool("intermittent", false, "harvested-power sweep: replay every benchmark under each harvest profile, checkpoint-oblivious and checkpoint-aware")
		sel       = flag.Bool("select", false, "pick the best configuration per benchmark (static vs profiled vs all-flash)")
		prune     = flag.Bool("prune", false, "let -select skip candidates dominated by their static energy lower bound (output-neutral; see session_stats prune counters)")
		all       = flag.Bool("all", false, "run everything")
		workers   = flag.Int("workers", 1, "benchmark sweep worker goroutines")
		top       = flag.Int("top", 3, "blocks per run in the -savers report")
		asJSON    = flag.Bool("json", false, "emit the selected sections as one JSON document")
		shardSpec = flag.String("shard", "", "run only sweep cells owned by shard `i/n` and emit a mergeable fragment (implies -json)")
		merge     = flag.Bool("merge", false, "merge the shard fragment files given as arguments into the unsharded document and exit")
		noledger  = flag.Bool("noledger", false, "omit the process ledgers (session_stats, solver_stats, wall_ms, workers) so documents are byte-comparable across runs")
		noFuse    = flag.Bool("nofuse", false, "force slot-at-a-time simulator dispatch instead of superblock fusion (identical output; differential-testing knob)")
		timeout   = flag.Duration("timeout", 0, "overall wall-clock budget (0 = none); on expiry — or SIGINT — the sweep stops and the partial document is still emitted")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to `file`")
		memProf   = flag.String("memprofile", "", "write a heap profile to `file` on exit")
	)
	flag.Parse()
	if *merge {
		if err := runMerge(flag.Args()); err != nil {
			fatal(err)
		}
		return
	}
	if !(*fig5 || *aggregate || *savers || *study || *fig9 || *intermit || *sel || *all) {
		flag.Usage()
		os.Exit(2)
	}
	var shard evaluation.Shard
	if *shardSpec != "" {
		var err error
		if shard, err = evaluation.ParseShard(*shardSpec); err != nil {
			fatal(err)
		}
		*asJSON = true
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	sw := evaluation.NewSweep(*workers)
	sw.NoFuse = *noFuse
	sw.Shard = shard
	ctx, stop := cliutil.Context(*timeout)
	defer stop()

	start := time.Now()
	var doc document
	doc.Workers = *workers
	if shard.Count > 1 {
		sections := []string{}
		addSection := func(on bool, name string) {
			if on {
				sections = append(sections, name)
			}
		}
		addSection(*fig5 || *all, "fig5")
		addSection(*aggregate || *all, "aggregate")
		addSection(*savers || *all, "savers")
		addSection(*study || *all, "casestudy")
		addSection(*fig9 || *all, "fig9")
		addSection(*intermit || *all, "intermittent")
		addSection(*sel || *all, "select")
		doc.Shard = &evaluation.ShardJSON{Index: shard.Index, Count: shard.Count, Sections: sections}
	}
	// Each selected section runs to whatever extent the context allows;
	// a failed or interrupted section contributes its partial rows and
	// an entry in doc.Errors rather than aborting the document.
	step := func(name string, f func() error) {
		if err := f(); err != nil {
			doc.Errors = append(doc.Errors, fmt.Sprintf("%s: %v", name, err))
		}
	}
	if *fig5 || *all {
		step("fig5", func() error { return runFig5(ctx, sw, *asJSON, &doc) })
	}
	if *aggregate || *all {
		step("aggregate", func() error { return runAggregate(ctx, sw, *asJSON, &doc) })
	}
	if *savers || *all {
		step("savers", func() error { return runSavers(ctx, sw, *asJSON, *top, &doc) })
	}
	if (*study || *all) && shard.Owns(0) {
		// The case study is one cell (fdct O2); it belongs to shard 0.
		step("casestudy", func() error { return runCaseStudy(ctx, sw, *asJSON, &doc) })
	}
	if *fig9 || *all {
		step("fig9", func() error { return runFig9(ctx, sw, *asJSON, &doc) })
	}
	if *intermit || *all {
		step("intermittent", func() error { return runIntermittent(ctx, sw, *asJSON, &doc) })
	}
	if *sel || *all {
		sw.Prune = *prune
		step("select", func() error { return runSelect(ctx, sw, *asJSON, &doc) })
	}
	doc.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	st := sw.Stats()
	solver := sw.SolverStats()
	if *noledger {
		doc.WallMS, doc.Workers = 0, 0
	} else {
		doc.SessionStats = &st
		doc.SolverStats = &solver
	}
	if len(doc.Errors) > 0 {
		doc.Status = "incomplete"
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("wall clock: %.0f ms with %d worker(s); %d compiles, %d stage reuses, %d simulator runs\n",
			float64(time.Since(start).Microseconds())/1e3, *workers,
			st.SessionMisses, st.Stages.Reuses(), st.Stages.SimRuns)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // material allocations only, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if len(doc.Errors) > 0 {
		for _, e := range doc.Errors {
			fmt.Fprintln(os.Stderr, "beebsbench:", e)
		}
		os.Exit(1)
	}
}

func runFig5(ctx context.Context, sw *evaluation.Sweep, asJSON bool, doc *document) error {
	rows, err := sw.Figure5(ctx, []mcc.OptLevel{mcc.O2, mcc.Os})
	if asJSON {
		doc.Fig5 = evaluation.NewFigure5JSON(rows)
		return err
	}
	fmt.Println("== Figure 5: % change per benchmark (energy, time), O2 and Os ==")
	fmt.Println("   dots: the same run with actual (profiled) block frequencies")
	fmt.Printf("%-15s %-4s %9s %9s %9s | %9s %9s\n",
		"benchmark", "lvl", "energy%", "time%", "power%", "E%(freq)", "T%(freq)")
	for _, r := range rows {
		if r.Incomplete {
			fmt.Printf("%-15s %-4v (incomplete)\n", r.Bench, r.Level)
			continue
		}
		fmt.Printf("%-15s %-4v %+8.1f%% %+8.1f%% %+8.1f%% | %+8.1f%% %+8.1f%%\n",
			r.Bench, r.Level, 100*r.EnergyChange, 100*r.TimeChange, 100*r.PowerChange,
			100*r.ProfEnergyChange, 100*r.ProfTimeChange)
	}
	fmt.Println()
	return err
}

func runAggregate(ctx context.Context, sw *evaluation.Sweep, asJSON bool, doc *document) error {
	agg, err := sw.RunAggregate(ctx, []mcc.OptLevel{mcc.O0, mcc.O1, mcc.O2, mcc.O3, mcc.Os})
	if agg == nil {
		return err
	}
	if asJSON {
		j := evaluation.NewAggregateJSON(agg)
		doc.Aggregate = &j
		return err
	}
	fmt.Println("== §6 aggregate over O0, O1, O2, O3, Os ==")
	fmt.Printf("runs: %d (10 benchmarks x 5 levels)\n", len(agg.Runs))
	if agg.IncompleteRuns > 0 {
		fmt.Printf("incomplete: %d cells failed or were cut off; means cover the completed runs only\n", agg.IncompleteRuns)
	}
	fmt.Printf("mean energy change: %+.1f%%   (paper: -7.7%%)\n", 100*agg.MeanEnergyChange)
	fmt.Printf("mean power  change: %+.1f%%   (paper: -21.9%%)\n", 100*agg.MeanPowerChange)
	fmt.Printf("mean time   change: %+.1f%%   (paper: +19.5%%)\n", 100*agg.MeanTimeChange)
	fmt.Printf("max energy saving : %.1f%% on %s  (paper: 22%% on int_matmult O2)\n",
		100*agg.MaxEnergySaving, agg.MaxEnergyBench)
	fmt.Printf("max power  saving : %.1f%% on %s  (paper: 41%% on fdct O2)\n",
		100*agg.MaxPowerSaving, agg.MaxPowerBench)
	fmt.Println()
	return err
}

func runSavers(ctx context.Context, sw *evaluation.Sweep, asJSON bool, top int, doc *document) error {
	rows, err := sw.TopSavers(ctx, []mcc.OptLevel{mcc.O2, mcc.Os}, top)
	if asJSON {
		doc.Savers = evaluation.NewSaversJSON(rows)
		return err
	}
	fmt.Println("== blocks behind each benchmark's energy saving (attribution diff) ==")
	for _, r := range rows {
		if r.Incomplete {
			fmt.Printf("%-15s %-4v (incomplete)\n", r.Bench, r.Level)
			continue
		}
		fmt.Printf("%-15s %-4v total %+0.1f%%:", r.Bench, r.Level, 100*r.Report.EnergyChange)
		for _, s := range r.Savers {
			fmt.Printf("  %s %+0.2fuJ", s.Label, s.SavedNJ/1e3)
		}
		fmt.Println()
	}
	fmt.Println()
	return err
}

func runCaseStudy(ctx context.Context, sw *evaluation.Sweep, asJSON bool, doc *document) error {
	r, err := sw.RunBenchmark(ctx, beebs.Get("fdct"), mcc.O2, evaluation.Options{})
	if err != nil {
		return err
	}
	sc := evaluation.Scenario(r)
	if asJSON {
		j := evaluation.NewScenarioJSON(sc)
		doc.CaseStudy = &j
		return nil
	}
	fmt.Println("== §7 case study: periodic sensing with the fdct active region ==")
	fmt.Printf("measured: E0 = %.4f mJ, TA = %.4f ms, ke = %.3f, kt = %.3f, PS = %.1f mW\n",
		sc.E0, 1e3*sc.TA, sc.Ke, sc.Kt, sc.PS)
	fmt.Printf("paper   : E0 = 16.9 mJ,  TA = 1180 ms,  ke = 0.825, kt = 1.33,  PS = 3.5 mW\n")
	fmt.Printf("energy saved per period Es = %.4f mJ (period independent; paper: 4.32 mJ with its values)\n",
		sc.EnergySaved())

	paper := casestudy.PaperScenario()
	fmt.Printf("with the paper's printed values our model gives Es = %.2f mJ (paper: 4.32)\n",
		paper.EnergySaved())

	mult := []float64{1, 2, 3, 4, 6, 8, 12, 16}
	saving, life := sc.BestSaving(mult)
	fmt.Printf("best saving over T sweep: %.1f%%; battery life extension %.1f%% (paper: up to 25%% / 32%%)\n",
		saving, 100*life)

	u, o := casestudy.Figure8()
	fmt.Printf("Figure 8 illustration: %.0f uJ -> %.0f uJ (paper: 60 -> 55)\n", u, o)
	fmt.Println()
	return nil
}

func runFig9(ctx context.Context, sw *evaluation.Sweep, asJSON bool, doc *document) error {
	mult := []float64{1, 2, 3, 4, 6, 8, 12, 16}
	series, err := sw.Figure9(ctx, mcc.O2, mult)
	if asJSON {
		doc.Fig9 = evaluation.NewFigure9JSON(series)
		return err
	}
	fmt.Println("== Figure 9: energy consumption (%) vs period T ==")
	fmt.Printf("%-8s", "T/TA")
	for _, s := range series {
		fmt.Printf(" %14s", s.Bench)
	}
	fmt.Println()
	for i, m := range mult {
		fmt.Printf("%-8.0f", m)
		for _, s := range series {
			fmt.Printf(" %13.1f%%", s.Points[i].EnergyPercent)
		}
		fmt.Println()
	}
	fmt.Println()
	return err
}

// runIntermittent runs the harvested-power sweep (DESIGN.md §6l): every
// benchmark at O2 and Os replayed under each harvest profile, with the
// optimized image placed both checkpoint-oblivious and checkpoint-aware.
func runIntermittent(ctx context.Context, sw *evaluation.Sweep, asJSON bool, doc *document) error {
	levels := []mcc.OptLevel{mcc.O2, mcc.Os}
	rows, err := sw.Intermittent(ctx, levels, sim.HarvestProfiles())
	if asJSON {
		doc.Intermittent = evaluation.NewIntermittentRowsJSON(rows)
		return err
	}
	fmt.Println("== harvested power: useful instructions per delivered mJ, by profile ==")
	fmt.Printf("%-15s %-4s %-12s %8s %12s %9s %9s %10s\n",
		"benchmark", "lvl", "profile", "outages", "base i/mJ", "obliv%", "aware%", "time%")
	js := evaluation.NewIntermittentRowsJSON(rows)
	for _, r := range js {
		if r.Incomplete {
			fmt.Printf("%-15s %-4s %-12s (incomplete)\n", r.Bench, r.Level, r.Profile)
			continue
		}
		fmt.Printf("%-15s %-4s %-12s %8d %12.0f %+8.1f%% %+8.1f%% %+9.1f%%\n",
			r.Bench, r.Level, r.Profile, r.Outages, r.BaselineWorkPerMJ,
			100*r.ObliviousWorkChange, 100*r.AwareWorkChange,
			100*(r.AwareTimeMS/r.BaselineTimeMS-1))
	}
	// Fold each benchmark × level's profiles into the §7-style summary.
	perCell := make(map[string][]evaluation.IntermittentRow)
	var order []string
	for _, r := range rows {
		if r.Incomplete {
			continue
		}
		key := r.Bench + " " + r.Level.String()
		if _, ok := perCell[key]; !ok {
			order = append(order, key)
		}
		perCell[key] = append(perCell[key], r)
	}
	fmt.Println("-- per-cell summary across profiles (aware placement) --")
	for _, key := range order {
		sum, serr := casestudy.SummarizeIntermittent(evaluation.Scenarios(perCell[key], power.STM32F100().ClockHz))
		if serr != nil {
			continue
		}
		fmt.Printf("%-20s mean work %+6.1f%%, best %s %+6.1f%%, worst %s %+6.1f%%\n",
			key, 100*sum.MeanWorkChange, sum.Best.Profile, 100*sum.Best.WorkChange(),
			sum.Worst.Profile, 100*sum.Worst.WorkChange())
	}
	fmt.Println()
	return err
}

// runSelect picks the lowest-energy configuration per benchmark at O2
// among the static estimate, the profiled-frequency variant, and the
// all-flash ablation (Rspare 1 byte — nothing placeable). With -prune
// the sweep consults the static energy lower bound first and skips
// candidates that provably cannot win; the winners are identical either
// way, only session_stats' prune_checked/prune_skipped move.
func runSelect(ctx context.Context, sw *evaluation.Sweep, asJSON bool, doc *document) error {
	cands := []evaluation.Candidate{
		{Name: "static", Opts: evaluation.Options{}},
		{Name: "profiled", Opts: evaluation.Options{UseProfile: true}},
		{Name: "all-flash", Opts: evaluation.Options{Rspare: 1}},
	}
	var firstErr error
	if !asJSON {
		fmt.Println("== best configuration per benchmark (O2) ==")
	}
	for i, b := range beebs.All() {
		if !sw.Shard.Owns(i) {
			continue
		}
		best, err := sw.BestConfig(ctx, b, mcc.O2, cands)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if asJSON {
			doc.Selection = append(doc.Selection, evaluation.NewBestJSON(best))
			continue
		}
		fmt.Printf("%-15s %-9s %8.1f uJ (%+.1f%%)", best.Bench, best.Winner,
			best.Report.Optimized.Stats.EnergyNJ/1e3, 100*best.Report.EnergyChange)
		for _, r := range best.Rows {
			if r.Pruned {
				fmt.Printf("  [pruned %s: bound %.1f uJ]", r.Name, r.LowerBoundNJ/1e3)
			}
		}
		fmt.Println()
	}
	if !asJSON {
		fmt.Println()
	}
	return firstErr
}

// runMerge reassembles an unsharded document from one fragment file per
// shard (evaluation.MergeShards validates they form one partition) and
// writes it to stdout with the same encoder settings as a direct run.
func runMerge(files []string) error {
	if len(files) == 0 {
		return errs.BadInput(fmt.Errorf("-merge: no fragment files given"))
	}
	frags := make([]evaluation.Document, len(files))
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return errs.BadInput(err)
		}
		if err := json.Unmarshal(data, &frags[i]); err != nil {
			return errs.BadInput(fmt.Errorf("%s: %v", f, err))
		}
	}
	doc, err := evaluation.MergeShards(frags, files)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beebsbench:", err)
	os.Exit(1)
}
