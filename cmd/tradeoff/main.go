// Command tradeoff regenerates Figure 6: the space of possible basic-block
// placements for a benchmark (energy, time, RAM of every subset of the k
// hottest blocks) and the ILP solver's choices as the RAM and time
// constraints are relaxed.
//
//	tradeoff -bench int_matmult -k 8
//	tradeoff -bench fdct -k 8 -points
//	tradeoff -bench fdct -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/evaluation"
	"repro/internal/mcc"
)

func main() {
	var (
		benchName = flag.String("bench", "int_matmult", "benchmark (Figure 6 uses int_matmult and fdct)")
		level     = flag.String("O", "O2", "optimization level")
		k         = flag.Int("k", 8, "number of hottest blocks to enumerate (2^k placements)")
		points    = flag.Bool("points", false, "dump every cloud point (mask energy cycles ram)")
		asJSON    = flag.Bool("json", false, "emit the Figure 6 dataset as JSON (cloud points included with -points)")
		cold      = flag.Bool("cold", false, "solve every constraint point from scratch (no warm starts); the output is byte-identical either way — this flag exists to prove it and to benchmark against")
		timeout   = flag.Duration("timeout", 0, "overall wall-clock budget (0 = none); on expiry — or SIGINT — the completed path points are still emitted")
	)
	flag.Parse()

	optLevel, err := mcc.ParseOptLevel(*level)
	if err != nil {
		fatal(err)
	}
	ctx, stop := cliutil.Context(*timeout)
	defer stop()
	ramSweep := []float64{0, 16, 32, 64, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 4096}
	xSweep := []float64{1.0, 1.01, 1.02, 1.05, 1.1, 1.15, 1.2, 1.3, 1.5, 2.0}
	// One Sweep → one session for the benchmark: the CFG, frequency
	// estimate and repeated constraint corners are shared across all 24
	// solve points instead of being rebuilt per point — and unless -cold
	// the solves warm-start each other down each constraint path.
	sw := evaluation.NewSweep(1)
	sw.ColdSolve = *cold
	data, err := sw.Figure6(ctx, *benchName, optLevel, *k, ramSweep, xSweep)
	if data == nil {
		fatal(err)
	}
	exitCode := 0
	if err != nil {
		// The cloud (and any completed path points) still stand; emit
		// them as an explicitly incomplete document and exit non-zero.
		exitCode = 1
		fmt.Fprintln(os.Stderr, "tradeoff:", err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		j := evaluation.NewFigure6JSON(data, optLevel.String(), *points)
		if err != nil {
			j.Status = "incomplete"
		}
		if err := enc.Encode(j); err != nil {
			fatal(err)
		}
		os.Exit(exitCode)
	}

	fmt.Printf("Figure 6 for %s at %v: 2^%d placements over blocks %v\n",
		data.Bench, optLevel, len(data.Blocks), data.Blocks)
	fmt.Printf("all-blocks-in-flash: %.1f uJ, %.0f cycles\n",
		data.BaseEnergyNJ/1e3, data.BaseCycles)

	if *points {
		fmt.Println("mask  energy(uJ)  cycles  ram(bytes)  feasible")
		for _, p := range data.Points {
			fmt.Printf("%04x %11.2f %8.0f %10.0f  %v\n",
				p.Mask, p.EnergyNJ/1e3, p.Cycles, p.RAMBytes, p.Feasible)
		}
	} else {
		// Cloud summary: bounding box and cluster count by rounding.
		minE, maxE := data.Points[0].EnergyNJ, data.Points[0].EnergyNJ
		minC, maxC := data.Points[0].Cycles, data.Points[0].Cycles
		for _, p := range data.Points {
			if p.EnergyNJ < minE {
				minE = p.EnergyNJ
			}
			if p.EnergyNJ > maxE {
				maxE = p.EnergyNJ
			}
			if p.Cycles < minC {
				minC = p.Cycles
			}
			if p.Cycles > maxC {
				maxC = p.Cycles
			}
		}
		fmt.Printf("cloud: %d points, energy %.1f..%.1f uJ, cycles %.0f..%.0f\n",
			len(data.Points), minE/1e3, maxE/1e3, minC, maxC)
	}

	fmt.Println("\nConstraining RAM (dashed line): Rspare -> chosen energy/cycles/ram")
	for _, p := range data.RAMPath {
		fmt.Printf("  %6.0f B -> %9.2f uJ  %9.0f cy  %6.0f B\n",
			p.Constraint, p.EnergyNJ/1e3, p.Cycles, p.RAMBytes)
	}
	fmt.Println("Constraining time (solid line): Xlimit -> chosen energy/cycles/ram")
	for _, p := range data.TimePath {
		fmt.Printf("  %6.2fx -> %9.2f uJ  %9.0f cy  %6.0f B\n",
			p.Constraint, p.EnergyNJ/1e3, p.Cycles, p.RAMBytes)
	}
	os.Exit(exitCode)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tradeoff:", err)
	os.Exit(1)
}
