#!/bin/sh
# check.sh — lint gate run alongside the tier-1 tests (see ROADMAP.md).
#
#   gofmt -l            all Go sources formatted
#   go vet ./...        no vet complaints
#   flashram analyze    static analysis suite clean on every BEEBS
#                       benchmark and on the examples/kernels sources,
#                       at both paper levels (O2, Os)
#   flashram bounds     static energy brackets validated against the
#                       simulator (lower <= simulated <= upper) on the
#                       full benchmark matrix, >= 15/20 cells finite
#   flashram -powertrace  harvested-power replay smoke under -race on
#                       two benchmarks, plus a determinism diff: two
#                       identical trace runs must emit identical JSON
#
# Exits non-zero on the first failure.
set -e
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l cmd internal examples bench_test.go)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...

# Sweep and service configuration must live on the Sweep/Server values,
# not in package globals — the old `evaluation.Workers` variable let two
# concurrent sweeps race on each other's worker count, and a daemon
# holding per-process mutable globals could not host two Servers in one
# test binary. Only the read-only figure1Bars table is allowed at
# package level.
globals=$(grep -n '^var ' internal/evaluation/*.go internal/service/*.go \
    | grep -v '_test.go:' | grep -v 'figure1Bars' || true)
if [ -n "$globals" ]; then
    echo "internal/evaluation or internal/service grew package-global state (put it on Sweep, Session or Server instead):" >&2
    echo "$globals" >&2
    exit 1
fi

# The solver stack threads warm state explicitly — lp.State flows
# through ilp.WarmStart, placement.Warm and core.Session's memo. A
# package-global cache there would alias tableaus across concurrent
# sessions and break the byte-identity guarantee (DESIGN.md §6j).
# Sentinel errors (`var Err...`) are the one legitimate package var.
solverGlobals=$(grep -n '^var ' internal/lp/*.go internal/ilp/*.go \
    internal/placement/*.go internal/core/*.go \
    | grep -v '_test.go:' | grep -v ':var Err' || true)
if [ -n "$solverGlobals" ]; then
    echo "solver packages grew package-global state (thread it through lp.State/ilp.WarmStart/placement.Warm instead):" >&2
    echo "$solverGlobals" >&2
    exit 1
fi

# The pipeline promises panic isolation (DESIGN.md §6g): a pathological
# cell forfeits only its own result. A naked panic() in the pipeline
# packages defeats that by design — misuse and broken invariants must
# surface as typed errors (internal/errs, or lp.ErrBadProblem at the
# solver layer) so sweeps degrade instead of dying. Tests may panic
# freely; they run under the testing harness.
panics=$(grep -n 'panic(' internal/core/*.go internal/evaluation/*.go internal/sim/*.go \
    internal/placement/*.go internal/lp/*.go internal/ilp/*.go internal/trace/*.go \
    internal/service/*.go \
    | grep -v '_test.go:' || true)
if [ -n "$panics" ]; then
    echo "pipeline packages call panic() (return a typed internal/errs error instead):" >&2
    echo "$panics" >&2
    exit 1
fi

# The simulator must dispatch through its predecoded tables, never
# through the layout map. InstrAt/byAddr reappearing in internal/sim
# means someone reintroduced a per-instruction map lookup on the hot
# path (see DESIGN.md "Simulator execution engine").
mapuse=$(grep -n 'InstrAt\|byAddr' internal/sim/*.go || true)
if [ -n "$mapuse" ]; then
    echo "internal/sim uses the layout instruction map (predecode instead):" >&2
    echo "$mapuse" >&2
    exit 1
fi

# The fused engine's whole win is that a superblock retires with zero
# map traffic: symbol/memory/block-name resolution happens once at
# SetImage time (predecode.go) and lands in the uop records and the
# dense counter arrays (DESIGN.md §6k). Any of these identifiers in
# superblock.go means a per-instruction (or per-superblock-dispatch)
# map lookup crept back into the fused path — hoist it to compile time.
fusedmaps=$(grep -n 'Symbols\[\|MemoryOf(\|BlockCounts\[' internal/sim/superblock.go || true)
if [ -n "$fusedmaps" ]; then
    echo "internal/sim/superblock.go does map lookups (resolve at SetImage/predecode time instead):" >&2
    echo "$fusedmaps" >&2
    exit 1
fi

go build -o /tmp/flashram.check ./cmd/flashram
trap 'rm -f /tmp/flashram.check' EXIT

for level in O2 Os; do
    /tmp/flashram.check analyze -all -O "$level"
    for src in examples/kernels/*.c; do
        /tmp/flashram.check analyze -src "$src" -O "$level"
    done
done

# The static energy-bounds analysis must bracket the simulator on every
# benchmark at both paper levels (lower <= simulated <= upper, checked
# for baseline and optimized images), with finite brackets on at least
# 15 of the 20 cells (DESIGN.md §6h). Default levels are O2 and Os, so
# one invocation covers the full matrix.
/tmp/flashram.check bounds -all -minfinite 15 > /dev/null

# Harvested-power fault injection (DESIGN.md §6l). Built with -race: the
# intermittent replay shares the session's memoized stages, and a data
# race there corrupts silently before it fails loudly. Two benchmarks,
# one checkpoint-aware, cover both solve paths.
go build -race -o /tmp/flashram.race ./cmd/flashram
trap 'rm -f /tmp/flashram.check /tmp/flashram.race /tmp/powertrace.a.json /tmp/powertrace.b.json' EXIT
/tmp/flashram.race -bench crc32 -powertrace steady > /dev/null
/tmp/flashram.race -bench 2dfir -powertrace bursty -ckptaware > /dev/null

# Determinism: an identical trace + configuration must reproduce the
# document byte-for-byte (the replay contract the service's ETags and
# the sharded sweeps rely on).
/tmp/flashram.check -bench 2dfir -powertrace adversarial -ckptaware -json > /tmp/powertrace.a.json
/tmp/flashram.check -bench 2dfir -powertrace adversarial -ckptaware -json > /tmp/powertrace.b.json
if ! cmp -s /tmp/powertrace.a.json /tmp/powertrace.b.json; then
    echo "powertrace determinism: two identical trace runs emitted different JSON" >&2
    diff /tmp/powertrace.a.json /tmp/powertrace.b.json >&2 || true
    exit 1
fi

echo "check.sh: all clean"
