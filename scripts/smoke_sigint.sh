#!/bin/sh
# smoke_sigint.sh — graceful-shutdown smoke test (see DESIGN.md §6g).
#
# Starts a full `beebsbench -all -json -workers 4` sweep, interrupts it
# mid-flight with SIGINT, and asserts the contract the CLIs promise on
# cancellation: the process still emits ONE syntactically valid JSON
# document, and — if the sweep really was cut short — the document says
# so (status "incomplete", a non-empty errors list, and incomplete rows
# marked rather than dropped).
#
# The test is defensive about timing: on a fast enough host the sweep may
# finish before the signal lands, in which case a complete document with
# exit status 0 is also a pass (the interesting property is "never a
# truncated or malformed document", not "always incomplete").
set -e
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/beebsbench" ./cmd/beebsbench

"$tmp/beebsbench" -all -json -workers 4 >"$tmp/out.json" 2>"$tmp/err.txt" &
pid=$!
sleep 2
kill -INT "$pid" 2>/dev/null || true
# The process must exit on its own after flushing the document; a hang
# here (wait blocking forever) is exactly the regression this guards.
status=0
wait "$pid" || status=$?

# Validate the document with a stdlib-only Go program so the smoke test
# needs nothing beyond the toolchain that built the repo.
cat >"$tmp/validate.go" <<'EOF'
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	interrupted := os.Args[2] != "0"
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "smoke_sigint:", err)
		os.Exit(1)
	}
	var doc struct {
		Status string   `json:"status"`
		Errors []string `json:"errors"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "smoke_sigint: interrupted run emitted malformed JSON: %v\n", err)
		os.Exit(1)
	}
	if !interrupted {
		if doc.Status != "" {
			fmt.Fprintf(os.Stderr, "smoke_sigint: clean exit but status = %q\n", doc.Status)
			os.Exit(1)
		}
		fmt.Println("smoke_sigint: sweep finished before the signal; complete document is valid")
		return
	}
	if doc.Status != "incomplete" {
		fmt.Fprintf(os.Stderr, "smoke_sigint: non-zero exit but status = %q, want \"incomplete\"\n", doc.Status)
		os.Exit(1)
	}
	if len(doc.Errors) == 0 {
		fmt.Fprintln(os.Stderr, "smoke_sigint: incomplete document lists no errors")
		os.Exit(1)
	}
	fmt.Printf("smoke_sigint: interrupted sweep flushed a valid partial document (%d error(s) recorded)\n", len(doc.Errors))
}
EOF
go run "$tmp/validate.go" "$tmp/out.json" "$status"
