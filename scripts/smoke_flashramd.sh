#!/bin/sh
# smoke_flashramd.sh — boots the real daemon over a real socket and
# checks the service contract end to end (see DESIGN.md §6i):
#
#   1. /healthz turns ready after boot.
#   2. Two identical /v1/optimize POSTs return byte-identical documents
#      (cold == warm), and those bytes equal what `flashram -json` prints
#      for the same request — the cross-transport byte-identity contract.
#   3. `flashramd -selftest -target <url>` drives 64 concurrent mixed
#      requests against the running daemon: 0 dropped, 0 non-2xx, a
#      nonzero cross-request hit rate (the harness exits non-zero
#      otherwise).
#   4. SIGTERM drains the daemon: it exits 0 on its own, no kill -9.
set -e
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/flashramd" ./cmd/flashramd
go build -o "$tmp/flashram" ./cmd/flashram

addr=127.0.0.1:8377
url="http://$addr"
"$tmp/flashramd" -addr "$addr" 2>"$tmp/daemon.log" &
pid=$!
# If the daemon dies early, don't hang the loop below.
trap 'kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT

ready=0
for _ in $(seq 1 50); do
    if curl -fsS "$url/healthz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.2
done
if [ "$ready" != 1 ]; then
    echo "smoke_flashramd: daemon never became healthy" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi

# Byte identity: cold == warm == CLI.
body='{"bench":"crc32","level":"O2"}'
curl -fsS -X POST -d "$body" "$url/v1/optimize" >"$tmp/cold.json"
curl -fsS -X POST -d "$body" "$url/v1/optimize" >"$tmp/warm.json"
"$tmp/flashram" -bench crc32 -O O2 -json >"$tmp/cli.json"
cmp "$tmp/cold.json" "$tmp/warm.json" || {
    echo "smoke_flashramd: warm response differs from cold" >&2
    exit 1
}
cmp "$tmp/cold.json" "$tmp/cli.json" || {
    echo "smoke_flashramd: service response differs from flashram -json" >&2
    exit 1
}

# A request-shaped failure maps to 400 and does not disturb the daemon.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"bench":"nope"}' "$url/v1/optimize")
if [ "$code" != 400 ]; then
    echo "smoke_flashramd: unknown benchmark returned $code, want 400" >&2
    exit 1
fi

# Concurrent mixed load against the live socket. The harness itself
# enforces 0 dropped / 0 non-2xx / >50% hit rate on the repeated mix.
"$tmp/flashramd" -selftest -target "$url" -n 64

# Graceful drain: SIGTERM, then the process exits 0 on its own.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" != 0 ]; then
    echo "smoke_flashramd: drain exited $status, want 0" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
grep -q 'drained' "$tmp/daemon.log" || {
    echo "smoke_flashramd: daemon log records no drain" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
}
echo "smoke_flashramd: byte identity, 400 mapping, 64-way load and graceful drain all clean"
