package trace

import (
	"math"
	"sort"

	"repro/internal/model"
)

// DiffOptions tune outlier flagging in ModelDiff.
type DiffOptions struct {
	// OutlierRelErr is the relative disagreement above which a block is
	// flagged (0 = default 0.5, i.e. the model is off by more than 50%).
	OutlierRelErr float64
	// ShareFloor suppresses noise: a block is only eligible for flagging
	// when its measured or predicted energy share is at least this
	// fraction of its run's total (0 = default 0.01).
	ShareFloor float64
}

func (o *DiffOptions) fill() {
	if o.OutlierRelErr == 0 {
		o.OutlierRelErr = 0.5
	}
	if o.ShareFloor == 0 {
		o.ShareFloor = 0.01
	}
}

// BlockDiff compares one block's measured attribution with the model's
// predicted contribution to the Eq. 1 objective under the placement.
type BlockDiff struct {
	Label string
	Func  string
	InRAM bool

	MeasuredNJ  float64 // attributed by the trace
	PredictedNJ float64 // Fb·cycles·E from the model's parameters
	MeasuredF   float64 // actual activations
	PredictedF  float64 // the model's Fb estimate

	// The static Fb estimate is a relative weight (loop-nest heuristic),
	// not an absolute execution count, so absolute energies are not
	// comparable across the two columns. The shares below normalize each
	// column by its own total; RelErr and Outlier are computed on shares,
	// flagging blocks whose relative weight the model got wrong.
	MeasuredShare  float64
	PredictedShare float64
	RelErr         float64 // |shareMeas−sharePred| / max(shareMeas,sharePred)
	Outlier        bool
}

// Diff is a full model-versus-measured comparison for one run: the §6
// discussion of where the static model mispredicts, as a report.
type Diff struct {
	Blocks []BlockDiff // sorted by absolute energy disagreement, descending

	TotalMeasuredNJ  float64
	TotalPredictedNJ float64 // equals model.Evaluate(inRAM).EnergyNJ
	Outliers         int
}

// ModelDiff compares a measured profile against the model's per-block
// predicted energy under the given placement. The prediction replays the
// objective's per-block terms: Fb·(Cb [+Tb if instrumented] [+Lb if in
// RAM])·E(memory), exactly as model.Evaluate sums them — so the diff's
// TotalPredictedNJ matches the solver's objective and each block's row
// shows which term (frequency, cycle count, memory) the model got wrong.
func ModelDiff(p *Profile, m *model.Model, inRAM map[string]bool, opts DiffOptions) *Diff {
	opts.fill()
	d := &Diff{TotalMeasuredNJ: p.TotalEnergyNJ}

	for _, bd := range m.Blocks {
		lbl := bd.Block.Label
		r := inRAM[lbl]
		instrumented := false
		for _, s := range bd.Edges {
			if inRAM[s.Label] != r {
				instrumented = true
				break
			}
		}
		cyc := bd.C
		if instrumented {
			cyc += bd.T
		}
		if r {
			cyc += bd.L
		}
		e := m.Params.EFlash
		if r {
			e = m.Params.ERAM
		}
		predicted := bd.F * cyc * e
		d.TotalPredictedNJ += predicted

		row := BlockDiff{
			Label:       lbl,
			InRAM:       r,
			PredictedNJ: predicted,
			PredictedF:  bd.F,
		}
		if bd.Block.Func != nil {
			row.Func = bd.Block.Func.Name
		}
		if mp := p.Blocks[lbl]; mp != nil {
			row.MeasuredNJ = mp.EnergyNJ
			row.MeasuredF = float64(mp.Entries)
		}
		d.Blocks = append(d.Blocks, row)
	}

	// Second pass, now that both totals are known: normalize to shares
	// and flag the blocks the model mis-weights.
	for i := range d.Blocks {
		row := &d.Blocks[i]
		if d.TotalMeasuredNJ > 0 {
			row.MeasuredShare = row.MeasuredNJ / d.TotalMeasuredNJ
		}
		if d.TotalPredictedNJ > 0 {
			row.PredictedShare = row.PredictedNJ / d.TotalPredictedNJ
		}
		scale := math.Max(row.MeasuredShare, row.PredictedShare)
		if scale > 0 {
			row.RelErr = math.Abs(row.MeasuredShare-row.PredictedShare) / scale
		}
		if row.RelErr > opts.OutlierRelErr && scale >= opts.ShareFloor {
			row.Outlier = true
			d.Outliers++
		}
	}

	sort.Slice(d.Blocks, func(i, j int) bool {
		di := math.Abs(d.Blocks[i].MeasuredShare - d.Blocks[i].PredictedShare)
		dj := math.Abs(d.Blocks[j].MeasuredShare - d.Blocks[j].PredictedShare)
		if di != dj {
			return di > dj
		}
		return d.Blocks[i].Label < d.Blocks[j].Label
	})
	return d
}
