// Package trace is the observability subsystem of the simulated board: it
// attaches to internal/sim's per-instruction observer hook and aggregates
// the event stream into an energy-attribution Profile — per basic block,
// per function, per fetch memory and per instruction class — of cycles,
// RAM-port contention stalls (the paper's Lb effect), taken-branch refill
// penalties and nanojoules.
//
// The package's load-bearing property is energy conservation: every
// nanojoule the simulator charges is attributed to exactly one block, so
// the per-block energies sum to sim.Stats.EnergyNJ (CheckConservation,
// enforced by tests on every BEEBS benchmark). On top of the measured
// profile, ModelDiff compares each block's attributed energy with the ILP
// objective's predicted contribution (the Fb·Cb·E terms of Eq. 1–2),
// turning the paper's §6 discussion of where the model mispredicts into a
// checkable report.
package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/freq"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/sim"
)

// BlockProfile is the attribution record of one basic block.
type BlockProfile struct {
	Label string
	Func  string
	InRAM bool // fetched from RAM (block residence)

	Entries      uint64 // block activations (== Stats.BlockCounts entry)
	Instructions uint64
	Cycles       uint64
	StallCycles  uint64 // RAM-port contention stalls (Lb exposure)
	TakenCycles  uint64 // cycles spent in taken control transfers (Tb exposure)
	EnergyNJ     float64
}

// FuncProfile aggregates a function's blocks.
type FuncProfile struct {
	Name         string
	Blocks       int
	Entries      uint64
	Instructions uint64
	Cycles       uint64
	StallCycles  uint64
	EnergyNJ     float64
}

// MemProfile splits the run by fetch memory.
type MemProfile struct {
	Cycles   uint64
	EnergyNJ float64
}

// ClassProfile splits the run by instruction class.
type ClassProfile struct {
	Instructions uint64
	Cycles       uint64
	EnergyNJ     float64
}

// Profile is a complete attribution of one simulated run.
type Profile struct {
	Blocks  map[string]*BlockProfile
	ByMem   [2]MemProfile // indexed by power.Flash, power.RAM
	ByClass [isa.NumClasses]ClassProfile

	TotalInstructions uint64
	TotalCycles       uint64
	TotalStalls       uint64
	TotalEnergyNJ     float64
}

// Collector implements sim.Observer and accumulates a Profile. Attach one
// to a machine with Machine.Attach before Run; a Collector must not be
// shared between machines running concurrently.
type Collector struct {
	p *Profile
	// last memoizes the current block's record: consecutive events almost
	// always hit the same block, so the map lookup is off the hot path.
	lastLabel string
	lastRec   *BlockProfile
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{p: &Profile{Blocks: make(map[string]*BlockProfile)}}
}

// Event implements sim.Observer.
func (c *Collector) Event(ev *sim.Event) {
	b := ev.Block.Block
	rec := c.lastRec
	if rec == nil || b.Label != c.lastLabel {
		rec = c.p.Blocks[b.Label]
		if rec == nil {
			rec = &BlockProfile{Label: b.Label, InRAM: ev.Block.InRAM}
			if b.Func != nil {
				rec.Func = b.Func.Name
			}
			c.p.Blocks[b.Label] = rec
		}
		c.lastLabel, c.lastRec = b.Label, rec
	}
	if ev.BlockEntry {
		rec.Entries++
	}
	rec.Instructions++
	rec.Cycles += ev.Cycles
	rec.StallCycles += ev.Stall
	rec.EnergyNJ += ev.EnergyNJ
	if ev.Taken {
		rec.TakenCycles += ev.Cycles
	}

	p := c.p
	p.TotalInstructions++
	p.TotalCycles += ev.Cycles
	p.TotalStalls += ev.Stall
	p.TotalEnergyNJ += ev.EnergyNJ
	p.ByMem[ev.FetchMem].Cycles += ev.Cycles
	p.ByMem[ev.FetchMem].EnergyNJ += ev.EnergyNJ
	p.ByClass[ev.Class].Instructions++
	p.ByClass[ev.Class].Cycles += ev.Cycles
	p.ByClass[ev.Class].EnergyNJ += ev.EnergyNJ
}

// Profile returns the collected attribution.
func (c *Collector) Profile() *Profile { return c.p }

// Entries returns per-block activation counts — the trace-side equivalent
// of sim.Stats.BlockCounts.
func (p *Profile) Entries() map[string]uint64 {
	out := make(map[string]uint64, len(p.Blocks))
	for lbl, b := range p.Blocks {
		out[lbl] = b.Entries
	}
	return out
}

// FreqEstimate converts the measured entry counts into a frequency
// estimate via the same path as freq.FromProfile, so trace-derived Fb
// values cannot diverge from the simulator-profile ones.
func (p *Profile) FreqEstimate() freq.Estimate {
	return freq.FromCounts(p.Entries())
}

// TopBlocks returns the n highest-energy blocks (all of them when n <= 0
// or exceeds the block count), sorted by attributed energy descending with
// the label as a deterministic tie-break.
func (p *Profile) TopBlocks(n int) []*BlockProfile {
	out := make([]*BlockProfile, 0, len(p.Blocks))
	for _, b := range p.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EnergyNJ != out[j].EnergyNJ {
			return out[i].EnergyNJ > out[j].EnergyNJ
		}
		return out[i].Label < out[j].Label
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Functions aggregates the block profiles by owning function, sorted by
// energy descending (name tie-break). A function's Entries sums the
// activations of all its blocks (not just the entry block), so it counts
// intra-function control flow; Blocks reports how many distinct blocks of
// the function executed.
func (p *Profile) Functions() []*FuncProfile {
	byName := make(map[string]*FuncProfile)
	for _, b := range p.Blocks {
		f := byName[b.Func]
		if f == nil {
			f = &FuncProfile{Name: b.Func}
			byName[b.Func] = f
		}
		f.Blocks++
		f.Entries += b.Entries
		f.Instructions += b.Instructions
		f.Cycles += b.Cycles
		f.StallCycles += b.StallCycles
		f.EnergyNJ += b.EnergyNJ
	}
	out := make([]*FuncProfile, 0, len(byName))
	for _, f := range byName {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EnergyNJ != out[j].EnergyNJ {
			return out[i].EnergyNJ > out[j].EnergyNJ
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ConservationTolerance is the relative tolerance of CheckConservation.
// Attribution accumulates the identical float64 additions the simulator
// makes, in the same order, so the agreement is far tighter in practice;
// 1e-6 is the contract the tests enforce.
const ConservationTolerance = 1e-6

// CheckConservation verifies the subsystem's hard invariant against the
// simulator's own accounting: attributed energy, cycles, instructions,
// stalls and block entry counts must all match the run's Stats. It returns
// nil when every quantity is conserved.
func (p *Profile) CheckConservation(st *sim.Stats) error {
	if !closeRel(p.TotalEnergyNJ, st.EnergyNJ, ConservationTolerance) {
		return fmt.Errorf("trace: energy not conserved: attributed %.9g nJ, simulated %.9g nJ",
			p.TotalEnergyNJ, st.EnergyNJ)
	}
	var blockE float64
	for _, b := range p.Blocks {
		blockE += b.EnergyNJ
	}
	if !closeRel(blockE, st.EnergyNJ, ConservationTolerance) {
		return fmt.Errorf("trace: per-block energy not conserved: Σ blocks %.9g nJ, simulated %.9g nJ",
			blockE, st.EnergyNJ)
	}
	if p.TotalCycles != st.Cycles {
		return fmt.Errorf("trace: cycles not conserved: attributed %d, simulated %d",
			p.TotalCycles, st.Cycles)
	}
	if p.TotalInstructions != st.Instructions {
		return fmt.Errorf("trace: instructions not conserved: attributed %d, simulated %d",
			p.TotalInstructions, st.Instructions)
	}
	if p.TotalStalls != st.ContentionStalls {
		return fmt.Errorf("trace: stalls not conserved: attributed %d, simulated %d",
			p.TotalStalls, st.ContentionStalls)
	}
	if len(p.Blocks) != len(st.BlockCounts) {
		return fmt.Errorf("trace: %d blocks attributed, %d in the simulator profile",
			len(p.Blocks), len(st.BlockCounts))
	}
	for lbl, n := range st.BlockCounts {
		b := p.Blocks[lbl]
		if b == nil {
			return fmt.Errorf("trace: block %s executed %d times but never attributed", lbl, n)
		}
		if b.Entries != n {
			return fmt.Errorf("trace: block %s entry count %d, simulator counted %d",
				lbl, b.Entries, n)
		}
	}
	return nil
}

// MemShare returns the fraction of energy attributed to the given fetch
// memory (0 when the run consumed no energy).
func (p *Profile) MemShare(mem power.Memory) float64 {
	if p.TotalEnergyNJ == 0 {
		return 0
	}
	return p.ByMem[mem].EnergyNJ / p.TotalEnergyNJ
}

func closeRel(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return d == 0
	}
	return d <= tol*scale
}
