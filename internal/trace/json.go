package trace

import (
	"repro/internal/isa"
	"repro/internal/power"
)

// The JSON document types below are the machine-readable form of a
// Profile and a Diff. Their field names are the stable schema shared by
// `flashram profile -json`, `beebsbench -json` and `tradeoff -json`
// (naming convention: lower snake case, explicit units suffixes — _nj,
// _mj, _ms, _mw, _bytes).

// BlockJSON is one block's attribution row.
type BlockJSON struct {
	Label        string  `json:"label"`
	Func         string  `json:"func"`
	Mem          string  `json:"mem"` // fetch memory: "flash" or "ram"
	Entries      uint64  `json:"entries"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	StallCycles  uint64  `json:"stall_cycles"`
	TakenCycles  uint64  `json:"taken_cycles"`
	EnergyNJ     float64 `json:"energy_nj"`
	EnergyShare  float64 `json:"energy_share"`
}

// MemJSON is the per-fetch-memory split.
type MemJSON struct {
	Mem      string  `json:"mem"`
	Cycles   uint64  `json:"cycles"`
	EnergyNJ float64 `json:"energy_nj"`
}

// ClassJSON is the per-instruction-class split.
type ClassJSON struct {
	Class        string  `json:"class"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	EnergyNJ     float64 `json:"energy_nj"`
}

// ProfileJSON is the machine-readable form of a Profile.
type ProfileJSON struct {
	Instructions uint64      `json:"instructions"`
	Cycles       uint64      `json:"cycles"`
	StallCycles  uint64      `json:"stall_cycles"`
	EnergyNJ     float64     `json:"energy_nj"`
	ByMem        []MemJSON   `json:"by_mem"`
	ByClass      []ClassJSON `json:"by_class"`
	Blocks       []BlockJSON `json:"blocks"` // energy-descending
}

// JSON renders the profile with its topN highest-energy blocks (<= 0
// includes every block).
func (p *Profile) JSON(topN int) ProfileJSON {
	out := ProfileJSON{
		Instructions: p.TotalInstructions,
		Cycles:       p.TotalCycles,
		StallCycles:  p.TotalStalls,
		EnergyNJ:     p.TotalEnergyNJ,
	}
	for _, mem := range []power.Memory{power.Flash, power.RAM} {
		out.ByMem = append(out.ByMem, MemJSON{
			Mem:      mem.String(),
			Cycles:   p.ByMem[mem].Cycles,
			EnergyNJ: p.ByMem[mem].EnergyNJ,
		})
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		out.ByClass = append(out.ByClass, ClassJSON{
			Class:        c.String(),
			Instructions: p.ByClass[c].Instructions,
			Cycles:       p.ByClass[c].Cycles,
			EnergyNJ:     p.ByClass[c].EnergyNJ,
		})
	}
	for _, b := range p.TopBlocks(topN) {
		row := BlockJSON{
			Label:        b.Label,
			Func:         b.Func,
			Mem:          power.Flash.String(),
			Entries:      b.Entries,
			Instructions: b.Instructions,
			Cycles:       b.Cycles,
			StallCycles:  b.StallCycles,
			TakenCycles:  b.TakenCycles,
			EnergyNJ:     b.EnergyNJ,
		}
		if b.InRAM {
			row.Mem = power.RAM.String()
		}
		if p.TotalEnergyNJ > 0 {
			row.EnergyShare = b.EnergyNJ / p.TotalEnergyNJ
		}
		out.Blocks = append(out.Blocks, row)
	}
	return out
}

// BlockDiffJSON is one row of the model-versus-measured comparison.
type BlockDiffJSON struct {
	Label          string  `json:"label"`
	Func           string  `json:"func"`
	Mem            string  `json:"mem"`
	MeasuredNJ     float64 `json:"measured_nj"`
	PredictedNJ    float64 `json:"predicted_nj"`
	MeasuredF      float64 `json:"measured_freq"`
	PredictedF     float64 `json:"predicted_freq"`
	MeasuredShare  float64 `json:"measured_share"`
	PredictedShare float64 `json:"predicted_share"`
	RelErr         float64 `json:"rel_err"`
	Outlier        bool    `json:"outlier"`
}

// DiffJSON is the machine-readable form of a Diff.
type DiffJSON struct {
	MeasuredNJ  float64         `json:"measured_nj"`
	PredictedNJ float64         `json:"predicted_nj"`
	Outliers    int             `json:"outliers"`
	Blocks      []BlockDiffJSON `json:"blocks"` // disagreement-descending
}

// JSON renders the diff with its topN most-disagreeing blocks (<= 0
// includes every block).
func (d *Diff) JSON(topN int) DiffJSON {
	out := DiffJSON{
		MeasuredNJ:  d.TotalMeasuredNJ,
		PredictedNJ: d.TotalPredictedNJ,
		Outliers:    d.Outliers,
	}
	rows := d.Blocks
	if topN > 0 && topN < len(rows) {
		rows = rows[:topN]
	}
	for _, b := range rows {
		row := BlockDiffJSON{
			Label:          b.Label,
			Func:           b.Func,
			Mem:            power.Flash.String(),
			MeasuredNJ:     b.MeasuredNJ,
			PredictedNJ:    b.PredictedNJ,
			MeasuredF:      b.MeasuredF,
			PredictedF:     b.PredictedF,
			MeasuredShare:  b.MeasuredShare,
			PredictedShare: b.PredictedShare,
			RelErr:         b.RelErr,
			Outlier:        b.Outlier,
		}
		if b.InRAM {
			row.Mem = power.RAM.String()
		}
		out.Blocks = append(out.Blocks, row)
	}
	return out
}
