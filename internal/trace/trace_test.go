package trace_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/beebs"
	"repro/internal/evaluation"
	"repro/internal/freq"
	"repro/internal/layout"
	"repro/internal/mcc"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestConservationAllBenchmarks is the subsystem's hard invariant, checked
// at the paper's two headline levels on every BEEBS benchmark: every
// nanojoule (and cycle, and instruction) the simulator charges must land
// in exactly one block of the attribution, within ConservationTolerance
// relative error for the float energy sums and exactly for the integer
// quantities. It also pins the two profiled-frequency paths together:
// entry counts must equal the simulator's own BlockCounts, and an Estimate
// built from the trace must match freq.FromProfile.
func TestConservationAllBenchmarks(t *testing.T) {
	for _, bench := range beebs.All() {
		for _, level := range []mcc.OptLevel{mcc.O2, mcc.Os} {
			t.Run(bench.Name+"/"+level.String(), func(t *testing.T) {
				r, err := evaluation.RunBenchmark(bench, level, evaluation.Options{Trace: true})
				if err != nil {
					t.Fatal(err)
				}
				rep := r.Report
				if err := rep.BaselineTrace.CheckConservation(rep.Baseline.Stats); err != nil {
					t.Errorf("baseline: %v", err)
				}
				if err := rep.OptimizedTrace.CheckConservation(rep.Optimized.Stats); err != nil {
					t.Errorf("optimized: %v", err)
				}

				if got, want := rep.BaselineTrace.Entries(), rep.Baseline.Stats.BlockCounts; !reflect.DeepEqual(got, want) {
					t.Errorf("baseline entry counts diverge from Stats.BlockCounts:\n got %v\nwant %v", got, want)
				}
				if got, want := rep.OptimizedTrace.Entries(), rep.Optimized.Stats.BlockCounts; !reflect.DeepEqual(got, want) {
					t.Errorf("optimized entry counts diverge from Stats.BlockCounts:\n got %v\nwant %v", got, want)
				}

				fromTrace := rep.BaselineTrace.FreqEstimate()
				fromStats := freq.FromProfile(rep.Baseline.Stats)
				if !reflect.DeepEqual(fromTrace, fromStats) {
					t.Errorf("freq estimate from trace diverges from freq.FromProfile:\n got %v\nwant %v",
						fromTrace, fromStats)
				}
			})
		}
	}
}

// compileAndLoad builds a fresh machine for the benchmark with everything
// in flash.
func compileAndLoad(t *testing.T, name string, level mcc.OptLevel) *sim.Machine {
	t.Helper()
	prog, err := mcc.Compile(beebs.Get(name).Source, level)
	if err != nil {
		t.Fatal(err)
	}
	img, err := layout.New(prog, layout.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(img, power.STM32F100())
}

// TestObserverDoesNotChangeStats runs the same image with and without a
// collector attached and requires bit-identical statistics: the hook must
// observe the simulation, never perturb it.
func TestObserverDoesNotChangeStats(t *testing.T) {
	plain := compileAndLoad(t, "crc32", mcc.O2)
	st1, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	traced := compileAndLoad(t, "crc32", mcc.O2)
	col := trace.NewCollector()
	traced.Attach(col)
	st2, err := traced.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(st1, st2) {
		t.Errorf("attaching an observer changed the run:\nplain  %+v\ntraced %+v", st1, st2)
	}
	if err := col.Profile().CheckConservation(st2); err != nil {
		t.Error(err)
	}
}

// TestProfileShape sanity-checks the aggregate views of one traced run.
func TestProfileShape(t *testing.T) {
	m := compileAndLoad(t, "int_matmult", mcc.O2)
	col := trace.NewCollector()
	m.Attach(col)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := col.Profile()

	// Everything ran from flash, so the RAM bucket must be empty and the
	// flash share must be 1.
	if p.ByMem[power.RAM].Cycles != 0 {
		t.Errorf("all-flash run attributed %d cycles to RAM fetches", p.ByMem[power.RAM].Cycles)
	}
	if got := p.MemShare(power.Flash); math.Abs(got-1) > 1e-12 {
		t.Errorf("flash energy share = %v, want 1", got)
	}

	// Class cycles must add back up to the total.
	var classCycles uint64
	for _, c := range p.ByClass {
		classCycles += c.Cycles
	}
	if classCycles != st.Cycles {
		t.Errorf("per-class cycles sum to %d, machine counted %d", classCycles, st.Cycles)
	}

	// TopBlocks must be energy-sorted and bounded.
	top := p.TopBlocks(5)
	if len(top) > 5 {
		t.Errorf("TopBlocks(5) returned %d rows", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].EnergyNJ > top[i-1].EnergyNJ {
			t.Errorf("TopBlocks not sorted: %q (%v nJ) after %q (%v nJ)",
				top[i].Label, top[i].EnergyNJ, top[i-1].Label, top[i-1].EnergyNJ)
		}
	}

	// Function rows must cover the same instruction total.
	var fnInstrs uint64
	for _, f := range p.Functions() {
		fnInstrs += f.Instructions
	}
	if fnInstrs != st.Instructions {
		t.Errorf("per-function instructions sum to %d, machine counted %d", fnInstrs, st.Instructions)
	}
}

// TestFaultNamesBlockAndFunc forces an instruction-limit fault and checks
// the diagnostic carries the current block and function.
func TestFaultNamesBlockAndFunc(t *testing.T) {
	m := compileAndLoad(t, "crc32", mcc.O2)
	m.MaxInstrs = 100
	_, err := m.Run()
	if err == nil {
		t.Fatal("expected an instruction-limit fault")
	}
	var f *sim.Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected *sim.Fault, got %T: %v", err, err)
	}
	if f.Block == "" || f.Func == "" {
		t.Errorf("fault does not name its location: %v", err)
	}
}
