package placement

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/freq"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/power"
)

func buildModel(t *testing.T, p *ir.Program, rspare float64, xlimit float64) *model.Model {
	t.Helper()
	gs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatal(err)
	}
	est := freq.Static(p, gs)
	ef, er := power.STM32F100().Coefficients()
	m, err := model.Build(p, gs, est, model.Params{
		EFlash: ef, ERAM: er, Rspare: rspare, Xlimit: xlimit,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestILPPicksClusteredPlacement(t *testing.T) {
	// On Figure 2 with a generous budget, the ILP should move the hot
	// loop together with neighbours to avoid instrumenting the loop —
	// never the loop alone.
	p := ir.Figure2Program()
	m := buildModel(t, p, 2048, 2.0)
	res, err := SolveILP(context.Background(), m, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Error("small instance must be proven optimal")
	}
	if !res.InRAM["fn_loop"] {
		t.Fatalf("ILP did not move the hot loop: %v", res.InRAM)
	}
	// The loop must not be the lone RAM block: instrumenting it costs
	// F·T energy at every iteration.
	loopOnly := m.Evaluate(map[string]bool{"fn_loop": true})
	if res.Outcome.EnergyNJ >= loopOnly.EnergyNJ {
		t.Errorf("ILP outcome %v nJ not better than naive loop-only %v nJ",
			res.Outcome.EnergyNJ, loopOnly.EnergyNJ)
	}
	if res.Outcome.EnergyNJ >= m.BaseEnergyNJ {
		t.Error("ILP placement does not save energy at all")
	}
}

func TestILPMatchesExhaustiveFigure2(t *testing.T) {
	p := ir.Figure2Program()
	for _, cfgCase := range []struct {
		rspare float64
		xlimit float64
	}{
		{2048, 2.0}, {2048, 1.05}, {24, 2.0}, {0, 2.0}, {60, 1.2},
	} {
		m := buildModel(t, p, cfgCase.rspare, cfgCase.xlimit)
		got, err := SolveILP(context.Background(), m, Budget{})
		if err != nil {
			t.Fatalf("rspare=%v xlimit=%v: %v", cfgCase.rspare, cfgCase.xlimit, err)
		}
		want, err := SolveExhaustive(m, 6)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Outcome.EnergyNJ-want.Outcome.EnergyNJ) > 1e-6 {
			t.Errorf("rspare=%v xlimit=%v: ILP %v nJ != exhaustive %v nJ (ILP=%v, exh=%v)",
				cfgCase.rspare, cfgCase.xlimit,
				got.Outcome.EnergyNJ, want.Outcome.EnergyNJ, got.InRAM, want.InRAM)
		}
		if !got.Outcome.Feasible {
			t.Errorf("ILP returned infeasible placement")
		}
	}
}

// randomProgram builds a random but well-formed single-function program
// with loops, for fuzzing ILP-vs-exhaustive.
func randomProgram(rng *rand.Rand, nBlocks int) *ir.Program {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	for i := 0; i < nBlocks; i++ {
		f.AddBlock(blockName(i))
	}
	for i, b := range f.Blocks {
		bb := ir.Build(b)
		// Random amount of straight-line work.
		for n := rng.Intn(6); n > 0; n-- {
			switch rng.Intn(3) {
			case 0:
				bb.AddImm(isa.R0, isa.R0, 1)
			case 1:
				bb.Mul(isa.R1, isa.R1, isa.R1)
			case 2:
				bb.LdrLit(isa.R2, "g")
			}
		}
		if i == nBlocks-1 {
			bb.Ret()
			continue
		}
		switch rng.Intn(3) {
		case 0:
			// fall through
		case 1:
			// backward conditional branch (creates loops)
			bb.CmpImm(isa.R0, 3).Bcond(isa.NE, blockName(rng.Intn(i+1)))
		case 2:
			bb.CmpImm(isa.R0, 7).Bcond(isa.LT, blockName(rng.Intn(nBlocks)))
		}
	}
	p.AddGlobal(&ir.Global{Name: "g", Size: 4})
	p.Reindex()
	return p
}

func blockName(i int) string {
	return "blk" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func TestILPMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		p := randomProgram(rng, 3+rng.Intn(6))
		rspare := float64(rng.Intn(120))
		xlimit := 1.0 + rng.Float64()
		m := buildModel(t, p, rspare, xlimit)
		got, err := SolveILP(context.Background(), m, Budget{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := SolveExhaustive(m, 8)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Outcome.EnergyNJ > want.Outcome.EnergyNJ+1e-6 {
			t.Fatalf("trial %d (rspare=%.0f xlimit=%.2f): ILP %v nJ worse than exhaustive %v nJ\nILP: %v\nexh: %v",
				trial, rspare, xlimit, got.Outcome.EnergyNJ, want.Outcome.EnergyNJ,
				got.InRAM, want.InRAM)
		}
	}
}

func TestGreedyNeverBeatsILP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		p := randomProgram(rng, 3+rng.Intn(6))
		m := buildModel(t, p, float64(20+rng.Intn(150)), 1.0+rng.Float64())
		ilpRes, err := SolveILP(context.Background(), m, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		greedy := SolveGreedy(m)
		if greedy.Outcome.EnergyNJ < ilpRes.Outcome.EnergyNJ-1e-6 {
			t.Fatalf("trial %d: greedy %v nJ beats ILP %v nJ",
				trial, greedy.Outcome.EnergyNJ, ilpRes.Outcome.EnergyNJ)
		}
		if !greedy.Outcome.Feasible {
			t.Fatalf("trial %d: greedy produced infeasible placement", trial)
		}
	}
}

func TestFunctionLevelCoarserThanILP(t *testing.T) {
	p := ir.Figure2Program()
	// Budget too small for the whole fn function (24 bytes + main's call
	// instrumentation) but enough for its hot blocks: function-level
	// placement must strand the saving.
	m := buildModel(t, p, 20, 2.0)
	fl := SolveFunctionLevel(m, p)
	il, err := SolveILP(context.Background(), m, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Outcome.EnergyNJ < il.Outcome.EnergyNJ-1e-6 {
		t.Errorf("function-level %v nJ beats ILP %v nJ", fl.Outcome.EnergyNJ, il.Outcome.EnergyNJ)
	}
	if len(fl.InRAM) != 0 {
		t.Errorf("20-byte budget cannot fit a whole function, got %v", fl.InRAM)
	}
	if len(il.InRAM) == 0 {
		t.Error("ILP should fit individual blocks in 20 bytes")
	}
}

func TestZeroBudgetYieldsAllFlash(t *testing.T) {
	p := ir.Figure2Program()
	m := buildModel(t, p, 0, 2.0)
	for _, solve := range []func() (*Result, error){
		func() (*Result, error) { return SolveILP(context.Background(), m, Budget{}) },
		func() (*Result, error) { return SolveGreedy(m), nil },
		func() (*Result, error) { return SolveFunctionLevel(m, p), nil },
		func() (*Result, error) { return SolveExhaustive(m, 6) },
	} {
		res, err := solve()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.InRAM) != 0 {
			t.Errorf("%s: zero budget placed blocks: %v", res.Method, res.InRAM)
		}
		if math.Abs(res.Outcome.EnergyNJ-m.BaseEnergyNJ) > 1e-9 {
			t.Errorf("%s: zero-budget energy %v != base %v", res.Method, res.Outcome.EnergyNJ, m.BaseEnergyNJ)
		}
	}
}

func TestEnumerateCloud(t *testing.T) {
	p := ir.Figure2Program()
	m := buildModel(t, p, 2048, 10.0)
	points, blocks, err := Enumerate(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1<<len(blocks) {
		t.Fatalf("points = %d, want 2^%d", len(points), len(blocks))
	}
	// Mask 0 is the all-flash base case.
	if points[0].EnergyNJ != m.BaseEnergyNJ || points[0].RAMBytes != 0 {
		t.Errorf("mask 0 = %+v, want base case", points[0])
	}
	// Energy and time must both vary across the cloud.
	minE, maxE := math.Inf(1), math.Inf(-1)
	for _, pt := range points {
		minE = math.Min(minE, pt.EnergyNJ)
		maxE = math.Max(maxE, pt.EnergyNJ)
	}
	if minE == maxE {
		t.Error("trade-off cloud is degenerate")
	}
}

func TestEnumerateRefusesLargeK(t *testing.T) {
	p := randomProgram(rand.New(rand.NewSource(1)), 30)
	m := buildModel(t, p, 2048, 2.0)
	if _, _, err := Enumerate(m, 25); err == nil {
		t.Error("expected refusal for k=25")
	}
}

func TestTopBlocksOrdering(t *testing.T) {
	p := ir.Figure2Program()
	m := buildModel(t, p, 2048, 2.0)
	top := TopBlocks(m, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d, want 3", len(top))
	}
	if top[0].Block.Label != "fn_loop" {
		t.Errorf("hottest block = %s, want fn_loop", top[0].Block.Label)
	}
	for i := 1; i < len(top); i++ {
		if top[i].F*top[i].C > top[i-1].F*top[i-1].C {
			t.Error("TopBlocks not sorted by F·C")
		}
	}
}
