// Package placement selects the set R of basic blocks to move into RAM.
// The paper's solver is the ILP (internal/model + internal/ilp); three
// alternatives exist for evaluation and ablation:
//
//   - Greedy: knapsack-style density heuristic with no clustering
//     awareness — it cannot see that moving a cheap joining block removes
//     the need to instrument a hot one (§4's motivation for the ILP).
//   - FunctionLevel: whole functions only, the granularity of earlier
//     scratchpad work the paper improves upon.
//   - Exhaustive: the true optimum over the top-k hottest blocks, used to
//     validate the ILP and to generate Figure 6's solution clouds.
package placement

import (
	"fmt"
	"sort"

	"repro/internal/ilp"
	"repro/internal/ir"
	"repro/internal/model"
)

// Result is a chosen placement and its model-predicted outcome.
type Result struct {
	Method  string
	InRAM   map[string]bool
	Outcome model.Outcome
	// Nodes is the number of LP relaxations solved (ILP method only).
	Nodes int
	// Proven is true when the solver proved optimality.
	Proven bool
}

// SolveILP runs the paper's formulation through branch and bound.
func SolveILP(m *model.Model) (*Result, error) {
	prob, vars := m.BuildILP()
	binaries := make([]int, 0, len(vars.R))
	for _, j := range vars.R {
		binaries = append(binaries, j)
	}
	sort.Ints(binaries)
	solver := &ilp.Solver{
		Base:     prob,
		Binaries: binaries,
		Rounder:  m.Rounder(vars),
	}
	res, err := solver.Solve()
	if err != nil {
		return nil, fmt.Errorf("placement: ilp solve: %w", err)
	}
	switch res.Status {
	case ilp.Infeasible:
		// Rspare/Xlimit leave no room: the all-flash placement is the
		// answer (it is always feasible for Xlimit ≥ 1).
		empty := map[string]bool{}
		return &Result{Method: "ilp", InRAM: empty, Outcome: m.Evaluate(empty), Proven: true}, nil
	case ilp.Unbounded:
		return nil, fmt.Errorf("placement: ilp relaxation unbounded (model bug)")
	}
	inRAM := m.PlacementFromX(vars, res.X)
	return &Result{
		Method:  "ilp",
		InRAM:   inRAM,
		Outcome: m.Evaluate(inRAM),
		Nodes:   res.Nodes,
		Proven:  res.Status == ilp.Optimal,
	}, nil
}

// SolveGreedy picks blocks by saving density F·C·(EFlash−ERAM)/S until
// the budget or time limit stops it. It re-evaluates feasibility with the
// full model after each tentative addition, but it never reconsiders —
// no clustering, no backtracking.
func SolveGreedy(m *model.Model) *Result {
	type cand struct {
		label   string
		density float64
	}
	var cands []cand
	for _, bd := range m.Blocks {
		if !bd.Movable || bd.S == 0 {
			continue
		}
		saving := bd.F * bd.C * (m.Params.EFlash - m.Params.ERAM)
		cands = append(cands, cand{bd.Block.Label, saving / bd.S})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].density != cands[j].density {
			return cands[i].density > cands[j].density
		}
		return cands[i].label < cands[j].label
	})

	inRAM := map[string]bool{}
	best := m.Evaluate(inRAM)
	for _, c := range cands {
		inRAM[c.label] = true
		out := m.Evaluate(inRAM)
		if !out.Feasible || out.EnergyNJ >= best.EnergyNJ {
			delete(inRAM, c.label)
			continue
		}
		best = out
	}
	return &Result{Method: "greedy", InRAM: inRAM, Outcome: best, Proven: false}
}

// SolveFunctionLevel moves whole functions, greedily by density — the
// granularity of classic scratchpad allocation (e.g. Steinke et al. on
// full objects). Functions with any unmovable block are skipped.
func SolveFunctionLevel(m *model.Model, p *ir.Program) *Result {
	type fcand struct {
		name    string
		labels  []string
		density float64
	}
	var cands []fcand
	for _, f := range p.Funcs {
		if f.Library || len(f.Blocks) == 0 {
			continue
		}
		var labels []string
		saving, size := 0.0, 0.0
		movable := true
		for _, b := range f.Blocks {
			bd := m.Data(b.Label)
			if bd == nil || !bd.Movable {
				movable = false
				break
			}
			labels = append(labels, b.Label)
			saving += bd.F * bd.C * (m.Params.EFlash - m.Params.ERAM)
			size += bd.S
		}
		if !movable || size == 0 {
			continue
		}
		cands = append(cands, fcand{f.Name, labels, saving / size})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].density != cands[j].density {
			return cands[i].density > cands[j].density
		}
		return cands[i].name < cands[j].name
	})

	inRAM := map[string]bool{}
	best := m.Evaluate(inRAM)
	for _, c := range cands {
		for _, lbl := range c.labels {
			inRAM[lbl] = true
		}
		out := m.Evaluate(inRAM)
		if !out.Feasible || out.EnergyNJ >= best.EnergyNJ {
			for _, lbl := range c.labels {
				delete(inRAM, lbl)
			}
			continue
		}
		best = out
	}
	return &Result{Method: "function", InRAM: inRAM, Outcome: best, Proven: false}
}

// TopBlocks returns the k hottest movable blocks by F·C.
func TopBlocks(m *model.Model, k int) []*model.BlockData {
	var movable []*model.BlockData
	for _, bd := range m.Blocks {
		if bd.Movable {
			movable = append(movable, bd)
		}
	}
	sort.Slice(movable, func(i, j int) bool {
		wi, wj := movable[i].F*movable[i].C, movable[j].F*movable[j].C
		if wi != wj {
			return wi > wj
		}
		return movable[i].Block.Label < movable[j].Block.Label
	})
	if len(movable) > k {
		movable = movable[:k]
	}
	return movable
}

// Point is one placement in the Figure 6 trade-off cloud.
type Point struct {
	Mask     int
	EnergyNJ float64
	Cycles   float64
	RAMBytes float64
	Feasible bool
}

// Enumerate evaluates every subset of the top-k hottest blocks under the
// model (2^k points) — the "possible choices" cloud of Figure 6.
func Enumerate(m *model.Model, k int) ([]Point, []*model.BlockData, error) {
	blocks := TopBlocks(m, k)
	if len(blocks) > 20 {
		return nil, nil, fmt.Errorf("placement: refusing to enumerate 2^%d placements", len(blocks))
	}
	points := make([]Point, 0, 1<<len(blocks))
	for mask := 0; mask < 1<<len(blocks); mask++ {
		inRAM := map[string]bool{}
		for i, bd := range blocks {
			if mask&(1<<i) != 0 {
				inRAM[bd.Block.Label] = true
			}
		}
		out := m.Evaluate(inRAM)
		points = append(points, Point{
			Mask:     mask,
			EnergyNJ: out.EnergyNJ,
			Cycles:   out.Cycles,
			RAMBytes: out.RAMBytes,
			Feasible: out.Feasible,
		})
	}
	return points, blocks, nil
}

// SolveExhaustive finds the true model optimum over subsets of the top-k
// hottest blocks; the validation oracle for SolveILP.
func SolveExhaustive(m *model.Model, k int) (*Result, error) {
	points, blocks, err := Enumerate(m, k)
	if err != nil {
		return nil, err
	}
	bestIdx := -1
	for i, pt := range points {
		if !pt.Feasible {
			continue
		}
		if bestIdx < 0 || pt.EnergyNJ < points[bestIdx].EnergyNJ {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		empty := map[string]bool{}
		return &Result{Method: "exhaustive", InRAM: empty, Outcome: m.Evaluate(empty), Proven: true}, nil
	}
	inRAM := map[string]bool{}
	for i, bd := range blocks {
		if points[bestIdx].Mask&(1<<i) != 0 {
			inRAM[bd.Block.Label] = true
		}
	}
	return &Result{Method: "exhaustive", InRAM: inRAM, Outcome: m.Evaluate(inRAM), Proven: true}, nil
}
