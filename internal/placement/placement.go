// Package placement selects the set R of basic blocks to move into RAM.
// The paper's solver is the ILP (internal/model + internal/ilp); three
// alternatives exist for evaluation and ablation:
//
//   - Greedy: knapsack-style density heuristic with no clustering
//     awareness — it cannot see that moving a cheap joining block removes
//     the need to instrument a hot one (§4's motivation for the ILP).
//   - FunctionLevel: whole functions only, the granularity of earlier
//     scratchpad work the paper improves upon.
//   - Exhaustive: the true optimum over the top-k hottest blocks, used to
//     validate the ILP and to generate Figure 6's solution clouds.
package placement

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/errs"
	"repro/internal/ilp"
	"repro/internal/ir"
	"repro/internal/lp"
	"repro/internal/model"
)

// Strategy names for Result.Strategy: the five rungs of the degradation
// ladder plus the explicitly chosen baselines.
const (
	// StrategyILPOptimal: the exact branch-and-bound solve finished
	// within budget and proved its placement optimal.
	StrategyILPOptimal = "ilp-optimal"
	// StrategyWarmILPOptimal: same proven-optimal outcome, but reached
	// while genuinely consuming warm state carried from a neighboring
	// solve (accepted incumbent, carried bound, or warm-started root).
	// The placement itself is byte-identical to the cold solve's; only
	// the provenance differs.
	StrategyWarmILPOptimal = "warm-ilp-optimal"
	// StrategyILPIncumbent: a budget tripped mid-search; the best
	// branch-and-bound incumbent was kept.
	StrategyILPIncumbent = "ilp-incumbent"
	// StrategyLPRounding: only the root LP relaxation was affordable;
	// the placement is its rounded solution.
	StrategyLPRounding = "lp-rounding"
	// StrategyGreedy: the LP itself was out of budget; the density
	// heuristic (SolveGreedy) answered.
	StrategyGreedy = "greedy"
	// StrategyIdentity: no solver could run (the solve deadline had
	// already expired); nothing is moved to RAM.
	StrategyIdentity = "identity"
	// StrategyFunction is SolveFunctionLevel chosen explicitly.
	StrategyFunction = "function"
	// StrategyExhaustive is SolveExhaustive chosen explicitly.
	StrategyExhaustive = "exhaustive"
)

// Result is a chosen placement and its model-predicted outcome.
type Result struct {
	Method  string
	InRAM   map[string]bool
	Outcome model.Outcome
	// Nodes is the number of LP relaxations solved (ILP method only).
	Nodes int
	// Proven is true when the solver proved optimality.
	Proven bool
	// Strategy names the ladder rung (or explicit solver) that produced
	// this placement; one of the Strategy* constants.
	Strategy string
	// StrategyReason explains a degradation (e.g. "node budget 4
	// exhausted"); empty when the top rung answered. The text is
	// deterministic — no wall-clock numbers — so identical budgets
	// produce byte-identical results.
	StrategyReason string
	// Warm is the reusable solve state this result donates to a
	// neighboring solve of the same program at different constraint
	// bounds. Non-nil only on proven-optimal ILP results.
	Warm *Warm
	// WarmUse records which carried warm ingredients this solve actually
	// consumed (all false on a cold solve).
	WarmUse WarmUse
}

// Warm is reusable solve state carried between ILP solves of the same
// model family — identical blocks, edges and energy parameters, varying
// only the Rspare/Xlimit constraint bounds (the Figure 6 sweeps). The
// monotonicity rule governs reuse:
//
//   - The donor's optimal placement is always worth OFFERING as a
//     starting incumbent; the receiver admits it only if it is feasible
//     under ITS bounds (automatic when the receiver is looser, checked
//     when tighter).
//   - The donor's objective is an admissible LOWER bound only when the
//     receiver's feasible region is contained in the donor's (receiver
//     at most as loose on every bound): shrinking a minimization's
//     feasible region can only raise its optimum. When the offered
//     incumbent is also admitted, optimum ≤ incumbent = donorObj ≤
//     optimum closes the gap instantly — the common case along a
//     tightening sweep while the optimum is unchanged.
//
// Every ingredient is independently validated by the receiver, so a
// stale or mismatched Warm can cost time but never change an answer.
type Warm struct {
	// Incumbent is the donor's proven-optimal placement (an empty map is
	// the all-flash placement; nil means no placement is carried).
	Incumbent map[string]bool
	// Obj is the donor's optimal objective in LP units.
	Obj float64
	// Basis and RootIters are the donor root relaxation's final basis
	// and pivot count (see lp.Solution); State is its full end state,
	// which resumes the receiver's root far cheaper than the bare basis.
	Basis     []int
	State     *lp.State
	RootIters int
	// Rspare and Xlimit are the donor's constraint bounds — the
	// provenance the monotonicity rule is checked against.
	Rspare, Xlimit float64
	// Proven confirms the donor solve proved optimality; without it no
	// bound may be carried.
	Proven bool
}

// WarmUse itemizes how a solve consumed carried warm state.
type WarmUse struct {
	// Consumed is true when any ingredient below was actually used —
	// the condition for the warm-ilp-optimal strategy rung.
	Consumed bool
	// Incumbent: the donor placement was admitted as starting incumbent.
	Incumbent bool
	// Bound: the donor objective was carried as an admissible bound.
	Bound bool
	// Basis: the donor basis warm-started the root LP (dual simplex ran;
	// false when SolveFrom fell back to a cold solve).
	Basis bool
	// InstantProof: the bound proved the incumbent optimal with zero LP
	// solves.
	InstantProof bool
	// ItersSaved estimates simplex pivots avoided at the root relative
	// to the donor's root solve.
	ItersSaved int
}

// Budget bounds a placement solve. The zero value means no bound beyond
// the solver defaults — the exact solve the paper runs.
type Budget struct {
	// MaxNodes bounds branch-and-bound LP relaxations (0 = solver
	// default).
	MaxNodes int
	// MaxLPIter bounds simplex pivots per LP relaxation (0 = solver
	// default).
	MaxLPIter int
	// Timeout bounds the wall-clock time of the whole solve; when it
	// expires the ladder degrades instead of failing (0 = none).
	Timeout time.Duration
}

// IsZero reports whether the budget imposes no caller bound.
func (b Budget) IsZero() bool { return b == Budget{} }

// SolveILP runs the paper's formulation through branch and bound under
// the given budget. A tripped budget degrades the result rather than
// failing it: the Strategy field records whether the placement is the
// proven optimum, the best incumbent, or the rounded root relaxation.
// An error is returned only when the budget ran out before any feasible
// placement existed (matching errs.ErrBudget) or ctx was cancelled.
func SolveILP(ctx context.Context, m *model.Model, budget Budget) (*Result, error) {
	return SolveILPWarm(ctx, m, budget, nil)
}

// SolveILPWarm is SolveILP with carried warm state from a neighboring
// solve of the same model family (nil warm = cold solve). The warm
// ingredients are translated into an ilp.WarmStart under the
// monotonicity rule documented on Warm; the answer is always the one
// the cold solve would give, warm state only shortens the path to it.
func SolveILPWarm(ctx context.Context, m *model.Model, budget Budget, warm *Warm) (*Result, error) {
	prob, vars := m.BuildILP()
	if budget.MaxLPIter > 0 {
		prob.MaxIter = budget.MaxLPIter
	}
	binaries := make([]int, 0, len(vars.R))
	for _, j := range vars.R {
		binaries = append(binaries, j)
	}
	sort.Ints(binaries)

	var ws *ilp.WarmStart
	carriedBound := false
	if warm != nil {
		ws = &ilp.WarmStart{Basis: warm.Basis, State: warm.State, RootIters: warm.RootIters}
		if warm.Incumbent != nil {
			// Offered unconditionally; the solver admits it only after
			// its own integrality and feasibility checks.
			ws.Incumbent = m.MaterializeX(vars, warm.Incumbent)
		}
		// The donor bound is admissible only when this feasible region is
		// contained in the donor's (every bound at most as loose).
		if warm.Proven &&
			m.Params.Rspare <= warm.Rspare+1e-9 &&
			m.Params.Xlimit <= warm.Xlimit+1e-9 {
			ws.Bound, ws.HasBound = warm.Obj, true
			carriedBound = true
		}
	}

	solver := &ilp.Solver{
		Base:     prob,
		Binaries: binaries,
		MaxNodes: budget.MaxNodes,
		Rounder:  m.Rounder(vars),
		Warm:     ws,
	}
	res, err := solver.Solve(ctx)
	if err != nil {
		return nil, fmt.Errorf("placement: ilp solve: %w", err)
	}

	use := WarmUse{
		Incumbent:    res.WarmIncumbent,
		Bound:        carriedBound,
		Basis:        res.WarmRoot,
		InstantProof: res.WarmProof,
	}
	use.Consumed = use.Incumbent || use.Basis || use.InstantProof
	if warm != nil {
		switch {
		case res.WarmProof:
			use.ItersSaved = warm.RootIters
		case res.WarmRoot && warm.RootIters > res.RootIters:
			use.ItersSaved = warm.RootIters - res.RootIters
		}
	}

	switch res.Status {
	case ilp.Infeasible:
		// Rspare/Xlimit leave no room: the all-flash placement is the
		// answer (it is always feasible for Xlimit ≥ 1).
		empty := map[string]bool{}
		return &Result{Method: "ilp", InRAM: empty, Outcome: m.Evaluate(empty),
			Proven: true, Strategy: StrategyILPOptimal,
			Warm: &Warm{
				Incumbent: empty,
				Obj:       prob.Objective(make([]float64, prob.NumVars())),
				Rspare:    m.Params.Rspare,
				Xlimit:    m.Params.Xlimit,
				Proven:    true,
			}}, nil
	case ilp.Unbounded:
		return nil, fmt.Errorf("placement: ilp relaxation unbounded (model bug)")
	}
	inRAM := m.PlacementFromX(vars, res.X)
	r := &Result{
		Method:  "ilp",
		InRAM:   inRAM,
		Outcome: m.Evaluate(inRAM),
		Nodes:   res.Nodes,
		Proven:  res.Status == ilp.Optimal,
		WarmUse: use,
	}
	switch {
	case r.Proven && use.Consumed:
		r.Strategy = StrategyWarmILPOptimal
	case r.Proven:
		r.Strategy = StrategyILPOptimal
	case res.Nodes <= 1:
		// Only the root relaxation was affordable: the incumbent is its
		// rounded solution, nothing was branched.
		r.Strategy = StrategyLPRounding
		r.StrategyReason = degradeReason(res.Stop)
	default:
		r.Strategy = StrategyILPIncumbent
		r.StrategyReason = degradeReason(res.Stop)
	}
	if r.Proven {
		r.Warm = &Warm{
			Incumbent: inRAM,
			Obj:       res.Obj,
			Basis:     res.RootBasis,
			State:     res.RootState,
			RootIters: res.RootIters,
			Rspare:    m.Params.Rspare,
			Xlimit:    m.Params.Xlimit,
			Proven:    true,
		}
	}
	return r, nil
}

// degradeReason renders the budget error that forced a rung change. The
// text is deterministic for a given budget configuration.
func degradeReason(err error) string {
	if err == nil {
		return "solver budget exhausted"
	}
	var be *errs.BudgetError
	if errors.As(err, &be) {
		return be.Error()
	}
	if errs.IsCancellation(err) {
		return "solve cancelled"
	}
	return err.Error()
}

// SolveLadder is the solver watchdog: it runs the exact ILP under the
// budget and degrades deterministically when the budget cannot carry the
// solve — exact ILP → best branch-and-bound incumbent → rounded LP
// relaxation (the three outcomes SolveILP classifies) → the greedy
// density heuristic → the identity placement. Every rung yields a valid
// placement; the only errors are a cancelled parent context or a broken
// model. The LP-relaxation rung is realized inside the branch and bound
// (the Rounder seeds the incumbent from the root relaxation), so no
// relaxation is ever solved twice.
//
// A non-nil warm carries reusable state from a neighboring solve into
// the top rung; a proven solve that actually consumed it records the
// warm-ilp-optimal strategy. The degraded rungs ignore warm state — an
// unproven answer must not depend on what a neighbor happened to solve.
func SolveLadder(ctx context.Context, m *model.Model, budget Budget, warm *Warm) (*Result, error) {
	solveCtx := ctx
	if budget.Timeout > 0 {
		var cancel context.CancelFunc
		solveCtx, cancel = context.WithTimeout(ctx, budget.Timeout)
		defer cancel()
	}
	res, err := SolveILPWarm(solveCtx, m, budget, warm)
	if err == nil {
		return res, nil
	}
	if ctx.Err() != nil {
		// The caller itself is going away: propagate, never degrade.
		return nil, err
	}
	if !errors.Is(err, errs.ErrBudget) && !errs.IsCancellation(err) {
		return nil, err // a broken model, not an exhausted budget
	}
	reason := degradeReason(err)
	if solveCtx.Err() == nil {
		// The pivot/node budget is gone but time remains: the greedy
		// heuristic needs neither.
		r := SolveGreedy(m)
		r.Strategy = StrategyGreedy
		r.StrategyReason = reason
		return r, nil
	}
	// The solve deadline itself expired: even the heuristic is out of
	// time. Nothing moves — the baseline program is always valid.
	empty := map[string]bool{}
	return &Result{Method: "identity", InRAM: empty, Outcome: m.Evaluate(empty),
		Strategy: StrategyIdentity, StrategyReason: reason}, nil
}

// SolveGreedy picks blocks by saving density F·C·(EFlash−ERAM)/S until
// the budget or time limit stops it. It re-evaluates feasibility with the
// full model after each tentative addition, but it never reconsiders —
// no clustering, no backtracking.
func SolveGreedy(m *model.Model) *Result {
	type cand struct {
		label   string
		density float64
	}
	var cands []cand
	for _, bd := range m.Blocks {
		if !bd.Movable || bd.S == 0 {
			continue
		}
		saving := bd.F * bd.C * (m.Params.EFlash - m.Params.ERAM)
		cands = append(cands, cand{bd.Block.Label, saving / bd.S})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].density != cands[j].density {
			return cands[i].density > cands[j].density
		}
		return cands[i].label < cands[j].label
	})

	inRAM := map[string]bool{}
	best := m.Evaluate(inRAM)
	for _, c := range cands {
		inRAM[c.label] = true
		out := m.Evaluate(inRAM)
		if !out.Feasible || out.EnergyNJ >= best.EnergyNJ {
			delete(inRAM, c.label)
			continue
		}
		best = out
	}
	return &Result{Method: "greedy", InRAM: inRAM, Outcome: best, Proven: false,
		Strategy: StrategyGreedy}
}

// SolveFunctionLevel moves whole functions, greedily by density — the
// granularity of classic scratchpad allocation (e.g. Steinke et al. on
// full objects). Functions with any unmovable block are skipped.
func SolveFunctionLevel(m *model.Model, p *ir.Program) *Result {
	type fcand struct {
		name    string
		labels  []string
		density float64
	}
	var cands []fcand
	for _, f := range p.Funcs {
		if f.Library || len(f.Blocks) == 0 {
			continue
		}
		var labels []string
		saving, size := 0.0, 0.0
		movable := true
		for _, b := range f.Blocks {
			bd := m.Data(b.Label)
			if bd == nil || !bd.Movable {
				movable = false
				break
			}
			labels = append(labels, b.Label)
			saving += bd.F * bd.C * (m.Params.EFlash - m.Params.ERAM)
			size += bd.S
		}
		if !movable || size == 0 {
			continue
		}
		cands = append(cands, fcand{f.Name, labels, saving / size})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].density != cands[j].density {
			return cands[i].density > cands[j].density
		}
		return cands[i].name < cands[j].name
	})

	inRAM := map[string]bool{}
	best := m.Evaluate(inRAM)
	for _, c := range cands {
		for _, lbl := range c.labels {
			inRAM[lbl] = true
		}
		out := m.Evaluate(inRAM)
		if !out.Feasible || out.EnergyNJ >= best.EnergyNJ {
			for _, lbl := range c.labels {
				delete(inRAM, lbl)
			}
			continue
		}
		best = out
	}
	return &Result{Method: "function", InRAM: inRAM, Outcome: best, Proven: false,
		Strategy: StrategyFunction}
}

// TopBlocks returns the k hottest movable blocks by F·C.
func TopBlocks(m *model.Model, k int) []*model.BlockData {
	var movable []*model.BlockData
	for _, bd := range m.Blocks {
		if bd.Movable {
			movable = append(movable, bd)
		}
	}
	sort.Slice(movable, func(i, j int) bool {
		wi, wj := movable[i].F*movable[i].C, movable[j].F*movable[j].C
		if wi != wj {
			return wi > wj
		}
		return movable[i].Block.Label < movable[j].Block.Label
	})
	if len(movable) > k {
		movable = movable[:k]
	}
	return movable
}

// Point is one placement in the Figure 6 trade-off cloud.
type Point struct {
	Mask     int
	EnergyNJ float64
	Cycles   float64
	RAMBytes float64
	Feasible bool
}

// Enumerate evaluates every subset of the top-k hottest blocks under the
// model (2^k points) — the "possible choices" cloud of Figure 6.
func Enumerate(m *model.Model, k int) ([]Point, []*model.BlockData, error) {
	blocks := TopBlocks(m, k)
	if len(blocks) > 20 {
		return nil, nil, fmt.Errorf("placement: refusing to enumerate 2^%d placements", len(blocks))
	}
	points := make([]Point, 0, 1<<len(blocks))
	for mask := 0; mask < 1<<len(blocks); mask++ {
		inRAM := map[string]bool{}
		for i, bd := range blocks {
			if mask&(1<<i) != 0 {
				inRAM[bd.Block.Label] = true
			}
		}
		out := m.Evaluate(inRAM)
		points = append(points, Point{
			Mask:     mask,
			EnergyNJ: out.EnergyNJ,
			Cycles:   out.Cycles,
			RAMBytes: out.RAMBytes,
			Feasible: out.Feasible,
		})
	}
	return points, blocks, nil
}

// SolveExhaustive finds the true model optimum over subsets of the top-k
// hottest blocks; the validation oracle for SolveILP.
func SolveExhaustive(m *model.Model, k int) (*Result, error) {
	points, blocks, err := Enumerate(m, k)
	if err != nil {
		return nil, err
	}
	bestIdx := -1
	for i, pt := range points {
		if !pt.Feasible {
			continue
		}
		if bestIdx < 0 || pt.EnergyNJ < points[bestIdx].EnergyNJ {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		empty := map[string]bool{}
		return &Result{Method: "exhaustive", InRAM: empty, Outcome: m.Evaluate(empty),
			Proven: true, Strategy: StrategyExhaustive}, nil
	}
	inRAM := map[string]bool{}
	for i, bd := range blocks {
		if points[bestIdx].Mask&(1<<i) != 0 {
			inRAM[bd.Block.Label] = true
		}
	}
	return &Result{Method: "exhaustive", InRAM: inRAM, Outcome: m.Evaluate(inRAM),
		Proven: true, Strategy: StrategyExhaustive}, nil
}
