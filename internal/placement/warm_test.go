package placement

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/ir"
)

// TestWarmChainMatchesColdOnFigure2 carries each proven solve's donated
// Warm state into the next, tighter solve and checks the chain lands on
// exactly the cold answers: same placements, same outcomes, all proven.
func TestWarmChainMatchesColdOnFigure2(t *testing.T) {
	p := ir.Figure2Program()
	chain := []float64{2048, 512, 60, 24, 0}

	consumed := 0
	var carry *Warm
	for _, rspare := range chain {
		m := buildModel(t, p, rspare, 2.0)
		warm, err := SolveILPWarm(context.Background(), m, Budget{}, carry)
		if err != nil {
			t.Fatalf("rspare %v warm: %v", rspare, err)
		}
		cold, err := SolveILP(context.Background(), m, Budget{})
		if err != nil {
			t.Fatalf("rspare %v cold: %v", rspare, err)
		}
		if !reflect.DeepEqual(warm.InRAM, cold.InRAM) || warm.Outcome != cold.Outcome {
			t.Errorf("rspare %v: warm %v %+v, cold %v %+v",
				rspare, warm.InRAM, warm.Outcome, cold.InRAM, cold.Outcome)
		}
		if !warm.Proven || warm.Warm == nil {
			t.Fatalf("rspare %v: proven=%v warm donation=%v", rspare, warm.Proven, warm.Warm)
		}
		if carry == nil && warm.WarmUse.Consumed {
			t.Errorf("rspare %v: consumed warm state with nothing carried", rspare)
		}
		if warm.WarmUse.Consumed {
			consumed++
		}
		carry = warm.Warm
	}
	if consumed == 0 {
		t.Error("tightening chain never consumed carried state")
	}
}

// TestWarmBoundAdmissibility pins the monotonicity rule: the donor's
// objective travels as a bound only into a region contained in the
// donor's; a loosened receiver may reuse the incumbent but not the
// bound.
func TestWarmBoundAdmissibility(t *testing.T) {
	p := ir.Figure2Program()

	donor, err := SolveILP(context.Background(), buildModel(t, p, 2048, 2.0), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if donor.Warm == nil || !donor.Warm.Proven {
		t.Fatalf("donor donated %+v", donor.Warm)
	}

	// Tightening on rspare: region shrinks, bound admissible.
	tight, err := SolveILPWarm(context.Background(), buildModel(t, p, 512, 2.0), Budget{}, donor.Warm)
	if err != nil {
		t.Fatal(err)
	}
	if !tight.WarmUse.Bound {
		t.Errorf("tightened solve did not carry the admissible bound: %+v", tight.WarmUse)
	}

	// Loosening on xlimit: region grows, the donor optimum is no longer
	// a valid lower bound and must not be carried.
	loose, err := SolveILPWarm(context.Background(), buildModel(t, p, 2048, 3.0), Budget{}, donor.Warm)
	if err != nil {
		t.Fatal(err)
	}
	if loose.WarmUse.Bound {
		t.Errorf("loosened solve carried an inadmissible bound: %+v", loose.WarmUse)
	}
	if !loose.Proven {
		t.Errorf("loosened solve not proven: %+v", loose)
	}
}

// TestWarmSamePointIsInstantProof re-solves a point with its own donated
// state: the incumbent equals the bound, so optimality closes with zero
// branch-and-bound nodes.
func TestWarmSamePointIsInstantProof(t *testing.T) {
	p := ir.Figure2Program()
	m := buildModel(t, p, 2048, 2.0)
	first, err := SolveILP(context.Background(), m, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := SolveILPWarm(context.Background(), m, Budget{}, first.Warm)
	if err != nil {
		t.Fatal(err)
	}
	if !again.WarmUse.InstantProof || again.Nodes != 0 {
		t.Fatalf("re-solve with own state: InstantProof=%v Nodes=%d, want proof with 0 nodes",
			again.WarmUse.InstantProof, again.Nodes)
	}
	if again.Strategy != StrategyWarmILPOptimal {
		t.Errorf("strategy = %q, want %q", again.Strategy, StrategyWarmILPOptimal)
	}
	if !reflect.DeepEqual(again.InRAM, first.InRAM) ||
		math.Abs(again.Outcome.EnergyNJ-first.Outcome.EnergyNJ) > 1e-9 {
		t.Errorf("instant proof changed the answer: %v vs %v", again.InRAM, first.InRAM)
	}
	// The instant proof passes the donor's root state through, so the
	// NEXT point in a chain still has a basis to start from.
	if again.Warm == nil || again.Warm.Basis == nil {
		t.Errorf("instant proof dropped the donated basis: %+v", again.Warm)
	}
}

// TestWarmGarbageStateIsHarmless feeds a Warm whose basis and incumbent
// belong to no valid solve; the solver must quietly fall back to a cold
// solve and still return the proven optimum.
func TestWarmGarbageStateIsHarmless(t *testing.T) {
	p := ir.Figure2Program()
	m := buildModel(t, p, 2048, 2.0)
	cold, err := SolveILP(context.Background(), m, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	garbage := &Warm{
		Incumbent: map[string]bool{"no_such_block": true},
		Obj:       -1e18, // wildly wrong, but not Proven: never carried
		Basis:     []int{9999, 9998, 9997},
		RootIters: 3,
	}
	res, err := SolveILPWarm(context.Background(), m, Budget{}, garbage)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || !reflect.DeepEqual(res.InRAM, cold.InRAM) {
		t.Fatalf("garbage warm state changed the answer: %v vs %v", res.InRAM, cold.InRAM)
	}
	if res.WarmUse.Bound {
		t.Errorf("unproven donor's bound was carried: %+v", res.WarmUse)
	}
}
