package cliutil

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSignalContextTimeout(t *testing.T) {
	ctx, stop := SignalContext(context.Background(), 10*time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", ctx.Err())
	}
}

func TestSignalContextNoTimeout(t *testing.T) {
	ctx, stop := SignalContext(context.Background(), 0)
	if _, has := ctx.Deadline(); has {
		t.Fatal("timeout 0 must not set a deadline")
	}
	select {
	case <-ctx.Done():
		t.Fatalf("context done before stop: %v", ctx.Err())
	default:
	}
	// stop releases the signal registration and must not cancel work
	// derived from the parent... but the returned ctx itself is done,
	// matching signal.NotifyContext's contract.
	stop()
}

func TestSignalContextParentCancellation(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := SignalContext(parent, time.Hour)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("err = %v, want Canceled", ctx.Err())
	}
}
