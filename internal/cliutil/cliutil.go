// Package cliutil holds the small amount of plumbing shared by the
// command-line drivers: a root context honouring -timeout and SIGINT, so
// every CLI shuts down the same way — the context is cancelled, the
// sweeps and solves unwind at their next poll point, and the driver
// flushes whatever it has as a valid (partial) document before exiting.
package cliutil

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Context returns the driver's root context: cancelled on SIGINT or
// SIGTERM, and by the deadline when timeout > 0. Call the returned stop
// function once the run is over; it releases the signal handler, so a
// second interrupt after shutdown has begun kills the process the
// default way instead of being swallowed.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}
