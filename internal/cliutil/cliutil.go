// Package cliutil holds the small amount of plumbing shared by the
// command-line drivers and the daemon: one root-context constructor, so
// every entry point shuts down the same way — the context is cancelled,
// the sweeps and solves unwind at their next poll point, and the driver
// flushes whatever it has (a partial document, or the daemon's drained
// responses) before exiting.
package cliutil

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// SignalContext returns a root context cancelled when any of the given
// signals arrives, and by the deadline when timeout > 0. It is the one
// constructor behind every entry point: the CLIs use it via Context; the
// daemon calls it directly and treats cancellation as the start of its
// graceful drain (stop admitting, finish in-flight requests) rather
// than as an abort. Call the returned stop function once shutdown has
// begun; it releases the signal handler, so a second signal kills the
// process the default way instead of being swallowed.
func SignalContext(parent context.Context, timeout time.Duration, signals ...os.Signal) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, signals...)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

// Context is the CLI flavour of SignalContext: cancelled on SIGINT or
// SIGTERM (so both an interactive ^C and a supervisor's termination
// unwind identically), bounded by -timeout when timeout > 0.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	return SignalContext(context.Background(), timeout, os.Interrupt, syscall.SIGTERM)
}
