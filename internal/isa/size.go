package isa

// Size returns the encoding size of the instruction in bytes (2 for a
// 16-bit Thumb encoding, 4 for a 32-bit Thumb-2 encoding).
//
// The rules are the standard Thumb-2 narrow-encoding conditions,
// simplified to what this instruction subset can express. Branch
// instructions conservatively use the narrow encoding; the layout engine
// widens them when a target is out of narrow range (see internal/layout).
func Size(in *Instr) int {
	lowDN := in.Rd.IsLow() && in.Rn.IsLow()
	switch in.Op {
	case NOP, IT:
		return 2
	case MOV:
		if in.HasImm {
			if in.Rd.IsLow() && in.Imm >= 0 && in.Imm <= 255 {
				return 2
			}
			return 4
		}
		return 2 // register mov has a 16-bit any-register encoding
	case MVN, SXTB, SXTH, UXTB, UXTH:
		if in.Rd.IsLow() && in.Rm.IsLow() {
			return 2
		}
		return 4
	case CLZ, SDIV, UDIV, MLA, ADC, SBC, RSB, BIC, ROR:
		// Narrow forms exist for some two-register shapes, but the compiler
		// emits the general three-register form; treat as wide except the
		// classic rd==rn low-register cases.
		if in.Op == ADC || in.Op == SBC || in.Op == BIC || in.Op == ROR {
			if lowDN && in.Rd == in.Rn && in.Rm.IsLow() && !in.HasImm {
				return 2
			}
		}
		if in.Op == RSB && lowDN && in.HasImm && in.Imm == 0 {
			return 2 // negs rd, rn
		}
		return 4
	case ADD, SUB:
		if in.HasImm {
			if lowDN && in.Imm >= 0 && in.Imm <= 7 {
				return 2
			}
			if in.Rd == in.Rn && in.Rd.IsLow() && in.Imm >= 0 && in.Imm <= 255 {
				return 2
			}
			if (in.Rd == SP || in.Rn == SP) && in.Imm >= 0 && in.Imm <= 508 && in.Imm%4 == 0 {
				return 2
			}
			return 4
		}
		if lowDN && in.Rm.IsLow() && in.Shift == 0 {
			return 2
		}
		return 4
	case MUL:
		if lowDN && in.Rd == in.Rn && in.Rm.IsLow() {
			return 2
		}
		return 4
	case AND, ORR, EOR:
		if in.HasImm {
			return 4
		}
		if lowDN && in.Rd == in.Rn && in.Rm.IsLow() {
			return 2
		}
		return 4
	case LSL, LSR, ASR:
		if in.HasImm {
			if in.Rd.IsLow() && in.Rm.IsLow() {
				return 2
			}
			return 4
		}
		if lowDN && in.Rd == in.Rn && in.Rm.IsLow() {
			return 2
		}
		return 4
	case CMP, CMN, TST:
		if in.HasImm {
			if in.Op == CMP && in.Rn.IsLow() && in.Imm >= 0 && in.Imm <= 255 {
				return 2
			}
			return 4
		}
		if in.Op == CMP {
			return 2 // cmp rn, rm has a 16-bit any-register encoding
		}
		if in.Rn.IsLow() && in.Rm.IsLow() {
			return 2
		}
		return 4
	case LDR, STR:
		return memSize(in, 124, 4)
	case LDRB, STRB, LDRSB:
		if in.Op == LDRSB && in.Mode != AddrReg {
			return 4
		}
		return memSize(in, 31, 1)
	case LDRH, STRH, LDRSH:
		if in.Op == LDRSH && in.Mode != AddrReg {
			return 4
		}
		return memSize(in, 62, 2)
	case LDRLIT:
		if in.Rd.IsLow() {
			return 2 // ldr rd, [pc, #imm8<<2]
		}
		return 4 // includes ldr pc, =label / ldr.w
	case ADR:
		if in.Rd.IsLow() {
			return 2
		}
		return 4
	case PUSH:
		if in.RegList&^uint16(0x40FF) == 0 { // low regs + LR
			return 2
		}
		return 4
	case POP:
		if in.RegList&^uint16(0x80FF) == 0 { // low regs + PC
			return 2
		}
		return 4
	case B, CBZ, CBNZ:
		return 2
	case BL:
		return 4
	case BLX, BX:
		return 2
	}
	return 2
}

// memSize applies the narrow-encoding rule for load/store: low registers,
// immediate offset within maxImm and aligned to align, or low-register
// register offset.
func memSize(in *Instr, maxImm int32, align int32) int {
	if !in.Rd.IsLow() {
		return 4
	}
	switch in.Mode {
	case AddrOffset:
		if in.Rn == SP && (in.Op == LDR || in.Op == STR) &&
			in.Imm >= 0 && in.Imm <= 1020 && in.Imm%4 == 0 {
			return 2
		}
		if in.Rn.IsLow() && in.Imm >= 0 && in.Imm <= maxImm && in.Imm%align == 0 {
			return 2
		}
		return 4
	case AddrReg:
		if in.Rn.IsLow() && in.Rm.IsLow() {
			return 2
		}
		return 4
	case AddrRegLSL:
		return 4
	}
	return 4
}

// LiteralBytes returns the number of bytes the instruction contributes to
// the literal pool (a 32-bit word for each ldr =sym/=const).
func LiteralBytes(in *Instr) int {
	if in.Op == LDRLIT {
		return 4
	}
	return 0
}
