package isa

import (
	"fmt"
	"strings"
)

// AddrMode selects the addressing mode of a memory instruction.
type AddrMode uint8

// Addressing modes.
const (
	AddrNone   AddrMode = iota
	AddrOffset          // [rn, #imm]
	AddrReg             // [rn, rm]
	AddrRegLSL          // [rn, rm, lsl #shift]
)

// Instr is one machine instruction. The zero value is a NOP.
//
// Operand use by shape:
//
//	data processing:  Rd, Rn, Rm or Imm (HasImm)
//	compare:          Rn, Rm or Imm
//	memory:           Rd (data), Rn (base), Rm/Imm per Mode
//	ldr rd, =sym:     Rd, Sym (address of symbol) or Imm (constant)
//	push/pop:         RegList bitmask
//	b{cond}:          Sym (target label), Cond
//	cbz/cbnz:         Rn, Sym
//	bl:               Sym (callee)
//	blx/bx:           Rm
//	it:               Cond (condition of the then-clause), ITMask
type Instr struct {
	Op   Op
	Cond Cond // execution condition (AL unless inside an IT block, or B)

	Rd Reg
	Rn Reg
	Rm Reg

	Imm    int32
	HasImm bool // Imm is a valid immediate operand

	Sym string // symbol operand: branch target label or literal symbol

	Mode    AddrMode
	Shift   uint8  // shift amount for AddrRegLSL / shifted operands
	RegList uint16 // push/pop register bitmask (bit i = Ri)

	ITMask string // for IT: "t", "te", "tt", etc. ("" means plain it)

	SetFlags bool // the S suffix (adds, subs, ...); CMP/CMN/TST always set
}

// NewInstr returns an instruction with sensible zero operands.
func NewInstr(op Op) Instr {
	return Instr{Op: op, Cond: AL, Rd: NoReg, Rn: NoReg, Rm: NoReg}
}

// Uses reports the registers read by the instruction (excluding PC fetch).
func (in *Instr) Uses() []Reg {
	var u []Reg
	add := func(r Reg) {
		if r != NoReg {
			u = append(u, r)
		}
	}
	// addRm adds the register operand only when the instruction actually
	// has one (immediate forms leave Rm at its zero value, which is R0).
	addRm := func() {
		if !in.HasImm {
			add(in.Rm)
		}
	}
	addMemIndex := func() {
		if in.Mode == AddrReg || in.Mode == AddrRegLSL {
			add(in.Rm)
		}
	}
	switch in.Op {
	case NOP, IT, B, BL, ADR, LDRLIT:
	case MOV, MVN, SXTB, SXTH, UXTB, UXTH, CLZ:
		addRm()
	case CMP, CMN, TST:
		add(in.Rn)
		addRm()
	case LDR, LDRB, LDRH, LDRSB, LDRSH:
		add(in.Rn)
		addMemIndex()
	case STR, STRB, STRH:
		add(in.Rd)
		add(in.Rn)
		addMemIndex()
	case PUSH:
		add(SP)
		for r := Reg(0); r < NumRegs; r++ {
			if in.RegList&(1<<r) != 0 {
				add(r)
			}
		}
	case POP:
		add(SP)
	case CBZ, CBNZ:
		add(in.Rn)
	case BLX, BX:
		add(in.Rm)
	case MLA:
		add(in.Rn)
		add(in.Rm)
		add(in.Rd) // accumulator convention: rd += rn*rm handled via Ra=Rd
	default:
		add(in.Rn)
		addRm()
	}
	return u
}

// Defs reports the registers written by the instruction.
func (in *Instr) Defs() []Reg {
	var d []Reg
	switch in.Op {
	case NOP, IT, CMP, CMN, TST, B, CBZ, CBNZ, BX:
	case STR, STRB, STRH:
	case PUSH:
		d = append(d, SP)
	case POP:
		d = append(d, SP)
		for r := Reg(0); r < NumRegs; r++ {
			if in.RegList&(1<<r) != 0 {
				d = append(d, r)
			}
		}
	case BL, BLX:
		d = append(d, LR, R0, R1, R2, R3, R12) // caller-saved clobbers
	default:
		if in.Rd != NoReg {
			d = append(d, in.Rd)
		}
	}
	return d
}

// String renders the instruction in GNU-style assembly.
func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.SetFlags {
		b.WriteString("s")
	}
	if in.Op == IT {
		b.WriteString(in.ITMask)
		b.WriteString(" ")
		b.WriteString(in.Cond.String())
		return b.String()
	}
	if in.Cond != AL {
		b.WriteString(in.Cond.String())
	}
	sp := func() { b.WriteString(" ") }
	switch in.Op {
	case NOP:
	case MOV, MVN, SXTB, SXTH, UXTB, UXTH, CLZ:
		sp()
		fmt.Fprintf(&b, "%s, ", in.Rd)
		if in.HasImm {
			fmt.Fprintf(&b, "#%d", in.Imm)
		} else {
			b.WriteString(in.Rm.String())
		}
	case CMP, CMN, TST:
		sp()
		fmt.Fprintf(&b, "%s, ", in.Rn)
		if in.HasImm {
			fmt.Fprintf(&b, "#%d", in.Imm)
		} else {
			b.WriteString(in.Rm.String())
		}
	case LDR, LDRB, LDRH, LDRSB, LDRSH, STR, STRB, STRH:
		sp()
		fmt.Fprintf(&b, "%s, ", in.Rd)
		switch in.Mode {
		case AddrOffset:
			if in.Imm == 0 {
				fmt.Fprintf(&b, "[%s]", in.Rn)
			} else {
				fmt.Fprintf(&b, "[%s, #%d]", in.Rn, in.Imm)
			}
		case AddrReg:
			fmt.Fprintf(&b, "[%s, %s]", in.Rn, in.Rm)
		case AddrRegLSL:
			fmt.Fprintf(&b, "[%s, %s, lsl #%d]", in.Rn, in.Rm, in.Shift)
		default:
			fmt.Fprintf(&b, "[%s]", in.Rn)
		}
	case LDRLIT:
		sp()
		if in.Sym != "" {
			fmt.Fprintf(&b, "%s, =%s", in.Rd, in.Sym)
		} else {
			fmt.Fprintf(&b, "%s, =%d", in.Rd, in.Imm)
		}
	case ADR:
		sp()
		fmt.Fprintf(&b, "%s, %s", in.Rd, in.Sym)
	case PUSH, POP:
		sp()
		b.WriteString("{")
		first := true
		for r := Reg(0); r < NumRegs; r++ {
			if in.RegList&(1<<r) != 0 {
				if !first {
					b.WriteString(", ")
				}
				b.WriteString(r.String())
				first = false
			}
		}
		b.WriteString("}")
	case B, BL:
		sp()
		b.WriteString(in.Sym)
	case CBZ, CBNZ:
		sp()
		fmt.Fprintf(&b, "%s, %s", in.Rn, in.Sym)
	case BLX, BX:
		sp()
		b.WriteString(in.Rm.String())
	case MLA:
		sp()
		fmt.Fprintf(&b, "%s, %s, %s, %s", in.Rd, in.Rn, in.Rm, in.Rd)
	default:
		sp()
		fmt.Fprintf(&b, "%s, %s, ", in.Rd, in.Rn)
		if in.HasImm {
			fmt.Fprintf(&b, "#%d", in.Imm)
		} else {
			b.WriteString(in.Rm.String())
			if in.Shift != 0 {
				fmt.Fprintf(&b, ", lsl #%d", in.Shift)
			}
		}
	}
	return b.String()
}
