package isa

// Cycle timing for a Cortex-M3-class core (three-stage pipeline, single
// cycle flash and RAM at value-line clock rates).
//
// The constants are chosen to make the Figure 4 instrumentation sequences
// cost exactly what the paper prints:
//
//	ldr pc, =label                      4 cycles, 4 bytes
//	it cc; ldrcc r5,=a; ldrcc' r5,=b;
//	bx r5                               7 cycles, 8 bytes
//	cmp rn,#0 + the above               8 cycles, 10 bytes
//
// (load-to-PC = 2-cycle load + 2-cycle pipeline refill; a predicated
// instruction whose condition fails still costs 1 cycle; bx = 1 + 2.)
const (
	// BranchRefillCycles is the pipeline refill penalty paid by every
	// taken control-flow change.
	BranchRefillCycles = 2
	// LoadCycles is the base cost of a load (address + data phase).
	LoadCycles = 2
	// StoreCycles is the base cost of a store.
	StoreCycles = 2
	// DivCycles approximates SDIV/UDIV (2-12 data dependent on the M3).
	DivCycles = 6
	// RAMContentionStall is the extra stall per load executed while
	// fetching from RAM with the load also targeting RAM (single RAM
	// port; this is the paper's Lb effect).
	RAMContentionStall = 1
)

// Cycles returns the base execution cost of the instruction in cycles,
// assuming its condition passes and, for conditional branches, that the
// branch is taken. Memory-system stalls (RAMContentionStall) are added by
// the simulator and by the model's Lb term, not here.
func Cycles(in *Instr) int {
	switch in.Op {
	case NOP, IT:
		return 1
	case MUL:
		return 1
	case MLA:
		return 2
	case SDIV, UDIV:
		return DivCycles
	case LDR, LDRB, LDRH, LDRSB, LDRSH:
		return LoadCycles
	case LDRLIT:
		if in.Rd == PC {
			return LoadCycles + BranchRefillCycles
		}
		return LoadCycles
	case STR, STRB, STRH:
		return StoreCycles
	case PUSH, POP:
		n := 0
		for r := Reg(0); r < NumRegs; r++ {
			if in.RegList&(1<<r) != 0 {
				n++
			}
		}
		c := 1 + n
		if in.Op == POP && in.RegList&(1<<PC) != 0 {
			c += BranchRefillCycles
		}
		return c
	case B:
		return 1 + BranchRefillCycles
	case CBZ, CBNZ:
		return 1 + BranchRefillCycles
	case BL:
		return 1 + BranchRefillCycles + 1 // extra cycle for LR write
	case BLX:
		return 1 + BranchRefillCycles + 1
	case BX:
		return 1 + BranchRefillCycles
	default:
		return 1
	}
}

// CyclesNotTaken returns the cost when a conditional branch falls through
// or a predicated instruction's condition fails.
func CyclesNotTaken(in *Instr) int {
	switch in.Op {
	case B, CBZ, CBNZ:
		return 1
	default:
		return 1 // failed predicated instruction costs one issue cycle
	}
}
