package isa

import (
	"testing"
	"testing/quick"
)

func TestCondInvert(t *testing.T) {
	pairs := [][2]Cond{
		{EQ, NE}, {CS, CC}, {MI, PL}, {VS, VC}, {HI, LS}, {GE, LT}, {GT, LE},
	}
	for _, p := range pairs {
		if p[0].Invert() != p[1] || p[1].Invert() != p[0] {
			t.Errorf("Invert(%v)=%v, Invert(%v)=%v; want each other",
				p[0], p[0].Invert(), p[1], p[1].Invert())
		}
	}
}

func TestCondInvertALPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Invert(AL) did not panic")
		}
	}()
	AL.Invert()
}

// TestCondHoldsComplement checks that a condition and its inverse partition
// every flag state (property test over all 16 flag combinations).
func TestCondHoldsComplement(t *testing.T) {
	for c := EQ; c <= LE; c++ {
		for bits := 0; bits < 16; bits++ {
			n, z, cf, v := bits&8 != 0, bits&4 != 0, bits&2 != 0, bits&1 != 0
			if c.Holds(n, z, cf, v) == c.Invert().Holds(n, z, cf, v) {
				t.Errorf("%v and %v agree on n=%v z=%v c=%v v=%v",
					c, c.Invert(), n, z, cf, v)
			}
		}
	}
}

func TestCondHoldsSemantics(t *testing.T) {
	// Signed comparison semantics: after cmp a, b the flags encode a-b.
	cases := []struct {
		cond Cond
		n, z, cf, v,
		want bool
	}{
		{EQ, false, true, false, false, true},
		{EQ, false, false, false, false, false},
		{LT, true, false, false, false, true},  // N != V
		{LT, true, false, false, true, false},  // N == V
		{GE, false, false, false, false, true}, // N == V
		{GT, false, false, false, false, true},
		{GT, false, true, false, false, false}, // equal is not greater
		{LE, false, true, false, false, true},
		{HI, false, false, true, false, true},
		{HI, false, true, true, false, false},
		{LS, false, false, false, false, true},
		{AL, true, true, true, true, true},
	}
	for _, c := range cases {
		if got := c.cond.Holds(c.n, c.z, c.cf, c.v); got != c.want {
			t.Errorf("%v.Holds(%v,%v,%v,%v) = %v, want %v",
				c.cond, c.n, c.z, c.cf, c.v, got, c.want)
		}
	}
}

func TestRegString(t *testing.T) {
	if R0.String() != "r0" || SP.String() != "sp" || LR.String() != "lr" || PC.String() != "pc" {
		t.Errorf("register names wrong: %v %v %v %v", R0, SP, LR, PC)
	}
}

func TestClassOf(t *testing.T) {
	cases := map[Op]Class{
		NOP: ClassNOP, IT: ClassNOP,
		MOV: ClassALU, ADD: ClassALU, CMP: ClassALU, LSL: ClassALU,
		MUL: ClassMul, SDIV: ClassMul, MLA: ClassMul,
		LDR: ClassLoad, LDRB: ClassLoad, LDRLIT: ClassLoad, POP: ClassLoad,
		STR: ClassStore, PUSH: ClassStore,
		B: ClassBranch, BL: ClassBranch, BX: ClassBranch, CBZ: ClassBranch,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestSizeNarrowForms(t *testing.T) {
	narrow := []Instr{
		{Op: MOV, Rd: R0, Imm: 255, HasImm: true},
		{Op: MOV, Rd: R8, Rm: R1}, // register mov is narrow for any regs
		{Op: ADD, Rd: R0, Rn: R1, Imm: 7, HasImm: true},
		{Op: ADD, Rd: R2, Rn: R2, Imm: 200, HasImm: true},
		{Op: ADD, Rd: R0, Rn: R1, Rm: R2},
		{Op: SUB, Rd: SP, Rn: SP, Imm: 16, HasImm: true},
		{Op: CMP, Rn: R3, Imm: 100, HasImm: true},
		{Op: CMP, Rn: R9, Rm: R10},
		{Op: LDR, Rd: R0, Rn: R1, Mode: AddrOffset, Imm: 124},
		{Op: LDR, Rd: R0, Rn: SP, Mode: AddrOffset, Imm: 1020},
		{Op: STR, Rd: R0, Rn: R1, Mode: AddrReg, Rm: R2},
		{Op: LDRB, Rd: R0, Rn: R1, Mode: AddrOffset, Imm: 31},
		{Op: LDRLIT, Rd: R5, Sym: "x"},
		{Op: B, Sym: "l"},
		{Op: CBZ, Rn: R0, Sym: "l"},
		{Op: BX, Rm: LR},
		{Op: PUSH, RegList: 1<<R4 | 1<<R5 | 1<<LR},
		{Op: POP, RegList: 1<<R4 | 1<<R5 | 1<<PC},
		{Op: MUL, Rd: R0, Rn: R0, Rm: R1},
		{Op: RSB, Rd: R0, Rn: R1, Imm: 0, HasImm: true},
	}
	for _, in := range narrow {
		in := in
		if got := Size(&in); got != 2 {
			t.Errorf("Size(%s) = %d, want 2", in.String(), got)
		}
	}
	wide := []Instr{
		{Op: MOV, Rd: R0, Imm: 256, HasImm: true},
		{Op: MOV, Rd: R8, Imm: 1, HasImm: true},
		{Op: ADD, Rd: R0, Rn: R1, Imm: 8, HasImm: true},
		{Op: ADD, Rd: R8, Rn: R1, Rm: R2},
		{Op: CMP, Rn: R3, Imm: 256, HasImm: true},
		{Op: LDR, Rd: R0, Rn: R1, Mode: AddrOffset, Imm: 128},
		{Op: LDR, Rd: R0, Rn: R1, Mode: AddrOffset, Imm: 2}, // unaligned
		{Op: LDR, Rd: R8, Rn: R1, Mode: AddrOffset, Imm: 0},
		{Op: LDRLIT, Rd: PC, Sym: "x"},
		{Op: BL, Sym: "f"},
		{Op: SDIV, Rd: R0, Rn: R1, Rm: R2},
		{Op: MLA, Rd: R0, Rn: R1, Rm: R2},
		{Op: PUSH, RegList: 1 << R8},
		{Op: MUL, Rd: R0, Rn: R1, Rm: R2},
		{Op: LDR, Rd: R0, Rn: R1, Mode: AddrRegLSL, Rm: R2, Shift: 2},
	}
	for _, in := range wide {
		in := in
		if got := Size(&in); got != 4 {
			t.Errorf("Size(%s) = %d, want 4", in.String(), got)
		}
	}
}

// TestSizeAlwaysValid: every instruction has size 2 or 4 regardless of
// operand garbage (property test).
func TestSizeAlwaysValid(t *testing.T) {
	f := func(op, rd, rn, rm uint8, imm int32, hasImm bool, mode uint8) bool {
		in := Instr{
			Op: Op(op % uint8(numOps)), Rd: Reg(rd % 16), Rn: Reg(rn % 16),
			Rm: Reg(rm % 16), Imm: imm, HasImm: hasImm,
			Mode: AddrMode(mode % 4),
		}
		s := Size(&in)
		return s == 2 || s == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCyclesPositive: every instruction costs at least one cycle.
func TestCyclesPositive(t *testing.T) {
	f := func(op, regList uint16) bool {
		in := Instr{Op: Op(op % uint16(numOps)), RegList: regList}
		return Cycles(&in) >= 1 && CyclesNotTaken(&in) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesFigure4Primitives(t *testing.T) {
	ldrPC := Instr{Op: LDRLIT, Rd: PC, Sym: "l"}
	if got := Cycles(&ldrPC); got != 4 {
		t.Errorf("ldr pc,=l cycles = %d, want 4", got)
	}
	if got := Size(&ldrPC); got != 4 {
		t.Errorf("ldr pc,=l size = %d, want 4", got)
	}
	b := Instr{Op: B, Sym: "l"}
	if got := Cycles(&b); got != 3 {
		t.Errorf("b taken cycles = %d, want 3", got)
	}
	if got := CyclesNotTaken(&b); got != 1 {
		t.Errorf("b not-taken cycles = %d, want 1", got)
	}
	bx := Instr{Op: BX, Rm: R5}
	if got := Cycles(&bx); got != 3 {
		t.Errorf("bx cycles = %d, want 3", got)
	}
	it := Instr{Op: IT, Cond: NE}
	if got := Cycles(&it); got != 1 {
		t.Errorf("it cycles = %d, want 1", got)
	}
	ldrLit := Instr{Op: LDRLIT, Rd: R5, Sym: "l"}
	if got := Cycles(&ldrLit); got != 2 {
		t.Errorf("ldr r5,=l cycles = %d, want 2", got)
	}
	pop := Instr{Op: POP, RegList: 1<<R4 | 1<<PC}
	if got := Cycles(&pop); got != 5 { // 1 + 2 regs + 2 refill
		t.Errorf("pop {r4,pc} cycles = %d, want 5", got)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: MOV, Rd: R1, Imm: 1, HasImm: true}, "mov r1, #1"},
		{Instr{Op: ADD, Rd: R0, Rn: R0, Imm: 1, HasImm: true}, "add r0, r0, #1"},
		{Instr{Op: MUL, Rd: R1, Rn: R1, Rm: R2}, "mul r1, r1, r2"},
		{Instr{Op: CMP, Rn: R0, Imm: 64, HasImm: true}, "cmp r0, #64"},
		{Instr{Op: B, Cond: NE, Sym: "loop"}, "bne loop"},
		{Instr{Op: BX, Rm: LR}, "bx lr"},
		{Instr{Op: LDRLIT, Rd: PC, Sym: "loop"}, "ldr pc, =loop"},
		{Instr{Op: LDRLIT, Rd: R5, Cond: LE, Sym: "ret"}, "ldrle r5, =ret"},
		{Instr{Op: IT, Cond: LE}, "it le"},
		{Instr{Op: IT, Cond: NE, ITMask: "e"}, "ite ne"},
		{Instr{Op: LDR, Rd: R0, Rn: R1, Mode: AddrOffset, Imm: 8}, "ldr r0, [r1, #8]"},
		{Instr{Op: LDR, Rd: R0, Rn: R1, Mode: AddrOffset}, "ldr r0, [r1]"},
		{Instr{Op: STR, Rd: R2, Rn: SP, Mode: AddrOffset, Imm: 4}, "str r2, [sp, #4]"},
		{Instr{Op: PUSH, RegList: 1<<R4 | 1<<LR}, "push {r4, lr}"},
		{Instr{Op: CBNZ, Rn: R0, Sym: "label"}, "cbnz r0, label"},
		{Instr{Op: SUB, Rd: R3, Rn: R4, Rm: R5}, "sub r3, r4, r5"},
		{Instr{Op: ADD, Rd: R3, Rn: R4, Imm: -4, HasImm: true}, "add r3, r4, #-4"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestUsesDefs(t *testing.T) {
	in := Instr{Op: ADD, Rd: R0, Rn: R1, Rm: R2}
	if d := in.Defs(); len(d) != 1 || d[0] != R0 {
		t.Errorf("add defs = %v, want [r0]", d)
	}
	if u := in.Uses(); len(u) != 2 || u[0] != R1 || u[1] != R2 {
		t.Errorf("add uses = %v, want [r1 r2]", u)
	}
	st := Instr{Op: STR, Rd: R3, Rn: R4, Mode: AddrOffset}
	if d := st.Defs(); len(d) != 0 {
		t.Errorf("str defs = %v, want none", d)
	}
	if u := st.Uses(); len(u) != 2 {
		t.Errorf("str uses = %v, want [r3 r4]", u)
	}
	bl := Instr{Op: BL, Sym: "f"}
	defs := bl.Defs()
	hasLR := false
	for _, r := range defs {
		if r == LR {
			hasLR = true
		}
	}
	if !hasLR {
		t.Errorf("bl defs = %v, want to include lr", defs)
	}
}

func TestLiteralBytes(t *testing.T) {
	lit := Instr{Op: LDRLIT, Rd: R0, Sym: "x"}
	if LiteralBytes(&lit) != 4 {
		t.Error("ldr =sym should contribute 4 literal bytes")
	}
	mov := Instr{Op: MOV, Rd: R0, Imm: 1, HasImm: true}
	if LiteralBytes(&mov) != 0 {
		t.Error("mov should contribute no literal bytes")
	}
}
