// Package isa defines the subset of the ARMv7-M Thumb-2 instruction set
// used throughout the reproduction: opcodes, condition codes, operand
// shapes, encoding sizes (16- or 32-bit) and base cycle timings for a
// Cortex-M3-class three-stage pipeline.
//
// The subset covers everything the mini-C compiler emits plus the
// long-range indirect-branch idioms the flash/RAM instrumentation inserts
// (Figure 4 of the paper): ldr pc, =label and it/ldr/ldr/bx sequences.
package isa

import "fmt"

// Reg is a machine register number. R0-R12 are general purpose; SP, LR and
// PC have their architectural roles.
type Reg uint8

// Architectural registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13
	LR // R14
	PC // R15
)

// NoReg marks an unused register operand slot.
const NoReg Reg = 0xFF

// NumRegs is the number of architectural registers (R0..PC).
const NumRegs = 16

// String returns the conventional assembly name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	case NoReg:
		return "<none>"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// IsLow reports whether the register is addressable by most 16-bit Thumb
// encodings (r0-r7).
func (r Reg) IsLow() bool { return r <= R7 }

// Cond is an ARM condition code. AL (always) is the default for
// unconditional execution.
type Cond uint8

// Condition codes. AL is zero so the zero-value Instr executes
// unconditionally; the remaining codes keep the ARM pairing so Invert can
// flip the low bit.
const (
	AL Cond = 0  // always
	EQ Cond = 2  // Z set
	NE Cond = 3  // Z clear
	CS Cond = 4  // C set (HS)
	CC Cond = 5  // C clear (LO)
	MI Cond = 6  // N set
	PL Cond = 7  // N clear
	VS Cond = 8  // V set
	VC Cond = 9  // V clear
	HI Cond = 10 // C set and Z clear
	LS Cond = 11 // C clear or Z set
	GE Cond = 12 // N == V
	LT Cond = 13 // N != V
	GT Cond = 14 // Z clear and N == V
	LE Cond = 15 // Z set or N != V
)

var condNames = [...]string{
	AL: "",
	EQ: "eq", NE: "ne", CS: "cs", CC: "cc", MI: "mi", PL: "pl",
	VS: "vs", VC: "vc", HI: "hi", LS: "ls", GE: "ge", LT: "lt",
	GT: "gt", LE: "le",
}

// String returns the assembly suffix for the condition ("" for AL).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Invert returns the logical negation of the condition. Inverting AL is a
// programming error and panics.
func (c Cond) Invert() Cond {
	if c == AL {
		panic("isa: cannot invert AL condition")
	}
	return c ^ 1
}

// Holds reports whether the condition is satisfied by the given flags.
func (c Cond) Holds(n, z, cf, v bool) bool {
	switch c {
	case EQ:
		return z
	case NE:
		return !z
	case CS:
		return cf
	case CC:
		return !cf
	case MI:
		return n
	case PL:
		return !n
	case VS:
		return v
	case VC:
		return !v
	case HI:
		return cf && !z
	case LS:
		return !cf || z
	case GE:
		return n == v
	case LT:
		return n != v
	case GT:
		return !z && n == v
	case LE:
		return z || n != v
	case AL:
		return true
	}
	panic(fmt.Sprintf("isa: unknown condition %d", uint8(c)))
}

// Op is an operation mnemonic.
type Op uint8

// Operation mnemonics. Terminator-capable operations (branches) are grouped
// at the end; see IsBranch.
const (
	NOP Op = iota

	// Data processing.
	MOV  // mov rd, rm / mov rd, #imm
	MVN  // mvn rd, rm
	ADD  // add rd, rn, rm / add rd, rn, #imm
	ADC  // add with carry
	SUB  // sub rd, rn, rm / sub rd, rn, #imm
	SBC  // subtract with carry
	RSB  // reverse subtract (rd = op2 - rn)
	MUL  // mul rd, rn, rm
	MLA  // multiply accumulate rd = ra + rn*rm
	SDIV // signed divide
	UDIV // unsigned divide
	AND  // bitwise and
	ORR  // bitwise or
	EOR  // bitwise xor
	BIC  // bit clear
	LSL  // logical shift left
	LSR  // logical shift right
	ASR  // arithmetic shift right
	ROR  // rotate right
	SXTB // sign extend byte
	SXTH // sign extend halfword
	UXTB // zero extend byte
	UXTH // zero extend halfword
	CLZ  // count leading zeros

	// Comparison (set flags only).
	CMP // compare rn, op2
	CMN // compare negative
	TST // test bits

	// Memory.
	LDR    // load word
	LDRB   // load byte (zero extend)
	LDRH   // load halfword (zero extend)
	LDRSB  // load signed byte
	LDRSH  // load signed halfword
	STR    // store word
	STRB   // store byte
	STRH   // store halfword
	LDRLIT // ldr rd, =sym  (literal-pool load of an address or constant)
	ADR    // adr rd, label (PC-relative address; flash only, short range)
	PUSH   // push {reglist}
	POP    // pop {reglist}

	// IT block marker: predicates the following 1-4 instructions. We model
	// only the single-instruction and two-instruction (then/else) forms the
	// instrumentation needs; the simulator honours per-instruction Cond
	// fields and charges the IT's cycle.
	IT

	// Control flow.
	B    // b{cond} label
	CBZ  // cbz rn, label (forward only, short range)
	CBNZ // cbnz rn, label
	BL   // bl label (direct call)
	BLX  // blx rm  (indirect call)
	BX   // bx rm   (indirect branch; bx lr = return)

	numOps
)

var opNames = [...]string{
	NOP: "nop", MOV: "mov", MVN: "mvn", ADD: "add", ADC: "adc", SUB: "sub",
	SBC: "sbc", RSB: "rsb", MUL: "mul", MLA: "mla", SDIV: "sdiv",
	UDIV: "udiv", AND: "and", ORR: "orr", EOR: "eor", BIC: "bic",
	LSL: "lsl", LSR: "lsr", ASR: "asr", ROR: "ror", SXTB: "sxtb",
	SXTH: "sxth", UXTB: "uxtb", UXTH: "uxth", CLZ: "clz", CMP: "cmp",
	CMN: "cmn", TST: "tst", LDR: "ldr", LDRB: "ldrb", LDRH: "ldrh",
	LDRSB: "ldrsb", LDRSH: "ldrsh", STR: "str", STRB: "strb", STRH: "strh",
	LDRLIT: "ldr", ADR: "adr", PUSH: "push", POP: "pop", IT: "it",
	B: "b", CBZ: "cbz", CBNZ: "cbnz", BL: "bl", BLX: "blx", BX: "bx",
}

// String returns the base mnemonic (without condition suffix).
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether the operation redirects control flow.
func (o Op) IsBranch() bool {
	switch o {
	case B, CBZ, CBNZ, BL, BLX, BX:
		return true
	}
	return false
}

// IsCall reports whether the operation is a subroutine call.
func (o Op) IsCall() bool { return o == BL || o == BLX }

// IsLoad reports whether the operation reads data memory.
func (o Op) IsLoad() bool {
	switch o {
	case LDR, LDRB, LDRH, LDRSB, LDRSH, LDRLIT, POP:
		return true
	}
	return false
}

// IsStore reports whether the operation writes data memory.
func (o Op) IsStore() bool {
	switch o {
	case STR, STRB, STRH, PUSH:
		return true
	}
	return false
}

// Class buckets instructions by the power they draw per cycle; this is the
// granularity of Figure 1 of the paper.
type Class uint8

// Power classes.
const (
	ClassALU    Class = iota // mov/add/cmp/shift/...
	ClassNOP                 // nop, it
	ClassLoad                // memory reads
	ClassStore               // memory writes
	ClassMul                 // mul/mla/div
	ClassBranch              // control flow
	NumClasses
)

var classNames = [...]string{
	ClassALU: "alu", ClassNOP: "nop", ClassLoad: "load",
	ClassStore: "store", ClassMul: "mul", ClassBranch: "branch",
}

// String returns the class name used in reports.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassOf returns the power class of an operation.
func ClassOf(o Op) Class {
	switch {
	case o == NOP || o == IT:
		return ClassNOP
	case o == MUL || o == MLA || o == SDIV || o == UDIV:
		return ClassMul
	case o.IsBranch():
		return ClassBranch
	case o.IsLoad():
		return ClassLoad
	case o.IsStore():
		return ClassStore
	default:
		return ClassALU
	}
}
