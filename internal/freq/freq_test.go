package freq

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/power"
	"repro/internal/sim"
)

func estimateOf(t *testing.T, p *ir.Program) Estimate {
	t.Helper()
	gs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatal(err)
	}
	return Static(p, gs)
}

func TestFigure2StaticEstimate(t *testing.T) {
	p := ir.Figure2Program()
	est := estimateOf(t, p)

	// The loop body dominates: 10x its surroundings.
	if est["fn_loop"] != 10*est["fn_init"] {
		t.Errorf("loop freq %v, want 10x init %v", est["fn_loop"], est["fn_init"])
	}
	// The if block runs once per call, like init.
	if est["fn_if"] != est["fn_init"] {
		t.Errorf("if freq %v != init freq %v", est["fn_if"], est["fn_init"])
	}
	// The conditional split halves iftrue.
	if est["fn_iftrue"] >= est["fn_if"] {
		t.Errorf("iftrue %v should be below if %v", est["fn_iftrue"], est["fn_if"])
	}
	// return receives both paths: taken half + fall-through half of the
	// split plus iftrue's flow — at least as frequent as iftrue.
	if est["fn_return"] <= est["fn_iftrue"] {
		t.Errorf("return %v should exceed iftrue %v", est["fn_return"], est["fn_iftrue"])
	}
	// fn is called once from main.
	if est["fn_init"] != 1 {
		t.Errorf("fn_init freq = %v, want 1 (single call site)", est["fn_init"])
	}
	if est["main_entry"] != 1 {
		t.Errorf("main freq = %v, want 1", est["main_entry"])
	}
}

func TestNestedLoopEstimate(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	entry := f.AddBlock("entry")
	ir.Build(entry).MovImm(isa.R0, 0)
	outer := f.AddBlock("outer")
	ir.Build(outer).MovImm(isa.R1, 0)
	inner := f.AddBlock("inner")
	ir.Build(inner).AddImm(isa.R1, isa.R1, 1).CmpImm(isa.R1, 8).Bcond(isa.LT, "inner")
	latch := f.AddBlock("latch")
	ir.Build(latch).AddImm(isa.R0, isa.R0, 1).CmpImm(isa.R0, 8).Bcond(isa.LT, "outer")
	exit := f.AddBlock("exit")
	ir.Build(exit).Ret()
	p.Reindex()

	est := estimateOf(t, p)
	if est["inner"] != 100*est["entry"] {
		t.Errorf("inner %v, want 100x entry %v (depth 2)", est["inner"], est["entry"])
	}
	if est["outer"] != 10*est["entry"] {
		t.Errorf("outer %v, want 10x entry", est["outer"])
	}
}

func TestCalledTwiceDoublesFrequency(t *testing.T) {
	p := ir.NewProgram()
	callee := p.AddFunc(&ir.Function{Name: "leaf"})
	lb := callee.AddBlock("leaf_body")
	ir.Build(lb).MovImm(isa.R0, 1).Ret()
	m := p.AddFunc(&ir.Function{Name: "main"})
	mb := m.AddBlock("main_entry")
	ir.Build(mb).Push(isa.R4, isa.LR).Bl("leaf").Bl("leaf").Pop(isa.R4, isa.PC)
	p.Reindex()

	est := estimateOf(t, p)
	if est["leaf_body"] != 2 {
		t.Errorf("leaf freq = %v, want 2 (two call sites)", est["leaf_body"])
	}
}

func TestCallInsideLoopMultiplies(t *testing.T) {
	p := ir.NewProgram()
	callee := p.AddFunc(&ir.Function{Name: "leaf"})
	lb := callee.AddBlock("leaf_body")
	ir.Build(lb).MovImm(isa.R0, 1).Ret()
	m := p.AddFunc(&ir.Function{Name: "main"})
	e := m.AddBlock("main_entry")
	ir.Build(e).Push(isa.R4, isa.LR).MovImm(isa.R4, 0)
	lp := m.AddBlock("main_loop")
	ir.Build(lp).Bl("leaf").AddImm(isa.R4, isa.R4, 1).CmpImm(isa.R4, 8).Bcond(isa.LT, "main_loop")
	x := m.AddBlock("main_exit")
	ir.Build(x).Pop(isa.R4, isa.PC)
	p.Reindex()

	est := estimateOf(t, p)
	if est["leaf_body"] != 10 {
		t.Errorf("leaf freq = %v, want 10 (called from a loop)", est["leaf_body"])
	}
}

func TestDeadFunctionHasZeroFrequency(t *testing.T) {
	p := ir.Figure2Program()
	dead := p.AddFunc(&ir.Function{Name: "dead"})
	db := dead.AddBlock("dead_body")
	ir.Build(db).Ret()
	p.Reindex()
	est := estimateOf(t, p)
	if est["dead_body"] != 0 {
		t.Errorf("dead block freq = %v, want 0", est["dead_body"])
	}
}

func TestProfileMatchesStaticShape(t *testing.T) {
	p := ir.Figure2Program()
	img, err := layout.New(p, layout.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(img, power.STM32F100())
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	prof := FromProfile(st)
	if prof["fn_loop"] != 64 {
		t.Errorf("profiled loop freq = %v, want 64", prof["fn_loop"])
	}
	if prof["fn_init"] != 1 {
		t.Errorf("profiled init freq = %v, want 1", prof["fn_init"])
	}
	// Shape agreement: the static estimate also puts the loop on top.
	est := estimateOf(t, p)
	if est["fn_loop"] <= est["fn_if"] {
		t.Error("static estimate must rank the loop hottest, as the profile does")
	}
	// Of() accessor.
	loop := p.Func("fn").Block("fn_loop")
	if prof.Of(loop) != 64 {
		t.Errorf("Of(loop) = %v, want 64", prof.Of(loop))
	}
}

func TestRecursionDoesNotDiverge(t *testing.T) {
	p := ir.NewProgram()
	rec := p.AddFunc(&ir.Function{Name: "rec"})
	rb := rec.AddBlock("rec_body")
	ir.Build(rb).Push(isa.R4, isa.LR).Bl("rec").Pop(isa.R4, isa.PC)
	m := p.AddFunc(&ir.Function{Name: "main"})
	mb := m.AddBlock("main_entry")
	ir.Build(mb).Push(isa.R4, isa.LR).Bl("rec").Pop(isa.R4, isa.PC)
	p.Reindex()

	est := estimateOf(t, p) // must terminate
	if est["rec_body"] < 0 {
		t.Error("negative frequency")
	}
}
