// Package freq estimates the model's Fb parameter: how many times each
// basic block executes. The paper (§4.1) uses either a profile of the
// application or a static estimate from the block's loop depth, and shows
// (§6, Figure 5) that the rough static estimate is good enough.
//
// The static estimator propagates flow over the loop-reduced DAG of each
// function (entry = 1, splits divide evenly), multiplies blocks by
// trip^depth for loop nesting, and scales whole functions by how often
// their call sites run (call-graph topological pass; recursion falls back
// to a conservative default).
package freq

import (
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/sim"
)

// DefaultTrip is the assumed iteration count of a loop whose bound is not
// known statically.
const DefaultTrip = 10

// Estimate holds per-block execution frequencies, keyed by block label.
type Estimate map[string]float64

// Static computes the loop-depth frequency estimate for the program.
func Static(p *ir.Program, graphs map[string]*cfg.Graph) Estimate {
	est := make(Estimate)

	// Per-function relative frequencies (entry = 1).
	rel := make(map[string]map[string]float64, len(p.Funcs))
	for name, g := range graphs {
		rel[name] = functionRelative(g)
	}

	// Function activation counts: main = 1, propagate through call sites
	// in call-graph topological order; cycles (recursion) get handled by
	// bounded iteration.
	fnFreq := make(map[string]float64, len(p.Funcs))
	for _, f := range p.Funcs {
		fnFreq[f.Name] = 0
	}
	if p.Func(p.Entry) != nil {
		fnFreq[p.Entry] = 1
	}
	// Bounded relaxation: propagate call frequencies a few rounds; for
	// acyclic call graphs this converges in ≤ depth rounds.
	for round := 0; round < 2*len(p.Funcs)+2; round++ {
		changed := false
		next := make(map[string]float64, len(fnFreq))
		for name := range fnFreq {
			next[name] = 0
		}
		next[p.Entry] = 1
		for name, g := range graphs {
			callerF := fnFreq[name]
			if callerF == 0 {
				continue
			}
			for b, callees := range g.CallsOut {
				bf := rel[name][b.Label] * callerF
				for _, e := range callees {
					next[e.Func.Name] += bf
				}
			}
		}
		for name, v := range next {
			if v != fnFreq[name] {
				changed = true
			}
			fnFreq[name] = v
		}
		if !changed {
			break
		}
	}

	for name, g := range graphs {
		ff := fnFreq[name]
		if ff == 0 && name != p.Entry {
			// Unreached (dead) function: keep a nominal frequency so the
			// model does not divide by zero; it will never be worth RAM.
			ff = 0
		}
		for _, b := range g.Blocks {
			est[b.Label] = rel[name][b.Label] * ff
		}
	}
	return est
}

// functionRelative computes intra-function relative block frequencies:
// entry = 1, even split at branches (back edges excluded), blocks inside
// loops multiplied by DefaultTrip^depth.
func functionRelative(g *cfg.Graph) map[string]float64 {
	rel := make(map[string]float64, len(g.Blocks))
	entry := g.Func.Entry()
	if entry == nil {
		return rel
	}

	// Back edges: b→h where h dominates b.
	isBack := func(b, h *ir.Block) bool { return g.Dominates(h, b) }

	// Flow propagation in reverse postorder over forward edges.
	order := rpo(g)
	flow := make(map[*ir.Block]float64, len(order))
	flow[entry] = 1
	for _, b := range order {
		f := flow[b]
		if f == 0 {
			continue
		}
		// Split only among forward successors: flow that would follow a
		// back edge re-enters the loop and eventually leaves through the
		// forward edges, so they carry the full amount (the trip-count
		// multiplier separately accounts for the repetition).
		var fwd []*ir.Block
		for _, s := range g.Succs(b) {
			if !isBack(b, s) {
				fwd = append(fwd, s)
			}
		}
		if len(fwd) == 0 {
			continue
		}
		share := f / float64(len(fwd))
		for _, s := range fwd {
			flow[s] += share
		}
	}

	for _, b := range g.Blocks {
		mult := 1.0
		for d := 0; d < g.LoopDepth(b); d++ {
			mult *= DefaultTrip
		}
		v := flow[b] * mult
		if v == 0 && b == entry {
			v = 1
		}
		rel[b.Label] = v
	}
	return rel
}

func rpo(g *cfg.Graph) []*ir.Block {
	entry := g.Func.Entry()
	seen := map[*ir.Block]bool{entry: true}
	var post []*ir.Block
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		for _, s := range g.Succs(b) {
			if !seen[s] {
				seen[s] = true
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// FromCounts converts raw per-block entry counts (however measured) into
// an Estimate. Both the simulator's Stats.BlockCounts and the trace
// subsystem's attribution profiles feed through here, so the two
// profiled-frequency paths cannot drift apart.
func FromCounts(counts map[string]uint64) Estimate {
	est := make(Estimate, len(counts))
	for label, n := range counts {
		est[label] = float64(n)
	}
	return est
}

// FromProfile converts simulator block counts into an Estimate — the
// "actual basic block frequency" runs of Figure 5.
func FromProfile(st *sim.Stats) Estimate {
	return FromCounts(st.BlockCounts)
}

// Of returns the frequency of a block, 0 when unknown.
func (e Estimate) Of(b *ir.Block) float64 { return e[b.Label] }
