package evaluation

import (
	"testing"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/mcc"
)

// TestTightBudgetFrequencySensitivity documents a nuance of the paper's
// "a static estimate is good enough" claim (§6): it holds when the RAM
// budget is generous (Figure 5), but under a tight budget the placement
// becomes sensitive to Fb errors. On dijkstra at a 512-byte budget the
// model-optimal ILP placement under static Fb loses measured energy to
// the coarse baselines, while the same ILP under profiled Fb wins again.
func TestTightBudgetFrequencySensitivity(t *testing.T) {
	run := func(solver core.Solver, prof bool) *core.Report {
		r, err := RunBenchmark(beebs.Get("dijkstra"), mcc.O2,
			Options{Solver: solver, Rspare: 512, UseProfile: prof})
		if err != nil {
			t.Fatal(err)
		}
		return r.Report
	}
	ilpStatic := run(core.SolverILP, false)
	ilpProf := run(core.SolverILP, true)
	fn := run(core.SolverFunction, false)

	// Profiled frequencies must repair the static estimate's mistake...
	if ilpProf.EnergyChange > ilpStatic.EnergyChange {
		t.Errorf("profiled ILP %+.1f%% worse than static ILP %+.1f%%",
			100*ilpProf.EnergyChange, 100*ilpStatic.EnergyChange)
	}
	// ...and bring the ILP at least level with the function-granularity
	// baseline on measured energy.
	if ilpProf.EnergyChange > fn.EnergyChange+0.02 {
		t.Errorf("profiled ILP %+.1f%% still behind function-level %+.1f%%",
			100*ilpProf.EnergyChange, 100*fn.EnergyChange)
	}
	t.Logf("static ILP %+.1f%%, profiled ILP %+.1f%%, function-level %+.1f%%",
		100*ilpStatic.EnergyChange, 100*ilpProf.EnergyChange, 100*fn.EnergyChange)
}
