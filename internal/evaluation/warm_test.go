package evaluation

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/mcc"
)

// TestFigure6WarmColdByteIdentity runs the full 24-point trade-off sweep
// (the exact constraint arrays `cmd/tradeoff` uses) once warm-started
// and once cold, and requires the emitted Figure 6 documents to be
// byte-identical — warm starts buy solver effort, never a different
// answer. The warm sweep must also actually have consumed warm state,
// or the identity proves nothing.
func TestFigure6WarmColdByteIdentity(t *testing.T) {
	ramSweep := []float64{0, 16, 32, 64, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 4096}
	xSweep := []float64{1.0, 1.01, 1.02, 1.05, 1.1, 1.15, 1.2, 1.3, 1.5, 2.0}

	run := func(cold bool) ([]byte, core.SolverStats) {
		t.Helper()
		sw := NewSweep(1)
		sw.ColdSolve = cold
		data, err := sw.Figure6(context.Background(), "int_matmult", mcc.O2, 8, ramSweep, xSweep)
		if err != nil {
			t.Fatalf("cold=%v: %v", cold, err)
		}
		if len(data.RAMPath) != len(ramSweep) || len(data.TimePath) != len(xSweep) {
			t.Fatalf("cold=%v: %d+%d path points, want %d+%d",
				cold, len(data.RAMPath), len(data.TimePath), len(ramSweep), len(xSweep))
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(NewFigure6JSON(data, mcc.O2.String(), true)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), sw.SolverStats()
	}

	warmDoc, warmStats := run(false)
	coldDoc, coldStats := run(true)

	if !bytes.Equal(warmDoc, coldDoc) {
		t.Errorf("warm and cold sweeps emitted different documents:\nwarm %s\ncold %s", warmDoc, coldDoc)
	}
	if warmStats.WarmHits == 0 {
		t.Errorf("warm sweep consumed no warm state: %+v", warmStats)
	}
	if coldStats != (core.SolverStats{}) {
		t.Errorf("cold sweep has a warm ledger: %+v", coldStats)
	}

	// Both sweeps emit paths sorted in the caller's constraint order
	// even though the solves run loosest-first.
	var doc Figure6JSON
	if err := json.Unmarshal(warmDoc, &doc); err != nil {
		t.Fatal(err)
	}
	for i, p := range doc.RAMPath {
		if p.Constraint != ramSweep[i] {
			t.Fatalf("ram_path[%d] constraint %v, want %v", i, p.Constraint, ramSweep[i])
		}
	}
	for i, p := range doc.TimePath {
		if p.Constraint != xSweep[i] {
			t.Fatalf("time_path[%d] constraint %v, want %v", i, p.Constraint, xSweep[i])
		}
	}
}
