// Package evaluation orchestrates the paper's experiments end-to-end:
// compile each BEEBS benchmark with mcc at the requested optimization
// level, run the placement pipeline (internal/core), and collect the
// numbers behind Figure 5, the §6 aggregate, Figure 6, the §7 case study
// and Figure 9.
//
// Every driver exists in two forms: a method on Sweep — which shares one
// core.Session per benchmark×level across everything run through it, so
// e.g. Figure 5's static and profiled variants compile and baseline-
// simulate once — and a package-level function of the same name that runs
// on a private serial Sweep for one-shot callers.
package evaluation

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/beebs"
	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/mcc"
	"repro/internal/placement"
	"repro/internal/power"
)

// Run is one benchmark × level × configuration outcome.
type Run struct {
	Bench  string
	Level  mcc.OptLevel
	Report *core.Report
}

// Options tune the pipeline for an evaluation run.
type Options struct {
	// UseProfile feeds measured block frequencies to the model (the
	// Figure 5 "w/Frequency" dots).
	UseProfile bool
	// Solver overrides the placement algorithm ("" = ILP).
	Solver core.Solver
	// Xlimit overrides the time constraint (0 = pipeline default 2.0).
	Xlimit float64
	// Rspare overrides the RAM budget (0 = derive statically).
	Rspare float64
	// LinkTime enables the §8 link-time extension (library code becomes
	// placeable).
	LinkTime bool
	// Trace attaches the internal/trace attribution collectors, filling
	// Report.BaselineTrace/OptimizedTrace.
	Trace bool
	// MaxInstrs bounds each simulated run (0 = simulator default).
	MaxInstrs uint64

	// PowerTrace schedules injected power failures for an intermittent
	// replay of both images (DESIGN.md §6l): a harvest-profile name
	// (sim.HarvestProfiles) or an inline trace spec. "" = always powered.
	PowerTrace string
	// CheckpointCycles is the periodic checkpoint interval in executed
	// cycles (0 = sim.DefaultCheckpointCycles).
	CheckpointCycles uint64
	// CkptAware prices RAM residency's per-checkpoint journal traffic
	// into the placement model (model.Params.CkptNJPerByte), so the
	// solve trades flash fetch savings against checkpoint cost.
	CkptAware bool

	// SolveMaxNodes, SolveMaxLPIter and SolveTimeout bound the ILP solve
	// (0 = unlimited); tripped budgets degrade down the placement ladder
	// instead of failing, and each Report's Strategy names the rung.
	SolveMaxNodes  int
	SolveMaxLPIter int
	SolveTimeout   time.Duration
}

// Core lowers the evaluation knobs onto the pipeline's option set (the
// service's request handlers call it too).
func (o Options) Core() core.Options {
	return core.Options{
		UseProfile:       o.UseProfile,
		Solver:           o.Solver,
		Xlimit:           o.Xlimit,
		Rspare:           o.Rspare,
		LinkTime:         o.LinkTime,
		Trace:            o.Trace,
		MaxInstrs:        o.MaxInstrs,
		PowerTrace:       o.PowerTrace,
		CheckpointCycles: o.CheckpointCycles,
		CkptAware:        o.CkptAware,
		SolveMaxNodes:    o.SolveMaxNodes,
		SolveMaxLPIter:   o.SolveMaxLPIter,
		SolveTimeout:     o.SolveTimeout,
	}
}

// RunBenchmark executes the full pipeline for one benchmark at one level,
// reusing the sweep's session for the cell (compile, baseline run, CFG,
// frequency and model stages are shared with every other configuration of
// the same cell). Errors carry the benchmark × level attribution
// (errs.Error) on top of the failing stage's own.
func (sw *Sweep) RunBenchmark(ctx context.Context, b *beebs.Benchmark, level mcc.OptLevel, opts Options) (*Run, error) {
	sess, err := sw.Session(b, level)
	if err != nil {
		return nil, errs.AtBench(b.Name, level.String(), errs.Wrap(errs.StageCompile, err))
	}
	rep, err := sess.Optimize(ctx, opts.Core())
	if err != nil {
		return nil, errs.AtBench(b.Name, level.String(), err)
	}
	return &Run{Bench: b.Name, Level: level, Report: rep}, nil
}

// RunBenchmark executes the full pipeline for one benchmark at one level.
func RunBenchmark(b *beebs.Benchmark, level mcc.OptLevel, opts Options) (*Run, error) {
	return NewSweep(1).RunBenchmark(context.Background(), b, level, opts)
}

// Figure5Row is one pair of bars (plus the frequency dots) of Figure 5.
type Figure5Row struct {
	Bench string
	Level mcc.OptLevel
	// Static-estimate results (the bars).
	EnergyChange, TimeChange, PowerChange float64
	// Profiled-frequency results (the dots).
	ProfEnergyChange, ProfTimeChange float64
	// Incomplete marks a cell whose pipeline run failed or was never
	// dispatched (cancelled sweep, panicked worker); its numbers are
	// zero and the sweep's error says why.
	Incomplete bool
}

// Figure5 reproduces the Figure 5 sweep: every benchmark at the given
// levels (the paper plots O2 and Os), with both the static estimate and
// actual frequencies. The static and profiled runs of a cell share one
// session, so each benchmark compiles and baseline-simulates once. The
// benchmark × level jobs run across the sweep's worker pool; row order is
// benchmark-major regardless of parallelism.
// On failure the returned rows are still complete in shape: every cell
// is present in order, failed or undispatched cells are marked
// Incomplete, and the error (an *errs.SweepError unless setup failed)
// says which items failed and why.
func (sw *Sweep) Figure5(ctx context.Context, levels []mcc.OptLevel) ([]Figure5Row, error) {
	jobs := sweepJobs(levels)
	own := sw.Shard.indices(len(jobs))
	rows := make([]Figure5Row, len(own))
	for i, j := range own {
		rows[i] = Figure5Row{Bench: jobs[j].bench.Name, Level: jobs[j].level, Incomplete: true}
	}
	err := sw.forEach(ctx, len(own), func(i int) error {
		j := jobs[own[i]]
		static, err := sw.RunBenchmark(ctx, j.bench, j.level, Options{})
		if err != nil {
			return err
		}
		prof, err := sw.RunBenchmark(ctx, j.bench, j.level, Options{UseProfile: true})
		if err != nil {
			return err
		}
		rows[i] = Figure5Row{
			Bench:            j.bench.Name,
			Level:            j.level,
			EnergyChange:     static.Report.EnergyChange,
			TimeChange:       static.Report.TimeChange,
			PowerChange:      static.Report.PowerChange,
			ProfEnergyChange: prof.Report.EnergyChange,
			ProfTimeChange:   prof.Report.TimeChange,
		}
		return nil
	})
	return rows, err
}

// Figure5 runs the Figure 5 sweep serially on a fresh Sweep.
func Figure5(levels []mcc.OptLevel) ([]Figure5Row, error) {
	rows, err := NewSweep(1).Figure5(context.Background(), levels)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// sweepJob is one benchmark × level cell of an evaluation sweep.
type sweepJob struct {
	bench *beebs.Benchmark
	level mcc.OptLevel
}

func sweepJobs(levels []mcc.OptLevel) []sweepJob {
	var jobs []sweepJob
	for _, b := range beebs.All() {
		for _, level := range levels {
			jobs = append(jobs, sweepJob{b, level})
		}
	}
	return jobs
}

// Aggregate is the §6 summary over all benchmarks and levels: "the average
// reduction in energy and power is 7.7% and 21.9% respectively. The
// execution time is increased by an average of 19.5%."
type Aggregate struct {
	Levels           []mcc.OptLevel
	MeanEnergyChange float64
	MeanPowerChange  float64
	MeanTimeChange   float64
	MaxEnergySaving  float64 // most negative energy change, as a positive fraction
	MaxEnergyBench   string
	MaxPowerSaving   float64
	MaxPowerBench    string
	Runs             []Run
	FailedPlacement  int // runs where nothing could be placed
	// IncompleteRuns counts cells that failed or were never dispatched;
	// the means cover only the completed cells.
	IncompleteRuns int
}

// RunAggregate evaluates all benchmarks across the given levels. The
// benchmark × level runs execute across the sweep's worker pool; the
// aggregation itself is serial over the deterministically ordered
// results, so the reported means are bit-identical at any worker count.
// On failure the aggregate still comes back, covering the cells that
// completed, with IncompleteRuns counting the ones that did not.
func (sw *Sweep) RunAggregate(ctx context.Context, levels []mcc.OptLevel) (*Aggregate, error) {
	agg := &Aggregate{Levels: levels}
	jobs := sweepJobs(levels)
	own := sw.Shard.indices(len(jobs))
	runs := make([]*Run, len(own))
	err := sw.forEach(ctx, len(own), func(i int) error {
		r, err := sw.RunBenchmark(ctx, jobs[own[i]].bench, jobs[own[i]].level, Options{})
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	for _, r := range runs {
		if r == nil {
			agg.IncompleteRuns++
			continue
		}
		agg.Runs = append(agg.Runs, *r)
		rep := r.Report
		agg.MeanEnergyChange += rep.EnergyChange
		agg.MeanPowerChange += rep.PowerChange
		agg.MeanTimeChange += rep.TimeChange
		if saving := -rep.EnergyChange; saving > agg.MaxEnergySaving {
			agg.MaxEnergySaving = saving
			agg.MaxEnergyBench = fmt.Sprintf("%s %v", r.Bench, r.Level)
		}
		if saving := -rep.PowerChange; saving > agg.MaxPowerSaving {
			agg.MaxPowerSaving = saving
			agg.MaxPowerBench = fmt.Sprintf("%s %v", r.Bench, r.Level)
		}
		if len(rep.MovedLabels()) == 0 {
			agg.FailedPlacement++
		}
	}
	if n := len(agg.Runs); n > 0 {
		agg.MeanEnergyChange /= float64(n)
		agg.MeanPowerChange /= float64(n)
		agg.MeanTimeChange /= float64(n)
	}
	return agg, err
}

// RunAggregate evaluates all benchmarks serially on a fresh Sweep.
func RunAggregate(levels []mcc.OptLevel) (*Aggregate, error) {
	agg, err := NewSweep(1).RunAggregate(context.Background(), levels)
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// SaversRow names the blocks behind one benchmark's measured energy
// saving: the attribution diff between the baseline and optimized runs.
type SaversRow struct {
	Bench  string
	Level  mcc.OptLevel
	Report *core.Report
	// Savers are the top blocks by absolute contribution to the energy
	// change (positive SavedNJ = saving).
	Savers []core.BlockSaving
	// Incomplete marks a cell whose run failed or was never dispatched.
	Incomplete bool
}

// TopSavers runs every benchmark at the given levels with tracing enabled
// and reports, per run, which blocks produced the energy saving. Jobs run
// across the sweep's worker pool with deterministic output order. On
// failure every cell is still present, failed ones marked Incomplete.
func (sw *Sweep) TopSavers(ctx context.Context, levels []mcc.OptLevel, n int) ([]SaversRow, error) {
	jobs := sweepJobs(levels)
	own := sw.Shard.indices(len(jobs))
	rows := make([]SaversRow, len(own))
	for i, j := range own {
		rows[i] = SaversRow{Bench: jobs[j].bench.Name, Level: jobs[j].level, Incomplete: true}
	}
	err := sw.forEach(ctx, len(own), func(i int) error {
		r, err := sw.RunBenchmark(ctx, jobs[own[i]].bench, jobs[own[i]].level, Options{Trace: true})
		if err != nil {
			return err
		}
		rows[i] = SaversRow{
			Bench:  r.Bench,
			Level:  r.Level,
			Report: r.Report,
			Savers: r.Report.BlockSavings(n),
		}
		return nil
	})
	return rows, err
}

// TopSavers runs the attribution sweep serially on a fresh Sweep.
func TopSavers(levels []mcc.OptLevel, n int) ([]SaversRow, error) {
	rows, err := NewSweep(1).TopSavers(context.Background(), levels, n)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Figure6Data carries the trade-off cloud and solver paths for one
// benchmark (Figure 6a: int_matmult, 6b: fdct).
type Figure6Data struct {
	Bench  string
	Points []placement.Point
	Blocks []string // labels of the enumerated top-k blocks
	// RAMPath are solver picks as Rspare grows (the dashed line).
	RAMPath []PathPoint
	// TimePath are solver picks as Xlimit grows (the solid line).
	TimePath []PathPoint
	// Base is the all-flash model point.
	BaseEnergyNJ, BaseCycles float64
}

// PathPoint is one solver decision along a constraint sweep.
type PathPoint struct {
	Constraint float64 // the Rspare bytes or Xlimit value
	EnergyNJ   float64
	Cycles     float64
	RAMBytes   float64
}

// Figure6 enumerates the 2^k placement space of a benchmark under the
// model and traces the ILP solver's choices as each constraint is relaxed.
// Every model along both constraint sweeps comes out of the cell's
// session, so the CFG and frequency estimate are built once and repeated
// constraint points (e.g. the unconstrained corner) reuse one model.
func (sw *Sweep) Figure6(ctx context.Context, benchName string, level mcc.OptLevel, k int,
	ramSweep []float64, xlimitSweep []float64) (*Figure6Data, error) {
	b := beebs.Get(benchName)
	if b == nil {
		return nil, fmt.Errorf("evaluation: unknown benchmark %q", benchName)
	}
	sess, err := sw.Session(b, level)
	if err != nil {
		return nil, errs.AtBench(benchName, level.String(), errs.Wrap(errs.StageCompile, err))
	}
	spare, err := sess.SpareRAM()
	if err != nil {
		return nil, errs.AtBench(benchName, level.String(), err)
	}

	// Restrict the model to the same k hottest blocks the cloud
	// enumerates, so the solver's path stays within the plotted space
	// (the paper's programs are small enough that its k is all blocks).
	spec := func(rspare, xlimit float64) core.ModelSpec {
		return core.ModelSpec{Rspare: rspare, Xlimit: xlimit, MaxCandidates: k}
	}

	// The cloud: no RAM or time constraint (within physical spare RAM).
	mFree, err := sess.Model(ctx, spec(spare, 1e9))
	if err != nil {
		return nil, err
	}
	points, blocks, err := placement.Enumerate(mFree, k)
	if err != nil {
		return nil, err
	}
	data := &Figure6Data{
		Bench:        benchName,
		Points:       points,
		BaseEnergyNJ: mFree.BaseEnergyNJ,
		BaseCycles:   mFree.BaseCycles,
	}
	for _, bd := range blocks {
		data.Blocks = append(data.Blocks, bd.Block.Label)
	}

	// Each path is solved loosest constraint first: every later solve
	// then tightens the previous one, so a warm-solving session (the
	// sweep default) can chain the previous optimum, its proven bound
	// and the simplex basis down the whole path — often closing a point
	// with no LP work at all. Results land in index-addressed slots and
	// are emitted in the caller's order, so the path reads identically
	// at any visiting order and any worker count; on an error the points
	// already solved still stand, each naming its own constraint.
	solvePath := func(sweep []float64, mk func(v float64) core.ModelSpec) ([]PathPoint, error) {
		order := make([]int, len(sweep))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return sweep[order[a]] > sweep[order[b]] })
		slots := make([]*PathPoint, len(sweep))
		var solveErr error
		for _, i := range order {
			res, err := sess.Solve(ctx, core.SolveSpec{ModelSpec: mk(sweep[i]), Solver: core.SolverILP})
			if err != nil {
				solveErr = err
				break
			}
			slots[i] = &PathPoint{
				Constraint: sweep[i],
				EnergyNJ:   res.Outcome.EnergyNJ,
				Cycles:     res.Outcome.Cycles,
				RAMBytes:   res.Outcome.RAMBytes,
			}
		}
		var pts []PathPoint
		for _, p := range slots {
			if p != nil {
				pts = append(pts, *p)
			}
		}
		return pts, solveErr
	}

	data.RAMPath, err = solvePath(ramSweep, func(rs float64) core.ModelSpec { return spec(rs, 1e9) })
	if err != nil {
		// The cloud and the path points already solved still stand.
		return data, errs.AtBench(benchName, level.String(), err)
	}
	data.TimePath, err = solvePath(xlimitSweep, func(xl float64) core.ModelSpec { return spec(spare, xl) })
	if err != nil {
		return data, errs.AtBench(benchName, level.String(), err)
	}
	return data, nil
}

// Figure6 runs the trade-off sweep on a fresh serial Sweep.
func Figure6(benchName string, level mcc.OptLevel, k int,
	ramSweep []float64, xlimitSweep []float64) (*Figure6Data, error) {
	return NewSweep(1).Figure6(context.Background(), benchName, level, k, ramSweep, xlimitSweep)
}

// Scenario builds the §7 case-study scenario from a measured pipeline run.
func Scenario(r *Run) casestudy.Scenario {
	rep := r.Report
	return casestudy.Scenario{
		E0: rep.Baseline.EnergyMJ,
		TA: rep.Baseline.TimeS,
		Ke: rep.Ke,
		Kt: rep.Kt,
		PS: power.STM32F100().SleepPower,
	}
}

// Figure9Series is one benchmark's curve in Figure 9.
type Figure9Series struct {
	Bench    string
	Scenario casestudy.Scenario
	Points   []casestudy.Point
}

// Figure9 sweeps the periodic-sensing period for the paper's three
// benchmarks (fdct, int_matmult, 2dfir) using measured ke/kt. The runs
// reuse the sweep's sessions, so a Figure 5 or aggregate sweep on the
// same Sweep has already paid for these cells.
func (sw *Sweep) Figure9(ctx context.Context, level mcc.OptLevel, multiples []float64) ([]Figure9Series, error) {
	var out []Figure9Series
	for j, name := range []string{"fdct", "int_matmult", "2dfir"} {
		if !sw.Shard.Owns(j) {
			continue
		}
		r, err := sw.RunBenchmark(ctx, beebs.Get(name), level, Options{})
		if err != nil {
			// The completed series still stand; the error names the
			// benchmark that broke the sweep.
			return out, err
		}
		sc := Scenario(r)
		out = append(out, Figure9Series{
			Bench:    name,
			Scenario: sc,
			Points:   sc.Sweep(multiples),
		})
	}
	return out, nil
}

// Figure9 runs the periodic-sensing sweep on a fresh serial Sweep.
func Figure9(level mcc.OptLevel, multiples []float64) ([]Figure9Series, error) {
	series, err := NewSweep(1).Figure9(context.Background(), level, multiples)
	if err != nil {
		return nil, err
	}
	return series, nil
}
