package evaluation

import (
	"testing"

	"repro/internal/beebs"
	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/mcc"
)

func TestSingleBenchmarkShape(t *testing.T) {
	r, err := RunBenchmark(beebs.Get("int_matmult"), mcc.O2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Report
	if rep.EnergyChange >= 0 {
		t.Errorf("energy change %+.1f%%, want negative", 100*rep.EnergyChange)
	}
	if rep.PowerChange >= 0 {
		t.Errorf("power change %+.1f%%, want negative", 100*rep.PowerChange)
	}
	if rep.TimeChange <= 0 {
		t.Errorf("time change %+.1f%%, want positive", 100*rep.TimeChange)
	}
	if !rep.Placement.Proven {
		t.Log("note: placement not proven optimal (node limit)")
	}
}

// TestFloatBenchmarksBarelyImprove reproduces §6: "Some of the benchmarks
// show very little improvement (cubic, float_matmult). These benchmarks
// make heavy use of library calls and emulated floating point" — the
// library is invisible to the optimizer.
func TestFloatBenchmarksBarelyImprove(t *testing.T) {
	intSaving := 0.0
	for _, name := range []string{"int_matmult", "fdct"} {
		r, err := RunBenchmark(beebs.Get(name), mcc.O2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		intSaving += -r.Report.EnergyChange
	}
	intSaving /= 2
	for _, name := range []string{"cubic", "float_matmult"} {
		r, err := RunBenchmark(beebs.Get(name), mcc.O2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		saving := -r.Report.EnergyChange
		if saving > intSaving/2 {
			t.Errorf("%s saves %.1f%%, expected well below the integer benchmarks' %.1f%%",
				name, 100*saving, 100*intSaving)
		}
	}
}

func TestProfiledFrequenciesAgree(t *testing.T) {
	// §6: "the results are very similar when the basic block frequency is
	// estimated, versus the actual frequencies."
	for _, name := range []string{"crc32", "fdct"} {
		static, err := RunBenchmark(beebs.Get(name), mcc.O2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		prof, err := RunBenchmark(beebs.Get(name), mcc.O2, Options{UseProfile: true})
		if err != nil {
			t.Fatal(err)
		}
		d := static.Report.EnergyChange - prof.Report.EnergyChange
		if d < -0.10 || d > 0.10 {
			t.Errorf("%s: static %+.3f vs profiled %+.3f energy change differ by more than 10 points",
				name, static.Report.EnergyChange, prof.Report.EnergyChange)
		}
	}
}

func TestAggregateShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 5-level aggregate in long mode only")
	}
	agg, err := RunAggregate([]mcc.OptLevel{mcc.O0, mcc.O1, mcc.O2, mcc.O3, mcc.Os})
	if err != nil {
		t.Fatal(err)
	}
	// Paper §6 aggregate: energy −7.7%, power −21.9%, time +19.5%.
	// Shape: mean energy and power drop, mean time rises.
	if agg.MeanEnergyChange >= 0 {
		t.Errorf("mean energy change %+.1f%%, want negative", 100*agg.MeanEnergyChange)
	}
	if agg.MeanPowerChange >= 0 {
		t.Errorf("mean power change %+.1f%%, want negative", 100*agg.MeanPowerChange)
	}
	if agg.MeanTimeChange <= 0 {
		t.Errorf("mean time change %+.1f%%, want positive", 100*agg.MeanTimeChange)
	}
	// Power savings exceed energy savings (power bars are taller in
	// Figure 5: the slowdown amplifies the power drop).
	if -agg.MeanPowerChange <= -agg.MeanEnergyChange {
		t.Errorf("power saving %.1f%% should exceed energy saving %.1f%%",
			-100*agg.MeanPowerChange, -100*agg.MeanEnergyChange)
	}
	t.Logf("aggregate over %d runs: energy %+.1f%%, power %+.1f%%, time %+.1f%% (paper: -7.7%%, -21.9%%, +19.5%%)",
		len(agg.Runs), 100*agg.MeanEnergyChange, 100*agg.MeanPowerChange, 100*agg.MeanTimeChange)
	t.Logf("max energy saving %.1f%% (%s; paper: 22%% int_matmult O2); max power saving %.1f%% (%s; paper: 41%% fdct O2)",
		100*agg.MaxEnergySaving, agg.MaxEnergyBench, 100*agg.MaxPowerSaving, agg.MaxPowerBench)
}

func TestFigure6Shape(t *testing.T) {
	data, err := Figure6("int_matmult", mcc.O2, 8,
		[]float64{0, 64, 128, 256, 512, 1024, 2048},
		[]float64{1.0, 1.02, 1.05, 1.1, 1.2, 1.5, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Points) != 256 {
		t.Fatalf("cloud has %d points, want 2^8", len(data.Points))
	}
	// The all-flash point is the energy maximum region; the unconstrained
	// solver pick must be below it.
	base := data.Points[0]
	last := data.RAMPath[len(data.RAMPath)-1]
	if last.EnergyNJ >= base.EnergyNJ {
		t.Errorf("relaxed-RAM solution %v nJ >= base %v nJ", last.EnergyNJ, base.EnergyNJ)
	}
	// Monotonicity: relaxing Rspare never hurts.
	for i := 1; i < len(data.RAMPath); i++ {
		if data.RAMPath[i].EnergyNJ > data.RAMPath[i-1].EnergyNJ+1e-6 {
			t.Errorf("RAM path not monotone at %v: %v > %v",
				data.RAMPath[i].Constraint, data.RAMPath[i].EnergyNJ, data.RAMPath[i-1].EnergyNJ)
		}
		if data.RAMPath[i].RAMBytes < data.RAMPath[i-1].RAMBytes-1e-6 {
			t.Errorf("RAM usage shrank as the budget grew")
		}
	}
	// Relaxing Xlimit never hurts either.
	for i := 1; i < len(data.TimePath); i++ {
		if data.TimePath[i].EnergyNJ > data.TimePath[i-1].EnergyNJ+1e-6 {
			t.Errorf("time path not monotone at %v", data.TimePath[i].Constraint)
		}
	}
	// Xlimit=1.0 must pick (nearly) nothing: zero slowdown allowed.
	if data.TimePath[0].Cycles > data.BaseCycles+1e-6 {
		t.Errorf("Xlimit=1.0 pick takes %v cycles > base %v", data.TimePath[0].Cycles, data.BaseCycles)
	}
	// The solver's constrained picks must be feasible members of the cloud
	// region: energy between min and max of the cloud.
	minE, maxE := data.Points[0].EnergyNJ, data.Points[0].EnergyNJ
	for _, p := range data.Points {
		if p.EnergyNJ < minE {
			minE = p.EnergyNJ
		}
		if p.EnergyNJ > maxE {
			maxE = p.EnergyNJ
		}
	}
	for _, p := range data.RAMPath {
		if p.EnergyNJ < minE-1e-6 || p.EnergyNJ > maxE+1e-6 {
			t.Errorf("solver pick %v nJ outside cloud [%v, %v]", p.EnergyNJ, minE, maxE)
		}
	}
}

func TestFigure9AndCaseStudy(t *testing.T) {
	series, err := Figure9(mcc.O2, []float64{1, 2, 3, 4, 6, 8, 12, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series, want 3 (fdct, int_matmult, 2dfir)", len(series))
	}
	for _, s := range series {
		if err := s.Scenario.Validate(); err != nil {
			t.Errorf("%s: %v", s.Bench, err)
		}
		// Every curve must show a saving at small periods that decays
		// toward 100% as T grows (Figure 9's shape).
		first := s.Points[0].EnergyPercent
		lastPt := s.Points[len(s.Points)-1].EnergyPercent
		if first >= 100 {
			t.Errorf("%s: no saving at the smallest period (%.1f%%)", s.Bench, first)
		}
		if lastPt < first {
			t.Errorf("%s: energy%% should rise with T (%.1f → %.1f)", s.Bench, first, lastPt)
		}
		if es := s.Scenario.EnergySaved(); es <= 0 {
			t.Errorf("%s: Es = %v mJ, want positive", s.Bench, es)
		}
	}
}

func TestSolverAblation(t *testing.T) {
	// ILP must beat or match greedy and function-level on measured energy
	// for the Figure 6 subjects.
	for _, name := range []string{"int_matmult", "fdct"} {
		var energies = map[core.Solver]float64{}
		for _, solver := range []core.Solver{core.SolverILP, core.SolverGreedy, core.SolverFunction} {
			r, err := RunBenchmark(beebs.Get(name), mcc.O2, Options{Solver: solver})
			if err != nil {
				t.Fatal(err)
			}
			energies[solver] = r.Report.Optimized.EnergyMJ
		}
		// Model-optimal ILP should not lose badly on the measured metric;
		// allow a small tolerance for model-vs-measurement mismatch.
		if energies[core.SolverILP] > energies[core.SolverGreedy]*1.05 {
			t.Errorf("%s: ILP measured %.4f mJ much worse than greedy %.4f mJ",
				name, energies[core.SolverILP], energies[core.SolverGreedy])
		}
		if energies[core.SolverILP] > energies[core.SolverFunction]*1.05 {
			t.Errorf("%s: ILP measured %.4f mJ much worse than function-level %.4f mJ",
				name, energies[core.SolverILP], energies[core.SolverFunction])
		}
	}
}

func TestTightBudgetStillValid(t *testing.T) {
	// Failure injection: tiny Rspare and minimal Xlimit must degrade
	// gracefully to near-baseline, never break the program.
	r, err := RunBenchmark(beebs.Get("sha"), mcc.O2, Options{Rspare: 16, Xlimit: 1.001})
	if err != nil {
		t.Fatal(err)
	}
	if r.Report.TimeChange > 0.01 {
		t.Errorf("time change %+.2f%% exceeds the 0.1%% limit", 100*r.Report.TimeChange)
	}
	if sc := casestudy.Scenario(Scenario(r)); sc.Kt > 1.001 {
		t.Errorf("kt = %v breaches Xlimit", sc.Kt)
	}
}
