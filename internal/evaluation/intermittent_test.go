package evaluation

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/beebs"
	"repro/internal/casestudy"
	"repro/internal/errs"
	"repro/internal/mcc"
	"repro/internal/sim"
)

// The intermittent sweep's shape: every benchmark × level × profile cell
// present in enumeration order, each carrying both replayed placements,
// with positive work rates and a positive checkpoint term on the aware
// solve.
func TestIntermittentSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full intermittent sweep in -short mode")
	}
	levels := []mcc.OptLevel{mcc.O2}
	profiles := []string{sim.ProfileSteady, sim.ProfileBursty}
	sw := NewSweep(2)
	rows, err := sw.Intermittent(context.Background(), levels, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(beebs.All()) * len(levels) * len(profiles); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	k := 0
	for _, b := range beebs.All() {
		for _, p := range profiles {
			r := rows[k]
			k++
			if r.Bench != b.Name || r.Profile != p {
				t.Fatalf("row %d is %s/%s, want %s/%s (enumeration order)", k-1, r.Bench, r.Profile, b.Name, p)
			}
			if r.Incomplete {
				t.Fatalf("row %s/%s incomplete", r.Bench, r.Profile)
			}
			if r.Outages == 0 || r.CheckpointCycles == 0 {
				t.Fatalf("row %s/%s: empty schedule: %+v", r.Bench, r.Profile, r)
			}
			if r.Baseline.WorkPerMJ() <= 0 || r.Oblivious.WorkPerMJ() <= 0 || r.Aware.WorkPerMJ() <= 0 {
				t.Fatalf("row %s/%s: non-positive work rate", r.Bench, r.Profile)
			}
			if r.CkptNJPerByte <= 0 {
				t.Fatalf("row %s/%s: aware solve lost its checkpoint term", r.Bench, r.Profile)
			}
		}
	}

	// The rows convert into valid case-study scenarios and summarize.
	sc := Scenarios(rows[:len(profiles)], intermitClockHz())
	sum, err := casestudy.SummarizeIntermittent(sc)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Profiles != len(profiles) {
		t.Fatalf("summary covers %d profiles, want %d", sum.Profiles, len(profiles))
	}

	// JSON conversion carries the numbers through.
	js := NewIntermittentRowsJSON(rows)
	if js[0].BaselineWorkPerMJ != rows[0].Baseline.WorkPerMJ() {
		t.Fatalf("JSON row diverges from sweep row")
	}
}

// The intermittent section shards and merges like every other section:
// hand-built fragments interleave back in cell order, and a non-partition
// is rejected.
func TestMergeShardsIntermittentSection(t *testing.T) {
	row := func(bench, profile string) IntermittentRowJSON {
		return IntermittentRowJSON{Bench: bench, Level: "O2", Profile: profile}
	}
	frags := []Document{
		{
			Shard:        &ShardJSON{Index: 0, Count: 2, Sections: []string{"intermittent"}},
			Intermittent: []IntermittentRowJSON{row("a", "steady"), row("b", "steady")},
		},
		{
			Shard:        &ShardJSON{Index: 1, Count: 2, Sections: []string{"intermittent"}},
			Intermittent: []IntermittentRowJSON{row("a", "bursty")},
		},
	}
	merged, err := MergeShards(frags, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range merged.Intermittent {
		got = append(got, r.Bench+"/"+r.Profile)
	}
	want := []string{"a/steady", "a/bursty", "b/steady"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged order %v, want %v", got, want)
	}

	// 3 cells sharded 2 ways must put 2 on shard 0; the reverse split is
	// not one partition.
	frags[0].Intermittent = frags[0].Intermittent[:1]
	frags[1].Intermittent = []IntermittentRowJSON{row("a", "bursty"), row("b", "bursty")}
	if _, err := MergeShards(frags, nil); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("non-partition merge = %v, want ErrBadInput", err)
	}
}

// TestNoFuseDifferentialIntermittent extends the differential property
// test to trace-driven replays: random benchmark × level × profile cells
// run fused and forced slot-at-a-time under the same injected power
// trace must produce identical reports — the intermittent comparison
// deeply equal (replay counts, checkpoint energy, wall cycles) and the
// emitted RunJSON byte-for-byte.
func TestNoFuseDifferentialIntermittent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	benches := beebs.All()
	levels := []mcc.OptLevel{mcc.O1, mcc.O2, mcc.Os}
	profiles := sim.HarvestProfiles()

	fused := NewSweep(1)
	slot := NewSweep(1)
	slot.NoFuse = true

	const cells = 4
	for i := 0; i < cells; i++ {
		b := benches[rng.Intn(len(benches))]
		level := levels[rng.Intn(len(levels))]
		profile := profiles[rng.Intn(len(profiles))]
		opts := Options{PowerTrace: profile, CkptAware: i%2 == 0}
		name := b.Name + " " + level.String() + " " + profile

		fr, fErr := fused.RunBenchmark(context.Background(), b, level, opts)
		sr, sErr := slot.RunBenchmark(context.Background(), b, level, opts)
		if (fErr == nil) != (sErr == nil) {
			t.Fatalf("%s: error divergence: fused=%v slot=%v", name, fErr, sErr)
		}
		if fErr != nil {
			if fErr.Error() != sErr.Error() {
				t.Errorf("%s: error mismatch:\nfused: %v\nslot:  %v", name, fErr, sErr)
			}
			continue
		}

		fic, sic := fr.Report.Intermittent, sr.Report.Intermittent
		if fic == nil || sic == nil {
			t.Fatalf("%s: missing intermittent comparison (fused %v, slot %v)", name, fic, sic)
		}
		if !reflect.DeepEqual(fic, sic) {
			t.Errorf("%s: intermittent comparison diverges:\nfused: %+v\nslot:  %+v", name, fic, sic)
		}
		fj, err := json.Marshal(NewRunJSON(fr))
		if err != nil {
			t.Fatal(err)
		}
		sj, err := json.Marshal(NewRunJSON(sr))
		if err != nil {
			t.Fatal(err)
		}
		if string(fj) != string(sj) {
			t.Errorf("%s: RunJSON diverges:\nfused: %s\nslot:  %s", name, fj, sj)
		}
	}
}
