package evaluation

import (
	"context"
	"errors"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/mcc"
)

// Sweep carries the cross-run machinery shared by the experiment
// drivers: the worker-pool width and a benchmark×level cache of
// core.Session pipelines, so every experiment run through one Sweep
// shares compiles, baseline simulations, CFGs, frequency estimates and
// models instead of redoing them per configuration. The zero value (or
// NewSweep(1)) runs serially.
//
// There is deliberately no package-global worker count: parallelism is
// a property of the Sweep a caller owns, so tests and the CLIs never
// mutate shared state to configure it.
type Sweep struct {
	// Workers bounds the worker pool used by the sweep drivers
	// (Figure5, RunAggregate, TopSavers, Figure1). 0 or 1 runs
	// serially. Every sweep writes results into index-addressed slots,
	// so the output ordering — and the numbers — are identical at any
	// worker count.
	Workers int

	// Prune lets BestConfig skip simulating candidates whose static
	// lower energy bound already exceeds the incumbent's simulated
	// energy. Off by default; the bound is admissible, so enabling it
	// never changes which configuration wins — only how many cells are
	// simulated (see SessionStats.PruneChecked/PruneSkipped).
	Prune bool

	// Cache, when set, backs the sweep's sessions with a cross-request
	// store: sessions are fetched through (and retained by) it, content-
	// addressed on core.SessionKey(source, level) rather than scoped to
	// this Sweep's lifetime. The daemon (internal/service) sets it so
	// sweep requests and single-shot requests hit one shared memo. The
	// sweep still tracks its own view of the sessions it touched, so
	// Stats() reports the same shape either way.
	Cache core.SessionCache

	// ColdSolve disables warm-started solves: the sweep's sessions are
	// built without core.SessionConfig.WarmSolve, so every constraint
	// point is solved from scratch. The placements and every emitted
	// number are identical either way (warm starts only change solver
	// effort); the flag exists so tests and `tradeoff -cold` can prove
	// that byte-for-byte and so the warm speedup can be benchmarked
	// against a true cold baseline. When Cache is set the store owns
	// session construction and an already-cached warm session may be
	// returned regardless; the daemon never mixes the two.
	ColdSolve bool

	// NoFuse builds the sweep's sessions with superblock fusion disabled
	// (core.SessionConfig.NoFuse → sim.Machine.NoFuse): every simulated
	// run dispatches slot-at-a-time. Outputs are byte-identical either
	// way — the differential tests and `beebsbench -nofuse` exist to
	// prove exactly that. As with ColdSolve, a Cache-owned session may
	// have been built with the other setting; the daemon never mixes
	// the two.
	NoFuse bool

	// Shard restricts the sweep drivers (Figure5, RunAggregate,
	// TopSavers, Figure9) to the cells this shard owns: cell j runs — and
	// appears in the output — iff j % Shard.Count == Shard.Index, with
	// cells enumerated in the driver's fixed order. The zero value runs
	// everything. Fragments produced by complementary shards merge back
	// into the exact unsharded document (MergeShards, `beebsbench
	// -merge`).
	Shard Shard

	mu       sync.Mutex
	sessions map[sessionKey]*sessionEntry

	sessionHits, sessionMisses atomic.Uint64
}

// NewSweep returns a Sweep running at most workers jobs concurrently.
func NewSweep(workers int) *Sweep { return &Sweep{Workers: workers} }

type sessionKey struct {
	bench string
	level mcc.OptLevel
}

type sessionEntry struct {
	once sync.Once
	sess *core.Session
	err  error
}

// NewSession compiles the benchmark at the given level and wraps the
// program in a fresh staged pipeline with the default board profile and
// memory map. Solves are cold: single-shot callers have no constraint
// sweep to chain warm state across.
func NewSession(b *beebs.Benchmark, level mcc.OptLevel) (*core.Session, error) {
	return newSession(b, level, false, false)
}

// NewWarmSession is NewSession with warm-started solves enabled: solves
// at neighbouring constraint points reuse each other's optima, bounds
// and bases (see core.SessionConfig.WarmSolve). The sweep drivers and
// the daemon build their sessions through it; placements and reported
// numbers match NewSession's exactly.
func NewWarmSession(b *beebs.Benchmark, level mcc.OptLevel) (*core.Session, error) {
	return newSession(b, level, true, false)
}

func newSession(b *beebs.Benchmark, level mcc.OptLevel, warm, noFuse bool) (*core.Session, error) {
	prog, err := mcc.Compile(b.Source, level)
	if err != nil {
		return nil, err
	}
	return core.NewSession(prog, core.SessionConfig{WarmSolve: warm, NoFuse: noFuse})
}

// Session returns the sweep's shared pipeline for one benchmark×level
// cell, compiling it on first use.
func (sw *Sweep) Session(b *beebs.Benchmark, level mcc.OptLevel) (*core.Session, error) {
	key := sessionKey{bench: b.Name, level: level}
	sw.mu.Lock()
	if sw.sessions == nil {
		sw.sessions = make(map[sessionKey]*sessionEntry)
	}
	e := sw.sessions[key]
	if e == nil {
		e = new(sessionEntry)
		sw.sessions[key] = e
		sw.sessionMisses.Add(1)
	} else {
		sw.sessionHits.Add(1)
	}
	sw.mu.Unlock()
	e.once.Do(func() {
		build := func() (*core.Session, error) { return newSession(b, level, !sw.ColdSolve, sw.NoFuse) }
		if sw.Cache != nil {
			e.sess, e.err = sw.Cache.GetSession(core.SessionKey(b.Source, level.String()), build)
			return
		}
		e.sess, e.err = build()
	})
	return e.sess, e.err
}

// SweepStats reports how much pipeline work a Sweep reused: the session
// (compile) cache, the per-stage counters aggregated over every session
// the sweep touched, and the cumulative totals across both layers. It is
// also the `session_stats` ledger schema shared by `beebsbench -json`
// and the daemon's /statsz, so sweep-local and cross-request reuse read
// the same way.
type SweepStats struct {
	SessionHits   uint64            `json:"session_hits"`
	SessionMisses uint64            `json:"session_misses"`
	Stages        core.SessionStats `json:"stages"`
	// Totals folds the session lookups and every per-stage counter into
	// one cumulative hits/misses/hit-rate line — the number the service
	// ledger and the per-sweep ledger can compare directly.
	Totals core.CacheTotals `json:"totals"`
}

// NewSweepStats assembles the shared ledger from session-level lookup
// counters and the aggregated stage counters behind them. Sweep.Stats
// and the daemon's /statsz both build their documents through it.
func NewSweepStats(sessionHits, sessionMisses uint64, stages core.SessionStats) SweepStats {
	return SweepStats{
		SessionHits:   sessionHits,
		SessionMisses: sessionMisses,
		Stages:        stages,
		Totals:        core.NewCacheTotals(sessionHits, sessionMisses, stages),
	}
}

// Stats snapshots the sweep's reuse counters.
func (sw *Sweep) Stats() SweepStats {
	sw.mu.Lock()
	entries := make([]*sessionEntry, 0, len(sw.sessions))
	for _, e := range sw.sessions {
		entries = append(entries, e)
	}
	sw.mu.Unlock()
	var stages core.SessionStats
	for _, e := range entries {
		if e.sess != nil {
			stages.Add(e.sess.Stats())
		}
	}
	return NewSweepStats(sw.sessionHits.Load(), sw.sessionMisses.Load(), stages)
}

// SolverStats aggregates the warm-start solver counters over every
// session the sweep touched — the `solver_stats` ledger emitted by
// `beebsbench -json` and the daemon's /statsz.
func (sw *Sweep) SolverStats() core.SolverStats {
	sw.mu.Lock()
	entries := make([]*sessionEntry, 0, len(sw.sessions))
	for _, e := range sw.sessions {
		entries = append(entries, e)
	}
	sw.mu.Unlock()
	var out core.SolverStats
	for _, e := range entries {
		if e.sess != nil {
			out.Add(e.sess.SolverStats())
		}
	}
	return out
}

// Isolated runs fn with the sweep workers' panic isolation: a panic is
// converted into an *errs.PanicError carrying the goroutine's stack, so
// one broken job cannot take down the caller (or the process). The
// daemon's request handlers run every pipeline execution through it —
// the same boundary the sweep pool uses, so a pathological request
// costs one 500, not the server.
func Isolated(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &errs.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// runIsolated is Isolated over one indexed sweep job.
func runIsolated(fn func(i int) error, i int) error {
	return Isolated(func() error { return fn(i) })
}

// forEach runs fn(0..n-1) across a pool of at most sw.Workers goroutines.
// Failures are aggregated into an *errs.SweepError in index order, so
// errors.Is/As reach every per-item error and the same failures report
// identically at any worker count.
//
// Two failure modes are deliberately distinct:
//
//   - An ordinary error stops dispatch: unstarted jobs above the lowest
//     failing index are neither dispatched nor run (in-flight ones
//     finish); jobs below it still run, so the lowest-indexed failure is
//     always the leading one reported.
//   - A panic is isolated: it becomes an *errs.PanicError for that item
//     and every other item still runs — a single pathological cell
//     forfeits only its own result.
//
// Cancelling ctx stops dispatch at the next boundary; undispatched items
// simply never run, and the cancellation is reported for the first item
// that was skipped.
func (sw *Sweep) forEach(ctx context.Context, n int, fn func(i int) error) error {
	w := sw.Workers
	if w > n {
		w = n
	}
	itemErrs := make([]error, n)
	skippedAt := n // first index never dispatched due to cancellation
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				skippedAt = i
				break
			}
			err := runIsolated(fn, i)
			if err == nil {
				continue
			}
			itemErrs[i] = err
			var pe *errs.PanicError
			if !errors.As(err, &pe) {
				break
			}
		}
		return collectSweepError(n, itemErrs, skippedAt, ctx)
	}

	// firstFail is the lowest ordinarily-failing index seen so far
	// (n = none). Only jobs above it are skippable: any lower job could
	// still fail with a lower index and must get its chance to run.
	// Panics do not advance it — they stop nothing.
	var firstFail atomic.Int64
	firstFail.Store(int64(n))
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if int64(i) > firstFail.Load() {
					continue
				}
				err := runIsolated(fn, i)
				if err == nil {
					continue
				}
				itemErrs[i] = err
				var pe *errs.PanicError
				if errors.As(err, &pe) {
					continue
				}
				for {
					cur := firstFail.Load()
					if int64(i) >= cur || firstFail.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		// Dispatch in order; once a failure is known, everything not
		// yet dispatched has a higher index and can be dropped.
		if int64(i) > firstFail.Load() {
			break
		}
		if ctx.Err() != nil {
			skippedAt = i
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	return collectSweepError(n, itemErrs, skippedAt, ctx)
}

// collectSweepError folds per-item errors (plus a possible cancellation
// cut-off) into one *errs.SweepError in index order, or nil if every
// item succeeded.
func collectSweepError(n int, itemErrs []error, skippedAt int, ctx context.Context) error {
	var items []errs.ItemError
	for i, err := range itemErrs {
		if err != nil {
			items = append(items, errs.ItemError{Index: i, Err: err})
		}
	}
	if skippedAt < n && itemErrs[skippedAt] == nil {
		items = append(items, errs.ItemError{Index: skippedAt, Err: ctx.Err()})
		sort.Slice(items, func(a, b int) bool { return items[a].Index < items[b].Index })
	}
	if len(items) == 0 {
		return nil
	}
	return &errs.SweepError{Total: n, Items: items}
}
