package evaluation

import "sync/atomic"

// Workers bounds the sweep worker pool used by Figure5, RunAggregate and
// TopSavers. 0 or 1 runs serially (the default); cmd/beebsbench sets it
// from its -workers flag. Every sweep writes results into index-addressed
// slots, so the output ordering is deterministic — and the numbers
// identical — regardless of the setting.
var Workers = 1

// forEach runs fn(0..n-1) across a pool of at most Workers goroutines and
// returns the error of the lowest-indexed failing job. After any failure
// the remaining jobs are skipped (in-flight ones finish).
func forEach(n int, fn func(i int) error) error {
	w := Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var failed atomic.Bool
	errs := make([]error, n)
	idx := make(chan int)
	done := make(chan struct{})
	for k := 0; k < w; k++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range idx {
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	for k := 0; k < w; k++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
