package evaluation

import (
	"sync"
	"sync/atomic"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/mcc"
)

// Sweep carries the cross-run machinery shared by the experiment
// drivers: the worker-pool width and a benchmark×level cache of
// core.Session pipelines, so every experiment run through one Sweep
// shares compiles, baseline simulations, CFGs, frequency estimates and
// models instead of redoing them per configuration. The zero value (or
// NewSweep(1)) runs serially.
//
// There is deliberately no package-global worker count: parallelism is
// a property of the Sweep a caller owns, so tests and the CLIs never
// mutate shared state to configure it.
type Sweep struct {
	// Workers bounds the worker pool used by the sweep drivers
	// (Figure5, RunAggregate, TopSavers, Figure1). 0 or 1 runs
	// serially. Every sweep writes results into index-addressed slots,
	// so the output ordering — and the numbers — are identical at any
	// worker count.
	Workers int

	mu       sync.Mutex
	sessions map[sessionKey]*sessionEntry

	sessionHits, sessionMisses atomic.Uint64
}

// NewSweep returns a Sweep running at most workers jobs concurrently.
func NewSweep(workers int) *Sweep { return &Sweep{Workers: workers} }

type sessionKey struct {
	bench string
	level mcc.OptLevel
}

type sessionEntry struct {
	once sync.Once
	sess *core.Session
	err  error
}

// NewSession compiles the benchmark at the given level and wraps the
// program in a fresh staged pipeline with the default board profile and
// memory map.
func NewSession(b *beebs.Benchmark, level mcc.OptLevel) (*core.Session, error) {
	prog, err := mcc.Compile(b.Source, level)
	if err != nil {
		return nil, err
	}
	return core.NewSession(prog, core.SessionConfig{})
}

// Session returns the sweep's shared pipeline for one benchmark×level
// cell, compiling it on first use.
func (sw *Sweep) Session(b *beebs.Benchmark, level mcc.OptLevel) (*core.Session, error) {
	key := sessionKey{bench: b.Name, level: level}
	sw.mu.Lock()
	if sw.sessions == nil {
		sw.sessions = make(map[sessionKey]*sessionEntry)
	}
	e := sw.sessions[key]
	if e == nil {
		e = new(sessionEntry)
		sw.sessions[key] = e
		sw.sessionMisses.Add(1)
	} else {
		sw.sessionHits.Add(1)
	}
	sw.mu.Unlock()
	e.once.Do(func() { e.sess, e.err = NewSession(b, level) })
	return e.sess, e.err
}

// SweepStats reports how much pipeline work a Sweep reused: the session
// (compile) cache and the per-stage counters aggregated over every
// session the sweep touched.
type SweepStats struct {
	SessionHits   uint64            `json:"session_hits"`
	SessionMisses uint64            `json:"session_misses"`
	Stages        core.SessionStats `json:"stages"`
}

// Stats snapshots the sweep's reuse counters.
func (sw *Sweep) Stats() SweepStats {
	out := SweepStats{
		SessionHits:   sw.sessionHits.Load(),
		SessionMisses: sw.sessionMisses.Load(),
	}
	sw.mu.Lock()
	entries := make([]*sessionEntry, 0, len(sw.sessions))
	for _, e := range sw.sessions {
		entries = append(entries, e)
	}
	sw.mu.Unlock()
	for _, e := range entries {
		if e.sess != nil {
			out.Stages.Add(e.sess.Stats())
		}
	}
	return out
}

// forEach runs fn(0..n-1) across a pool of at most sw.Workers goroutines
// and returns the error of the lowest-indexed failing job. After a
// failure, unstarted jobs above the lowest failing index are neither
// dispatched nor run (in-flight ones finish); jobs below it still run,
// so the lowest-indexed failure is always the one reported, regardless
// of which job happened to fail first.
func (sw *Sweep) forEach(n int, fn func(i int) error) error {
	w := sw.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	// firstFail is the lowest failing index seen so far (n = none).
	// Only jobs above it are skippable: any lower job could still fail
	// with a lower index and must get its chance to run.
	var firstFail atomic.Int64
	firstFail.Store(int64(n))
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if int64(i) > firstFail.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					for {
						cur := firstFail.Load()
						if int64(i) >= cur || firstFail.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		// Dispatch in order; once a failure is known, everything not
		// yet dispatched has a higher index and can be dropped.
		if int64(i) > firstFail.Load() {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
