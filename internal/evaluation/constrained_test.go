package evaluation

import (
	"testing"

	"repro/internal/beebs"
	"repro/internal/mcc"
)

// TestConstrainedTable exercises the pipeline under realistic RAM
// pressure (320-byte code budget, 35% slowdown cap) — the configuration
// EXPERIMENTS.md reports alongside the unconstrained sweep, and the one
// whose magnitudes sit closest to the paper's measurements.
func TestConstrainedTable(t *testing.T) {
	for _, b := range beebs.All() {
		r, err := RunBenchmark(b, mcc.O2, Options{Rspare: 320, Xlimit: 1.35})
		if err != nil {
			t.Fatal(err)
		}
		rep := r.Report
		t.Logf("%-15s energy %+6.1f%%  time %+6.1f%%  power %+6.1f%%  ram %dB",
			b.Name, 100*rep.EnergyChange, 100*rep.TimeChange, 100*rep.PowerChange,
			rep.Optimized.RAMCodeBytes)
	}
}
