package evaluation

import (
	"testing"
)

func TestFigure1Reproduction(t *testing.T) {
	rows, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Label+"/"+r.Mem.String()] = r.PowerMW
		t.Logf("%-12s %-6s %6.2f mW", r.Label, r.Mem, r.PowerMW)
	}
	// Figure 1's shape: every RAM bar is well below its flash bar...
	for _, k := range []string{"store", "load", "add", "nop", "mul", "branch"} {
		fl, ram := byKey[k+"/flash"], byKey[k+"/ram"]
		if fl <= 0 || ram <= 0 {
			t.Fatalf("%s: missing rows", k)
		}
		if ram >= fl {
			t.Errorf("%s: RAM %.2f mW >= flash %.2f mW", k, ram, fl)
		}
	}
	// ...except the last bar: RAM code loading flash data is the tallest
	// RAM bar, near flash levels.
	cross := byKey["flash load/ram"]
	for _, k := range []string{"store", "load", "add", "nop", "mul", "branch"} {
		if cross <= byKey[k+"/ram"] {
			t.Errorf("cross-load %.2f mW should exceed RAM %s %.2f mW", cross, k, byKey[k+"/ram"])
		}
	}
	if cross < 0.8*byKey["load/flash"] {
		t.Errorf("cross-load %.2f mW should approach the flash load bar %.2f mW",
			cross, byKey["load/flash"])
	}
}
