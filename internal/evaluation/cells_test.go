package evaluation

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/mcc"
)

func TestRunCellsDeliversEveryCell(t *testing.T) {
	sw := NewSweep(2)
	cells := []Cell{
		{Bench: beebs.Get("crc32"), Level: mcc.O2},
		{Bench: beebs.Get("crc32"), Level: mcc.O2, Opts: Options{Xlimit: 1.5}},
		{Bench: beebs.Get("sha"), Level: mcc.Os},
	}
	var mu sync.Mutex
	got := make(map[int]*Run)
	sw.RunCells(context.Background(), cells, func(i int, r *Run, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			t.Errorf("cell %d: %v", i, err)
			return
		}
		if _, dup := got[i]; dup {
			t.Errorf("cell %d delivered twice", i)
		}
		got[i] = r
	})
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d cells", len(got), len(cells))
	}
	for i, cell := range cells {
		if got[i].Bench != cell.Bench.Name || got[i].Level != cell.Level {
			t.Fatalf("cell %d labelled %s/%v, want %s/%v", i, got[i].Bench, got[i].Level, cell.Bench.Name, cell.Level)
		}
	}
	// Cells 0 and 1 share a session (same bench+level, different knobs).
	st := sw.Stats()
	if st.SessionMisses != 2 || st.SessionHits != 1 {
		t.Fatalf("session ledger = %+v, want 2 misses / 1 hit", st)
	}
}

func TestRunCellsCancelledCellsStillCalledBack(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch: no cell can run
	sw := NewSweep(1)
	cells := []Cell{
		{Bench: beebs.Get("crc32"), Level: mcc.O2},
		{Bench: beebs.Get("sha"), Level: mcc.O2},
	}
	calls := 0
	sw.RunCells(ctx, cells, func(i int, r *Run, err error) {
		calls++
		if r != nil {
			t.Errorf("cell %d produced a result after cancellation", i)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cell %d error = %v, want context.Canceled", i, err)
		}
	})
	if calls != len(cells) {
		t.Fatalf("done ran %d times, want exactly %d (one per cell)", calls, len(cells))
	}
}

func TestRunCellsBadCellForfeitsOnlyItself(t *testing.T) {
	// Cell 1 carries an unknown solver: its pipeline run fails, but the
	// neighbouring cells still deliver results.
	sw := NewSweep(2)
	cells := []Cell{
		{Bench: beebs.Get("crc32"), Level: mcc.O2},
		{Bench: beebs.Get("crc32"), Level: mcc.O2, Opts: Options{Solver: "quantum"}},
		{Bench: beebs.Get("sha"), Level: mcc.O2},
	}
	var mu sync.Mutex
	errsByCell := make(map[int]error)
	runs := 0
	sw.RunCells(context.Background(), cells, func(i int, r *Run, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errsByCell[i] = err
			return
		}
		runs++
	})
	if runs != 2 {
		t.Fatalf("healthy cells delivered %d results, want 2", runs)
	}
	if len(errsByCell) != 1 || errsByCell[1] == nil {
		t.Fatalf("failure map = %v, want exactly cell 1", errsByCell)
	}
}

func TestNewSweepStatsTotals(t *testing.T) {
	var stages core.SessionStats
	stages.Baseline = core.StageStats{Hits: 3, Misses: 1}
	stages.Solve = core.StageStats{Hits: 5, Misses: 2}
	st := NewSweepStats(4, 2, stages)
	wantHits := uint64(4 + 3 + 5)
	wantMisses := uint64(2 + 1 + 2)
	if st.Totals.Hits != wantHits || st.Totals.Misses != wantMisses {
		t.Fatalf("totals = %+v, want %d hits / %d misses", st.Totals, wantHits, wantMisses)
	}
	wantRate := float64(wantHits) / float64(wantHits+wantMisses)
	if st.Totals.HitRate != wantRate {
		t.Fatalf("hit rate = %v, want %v", st.Totals.HitRate, wantRate)
	}
	empty := NewSweepStats(0, 0, core.SessionStats{})
	if empty.Totals.HitRate != 0 {
		t.Fatalf("empty ledger hit rate = %v, want 0", empty.Totals.HitRate)
	}
}
