package evaluation

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/power"
)

// Figure1Row is one bar of Figure 1: the average power of a 16-identical-
// instruction loop executing from the given memory.
type Figure1Row struct {
	Label   string
	Mem     power.Memory
	PowerMW float64
}

// figure1Iterations is sized so the measurement loop dwarfs the harness.
const figure1Iterations = 2000

// figure1Program builds the paper's micro-program: a loop of sixteen
// identical instructions of one kind, placed in flash or RAM. kind
// "flashload" is the last bar: the loop runs from RAM but loads a
// constant that lives in flash.
func figure1Program(kind string, inRAM bool) (*ir.Program, map[string]bool, error) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})

	entry := f.AddBlock("entry")
	eb := ir.Build(entry)
	eb.MovImm(isa.R2, 0) // iteration counter
	switch kind {
	case "store", "load":
		eb.LdrLit(isa.R1, "buf")
	case "flashload":
		eb.LdrLit(isa.R1, "rom")
	}
	placement := map[string]bool{}
	if inRAM {
		// Jump into the RAM-resident loop with the Figure 4 idiom.
		entry.Append(isa.Instr{Op: isa.LDRLIT, Rd: isa.PC, Sym: "loop"})
	}

	loop := f.AddBlock("loop")
	lb := ir.Build(loop)
	if kind == "branch" {
		// Sixteen unconditional branches through adjacent blocks.
		for i := 0; i < 16; i++ {
			var blk *ir.Block
			if i == 0 {
				blk = loop
			} else {
				blk = f.AddBlock(fmt.Sprintf("hop%d", i))
			}
			next := fmt.Sprintf("hop%d", i+1)
			if i == 15 {
				next = "latch"
			}
			ir.Build(blk).B(next)
			if inRAM {
				placement[blk.Label] = true
			}
		}
	} else {
		for i := 0; i < 16; i++ {
			switch kind {
			case "nop":
				lb.Nop()
			case "add":
				lb.Add(isa.R0, isa.R0, isa.R3)
			case "mul":
				lb.Mul(isa.R0, isa.R0, isa.R3)
			case "store":
				lb.Str(isa.R0, isa.R1, 0)
			case "load", "flashload":
				lb.Ldr(isa.R0, isa.R1, 0)
			default:
				return nil, nil, fmt.Errorf("evaluation: unknown figure-1 kind %q", kind)
			}
		}
		lb.B("latch")
		if inRAM {
			placement["loop"] = true
		}
	}

	// Loop tail, co-located with the loop: latch counts iterations and
	// falls through to the back edge; exit leaves through an indirect
	// branch so the same structure works from either memory.
	latch := f.AddBlock("latch")
	ir.Build(latch).
		AddImm(isa.R2, isa.R2, 1).
		LdrConst(isa.R4, figure1Iterations).
		Cmp(isa.R2, isa.R4).
		Bcond(isa.EQ, "exit")
	back := f.AddBlock("back")
	ir.Build(back).B("loop")
	exit := f.AddBlock("exit")
	exit.Append(isa.Instr{Op: isa.LDRLIT, Rd: isa.PC, Sym: "ret"})
	ret := f.AddBlock("ret")
	ir.Build(ret).Ret()
	if inRAM {
		placement["latch"] = true
		placement["back"] = true
		placement["exit"] = true
	}

	p.AddGlobal(&ir.Global{Name: "buf", Size: 4})
	p.AddGlobal(&ir.Global{Name: "rom", Size: 4, RO: true})
	p.Reindex()
	if err := ir.Verify(p); err != nil {
		return nil, nil, err
	}
	return p, placement, nil
}

// figure1Bars lists the Figure 1 measurements in plot order: each
// instruction class from flash, the same classes from RAM, and the tall
// final bar — RAM-resident code loading flash-resident data.
var figure1Bars = []struct {
	kind  string
	inRAM bool
	label string
}{
	{"store", false, "store"}, {"load", false, "load"}, {"add", false, "add"},
	{"nop", false, "nop"}, {"mul", false, "mul"}, {"branch", false, "branch"},
	{"store", true, "store"}, {"load", true, "load"}, {"add", true, "add"},
	{"nop", true, "nop"}, {"mul", true, "mul"}, {"branch", true, "branch"},
	{"flashload", true, "flash load"},
}

// Figure1 measures the average power of each instruction-class loop from
// flash and from RAM, plus the RAM-code/flash-data bar, on the simulated
// board — regenerating Figure 1 of the paper. Each micro-program is a
// one-measurement core.Session; the bars run across the sweep's worker
// pool in fixed plot order.
func (sw *Sweep) Figure1(ctx context.Context) ([]Figure1Row, error) {
	rows := make([]Figure1Row, len(figure1Bars))
	err := sw.forEach(ctx, len(figure1Bars), func(i int) error {
		bar := figure1Bars[i]
		p, placement, err := figure1Program(bar.kind, bar.inRAM)
		if err != nil {
			return err
		}
		sess, err := core.NewSession(p, core.SessionConfig{})
		if err != nil {
			return fmt.Errorf("figure1 %s: %w", bar.label, err)
		}
		m, err := sess.Measure(ctx, placement, false, 0)
		if err != nil {
			return fmt.Errorf("figure1 %s: %w", bar.label, err)
		}
		mem := power.Flash
		if bar.inRAM {
			mem = power.RAM
		}
		rows[i] = Figure1Row{Label: bar.label, Mem: mem, PowerMW: m.Metrics.PowerMW}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Figure1 runs the micro-benchmark bars serially on a fresh Sweep.
func Figure1() ([]Figure1Row, error) {
	return NewSweep(1).Figure1(context.Background())
}
