package evaluation

import (
	"testing"

	"repro/internal/beebs"
	"repro/internal/mcc"
)

// TestLinkTimeExtension validates the paper's §8 future work: with the
// optimization moved to link time ("allowing it to have a full view of
// the program"), the soft-float library becomes placeable and the
// library-bound benchmarks — which barely improved in Figure 5 — gain
// most of what the integer benchmarks get.
func TestLinkTimeExtension(t *testing.T) {
	for _, name := range []string{"cubic", "float_matmult"} {
		b := beebs.Get(name)
		compilerOnly, err := RunBenchmark(b, mcc.O2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		linkTime, err := RunBenchmark(b, mcc.O2, Options{LinkTime: true})
		if err != nil {
			t.Fatal(err)
		}
		co := -compilerOnly.Report.EnergyChange
		lt := -linkTime.Report.EnergyChange
		t.Logf("%s: compiler-only saving %.1f%%, link-time saving %.1f%%",
			name, 100*co, 100*lt)
		if lt <= co {
			t.Errorf("%s: link-time saving %.1f%% did not beat compiler-only %.1f%%",
				name, 100*lt, 100*co)
		}
		if lt < 0.20 {
			t.Errorf("%s: link-time saving %.1f%% should approach the integer benchmarks'",
				name, 100*lt)
		}
		// Library blocks must actually have moved.
		movedLib := false
		for _, lbl := range linkTime.Report.MovedLabels() {
			blk := linkTime.Report.Optimized0.BlockByLabel(lbl)
			if blk != nil && blk.Func.Library {
				movedLib = true
				break
			}
		}
		if !movedLib {
			t.Errorf("%s: link-time mode moved no library blocks", name)
		}
	}
}

// TestLinkTimeIntegerUnchanged: integer benchmarks have no library code,
// so link-time mode must behave identically.
func TestLinkTimeIntegerUnchanged(t *testing.T) {
	b := beebs.Get("crc32")
	normal, err := RunBenchmark(b, mcc.O2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lt, err := RunBenchmark(b, mcc.O2, Options{LinkTime: true})
	if err != nil {
		t.Fatal(err)
	}
	if normal.Report.Optimized.EnergyMJ != lt.Report.Optimized.EnergyMJ {
		t.Errorf("link-time changed a library-free benchmark: %v vs %v",
			normal.Report.Optimized.EnergyMJ, lt.Report.Optimized.EnergyMJ)
	}
}
