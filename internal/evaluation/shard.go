package evaluation

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/errs"
)

// Shard selects a deterministic slice of a sweep's cells so independent
// processes (or CI jobs) can split one evaluation and merge the JSON
// fragments afterwards (`beebsbench -shard i/n` + `beebsbench -merge`).
//
// Every sweep driver enumerates its cells in a fixed order — benchmark-
// major for the benchmark × level sweeps, series order for Figure 9 —
// and a shard owns cell j exactly when j % Count == Index. Ownership
// therefore depends only on the cell enumeration, never on worker count,
// timing or which other shards exist, which is what makes the fragments
// mergeable: shard i's rows are the unsharded document's rows j with
// j % n == i, in order, and MergeShards interleaves them back.
//
// The zero value owns every cell (an unsharded sweep).
type Shard struct {
	Index int
	Count int
}

// ParseShard parses the CLI form "i/n" (0 <= i < n).
func ParseShard(s string) (Shard, error) {
	var sh Shard
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return sh, errs.BadInput(fmt.Errorf("shard %q: want i/n, e.g. 0/4", s))
	}
	var err error
	if sh.Index, err = strconv.Atoi(idx); err != nil {
		return sh, errs.BadInput(fmt.Errorf("shard %q: want i/n, e.g. 0/4", s))
	}
	if sh.Count, err = strconv.Atoi(cnt); err != nil {
		return sh, errs.BadInput(fmt.Errorf("shard %q: want i/n, e.g. 0/4", s))
	}
	if err := sh.Validate(); err != nil {
		return sh, err
	}
	return sh, nil
}

// Validate rejects out-of-range shard coordinates.
func (s Shard) Validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil // the zero value: unsharded
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return errs.BadInput(fmt.Errorf("shard %d/%d: index must be in [0, count)", s.Index, s.Count))
	}
	return nil
}

// Owns reports whether cell j of a sweep belongs to this shard.
func (s Shard) Owns(j int) bool {
	if s.Count <= 1 {
		return true
	}
	return j%s.Count == s.Index
}

// indices returns, in order, the owned cell indices of an n-cell sweep.
func (s Shard) indices(n int) []int {
	if s.Count <= 1 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	var idx []int
	for j := s.Index; j < n; j += s.Count {
		idx = append(idx, j)
	}
	return idx
}

// shardLen is the number of cells shard i of n owns in an m-cell sweep —
// what MergeShards expects each fragment's sections to contain.
func shardLen(m, n, i int) int {
	l := m / n
	if i < m%n {
		l++
	}
	return l
}
