package evaluation

import (
	"context"
	"testing"

	"repro/internal/beebs"
	"repro/internal/mcc"
)

// selectionCandidates is a constructed scenario with a dominated cell:
// the incumbent (default placement) saves enough energy that the
// no-RAM candidate's static lower bound — a baseline-shaped image —
// provably exceeds it, so a pruning sweep can skip simulating it.
func selectionCandidates() []Candidate {
	return []Candidate{
		{Name: "default", Opts: Options{}},
		{Name: "no-ram", Opts: Options{Rspare: 1}},
		{Name: "profiled", Opts: Options{UseProfile: true}},
	}
}

// TestBestConfigPruningNeutral is the golden test for admissible
// pruning: the selected winner — name, energy, every reported number —
// must be identical with pruning on and off, while the pruning sweep
// must actually skip at least one dominated candidate and ledger it.
func TestBestConfigPruningNeutral(t *testing.T) {
	b := beebs.Get("sha")
	cands := selectionCandidates()

	plain := NewSweep(1)
	ref, err := plain.BestConfig(context.Background(), b, mcc.O2, cands)
	if err != nil {
		t.Fatal(err)
	}

	pruned := NewSweep(1)
	pruned.Prune = true
	got, err := pruned.BestConfig(context.Background(), b, mcc.O2, cands)
	if err != nil {
		t.Fatal(err)
	}

	if got.Winner != ref.Winner {
		t.Fatalf("pruning changed the winner: %q vs %q", got.Winner, ref.Winner)
	}
	if got.Report.Optimized.Stats.EnergyNJ != ref.Report.Optimized.Stats.EnergyNJ {
		t.Errorf("pruning changed the winner's energy: %v vs %v",
			got.Report.Optimized.Stats.EnergyNJ, ref.Report.Optimized.Stats.EnergyNJ)
	}
	if got.Report.EnergyChange != ref.Report.EnergyChange ||
		got.Report.TimeChange != ref.Report.TimeChange ||
		got.Report.PowerChange != ref.Report.PowerChange {
		t.Errorf("pruning changed the winner's report: %+v vs %+v", got.Report, ref.Report)
	}

	if len(ref.Rows) != len(cands) || len(got.Rows) != len(cands) {
		t.Fatalf("row counts: plain %d pruned %d, want %d", len(ref.Rows), len(got.Rows), len(cands))
	}
	for _, row := range ref.Rows {
		if row.Pruned {
			t.Errorf("plain sweep pruned %q", row.Name)
		}
	}

	var prunedRows int
	for _, row := range got.Rows {
		if !row.Pruned {
			continue
		}
		prunedRows++
		if row.Report != nil || row.EnergyNJ != 0 {
			t.Errorf("pruned row %q carries simulation results: %+v", row.Name, row)
		}
		if row.LowerBoundNJ <= ref.Report.Optimized.Stats.EnergyNJ {
			t.Errorf("pruned row %q lower bound %.0f does not dominate incumbent %.0f",
				row.Name, row.LowerBoundNJ, ref.Report.Optimized.Stats.EnergyNJ)
		}
	}
	if prunedRows == 0 {
		t.Error("pruning sweep simulated every candidate; want >= 1 pruned")
	}

	st := pruned.Stats().Stages
	if st.PruneChecked == 0 || st.PruneSkipped == 0 {
		t.Errorf("prune ledger empty: checked %d skipped %d", st.PruneChecked, st.PruneSkipped)
	}
	if st.PruneSkipped != uint64(prunedRows) {
		t.Errorf("ledger skipped %d, rows pruned %d", st.PruneSkipped, prunedRows)
	}
	if ps := plain.Stats().Stages; ps.PruneChecked != 0 || ps.PruneSkipped != 0 {
		t.Errorf("plain sweep touched the prune ledger: %+v", ps)
	}
	t.Logf("winner %q at %.0f nJ; pruned %d/%d candidates (checked %d)",
		got.Winner, got.Report.Optimized.Stats.EnergyNJ, prunedRows, len(cands), st.PruneChecked)
}

// TestBestConfigOrder pins the tie-break: the earliest candidate wins a
// tie, so duplicate configurations cannot flap the winner.
func TestBestConfigOrder(t *testing.T) {
	b := beebs.Get("crc32")
	best, err := NewSweep(1).BestConfig(context.Background(), b, mcc.O2, []Candidate{
		{Name: "first", Opts: Options{}},
		{Name: "same-again", Opts: Options{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Winner != "first" {
		t.Errorf("tie went to %q, want %q", best.Winner, "first")
	}
}
