package evaluation

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/errs"
	"repro/internal/mcc"
)

// TestForEachPanicIsolatedSerial: a panicking job on the serial path is
// converted to a PanicError and every other job still runs — a panic is
// strictly less disruptive than an ordinary error, which stops the sweep.
func TestForEachPanicIsolatedSerial(t *testing.T) {
	sw := NewSweep(1)
	var ran []int
	err := sw.forEach(context.Background(), 6, func(i int) error {
		ran = append(ran, i)
		if i == 2 {
			panic("cell 2 exploded")
		}
		return nil
	})
	if want := []int{0, 1, 2, 3, 4, 5}; fmt.Sprint(ran) != fmt.Sprint(want) {
		t.Fatalf("ran %v, want %v (panic must not stop the sweep)", ran, want)
	}
	var pe *errs.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a wrapped *errs.PanicError", err)
	}
	if pe.Value != "cell 2 exploded" {
		t.Errorf("recovered value = %v, want the panic payload", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "forEach") {
		t.Errorf("PanicError carries no useful stack:\n%s", pe.Stack)
	}
}

// TestForEachPanicIsolatedParallel: same contract across a worker pool —
// one pathological cell forfeits only its own result.
func TestForEachPanicIsolatedParallel(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sw := NewSweep(workers)
			const n = 40
			counts := make([]atomic.Int64, n)
			err := sw.forEach(context.Background(), n, func(i int) error {
				counts[i].Add(1)
				if i == 7 || i == 23 {
					panic(fmt.Sprintf("cell %d exploded", i))
				}
				return nil
			})
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("job %d ran %d times, want 1", i, c)
				}
			}
			var se *errs.SweepError
			if !errors.As(err, &se) {
				t.Fatalf("err = %v, want *errs.SweepError", err)
			}
			if se.Total != n || len(se.Items) != 2 {
				t.Fatalf("SweepError %d items of %d, want 2 of %d", len(se.Items), se.Total, n)
			}
			if se.Items[0].Index != 7 || se.Items[1].Index != 23 {
				t.Errorf("items at %d,%d, want index order 7,23",
					se.Items[0].Index, se.Items[1].Index)
			}
		})
	}
}

// TestForEachPanicAndErrorMixed: a panic below an ordinary failure is
// still reported, the ordinary failure still stops dispatch, and both
// arrive in index order inside one SweepError.
func TestForEachPanicAndErrorMixed(t *testing.T) {
	sw := NewSweep(2)
	boom := errors.New("boom")
	const n = 500
	var ran atomic.Int64
	err := sw.forEach(context.Background(), n, func(i int) error {
		ran.Add(1)
		switch i {
		case 1:
			panic("panicked before the failure")
		case 3:
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("errors.Is(err, boom) = false for %v", err)
	}
	var pe *errs.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic item lost from %v", err)
	}
	var se *errs.SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *errs.SweepError", err)
	}
	for j := 1; j < len(se.Items); j++ {
		if se.Items[j-1].Index >= se.Items[j].Index {
			t.Fatalf("items out of index order: %d before %d",
				se.Items[j-1].Index, se.Items[j].Index)
		}
	}
	if got := ran.Load(); got > 10 {
		t.Errorf("%d of %d jobs ran; the ordinary error should have stopped dispatch", got, n)
	}
}

// TestForEachCancelledBeforeStart: a pre-cancelled context runs nothing
// and reports the cancellation as the first item's error.
func TestForEachCancelledBeforeStart(t *testing.T) {
	for _, workers := range []int{1, 4} {
		sw := NewSweep(workers)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int64
		err := sw.forEach(ctx, 8, func(i int) error {
			ran.Add(1)
			return nil
		})
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d jobs ran under a cancelled context", workers, ran.Load())
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if !errs.IsCancellation(err) {
			t.Fatalf("workers=%d: IsCancellation(%v) = false", workers, err)
		}
	}
}

// TestForEachCancelMidSweep: cancelling between jobs stops dispatch at
// the boundary; completed items keep their results and the error both
// reports the cancellation and stays errors.Is-reachable.
func TestForEachCancelMidSweep(t *testing.T) {
	sw := NewSweep(1)
	ctx, cancel := context.WithCancel(context.Background())
	var ran []int
	err := sw.forEach(ctx, 8, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			cancel()
		}
		return nil
	})
	if want := []int{0, 1, 2, 3}; fmt.Sprint(ran) != fmt.Sprint(want) {
		t.Fatalf("ran %v, want %v", ran, want)
	}
	var se *errs.SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *errs.SweepError", err)
	}
	if len(se.Items) != 1 || se.Items[0].Index != 4 {
		t.Fatalf("cancellation reported at %+v, want the first undispatched index 4", se.Items)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

// TestFigure5PartialShape drives the public partial-results contract end
// to end: under a cancelled context the sweep does no work, yet the
// returned rows are complete in shape — every benchmark × level cell
// present, in order, named, and marked Incomplete.
func TestFigure5PartialShape(t *testing.T) {
	sw := NewSweep(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := sw.Figure5(ctx, []mcc.OptLevel{mcc.O2, mcc.Os})
	if err == nil {
		t.Fatal("cancelled Figure5 returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled reachable", err)
	}
	jobs := sweepJobs([]mcc.OptLevel{mcc.O2, mcc.Os})
	if len(rows) != len(jobs) {
		t.Fatalf("%d rows for %d cells", len(rows), len(jobs))
	}
	for i, r := range rows {
		if !r.Incomplete {
			t.Errorf("row %d (%s %v) not marked Incomplete under a cancelled context", i, r.Bench, r.Level)
		}
		if r.Bench != jobs[i].bench.Name || r.Level != jobs[i].level {
			t.Errorf("row %d = %s %v, want %s %v (shape must survive failure)",
				i, r.Bench, r.Level, jobs[i].bench.Name, jobs[i].level)
		}
	}
	// No session should have been compiled for a sweep that never ran.
	if st := sw.Stats(); st.SessionMisses != 0 {
		t.Errorf("cancelled sweep compiled %d sessions", st.SessionMisses)
	}
}
