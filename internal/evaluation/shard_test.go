package evaluation

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/errs"
	"repro/internal/mcc"
)

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"0/1": {0, 1},
		"0/4": {0, 4},
		"3/4": {3, 4},
	}
	for in, want := range good {
		sh, err := ParseShard(in)
		if err != nil || sh != want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", in, sh, err, want)
		}
	}
	for _, in := range []string{"", "3", "4/4", "-1/4", "1/0", "a/b", "1/2/3"} {
		if _, err := ParseShard(in); !errors.Is(err, errs.ErrBadInput) {
			t.Errorf("ParseShard(%q) = %v, want ErrBadInput", in, err)
		}
	}
}

// TestShardPartition: for any count, the shards' owned indices are
// disjoint and cover every cell exactly once, in order — the property
// the merge interleave inverts.
func TestShardPartition(t *testing.T) {
	const cells = 17
	for n := 1; n <= 5; n++ {
		owner := make([]int, cells)
		for i := range owner {
			owner[i] = -1
		}
		for i := 0; i < n; i++ {
			sh := Shard{Index: i, Count: n}
			if got, want := len(sh.indices(cells)), shardLen(cells, n, i); got != want {
				t.Errorf("shard %d/%d owns %d cells, want %d", i, n, got, want)
			}
			for _, j := range sh.indices(cells) {
				if !sh.Owns(j) {
					t.Errorf("shard %d/%d: indices lists %d but Owns(%d) is false", i, n, j, j)
				}
				if owner[j] != -1 {
					t.Errorf("cell %d owned by both shard %d and %d of %d", j, owner[j], i, n)
				}
				owner[j] = i
			}
		}
		for j, o := range owner {
			if o == -1 {
				t.Errorf("cell %d owned by no shard of %d", j, n)
			}
		}
	}
}

// shardFragment runs the aggregate + fig9 sections the way beebsbench
// -shard does, producing one ledger-free fragment document.
func shardFragment(t *testing.T, sh Shard) Document {
	t.Helper()
	sw := NewSweep(1)
	sw.Shard = sh
	var doc Document
	doc.Shard = &ShardJSON{Index: sh.Index, Count: sh.Count, Sections: []string{"aggregate", "fig9"}}
	agg, err := sw.RunAggregate(context.Background(), []mcc.OptLevel{mcc.O2})
	if err != nil {
		t.Fatalf("shard %d/%d aggregate: %v", sh.Index, sh.Count, err)
	}
	j := NewAggregateJSON(agg)
	doc.Aggregate = &j
	series, err := sw.Figure9(context.Background(), mcc.O2, []float64{1, 2, 4})
	if err != nil {
		t.Fatalf("shard %d/%d fig9: %v", sh.Index, sh.Count, err)
	}
	doc.Fig9 = NewFigure9JSON(series)
	return doc
}

// TestMergeShardsByteIdentity: merging the fragments of a 3-way sharded
// sweep reproduces the unsharded document byte for byte — including the
// aggregate's recomputed means and maxima, which no single shard can
// compute alone.
func TestMergeShardsByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full aggregate sweep in -short mode")
	}
	const n = 3
	frags := make([]Document, n)
	for i := 0; i < n; i++ {
		frags[i] = shardFragment(t, Shard{Index: i, Count: n})
	}
	// Shuffle the argument order: merge must key on the recorded index.
	merged, err := MergeShards([]Document{frags[2], frags[0], frags[1]}, nil)
	if err != nil {
		t.Fatal(err)
	}

	full := shardFragment(t, Shard{})
	full.Shard = nil
	want, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("merged document differs from unsharded run:\nmerged: %s\nfull:   %s", got, want)
	}
}

func TestMergeShardsValidation(t *testing.T) {
	frag := func(i, n int, sections ...string) Document {
		if sections == nil {
			sections = []string{"fig9"}
		}
		return Document{Shard: &ShardJSON{Index: i, Count: n, Sections: sections}}
	}
	cases := []struct {
		name  string
		frags []Document
	}{
		{"empty", nil},
		{"no-metadata", []Document{{}}},
		{"count-conflict", []Document{frag(0, 2), frag(1, 3)}},
		{"index-out-of-range", []Document{frag(0, 2), frag(2, 2)}},
		{"duplicate", []Document{frag(0, 2), frag(0, 2)}},
		{"missing", []Document{frag(0, 3), frag(1, 3)}},
		{"sections-conflict", []Document{frag(0, 2, "fig9"), frag(1, 2, "fig5")}},
		{"incomplete", []Document{frag(0, 2), {
			Shard:  &ShardJSON{Index: 1, Count: 2, Sections: []string{"fig9"}},
			Status: "incomplete",
		}}},
		// A 3-cell sweep sharded 2 ways puts 2 cells on shard 0 and 1 on
		// shard 1; the reverse split cannot come from one invocation.
		{"not-a-partition", []Document{
			{Shard: &ShardJSON{Index: 0, Count: 2, Sections: []string{"fig9"}},
				Fig9: make([]Figure9SeriesJSON, 1)},
			{Shard: &ShardJSON{Index: 1, Count: 2, Sections: []string{"fig9"}},
				Fig9: make([]Figure9SeriesJSON, 2)},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := MergeShards(tc.frags, nil); !errors.Is(err, errs.ErrBadInput) {
				t.Errorf("MergeShards = %v, want ErrBadInput", err)
			}
		})
	}
}
