package evaluation

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/beebs"
	"repro/internal/mcc"
)

// TestNoFuseDifferentialRandomCells is the pipeline-level differential
// property test for the superblock engine: random benchmark × level ×
// rspare cells run through a fused sweep and a forced slot-dispatch sweep
// (the beebsbench -nofuse knob) must produce identical reports — the
// simulated stats bit-for-bit (EnergyNJ is a float accumulation, so this
// checks the fused engine's in-order charging, not just totals) and the
// emitted RunJSON byte-for-byte. The seed is fixed so the sampled cells
// are stable across runs; internal/sim's fuzz target covers the
// instruction-level space, this covers the whole pipeline including
// placement-driven RAM layouts.
func TestNoFuseDifferentialRandomCells(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	benches := beebs.All()
	levels := []mcc.OptLevel{mcc.O0, mcc.O1, mcc.O2, mcc.Os}
	rspares := []float64{0, 64, 256, 1024}

	fused := NewSweep(1)
	slot := NewSweep(1)
	slot.NoFuse = true

	const cells = 6
	for i := 0; i < cells; i++ {
		b := benches[rng.Intn(len(benches))]
		level := levels[rng.Intn(len(levels))]
		rspare := rspares[rng.Intn(len(rspares))]
		opts := Options{Rspare: rspare}

		fr, fErr := fused.RunBenchmark(context.Background(), b, level, opts)
		sr, sErr := slot.RunBenchmark(context.Background(), b, level, opts)
		name := b.Name + " " + level.String()
		if (fErr == nil) != (sErr == nil) {
			t.Fatalf("%s rspare=%v: error divergence: fused=%v slot=%v", name, rspare, fErr, sErr)
		}
		if fErr != nil {
			if fErr.Error() != sErr.Error() {
				t.Errorf("%s rspare=%v: error mismatch:\nfused: %v\nslot:  %v", name, rspare, fErr, sErr)
			}
			continue
		}

		frep, srep := fr.Report, sr.Report
		if !reflect.DeepEqual(frep.Baseline.Stats, srep.Baseline.Stats) {
			t.Errorf("%s rspare=%v: baseline stats diverge:\nfused: %+v\nslot:  %+v",
				name, rspare, frep.Baseline.Stats, srep.Baseline.Stats)
		}
		if !reflect.DeepEqual(frep.Optimized.Stats, srep.Optimized.Stats) {
			t.Errorf("%s rspare=%v: optimized stats diverge:\nfused: %+v\nslot:  %+v",
				name, rspare, frep.Optimized.Stats, srep.Optimized.Stats)
		}

		fj, err := json.Marshal(NewRunJSON(fr))
		if err != nil {
			t.Fatal(err)
		}
		sj, err := json.Marshal(NewRunJSON(sr))
		if err != nil {
			t.Fatal(err)
		}
		if string(fj) != string(sj) {
			t.Errorf("%s rspare=%v: RunJSON diverges:\nfused: %s\nslot:  %s", name, rspare, fj, sj)
		}
	}
}
