package evaluation

import (
	"context"
	"fmt"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/mcc"
)

// Candidate names one pipeline configuration competing in a BestConfig
// selection.
type Candidate struct {
	Name string
	Opts Options
}

// SelectionRow records one candidate's outcome in a BestConfig run.
type SelectionRow struct {
	Name string
	// Pruned marks a candidate whose static lower energy bound already
	// exceeded the incumbent's simulated energy, so it was never
	// simulated. Its Report is nil and EnergyNJ is zero.
	Pruned bool
	// LowerBoundNJ is the candidate's whole-program static lower energy
	// bound; only set when pruning was enabled and consulted.
	LowerBoundNJ float64
	// EnergyNJ is the simulated optimized energy of the candidate.
	EnergyNJ float64
	Report   *core.Report
}

// Best is the outcome of a BestConfig selection: the winning
// configuration by simulated optimized energy, plus the per-candidate
// ledger.
type Best struct {
	Bench  string
	Level  mcc.OptLevel
	Winner string
	Report *core.Report
	Rows   []SelectionRow
}

// BestConfig simulates the candidate configurations in order and returns
// the one with the lowest optimized energy (ties keep the earliest
// candidate). With sw.Prune set, a candidate whose whole-program static
// lower energy bound (internal/analysis/bounds, an O(blocks) analysis —
// no simulation) exceeds the incumbent's simulated energy is skipped:
// the bound is admissible, lower ≤ simulated, so the skipped cell
// provably cannot win and the selected winner — and its numbers — are
// identical with pruning on or off. Only the session's
// prune_checked/prune_skipped ledger and the Pruned rows differ.
func (sw *Sweep) BestConfig(ctx context.Context, b *beebs.Benchmark, level mcc.OptLevel, cands []Candidate) (*Best, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("evaluation: BestConfig needs at least one candidate")
	}
	sess, err := sw.Session(b, level)
	if err != nil {
		return nil, errs.AtBench(b.Name, level.String(), errs.Wrap(errs.StageCompile, err))
	}
	best := &Best{Bench: b.Name, Level: level}
	incumbent := 0.0
	for _, c := range cands {
		row := SelectionRow{Name: c.Name}
		copts := c.Opts.Core()
		if sw.Prune && best.Report != nil {
			br, err := sess.StaticBounds(ctx, copts)
			if err != nil {
				return nil, errs.AtBench(b.Name, level.String(), err)
			}
			row.LowerBoundNJ = br.Whole.LoEnergyNJ
			pruned, err := sess.PruneAgainst(ctx, copts, incumbent)
			if err != nil {
				return nil, errs.AtBench(b.Name, level.String(), err)
			}
			if pruned {
				row.Pruned = true
				best.Rows = append(best.Rows, row)
				continue
			}
		}
		rep, err := sess.Optimize(ctx, copts)
		if err != nil {
			return nil, errs.AtBench(b.Name, level.String(), err)
		}
		row.EnergyNJ = rep.Optimized.Stats.EnergyNJ
		row.Report = rep
		best.Rows = append(best.Rows, row)
		if best.Report == nil || row.EnergyNJ < incumbent {
			best.Winner, best.Report, incumbent = c.Name, rep, row.EnergyNJ
		}
	}
	return best, nil
}

// BestConfig selects among candidates on a fresh serial Sweep without
// pruning.
func BestConfig(b *beebs.Benchmark, level mcc.OptLevel, cands []Candidate) (*Best, error) {
	return NewSweep(1).BestConfig(context.Background(), b, level, cands)
}
