package evaluation

import (
	"context"
	"errors"

	"repro/internal/beebs"
	"repro/internal/errs"
	"repro/internal/mcc"
)

// Cell is one item of an ad-hoc sweep: a benchmark (built-in or a
// synthetic one wrapping inline source), an optimization level, and the
// pipeline knobs. The daemon's sweep endpoint builds these straight from
// request JSON.
type Cell struct {
	Bench *beebs.Benchmark
	Level mcc.OptLevel
	Opts  Options
}

// RunCells runs every cell across the sweep's bounded, panic-isolated
// worker pool and delivers each outcome through done. Unlike the figure
// drivers — where the lowest-indexed ordinary failure stops dispatch —
// cells are independent requests: every one is attempted, a failing or
// panicking cell forfeits only its own result, and its error reaches
// done instead of the other cells.
//
// done is called exactly once per cell. Calls for completed cells come
// from worker goroutines, possibly concurrently (callers synchronize or
// funnel into a channel); cells the pool never dispatched — the context
// was cancelled first — receive their cancellation error sequentially
// after the pool has drained. When done is invoked, the cell's result is
// fully built, so publishing it (e.g. streaming the row) is safe.
func (sw *Sweep) RunCells(ctx context.Context, cells []Cell, done func(i int, r *Run, err error)) {
	delivered := make([]bool, len(cells))
	err := sw.forEach(ctx, len(cells), func(i int) error {
		r, rerr := sw.RunBenchmark(ctx, cells[i].Bench, cells[i].Level, cells[i].Opts)
		delivered[i] = true
		done(i, r, rerr)
		return nil
	})
	// Cells the pool never completed still owe a callback: ones skipped
	// by cancellation, and ones whose worker panicked before the job
	// could deliver (the pool converted that to an *errs.PanicError).
	perItem := make(map[int]error)
	var se *errs.SweepError
	if errors.As(err, &se) {
		for _, it := range se.Items {
			perItem[it.Index] = it.Err
		}
	}
	for i := range cells {
		if delivered[i] {
			continue
		}
		e := perItem[i]
		if e == nil {
			e = ctx.Err()
		}
		if e == nil {
			e = context.Canceled
		}
		done(i, nil, e)
	}
}
