package evaluation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/beebs"
	"repro/internal/mcc"
)

const testLevel = mcc.O2

func benchForTest(t *testing.T) *beebs.Benchmark {
	t.Helper()
	b := beebs.Get("crc32")
	if b == nil {
		t.Fatal("crc32 benchmark missing")
	}
	return b
}

// TestForEachSerialStopsAtFailure: the serial path must not run any job
// after the failing one.
func TestForEachSerialStopsAtFailure(t *testing.T) {
	sw := NewSweep(1)
	boom := errors.New("boom")
	var ran []int
	err := sw.forEach(context.Background(), 8, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if want := []int{0, 1, 2, 3}; fmt.Sprint(ran) != fmt.Sprint(want) {
		t.Fatalf("ran %v, want %v", ran, want)
	}
}

// TestForEachLowestIndexError injects two failures where the
// higher-indexed job is guaranteed to fail first (the lower one blocks on
// it), and asserts the reported error is still the lowest-indexed one.
// This is the regression test for the old forEach, which returned
// whichever failure won the race.
func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sw := NewSweep(workers)
			errLow := errors.New("low (index 2)")
			errHigh := errors.New("high (index 6)")
			highFailed := make(chan struct{})
			err := sw.forEach(context.Background(), 8, func(i int) error {
				switch i {
				case 2:
					<-highFailed // job 6 has already failed
					return errLow
				case 6:
					close(highFailed)
					return errHigh
				default:
					return nil
				}
			})
			if !errors.Is(err, errLow) {
				t.Fatalf("err = %v, want the lowest-indexed error %v", err, errLow)
			}
		})
	}
}

// TestForEachStopsDispatchAfterFailure: after a mid-sweep failure, the
// dispatcher must stop handing out the (many) remaining jobs instead of
// churning through all of them.
func TestForEachStopsDispatchAfterFailure(t *testing.T) {
	const n = 1000
	sw := NewSweep(2)
	boom := errors.New("boom")
	var ran atomic.Int64
	var maxIdx atomic.Int64
	zeroGate := make(chan struct{})
	err := sw.forEach(context.Background(), n, func(i int) error {
		ran.Add(1)
		for {
			cur := maxIdx.Load()
			if int64(i) <= cur || maxIdx.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
		switch i {
		case 0:
			<-zeroGate // hold a worker until the failure is in
			return nil
		case 1:
			defer close(zeroGate)
			return boom
		default:
			return nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Dispatch already in flight when the failure lands may still run a
	// handful of jobs; anything near n means dispatch never stopped.
	if got := ran.Load(); got > 10 {
		t.Fatalf("%d of %d jobs ran after a failure at index 1", got, n)
	}
	if got := maxIdx.Load(); got > 10 {
		t.Fatalf("job %d was dispatched after a failure at index 1", got)
	}
}

// TestForEachRunsAllOnSuccess checks every index runs exactly once at
// several pool widths (including widths above n).
func TestForEachRunsAllOnSuccess(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		sw := NewSweep(workers)
		const n = 23
		counts := make([]atomic.Int64, n)
		if err := sw.forEach(context.Background(), n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestSweepSessionCache: two runs of the same benchmark×level share one
// session (one compile), and the second configuration reuses the first's
// baseline simulation.
func TestSweepSessionCache(t *testing.T) {
	sw := NewSweep(1)
	b := benchForTest(t)
	s1, err := sw.Session(b, testLevel)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sw.Session(b, testLevel)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("same benchmark×level produced two distinct sessions")
	}
	st := sw.Stats()
	if st.SessionMisses != 1 || st.SessionHits != 1 {
		t.Fatalf("session cache hits/misses = %d/%d, want 1/1", st.SessionHits, st.SessionMisses)
	}

	// A static and a profiled run of the cell must share the baseline.
	if _, err := sw.RunBenchmark(context.Background(), b, testLevel, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.RunBenchmark(context.Background(), b, testLevel, Options{UseProfile: true}); err != nil {
		t.Fatal(err)
	}
	st = sw.Stats()
	if st.Stages.Baseline.Misses != 1 {
		t.Fatalf("baseline simulated %d times across static+profiled, want 1", st.Stages.Baseline.Misses)
	}
	if st.Stages.Reuses() == 0 {
		t.Fatal("static+profiled pair reported zero stage reuses")
	}
	if st.Stages.SimRuns != 2 {
		// One shared baseline + one optimized run: static and profiled
		// agree on crc32's placement, so the transformed image and its
		// simulation are shared too.
		t.Fatalf("sim runs = %d, want 2", st.Stages.SimRuns)
	}
}

// TestSweepConcurrentSessionCreation hammers the session cache from many
// goroutines; run under -race this pins the cache's thread safety, and
// the assertion pins single-compilation.
func TestSweepConcurrentSessionCreation(t *testing.T) {
	sw := NewSweep(4)
	b := benchForTest(t)
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sw.Session(b, testLevel); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st := sw.Stats(); st.SessionMisses != 1 {
		t.Fatalf("concurrent Session calls compiled %d times, want 1", st.SessionMisses)
	}
}
