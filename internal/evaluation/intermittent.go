package evaluation

import (
	"context"

	"repro/internal/casestudy"
	"repro/internal/mcc"
	"repro/internal/power"
	"repro/internal/sim"
)

// IntermittentRow is one benchmark × level × harvest-profile cell of the
// intermittent sweep (DESIGN.md §6l): the profile's power trace replayed
// against the all-flash baseline and against two optimized placements —
// checkpoint-oblivious (the ordinary solve) and checkpoint-aware (RAM
// residency priced with its per-checkpoint journal cost).
type IntermittentRow struct {
	Bench   string
	Level   mcc.OptLevel
	Profile string
	// Outages in the resolved schedule and the checkpoint interval the
	// replays used.
	Outages          int
	CheckpointCycles uint64
	// Baseline is the all-flash image under the trace; Oblivious and
	// Aware are the two optimized images under the same trace. The
	// baseline replay is shared: oblivious and aware runs of one cell
	// replay the identical baseline image and schedule.
	Baseline  *sim.IntermittentReport
	Oblivious *sim.IntermittentReport
	Aware     *sim.IntermittentReport
	// CkptNJPerByte is the aware solve's model term (nJ per RAM-placed
	// byte over the whole schedule).
	CkptNJPerByte float64
	// Incomplete marks a cell whose run failed or was never dispatched.
	Incomplete bool
}

// Scenarios converts a benchmark's rows (one per profile) into the §7
// intermittent case-study form, using the aware placement as the
// optimized outcome.
func Scenarios(rows []IntermittentRow, clockHz float64) []casestudy.Intermittent {
	var out []casestudy.Intermittent
	for _, r := range rows {
		if r.Incomplete {
			continue
		}
		out = append(out, casestudy.Intermittent{
			Profile:            r.Profile,
			BaselineWorkPerMJ:  r.Baseline.WorkPerMJ(),
			OptimizedWorkPerMJ: r.Aware.WorkPerMJ(),
			BaselineTimeS:      r.Baseline.TimeToCompletionS(clockHz),
			OptimizedTimeS:     r.Aware.TimeToCompletionS(clockHz),
		})
	}
	return out
}

// intermitCell is one cell of the intermittent sweep: a benchmark ×
// level job under one harvest profile. Cells enumerate benchmark-major,
// then level, then profile, so shard ownership is stable.
type intermitCell struct {
	job     sweepJob
	profile string
}

func intermitCells(levels []mcc.OptLevel, profiles []string) []intermitCell {
	jobs := sweepJobs(levels)
	cells := make([]intermitCell, 0, len(jobs)*len(profiles))
	for _, j := range jobs {
		for _, p := range profiles {
			cells = append(cells, intermitCell{job: j, profile: p})
		}
	}
	return cells
}

// Intermittent runs the harvested-power sweep: every benchmark at the
// given levels under each harvest profile, replayed checkpoint-oblivious
// and checkpoint-aware. Each cell's two runs share the sweep's session —
// the compile, baseline simulation and baseline replay are paid once —
// and the jobs run across the worker pool with deterministic row order.
// On failure every cell is still present, failed ones marked Incomplete.
func (sw *Sweep) Intermittent(ctx context.Context, levels []mcc.OptLevel, profiles []string) ([]IntermittentRow, error) {
	cells := intermitCells(levels, profiles)
	own := sw.Shard.indices(len(cells))
	rows := make([]IntermittentRow, len(own))
	for i, j := range own {
		c := cells[j]
		rows[i] = IntermittentRow{Bench: c.job.bench.Name, Level: c.job.level, Profile: c.profile, Incomplete: true}
	}
	err := sw.forEach(ctx, len(own), func(i int) error {
		c := cells[own[i]]
		opts := Options{PowerTrace: c.profile}
		obl, err := sw.RunBenchmark(ctx, c.job.bench, c.job.level, opts)
		if err != nil {
			return err
		}
		opts.CkptAware = true
		aware, err := sw.RunBenchmark(ctx, c.job.bench, c.job.level, opts)
		if err != nil {
			return err
		}
		oc, ac := obl.Report.Intermittent, aware.Report.Intermittent
		rows[i] = IntermittentRow{
			Bench:            c.job.bench.Name,
			Level:            c.job.level,
			Profile:          c.profile,
			Outages:          oc.Outages,
			CheckpointCycles: oc.CheckpointCycles,
			Baseline:         oc.Baseline,
			Oblivious:        oc.Optimized,
			Aware:            ac.Optimized,
			CkptNJPerByte:    ac.CkptNJPerByte,
		}
		return nil
	})
	return rows, err
}

// Intermittent runs the harvested-power sweep serially on a fresh Sweep.
func Intermittent(levels []mcc.OptLevel, profiles []string) ([]IntermittentRow, error) {
	rows, err := NewSweep(1).Intermittent(context.Background(), levels, profiles)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// intermitClockHz is the simulated board's clock, used to express
// replay wall cycles as time-to-completion.
func intermitClockHz() float64 { return power.STM32F100().ClockHz }
