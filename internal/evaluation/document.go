package evaluation

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/errs"
)

// Document is the `beebsbench -json` output schema: one optional section
// per selected experiment plus the sweep's reuse ledgers. It lives here
// (rather than in the CLI) so shard fragments can be merged — and that
// merge tested — against the exact emitted shape.
//
// Field order is the emission order; changing it changes every golden
// byte downstream.
type Document struct {
	Fig5      []Figure5RowJSON    `json:"fig5,omitempty"`
	Aggregate *AggregateJSON      `json:"aggregate,omitempty"`
	Savers    []SaversRowJSON     `json:"savers,omitempty"`
	CaseStudy *ScenarioJSON       `json:"casestudy,omitempty"`
	Fig9      []Figure9SeriesJSON `json:"fig9,omitempty"`
	Selection []BestJSON          `json:"selection,omitempty"`
	// Intermittent is the harvested-power sweep (DESIGN.md §6l): each
	// benchmark × level replayed under each harvest profile, checkpoint-
	// oblivious and checkpoint-aware.
	Intermittent []IntermittentRowJSON `json:"intermittent,omitempty"`

	// Shard is present exactly on fragment documents (`-shard i/n`): it
	// records the shard coordinates and which sections were selected, so
	// MergeShards can verify the fragments describe one partition of one
	// invocation.
	Shard *ShardJSON `json:"shard,omitempty"`

	// The ledgers describe the producing process, not the experiment:
	// they differ per shard and per run, so `-noledger` omits them (and
	// MergeShards always drops them) to make documents byte-comparable.
	SessionStats *SweepStats       `json:"session_stats,omitempty"`
	SolverStats  *core.SolverStats `json:"solver_stats,omitempty"`
	WallMS       float64           `json:"wall_ms,omitempty"`
	Workers      int               `json:"workers,omitempty"`

	// Status is "incomplete" when any selected section was cut short —
	// by -timeout, an interrupt, or a failing cell — in which case
	// Errors lists what went wrong and the affected section rows carry
	// incomplete markers. Absent on a clean run.
	Status string   `json:"status,omitempty"`
	Errors []string `json:"errors,omitempty"`
}

// ShardJSON is the fragment metadata block of a sharded document.
type ShardJSON struct {
	Index    int      `json:"index"`
	Count    int      `json:"count"`
	Sections []string `json:"sections"`
}

// badFragment attributes a merge-validation failure to one fragment.
func badFragment(name, format string, a ...any) error {
	return errs.BadInput(fmt.Errorf("%s: "+format, append([]any{name}, a...)...))
}

// MergeShards reassembles the unsharded document from one fragment per
// shard of a single sharded invocation. names label the fragments in
// errors (the CLI passes file names); fragments may arrive in any order.
//
// Validation is strict — all failures are errs.ErrBadInput:
//
//   - every fragment must carry shard metadata with one consistent count
//   - the indices must be exactly 0..count-1, no duplicates, none missing
//   - every fragment must have selected the same sections
//   - incomplete fragments are rejected (re-run that shard instead:
//     interleaving partial sections would silently misattribute cells)
//   - section lengths must interleave consistently (a fragment from a
//     different invocation — other levels, another -top — cannot pass
//     itself off as the missing piece)
//
// The merged document is ledger-free: session/solver stats, wall time
// and worker counts describe each producing process, not the experiment,
// so the merge result is byte-identical to an unsharded `-noledger` run.
func MergeShards(fragments []Document, names []string) (*Document, error) {
	if len(fragments) == 0 {
		return nil, errs.BadInput(fmt.Errorf("merge: no fragments"))
	}
	name := func(i int) string {
		if i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("fragment %d", i)
	}

	n := 0
	if fragments[0].Shard != nil {
		n = fragments[0].Shard.Count
	}
	byIndex := make([]*Document, n)
	for i := range fragments {
		f := &fragments[i]
		switch {
		case f.Shard == nil:
			return nil, badFragment(name(i), "not a shard fragment (no shard metadata)")
		case f.Shard.Count != n:
			return nil, badFragment(name(i), "shard count %d conflicts with %s's %d",
				f.Shard.Count, name(0), n)
		case f.Shard.Index < 0 || f.Shard.Index >= n:
			return nil, badFragment(name(i), "shard index %d out of range [0, %d)", f.Shard.Index, n)
		case f.Status != "":
			return nil, badFragment(name(i), "fragment is %s — re-run shard %d/%d",
				f.Status, f.Shard.Index, n)
		case strings.Join(f.Shard.Sections, ",") != strings.Join(fragments[0].Shard.Sections, ","):
			return nil, badFragment(name(i), "sections %v conflict with %s's %v",
				f.Shard.Sections, name(0), fragments[0].Shard.Sections)
		case byIndex[f.Shard.Index] != nil:
			return nil, badFragment(name(i), "duplicate fragment for shard %d/%d", f.Shard.Index, n)
		}
		byIndex[f.Shard.Index] = f
	}
	for i, f := range byIndex {
		if f == nil {
			return nil, errs.BadInput(fmt.Errorf("merge: missing fragment for shard %d/%d", i, n))
		}
	}

	// interleave validates that the per-fragment section lengths form one
	// partition and returns the merged cell count: merged cell j comes
	// from fragment j%n at position j/n, undoing the drivers' j%n==i
	// ownership rule.
	interleave := func(section string, lens []int) (int, error) {
		total := 0
		for _, l := range lens {
			total += l
		}
		for i, l := range lens {
			if want := shardLen(total, n, i); l != want {
				return 0, badFragment(name(0), "%s: shard %d/%d has %d cells, want %d of %d — fragments are not one partition",
					section, i, n, l, want, total)
			}
		}
		return total, nil
	}

	out := &Document{}
	if selected(fragments[0].Shard.Sections, "fig5") {
		lens := make([]int, n)
		for i, f := range byIndex {
			lens[i] = len(f.Fig5)
		}
		total, err := interleave("fig5", lens)
		if err != nil {
			return nil, err
		}
		for j := 0; j < total; j++ {
			out.Fig5 = append(out.Fig5, byIndex[j%n].Fig5[j/n])
		}
	}

	if selected(fragments[0].Shard.Sections, "aggregate") {
		lens := make([]int, n)
		for i, f := range byIndex {
			if f.Aggregate == nil {
				return nil, badFragment(name(0), "aggregate: shard %d/%d has no aggregate section", i, n)
			}
			lens[i] = len(f.Aggregate.Runs)
		}
		total, err := interleave("aggregate", lens)
		if err != nil {
			return nil, err
		}
		runs := make([]RunJSON, 0, total)
		for j := 0; j < total; j++ {
			runs = append(runs, byIndex[j%n].Aggregate.Runs[j/n])
		}
		agg := recomputeAggregate(runs)
		out.Aggregate = &agg
	}

	if selected(fragments[0].Shard.Sections, "savers") {
		lens := make([]int, n)
		for i, f := range byIndex {
			lens[i] = len(f.Savers)
		}
		total, err := interleave("savers", lens)
		if err != nil {
			return nil, err
		}
		for j := 0; j < total; j++ {
			out.Savers = append(out.Savers, byIndex[j%n].Savers[j/n])
		}
	}

	// The case study is a single cell; it belongs to shard 0.
	out.CaseStudy = byIndex[0].CaseStudy

	if selected(fragments[0].Shard.Sections, "fig9") {
		lens := make([]int, n)
		for i, f := range byIndex {
			lens[i] = len(f.Fig9)
		}
		total, err := interleave("fig9", lens)
		if err != nil {
			return nil, err
		}
		for j := 0; j < total; j++ {
			out.Fig9 = append(out.Fig9, byIndex[j%n].Fig9[j/n])
		}
	}

	if selected(fragments[0].Shard.Sections, "select") {
		lens := make([]int, n)
		for i, f := range byIndex {
			lens[i] = len(f.Selection)
		}
		total, err := interleave("selection", lens)
		if err != nil {
			return nil, err
		}
		for j := 0; j < total; j++ {
			out.Selection = append(out.Selection, byIndex[j%n].Selection[j/n])
		}
	}

	if selected(fragments[0].Shard.Sections, "intermittent") {
		lens := make([]int, n)
		for i, f := range byIndex {
			lens[i] = len(f.Intermittent)
		}
		total, err := interleave("intermittent", lens)
		if err != nil {
			return nil, err
		}
		for j := 0; j < total; j++ {
			out.Intermittent = append(out.Intermittent, byIndex[j%n].Intermittent[j/n])
		}
	}
	return out, nil
}

func selected(sections []string, name string) bool {
	for _, s := range sections {
		if s == name {
			return true
		}
	}
	return false
}

// recomputeAggregate rebuilds the §6 summary from the reassembled run
// list with the same fold RunAggregate performs over its Runs — same
// accumulation order, same strict-greater maxima, same division — so the
// merged aggregate is bit-identical to the unsharded one.
func recomputeAggregate(runs []RunJSON) AggregateJSON {
	out := AggregateJSON{Runs: runs}
	for _, r := range runs {
		out.MeanEnergyChange += r.EnergyChange
		out.MeanPowerChange += r.PowerChange
		out.MeanTimeChange += r.TimeChange
		if saving := -r.EnergyChange; saving > out.MaxEnergySaving {
			out.MaxEnergySaving = saving
			out.MaxEnergyBench = r.Bench + " " + r.Level
		}
		if saving := -r.PowerChange; saving > out.MaxPowerSaving {
			out.MaxPowerSaving = saving
			out.MaxPowerBench = r.Bench + " " + r.Level
		}
		if r.BlocksInRAM == 0 {
			out.FailedPlacement++
		}
	}
	if n := len(runs); n > 0 {
		out.MeanEnergyChange /= float64(n)
		out.MeanPowerChange /= float64(n)
		out.MeanTimeChange /= float64(n)
	}
	return out
}
