package evaluation

import (
	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/sim"
)

// The types below are the machine-readable schema shared by the CLIs:
// `beebsbench -json`, `tradeoff -json` and `flashram profile -json` all
// emit these structures (plus internal/trace's ProfileJSON/DiffJSON for
// attribution data), so downstream tooling parses one set of field names.
// Convention: lower snake case with explicit unit suffixes (_mj, _ms,
// _mw, _nj, _bytes).

// MetricsJSON is one simulated run's headline numbers.
type MetricsJSON struct {
	EnergyMJ     float64 `json:"energy_mj"`
	TimeMS       float64 `json:"time_ms"`
	PowerMW      float64 `json:"power_mw"`
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	RAMCodeBytes int     `json:"ram_code_bytes"`
}

// NewMetricsJSON converts a core.RunMetrics.
func NewMetricsJSON(m core.RunMetrics) MetricsJSON {
	return MetricsJSON{
		EnergyMJ:     m.EnergyMJ,
		TimeMS:       1e3 * m.TimeS,
		PowerMW:      m.PowerMW,
		Cycles:       m.Cycles,
		Instructions: m.Instructions,
		RAMCodeBytes: m.RAMCodeBytes,
	}
}

// RunJSON is one benchmark × level pipeline outcome.
type RunJSON struct {
	Bench        string      `json:"bench"`
	Level        string      `json:"level"`
	Baseline     MetricsJSON `json:"baseline"`
	Optimized    MetricsJSON `json:"optimized"`
	EnergyChange float64     `json:"energy_change"`
	TimeChange   float64     `json:"time_change"`
	PowerChange  float64     `json:"power_change"`
	BlocksInRAM  int         `json:"blocks_in_ram"`
	MovedBlocks  []string    `json:"moved_blocks"`

	// Strategy and StrategyReason are emitted only when the solver's
	// degradation ladder produced the placement from a rung below the
	// exact solve; the common ilp-optimal case — and its warm-started
	// twin warm-ilp-optimal, which is the same proven optimum reached
	// faster — stays out of the document so pre-ladder outputs remain
	// byte-identical and warm solves emit the same bytes as cold ones.
	Strategy       string `json:"strategy,omitempty"`
	StrategyReason string `json:"strategy_reason,omitempty"`

	// Intermittent is present exactly when the run carried a power trace
	// (core.Options.PowerTrace); trace-free documents are byte-identical
	// to the pre-intermittent schema.
	Intermittent *IntermittentJSON `json:"intermittent,omitempty"`
}

// NewRunJSON converts a Run.
func NewRunJSON(r *Run) RunJSON {
	rep := r.Report
	out := RunJSON{
		Bench:        r.Bench,
		Level:        r.Level.String(),
		Baseline:     NewMetricsJSON(rep.Baseline),
		Optimized:    NewMetricsJSON(rep.Optimized),
		EnergyChange: rep.EnergyChange,
		TimeChange:   rep.TimeChange,
		PowerChange:  rep.PowerChange,
		BlocksInRAM:  len(rep.MovedLabels()),
		MovedBlocks:  rep.MovedLabels(),
	}
	if rep.Strategy != "" && rep.Strategy != placement.StrategyILPOptimal &&
		rep.Strategy != placement.StrategyWarmILPOptimal {
		out.Strategy = rep.Strategy
		out.StrategyReason = rep.StrategyReason
	}
	if rep.Intermittent != nil {
		j := NewIntermittentJSON(rep.Intermittent)
		out.Intermittent = &j
	}
	return out
}

// IntermittentReplayJSON is one image's replay under an injected power
// trace.
type IntermittentReplayJSON struct {
	UsefulInstructions   uint64  `json:"useful_instructions"`
	ReplayedInstructions uint64  `json:"replayed_instructions"`
	Checkpoints          int     `json:"checkpoints"`
	EnergyMJ             float64 `json:"energy_mj"`
	WorkPerMJ            float64 `json:"work_per_mj"`
	WallMS               float64 `json:"wall_ms"`
}

// NewIntermittentReplayJSON converts a sim.IntermittentReport.
func NewIntermittentReplayJSON(r *sim.IntermittentReport) IntermittentReplayJSON {
	return IntermittentReplayJSON{
		UsefulInstructions:   r.UsefulInstructions(),
		ReplayedInstructions: r.ReplayedInstrs,
		Checkpoints:          r.Checkpoints,
		EnergyMJ:             r.TotalEnergyNJ() * 1e-6,
		WorkPerMJ:            r.WorkPerMJ(),
		WallMS:               1e3 * r.TimeToCompletionS(intermitClockHz()),
	}
}

// IntermittentJSON is the intermittent tail of a run document: both
// images replayed under one injected schedule.
type IntermittentJSON struct {
	Outages          int                    `json:"outages"`
	CheckpointCycles uint64                 `json:"checkpoint_cycles"`
	CkptAware        bool                   `json:"ckpt_aware,omitempty"`
	CkptNJPerByte    float64                `json:"ckpt_nj_per_byte,omitempty"`
	Baseline         IntermittentReplayJSON `json:"baseline"`
	Optimized        IntermittentReplayJSON `json:"optimized"`
	WorkChange       float64                `json:"work_change"`
}

// NewIntermittentJSON converts a core.IntermittentComparison.
func NewIntermittentJSON(c *core.IntermittentComparison) IntermittentJSON {
	return IntermittentJSON{
		Outages:          c.Outages,
		CheckpointCycles: c.CheckpointCycles,
		CkptAware:        c.CkptAware,
		CkptNJPerByte:    c.CkptNJPerByte,
		Baseline:         NewIntermittentReplayJSON(c.Baseline),
		Optimized:        NewIntermittentReplayJSON(c.Optimized),
		WorkChange:       c.WorkPerMJChange(),
	}
}

// IntermittentRowJSON is one benchmark × level × harvest-profile cell of
// the intermittent sweep.
type IntermittentRowJSON struct {
	Bench              string  `json:"bench"`
	Level              string  `json:"level"`
	Profile            string  `json:"profile"`
	Outages            int     `json:"outages"`
	CheckpointCycles   uint64  `json:"checkpoint_cycles"`
	BaselineWorkPerMJ  float64 `json:"baseline_work_per_mj"`
	ObliviousWorkPerMJ float64 `json:"oblivious_work_per_mj"`
	AwareWorkPerMJ     float64 `json:"aware_work_per_mj"`
	BaselineTimeMS     float64 `json:"baseline_time_ms"`
	ObliviousTimeMS    float64 `json:"oblivious_time_ms"`
	AwareTimeMS        float64 `json:"aware_time_ms"`
	// Work-rate changes versus the all-flash baseline under the same
	// schedule (positive = more completed work per delivered mJ).
	ObliviousWorkChange float64 `json:"oblivious_work_change"`
	AwareWorkChange     float64 `json:"aware_work_change"`
	AwareCkptNJPerByte  float64 `json:"aware_ckpt_nj_per_byte"`
	// Incomplete marks a cell whose run failed or was cut off.
	Incomplete bool `json:"incomplete,omitempty"`
}

// NewIntermittentRowsJSON converts an Intermittent sweep result.
func NewIntermittentRowsJSON(rows []IntermittentRow) []IntermittentRowJSON {
	hz := intermitClockHz()
	out := make([]IntermittentRowJSON, len(rows))
	for i, r := range rows {
		out[i] = IntermittentRowJSON{
			Bench:      r.Bench,
			Level:      r.Level.String(),
			Profile:    r.Profile,
			Incomplete: r.Incomplete,
		}
		if r.Incomplete {
			continue
		}
		change := func(rep *sim.IntermittentReport) float64 {
			if b := r.Baseline.WorkPerMJ(); b != 0 {
				return rep.WorkPerMJ()/b - 1
			}
			return 0
		}
		out[i].Outages = r.Outages
		out[i].CheckpointCycles = r.CheckpointCycles
		out[i].BaselineWorkPerMJ = r.Baseline.WorkPerMJ()
		out[i].ObliviousWorkPerMJ = r.Oblivious.WorkPerMJ()
		out[i].AwareWorkPerMJ = r.Aware.WorkPerMJ()
		out[i].BaselineTimeMS = 1e3 * r.Baseline.TimeToCompletionS(hz)
		out[i].ObliviousTimeMS = 1e3 * r.Oblivious.TimeToCompletionS(hz)
		out[i].AwareTimeMS = 1e3 * r.Aware.TimeToCompletionS(hz)
		out[i].ObliviousWorkChange = change(r.Oblivious)
		out[i].AwareWorkChange = change(r.Aware)
		out[i].AwareCkptNJPerByte = r.CkptNJPerByte
	}
	return out
}

// Figure5RowJSON is one Figure 5 row (bars + frequency dots).
type Figure5RowJSON struct {
	Bench            string  `json:"bench"`
	Level            string  `json:"level"`
	EnergyChange     float64 `json:"energy_change"`
	TimeChange       float64 `json:"time_change"`
	PowerChange      float64 `json:"power_change"`
	ProfEnergyChange float64 `json:"prof_energy_change"`
	ProfTimeChange   float64 `json:"prof_time_change"`
	// Incomplete marks a cell whose run failed or was cut off before it
	// ran (cancellation, timeout); its numbers are zero, not measured.
	Incomplete bool `json:"incomplete,omitempty"`
}

// NewFigure5JSON converts a Figure5 result.
func NewFigure5JSON(rows []Figure5Row) []Figure5RowJSON {
	out := make([]Figure5RowJSON, len(rows))
	for i, r := range rows {
		out[i] = Figure5RowJSON{
			Bench:            r.Bench,
			Level:            r.Level.String(),
			EnergyChange:     r.EnergyChange,
			TimeChange:       r.TimeChange,
			PowerChange:      r.PowerChange,
			ProfEnergyChange: r.ProfEnergyChange,
			ProfTimeChange:   r.ProfTimeChange,
			Incomplete:       r.Incomplete,
		}
	}
	return out
}

// AggregateJSON is the §6 summary.
type AggregateJSON struct {
	Runs             []RunJSON `json:"runs"`
	MeanEnergyChange float64   `json:"mean_energy_change"`
	MeanPowerChange  float64   `json:"mean_power_change"`
	MeanTimeChange   float64   `json:"mean_time_change"`
	MaxEnergySaving  float64   `json:"max_energy_saving"`
	MaxEnergyBench   string    `json:"max_energy_bench"`
	MaxPowerSaving   float64   `json:"max_power_saving"`
	MaxPowerBench    string    `json:"max_power_bench"`
	FailedPlacement  int       `json:"failed_placement"`
	// IncompleteRuns counts cells missing from Runs because their
	// pipeline failed or was cut off; 0 (omitted) means a full sweep.
	IncompleteRuns int `json:"incomplete_runs,omitempty"`
}

// NewAggregateJSON converts an Aggregate.
func NewAggregateJSON(agg *Aggregate) AggregateJSON {
	out := AggregateJSON{
		MeanEnergyChange: agg.MeanEnergyChange,
		MeanPowerChange:  agg.MeanPowerChange,
		MeanTimeChange:   agg.MeanTimeChange,
		MaxEnergySaving:  agg.MaxEnergySaving,
		MaxEnergyBench:   agg.MaxEnergyBench,
		MaxPowerSaving:   agg.MaxPowerSaving,
		MaxPowerBench:    agg.MaxPowerBench,
		FailedPlacement:  agg.FailedPlacement,
		IncompleteRuns:   agg.IncompleteRuns,
	}
	for i := range agg.Runs {
		out.Runs = append(out.Runs, NewRunJSON(&agg.Runs[i]))
	}
	return out
}

// SaverJSON is one block's contribution to a run's energy change.
type SaverJSON struct {
	Label       string  `json:"label"`
	Func        string  `json:"func"`
	Mem         string  `json:"mem"` // optimized-image residence
	BaselineNJ  float64 `json:"baseline_nj"`
	OptimizedNJ float64 `json:"optimized_nj"`
	SavedNJ     float64 `json:"saved_nj"`
}

// NewSaverJSON converts a core.BlockSaving.
func NewSaverJSON(s core.BlockSaving) SaverJSON {
	mem := "flash"
	if s.InRAM {
		mem = "ram"
	}
	return SaverJSON{
		Label:       s.Label,
		Func:        s.Func,
		Mem:         mem,
		BaselineNJ:  s.BaselineNJ,
		OptimizedNJ: s.OptimizedNJ,
		SavedNJ:     s.SavedNJ,
	}
}

// SaversRowJSON names the blocks behind one run's energy saving.
type SaversRowJSON struct {
	Bench  string      `json:"bench"`
	Level  string      `json:"level"`
	Savers []SaverJSON `json:"savers"`
	// Incomplete marks a cell whose run failed or was cut off.
	Incomplete bool `json:"incomplete,omitempty"`
}

// NewSaversJSON converts a TopSavers result.
func NewSaversJSON(rows []SaversRow) []SaversRowJSON {
	out := make([]SaversRowJSON, len(rows))
	for i, r := range rows {
		out[i] = SaversRowJSON{Bench: r.Bench, Level: r.Level.String(), Incomplete: r.Incomplete}
		for _, s := range r.Savers {
			out[i].Savers = append(out[i].Savers, NewSaverJSON(s))
		}
	}
	return out
}

// ScenarioJSON is the §7 periodic-sensing scenario built from a run.
type ScenarioJSON struct {
	E0MJ         float64 `json:"e0_mj"`
	TAMS         float64 `json:"ta_ms"`
	Ke           float64 `json:"ke"`
	Kt           float64 `json:"kt"`
	SleepPowerMW float64 `json:"sleep_power_mw"`
	SavedMJ      float64 `json:"saved_mj"` // Eq. 12, period independent
}

// NewScenarioJSON converts a casestudy.Scenario.
func NewScenarioJSON(sc casestudy.Scenario) ScenarioJSON {
	return ScenarioJSON{
		E0MJ:         sc.E0,
		TAMS:         1e3 * sc.TA,
		Ke:           sc.Ke,
		Kt:           sc.Kt,
		SleepPowerMW: sc.PS,
		SavedMJ:      sc.EnergySaved(),
	}
}

// SweepPointJSON is one Figure 9 period point.
type SweepPointJSON struct {
	Multiple      float64 `json:"multiple"` // T / TA
	EnergyPercent float64 `json:"energy_percent"`
	LifeExtension float64 `json:"life_extension"`
}

// Figure9SeriesJSON is one benchmark's Figure 9 curve.
type Figure9SeriesJSON struct {
	Bench    string           `json:"bench"`
	Scenario ScenarioJSON     `json:"scenario"`
	Points   []SweepPointJSON `json:"points"`
}

// NewFigure9JSON converts a Figure9 result.
func NewFigure9JSON(series []Figure9Series) []Figure9SeriesJSON {
	out := make([]Figure9SeriesJSON, len(series))
	for i, s := range series {
		out[i] = Figure9SeriesJSON{Bench: s.Bench, Scenario: NewScenarioJSON(s.Scenario)}
		for _, p := range s.Points {
			out[i].Points = append(out[i].Points, SweepPointJSON{
				Multiple:      p.Multiple,
				EnergyPercent: p.EnergyPercent,
				LifeExtension: p.LifeExtension,
			})
		}
	}
	return out
}

// PathPointJSON is one solver decision along a Figure 6 constraint sweep.
type PathPointJSON struct {
	Constraint float64 `json:"constraint"`
	EnergyNJ   float64 `json:"energy_nj"`
	Cycles     float64 `json:"cycles"`
	RAMBytes   float64 `json:"ram_bytes"`
}

// PointJSON is one enumerated placement of the Figure 6 cloud.
type PointJSON struct {
	Mask     uint64  `json:"mask"`
	EnergyNJ float64 `json:"energy_nj"`
	Cycles   float64 `json:"cycles"`
	RAMBytes float64 `json:"ram_bytes"`
	Feasible bool    `json:"feasible"`
}

// Figure6JSON is the machine-readable Figure 6 dataset.
type Figure6JSON struct {
	Bench        string          `json:"bench"`
	Level        string          `json:"level"`
	Blocks       []string        `json:"blocks"`
	BaseEnergyNJ float64         `json:"base_energy_nj"`
	BaseCycles   float64         `json:"base_cycles"`
	Points       []PointJSON     `json:"points,omitempty"`
	RAMPath      []PathPointJSON `json:"ram_path"`
	TimePath     []PathPointJSON `json:"time_path"`
	// Status is "incomplete" when the constraint sweeps were cut off
	// (timeout, interrupt): the cloud and the path points present are
	// valid — each names its own constraint — and the rest are simply
	// missing. Absent on a clean run.
	Status string `json:"status,omitempty"`
}

// NewFigure6JSON converts a Figure6Data (points included only when
// withPoints, the cloud being 2^k entries).
func NewFigure6JSON(d *Figure6Data, level string, withPoints bool) Figure6JSON {
	out := Figure6JSON{
		Bench:        d.Bench,
		Level:        level,
		Blocks:       d.Blocks,
		BaseEnergyNJ: d.BaseEnergyNJ,
		BaseCycles:   d.BaseCycles,
	}
	if withPoints {
		for _, p := range d.Points {
			out.Points = append(out.Points, PointJSON{
				Mask:     uint64(p.Mask),
				EnergyNJ: p.EnergyNJ,
				Cycles:   p.Cycles,
				RAMBytes: p.RAMBytes,
				Feasible: p.Feasible,
			})
		}
	}
	conv := func(pts []PathPoint) []PathPointJSON {
		out := make([]PathPointJSON, len(pts))
		for i, p := range pts {
			out[i] = PathPointJSON{
				Constraint: p.Constraint,
				EnergyNJ:   p.EnergyNJ,
				Cycles:     p.Cycles,
				RAMBytes:   p.RAMBytes,
			}
		}
		return out
	}
	out.RAMPath = conv(d.RAMPath)
	out.TimePath = conv(d.TimePath)
	return out
}

// SelectionRowJSON is one candidate's outcome in a BestConfig selection.
type SelectionRowJSON struct {
	Name string `json:"name"`
	// Pruned candidates were skipped by the admissible static bound:
	// lower_bound_nj exceeded the incumbent's simulated energy, so no
	// simulation ran and energy_nj is absent.
	Pruned       bool    `json:"pruned,omitempty"`
	LowerBoundNJ float64 `json:"lower_bound_nj,omitempty"`
	EnergyNJ     float64 `json:"energy_nj,omitempty"`
}

// BestJSON is one benchmark × level winner-selection outcome.
type BestJSON struct {
	Bench        string             `json:"bench"`
	Level        string             `json:"level"`
	Winner       string             `json:"winner"`
	EnergyNJ     float64            `json:"energy_nj"`
	EnergyChange float64            `json:"energy_change"`
	Candidates   []SelectionRowJSON `json:"candidates"`
}

// NewBestJSON converts a Best.
func NewBestJSON(b *Best) BestJSON {
	out := BestJSON{
		Bench:        b.Bench,
		Level:        b.Level.String(),
		Winner:       b.Winner,
		EnergyNJ:     b.Report.Optimized.Stats.EnergyNJ,
		EnergyChange: b.Report.EnergyChange,
	}
	for _, r := range b.Rows {
		out.Candidates = append(out.Candidates, SelectionRowJSON{
			Name:         r.Name,
			Pruned:       r.Pruned,
			LowerBoundNJ: r.LowerBoundNJ,
			EnergyNJ:     r.EnergyNJ,
		})
	}
	return out
}
