package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// knapsack builds max Σv·x s.t. Σw·x ≤ cap as a minimization of -v.
func knapsack(values, weights []float64, capacity float64) *Solver {
	n := len(values)
	p := lp.NewProblem(n)
	w := make(map[int]float64, n)
	bins := make([]int, n)
	for j := 0; j < n; j++ {
		p.SetObj(j, -values[j])
		p.AddRow(map[int]float64{j: 1}, lp.LE, 1)
		w[j] = weights[j]
		bins[j] = j
	}
	p.AddRow(w, lp.LE, capacity)
	return &Solver{Base: p, Binaries: bins}
}

func TestKnapsackSmall(t *testing.T) {
	// Classic: values 60,100,120 weights 10,20,30 cap 50 → take 2+3 = 220.
	s := knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	r, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if got := -r.Obj; math.Abs(got-220) > 1e-6 {
		t.Errorf("value = %v, want 220 (x=%v)", got, r.X)
	}
	if math.Round(r.X[0]) != 0 || math.Round(r.X[1]) != 1 || math.Round(r.X[2]) != 1 {
		t.Errorf("x = %v, want [0 1 1]", r.X)
	}
}

func TestInfeasibleILP(t *testing.T) {
	p := lp.NewProblem(2)
	p.AddRow(map[int]float64{0: 1, 1: 1}, lp.GE, 3) // impossible for two binaries
	p.AddRow(map[int]float64{0: 1}, lp.LE, 1)
	p.AddRow(map[int]float64{1: 1}, lp.LE, 1)
	s := &Solver{Base: p, Binaries: []int{0, 1}}
	r, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestIntegralRootShortCircuits(t *testing.T) {
	// min -x0 s.t. x0 <= 1: LP root is already integral.
	p := lp.NewProblem(1)
	p.SetObj(0, -1)
	p.AddRow(map[int]float64{0: 1}, lp.LE, 1)
	s := &Solver{Base: p, Binaries: []int{0}}
	r, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || r.Nodes != 1 {
		t.Errorf("status=%v nodes=%d, want optimal in 1 node", r.Status, r.Nodes)
	}
}

func TestUnboundedILP(t *testing.T) {
	// Continuous variable x1 unbounded below drives the relaxation down.
	p := lp.NewProblem(2)
	p.SetObj(1, -1)
	p.AddRow(map[int]float64{0: 1}, lp.LE, 1)
	s := &Solver{Base: p, Binaries: []int{0}}
	r, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

// TestBranchAndBoundMatchesExhaustive is the core property test: on random
// knapsack-with-side-constraint instances, B&B must find exactly the
// exhaustive optimum.
func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(9)
		values := make([]float64, n)
		weights := make([]float64, n)
		for j := 0; j < n; j++ {
			values[j] = float64(1 + rng.Intn(40))
			weights[j] = float64(1 + rng.Intn(15))
		}
		capacity := float64(5 + rng.Intn(40))
		s := knapsack(values, weights, capacity)
		// Occasionally add a coupling row like the model's Eq. 9.
		if rng.Intn(2) == 0 {
			row := make(map[int]float64, n)
			for j := 0; j < n; j++ {
				row[j] = float64(rng.Intn(5))
			}
			s.Base.AddRow(row, lp.LE, float64(3+rng.Intn(12)))
		}
		got, err := s.Solve(context.Background())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := s.SolveExhaustive(context.Background())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: status %v vs exhaustive %v", trial, got.Status, want.Status)
		}
		if want.Status == Optimal && math.Abs(got.Obj-want.Obj) > 1e-6 {
			t.Fatalf("trial %d: B&B obj %v != exhaustive %v", trial, got.Obj, want.Obj)
		}
	}
}

func TestRounderSeedsIncumbent(t *testing.T) {
	// A fractional-root knapsack where rounding down is always feasible.
	s := knapsack([]float64{10, 9, 8}, []float64{5, 5, 5}, 7)
	s.Rounder = func(x []float64) ([]float64, bool) {
		rx := make([]float64, len(x))
		for j, v := range x {
			if v > 0.999 {
				rx[j] = 1
			}
		}
		return rx, true
	}
	r, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(-r.Obj-10) > 1e-6 {
		t.Errorf("status=%v value=%v, want optimal 10", r.Status, -r.Obj)
	}
}

func TestNodeLimitReturnsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 14
	values := make([]float64, n)
	weights := make([]float64, n)
	for j := 0; j < n; j++ {
		values[j] = float64(10 + rng.Intn(90))
		weights[j] = float64(5 + rng.Intn(30))
	}
	s := knapsack(values, weights, 60)
	s.MaxNodes = 4
	s.Rounder = func(x []float64) ([]float64, bool) {
		rx := make([]float64, len(x))
		w := 0.0
		for j, v := range x {
			if v > 0.999 && w+weights[j] <= 60 {
				rx[j] = 1
				w += weights[j]
			}
		}
		return rx, true
	}
	r, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Feasible && r.Status != Optimal {
		t.Fatalf("status = %v, want feasible or optimal under node limit", r.Status)
	}
	if r.X == nil {
		t.Fatal("no incumbent returned")
	}
}

func TestExhaustiveRefusesLargeK(t *testing.T) {
	p := lp.NewProblem(30)
	bins := make([]int, 30)
	for j := range bins {
		bins[j] = j
		p.AddRow(map[int]float64{j: 1}, lp.LE, 1)
	}
	s := &Solver{Base: p, Binaries: bins}
	if _, err := s.SolveExhaustive(context.Background()); err == nil {
		t.Fatal("expected refusal for k=30")
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" {
		t.Error("status strings wrong")
	}
}
