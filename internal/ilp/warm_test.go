package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func mustSolve(t *testing.T, s *Solver) *Result {
	t.Helper()
	r, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func sameX(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for j := range a {
		if math.Abs(a[j]-b[j]) > 1e-6 {
			return false
		}
	}
	return true
}

func TestWarmIncumbentWithBoundProvesWithoutLP(t *testing.T) {
	s := knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	cold := mustSolve(t, s)

	// Same problem re-solved with its own optimum and objective as the
	// warm state: the carried bound closes the gap with zero LP solves.
	s2 := knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	s2.Warm = &WarmStart{
		Incumbent: cold.X,
		Bound:     cold.Obj,
		HasBound:  true,
		RootIters: cold.RootIters,
	}
	warm := mustSolve(t, s2)
	if warm.Status != Optimal || !warm.WarmProof || !warm.WarmIncumbent {
		t.Fatalf("got status %v WarmProof %v WarmIncumbent %v", warm.Status, warm.WarmProof, warm.WarmIncumbent)
	}
	if warm.Nodes != 0 {
		t.Errorf("Nodes = %d, want 0 on an instant proof", warm.Nodes)
	}
	if !sameX(warm.X, cold.X) || math.Abs(warm.Obj-cold.Obj) > 1e-9 {
		t.Errorf("warm optimum differs: %v obj %v vs %v obj %v", warm.X, warm.Obj, cold.X, cold.Obj)
	}
}

func TestWarmIncumbentInfeasibleForTighterProblemIsRejected(t *testing.T) {
	loose := knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	cold := mustSolve(t, loose)

	// Capacity 25: the carried solution (weight 50) is infeasible here
	// and must be dropped; the bound must not be applied either way
	// (the caller is responsible for only carrying admissible bounds,
	// but an unaccepted incumbent gives the bound nothing to prove).
	tight := knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 25)
	tight.Warm = &WarmStart{Incumbent: cold.X, Bound: cold.Obj, HasBound: true}
	warm := mustSolve(t, tight)
	if warm.WarmIncumbent || warm.WarmProof {
		t.Fatalf("infeasible incumbent accepted: WarmIncumbent=%v WarmProof=%v", warm.WarmIncumbent, warm.WarmProof)
	}
	ref := mustSolve(t, knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 25))
	if warm.Status != Optimal || math.Abs(warm.Obj-ref.Obj) > 1e-9 {
		t.Errorf("warm got %v obj %v, cold obj %v", warm.Status, warm.Obj, ref.Obj)
	}
}

func TestWarmBasisMatchesColdAcrossCapacitySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 14
	values := make([]float64, n)
	weights := make([]float64, n)
	for j := range values {
		values[j] = 1 + math.Floor(rng.Float64()*50)
		weights[j] = 1 + math.Floor(rng.Float64()*20)
	}

	var prev *Result
	for _, capacity := range []float64{80, 60, 45, 30, 20, 10} {
		cold := mustSolve(t, knapsack(values, weights, capacity))

		warmSolver := knapsack(values, weights, capacity)
		if prev != nil {
			warmSolver.Warm = &WarmStart{
				Incumbent: prev.X,
				Basis:     prev.RootBasis,
				RootIters: prev.RootIters,
			}
		}
		warm := mustSolve(t, warmSolver)
		if warm.Status != cold.Status {
			t.Fatalf("cap %v: warm %v cold %v", capacity, warm.Status, cold.Status)
		}
		if math.Abs(warm.Obj-cold.Obj) > 1e-9 {
			t.Errorf("cap %v: warm obj %v, cold %v", capacity, warm.Obj, cold.Obj)
		}
		if !sameX(warm.X, cold.X) {
			t.Errorf("cap %v: warm x %v, cold %v", capacity, warm.X, cold.X)
		}
		if cold.RootBasis == nil {
			t.Fatalf("cap %v: cold solve has no root basis", capacity)
		}
		prev = cold
	}
}

func TestWarmGarbageBasisStillSolves(t *testing.T) {
	cold := mustSolve(t, knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50))
	s := knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	s.Warm = &WarmStart{Basis: []int{99, 98, 97, 96}}
	warm := mustSolve(t, s)
	if warm.Status != Optimal || math.Abs(warm.Obj-cold.Obj) > 1e-9 {
		t.Fatalf("garbage basis: got %v obj %v, want cold obj %v", warm.Status, warm.Obj, cold.Obj)
	}
}

func TestWarmNonIntegralIncumbentIsRejected(t *testing.T) {
	s := knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	s.Warm = &WarmStart{Incumbent: []float64{0.5, 0.5, 0.5}, Bound: -1e9, HasBound: true}
	warm := mustSolve(t, s)
	if warm.WarmIncumbent || warm.WarmProof {
		t.Fatalf("fractional incumbent accepted: %+v", warm)
	}
	if warm.Status != Optimal {
		t.Fatalf("status = %v", warm.Status)
	}
}
