package ilp

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/errs"
)

// budgetKnapsack is a fractional-root instance with a feasible rounder,
// shared by the budget-trip regression tests. Its exact optimum is 220
// (items 2+3). The LP root is x = [1, 1, 2/3] (greedy by density), and
// rounding down keeps items 1+2, so a budget that stops the search at
// the root pins the incumbent objective at exactly 160 — strictly worse
// than the optimum, proving the incumbent (not a lucky optimum) is what
// a budget trip returns.
func budgetKnapsack() *Solver {
	s := knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	weights := []float64{10, 20, 30}
	s.Rounder = func(x []float64) ([]float64, bool) {
		rx := make([]float64, len(x))
		w := 0.0
		for j, v := range x {
			if v > 0.999 && w+weights[j] <= 50 {
				rx[j] = 1
				w += weights[j]
			}
		}
		return rx, true
	}
	return s
}

// TestNodeBudgetKeepsIncumbent is the regression test for the discarded
// incumbent: a tripped node budget must return the best incumbent with a
// Feasible (non-Optimal) status and the budget error in Stop — never an
// error, never a worse objective than the root rounding guarantees.
func TestNodeBudgetKeepsIncumbent(t *testing.T) {
	s := budgetKnapsack()
	s.MaxNodes = 1 // root only: the incumbent exists solely via the rounder
	r, err := s.Solve(context.Background())
	if err != nil {
		t.Fatalf("node budget must not fail when an incumbent exists: %v", err)
	}
	if r.Status != Feasible {
		t.Fatalf("status = %v, want feasible", r.Status)
	}
	if got := -r.Obj; math.Abs(got-160) > 1e-6 {
		t.Fatalf("incumbent value = %v, want the pinned 160", got)
	}
	if r.Nodes != 1 {
		t.Fatalf("nodes = %d, want exactly the root", r.Nodes)
	}
	if r.Stop == nil || !errors.Is(r.Stop, errs.ErrBudget) {
		t.Fatalf("Stop = %v, want a budget error", r.Stop)
	}
	var be *errs.BudgetError
	if !errors.As(r.Stop, &be) || be.Resource != "node" || be.Limit != 1 {
		t.Fatalf("Stop = %+v, want node budget 1", r.Stop)
	}
}

// TestIterBudgetRoundsPhase2Point: a simplex pivot budget that trips in
// phase 2 leaves a feasible fractional point; the solver must round it
// into an incumbent instead of erroring out.
func TestIterBudgetRoundsPhase2Point(t *testing.T) {
	sawFeasible := false
	for maxIter := 1; maxIter <= 20; maxIter++ {
		s := budgetKnapsack()
		s.Base.MaxIter = maxIter
		r, err := s.Solve(context.Background())
		if err != nil {
			// Phase 1 tripped: no feasible point existed, so an error
			// matching the budget sentinel is the correct outcome.
			if !errors.Is(err, errs.ErrBudget) {
				t.Fatalf("maxIter=%d: error %v does not match ErrBudget", maxIter, err)
			}
			continue
		}
		if r.Status == Feasible {
			sawFeasible = true
			if r.X == nil {
				t.Fatalf("maxIter=%d: feasible result without an incumbent", maxIter)
			}
			if !s.Base.Feasible(r.X, 1e-6) {
				t.Fatalf("maxIter=%d: incumbent violates the constraints", maxIter)
			}
			if r.Stop == nil || !errors.Is(r.Stop, errs.ErrBudget) {
				t.Fatalf("maxIter=%d: Stop = %v, want budget error", maxIter, r.Stop)
			}
		}
	}
	if !sawFeasible {
		t.Fatal("no pivot budget produced a rounded phase-2 incumbent; the regression path never ran")
	}
}

// TestDeadlineKeepsIncumbent: an already-expired context still returns
// the root incumbent (the root LP finished before the first poll only if
// the point was in hand; with a dead context the LP itself is interrupted,
// so assert the no-incumbent error matches both sentinels instead).
func TestDeadlineKeepsIncumbent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := budgetKnapsack()
	_, err := s.Solve(ctx)
	if err == nil {
		t.Fatal("expected an error from a pre-cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match context.Canceled", err)
	}
}

// TestBudgetDeterminism: the same budget yields byte-identical incumbents
// across repeated solves.
func TestBudgetDeterminism(t *testing.T) {
	run := func() *Result {
		s := budgetKnapsack()
		s.MaxNodes = 1
		r, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Obj != b.Obj || a.Status != b.Status || a.Nodes != b.Nodes {
		t.Fatalf("non-deterministic budget result: %+v vs %+v", a, b)
	}
	for j := range a.X {
		if a.X[j] != b.X[j] {
			t.Fatalf("incumbent differs at %d: %v vs %v", j, a.X[j], b.X[j])
		}
	}
}
