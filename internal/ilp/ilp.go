// Package ilp solves 0–1 integer linear programs by LP-based branch and
// bound over the solver in internal/lp. Together the two packages replace
// the GNU Linear Programming Kit the paper integrates into its
// optimization (§4.3).
//
// Only a designated subset of variables is branched on. The placement
// model exploits this: given an integral assignment of the r_b ("block b
// in RAM") variables, the auxiliary i_b (instrumented) and p_b (product)
// variables are automatically integral at any LP optimum, so branching is
// restricted to the r_b variables and the search tree stays small.
package ilp

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"repro/internal/errs"
	"repro/internal/lp"
)

// Status of an ILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal: the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible: an incumbent was found but a budget (nodes, simplex
	// iterations or the deadline) stopped the proof of optimality;
	// Result.Stop says which.
	Feasible
	// Infeasible: no integer solution exists.
	Infeasible
	// Unbounded: the relaxation is unbounded below.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible (budget)"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// WarmStart carries reusable state from a completed solve of a related
// problem — same columns and objective, different constraint bounds —
// into a new one. Every field is optional and independently validated:
// the solve is never wrong because of a stale warm start, only slower.
type WarmStart struct {
	// Incumbent is a candidate starting solution (full variable vector).
	// It is used only if it is integral and feasible for THIS problem;
	// its objective is recomputed, never trusted.
	Incumbent []float64
	// Bound, when HasBound, is a proven lower bound on this problem's
	// optimal objective (e.g. the optimum of a relaxation-wise looser
	// neighbor). An accepted incumbent whose objective reaches Bound is
	// optimal without a single LP solve.
	Bound    float64
	HasBound bool
	// Basis, when non-nil, warm-starts the root relaxation through
	// lp.SolveFrom instead of a cold solve.
	Basis []int
	// State, when non-nil, is the donor root's full end state
	// (lp.Solution.State) and supersedes Basis: the root resumes through
	// lp.SolveFromState, which skips basis re-installation entirely.
	State *lp.State
	// RootIters is the simplex iteration count of the donor's root solve,
	// used by callers to account iterations saved. Not read by Solve.
	RootIters int
}

// Solver is a 0–1 branch-and-bound instance.
type Solver struct {
	// Base is the LP relaxation. Solve adds its own 0/1 bound rows for
	// every variable in Binaries (they carry the branching fixes), so
	// Base need not include x_j ≤ 1 rows; redundant copies are harmless.
	Base *lp.Problem
	// Binaries lists the variable indices required to be integer (0 or 1).
	Binaries []int
	// MaxNodes bounds the search (0 = default 100000).
	MaxNodes int
	// Rounder, if set, converts a fractional relaxation solution into a
	// feasible integer candidate (used to seed and tighten the incumbent).
	// It must return a complete variable vector and true on success.
	Rounder func(x []float64) ([]float64, bool)
	// Warm, if set, seeds the search with state from a related solve.
	Warm *WarmStart
}

// Result of a solve.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	Nodes  int // LP relaxations solved
	// Stop is the budget error that halted the search when Status is
	// Feasible (errors.Is(Stop, errs.ErrBudget) always holds; a
	// deadline-caused stop also matches the context error). Nil when the
	// search ran to completion.
	Stop error
	// RootIters is the simplex iteration count of the root relaxation
	// (zero when the root was never solved), RootBasis its final basis
	// and RootState its full end state — together the donor state for
	// the next warm start.
	RootIters int
	RootBasis []int
	RootState *lp.State
	// WarmIncumbent reports that the warm start's incumbent was accepted
	// as the starting incumbent; WarmRoot that the warm basis genuinely
	// warm-started the root relaxation (not a cold fallback); WarmProof
	// that the incumbent was proven optimal by the carried bound alone,
	// with no LP solved (Nodes == 0).
	WarmIncumbent bool
	WarmRoot      bool
	WarmProof     bool
}

const intTol = 1e-6

type node struct {
	bound float64
	fixes []fix
	// from is the parent relaxation's end state. Because fixes are
	// RHS-only edits of the augmented problem, the parent's tableau stays
	// dual feasible in every child and seeds a dual-simplex re-solve.
	from *lp.State
}

type fix struct {
	j   int
	val float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve runs branch and bound and returns the best integer solution.
// When a budget trips — the node limit, the base LP's iteration limit,
// or ctx's deadline — the best incumbent found so far comes back with
// Status Feasible and the tripping error in Result.Stop (Optimal when
// the remaining open bounds prove it could not be improved). The solve
// fails outright only when the budget ran out before any incumbent
// existed; that error matches errs.ErrBudget, and a deadline-caused one
// also matches the context error.
func (s *Solver) Solve(ctx context.Context) (*Result, error) {
	maxNodes := s.MaxNodes
	if maxNodes == 0 {
		maxNodes = 100000
	}
	isBinary := make(map[int]bool, len(s.Binaries))
	for _, j := range s.Binaries {
		isBinary[j] = true
	}

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1)
		nodes        int
		rootIters    int
		rootBasis    []int
		rootState    *lp.State
		warmInc      bool
		warmRoot     bool
	)
	stamp := func(r *Result) *Result {
		r.RootIters = rootIters
		r.RootBasis = rootBasis
		r.RootState = rootState
		r.WarmIncumbent = warmInc
		r.WarmRoot = warmRoot
		return r
	}

	// A warm incumbent is admitted only on its own merits: integral and
	// feasible for THIS problem, objective recomputed here. If a carried
	// lower bound already meets that objective the solve is over before
	// the first LP.
	if w := s.Warm; w != nil && w.Incumbent != nil &&
		s.integral(w.Incumbent) && s.Base.Feasible(w.Incumbent, 1e-6) {
		incumbent = append([]float64(nil), w.Incumbent...)
		incumbentObj = s.Base.Objective(incumbent)
		warmInc = true
		if w.HasBound && incumbentObj <= w.Bound+1e-9 {
			// The donor's root state is passed through untouched so a
			// chain of instant proofs keeps a usable basis for the first
			// point that needs a real solve again.
			rootBasis = append([]int(nil), w.Basis...)
			rootState = w.State
			rootIters = w.RootIters
			return stamp(&Result{
				Status: Optimal, X: incumbent, Obj: incumbentObj,
				Nodes: 0, WarmProof: true,
			}), nil
		}
	}

	// The search works on an augmented relaxation: every binary gets an
	// upper-bound row (x_j ≤ 1) and a lower-bound row (x_j ≥ 0) up front,
	// and a branching fix only edits the matching row's RHS — fix to 0
	// tightens the upper bound to 0, fix to 1 raises the lower bound to 1.
	// Appending EQ rows per node (the obvious encoding) would give every
	// node a different standard-form layout; RHS-only edits keep the
	// layout identical across the whole tree, which is what lets a parent
	// basis warm-start its children below. The edited RHS values (0 and 1)
	// never go negative, so no row changes sign or sprouts a different
	// slack/artificial pattern.
	aug := s.Base.Clone()
	ubRow := make(map[int]int, len(s.Binaries))
	lbRow := make(map[int]int, len(s.Binaries))
	for _, j := range s.Binaries {
		ubRow[j] = aug.NumRows()
		aug.AddRow(map[int]float64{j: 1}, lp.LE, 1)
		lbRow[j] = aug.NumRows()
		aug.AddRow(map[int]float64{j: 1}, lp.GE, 0)
	}

	// solveNode solves one tree node. With a parent end state the node
	// resumes the dual simplex from the parent's tableau (falling back to
	// a cold solve internally on any mismatch); the root passes nil.
	solveNode := func(fixes []fix, from *lp.State) (*lp.Solution, error) {
		p := aug.Clone()
		for _, f := range fixes {
			if f.val == 0 {
				p.SetRHS(ubRow[f.j], 0)
			} else {
				p.SetRHS(lbRow[f.j], 1)
			}
		}
		nodes++
		if from != nil {
			return p.SolveFromState(ctx, from)
		}
		return p.Solve(ctx)
	}

	tryIncumbent := func(x []float64) {
		if !s.integral(x) {
			if s.Rounder == nil {
				return
			}
			rx, ok := s.Rounder(x)
			if !ok || !s.integral(rx) || !s.Base.Feasible(rx, 1e-6) {
				return
			}
			x = rx
		}
		obj := s.Base.Objective(x)
		if obj < incumbentObj-1e-9 {
			incumbentObj = obj
			incumbent = append([]float64(nil), x...)
		}
	}

	// Root node. A donor end state resumes the tableau directly; a bare
	// basis routes through the install-and-repair re-solve. Both fall
	// back to a cold solve internally on any mismatch.
	var rootSol *lp.Solution
	var err error
	switch {
	case s.Warm != nil && s.Warm.State != nil:
		nodes++
		rootSol, err = aug.Clone().SolveFromState(ctx, s.Warm.State)
	case s.Warm != nil && s.Warm.Basis != nil:
		nodes++
		rootSol, err = aug.Clone().SolveFrom(ctx, s.Warm.Basis)
	default:
		rootSol, err = solveNode(nil, nil)
	}
	if err != nil {
		return nil, fmt.Errorf("ilp: root relaxation: %w", err)
	}
	rootIters = rootSol.Iters
	rootBasis = rootSol.Basis
	rootState = rootSol.State
	warmRoot = rootSol.Warmed
	switch rootSol.Status {
	case lp.Infeasible:
		return stamp(&Result{Status: Infeasible, Nodes: nodes}), nil
	case lp.Unbounded:
		return stamp(&Result{Status: Unbounded, Nodes: nodes}), nil
	case lp.IterLimit:
		// The pivot budget ran out at the root. A phase-2 trip still
		// carries a feasible point — round it into an incumbent rather
		// than abandoning the solve.
		if rootSol.X != nil {
			tryIncumbent(rootSol.X)
		}
		stop := &errs.BudgetError{Resource: "simplex iteration", Limit: s.Base.MaxIter}
		if incumbent == nil {
			return nil, fmt.Errorf("ilp: %w with no incumbent", error(stop))
		}
		return stamp(&Result{Status: Feasible, X: incumbent, Obj: incumbentObj, Nodes: nodes, Stop: stop}), nil
	}
	tryIncumbent(rootSol.X)
	if s.integral(rootSol.X) {
		return stamp(&Result{Status: Optimal, X: incumbent, Obj: incumbentObj, Nodes: nodes}), nil
	}

	open := &nodeHeap{{bound: rootSol.Obj}}
	heap.Init(open)
	done := ctx.Done()

	// stopResult ends the search on a tripped budget: the incumbent is
	// never discarded. If the surviving open bounds prove it optimal the
	// status says so; otherwise it is Feasible with the trip recorded.
	stopResult := func(stop error) (*Result, error) {
		if incumbent == nil {
			return nil, fmt.Errorf("ilp: %w with no incumbent", stop)
		}
		best := math.Inf(1)
		for _, nd := range *open {
			if nd.bound < best {
				best = nd.bound
			}
		}
		if best >= incumbentObj-1e-9 {
			return stamp(&Result{Status: Optimal, X: incumbent, Obj: incumbentObj, Nodes: nodes}), nil
		}
		return stamp(&Result{Status: Feasible, X: incumbent, Obj: incumbentObj, Nodes: nodes, Stop: stop}), nil
	}

	for open.Len() > 0 {
		if nodes >= maxNodes {
			return stopResult(&errs.BudgetError{Resource: "node", Limit: maxNodes})
		}
		if done != nil {
			select {
			case <-done:
				return stopResult(&errs.BudgetError{Resource: "deadline", Cause: ctx.Err()})
			default:
			}
		}
		nd := heap.Pop(open).(*node)
		if nd.bound >= incumbentObj-1e-9 {
			continue // pruned by bound
		}
		sol, err := solveNode(nd.fixes, nd.from)
		if err != nil {
			if ctx.Err() != nil {
				return stopResult(&errs.BudgetError{Resource: "deadline", Cause: ctx.Err()})
			}
			return nil, err
		}
		if sol.Status == lp.IterLimit {
			// The node's LP ran out of pivots: its point may still round
			// into an incumbent, but without an optimal bound the branch
			// cannot be explored further.
			if sol.X != nil {
				tryIncumbent(sol.X)
			}
			continue
		}
		if sol.Status != lp.Optimal {
			continue // infeasible or numerically stuck branch
		}
		if sol.Obj >= incumbentObj-1e-9 {
			continue
		}
		tryIncumbent(sol.X)
		j := s.mostFractional(sol.X)
		if j < 0 {
			continue // integral; tryIncumbent already recorded it
		}
		for _, v := range [2]float64{0, 1} {
			child := &node{
				bound: sol.Obj,
				fixes: append(append([]fix(nil), nd.fixes...), fix{j, v}),
				from:  sol.State,
			}
			heap.Push(open, child)
		}
	}

	if incumbent == nil {
		return stamp(&Result{Status: Infeasible, Nodes: nodes}), nil
	}
	return stamp(&Result{Status: Optimal, X: incumbent, Obj: incumbentObj, Nodes: nodes}), nil
}

// integral reports whether every branching variable of x is 0/1.
func (s *Solver) integral(x []float64) bool {
	for _, j := range s.Binaries {
		f := x[j]
		if math.Abs(f-math.Round(f)) > intTol {
			return false
		}
	}
	return true
}

// mostFractional returns the branching variable whose value is closest to
// 0.5, or -1 if all are integral.
func (s *Solver) mostFractional(x []float64) int {
	best, bestDist := -1, math.Inf(1)
	for _, j := range s.Binaries {
		f := x[j]
		frac := math.Abs(f - math.Round(f))
		if frac <= intTol {
			continue
		}
		d := math.Abs(f - 0.5)
		if d < bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

// SolveExhaustive enumerates every assignment of the binaries (2^k) and
// returns the true optimum. Only usable for small k; serves as the oracle
// in tests and as the Figure 6 point-cloud generator's core. Cancelling
// ctx aborts the enumeration with the context error wrapped — a partial
// enumeration proves nothing, so no incumbent is returned.
func (s *Solver) SolveExhaustive(ctx context.Context) (*Result, error) {
	k := len(s.Binaries)
	if k > 24 {
		return nil, fmt.Errorf("ilp: exhaustive enumeration over %d binaries refused", k)
	}
	bestObj := math.Inf(1)
	var bestX []float64
	nodes := 0
	for mask := 0; mask < 1<<k; mask++ {
		p := s.Base.Clone()
		for bi, j := range s.Binaries {
			v := 0.0
			if mask&(1<<bi) != 0 {
				v = 1.0
			}
			p.AddRow(map[int]float64{j: 1}, lp.EQ, v)
		}
		nodes++
		sol, err := p.Solve(ctx)
		if err != nil {
			return nil, fmt.Errorf("ilp: exhaustive enumeration: %w", err)
		}
		if sol.Status != lp.Optimal {
			continue
		}
		if sol.Obj < bestObj-1e-9 {
			bestObj = sol.Obj
			bestX = append([]float64(nil), sol.X...)
		}
	}
	if bestX == nil {
		return &Result{Status: Infeasible, Nodes: nodes}, nil
	}
	return &Result{Status: Optimal, X: bestX, Obj: bestObj, Nodes: nodes}, nil
}
