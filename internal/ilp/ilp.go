// Package ilp solves 0–1 integer linear programs by LP-based branch and
// bound over the solver in internal/lp. Together the two packages replace
// the GNU Linear Programming Kit the paper integrates into its
// optimization (§4.3).
//
// Only a designated subset of variables is branched on. The placement
// model exploits this: given an integral assignment of the r_b ("block b
// in RAM") variables, the auxiliary i_b (instrumented) and p_b (product)
// variables are automatically integral at any LP optimum, so branching is
// restricted to the r_b variables and the search tree stays small.
package ilp

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"repro/internal/errs"
	"repro/internal/lp"
)

// Status of an ILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal: the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible: an incumbent was found but a budget (nodes, simplex
	// iterations or the deadline) stopped the proof of optimality;
	// Result.Stop says which.
	Feasible
	// Infeasible: no integer solution exists.
	Infeasible
	// Unbounded: the relaxation is unbounded below.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible (budget)"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Solver is a 0–1 branch-and-bound instance.
type Solver struct {
	// Base is the LP relaxation. It must already include x_j ≤ 1 rows
	// (or equivalent) for every variable in Binaries.
	Base *lp.Problem
	// Binaries lists the variable indices required to be integer (0 or 1).
	Binaries []int
	// MaxNodes bounds the search (0 = default 100000).
	MaxNodes int
	// Rounder, if set, converts a fractional relaxation solution into a
	// feasible integer candidate (used to seed and tighten the incumbent).
	// It must return a complete variable vector and true on success.
	Rounder func(x []float64) ([]float64, bool)
}

// Result of a solve.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	Nodes  int // LP relaxations solved
	// Stop is the budget error that halted the search when Status is
	// Feasible (errors.Is(Stop, errs.ErrBudget) always holds; a
	// deadline-caused stop also matches the context error). Nil when the
	// search ran to completion.
	Stop error
}

const intTol = 1e-6

type node struct {
	bound float64
	fixes []fix
}

type fix struct {
	j   int
	val float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve runs branch and bound and returns the best integer solution.
// When a budget trips — the node limit, the base LP's iteration limit,
// or ctx's deadline — the best incumbent found so far comes back with
// Status Feasible and the tripping error in Result.Stop (Optimal when
// the remaining open bounds prove it could not be improved). The solve
// fails outright only when the budget ran out before any incumbent
// existed; that error matches errs.ErrBudget, and a deadline-caused one
// also matches the context error.
func (s *Solver) Solve(ctx context.Context) (*Result, error) {
	maxNodes := s.MaxNodes
	if maxNodes == 0 {
		maxNodes = 100000
	}
	isBinary := make(map[int]bool, len(s.Binaries))
	for _, j := range s.Binaries {
		isBinary[j] = true
	}

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1)
		nodes        int
	)

	solveNode := func(fixes []fix) (*lp.Solution, error) {
		p := s.Base.Clone()
		for _, f := range fixes {
			p.AddRow(map[int]float64{f.j: 1}, lp.EQ, f.val)
		}
		nodes++
		return p.Solve(ctx)
	}

	tryIncumbent := func(x []float64) {
		if !s.integral(x) {
			if s.Rounder == nil {
				return
			}
			rx, ok := s.Rounder(x)
			if !ok || !s.integral(rx) || !s.Base.Feasible(rx, 1e-6) {
				return
			}
			x = rx
		}
		obj := s.Base.Objective(x)
		if obj < incumbentObj-1e-9 {
			incumbentObj = obj
			incumbent = append([]float64(nil), x...)
		}
	}

	// Root node.
	rootSol, err := solveNode(nil)
	if err != nil {
		return nil, fmt.Errorf("ilp: root relaxation: %w", err)
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return &Result{Status: Infeasible, Nodes: nodes}, nil
	case lp.Unbounded:
		return &Result{Status: Unbounded, Nodes: nodes}, nil
	case lp.IterLimit:
		// The pivot budget ran out at the root. A phase-2 trip still
		// carries a feasible point — round it into an incumbent rather
		// than abandoning the solve.
		if rootSol.X != nil {
			tryIncumbent(rootSol.X)
		}
		stop := &errs.BudgetError{Resource: "simplex iteration", Limit: s.Base.MaxIter}
		if incumbent == nil {
			return nil, fmt.Errorf("ilp: %w with no incumbent", error(stop))
		}
		return &Result{Status: Feasible, X: incumbent, Obj: incumbentObj, Nodes: nodes, Stop: stop}, nil
	}
	tryIncumbent(rootSol.X)
	if s.integral(rootSol.X) {
		return &Result{Status: Optimal, X: incumbent, Obj: incumbentObj, Nodes: nodes}, nil
	}

	open := &nodeHeap{{bound: rootSol.Obj}}
	heap.Init(open)
	done := ctx.Done()

	// stopResult ends the search on a tripped budget: the incumbent is
	// never discarded. If the surviving open bounds prove it optimal the
	// status says so; otherwise it is Feasible with the trip recorded.
	stopResult := func(stop error) (*Result, error) {
		if incumbent == nil {
			return nil, fmt.Errorf("ilp: %w with no incumbent", stop)
		}
		best := math.Inf(1)
		for _, nd := range *open {
			if nd.bound < best {
				best = nd.bound
			}
		}
		if best >= incumbentObj-1e-9 {
			return &Result{Status: Optimal, X: incumbent, Obj: incumbentObj, Nodes: nodes}, nil
		}
		return &Result{Status: Feasible, X: incumbent, Obj: incumbentObj, Nodes: nodes, Stop: stop}, nil
	}

	for open.Len() > 0 {
		if nodes >= maxNodes {
			return stopResult(&errs.BudgetError{Resource: "node", Limit: maxNodes})
		}
		if done != nil {
			select {
			case <-done:
				return stopResult(&errs.BudgetError{Resource: "deadline", Cause: ctx.Err()})
			default:
			}
		}
		nd := heap.Pop(open).(*node)
		if nd.bound >= incumbentObj-1e-9 {
			continue // pruned by bound
		}
		sol, err := solveNode(nd.fixes)
		if err != nil {
			if ctx.Err() != nil {
				return stopResult(&errs.BudgetError{Resource: "deadline", Cause: ctx.Err()})
			}
			return nil, err
		}
		if sol.Status == lp.IterLimit {
			// The node's LP ran out of pivots: its point may still round
			// into an incumbent, but without an optimal bound the branch
			// cannot be explored further.
			if sol.X != nil {
				tryIncumbent(sol.X)
			}
			continue
		}
		if sol.Status != lp.Optimal {
			continue // infeasible or numerically stuck branch
		}
		if sol.Obj >= incumbentObj-1e-9 {
			continue
		}
		tryIncumbent(sol.X)
		j := s.mostFractional(sol.X)
		if j < 0 {
			continue // integral; tryIncumbent already recorded it
		}
		for _, v := range [2]float64{0, 1} {
			child := &node{
				bound: sol.Obj,
				fixes: append(append([]fix(nil), nd.fixes...), fix{j, v}),
			}
			heap.Push(open, child)
		}
	}

	if incumbent == nil {
		return &Result{Status: Infeasible, Nodes: nodes}, nil
	}
	return &Result{Status: Optimal, X: incumbent, Obj: incumbentObj, Nodes: nodes}, nil
}

// integral reports whether every branching variable of x is 0/1.
func (s *Solver) integral(x []float64) bool {
	for _, j := range s.Binaries {
		f := x[j]
		if math.Abs(f-math.Round(f)) > intTol {
			return false
		}
	}
	return true
}

// mostFractional returns the branching variable whose value is closest to
// 0.5, or -1 if all are integral.
func (s *Solver) mostFractional(x []float64) int {
	best, bestDist := -1, math.Inf(1)
	for _, j := range s.Binaries {
		f := x[j]
		frac := math.Abs(f - math.Round(f))
		if frac <= intTol {
			continue
		}
		d := math.Abs(f - 0.5)
		if d < bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

// SolveExhaustive enumerates every assignment of the binaries (2^k) and
// returns the true optimum. Only usable for small k; serves as the oracle
// in tests and as the Figure 6 point-cloud generator's core. Cancelling
// ctx aborts the enumeration with the context error wrapped — a partial
// enumeration proves nothing, so no incumbent is returned.
func (s *Solver) SolveExhaustive(ctx context.Context) (*Result, error) {
	k := len(s.Binaries)
	if k > 24 {
		return nil, fmt.Errorf("ilp: exhaustive enumeration over %d binaries refused", k)
	}
	bestObj := math.Inf(1)
	var bestX []float64
	nodes := 0
	for mask := 0; mask < 1<<k; mask++ {
		p := s.Base.Clone()
		for bi, j := range s.Binaries {
			v := 0.0
			if mask&(1<<bi) != 0 {
				v = 1.0
			}
			p.AddRow(map[int]float64{j: 1}, lp.EQ, v)
		}
		nodes++
		sol, err := p.Solve(ctx)
		if err != nil {
			return nil, fmt.Errorf("ilp: exhaustive enumeration: %w", err)
		}
		if sol.Status != lp.Optimal {
			continue
		}
		if sol.Obj < bestObj-1e-9 {
			bestObj = sol.Obj
			bestX = append([]float64(nil), sol.X...)
		}
	}
	if bestX == nil {
		return &Result{Status: Infeasible, Nodes: nodes}, nil
	}
	return &Result{Status: Optimal, X: bestX, Obj: bestObj, Nodes: nodes}, nil
}
