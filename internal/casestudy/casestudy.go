// Package casestudy implements the paper's §7 periodic-sensing analysis:
// a device wakes every T seconds, runs an active region (e.g. the FDCT),
// then sleeps at quiescent power PS. Equations 10–12 of the paper:
//
//	E  = E0 + PS·(T − TA)                        (10)
//	E' = ke·E0 + PS·(T − kt·TA)                  (11)
//	Es = E − E' = E0·(1 − ke) + PS·TA·(kt − 1)   (12)
//
// The counter-intuitive headline: because the optimized code runs longer
// (kt > 1) at lower power, the device spends less time in the (relatively
// expensive) sleep state, so total energy can drop even when the active
// region's energy does not.
package casestudy

import (
	"fmt"
	"math"
)

// Scenario is one periodic-sensing deployment.
type Scenario struct {
	// E0 is the active-region energy before optimization, in mJ.
	E0 float64
	// TA is the active-region execution time before optimization, in s.
	TA float64
	// Ke is optimized/baseline active energy (≤ 1 when the optimization
	// helps).
	Ke float64
	// Kt is optimized/baseline active time (≥ 1: instrumentation costs
	// cycles).
	Kt float64
	// PS is the sleep-state power in mW (3.5 mW measured in §7).
	PS float64
}

// PaperScenario returns the §7 fdct example exactly as printed:
// E0 = 16.9 mJ, TA = 1.18 s, ke = 0.825, kt = 1.33, PS = 3.5 mW.
func PaperScenario() Scenario {
	return Scenario{E0: 16.9, TA: 1.18, Ke: 0.825, Kt: 1.33, PS: 3.5}
}

// Validate rejects physically meaningless scenarios.
func (s Scenario) Validate() error {
	switch {
	case s.E0 <= 0 || s.TA <= 0:
		return fmt.Errorf("casestudy: active region must have positive energy and time")
	case s.Ke < 0 || s.Kt <= 0:
		return fmt.Errorf("casestudy: invalid ke=%v kt=%v", s.Ke, s.Kt)
	case s.PS < 0:
		return fmt.Errorf("casestudy: negative sleep power")
	}
	return nil
}

// MinPeriod returns the smallest period that fits the optimized active
// region (T ≥ kt·TA).
func (s Scenario) MinPeriod() float64 { return s.Kt * s.TA }

// BaselineEnergy is Eq. 10: energy per period without the optimization,
// in mJ.
func (s Scenario) BaselineEnergy(T float64) float64 {
	return s.E0 + s.PS*(T-s.TA)
}

// OptimizedEnergy is Eq. 11: energy per period with the optimization.
func (s Scenario) OptimizedEnergy(T float64) float64 {
	return s.Ke*s.E0 + s.PS*(T-s.Kt*s.TA)
}

// EnergySaved is Eq. 12; note it is independent of the period T.
func (s Scenario) EnergySaved() float64 {
	return s.E0*(1-s.Ke) + s.PS*s.TA*(s.Kt-1)
}

// EnergyRatio returns E'/E for the period — the Figure 9 y-axis
// ("Energy consumption (%)" is 100× this).
func (s Scenario) EnergyRatio(T float64) float64 {
	return s.OptimizedEnergy(T) / s.BaselineEnergy(T)
}

// SavingPercent returns the percentage of energy saved for the period.
func (s Scenario) SavingPercent(T float64) float64 {
	return 100 * (1 - s.EnergyRatio(T))
}

// BatteryLifeExtension returns the fractional battery-life increase for
// a fixed battery capacity: periods-per-charge scale inversely with
// energy-per-period, so the extension is E/E' − 1.
func (s Scenario) BatteryLifeExtension(T float64) float64 {
	return 1/s.EnergyRatio(T) - 1
}

// Point is one entry of a Figure 9 sweep.
type Point struct {
	T             float64 // period, s
	Multiple      float64 // T / TA (the x-axis points of Figure 9)
	EnergyPercent float64 // 100 · E'/E
	LifeExtension float64 // fractional battery-life extension
}

// Sweep evaluates the scenario at T = TA·multiples (Figure 9 plots points
// at integer multiples of the active-region time; the first point is
// T = TA, i.e. no sleep at all — the paper clamps it to the optimized
// region's duration).
func (s Scenario) Sweep(multiples []float64) []Point {
	out := make([]Point, 0, len(multiples))
	for _, m := range multiples {
		T := m * s.TA
		if T < s.MinPeriod() {
			T = s.MinPeriod()
		}
		out = append(out, Point{
			T:             T,
			Multiple:      m,
			EnergyPercent: 100 * s.EnergyRatio(T),
			LifeExtension: s.BatteryLifeExtension(T),
		})
	}
	return out
}

// BestSaving returns the maximum percentage saving over the sweep (the
// "up to 25%" of §7) and the corresponding battery-life extension (the
// "up to 32%").
func (s Scenario) BestSaving(multiples []float64) (savingPct, lifeExt float64) {
	for _, p := range s.Sweep(multiples) {
		if sv := 100 - p.EnergyPercent; sv > savingPct {
			savingPct = sv
			lifeExt = p.LifeExtension
		}
	}
	return savingPct, lifeExt
}

// Figure8 reproduces the illustration of Figure 8: an active region that
// keeps the same energy but takes twice as long at half the power, inside
// a fixed period with 1 mW sleep. Returns the unoptimized and optimized
// per-period energies in µJ (60 and 55 in the paper).
func Figure8() (unoptUJ, optUJ float64) {
	const (
		period  = 15e-3 // s
		sleepMW = 1.0
	)
	// Unoptimized: 10 mW for 5 ms; optimized: 5 mW for 10 ms.
	unopt := 10.0*5e-3 + sleepMW*(period-5e-3)
	opt := 5.0*10e-3 + sleepMW*(period-10e-3)
	return unopt * 1e3, opt * 1e3 // mW·s = mJ → µJ ×1e3
}

// BreakEvenKt returns, for a given ke, the kt above which the optimization
// saves energy even with NO active-energy reduction at all — solving
// Es = 0 for the boundary (Eq. 12). For ke = 1 any kt > 1 saves energy,
// so the function reports the marginal saving rate instead via Es.
func BreakEvenKt(e0, ta, ke, ps float64) float64 {
	if ps == 0 || ta == 0 {
		return math.Inf(1)
	}
	return 1 - e0*(1-ke)/(ps*ta)
}
