package casestudy

import (
	"strings"
	"testing"
)

func TestIntermittentChanges(t *testing.T) {
	s := Intermittent{
		Profile:           "steady",
		BaselineWorkPerMJ: 1000, OptimizedWorkPerMJ: 1200,
		BaselineTimeS: 2.0, OptimizedTimeS: 2.2,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !approx(s.WorkChange(), 0.2, 1e-12) {
		t.Fatalf("WorkChange = %v, want 0.2", s.WorkChange())
	}
	if !approx(s.TimeChange(), 0.1, 1e-12) {
		t.Fatalf("TimeChange = %v, want 0.1", s.TimeChange())
	}
	if !approx(s.ExtraWorkPerCharge(5), 1000, 1e-9) {
		t.Fatalf("ExtraWorkPerCharge(5) = %v, want 1000", s.ExtraWorkPerCharge(5))
	}
}

func TestIntermittentValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Intermittent
		want string
	}{
		{"zero baseline rate", Intermittent{OptimizedWorkPerMJ: 1, BaselineTimeS: 1, OptimizedTimeS: 1}, "work rates"},
		{"negative optimized rate", Intermittent{BaselineWorkPerMJ: 1, OptimizedWorkPerMJ: -2, BaselineTimeS: 1, OptimizedTimeS: 1}, "work rates"},
		{"zero time", Intermittent{BaselineWorkPerMJ: 1, OptimizedWorkPerMJ: 1, OptimizedTimeS: 1}, "times"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestSummarizeIntermittent(t *testing.T) {
	rows := []Intermittent{
		{Profile: "steady", BaselineWorkPerMJ: 100, OptimizedWorkPerMJ: 110, BaselineTimeS: 1, OptimizedTimeS: 1.1},
		{Profile: "bursty", BaselineWorkPerMJ: 100, OptimizedWorkPerMJ: 90, BaselineTimeS: 1, OptimizedTimeS: 1.2},
		{Profile: "adversarial", BaselineWorkPerMJ: 100, OptimizedWorkPerMJ: 130, BaselineTimeS: 1, OptimizedTimeS: 0.9},
	}
	sum, err := SummarizeIntermittent(rows)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Profiles != 3 {
		t.Fatalf("Profiles = %d", sum.Profiles)
	}
	if sum.Best.Profile != "adversarial" || sum.Worst.Profile != "bursty" {
		t.Fatalf("best/worst = %q/%q", sum.Best.Profile, sum.Worst.Profile)
	}
	if !approx(sum.MeanWorkChange, (0.1-0.1+0.3)/3, 1e-12) {
		t.Fatalf("MeanWorkChange = %v", sum.MeanWorkChange)
	}

	if _, err := SummarizeIntermittent(nil); err == nil {
		t.Fatal("empty summary accepted")
	}
	rows[1].BaselineTimeS = 0
	if _, err := SummarizeIntermittent(rows); err == nil {
		t.Fatal("invalid row accepted")
	}
}
