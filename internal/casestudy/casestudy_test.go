package casestudy

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPaperNumbers(t *testing.T) {
	s := PaperScenario()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// §7: "Substituting these values into Equation 12 gives a total energy
	// saved of Es = 4.32 mJ."
	es := s.EnergySaved()
	if !approx(es, 4.32, 0.01) {
		t.Errorf("Es = %.4f mJ, want 4.32 (paper §7)", es)
	}
	// The saving must be period-independent: E−E' identical across T.
	for _, T := range []float64{2, 5, 10, 20} {
		if d := s.BaselineEnergy(T) - s.OptimizedEnergy(T); !approx(d, es, 1e-9) {
			t.Errorf("T=%v: E−E' = %v, want %v", T, d, es)
		}
	}
}

func TestUpTo25PercentAnd32PercentLife(t *testing.T) {
	s := PaperScenario()
	multiples := []float64{1, 2, 3, 4, 5, 6, 8, 10, 12, 16}
	saving, life := s.BestSaving(multiples)
	// §7: "providing up to 25% reduction in energy consumption. This leads
	// to up to 32% longer battery life."
	if saving < 20 || saving > 30 {
		t.Errorf("best saving = %.1f%%, expected ≈25%% (paper §7)", saving)
	}
	if life < 0.25 || life > 0.40 {
		t.Errorf("battery life extension = %.1f%%, expected ≈32%%", 100*life)
	}
	// Saving shrinks as the period grows (Figure 9's rising curves).
	pts := s.Sweep([]float64{2, 4, 8, 16})
	for i := 1; i < len(pts); i++ {
		if pts[i].EnergyPercent < pts[i-1].EnergyPercent {
			t.Errorf("energy %% not monotone in T: %v", pts)
		}
	}
}

func TestFigure8Illustration(t *testing.T) {
	unopt, opt := Figure8()
	// "Overall the energy is reduced from 60 µJ to 55 µJ in this
	// illustration."
	if !approx(unopt, 60, 1e-9) || !approx(opt, 55, 1e-9) {
		t.Errorf("Figure 8 = %.1f → %.1f µJ, want 60 → 55", unopt, opt)
	}
}

func TestSavingEvenWithoutActiveEnergyReduction(t *testing.T) {
	// The paper's unintuitive §7 point: ke = 1 (no active saving) with
	// kt > 1 still reduces total energy, because sleep time shrinks...
	s := Scenario{E0: 10, TA: 1, Ke: 1.0, Kt: 1.3, PS: 3.5}
	if es := s.EnergySaved(); es <= 0 {
		t.Errorf("Es = %v, want positive with ke=1, kt>1", es)
	}
	// ...but only when the active region's average power is above the
	// sleep power; the effect comes from replacing sleep with cheaper
	// active time? No: active time is *more* expensive than sleep, yet
	// the substitution happens at the *baseline* active power. Check the
	// sign flips when PS = 0 (no sleep cost to displace).
	s.PS = 0
	if es := s.EnergySaved(); es != 0 {
		t.Errorf("Es = %v, want 0 with PS=0 and ke=1", es)
	}
}

func TestEnergyRatioAsymptote(t *testing.T) {
	// As T → ∞ the sleep dominates and the ratio tends to 1.
	s := PaperScenario()
	r := s.EnergyRatio(10000)
	if !approx(r, 1, 0.01) {
		t.Errorf("ratio at huge T = %v, want ≈1", r)
	}
	// At the minimum period the ratio is smallest.
	rMin := s.EnergyRatio(s.MinPeriod())
	if rMin >= r {
		t.Error("ratio should be most favourable at the smallest period")
	}
}

func TestSweepClampsToMinPeriod(t *testing.T) {
	s := PaperScenario()
	pts := s.Sweep([]float64{1}) // T = TA < kt·TA
	if pts[0].T < s.MinPeriod()-1e-12 {
		t.Errorf("sweep did not clamp: T = %v < min %v", pts[0].T, s.MinPeriod())
	}
}

func TestValidate(t *testing.T) {
	bad := []Scenario{
		{E0: 0, TA: 1, Ke: 1, Kt: 1, PS: 1},
		{E0: 1, TA: 0, Ke: 1, Kt: 1, PS: 1},
		{E0: 1, TA: 1, Ke: -0.1, Kt: 1, PS: 1},
		{E0: 1, TA: 1, Ke: 1, Kt: 0, PS: 1},
		{E0: 1, TA: 1, Ke: 1, Kt: 1, PS: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: bad scenario accepted", i)
		}
	}
}

func TestBreakEvenKt(t *testing.T) {
	// With ke < 1 the break-even kt is below 1: any slowdown still saves.
	kt := BreakEvenKt(16.9, 1.18, 0.825, 3.5)
	if kt >= 1 {
		t.Errorf("break-even kt = %v, want < 1 when ke < 1", kt)
	}
	if !math.IsInf(BreakEvenKt(1, 0, 0.8, 3.5), 1) {
		t.Error("zero TA should yield +Inf break-even")
	}
}
