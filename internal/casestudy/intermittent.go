// Intermittent (harvested-power) variant of the case study: instead of a
// battery and a sleep state, the device runs off an energy harvester that
// fails and recovers on a schedule. The figure of merit shifts from
// energy-per-period to forward progress per delivered energy — useful
// instructions per millijoule — and to wall-clock time-to-completion
// including down time and checkpoint traffic. The scenario here is pure
// arithmetic over measured replay numbers (internal/sim produces them);
// keeping it model-free mirrors the §7 Scenario.
package casestudy

import "fmt"

// Intermittent is one benchmark replayed under one harvest profile,
// before and after placement.
type Intermittent struct {
	// Profile names the harvest schedule (e.g. "steady", "adversarial").
	Profile string
	// Work rates in useful (non-replayed) instructions per mJ delivered,
	// checkpoint and restore traffic included.
	BaselineWorkPerMJ  float64
	OptimizedWorkPerMJ float64
	// Time-to-completion in seconds: executed cycles plus checkpoint,
	// restore and down time.
	BaselineTimeS  float64
	OptimizedTimeS float64
}

// Validate rejects physically meaningless outcomes.
func (s Intermittent) Validate() error {
	switch {
	case s.BaselineWorkPerMJ <= 0 || s.OptimizedWorkPerMJ <= 0:
		return fmt.Errorf("casestudy: work rates must be positive")
	case s.BaselineTimeS <= 0 || s.OptimizedTimeS <= 0:
		return fmt.Errorf("casestudy: completion times must be positive")
	}
	return nil
}

// WorkChange is the fractional change in completed work per delivered
// millijoule (positive = the placement helps under this profile).
func (s Intermittent) WorkChange() float64 {
	return s.OptimizedWorkPerMJ/s.BaselineWorkPerMJ - 1
}

// TimeChange is the fractional change in time-to-completion (negative =
// the placement finishes sooner despite its instrumentation cycles).
func (s Intermittent) TimeChange() float64 {
	return s.OptimizedTimeS/s.BaselineTimeS - 1
}

// ExtraWorkPerCharge is the additional useful instructions one harvester
// charge of the given size buys after the optimization — the intermittent
// analogue of §7's energy-saved-per-period.
func (s Intermittent) ExtraWorkPerCharge(mj float64) float64 {
	return mj * (s.OptimizedWorkPerMJ - s.BaselineWorkPerMJ)
}

// IntermittentSummary aggregates one benchmark's outcomes across harvest
// profiles: the mean work-rate change and the profiles where the
// placement helps most and least.
type IntermittentSummary struct {
	Profiles       int
	MeanWorkChange float64
	MeanTimeChange float64
	Best, Worst    Intermittent
}

// SummarizeIntermittent folds per-profile outcomes into a summary.
// Outcomes are compared by WorkChange; ties keep the earlier profile so
// the summary is deterministic in the caller's order.
func SummarizeIntermittent(rows []Intermittent) (IntermittentSummary, error) {
	var out IntermittentSummary
	if len(rows) == 0 {
		return out, fmt.Errorf("casestudy: no intermittent outcomes to summarize")
	}
	for _, r := range rows {
		if err := r.Validate(); err != nil {
			return out, err
		}
	}
	out.Profiles = len(rows)
	out.Best, out.Worst = rows[0], rows[0]
	for _, r := range rows {
		out.MeanWorkChange += r.WorkChange()
		out.MeanTimeChange += r.TimeChange()
		if r.WorkChange() > out.Best.WorkChange() {
			out.Best = r
		}
		if r.WorkChange() < out.Worst.WorkChange() {
			out.Worst = r
		}
	}
	out.MeanWorkChange /= float64(len(rows))
	out.MeanTimeChange /= float64(len(rows))
	return out, nil
}
