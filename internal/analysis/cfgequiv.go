package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/isa"
)

// CFGEquivalencePass proves the transformation preserved control flow:
// the original and transformed programs must be isomorphic modulo the
// instrumentation — same functions, same blocks, the same successor set
// per block (with long-branch sequences resolved back to their targets),
// the same call sequence, and an untouched computational instruction
// stream outside the rewritten transfers.
//
// Codes:
//
//	CF001  program or function structure differs (functions/blocks)
//	CF002  a block's successor set changed
//	CF003  a block's call sequence changed
//	CF004  non-control instructions were altered
type CFGEquivalencePass struct{}

// Name implements Pass.
func (CFGEquivalencePass) Name() string { return "cfg-equivalence" }

// Run implements Pass.
func (p CFGEquivalencePass) Run(ctx *Context) ([]Diagnostic, error) {
	if ctx.Original == nil || ctx.Original == ctx.Prog {
		return nil, nil // baseline lint: nothing to compare against
	}
	var diags []Diagnostic
	report := func(code, fn, block string, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pass: p.Name(), Code: code, Severity: Error,
			Func: fn, Block: block, Instr: -1,
			Message: fmt.Sprintf(format, args...),
		})
	}

	orig, prog := ctx.Original, ctx.Prog
	if len(orig.Funcs) != len(prog.Funcs) {
		report("CF001", "", "", "function count changed: %d → %d", len(orig.Funcs), len(prog.Funcs))
		return diags, nil
	}
	for fi, of := range orig.Funcs {
		tf := prog.Funcs[fi]
		if of.Name != tf.Name || of.Library != tf.Library {
			report("CF001", of.Name, "", "function %d changed identity: %s → %s", fi, of.Name, tf.Name)
			continue
		}
		if len(of.Blocks) != len(tf.Blocks) {
			report("CF001", of.Name, "", "block count changed: %d → %d", len(of.Blocks), len(tf.Blocks))
			continue
		}
		for bi, ob := range of.Blocks {
			tb := tf.Blocks[bi]
			if ob.Label != tb.Label {
				report("CF001", of.Name, ob.Label, "block %d relabeled: %s → %s", bi, ob.Label, tb.Label)
				continue
			}
			oSucc := successorSet(of, bi, ob)
			tSucc := successorSet(tf, bi, tb)
			if !sameSet(oSucc, tSucc) {
				report("CF002", of.Name, ob.Label, "successors changed: {%s} → {%s}",
					setString(oSucc), setString(tSucc))
			}
			oCalls := callSequence(ob)
			tCalls := callSequence(tb)
			if strings.Join(oCalls, ",") != strings.Join(tCalls, ",") {
				report("CF003", of.Name, ob.Label, "call sequence changed: [%s] → [%s]",
					strings.Join(oCalls, " "), strings.Join(tCalls, " "))
			}
			if msg := compareComputation(ob, tb); msg != "" {
				report("CF004", of.Name, ob.Label, "%s", msg)
			}
		}
	}
	return diags, nil
}

// successorSet resolves a block's intraprocedural successor labels,
// understanding both the plain terminators and the Figure 4 long-branch
// forms the instrumentation substitutes for them.
func successorSet(f *ir.Function, bi int, b *ir.Block) map[string]bool {
	out := map[string]bool{}
	next := ""
	if bi+1 < len(f.Blocks) {
		next = f.Blocks[bi+1].Label
	}
	n := len(b.Instrs)
	if n == 0 {
		if next != "" {
			out[next] = true
		}
		return out
	}
	t := &b.Instrs[n-1]
	switch t.Op {
	case isa.B:
		out[t.Sym] = true
		if t.Cond != isa.AL && next != "" {
			out[next] = true
		}
	case isa.CBZ, isa.CBNZ:
		out[t.Sym] = true
		if next != "" {
			out[next] = true
		}
	case isa.LDRLIT:
		if t.Rd == isa.PC {
			out[t.Sym] = true
		} else if next != "" {
			out[next] = true // data load in terminal position: falls through
		}
	case isa.BX:
		if t.Rm != isa.LR && n >= 4 {
			// Instrumented conditional: it; ldr<c> rS,=taken; ldr<c'> rS,=ft; bx rS.
			l2, l1, it := &b.Instrs[n-2], &b.Instrs[n-3], &b.Instrs[n-4]
			if it.Op == isa.IT && l1.Op == isa.LDRLIT && l2.Op == isa.LDRLIT &&
				l1.Rd == t.Rm && l2.Rd == t.Rm {
				out[l1.Sym] = true
				out[l2.Sym] = true
			}
		}
		// bx lr (return) and unrecognized indirect branches: no successors.
	case isa.POP:
		// pop {...,pc}: return, no successors.
		if t.RegList&(1<<isa.PC) == 0 && next != "" {
			out[next] = true
		}
	default:
		if next != "" {
			out[next] = true
		}
	}
	return out
}

// callSequence lists a block's callees in order, resolving the rewritten
// ldr rS,=callee; blx rS idiom back to a direct call.
func callSequence(b *ir.Block) []string {
	var out []string
	for i := range b.Instrs {
		in := &b.Instrs[i]
		switch in.Op {
		case isa.BL:
			out = append(out, in.Sym)
		case isa.BLX:
			if i > 0 && b.Instrs[i-1].Op == isa.LDRLIT &&
				b.Instrs[i-1].Rd == in.Rm && b.Instrs[i-1].Sym != "" {
				out = append(out, b.Instrs[i-1].Sym)
			} else {
				out = append(out, "<indirect>")
			}
		}
	}
	return out
}

// compareComputation checks that outside the rewritten control transfers
// the instruction streams are identical. It strips each block's terminator
// construct, then walks both streams, matching a bl against its rewritten
// ldr+blx pair. Returns "" when equivalent, else a description.
func compareComputation(ob, tb *ir.Block) string {
	oBody := stripTerminator(ob)
	tBody := stripTerminator(tb)

	// A rewritten cbz/cbnz leaves a trailing cmp rn, #0 in the transformed
	// body that stands in for the original terminator's comparison.
	if ot := ob.Terminator(); ot != nil && (ot.Op == isa.CBZ || ot.Op == isa.CBNZ) {
		if len(tBody) == len(oBody)+1 {
			last := tBody[len(tBody)-1]
			if last.Op == isa.CMP && last.HasImm && last.Imm == 0 && last.Rn == ot.Rn {
				tBody = tBody[:len(tBody)-1]
			}
		}
	}

	oi, ti := 0, 0
	for oi < len(oBody) && ti < len(tBody) {
		o, t := oBody[oi], tBody[ti]
		if o == t {
			oi, ti = oi+1, ti+1
			continue
		}
		// bl f  ↔  ldr rS, =f; blx rS
		if o.Op == isa.BL && t.Op == isa.LDRLIT && ti+1 < len(tBody) {
			nx := tBody[ti+1]
			if nx.Op == isa.BLX && nx.Rm == t.Rd && t.Sym == o.Sym {
				oi, ti = oi+1, ti+2
				continue
			}
		}
		return fmt.Sprintf("computation diverges at original[%d] %q vs transformed[%d] %q",
			oi, o.String(), ti, t.String())
	}
	if oi != len(oBody) || ti != len(tBody) {
		return fmt.Sprintf("computation length diverges: %d original vs %d transformed instructions left",
			len(oBody)-oi, len(tBody)-ti)
	}
	return ""
}

// stripTerminator returns the block's instructions with the trailing
// control-transfer construct removed: a plain terminator, or the whole
// it/ldr/ldr/bx instrumentation tail.
func stripTerminator(b *ir.Block) []isa.Instr {
	n := len(b.Instrs)
	if n == 0 {
		return nil
	}
	t := &b.Instrs[n-1]
	switch t.Op {
	case isa.B, isa.CBZ, isa.CBNZ:
		return b.Instrs[:n-1]
	case isa.LDRLIT:
		if t.Rd == isa.PC {
			return b.Instrs[:n-1]
		}
	case isa.BX:
		if t.Rm == isa.LR {
			return b.Instrs[:n-1]
		}
		if n >= 4 {
			l2, l1, it := &b.Instrs[n-2], &b.Instrs[n-3], &b.Instrs[n-4]
			if it.Op == isa.IT && l1.Op == isa.LDRLIT && l2.Op == isa.LDRLIT &&
				l1.Rd == t.Rm && l2.Rd == t.Rm {
				return b.Instrs[:n-4]
			}
		}
		return b.Instrs[:n-1]
	case isa.POP:
		if t.RegList&(1<<isa.PC) != 0 {
			return b.Instrs[:n-1]
		}
	}
	return b.Instrs
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func setString(s map[string]bool) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}
