package analysis

// DiagnosticJSON is the machine-readable form of one Diagnostic,
// following the shared CLI schema convention (lower snake case, explicit
// units). `flashram analyze -json` emits a ResultJSON per analyzed
// program.
type DiagnosticJSON struct {
	Pass     string `json:"pass"`
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Func     string `json:"func,omitempty"`
	Block    string `json:"block,omitempty"`
	Instr    int    `json:"instr,omitempty"`
	Addr     uint32 `json:"addr,omitempty"`
	Message  string `json:"message"`
}

// NewDiagnosticJSON converts a Diagnostic. The -1 "whole block"
// instruction index maps to the omitted zero value: JSON consumers key
// on block granularity, not the sentinel.
func NewDiagnosticJSON(d Diagnostic) DiagnosticJSON {
	j := DiagnosticJSON{
		Pass:     d.Pass,
		Code:     d.Code,
		Severity: d.Severity.String(),
		Func:     d.Func,
		Block:    d.Block,
		Addr:     d.Addr,
		Message:  d.Message,
	}
	if d.Instr >= 0 {
		j.Instr = d.Instr
	}
	return j
}

// ResultJSON is one program's suite outcome.
type ResultJSON struct {
	Program     string           `json:"program"`
	Level       string           `json:"level"`
	Passes      []string         `json:"passes"`
	Errors      int              `json:"errors"`
	Warnings    int              `json:"warnings"`
	Diagnostics []DiagnosticJSON `json:"diagnostics"`
}

// NewResultJSON converts a Result for one named program.
func NewResultJSON(program, level string, r *Result) ResultJSON {
	j := ResultJSON{
		Program:     program,
		Level:       level,
		Passes:      r.Passes,
		Errors:      len(r.Errors()),
		Diagnostics: []DiagnosticJSON{},
	}
	for _, d := range r.Diags {
		if d.Severity == Warning {
			j.Warnings++
		}
		j.Diagnostics = append(j.Diagnostics, NewDiagnosticJSON(d))
	}
	return j
}
