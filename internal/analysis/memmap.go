package analysis

import (
	"fmt"
	"sort"
)

// MemoryMapPass audits the laid-out image against the SoC's memory map:
// nothing may overlap, everything must sit inside its region and respect
// alignment, RAM contents must stay out of the stack reservation, and the
// code placed in RAM must honour the Eq. 7 budget the placement model was
// solved under.
//
// Codes:
//
//	MM001  two placed objects overlap
//	MM002  object lies (partly) outside its memory region
//	MM003  misaligned object (instruction, literal word or global)
//	MM004  RAM contents grow into the stack reserve / capacity exceeded
//	MM005  RAM code exceeds the model's Rspare budget (warning)
//	MM006  image placement disagrees with the placement decision map
type MemoryMapPass struct{}

// Name implements Pass.
func (MemoryMapPass) Name() string { return "memory-map" }

// extent is a placed byte range [lo, hi).
type extent struct {
	lo, hi uint32
	ram    bool
	what   string
}

// Run implements Pass.
func (p MemoryMapPass) Run(ctx *Context) ([]Diagnostic, error) {
	img := ctx.Image
	cfg := img.Config
	var diags []Diagnostic
	report := func(code string, sev Severity, block string, addr uint32, format string, args ...interface{}) {
		fn := ""
		if b := ctx.Prog.BlockByLabel(block); b != nil && b.Func != nil {
			fn = b.Func.Name
		}
		diags = append(diags, Diagnostic{
			Pass: p.Name(), Code: code, Severity: sev,
			Func: fn, Block: block, Instr: -1, Addr: addr,
			Message: fmt.Sprintf(format, args...),
		})
	}

	var extents []extent
	for _, pl := range img.Blocks {
		label := pl.Block.Label
		// The image must agree with the placement decision.
		if pl.InRAM != ctx.memOf(label) {
			report("MM006", Error, label, pl.Addr,
				"image places block in %s but the placement decision says %s",
				memName(pl.InRAM), memName(ctx.memOf(label)))
		}
		if pl.Addr%2 != 0 {
			report("MM003", Error, label, pl.Addr, "block start misaligned")
		}
		if pl.CodeEnd > pl.Addr {
			extents = append(extents, extent{pl.Addr, pl.CodeEnd, pl.InRAM,
				"code of " + label})
		}
		// Literal-pool words may be deferred far past the block's code, so
		// they are tracked as individual word extents.
		for i, lit := range pl.LitAddrs {
			if lit == 0 {
				continue
			}
			if lit%4 != 0 {
				report("MM003", Error, label, lit, "literal word misaligned")
			}
			extents = append(extents, extent{lit, lit + 4, pl.InRAM,
				fmt.Sprintf("literal %d of %s", i, label)})
		}
	}
	for _, g := range ctx.Prog.Globals {
		addr, ok := img.Symbols[g.Name]
		if !ok {
			report("MM002", Error, "", 0, "global %q has no address", g.Name)
			continue
		}
		if addr%4 != 0 {
			report("MM003", Error, "", addr, "global %q misaligned", g.Name)
		}
		extents = append(extents, extent{addr, addr + uint32(g.Size), !g.RO,
			"global " + g.Name})
	}

	// Region bounds, including the stack reservation at the top of RAM.
	flashEnd := cfg.FlashBase + uint32(cfg.FlashSize)
	ramLimit := cfg.RAMBase + uint32(cfg.RAMSize-cfg.StackReserve)
	for _, e := range extents {
		if e.ram {
			if e.lo < cfg.RAMBase || e.hi > cfg.RAMBase+uint32(cfg.RAMSize) {
				report("MM002", Error, "", e.lo, "%s [%#x,%#x) outside RAM", e.what, e.lo, e.hi)
			} else if e.hi > ramLimit {
				report("MM004", Error, "", e.lo,
					"%s [%#x,%#x) grows into the %d-byte stack reserve above %#x",
					e.what, e.lo, e.hi, cfg.StackReserve, ramLimit)
			}
		} else if e.lo < cfg.FlashBase || e.hi > flashEnd {
			report("MM002", Error, "", e.lo, "%s [%#x,%#x) outside flash", e.what, e.lo, e.hi)
		}
	}

	// Overlaps: sort by start and compare neighbours.
	sort.Slice(extents, func(i, j int) bool {
		if extents[i].lo != extents[j].lo {
			return extents[i].lo < extents[j].lo
		}
		return extents[i].hi < extents[j].hi
	})
	for i := 1; i < len(extents); i++ {
		prev, cur := extents[i-1], extents[i]
		if cur.lo < prev.hi {
			report("MM001", Error, "", cur.lo, "%s [%#x,%#x) overlaps %s [%#x,%#x)",
				cur.what, cur.lo, cur.hi, prev.what, prev.lo, prev.hi)
		}
	}

	// Aggregate capacities (Eq. 7's physical form) and the model budget.
	if used := img.FlashCodeBytes + img.RodataBytes; used > cfg.FlashSize {
		report("MM004", Error, "", 0, "flash capacity exceeded: %d of %d bytes", used, cfg.FlashSize)
	}
	if used := img.RAMCodeBytes + img.DataBytes + cfg.StackReserve; used > cfg.RAMSize {
		report("MM004", Error, "", 0,
			"RAM capacity exceeded: %d bytes incl. %d stack reserve, %d available",
			used, cfg.StackReserve, cfg.RAMSize)
	}
	if ctx.Rspare > 0 && float64(img.RAMCodeBytes) > ctx.Rspare {
		report("MM005", Warning, "", 0,
			"RAM code is %d bytes, above the model's Rspare budget of %.0f (layout padding)",
			img.RAMCodeBytes, ctx.Rspare)
	}
	return diags, nil
}
