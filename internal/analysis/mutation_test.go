package analysis

import (
	"strings"
	"testing"

	"repro/internal/beebs"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/mcc"
	"repro/internal/transform"
)

// Mutation tests: each pass must flag a deliberately seeded violation with
// its exact diagnostic code. Corruption happens AFTER layout.New succeeds,
// because the layout engine itself rejects most malformed inputs at build
// time — the analysis suite exists to catch the artifacts that desync
// after that point.

// mutant is a freshly built pipeline artifact set, ready to be corrupted.
type mutant struct {
	orig, opt *ir.Program
	inRAM     map[string]bool
	img       *layout.Image
	rspare    float64
}

func buildMutant(t *testing.T, bench string, level mcc.OptLevel) *mutant {
	t.Helper()
	orig, opt, inRAM, rspare := optimizedProgram(t, bench, level)
	img, err := layout.New(opt, layout.DefaultConfig(), inRAM)
	if err != nil {
		t.Fatal(err)
	}
	return &mutant{orig: orig, opt: opt, inRAM: inRAM, img: img, rspare: rspare}
}

func (m *mutant) ctx() *Context {
	return &Context{
		Original: m.orig, Prog: m.opt, InRAM: m.inRAM,
		Config: layout.DefaultConfig(), Image: m.img, Rspare: m.rspare,
	}
}

// buildSplitMutant places every other block of each non-library function
// in RAM. The ILP solver tends to move small benchmarks wholesale — a
// placement with no cross edges at all — so tests that need the Figure 4
// instrumentation shapes (ldr pc, it/ldr/ldr/bx) force a split placement
// with plenty of flash↔RAM boundaries instead.
func buildSplitMutant(t *testing.T, bench string, level mcc.OptLevel) *mutant {
	t.Helper()
	prog, err := mcc.Compile(beebs.Get(bench).Source, level)
	if err != nil {
		t.Fatal(err)
	}
	inRAM := map[string]bool{}
	for _, f := range prog.Funcs {
		if f.Library {
			continue
		}
		for i, b := range f.Blocks {
			if i%2 == 0 {
				inRAM[b.Label] = true
			}
		}
	}
	opt := prog.Clone()
	if _, err := transform.Apply(opt, inRAM); err != nil {
		t.Fatal(err)
	}
	img, err := layout.New(opt, layout.DefaultConfig(), inRAM)
	if err != nil {
		t.Fatal(err)
	}
	return &mutant{orig: prog, opt: opt, inRAM: inRAM, img: img}
}

// findMutant builds benchmark artifacts (via build) until corrupt manages
// to seed its violation, returning the corrupted mutant.
func findMutant(t *testing.T, build func(*testing.T, string, mcc.OptLevel) *mutant, corrupt func(m *mutant) bool) *mutant {
	t.Helper()
	for _, b := range beebs.All() {
		for _, level := range []mcc.OptLevel{mcc.O2, mcc.Os} {
			m := build(t, b.Name, level)
			if corrupt(m) {
				return m
			}
		}
	}
	t.Fatal("no benchmark offers the required corruption site")
	return nil
}

// runPass executes a single pass and requires the given code among its
// diagnostics.
func runPass(t *testing.T, ctx *Context, p Pass, wantCode string) *Result {
	t.Helper()
	res, err := Run(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByCode(wantCode)) == 0 {
		t.Fatalf("pass %s did not report %s; got:\n%s", p.Name(), wantCode, res)
	}
	return res
}

// ldrPCCrossing finds a block whose terminator is an instrumented
// `ldr pc, =target` across the flash/RAM boundary.
func ldrPCCrossing(m *mutant) (*ir.Block, int) {
	for _, f := range m.opt.Funcs {
		for _, b := range f.Blocks {
			n := len(b.Instrs)
			if n == 0 {
				continue
			}
			in := &b.Instrs[n-1]
			if in.Op == isa.LDRLIT && in.Rd == isa.PC &&
				m.inRAM[b.Label] != m.inRAM[in.Sym] {
				return b, n - 1
			}
		}
	}
	return nil, -1
}

func TestMutationBranchRange(t *testing.T) {
	t.Run("BR001 long branch shrunk to direct b", func(t *testing.T) {
		m := findMutant(t, buildSplitMutant, func(m *mutant) bool {
			b, i := ldrPCCrossing(m)
			if b == nil {
				return false
			}
			// Undo the Figure 4 rewrite: a direct b cannot span the
			// 0x18000000 flash↔RAM distance in any Thumb-2 encoding.
			b.Instrs[i] = isa.Instr{Op: isa.B, Sym: b.Instrs[i].Sym}
			return true
		})
		runPass(t, m.ctx(), BranchRangePass{}, "BR001")
	})

	t.Run("BR002 backward cbz", func(t *testing.T) {
		p := ir.NewProgram()
		f := p.AddFunc(&ir.Function{Name: "main"})
		ir.Build(f.AddBlock("m0")).Cbz(isa.R0, "m2")
		ir.Build(f.AddBlock("m1")).Nop()
		ir.Build(f.AddBlock("m2")).Ret()
		p.Reindex()
		img, err := layout.New(p, layout.DefaultConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Retarget the already-laid-out cbz at its own block: a backward
		// displacement no cbz/cbnz encoding can express.
		f.Block("m0").Instrs[0].Sym = "m0"
		ctx := &Context{Prog: p, Config: layout.DefaultConfig(), Image: img}
		runPass(t, ctx, BranchRangePass{}, "BR002")
	})

	t.Run("BR003 literal slot dropped", func(t *testing.T) {
		m := buildMutant(t, "crc32", mcc.O2)
		seeded := false
		for _, pl := range m.img.Blocks {
			for i := range pl.Block.Instrs {
				if pl.Block.Instrs[i].Op == isa.LDRLIT && pl.LitAddrs[i] != 0 {
					pl.LitAddrs[i] = 0
					seeded = true
					break
				}
			}
			if seeded {
				break
			}
		}
		if !seeded {
			t.Fatal("no literal load to corrupt")
		}
		runPass(t, m.ctx(), BranchRangePass{}, "BR003")
	})

	t.Run("BR004 unencodable instruction", func(t *testing.T) {
		m := buildSplitMutant(t, "crc32", mcc.O2)
		var g string
		for _, gl := range m.opt.Globals {
			g = gl.Name
			break
		}
		seeded := false
		for _, pl := range m.img.Blocks {
			if pl.InRAM || len(pl.Block.Instrs) < 2 {
				continue
			}
			// adr reaches 1020 bytes forward within flash; a RAM global
			// is unencodably far behind it.
			pl.Block.Instrs[0] = isa.Instr{Op: isa.ADR, Rd: isa.R0, Sym: g}
			seeded = true
			break
		}
		if !seeded {
			t.Fatal("no flash block to corrupt")
		}
		runPass(t, m.ctx(), BranchRangePass{}, "BR004")
	})
}

func TestMutationInstrumentation(t *testing.T) {
	t.Run("IC001 bl across memories", func(t *testing.T) {
		m := findMutant(t, buildMutant, func(m *mutant) bool {
			for _, f := range m.opt.Funcs {
				for _, b := range f.Blocks {
					for i := range b.Instrs {
						in := &b.Instrs[i]
						if in.Op != isa.BL {
							continue
						}
						callee := m.opt.Func(in.Sym)
						if callee == nil || callee.Entry() == nil {
							continue
						}
						entry := callee.Entry().Label
						if m.inRAM[b.Label] == m.inRAM[entry] {
							// Move the callee's entry to the other memory in
							// the decision map: the direct bl now crosses.
							m.inRAM[entry] = !m.inRAM[entry]
							return true
						}
					}
				}
			}
			return false
		})
		runPass(t, m.ctx(), InstrumentationPass{}, "IC001")
	})

	t.Run("IC002 direct branch across memories", func(t *testing.T) {
		m := findMutant(t, buildSplitMutant, func(m *mutant) bool {
			b, i := ldrPCCrossing(m)
			if b == nil {
				return false
			}
			b.Instrs[i] = isa.Instr{Op: isa.B, Sym: b.Instrs[i].Sym}
			return true
		})
		runPass(t, m.ctx(), InstrumentationPass{}, "IC002")
	})

	t.Run("IC003 fall-through severed", func(t *testing.T) {
		m := findMutant(t, buildMutant, func(m *mutant) bool {
			for _, f := range m.opt.Funcs {
				for bi, b := range f.Blocks {
					if b.FallsThrough() && bi+1 < len(f.Blocks) &&
						m.inRAM[b.Label] == m.inRAM[f.Blocks[bi+1].Label] {
						next := f.Blocks[bi+1].Label
						m.inRAM[next] = !m.inRAM[next]
						return true
					}
				}
			}
			return false
		})
		runPass(t, m.ctx(), InstrumentationPass{}, "IC003")
	})

	t.Run("IC004 scratch live across rewritten call", func(t *testing.T) {
		// Original: r4 carries 7 across the call and is used after it.
		orig := ir.NewProgram()
		g := orig.AddFunc(&ir.Function{Name: "g"})
		ir.Build(g.AddBlock("g_entry")).Ret()
		f := orig.AddFunc(&ir.Function{Name: "main"})
		ir.Build(f.AddBlock("m0")).
			MovImm(isa.R4, 7).Bl("g").Add(isa.R0, isa.R4, isa.R4).Ret()
		orig.Reindex()
		ir.MustVerify(orig)

		// "Transformed": the call is rewritten through r4 — a scratch
		// register that is provably live across the original bl.
		opt := orig.Clone()
		b := opt.Func("main").Block("m0")
		b.Instrs[1] = isa.Instr{Op: isa.LDRLIT, Rd: isa.R4, Sym: "g"}
		b.Instrs = append(b.Instrs[:2],
			append([]isa.Instr{{Op: isa.BLX, Rm: isa.R4}}, b.Instrs[2:]...)...)
		opt.Reindex()
		ir.MustVerify(opt)

		ctx := &Context{Original: orig, Prog: opt, Config: layout.DefaultConfig()}
		runPass(t, ctx, InstrumentationPass{}, "IC004")
	})

	t.Run("IC005 malformed long-branch tail", func(t *testing.T) {
		m := findMutant(t, buildSplitMutant, func(m *mutant) bool {
			for _, f := range m.opt.Funcs {
				for _, b := range f.Blocks {
					n := len(b.Instrs)
					if n >= 4 && b.Instrs[n-1].Op == isa.BX &&
						b.Instrs[n-1].Rm != isa.LR && b.Instrs[n-4].Op == isa.IT {
						// Both loads on the same condition: the false arm
						// of the conditional long branch is unreachable.
						b.Instrs[n-2].Cond = b.Instrs[n-3].Cond
						return true
					}
				}
			}
			return false
		})
		runPass(t, m.ctx(), InstrumentationPass{}, "IC005")
	})
}

func TestMutationCFGEquivalence(t *testing.T) {
	t.Run("CF001 block deleted", func(t *testing.T) {
		m := findMutant(t, buildMutant, func(m *mutant) bool {
			for _, f := range m.opt.Funcs {
				if len(f.Blocks) >= 2 {
					f.Blocks = f.Blocks[:len(f.Blocks)-1]
					return true
				}
			}
			return false
		})
		runPass(t, m.ctx(), CFGEquivalencePass{}, "CF001")
	})

	t.Run("CF002 branch retargeted", func(t *testing.T) {
		m := findMutant(t, buildMutant, func(m *mutant) bool {
			for _, f := range m.opt.Funcs {
				for _, b := range f.Blocks {
					if tm := b.Terminator(); tm != nil && tm.Op == isa.B &&
						tm.Cond == isa.AL && tm.Sym != f.Blocks[0].Label {
						tm.Sym = f.Blocks[0].Label
						return true
					}
				}
			}
			return false
		})
		runPass(t, m.ctx(), CFGEquivalencePass{}, "CF002")
	})

	t.Run("CF003 call deleted", func(t *testing.T) {
		m := findMutant(t, buildMutant, func(m *mutant) bool {
			for _, f := range m.opt.Funcs {
				for _, b := range f.Blocks {
					for i := range b.Instrs {
						if b.Instrs[i].Op == isa.BL {
							b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
							return true
						}
					}
				}
			}
			return false
		})
		runPass(t, m.ctx(), CFGEquivalencePass{}, "CF003")
	})

	t.Run("CF004 computation altered", func(t *testing.T) {
		m := findMutant(t, buildMutant, func(m *mutant) bool {
			for _, f := range m.opt.Funcs {
				for _, b := range f.Blocks {
					for i := 0; i < len(b.Instrs)-1; i++ {
						in := &b.Instrs[i]
						if in.Op == isa.MOV && in.HasImm {
							in.Imm++
							return true
						}
					}
				}
			}
			return false
		})
		runPass(t, m.ctx(), CFGEquivalencePass{}, "CF004")
	})
}

func TestMutationMemoryMap(t *testing.T) {
	t.Run("MM001 overlapping placement", func(t *testing.T) {
		m := buildMutant(t, "crc32", mcc.O2)
		var first *layout.Placed
		seeded := false
		for _, pl := range m.img.Blocks {
			if pl.CodeEnd <= pl.Addr {
				continue
			}
			if first == nil {
				first = pl
				continue
			}
			size := pl.CodeEnd - pl.Addr
			pl.Addr = first.Addr
			pl.CodeEnd = first.Addr + size
			seeded = true
			break
		}
		if !seeded {
			t.Fatal("fewer than two placed blocks")
		}
		runPass(t, m.ctx(), MemoryMapPass{}, "MM001")
	})

	t.Run("MM002 outside region", func(t *testing.T) {
		m := buildMutant(t, "crc32", mcc.O2)
		pl := m.img.Blocks[0]
		size := pl.CodeEnd - pl.Addr
		pl.Addr = m.img.Config.FlashBase - 16
		pl.CodeEnd = pl.Addr + size
		runPass(t, m.ctx(), MemoryMapPass{}, "MM002")
	})

	t.Run("MM003 misaligned block", func(t *testing.T) {
		m := buildMutant(t, "crc32", mcc.O2)
		pl := m.img.Blocks[0]
		pl.Addr++
		pl.CodeEnd++
		runPass(t, m.ctx(), MemoryMapPass{}, "MM003")
	})

	t.Run("MM004 RAM capacity exceeded", func(t *testing.T) {
		m := buildMutant(t, "crc32", mcc.O2)
		m.img.RAMCodeBytes = m.img.Config.RAMSize
		runPass(t, m.ctx(), MemoryMapPass{}, "MM004")
	})

	t.Run("MM005 Rspare budget exceeded", func(t *testing.T) {
		m := buildMutant(t, "crc32", mcc.O2)
		m.img.RAMCodeBytes = 100
		ctx := m.ctx()
		ctx.Rspare = 0.5
		res := runPass(t, ctx, MemoryMapPass{}, "MM005")
		if d := res.ByCode("MM005")[0]; d.Severity != Warning {
			t.Errorf("MM005 severity = %v, want warning", d.Severity)
		}
	})

	t.Run("MM006 image disagrees with placement", func(t *testing.T) {
		m := buildMutant(t, "crc32", mcc.O2)
		m.img.Blocks[0].InRAM = !m.img.Blocks[0].InRAM
		runPass(t, m.ctx(), MemoryMapPass{}, "MM006")
	})
}

func TestMutationStackDepth(t *testing.T) {
	t.Run("SD001 recursion", func(t *testing.T) {
		p := ir.NewProgram()
		f := p.AddFunc(&ir.Function{Name: "main"})
		ir.Build(f.AddBlock("m0")).Push(isa.LR).Bl("main").Pop(isa.PC)
		p.Reindex()
		ir.MustVerify(p)
		ctx := &Context{Prog: p, Config: layout.DefaultConfig()}
		runPass(t, ctx, StackDepthPass{}, "SD001")
	})

	t.Run("SD001 mutual recursion", func(t *testing.T) {
		// main → ping → pong → ping: the cycle involves no self-call, so
		// only a correct in-progress state in the call-graph walk (not a
		// caller==callee shortcut) can detect it.
		p := ir.NewProgram()
		m := p.AddFunc(&ir.Function{Name: "main"})
		ir.Build(m.AddBlock("m0")).Push(isa.LR).Bl("ping").Pop(isa.PC)
		ping := p.AddFunc(&ir.Function{Name: "ping"})
		ir.Build(ping.AddBlock("ping0")).Push(isa.LR).Bl("pong").Pop(isa.PC)
		pong := p.AddFunc(&ir.Function{Name: "pong"})
		ir.Build(pong.AddBlock("pong0")).Push(isa.LR).Bl("ping").Pop(isa.PC)
		p.Reindex()
		ir.MustVerify(p)
		ctx := &Context{Prog: p, Config: layout.DefaultConfig()}
		res := runPass(t, ctx, StackDepthPass{}, "SD001")
		if d := res.ByCode("SD001")[0]; !strings.Contains(d.Message, "recursion") {
			t.Errorf("SD001 message %q does not name recursion", d.Message)
		}
	})

	t.Run("SD001 unresolved indirect call", func(t *testing.T) {
		// blx through a register that was never loaded with `ldr rX,=f`:
		// the target could be anything, so the stack is unboundable.
		p := ir.NewProgram()
		m := p.AddFunc(&ir.Function{Name: "main"})
		ir.Build(m.AddBlock("m0")).Push(isa.LR).Mov(isa.R4, isa.R0).Blx(isa.R4).Pop(isa.PC)
		p.Reindex()
		ir.MustVerify(p)
		ctx := &Context{Prog: p, Config: layout.DefaultConfig()}
		res := runPass(t, ctx, StackDepthPass{}, "SD001")
		if d := res.ByCode("SD001")[0]; !strings.Contains(d.Message, "indirect") {
			t.Errorf("SD001 message %q does not name the indirect call", d.Message)
		}
	})

	t.Run("SD001 clobbered literal resolution", func(t *testing.T) {
		// The ldr rX,=f resolution dies when rX is rewritten before the
		// blx; treating the stale symbol as the target would silently
		// underestimate the stack.
		p := ir.NewProgram()
		leaf := p.AddFunc(&ir.Function{Name: "leaf"})
		ir.Build(leaf.AddBlock("leaf0")).Nop().Ret()
		m := p.AddFunc(&ir.Function{Name: "main"})
		ir.Build(m.AddBlock("m0")).Push(isa.LR).
			LdrLit(isa.R4, "leaf").Mov(isa.R4, isa.R0).Blx(isa.R4).Pop(isa.PC)
		p.Reindex()
		ir.MustVerify(p)
		ctx := &Context{Prog: p, Config: layout.DefaultConfig()}
		runPass(t, ctx, StackDepthPass{}, "SD001")
	})

	t.Run("resolved indirect call stays clean", func(t *testing.T) {
		// The exact shape our own instrumentation emits must resolve:
		// `ldr rX,=f; blx rX` is a call to f, not an SD001.
		p := ir.NewProgram()
		leaf := p.AddFunc(&ir.Function{Name: "leaf"})
		ir.Build(leaf.AddBlock("leaf0")).Nop().Ret()
		m := p.AddFunc(&ir.Function{Name: "main"})
		ir.Build(m.AddBlock("m0")).Push(isa.LR).
			LdrLit(isa.R4, "leaf").Blx(isa.R4).Pop(isa.PC)
		p.Reindex()
		ir.MustVerify(p)
		ctx := &Context{Prog: p, Config: layout.DefaultConfig()}
		res, err := Run(ctx, StackDepthPass{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Diags) != 0 {
			t.Fatalf("resolved indirect call produced diagnostics:\n%s", res)
		}
	})

	t.Run("SD002 stack collides with RAM contents", func(t *testing.T) {
		m := buildMutant(t, "crc32", mcc.O2)
		// Grow a global until it reaches the top of RAM: the worst-case
		// stack now has nowhere to live.
		m.opt.Globals[0].Size = m.img.Config.RAMSize
		runPass(t, m.ctx(), StackDepthPass{}, "SD002")
	})
}

// TestMutationCaughtBySuite seeds one violation and checks the full
// default suite (the form core.Optimize runs) rejects the program.
func TestMutationCaughtBySuite(t *testing.T) {
	m := findMutant(t, buildSplitMutant, func(m *mutant) bool {
		b, i := ldrPCCrossing(m)
		if b == nil {
			return false
		}
		b.Instrs[i] = isa.Instr{Op: isa.B, Sym: b.Instrs[i].Sym}
		return true
	})
	res, err := Analyze(m.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("suite accepted a corrupted program")
	}
}
