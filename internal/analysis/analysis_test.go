package analysis

import (
	"context"
	"testing"

	"repro/internal/beebs"
	"repro/internal/cfg"
	"repro/internal/freq"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/mcc"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/transform"
)

// optimizedProgram runs the placement front half of the pipeline (compile,
// model, ILP, transform) for a benchmark, returning original, transformed
// and the placement — the exact artifacts core.Optimize verifies.
func optimizedProgram(t *testing.T, bench string, level mcc.OptLevel) (*ir.Program, *ir.Program, map[string]bool, float64) {
	t.Helper()
	b := beebs.Get(bench)
	if b == nil {
		t.Fatalf("unknown benchmark %q", bench)
	}
	prog, err := mcc.Compile(b.Source, level)
	if err != nil {
		t.Fatal(err)
	}
	graphs, err := cfg.BuildAll(prog)
	if err != nil {
		t.Fatal(err)
	}
	est := freq.Static(prog, graphs)
	ef, er := power.STM32F100().Coefficients()
	rspare := float64(layout.SpareRAM(prog, layout.DefaultConfig()))
	mdl, err := model.Build(prog, graphs, est, model.Params{
		EFlash: ef, ERAM: er, Rspare: rspare, Xlimit: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := placement.SolveILP(context.Background(), mdl, placement.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	opt := prog.Clone()
	if _, err := transform.Apply(opt, res.InRAM); err != nil {
		t.Fatal(err)
	}
	return prog, opt, res.InRAM, rspare
}

// TestSuiteCleanOnBEEBS is the acceptance gate: the full analysis suite
// reports zero diagnostics on every seed BEEBS benchmark after
// transform.Apply, at both paper levels.
func TestSuiteCleanOnBEEBS(t *testing.T) {
	for _, b := range beebs.All() {
		for _, level := range []mcc.OptLevel{mcc.O2, mcc.Os} {
			orig, opt, inRAM, rspare := optimizedProgram(t, b.Name, level)
			res, err := Analyze(&Context{
				Original: orig, Prog: opt, InRAM: inRAM,
				Config: layout.DefaultConfig(), Rspare: rspare,
			})
			if err != nil {
				t.Fatalf("%s %v: %v", b.Name, level, err)
			}
			if len(res.Diags) != 0 {
				t.Errorf("%s %v: expected a clean bill, got:\n%s", b.Name, level, res)
			}
			if len(res.Passes) != 5 {
				t.Fatalf("expected 5 passes, ran %v", res.Passes)
			}
		}
	}
}

// TestSuiteCleanSplitPlacement forces every other block of each
// non-library function into RAM. The ILP placements above tend to move
// small benchmarks wholesale, so this is the positive case that actually
// exercises the Figure 4 instrumentation shapes (ldr pc, it/ldr/ldr/bx,
// ldr+blx) end to end: the suite must still be clean on them.
func TestSuiteCleanSplitPlacement(t *testing.T) {
	for _, name := range []string{"crc32", "fdct", "dijkstra"} {
		prog, err := mcc.Compile(beebs.Get(name).Source, mcc.O2)
		if err != nil {
			t.Fatal(err)
		}
		inRAM := map[string]bool{}
		for _, f := range prog.Funcs {
			if f.Library {
				continue
			}
			for i, b := range f.Blocks {
				if i%2 == 0 {
					inRAM[b.Label] = true
				}
			}
		}
		opt := prog.Clone()
		if _, err := transform.Apply(opt, inRAM); err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(&Context{
			Original: prog, Prog: opt, InRAM: inRAM,
			Config: layout.DefaultConfig(),
		})
		if err != nil {
			t.Fatalf("%s split: %v", name, err)
		}
		if len(res.Diags) != 0 {
			t.Errorf("%s split: expected a clean bill, got:\n%s", name, res)
		}
	}
}

// TestSuiteCleanBaseline lints untransformed programs (no placement, no
// original to diff against): still clean.
func TestSuiteCleanBaseline(t *testing.T) {
	for _, name := range []string{"crc32", "fdct"} {
		prog, err := mcc.Compile(beebs.Get(name).Source, mcc.O2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(&Context{Prog: prog, Config: layout.DefaultConfig()})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Diags) != 0 {
			t.Errorf("%s baseline: %s", name, res)
		}
	}
}
