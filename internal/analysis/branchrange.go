package analysis

import (
	"fmt"

	"repro/internal/encode"
	"repro/internal/isa"
	"repro/internal/layout"
)

// BranchRangePass verifies the encoded binary at the bit level: every
// direct branch and literal load must fit the Thumb-2 encoding the layout
// engine chose for it, and decoding the bytes actually emitted must
// recover the intended target address. This is the check that would have
// caught a silently truncated displacement — the failure mode the paper's
// §5 transformation exists to avoid.
//
// Codes:
//
//	BR001  direct branch displacement does not fit its encoding
//	BR002  cbz/cbnz displacement outside the forward 0..126 range
//	BR003  literal load without a pool slot, or slot out of ldr reach
//	BR004  instruction fails to encode or its bytes fail to decode
//	BR005  decoded target address disagrees with the symbol address
//	BR006  literal pool word does not hold the referenced symbol's address
type BranchRangePass struct{}

// Name implements Pass.
func (BranchRangePass) Name() string { return "branch-range" }

// branchLimits returns the inclusive displacement bounds of a direct
// branch for the laid-out width (ARMv7-M T1–T4 encodings).
func branchLimits(op isa.Op, cond isa.Cond, wide bool) (lo, hi int64) {
	switch {
	case op == isa.BL:
		return -(1 << 24), 1<<24 - 2
	case cond == isa.AL && !wide:
		return -2048, 2046
	case cond == isa.AL:
		return -(1 << 24), 1<<24 - 2
	case !wide:
		return -256, 254
	default:
		return -(1 << 20), 1<<20 - 2
	}
}

// Run implements Pass.
func (p BranchRangePass) Run(ctx *Context) ([]Diagnostic, error) {
	img := ctx.Image
	var diags []Diagnostic
	report := func(code string, sev Severity, pl *layout.Placed, idx int, format string, args ...interface{}) {
		b := pl.Block
		diags = append(diags, Diagnostic{
			Pass: p.Name(), Code: code, Severity: sev,
			Func: b.Func.Name, Block: b.Label, Instr: idx, Addr: pl.InstrAddrs[idx],
			Message: fmt.Sprintf(format, args...),
		})
	}

	// Materialize the binary once so literal-pool words can be inspected.
	// Image re-encodes every instruction; an error here is re-discovered
	// per-instruction below with a precise location, so it is not fatal.
	flash, ramcode, imgErr := encode.Image(img)

	readWord := func(addr uint32) (uint32, bool) {
		if imgErr != nil {
			return 0, false
		}
		var buf []byte
		switch {
		case addr >= img.Config.FlashBase && int(addr-img.Config.FlashBase)+4 <= len(flash):
			buf = flash[addr-img.Config.FlashBase:]
		case addr >= img.Config.RAMBase && int(addr-img.Config.RAMBase)+4 <= len(ramcode):
			buf = ramcode[addr-img.Config.RAMBase:]
		default:
			return 0, false
		}
		return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24, true
	}

	for _, pl := range img.Blocks {
		b := pl.Block
		for i := range b.Instrs {
			in := &b.Instrs[i]
			addr := pl.InstrAddrs[i]
			wide := pl.InstrSize(i) == 4

			// Independent displacement arithmetic from the assigned
			// addresses, not trusting the encoder.
			switch in.Op {
			case isa.B, isa.BL:
				tgt, ok := img.Symbols[in.Sym]
				if !ok {
					report("BR005", Error, pl, i, "%s targets unknown symbol %q", in.Op, in.Sym)
					continue
				}
				delta := int64(tgt) - int64(addr+4)
				lo, hi := branchLimits(in.Op, in.Cond, wide)
				if delta < lo || delta > hi || delta%2 != 0 {
					report("BR001", Error, pl, i,
						"%s to %q spans %d bytes, outside its %s encoding range [%d, %d]",
						in.String(), in.Sym, delta, widthName(wide), lo, hi)
					continue
				}
			case isa.CBZ, isa.CBNZ:
				tgt, ok := img.Symbols[in.Sym]
				if !ok {
					report("BR005", Error, pl, i, "%s targets unknown symbol %q", in.Op, in.Sym)
					continue
				}
				delta := int64(tgt) - int64(addr+4)
				if delta < 0 || delta > 126 || delta%2 != 0 {
					report("BR002", Error, pl, i,
						"%s to %q spans %d bytes, outside the forward 0..126 range",
						in.String(), in.Sym, delta)
					continue
				}
			case isa.LDRLIT:
				slot := pl.LitAddrs[i]
				if slot == 0 {
					report("BR003", Error, pl, i, "%s has no literal-pool slot", in.String())
					continue
				}
				base := int64((addr + 4) &^ 3)
				off := int64(slot) - base
				if !wide && (off < 0 || off > 1020 || off%4 != 0) {
					report("BR003", Error, pl, i,
						"narrow %s pool slot %d bytes away, outside 0..1020", in.String(), off)
					continue
				}
				if wide && (off < -4095 || off > 4095) {
					report("BR003", Error, pl, i,
						"%s pool slot %d bytes away, outside the ±4095 wide range", in.String(), off)
					continue
				}
				// The pool word must hold the symbol's address.
				if in.Sym != "" {
					want, ok := img.Symbols[in.Sym]
					if !ok {
						report("BR005", Error, pl, i, "literal references unknown symbol %q", in.Sym)
						continue
					}
					if got, ok := readWord(slot); ok && got != want {
						report("BR006", Error, pl, i,
							"literal pool word at %#x holds %#x, want &%s = %#x",
							slot, got, in.Sym, want)
						continue
					}
				}
			}

			// Bit-level round trip: encode the instruction as laid out and
			// decode it back; a branch or literal must decode to exactly
			// the address the symbol table promises.
			bytes, err := encode.EncodeInstr(img, pl, i)
			if err != nil {
				report("BR004", Error, pl, i, "does not encode: %v", err)
				continue
			}
			d, err := encode.Decode(bytes, addr)
			if err != nil {
				report("BR004", Error, pl, i, "encoded bytes do not decode: %v", err)
				continue
			}
			switch in.Op {
			case isa.B, isa.BL, isa.CBZ, isa.CBNZ:
				if want := img.Symbols[in.Sym]; d.Target != want {
					report("BR005", Error, pl, i,
						"decoded target %#x, want %s = %#x (displacement truncated)",
						d.Target, in.Sym, want)
				}
			case isa.LDRLIT:
				if d.Target != pl.LitAddrs[i] {
					report("BR005", Error, pl, i,
						"decoded literal slot %#x, want %#x", d.Target, pl.LitAddrs[i])
				}
			}
		}
	}
	return diags, nil
}

func widthName(wide bool) string {
	if wide {
		return "32-bit"
	}
	return "16-bit"
}
