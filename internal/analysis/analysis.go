// Package analysis is the static verification layer of the toolchain: a
// multi-pass framework that checks the transformed, laid-out, encoded
// program against the invariants the paper's rewrite (Figure 4) depends
// on. ir.Verify checks the IR structurally; the passes here go further and
// verify the encoded binary (branch displacements, literal pools), the
// dataflow facts the instrumentation relied on (scratch-register
// liveness), control-flow preservation, the memory map, and the stack
// bound behind the Eq. 7 RAM budget.
//
// Every pipeline run (core.Optimize) executes the full suite after
// transform.Apply, so each BEEBS benchmark is verified on every run; the
// `flashram analyze` subcommand exposes the same suite as a lint driver.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/power"
)

// Severity grades a diagnostic.
type Severity int

// Severities. Errors make a program unacceptable; warnings flag facts a
// maintainer should know (e.g. the model's RAM budget was exceeded by
// layout padding) without invalidating the build.
const (
	Warning Severity = iota
	Error
)

// String returns "error" or "warning".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding of one pass, located as precisely as the pass
// can manage: function and block for IR-level findings, instruction index
// and address for binary-level ones.
type Diagnostic struct {
	Pass     string   // pass name, e.g. "branch-range"
	Code     string   // stable diagnostic code, e.g. "BR001"
	Severity Severity //
	Func     string   // function name ("" = program-wide)
	Block    string   // block label ("" = function- or program-wide)
	Instr    int      // instruction index within the block (-1 = whole block)
	Addr     uint32   // encoded address (0 = not address-specific)
	Message  string   //
}

// String renders the diagnostic in a grep-friendly single line.
func (d Diagnostic) String() string {
	loc := d.Func
	if d.Block != "" {
		loc += "/" + d.Block
	}
	if d.Instr >= 0 {
		loc += fmt.Sprintf("[%d]", d.Instr)
	}
	if loc == "" {
		loc = "<program>"
	}
	addr := ""
	if d.Addr != 0 {
		addr = fmt.Sprintf(" @%#x", d.Addr)
	}
	return fmt.Sprintf("%s: %s %s: %s%s: %s", d.Pass, d.Severity, d.Code, loc, addr, d.Message)
}

// Context is the shared input of every pass: the program before and after
// transformation, the placement, and the laid-out image. Passes read, never
// write.
type Context struct {
	// Original is the pre-transformation program; nil disables the checks
	// that compare against it (cfg-equivalence, scratch liveness).
	Original *ir.Program
	// Prog is the program under analysis (transformed, or the original
	// itself for a baseline lint).
	Prog *ir.Program
	// InRAM is the placement decision (nil = all-flash baseline).
	InRAM map[string]bool
	// Config is the memory map used for layout.
	Config layout.Config
	// Image is the laid-out Prog. Analyze builds it when nil.
	Image *layout.Image
	// Rspare is the model's Eq. 7 RAM budget in bytes (0 = not supplied);
	// exceeding it is reported as a warning, exceeding physical RAM as an
	// error.
	Rspare float64
	// Profile is the board power model used by cost-aware passes (the
	// energy-bounds pass); nil means the STM32F100 defaults.
	Profile *power.Profile
}

// Pass is one static check. Run returns its diagnostics; a non-nil error
// means the pass itself could not execute (infrastructure failure), which
// the driver converts into an Error diagnostic so it is never silently
// dropped.
type Pass interface {
	Name() string
	Run(ctx *Context) ([]Diagnostic, error)
}

// Result aggregates the diagnostics of a suite run.
type Result struct {
	Diags  []Diagnostic
	Passes []string // names of the passes that ran
}

// Errors returns the Error-severity diagnostics.
func (r *Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Warnings returns the Warning-severity diagnostics.
func (r *Result) Warnings() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity == Warning {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether the run produced no errors.
func (r *Result) OK() bool { return len(r.Errors()) == 0 }

// ByCode returns the diagnostics carrying the given code.
func (r *Result) ByCode(code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// Summary renders a one-line outcome.
func (r *Result) Summary() string {
	ne, nw := len(r.Errors()), len(r.Warnings())
	if ne == 0 && nw == 0 {
		return fmt.Sprintf("%d passes, no diagnostics", len(r.Passes))
	}
	var first string
	if ne > 0 {
		first = "; first: " + r.Errors()[0].String()
	} else {
		first = "; first: " + r.Warnings()[0].String()
	}
	return fmt.Sprintf("%d passes, %d errors, %d warnings%s", len(r.Passes), ne, nw, first)
}

// String renders every diagnostic, one per line.
func (r *Result) String() string {
	var sb strings.Builder
	for _, d := range r.Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DefaultPasses returns the standard suite in execution order.
func DefaultPasses() []Pass {
	return []Pass{
		BranchRangePass{},
		InstrumentationPass{},
		CFGEquivalencePass{},
		MemoryMapPass{},
		StackDepthPass{},
	}
}

// Run executes the given passes over the context and collects their
// diagnostics, sorted by (pass order, function, block, instruction).
func Run(ctx *Context, passes ...Pass) (*Result, error) {
	if ctx.Prog == nil {
		return nil, fmt.Errorf("analysis: no program to analyze")
	}
	if ctx.Config == (layout.Config{}) {
		ctx.Config = layout.DefaultConfig()
	}
	if ctx.Image == nil {
		img, err := layout.New(ctx.Prog, ctx.Config, ctx.InRAM)
		if err != nil {
			return nil, fmt.Errorf("analysis: layout: %w", err)
		}
		ctx.Image = img
	}
	res := &Result{}
	order := map[string]int{}
	for i, p := range passes {
		order[p.Name()] = i
		res.Passes = append(res.Passes, p.Name())
		diags, err := p.Run(ctx)
		if err != nil {
			diags = append(diags, Diagnostic{
				Pass: p.Name(), Code: "XX000", Severity: Error, Instr: -1,
				Message: fmt.Sprintf("pass failed to run: %v", err),
			})
		}
		res.Diags = append(res.Diags, diags...)
	}
	sort.SliceStable(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if order[a.Pass] != order[b.Pass] {
			return order[a.Pass] < order[b.Pass]
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Instr < b.Instr
	})
	return res, nil
}

// Analyze runs the default suite. original may equal prog (or be nil) for
// a baseline lint of an untransformed program.
func Analyze(ctx *Context) (*Result, error) {
	return Run(ctx, DefaultPasses()...)
}

// memOf reports whether a label is placed in RAM under the context's
// placement.
func (ctx *Context) memOf(label string) bool { return ctx.InRAM[label] }

// memName names a memory for messages.
func memName(inRAM bool) string {
	if inRAM {
		return "RAM"
	}
	return "flash"
}
