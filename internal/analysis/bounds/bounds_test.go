package bounds

import (
	"context"
	"testing"

	"repro/internal/beebs"
	"repro/internal/cfg"
	"repro/internal/freq"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/mcc"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/transform"
)

func compileBench(t *testing.T, bench string, level mcc.OptLevel) (*ir.Program, map[string]*cfg.Graph) {
	t.Helper()
	b := beebs.Get(bench)
	if b == nil {
		t.Fatalf("unknown benchmark %q", bench)
	}
	prog, err := mcc.Compile(b.Source, level)
	if err != nil {
		t.Fatal(err)
	}
	graphs, err := cfg.BuildAll(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, graphs
}

// optimizeBench runs the placement front half (model, ILP, transform) and
// returns the transformed clone and its placement.
func optimizeBench(t *testing.T, prog *ir.Program, graphs map[string]*cfg.Graph) (*ir.Program, map[string]bool) {
	t.Helper()
	est := freq.Static(prog, graphs)
	ef, er := power.STM32F100().Coefficients()
	rspare := float64(layout.SpareRAM(prog, layout.DefaultConfig()))
	mdl, err := model.Build(prog, graphs, est, model.Params{
		EFlash: ef, ERAM: er, Rspare: rspare, Xlimit: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := placement.SolveILP(context.Background(), mdl, placement.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	opt := prog.Clone()
	if _, err := transform.Apply(opt, res.InRAM); err != nil {
		t.Fatal(err)
	}
	return opt, res.InRAM
}

func simulate(t *testing.T, img *layout.Image) *sim.Stats {
	t.Helper()
	m := sim.New(img, power.STM32F100())
	st, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	return st
}

// TestTripInference pins the induction-variable pattern matcher to the
// compiler's two counted-loop shapes on real benchmark code: the
// register-resident counter (crc32) and the stack-spilled counter the Os
// register allocator produces (fdct).
func TestTripInference(t *testing.T) {
	cases := []struct {
		bench   string
		level   mcc.OptLevel
		fn      string
		trips   map[string]int64 // header label → exact trips
		atLeast int              // minimum inferred loops in fn
	}{
		{bench: "crc32", level: mcc.O2, fn: "crc32_buf",
			trips: map[string]int64{}, atLeast: 2},
		{bench: "fdct", level: mcc.Os, fn: "fdct_rows",
			trips: map[string]int64{}, atLeast: 1},
		{bench: "int_matmult", level: mcc.O2, fn: "main", atLeast: 1},
	}
	for _, tc := range cases {
		_, graphs := compileBench(t, tc.bench, tc.level)
		g := graphs[tc.fn]
		if g == nil {
			t.Fatalf("%s: no CFG for %s", tc.bench, tc.fn)
		}
		inferred := 0
		for _, l := range g.Loops() {
			tb := inferTrips(g, l)
			t.Logf("%s %v %s: loop %s (depth %d): min=%d max=%d bounded=%v %s",
				tc.bench, tc.level, tc.fn, l.Header.Label, l.Depth, tb.Min, tb.Max, tb.Bounded, tb.Reason)
			if tb.Bounded {
				inferred++
			}
			if want, ok := tc.trips[l.Header.Label]; ok && (!tb.Bounded || tb.Max != want) {
				t.Errorf("%s: loop %s: want %d trips, got %+v", tc.bench, l.Header.Label, want, tb)
			}
		}
		if inferred < tc.atLeast {
			t.Errorf("%s %v %s: inferred %d loops, want >= %d", tc.bench, tc.level, tc.fn, inferred, tc.atLeast)
		}
	}
}

// TestBracketInvariantOnBEEBS is the acceptance gate for the whole
// analysis: on every BEEBS benchmark × optimization level, for both the
// all-in-flash baseline image and the ILP-placed transformed image,
//
//	static lower ≤ simulated ≤ static upper
//
// must hold for cycles and energy, and at least 15 of the 20 cells must
// produce a finite (non-⊤) upper bound.
func TestBracketInvariantOnBEEBS(t *testing.T) {
	cells, finite := 0, 0
	for _, b := range beebs.All() {
		for _, level := range []mcc.OptLevel{mcc.O2, mcc.Os} {
			prog, graphs := compileBench(t, b.Name, level)
			cells++

			baseImg, err := layout.New(prog, layout.DefaultConfig(), nil)
			if err != nil {
				t.Fatal(err)
			}
			baseRes, err := Compute(prog, graphs, baseImg, power.STM32F100())
			if err != nil {
				t.Fatalf("%s %v baseline: %v", b.Name, level, err)
			}
			baseStats := simulate(t, baseImg)
			if err := baseRes.Check(baseStats.Cycles, baseStats.EnergyNJ); err != nil {
				t.Errorf("%s %v baseline: %v", b.Name, level, err)
			}

			opt, inRAM := optimizeBench(t, prog, graphs)
			optImg, err := layout.New(opt, layout.DefaultConfig(), inRAM)
			if err != nil {
				t.Fatal(err)
			}
			optRes, err := Compute(prog, graphs, optImg, power.STM32F100())
			if err != nil {
				t.Fatalf("%s %v optimized: %v", b.Name, level, err)
			}
			optStats := simulate(t, optImg)
			if err := optRes.Check(optStats.Cycles, optStats.EnergyNJ); err != nil {
				t.Errorf("%s %v optimized: %v", b.Name, level, err)
			}

			if baseRes.Whole.Bounded && optRes.Whole.Bounded {
				finite++
			}
			tight := func(r *Result, cy uint64) float64 {
				if !r.Whole.Bounded || cy == 0 {
					return 0
				}
				return r.Whole.HiCycles / float64(cy)
			}
			t.Logf("%s %v: loops %d/%d inferred; baseline [%.0f, %.0f] sim %d (hi/sim %.2f); optimized [%.0f, %.0f] sim %d (hi/sim %.2f); reason %q",
				b.Name, level,
				baseRes.LoopsInferred, baseRes.LoopsTotal,
				baseRes.Whole.LoCycles, baseRes.Whole.HiCycles, baseStats.Cycles, tight(baseRes, baseStats.Cycles),
				optRes.Whole.LoCycles, optRes.Whole.HiCycles, optStats.Cycles, tight(optRes, optStats.Cycles),
				baseRes.Whole.Reason)
		}
	}
	if finite < 15 {
		t.Errorf("finite brackets on %d/%d cells, want >= 15", finite, cells)
	}
	t.Logf("finite brackets: %d/%d cells", finite, cells)
}

// TestIntervalAlgebra pins the lattice operations, in particular that ⊤
// never produces NaN through scaling by zero trips.
func TestIntervalAlgebra(t *testing.T) {
	a := Exact(10, 5)
	b := Unbounded("loop")
	if s := a.Plus(b); s.Bounded || s.LoCycles != 10 || s.Reason != "loop" {
		t.Errorf("Plus with unbounded: %+v", s)
	}
	if u := a.Union(b); u.Bounded || u.LoCycles != 0 {
		t.Errorf("Union with unbounded: %+v", u)
	}
	z := a.scaled(TripBound{Min: 0, Max: 0, Bounded: true})
	if !z.Bounded || z.HiCycles != 0 || z.LoCycles != 0 {
		t.Errorf("zero-trip scale: %+v", z)
	}
	top := a.scaled(TripBound{Min: 2, Reason: "top"})
	if top.Bounded || top.LoCycles != 20 || top.Reason != "top" {
		t.Errorf("unbounded scale: %+v", top)
	}
	if top.HiCycles != top.HiCycles && false {
		t.Error("NaN leaked")
	}
}

func TestTripCount(t *testing.T) {
	cases := []struct {
		i0, bound, step int64
		cond            isa.Cond
		n               int64
		ok              bool
	}{
		{0, 256, 1, isa.GE, 256, true}, // for (i=0; i<256; i++)
		{0, 8, 1, isa.GE, 8, true},     // for (i=0; i<8; i++)
		{0, 10, 3, isa.GE, 4, true},    // 0,3,6,9 → 4 trips
		{0, 10, 3, isa.GT, 4, true},    // exit iv>10: 0,3,6,9 run; 12 exits
		{5, 5, 1, isa.GE, 0, true},     // exit immediately
		{10, 0, -1, isa.LE, 10, true},  // for (i=10; i>0; i--)
		{10, 0, -2, isa.LT, 6, true},   // run while iv ≥ 0: 10,8,…,0
		{0, 8, 2, isa.EQ, 4, true},     // exact hit
		{0, 7, 2, isa.EQ, 0, false},    // never hits → ⊤
		{0, 256, -1, isa.GE, 0, false}, // wrong direction → ⊤
		{0, 256, 0, isa.GE, 0, false},  // no advance → ⊤
		{0, 256, 1, isa.CS, 256, true}, // unsigned up-count
		{12, 0, -4, isa.LS, 3, true},   // unsigned exact down-count
		{12, 0, -5, isa.LS, 0, false},  // would wrap past zero → ⊤
	}
	for _, tc := range cases {
		n, ok := tripCount(tc.i0, tc.bound, tc.step, tc.cond)
		if ok != tc.ok || (ok && n != tc.n) {
			t.Errorf("tripCount(%d,%d,%d,%v) = %d,%v want %d,%v",
				tc.i0, tc.bound, tc.step, tc.cond, n, ok, tc.n, tc.ok)
		}
	}
}
