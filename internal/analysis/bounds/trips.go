package bounds

import (
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/isa"
)

// Loop trip-count inference: recover the constant iteration count of the
// compiler's counted-loop shape,
//
//	preheader:  iv ← i0                  (register or stack slot)
//	header:     …; cmp iv, bound; b<cc> exit
//	update:     iv ← iv + s              (the only writer, dominates
//	                                      every latch, at loop depth)
//
// via a small block-local abstract evaluator whose value domain is
// {const c, loc+c, unknown}: loc names either a register's value at block
// entry or an sp-relative stack slot (the compiler spills induction
// variables under register pressure). Everything outside the shape is an
// explicit ⊤ with a reason — the composition then keeps the lower bound
// finite and widens only the upper.

// inferTrips brackets how many body iterations one entry to the loop
// executes.
func inferTrips(g *cfg.Graph, l *cfg.Loop) TripBound {
	top := func(reason string) TripBound { return TripBound{Reason: reason} }
	f := g.Func
	header := l.Header

	// The exit test: a conditional branch terminating the header with
	// exactly one edge leaving the loop.
	t := header.Terminator()
	if t == nil || t.Op != isa.B || t.Cond == isa.AL {
		return top("exit not a conditional branch at header " + header.Label)
	}
	taken := blockByLabel(f, t.Sym)
	if taken == nil || header.Index+1 >= len(f.Blocks) {
		return top("malformed header branch in " + header.Label)
	}
	fallthru := f.Blocks[header.Index+1]
	exitCond := t.Cond
	switch {
	case !l.Blocks[taken] && l.Blocks[fallthru]:
		// exit on the taken edge: cond as written
	case l.Blocks[taken] && !l.Blocks[fallthru]:
		exitCond = exitCond.Invert()
	default:
		return top("header " + header.Label + " does not test the exit")
	}

	// Evaluate the header up to its compare to name the induction
	// variable location and the constant bound.
	cmpIdx := -1
	for i := len(header.Instrs) - 1; i >= 0; i-- {
		if header.Instrs[i].Op == isa.CMP {
			cmpIdx = i
			break
		}
	}
	if cmpIdx < 0 {
		return top("no compare in header " + header.Label)
	}
	st := newEvalState()
	st.run(header.Instrs[:cmpIdx])
	cmp := &header.Instrs[cmpIdx]
	va := st.reg(cmp.Rn)
	vb := st.operand2(cmp)

	var iv loc
	var bound int64
	switch {
	case va.kind == vLoc && vb.kind == vConst:
		iv, bound = va.loc, vb.c-va.c // iv+k REL B  ⇔  iv REL B−k
	case va.kind == vConst && vb.kind == vLoc:
		iv, bound = vb.loc, va.c-vb.c
		exitCond = mirror(exitCond)
	default:
		return top("compare operands not (induction, constant) in " + header.Label)
	}

	// Stack-slot variables need a stable frame: any SP adjustment inside
	// the loop would re-base the slot.
	if iv.slot {
		for b := range l.Blocks {
			if writesSP(b) {
				return top("frame moves inside loop " + header.Label)
			}
		}
	}

	// Initial value from the preheader(s).
	i0 := int64(0)
	haveInit := false
	for _, p := range g.Preds(header) {
		if l.Blocks[p] {
			continue
		}
		ps := newEvalState()
		ps.run(p.Instrs)
		v := ps.loc(iv)
		if v.kind != vConst {
			return top("init of " + header.Label + " not constant")
		}
		if haveInit && v.c != i0 {
			return top("conflicting inits for " + header.Label)
		}
		i0, haveInit = v.c, true
	}
	if !haveInit {
		return top("no preheader for " + header.Label)
	}

	// The step: exactly one block in the loop may write the variable; it
	// must sit at the loop's own depth (not inside an inner loop, or the
	// per-iteration advance is not constant) and dominate every latch (or
	// some iterations skip it).
	var update *ir.Block
	for b := range l.Blocks {
		if writesLoc(b, iv) {
			if update != nil {
				return top("multiple writers of the induction variable of " + header.Label)
			}
			update = b
		}
	}
	if update == nil {
		return top("no writer of the induction variable of " + header.Label)
	}
	if g.LoopDepth(update) != l.Depth {
		return top("induction update of " + header.Label + " inside an inner loop")
	}
	for _, p := range g.Preds(header) {
		if l.Blocks[p] && !g.Dominates(update, p) {
			return top("induction update of " + header.Label + " does not dominate a latch")
		}
	}
	us := newEvalState()
	us.run(update.Instrs)
	uv := us.loc(iv)
	if uv.kind != vLoc || uv.loc != iv || uv.c == 0 {
		return top("step of " + header.Label + " not a constant advance")
	}
	step := uv.c

	n, ok := tripCount(i0, bound, step, exitCond)
	if !ok {
		return top("exit condition of " + header.Label + " not resolvable")
	}

	// Extra exit edges (breaks) can leave early: the count stays a valid
	// maximum; the minimum collapses to zero.
	minTrips := n
	for b := range l.Blocks {
		if b == header {
			continue
		}
		for _, s := range g.Succs(b) {
			if !l.Blocks[s] {
				minTrips = 0
			}
		}
	}
	return TripBound{Min: minTrips, Max: n, Bounded: true}
}

// tripCount solves for the number of body iterations of a counted loop:
// starting at i0, advancing by step per iteration, exiting the first time
// `iv exitCond bound` holds at the top. Conditions are signed compares;
// the unsigned ones map onto them where the walk provably stays in
// non-negative int32 range.
func tripCount(i0, bound, step int64, exitCond isa.Cond) (int64, bool) {
	const limit = int64(1) << 31
	if i0 < -limit || i0 > limit || bound < -limit || bound > limit {
		return 0, false
	}
	switch exitCond {
	case isa.CS, isa.HI: // unsigned ≥ / > exits an up-counting walk
		if i0 < 0 || bound < 0 || step <= 0 {
			return 0, false
		}
		if exitCond == isa.CS {
			exitCond = isa.GE
		} else {
			exitCond = isa.GT
		}
	case isa.LS, isa.CC: // unsigned ≤ / < needs an exact down-count hit
		if i0 < bound || bound < 0 || step >= 0 || (i0-bound)%(-step) != 0 {
			return 0, false
		}
		if exitCond == isa.LS {
			exitCond = isa.LE
		} else {
			exitCond = isa.LT
		}
	}
	ceilDiv := func(a, b int64) int64 { return (a + b - 1) / b }
	var n int64
	switch exitCond {
	case isa.GE: // run while iv < bound
		if i0 >= bound {
			return 0, true
		}
		if step <= 0 {
			return 0, false
		}
		n = ceilDiv(bound-i0, step)
	case isa.GT: // run while iv ≤ bound
		if i0 > bound {
			return 0, true
		}
		if step <= 0 {
			return 0, false
		}
		n = (bound-i0)/step + 1
	case isa.LE: // run while iv > bound (down-counting)
		if i0 <= bound {
			return 0, true
		}
		if step >= 0 {
			return 0, false
		}
		n = ceilDiv(i0-bound, -step)
	case isa.LT: // run while iv ≥ bound
		if i0 < bound {
			return 0, true
		}
		if step >= 0 {
			return 0, false
		}
		n = (i0-bound)/(-step) + 1
	case isa.EQ: // run while iv ≠ bound: must hit exactly
		d := bound - i0
		if d == 0 {
			return 0, true
		}
		if step == 0 || d%step != 0 || d/step < 0 {
			return 0, false
		}
		n = d / step
	case isa.NE: // run while iv == bound
		if i0 != bound {
			return 0, true
		}
		if step == 0 {
			return 0, false
		}
		return 1, true
	default:
		return 0, false
	}
	if n < 0 || n > limit {
		return 0, false
	}
	return n, true
}

// mirror swaps the operand order of a comparison: a REL b ⇔ b mirror(REL) a.
func mirror(c isa.Cond) isa.Cond {
	switch c {
	case isa.GE:
		return isa.LE
	case isa.LE:
		return isa.GE
	case isa.GT:
		return isa.LT
	case isa.LT:
		return isa.GT
	case isa.CS:
		return isa.LS
	case isa.LS:
		return isa.CS
	case isa.HI:
		return isa.CC
	case isa.CC:
		return isa.HI
	default: // EQ, NE are symmetric; anything else stays unresolvable
		return c
	}
}

func blockByLabel(f *ir.Function, label string) *ir.Block {
	for _, b := range f.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

func writesSP(b *ir.Block) bool {
	for i := range b.Instrs {
		for _, d := range b.Instrs[i].Defs() {
			if d == isa.SP {
				return true
			}
		}
	}
	return false
}

// writesLoc reports whether the block assigns the location: any def of
// the register, or a store to the sp-relative slot. Stack slots are
// compiler temporaries that are never address-taken, so only sp-based
// stores can reach them.
func writesLoc(b *ir.Block, l loc) bool {
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if l.slot {
			if (in.Op == isa.STR || in.Op == isa.STRB || in.Op == isa.STRH) &&
				in.Mode == isa.AddrOffset && in.Rn == isa.SP && int32(in.Imm) == l.off {
				return true
			}
			continue
		}
		for _, d := range in.Defs() {
			if d == l.reg {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------
// The abstract evaluator.

type valKind uint8

const (
	vUnknown valKind = iota
	vConst           // the constant c
	vLoc             // (value of loc at block entry) + c
)

// loc names a storage location: a register, or an sp-relative stack slot.
type loc struct {
	reg  isa.Reg
	slot bool
	off  int32
}

type val struct {
	kind valKind
	c    int64
	loc  loc
}

type evalState struct {
	regs  [isa.NumRegs]val
	slots map[int32]val
}

func newEvalState() *evalState {
	s := &evalState{slots: make(map[int32]val)}
	for r := range s.regs {
		s.regs[r] = val{kind: vLoc, loc: loc{reg: isa.Reg(r)}}
	}
	return s
}

func (s *evalState) reg(r isa.Reg) val {
	if r == isa.NoReg || int(r) >= len(s.regs) {
		return val{}
	}
	return s.regs[r]
}

func (s *evalState) loc(l loc) val {
	if l.slot {
		if v, ok := s.slots[l.off]; ok {
			return v
		}
		return val{kind: vLoc, loc: l}
	}
	return s.reg(l.reg)
}

func (s *evalState) setReg(r isa.Reg, v val) {
	if r != isa.NoReg && int(r) < len(s.regs) {
		s.regs[r] = v
	}
}

// operand2 evaluates an instruction's flexible second operand.
func (s *evalState) operand2(in *isa.Instr) val {
	if in.HasImm {
		return val{kind: vConst, c: int64(in.Imm)}
	}
	if in.Shift != 0 {
		return val{}
	}
	return s.reg(in.Rm)
}

func add(a val, k int64) val {
	switch a.kind {
	case vConst:
		return val{kind: vConst, c: a.c + k}
	case vLoc:
		return val{kind: vLoc, c: a.c + k, loc: a.loc}
	}
	return val{}
}

// run interprets the instruction sequence abstractly. Unknown effects
// clobber conservatively; an SP adjustment re-bases the frame, so all
// slot knowledge is dropped (later stores track the new frame, which is
// the one the block hands its successors).
func (s *evalState) run(instrs []isa.Instr) {
	for i := range instrs {
		in := &instrs[i]
		switch in.Op {
		case isa.MOV:
			if in.Cond == isa.AL {
				s.setReg(in.Rd, s.operand2(in))
				continue
			}
		case isa.ADD, isa.SUB:
			if in.Cond == isa.AL && in.Rd != isa.SP && in.Rn != isa.SP {
				a := s.reg(in.Rn)
				b := s.operand2(in)
				neg := int64(1)
				if in.Op == isa.SUB {
					neg = -1
				}
				switch {
				case b.kind == vConst:
					s.setReg(in.Rd, add(a, neg*b.c))
					continue
				case a.kind == vConst && in.Op == isa.ADD:
					s.setReg(in.Rd, add(b, a.c))
					continue
				}
			}
		case isa.LDRLIT:
			if in.Cond == isa.AL && in.Sym == "" {
				s.setReg(in.Rd, val{kind: vConst, c: int64(in.Imm)})
				continue
			}
		case isa.LDR:
			if in.Cond == isa.AL && in.Mode == isa.AddrOffset && in.Rn == isa.SP {
				s.setReg(in.Rd, s.loc(loc{slot: true, off: int32(in.Imm)}))
				continue
			}
		case isa.STR, isa.STRB, isa.STRH:
			if in.Mode == isa.AddrOffset && in.Rn == isa.SP {
				if in.Op == isa.STR && in.Cond == isa.AL {
					s.slots[int32(in.Imm)] = s.reg(in.Rd)
				} else {
					// Partial or predicated store: the slot's word value
					// is no longer known.
					s.slots[int32(in.Imm)] = val{}
				}
				continue
			}
		}
		for _, d := range in.Defs() {
			if d == isa.SP {
				s.slots = make(map[int32]val)
			}
			s.setReg(d, val{})
		}
	}
}
