package bounds

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/power"
)

// Pass is the energy-bounds lint: it runs the whole-program bracket
// analysis over the context's image and reports where — and why — the
// static bounds lose precision.
//
//	EB001 (warning)  a natural loop whose trip count could not be inferred
//	EB002 (warning)  the whole-program upper bound is unbounded (⊤)
//	EB003 (error)    a computed bracket is inverted (lower > upper) —
//	                 an internal inconsistency that must never happen
//
// The pass is NOT part of analysis.DefaultPasses(): the default suite is
// the correctness gate every pipeline run executes, while EB diagnostics
// grade analysis precision. Register it explicitly, e.g.
// analysis.Run(ctx, append(analysis.DefaultPasses(), bounds.Pass{})...).
type Pass struct{}

// Name implements analysis.Pass.
func (Pass) Name() string { return "energy-bounds" }

// Run implements analysis.Pass. Structure comes from ctx.Original (the
// pristine program — a transformed program's CFG has no loops to bound);
// for a baseline lint with no Original, ctx.Prog itself is the pristine
// structure. Costs come from ctx.Image.
func (Pass) Run(ctx *analysis.Context) ([]analysis.Diagnostic, error) {
	structure := ctx.Original
	if structure == nil {
		structure = ctx.Prog
	}
	graphs, err := cfg.BuildAll(structure)
	if err != nil {
		return nil, err
	}
	prof := ctx.Profile
	if prof == nil {
		prof = power.STM32F100()
	}
	res, err := Compute(structure, graphs, ctx.Image, prof)
	if err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	for _, name := range sortedFuncs(res) {
		fb := res.Funcs[name]
		for _, lb := range fb.Loops {
			if lb.Trips.Bounded {
				continue
			}
			diags = append(diags, analysis.Diagnostic{
				Pass: "energy-bounds", Code: "EB001", Severity: analysis.Warning,
				Func: name, Block: lb.Header, Instr: -1,
				Message: fmt.Sprintf("loop trip count not inferred (depth %d): %s", lb.Depth, lb.Trips.Reason),
			})
		}
		if fb.LoCycles > fb.HiCycles && fb.Bounded {
			diags = append(diags, analysis.Diagnostic{
				Pass: "energy-bounds", Code: "EB003", Severity: analysis.Error,
				Func: name, Instr: -1,
				Message: fmt.Sprintf("inverted bracket: lower %.0f > upper %.0f cycles", fb.LoCycles, fb.HiCycles),
			})
		}
	}
	if !res.Whole.Bounded {
		diags = append(diags, analysis.Diagnostic{
			Pass: "energy-bounds", Code: "EB002", Severity: analysis.Warning,
			Instr: -1,
			Message: fmt.Sprintf("whole-program upper bound is unbounded: %s (loops inferred: %d/%d)",
				res.Whole.Reason, res.LoopsInferred, res.LoopsTotal),
		})
	} else if res.Whole.LoCycles > res.Whole.HiCycles ||
		res.Whole.LoEnergyNJ > res.Whole.HiEnergyNJ {
		diags = append(diags, analysis.Diagnostic{
			Pass: "energy-bounds", Code: "EB003", Severity: analysis.Error,
			Instr: -1,
			Message: fmt.Sprintf("inverted whole-program bracket: cycles [%.0f, %.0f], energy [%.0f, %.0f] nJ",
				res.Whole.LoCycles, res.Whole.HiCycles, res.Whole.LoEnergyNJ, res.Whole.HiEnergyNJ),
		})
	}
	return diags, nil
}

// sortedFuncs lists the analyzed (entry-reachable) functions in stable
// name order, so diagnostics do not depend on map iteration.
func sortedFuncs(res *Result) []string {
	names := make([]string, 0, len(res.Funcs))
	for name := range res.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
