// Package bounds computes guaranteed static brackets on a placed image's
// execution: for every reachable function and for the whole program, a
// lower and an upper bound on both cycles and energy, without running the
// simulator. The brackets are admissible in the WCET sense — for any
// terminating execution of the image,
//
//	lower ≤ simulated ≤ upper
//
// holds for cycles and for energy, which is what lets a sweep skip
// simulating a placement whose lower bound already exceeds the incumbent's
// simulated energy (see evaluation's pruning and DESIGN.md §6h).
//
// The analysis is a three-layer abstract interpretation:
//
//  1. Loop-bound inference (trips.go): constant trip counts recovered from
//     the compiler's induction-variable shapes on the pristine program's
//     natural-loop forest, with an explicit ⊤ (unbounded) when the
//     pattern match fails. ⊤ only widens the upper bound; lower bounds
//     stay finite (a ⊤ loop may run zero body iterations).
//  2. Per-block cost intervals (cost.go): every placed instruction charged
//     exactly as the simulator charges it — same cycle constants, same
//     power tables, same contention-stall and literal-residence rules —
//     with min/max taken over the outcomes static analysis cannot decide
//     (branch direction, data residence of unresolved loads).
//  3. Composition (this file): loops are collapsed innermost-first into
//     super-nodes (trips × iteration-path + exit-path), the remaining DAG
//     is bracketed by shortest/longest node-weighted paths, and functions
//     compose bottom-up over the call graph with recursion mapping to ⊤
//     exactly like stackdepth's walk.
//
// Structure versus cost: control flow (CFG, loops, calls) is read from the
// pristine pre-transform program, whose branches the pattern matcher
// understands, while instruction costs are read from the placed image's
// blocks of the same label — which include the Figure 4 instrumentation
// the transformer inserted. The analysis suite's CFG-equivalence pass
// (CF001–CF004) is what guarantees this label-for-label correspondence.
package bounds

import (
	"fmt"
	"math"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/power"
)

// Interval brackets one execution segment: inclusive lower and upper
// bounds on cycles and energy. The upper bounds are finite only when
// Bounded is set; Lo is always finite (zero in the worst case).
type Interval struct {
	LoCycles   float64
	HiCycles   float64
	LoEnergyNJ float64
	HiEnergyNJ float64
	// Bounded reports that the upper bounds are finite. When clear,
	// HiCycles/HiEnergyNJ are meaningless and Reason names the first
	// cause (an uninferred loop, recursion, an indirect call).
	Bounded bool
	Reason  string
}

// Exact returns a degenerate interval: both bounds at the given cost.
func Exact(cycles, energyNJ float64) Interval {
	return Interval{
		LoCycles: cycles, HiCycles: cycles,
		LoEnergyNJ: energyNJ, HiEnergyNJ: energyNJ,
		Bounded: true,
	}
}

// Unbounded returns the [0, ⊤) interval with the given reason.
func Unbounded(reason string) Interval {
	return Interval{Reason: reason}
}

// Plus returns the sequential composition a then b.
func (a Interval) Plus(b Interval) Interval {
	out := Interval{
		LoCycles:   a.LoCycles + b.LoCycles,
		LoEnergyNJ: a.LoEnergyNJ + b.LoEnergyNJ,
		Bounded:    a.Bounded && b.Bounded,
		Reason:     a.Reason,
	}
	if out.Bounded {
		out.HiCycles = a.HiCycles + b.HiCycles
		out.HiEnergyNJ = a.HiEnergyNJ + b.HiEnergyNJ
	} else if out.Reason == "" {
		out.Reason = b.Reason
	}
	return out
}

// Union returns the join of two alternatives: the wider bracket.
func (a Interval) Union(b Interval) Interval {
	out := Interval{
		LoCycles:   math.Min(a.LoCycles, b.LoCycles),
		LoEnergyNJ: math.Min(a.LoEnergyNJ, b.LoEnergyNJ),
		Bounded:    a.Bounded && b.Bounded,
		Reason:     a.Reason,
	}
	if out.Bounded {
		out.HiCycles = math.Max(a.HiCycles, b.HiCycles)
		out.HiEnergyNJ = math.Max(a.HiEnergyNJ, b.HiEnergyNJ)
	} else if out.Reason == "" {
		out.Reason = b.Reason
	}
	return out
}

// scaled returns the interval repeated between tmin and tmax times; an
// unbounded trip count discards the upper bound.
func (a Interval) scaled(t TripBound) Interval {
	out := Interval{
		LoCycles:   float64(t.Min) * a.LoCycles,
		LoEnergyNJ: float64(t.Min) * a.LoEnergyNJ,
		Bounded:    a.Bounded && t.Bounded,
		Reason:     a.Reason,
	}
	if out.Bounded {
		out.HiCycles = float64(t.Max) * a.HiCycles
		out.HiEnergyNJ = float64(t.Max) * a.HiEnergyNJ
	} else if out.Reason == "" {
		out.Reason = t.Reason
	}
	return out
}

// TripBound brackets how many times a loop's body executes per entry to
// the loop. Bounded is clear for ⊤ (inference failed); Min is always
// valid (zero in the worst case).
type TripBound struct {
	Min, Max int64
	Bounded  bool
	// Reason explains a ⊤ ("exit not at header", "init not constant", …)
	// or, for exact bounds, is empty.
	Reason string
}

// LoopBounds is the inference outcome for one natural loop.
type LoopBounds struct {
	Header string // header block label
	Depth  int    // 1 = outermost
	Trips  TripBound
}

// FuncBounds is the bracket for one function: the cost of a call to it,
// from entry to return, including everything it calls.
type FuncBounds struct {
	Name string
	Interval
	Loops []LoopBounds // the function's loop forest, outermost first
}

// Result is the whole-program analysis outcome. Funcs contains only the
// functions reachable from the entry point — an uninferable loop in dead
// code cannot widen the program bracket.
type Result struct {
	Entry string
	Whole Interval
	Funcs map[string]*FuncBounds
	// LoopsTotal and LoopsInferred count the reachable loop forest; the
	// difference is how many loops contributed a ⊤.
	LoopsTotal    int
	LoopsInferred int
}

// Check validates the bracket invariant against one simulated execution
// of the same image: lower ≤ simulated ≤ upper for both cycles and
// energy. A tiny relative tolerance absorbs the different float64
// summation orders of the analysis and the simulator.
func (r *Result) Check(cycles uint64, energyNJ float64) error {
	const tol = 1e-9
	w := r.Whole
	cy := float64(cycles)
	if cy < w.LoCycles*(1-tol) {
		return fmt.Errorf("bounds: simulated cycles %d below static lower bound %.0f", cycles, w.LoCycles)
	}
	if energyNJ < w.LoEnergyNJ*(1-tol) {
		return fmt.Errorf("bounds: simulated energy %.3f nJ below static lower bound %.3f nJ", energyNJ, w.LoEnergyNJ)
	}
	if w.Bounded {
		if cy > w.HiCycles*(1+tol) {
			return fmt.Errorf("bounds: simulated cycles %d above static upper bound %.0f", cycles, w.HiCycles)
		}
		if energyNJ > w.HiEnergyNJ*(1+tol) {
			return fmt.Errorf("bounds: simulated energy %.3f nJ above static upper bound %.3f nJ", energyNJ, w.HiEnergyNJ)
		}
	}
	return nil
}

// Compute brackets the placed image. structure is the pristine program
// the image's code was transformed from (the image's own program when no
// transformation ran); graphs are its CFGs (cfg.BuildAll(structure)).
// Per-block costs come from img's same-label blocks, so the brackets
// include the instrumentation overhead of a transformed image.
func Compute(structure *ir.Program, graphs map[string]*cfg.Graph, img *layout.Image, prof *power.Profile) (*Result, error) {
	if prof == nil {
		prof = power.STM32F100()
	}
	c := &computer{
		prog:   structure,
		graphs: graphs,
		img:    img,
		prof:   prof,
		funcs:  make(map[string]*FuncBounds),
		state:  make(map[string]walkState),
	}
	entry := structure.Entry
	if entry == "" {
		entry = "main"
	}
	if structure.Func(entry) == nil {
		return nil, fmt.Errorf("bounds: no entry function %q", entry)
	}
	whole, err := c.function(entry)
	if err != nil {
		return nil, err
	}
	res := &Result{Entry: entry, Whole: whole, Funcs: c.funcs}
	for _, fb := range c.funcs {
		for _, lb := range fb.Loops {
			res.LoopsTotal++
			if lb.Trips.Bounded {
				res.LoopsInferred++
			}
		}
	}
	return res, nil
}

type walkState uint8

const (
	unvisited walkState = iota
	inProgress
	done
)

type computer struct {
	prog   *ir.Program
	graphs map[string]*cfg.Graph
	img    *layout.Image
	prof   *power.Profile
	funcs  map[string]*FuncBounds
	state  map[string]walkState
}

// function returns the bracket for one call to name, composing callees
// bottom-up. A call back into a function still being computed is
// recursion: it contributes nothing to the lower bound (sound — the
// recursion must bottom out somewhere) and ⊤ to the upper.
func (c *computer) function(name string) (Interval, error) {
	if fb, ok := c.funcs[name]; ok {
		return fb.Interval, nil
	}
	if c.state[name] == inProgress {
		return Unbounded("recursion through " + name), nil
	}
	c.state[name] = inProgress
	fb, err := c.computeFunc(name)
	if err != nil {
		return Interval{}, err
	}
	c.state[name] = done
	c.funcs[name] = fb
	return fb.Interval, nil
}

func (c *computer) computeFunc(name string) (*FuncBounds, error) {
	g := c.graphs[name]
	if g == nil {
		return nil, fmt.Errorf("bounds: no CFG for function %q", name)
	}
	f := g.Func
	fb := &FuncBounds{Name: name}
	if len(f.Blocks) == 0 {
		fb.Interval = Exact(0, 0)
		return fb, nil
	}

	// Layer 2: per-block cost intervals (placed instructions + callees).
	cost := make(map[*ir.Block]Interval, len(f.Blocks))
	for _, b := range f.Blocks {
		iv, err := c.blockCost(b)
		if err != nil {
			return nil, err
		}
		cost[b] = iv
	}

	// Layer 1 + 3: collapse loops innermost-first into super-nodes. The
	// repr map sends every block to the header of the innermost collapsed
	// loop containing it (itself when none).
	repr := make(map[*ir.Block]*ir.Block, len(f.Blocks))
	find := func(b *ir.Block) *ir.Block {
		for repr[b] != nil && repr[b] != b {
			b = repr[b]
		}
		return b
	}
	loops := g.Loops()
	fb.Loops = make([]LoopBounds, 0, len(loops))
	for i := len(loops) - 1; i >= 0; i-- { // loops are outermost-first
		l := loops[i]
		trips := inferTrips(g, l)
		fb.Loops = append(fb.Loops, LoopBounds{Header: l.Header.Label, Depth: l.Depth, Trips: trips})

		total, ok := c.collapseLoop(g, l, trips, cost, find)
		if !ok {
			// Irreducible flow inside the loop region: give up on the
			// whole function rather than risk an unsound bracket.
			fb.Interval = Unbounded("irreducible control flow in " + name)
			reverseLoops(fb.Loops)
			return fb, nil
		}
		for b := range l.Blocks {
			if b != l.Header {
				repr[b] = l.Header
			}
		}
		cost[l.Header] = total
	}
	reverseLoops(fb.Loops)

	// The remaining graph is a DAG over representatives; bracket the
	// entry→return paths.
	entry := find(f.Entry())
	paths, ok := dagPaths(f, g, find, cost, entry, nil)
	if !ok {
		fb.Interval = Unbounded("irreducible control flow in " + name)
		return fb, nil
	}
	var out Interval
	found := false
	for _, b := range f.Blocks {
		if find(b) != b {
			continue
		}
		if len(sccSuccs(g, find, b)) == 0 {
			if p, ok := paths[b]; ok {
				if !found {
					out, found = p, true
				} else {
					out = out.Union(p)
				}
			}
		}
	}
	if !found {
		out = Unbounded("no return path in " + name)
	}
	fb.Interval = out
	return fb, nil
}

func reverseLoops(ls []LoopBounds) {
	for i, j := 0, len(ls)-1; i < j; i, j = i+1, j-1 {
		ls[i], ls[j] = ls[j], ls[i]
	}
}

// sccSuccs returns b's distinct successor representatives, excluding b
// itself (intra-super-node edges).
func sccSuccs(g *cfg.Graph, find func(*ir.Block) *ir.Block, b *ir.Block) []*ir.Block {
	// b is a representative; collect the successors of every block it
	// absorbed. For a non-collapsed block that is just its own edge set.
	var out []*ir.Block
	seen := map[*ir.Block]bool{}
	var emit func(n *ir.Block)
	emit = func(n *ir.Block) {
		for _, s := range g.Succs(n) {
			rs := find(s)
			if rs == b || seen[rs] {
				continue
			}
			seen[rs] = true
			out = append(out, rs)
		}
	}
	// Walk the blocks absorbed into b. Membership is "find(x) == b";
	// scanning the whole function here would be quadratic, so callers
	// that know the member set use collapse-time edges instead. For the
	// top-level DAG the absorbed set is exactly the loops headed by b,
	// found via the graph's loop list.
	emit(b)
	for _, l := range g.Loops() {
		if find(l.Header) != b {
			continue
		}
		for m := range l.Blocks {
			if m != b && find(m) == b {
				emit(m)
			}
		}
	}
	return out
}

// collapseLoop reduces one natural loop to a single super-node interval:
// trips × iteration-path + exit-path. Inner loops must already be
// collapsed (their headers carry their totals). Returns ok=false when the
// loop's interior is not reducible to a DAG.
func (c *computer) collapseLoop(g *cfg.Graph, l *cfg.Loop, trips TripBound, cost map[*ir.Block]Interval, find func(*ir.Block) *ir.Block) (Interval, bool) {
	header := l.Header

	// Latches and exits, in representative space.
	latch := map[*ir.Block]bool{}
	for _, p := range g.Preds(header) {
		if l.Blocks[p] {
			latch[find(p)] = true
		}
	}
	exit := map[*ir.Block]bool{}
	exitsFromHeaderOnly := true
	for b := range l.Blocks {
		for _, s := range g.Succs(b) {
			if !l.Blocks[s] {
				exit[find(b)] = true
				if b != header {
					exitsFromHeaderOnly = false
				}
			}
		}
	}

	paths, ok := dagPaths(g.Func, g, find, cost, header, l.Blocks)
	if !ok {
		return Interval{}, false
	}

	var iter, exitPath Interval
	iterOK, exitOK := false, false
	for n, p := range paths {
		if latch[n] {
			if !iterOK {
				iter, iterOK = p, true
			} else {
				iter = iter.Union(p)
			}
		}
		if exit[n] {
			if !exitOK {
				exitPath, exitOK = p, true
			} else {
				exitPath = exitPath.Union(p)
			}
		}
	}
	if !iterOK {
		// A loop with an unreachable latch cannot iterate; treat as one
		// pass through the exit path.
		iter = Exact(0, 0)
		trips = TripBound{Min: 0, Max: 0, Bounded: true}
	}
	if !exitOK {
		// No exit edge: the loop cannot terminate. Lower bound stays
		// sound at the header's cost; upper is ⊤.
		exitPath = Interval{
			LoCycles:   cost[header].LoCycles,
			LoEnergyNJ: cost[header].LoEnergyNJ,
			Reason:     "loop " + header.Label + " has no exit",
		}
	}
	if !exitsFromHeaderOnly && trips.Bounded {
		// Break-style exits can leave before the counted trips complete:
		// the count stays a valid maximum but not a minimum.
		trips.Min = 0
	}

	return iter.scaled(trips).Plus(exitPath), true
}

// dagPaths brackets the node-weighted path cost from entry to every
// reachable representative node, treating back edges to entry as absent
// (loop iteration) and restricting to `within` when non-nil (loop
// membership, in original-block space). Returns ok=false when the
// restricted region still contains a cycle (irreducible flow).
func dagPaths(f *ir.Function, g *cfg.Graph, find func(*ir.Block) *ir.Block, cost map[*ir.Block]Interval, entry *ir.Block, within map[*ir.Block]bool) (map[*ir.Block]Interval, bool) {
	// Edges in representative space. Built by scanning original blocks
	// once; membership and self-edges filtered here.
	succs := map[*ir.Block][]*ir.Block{}
	nodes := map[*ir.Block]bool{}
	addNode := func(b *ir.Block) *ir.Block {
		r := find(b)
		nodes[r] = true
		return r
	}
	for _, b := range f.Blocks {
		if within != nil && !within[b] {
			continue
		}
		rb := addNode(b)
		for _, s := range g.Succs(b) {
			if within != nil && !within[s] {
				continue
			}
			rs := find(s)
			if rs == rb || rs == entry {
				continue // internal to a super-node, or a back edge
			}
			nodes[rs] = true
			succs[rb] = append(succs[rb], rs)
		}
	}

	// Kahn topological order over nodes reachable from entry.
	indeg := map[*ir.Block]int{}
	reach := map[*ir.Block]bool{entry: true}
	queue := []*ir.Block{entry}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, s := range succs[n] {
			if !reach[s] {
				reach[s] = true
				queue = append(queue, s)
			}
		}
	}
	for n := range reach {
		for _, s := range succs[n] {
			if reach[s] {
				indeg[s]++
			}
		}
	}
	order := make([]*ir.Block, 0, len(reach))
	queue = []*ir.Block{entry}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, s := range succs[n] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(reach) {
		return nil, false // leftover cycle: irreducible region
	}

	paths := make(map[*ir.Block]Interval, len(order))
	paths[entry] = cost[entry]
	for _, n := range order {
		base, ok := paths[n]
		if !ok {
			continue
		}
		for _, s := range succs[n] {
			ext := base.Plus(cost[s])
			if cur, ok := paths[s]; ok {
				paths[s] = cur.Union(ext)
			} else {
				paths[s] = ext
			}
		}
	}
	return paths, true
}
