package bounds

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/power"
)

// blockCost brackets one execution of the block labelled like b in the
// placed image, plus the full cost of everything it calls. b is the
// pristine block (structure); the charged instructions are the placed
// block's, which may carry Figure 4 instrumentation.
func (c *computer) blockCost(b *ir.Block) (Interval, error) {
	pl, ok := c.img.PlacedBlock(b.Label)
	if !ok {
		return Interval{}, fmt.Errorf("bounds: block %q not in image", b.Label)
	}
	fetchMem := power.Flash
	if pl.InRAM {
		fetchMem = power.RAM
	}
	iv := Exact(0, 0)
	for i := range pl.Block.Instrs {
		iv = iv.Plus(c.instrCost(pl, i, fetchMem))
	}

	// Calls compose from the pristine block: the transformer rewrites a
	// crossing bl into ldr+blx of the same symbol (CF003 guarantees the
	// sequence), so the original stream is the reliable call list, while
	// the rewritten stream above already charged the extra transfer cost.
	var lastLit string
	lastLitReg := isa.NoReg
	for ii := range b.Instrs {
		in := &b.Instrs[ii]
		switch in.Op {
		case isa.LDRLIT:
			if in.Sym != "" && in.Rd != isa.PC {
				lastLit, lastLitReg = in.Sym, in.Rd
				continue
			}
		case isa.BL:
			callee, err := c.function(in.Sym)
			if err != nil {
				return Interval{}, err
			}
			iv = iv.Plus(callee)
		case isa.BLX:
			// Resolve the `ldr rX, =f; blx rX` idiom the same way the
			// stack analysis does; an unresolvable target could reach
			// anything, including recursion into the caller.
			if lastLitReg == in.Rm && lastLit != "" && c.prog.Func(lastLit) != nil {
				callee, err := c.function(lastLit)
				if err != nil {
					return Interval{}, err
				}
				iv = iv.Plus(callee)
			} else {
				iv = iv.Plus(Unbounded(fmt.Sprintf("unresolved indirect call in %s", b.Label)))
			}
		}
		for _, d := range in.Defs() {
			if d == lastLitReg {
				lastLit, lastLitReg = "", isa.NoReg
			}
		}
	}
	return iv, nil
}

// instrCost brackets one placed instruction over every outcome the static
// analysis cannot decide, mirroring the simulator's charging exactly:
// cycles from isa.Cycles/CyclesNotTaken plus the RAM contention stall,
// energy as cycles × EnergyPerCycle(InstrPower(fetch, class, data)) — the
// same expression the predecoder builds its per-slot tables from.
func (c *computer) instrCost(pl *layout.Placed, i int, fetchMem power.Memory) Interval {
	in := &pl.Block.Instrs[i]
	cl := isa.ClassOf(in.Op)
	charge := func(cycles int, dm power.Memory) Interval {
		cy := float64(cycles)
		return Exact(cy, cy*c.prof.EnergyPerCycle(c.prof.InstrPower(fetchMem, cl, dm)))
	}
	// chargeLoad adds the single-port contention stall the simulator adds:
	// RAM-fetched code loading RAM data.
	chargeLoad := func(cycles int, dm power.Memory) Interval {
		if fetchMem == power.RAM && dm == power.RAM {
			cycles += isa.RAMContentionStall
		}
		return charge(cycles, dm)
	}

	cy := isa.Cycles(in)
	var iv Interval
	switch in.Op {
	case isa.B:
		if in.Cond == isa.AL {
			iv = charge(cy, power.None)
		} else {
			iv = charge(cy, power.None).Union(charge(isa.CyclesNotTaken(in), power.None))
		}
	case isa.CBZ, isa.CBNZ:
		iv = charge(cy, power.None).Union(charge(isa.CyclesNotTaken(in), power.None))
	case isa.LDR, isa.LDRB, isa.LDRH, isa.LDRSB, isa.LDRSH:
		if in.Mode == isa.AddrOffset && in.Rn == isa.SP {
			// Stack access: the stack lives in RAM by construction.
			iv = chargeLoad(cy, power.RAM)
		} else {
			iv = chargeLoad(cy, power.Flash).Union(chargeLoad(cy, power.RAM))
		}
	case isa.LDRLIT:
		iv = chargeLoad(cy, c.litMem(pl, i, fetchMem))
	case isa.STR, isa.STRB, isa.STRH, isa.PUSH:
		// Data stores always hit RAM (flash writes fault); plain charge,
		// no contention stall — the store buffers.
		iv = charge(cy, power.RAM)
	case isa.POP:
		iv = chargeLoad(cy, power.RAM)
	default:
		iv = charge(cy, power.None)
	}

	// A predicated instruction whose condition fails still costs its
	// not-taken cycles at no-data power (conditional b handles its own
	// two outcomes above).
	if in.Cond != isa.AL && in.Op != isa.B {
		iv = iv.Union(charge(isa.CyclesNotTaken(in), power.None))
	}
	return iv
}

// litMem resolves where a literal load's pool word lives: with its block
// unless the laid-out slot address resolves elsewhere — the predecoder's
// rule, verbatim.
func (c *computer) litMem(pl *layout.Placed, i int, fetchMem power.Memory) power.Memory {
	lm := fetchMem
	if la := pl.LitAddrs[i]; la != 0 {
		if mm, ok := c.img.MemoryOf(la); ok {
			lm = mm
		}
	}
	return lm
}
