package analysis

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/transform"
)

// InstrumentationPass verifies the §5 transformation's two obligations on
// every flash↔RAM boundary: (1) no direct transfer survives across the
// memories — every cross edge must go through a Figure 4 long-branch
// sequence, because no direct Thumb-2 branch can span the 0x18000000
// flash↔RAM distance — and (2) the scratch register each sequence clobbers
// was provably dead at the instrumentation point, cross-checked against
// the same liveness analysis (transform.LiveOut) the scavenger used.
//
// Codes:
//
//	IC001  direct call (bl) crosses between flash and RAM
//	IC002  direct branch (b/cbz/cbnz) crosses between flash and RAM
//	IC003  fall-through edge crosses between flash and RAM
//	IC004  instrumentation scratch register is live at the rewrite point
//	IC005  malformed long-branch sequence (it/ldr/ldr/bx shape broken)
type InstrumentationPass struct{}

// Name implements Pass.
func (InstrumentationPass) Name() string { return "instrumentation" }

// condSeq is a recognized it/ldr/ldr/bx tail: the Figure 4 conditional
// long branch. start is the index of the IT instruction.
type condSeq struct {
	start   int
	scratch isa.Reg
	taken   string // target of the condition-true ldr
	fallthr string // target of the condition-false ldr
}

// matchCondSeq recognizes the conditional instrumentation tail of a block,
// returning nil when the block does not end in bx through a non-LR
// register. A malformed tail is reported through the diag callback.
func matchCondSeq(b *ir.Block, diag func(code string, idx int, format string, args ...interface{})) *condSeq {
	n := len(b.Instrs)
	if n == 0 {
		return nil
	}
	last := &b.Instrs[n-1]
	if last.Op != isa.BX || last.Rm == isa.LR {
		return nil
	}
	if n < 4 {
		diag("IC005", n-1, "bx %s has no preceding it/ldr/ldr sequence", last.Rm)
		return nil
	}
	l2, l1, it := &b.Instrs[n-2], &b.Instrs[n-3], &b.Instrs[n-4]
	if it.Op != isa.IT || l1.Op != isa.LDRLIT || l2.Op != isa.LDRLIT {
		// A plain indirect branch from the source program (bx through a
		// computed register) — not instrumentation, nothing to validate.
		return nil
	}
	seq := &condSeq{start: n - 4, scratch: last.Rm, taken: l1.Sym, fallthr: l2.Sym}
	switch {
	case l1.Rd != last.Rm || l2.Rd != last.Rm:
		diag("IC005", n-1, "long-branch loads %s/%s but branches through %s",
			l1.Rd, l2.Rd, last.Rm)
	case l1.Cond == isa.AL || l2.Cond == isa.AL:
		diag("IC005", n-3, "long-branch ldr pair is unconditional")
	case l1.Cond != it.Cond || l2.Cond != l1.Cond.Invert():
		diag("IC005", n-3, "long-branch conditions %s/%s do not match it %s and its inverse",
			l1.Cond, l2.Cond, it.Cond)
	case b.Func.Block(l1.Sym) == nil || b.Func.Block(l2.Sym) == nil:
		diag("IC005", n-3, "long-branch targets %q/%q are not blocks of %s",
			l1.Sym, l2.Sym, b.Func.Name)
	}
	return seq
}

// Run implements Pass.
func (p InstrumentationPass) Run(ctx *Context) ([]Diagnostic, error) {
	var diags []Diagnostic

	for _, f := range ctx.Prog.Funcs {
		// Live-out sets of the pre-transformation function: the facts that
		// must justify every scratch-register clobber. Nil when no original
		// program (baseline lint) or the function is new.
		var origLive map[string]transform.LiveSet
		var origF *ir.Function
		if ctx.Original != nil {
			if origF = ctx.Original.Func(f.Name); origF != nil {
				lo, err := transform.LiveOut(ctx.Original, origF)
				if err != nil {
					return diags, fmt.Errorf("liveness of original %s: %v", f.Name, err)
				}
				origLive = lo
			}
		}

		for bi, b := range f.Blocks {
			myRAM := ctx.memOf(b.Label)
			diag := func(code string, idx int, format string, args ...interface{}) {
				diags = append(diags, Diagnostic{
					Pass: p.Name(), Code: code, Severity: Error,
					Func: f.Name, Block: b.Label, Instr: idx,
					Message: fmt.Sprintf(format, args...),
				})
			}

			// (1) Direct calls must not cross memories.
			callOrdinal := 0
			for ii := 0; ii < len(b.Instrs); ii++ {
				in := &b.Instrs[ii]
				switch in.Op {
				case isa.BL:
					if callee := ctx.Prog.Func(in.Sym); callee != nil && callee.Entry() != nil {
						if ctx.memOf(callee.Entry().Label) != myRAM {
							diag("IC001", ii,
								"direct bl %s crosses %s→%s without a long call",
								in.Sym, memName(myRAM), memName(!myRAM))
						}
					}
					callOrdinal++
				case isa.BLX:
					// A rewritten call: ldr rS, =callee; blx rS. The scratch
					// must have been dead across the original call.
					if ii > 0 && b.Instrs[ii-1].Op == isa.LDRLIT &&
						b.Instrs[ii-1].Rd == in.Rm && b.Instrs[ii-1].Sym != "" {
						if origLive != nil {
							if live, ok := liveBeforeCall(origF, b.Label, callOrdinal, origLive); ok && live.Has(in.Rm) {
								diag("IC004", ii,
									"call rewrite clobbers %s, which is live across the original bl %s",
									in.Rm, b.Instrs[ii-1].Sym)
							}
						}
					}
					callOrdinal++
				}
			}

			// (2) The terminator must not cross memories directly.
			if t := b.Terminator(); t != nil {
				ti := len(b.Instrs) - 1
				switch t.Op {
				case isa.B, isa.CBZ, isa.CBNZ:
					if ctx.memOf(t.Sym) != myRAM {
						diag("IC002", ti,
							"direct %s %s crosses %s→%s; needs ldr pc / it-ldr-ldr-bx instrumentation",
							t.Op, t.Sym, memName(myRAM), memName(!myRAM))
					}
				}
			}

			// (3) A fall-through edge must land in the same memory.
			if b.FallsThrough() && bi+1 < len(f.Blocks) {
				next := f.Blocks[bi+1]
				if ctx.memOf(next.Label) != myRAM {
					diag("IC003", len(b.Instrs)-1,
						"fall-through to %s crosses %s→%s; placement severed the edge",
						next.Label, memName(myRAM), memName(!myRAM))
				}
			}

			// (4) Conditional long-branch tails: shape and scratch liveness.
			if seq := matchCondSeq(b, diag); seq != nil && origLive != nil {
				if origLive[b.Label].Has(seq.scratch) {
					diag("IC004", seq.start,
						"long-branch sequence clobbers %s, which is live out of the original block",
						seq.scratch)
				}
			}
		}
	}
	return diags, nil
}

// liveBeforeCall computes the registers live immediately before the n-th
// call (0-based) of the named block in the original function, by walking
// the block backwards from its live-out set. Returns ok=false when the
// block or call does not exist in the original (structure divergence is
// the CFG-equivalence pass's finding, not ours).
func liveBeforeCall(f *ir.Function, label string, n int, liveOut map[string]transform.LiveSet) (transform.LiveSet, bool) {
	b := f.Block(label)
	if b == nil {
		return 0, false
	}
	// Index of the n-th call instruction.
	callIdx := -1
	seen := 0
	for i := range b.Instrs {
		if b.Instrs[i].Op == isa.BL || b.Instrs[i].Op == isa.BLX {
			if seen == n {
				callIdx = i
				break
			}
			seen++
		}
	}
	if callIdx < 0 {
		return 0, false
	}
	live := liveOut[label]
	for i := len(b.Instrs) - 1; i > callIdx; i-- {
		in := &b.Instrs[i]
		live &^= transform.DefsOf(in)
		live |= transform.UsesOf(in)
	}
	// The call's own argument uses keep those registers live into it.
	live |= transform.UsesOf(&b.Instrs[callIdx])
	return live, true
}
