package analysis

import (
	"fmt"
	"strings"

	"repro/internal/layout"
)

// StackDepthPass bounds the worst-case stack over the call graph (the
// static analysis §4.1 cites for deriving Rspare) and verifies it fits:
// the stack descends from the top of RAM, and RAM-resident code and data
// sit below it, so the worst-case depth must never reach the highest
// placed RAM byte. The StackReserve is the budget the placement model
// was solved under — a program may legitimately exceed it when the RAM
// left over is deeper than the reserve (fdct at O0 does).
//
// Codes:
//
//	SD001  stack depth unbounded (recursion) or indirect call unresolvable
//	SD002  worst-case stack descends into placed RAM contents
type StackDepthPass struct{}

// Name implements Pass.
func (StackDepthPass) Name() string { return "stack-depth" }

// Run implements Pass.
func (p StackDepthPass) Run(ctx *Context) ([]Diagnostic, error) {
	an, err := layout.AnalyzeStack(ctx.Prog)
	if err != nil {
		return []Diagnostic{{
			Pass: p.Name(), Code: "SD001", Severity: Error, Instr: -1,
			Message: err.Error(),
		}}, nil
	}

	// Highest RAM byte in use: RAM-placed code (including its literal
	// pools) and writable globals.
	img := ctx.Image
	maxUsed := img.Config.RAMBase
	for _, pl := range img.Blocks {
		if pl.InRAM && pl.End > maxUsed {
			maxUsed = pl.End
		}
	}
	for _, g := range ctx.Prog.Globals {
		if g.RO {
			continue
		}
		if addr, ok := img.Symbols[g.Name]; ok && addr+uint32(g.Size) > maxUsed {
			maxUsed = addr + uint32(g.Size)
		}
	}

	// Signed arithmetic: contents may already extend past the stack top.
	limit := int64(img.StackTop()) - int64(maxUsed)
	if int64(an.MaxDepth) > limit {
		fn := ""
		if len(an.DeepestPath) > 0 {
			fn = an.DeepestPath[0]
		}
		return []Diagnostic{{
			Pass: p.Name(), Code: "SD002", Severity: Error, Instr: -1, Func: fn,
			Addr: maxUsed,
			Message: fmt.Sprintf(
				"worst-case stack %d bytes descends past %#x into placed RAM contents "+
					"(only %d bytes free above %#x; deepest path: %s)",
				an.MaxDepth, img.StackTop()-uint32(an.MaxDepth), limit, maxUsed,
				strings.Join(an.DeepestPath, " → ")),
		}}, nil
	}
	return nil, nil
}
