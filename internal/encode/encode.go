// Package encode emits real ARMv7-M Thumb-2 machine code for the laid-out
// program image: the instruction encodings a flash programmer would burn
// onto the paper's STM32. Besides producing a flashable image, the
// encoder is a cross-check of the whole sizing chain: every instruction's
// encoded length must equal internal/isa's Size() — the number the layout
// engine, the cost model (Sb, Kb) and the RAM budget all rely on.
package encode

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/power"
)

// EncodeInstr encodes one instruction located at addr within the image.
// The image resolves branch targets and literal-pool slots. The result is
// 2 or 4 bytes, little-endian halfwords per the Thumb instruction stream.
func EncodeInstr(img *layout.Image, pl *layout.Placed, idx int) ([]byte, error) {
	in := &pl.Block.Instrs[idx]
	addr := pl.InstrAddrs[idx]
	size := pl.InstrSize(idx)

	enc := &encoder{img: img, pl: pl, idx: idx, in: in, addr: addr, wide: size == 4}
	hw, err := enc.encode()
	if err != nil {
		return nil, fmt.Errorf("encode: %s at %#x: %w", in.String(), addr, err)
	}
	out := make([]byte, 0, 4)
	for _, h := range hw {
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], h)
		out = append(out, b[:]...)
	}
	if len(out) != size {
		return nil, fmt.Errorf("encode: %s at %#x: encoded %d bytes but Size says %d",
			in.String(), addr, len(out), size)
	}
	return out, nil
}

type encoder struct {
	img  *layout.Image
	pl   *layout.Placed
	idx  int
	in   *isa.Instr
	addr uint32
	wide bool
}

func (e *encoder) narrow(h uint16) []uint16    { return []uint16{h} }
func (e *encoder) pair(h1, h2 uint16) []uint16 { return []uint16{h1, h2} }

func lo3(r isa.Reg) uint16 { return uint16(r) & 7 }
func r4(r isa.Reg) uint16  { return uint16(r) & 15 }

// targetAddr resolves a label to its block address.
func (e *encoder) targetAddr(sym string) (uint32, error) {
	a, ok := e.img.Symbols[sym]
	if !ok {
		return 0, fmt.Errorf("unresolved symbol %q", sym)
	}
	return a, nil
}

func (e *encoder) encode() ([]uint16, error) {
	in := e.in
	switch in.Op {
	case isa.NOP:
		return e.narrow(0xBF00), nil

	case isa.IT:
		// 1011 1111 cond mask; mask encodes the then/else pattern.
		cond := condBits(in.Cond)
		var mask uint16
		switch in.ITMask {
		case "":
			mask = 0b1000
		case "e":
			mask = ((cond&1)^1)<<3 | 0b0100
		case "t":
			mask = (cond&1)<<3 | 0b0100
		default:
			return nil, fmt.Errorf("unsupported IT mask %q", in.ITMask)
		}
		return e.narrow(0xBF00 | cond<<4 | mask), nil

	case isa.MOV:
		if in.HasImm {
			if !e.wide {
				return e.narrow(0x2000 | lo3(in.Rd)<<8 | uint16(in.Imm)&0xFF), nil
			}
			// MOVW (T3): up to 16-bit immediates.
			if in.Imm < 0 || in.Imm > 0xFFFF {
				return nil, fmt.Errorf("mov immediate %d not encodable", in.Imm)
			}
			imm := uint32(in.Imm)
			hw1 := uint16(0xF240) | uint16(imm>>11&1)<<10 | uint16(imm>>12)&0xF
			hw2 := uint16(imm>>8&7)<<12 | r4(in.Rd)<<8 | uint16(imm&0xFF)
			return e.pair(hw1, hw2), nil
		}
		// MOV register (T1): works for any registers.
		d := uint16(in.Rd)
		return e.narrow(0x4600 | (d&8)<<4 | uint16(in.Rm)<<3 | (d & 7)), nil

	case isa.ADD, isa.SUB:
		return e.addSub()

	case isa.CMP:
		if in.HasImm {
			if !e.wide {
				return e.narrow(0x2800 | lo3(in.Rn)<<8 | uint16(in.Imm)&0xFF), nil
			}
			imm, ok := thumbExpandImm(uint32(in.Imm))
			if !ok {
				return nil, fmt.Errorf("cmp immediate %d not encodable", in.Imm)
			}
			hw1 := uint16(0xF1B0) | uint16(imm>>11&1)<<10 | r4(in.Rn)
			hw2 := uint16(imm>>8&7)<<12 | 0x0F00 | uint16(imm&0xFF)
			return e.pair(hw1, hw2), nil
		}
		n := uint16(in.Rn)
		if in.Rn.IsLow() && in.Rm.IsLow() {
			return e.narrow(0x4280 | lo3(in.Rm)<<3 | lo3(in.Rn)), nil
		}
		return e.narrow(0x4500 | (n&8)<<4 | uint16(in.Rm)<<3 | (n & 7)), nil

	case isa.CMN, isa.TST:
		op := uint16(0x42C0) // CMN T1
		if in.Op == isa.TST {
			op = 0x4200
		}
		if in.HasImm {
			return nil, fmt.Errorf("%v immediate not supported by the encoder", in.Op)
		}
		return e.narrow(op | lo3(in.Rm)<<3 | lo3(in.Rn)), nil

	case isa.AND, isa.ORR, isa.EOR, isa.BIC, isa.ADC, isa.SBC, isa.ROR:
		return e.aluRegOrWide()

	case isa.LSL, isa.LSR, isa.ASR:
		return e.shift()

	case isa.RSB:
		if in.HasImm && in.Imm == 0 && !e.wide {
			return e.narrow(0x4240 | lo3(in.Rn)<<3 | lo3(in.Rd)), nil // NEGS
		}
		if in.HasImm {
			imm, ok := thumbExpandImm(uint32(in.Imm))
			if !ok {
				return nil, fmt.Errorf("rsb immediate %d not encodable", in.Imm)
			}
			hw1 := uint16(0xF1C0) | uint16(imm>>11&1)<<10 | r4(in.Rn)
			hw2 := uint16(imm>>8&7)<<12 | r4(in.Rd)<<8 | uint16(imm&0xFF)
			return e.pair(hw1, hw2), nil
		}
		return e.pair(0xEBC0|r4(in.Rn), r4(in.Rd)<<8|r4(in.Rm)), nil

	case isa.MVN:
		if !e.wide {
			return e.narrow(0x43C0 | lo3(in.Rm)<<3 | lo3(in.Rd)), nil
		}
		return e.pair(0xEA6F, r4(in.Rd)<<8|r4(in.Rm)), nil

	case isa.MUL:
		if !e.wide {
			return e.narrow(0x4340 | lo3(in.Rm)<<3 | lo3(in.Rd)), nil
		}
		return e.pair(0xFB00|r4(in.Rn), 0xF000|r4(in.Rd)<<8|r4(in.Rm)), nil

	case isa.MLA:
		// rd = rd + rn*rm: accumulator Ra is Rd by our convention.
		return e.pair(0xFB00|r4(in.Rn), r4(in.Rd)<<12|r4(in.Rd)<<8|r4(in.Rm)), nil

	case isa.SDIV:
		return e.pair(0xFB90|r4(in.Rn), 0xF0F0|r4(in.Rd)<<8|r4(in.Rm)), nil
	case isa.UDIV:
		return e.pair(0xFBB0|r4(in.Rn), 0xF0F0|r4(in.Rd)<<8|r4(in.Rm)), nil

	case isa.CLZ:
		m := r4(in.Rm)
		return e.pair(0xFAB0|m, 0xF080|r4(in.Rd)<<8|m), nil

	case isa.SXTB, isa.SXTH, isa.UXTB, isa.UXTH:
		return e.extend()

	case isa.LDR, isa.STR, isa.LDRB, isa.STRB, isa.LDRH, isa.STRH,
		isa.LDRSB, isa.LDRSH:
		return e.memory()

	case isa.LDRLIT:
		return e.literal()

	case isa.ADR:
		tgt, err := e.targetAddr(e.in.Sym)
		if err != nil {
			return nil, err
		}
		base := (e.addr + 4) &^ 3
		off := int64(tgt) - int64(base)
		if off < 0 || off > 1020 || off%4 != 0 {
			return nil, fmt.Errorf("adr offset %d out of range", off)
		}
		return e.narrow(0xA000 | lo3(in.Rd)<<8 | uint16(off/4)), nil

	case isa.PUSH:
		list := in.RegList
		if !e.wide {
			h := uint16(0xB400) | uint16(list&0xFF)
			if list&(1<<isa.LR) != 0 {
				h |= 1 << 8
			}
			return e.narrow(h), nil
		}
		// STMDB sp!, {...}
		return e.pair(0xE92D, list&0x5FFF), nil

	case isa.POP:
		list := in.RegList
		if !e.wide {
			h := uint16(0xBC00) | uint16(list&0xFF)
			if list&(1<<isa.PC) != 0 {
				h |= 1 << 8
			}
			return e.narrow(h), nil
		}
		// LDMIA sp!, {...}
		return e.pair(0xE8BD, list&0xDFFF), nil

	case isa.B:
		return e.branch()

	case isa.CBZ, isa.CBNZ:
		tgt, err := e.targetAddr(in.Sym)
		if err != nil {
			return nil, err
		}
		off := int64(tgt) - int64(e.addr+4)
		if off < 0 || off > 126 || off%2 != 0 {
			return nil, fmt.Errorf("cbz offset %d out of range", off)
		}
		h := uint16(0xB100)
		if in.Op == isa.CBNZ {
			h = 0xB900
		}
		imm := uint16(off / 2) // i:imm5
		return e.narrow(h | (imm>>5)<<9 | (imm&0x1F)<<3 | lo3(in.Rn)), nil

	case isa.BL:
		tgt, err := e.targetAddr(in.Sym)
		if err != nil {
			return nil, err
		}
		return e.encodeBL(tgt)

	case isa.BX:
		return e.narrow(0x4700 | uint16(in.Rm)<<3), nil
	case isa.BLX:
		return e.narrow(0x4780 | uint16(in.Rm)<<3), nil
	}
	return nil, fmt.Errorf("unsupported opcode %v", in.Op)
}

func (e *encoder) addSub() ([]uint16, error) {
	in := e.in
	isAdd := in.Op == isa.ADD
	if in.HasImm {
		imm := in.Imm
		// Canonicalize negative immediates to the opposite operation.
		if imm < 0 {
			isAdd = !isAdd
			imm = -imm
		}
		switch {
		case !e.wide && (in.Rd == isa.SP || in.Rn == isa.SP):
			if in.Rd == isa.SP && in.Rn == isa.SP {
				h := uint16(0xB000)
				if !isAdd {
					h = 0xB080
				}
				return e.narrow(h | uint16(imm/4)), nil
			}
			if isAdd && in.Rn == isa.SP && in.Rd.IsLow() {
				return e.narrow(0xA800 | lo3(in.Rd)<<8 | uint16(imm/4)), nil
			}
			return nil, fmt.Errorf("sp-relative %v not encodable narrow", in)
		case !e.wide && in.Rd.IsLow() && in.Rn.IsLow() && imm <= 7:
			h := uint16(0x1C00)
			if !isAdd {
				h = 0x1E00
			}
			return e.narrow(h | uint16(imm)<<6 | lo3(in.Rn)<<3 | lo3(in.Rd)), nil
		case !e.wide && in.Rd == in.Rn && in.Rd.IsLow() && imm <= 255:
			h := uint16(0x3000)
			if !isAdd {
				h = 0x3800
			}
			return e.narrow(h | lo3(in.Rd)<<8 | uint16(imm)), nil
		default:
			// ADDW/SUBW (T4): plain 12-bit immediate.
			if imm > 4095 {
				return nil, fmt.Errorf("add/sub immediate %d not encodable", imm)
			}
			hw1 := uint16(0xF200) | r4(in.Rn)
			if !isAdd {
				hw1 = 0xF2A0 | r4(in.Rn)
			}
			hw1 |= uint16(imm>>11&1) << 10
			hw2 := uint16(imm>>8&7)<<12 | r4(in.Rd)<<8 | uint16(imm&0xFF)
			return e.pair(hw1, hw2), nil
		}
	}
	// Register forms.
	if !e.wide {
		h := uint16(0x1800)
		if !isAdd {
			h = 0x1A00
		}
		return e.narrow(h | lo3(in.Rm)<<6 | lo3(in.Rn)<<3 | lo3(in.Rd)), nil
	}
	hw1 := uint16(0xEB00) | r4(in.Rn)
	if !isAdd {
		hw1 = 0xEBA0 | r4(in.Rn)
	}
	sh := uint16(in.Shift)
	hw2 := (sh>>2)<<12 | r4(in.Rd)<<8 | (sh&3)<<6 | r4(in.Rm)
	return e.pair(hw1, hw2), nil
}

var aluT1 = map[isa.Op]uint16{
	isa.AND: 0x4000, isa.EOR: 0x4040, isa.ADC: 0x4140, isa.SBC: 0x4180,
	isa.ROR: 0x41C0, isa.ORR: 0x4300, isa.BIC: 0x4380,
}

var aluWide = map[isa.Op]uint16{
	isa.AND: 0xEA00, isa.ORR: 0xEA40, isa.EOR: 0xEA80, isa.BIC: 0xEA20,
	isa.ADC: 0xEB40, isa.SBC: 0xEB60,
}

func (e *encoder) aluRegOrWide() ([]uint16, error) {
	in := e.in
	if in.HasImm {
		imm, ok := thumbExpandImm(uint32(in.Imm))
		if !ok {
			return nil, fmt.Errorf("%v immediate %d not encodable", in.Op, in.Imm)
		}
		base := map[isa.Op]uint16{
			isa.AND: 0xF000, isa.ORR: 0xF040, isa.EOR: 0xF080, isa.BIC: 0xF020,
		}[in.Op]
		if base == 0 {
			return nil, fmt.Errorf("%v immediate not supported", in.Op)
		}
		hw1 := base | uint16(imm>>11&1)<<10 | r4(in.Rn)
		hw2 := uint16(imm>>8&7)<<12 | r4(in.Rd)<<8 | uint16(imm&0xFF)
		return e.pair(hw1, hw2), nil
	}
	if !e.wide {
		op, ok := aluT1[in.Op]
		if !ok {
			return nil, fmt.Errorf("%v has no narrow form", in.Op)
		}
		return e.narrow(op | lo3(in.Rm)<<3 | lo3(in.Rd)), nil
	}
	op, ok := aluWide[in.Op]
	if !ok {
		return nil, fmt.Errorf("%v has no wide register form", in.Op)
	}
	return e.pair(op|r4(in.Rn), r4(in.Rd)<<8|r4(in.Rm)), nil
}

func (e *encoder) shift() ([]uint16, error) {
	in := e.in
	if in.HasImm {
		if !e.wide {
			base := map[isa.Op]uint16{isa.LSL: 0x0000, isa.LSR: 0x0800, isa.ASR: 0x1000}[in.Op]
			return e.narrow(base | uint16(in.Imm&31)<<6 | lo3(in.Rm)<<3 | lo3(in.Rd)), nil
		}
		// MOV.W rd, rm, <shift> #imm (T3).
		ty := map[isa.Op]uint16{isa.LSL: 0, isa.LSR: 1, isa.ASR: 2}[in.Op]
		sh := uint16(in.Imm & 31)
		hw2 := (sh>>2)<<12 | r4(in.Rd)<<8 | (sh&3)<<6 | ty<<4 | r4(in.Rm)
		return e.pair(0xEA4F, hw2), nil
	}
	if !e.wide {
		base := map[isa.Op]uint16{isa.LSL: 0x4080, isa.LSR: 0x40C0, isa.ASR: 0x4100}[in.Op]
		return e.narrow(base | lo3(in.Rm)<<3 | lo3(in.Rd)), nil
	}
	base := map[isa.Op]uint16{isa.LSL: 0xFA00, isa.LSR: 0xFA20, isa.ASR: 0xFA40}[in.Op]
	return e.pair(base|r4(in.Rn), 0xF000|r4(in.Rd)<<8|r4(in.Rm)), nil
}

func (e *encoder) extend() ([]uint16, error) {
	in := e.in
	if !e.wide {
		base := map[isa.Op]uint16{
			isa.SXTH: 0xB200, isa.SXTB: 0xB240, isa.UXTH: 0xB280, isa.UXTB: 0xB2C0,
		}[in.Op]
		return e.narrow(base | lo3(in.Rm)<<3 | lo3(in.Rd)), nil
	}
	hw1 := map[isa.Op]uint16{
		isa.SXTH: 0xFA0F, isa.UXTH: 0xFA1F, isa.SXTB: 0xFA4F, isa.UXTB: 0xFA5F,
	}[in.Op]
	return e.pair(hw1, 0xF080|r4(in.Rd)<<8|r4(in.Rm)), nil
}

func (e *encoder) memory() ([]uint16, error) {
	in := e.in
	switch in.Mode {
	case isa.AddrOffset:
		imm := uint32(in.Imm)
		if in.Imm < 0 {
			return nil, fmt.Errorf("negative memory offset %d not supported", in.Imm)
		}
		if !e.wide {
			switch in.Op {
			case isa.LDR, isa.STR:
				if in.Rn == isa.SP {
					base := uint16(0x9800)
					if in.Op == isa.STR {
						base = 0x9000
					}
					return e.narrow(base | lo3(in.Rd)<<8 | uint16(imm/4)), nil
				}
				base := uint16(0x6800)
				if in.Op == isa.STR {
					base = 0x6000
				}
				return e.narrow(base | uint16(imm/4)<<6 | lo3(in.Rn)<<3 | lo3(in.Rd)), nil
			case isa.LDRB, isa.STRB:
				base := uint16(0x7800)
				if in.Op == isa.STRB {
					base = 0x7000
				}
				return e.narrow(base | uint16(imm)<<6 | lo3(in.Rn)<<3 | lo3(in.Rd)), nil
			case isa.LDRH, isa.STRH:
				base := uint16(0x8800)
				if in.Op == isa.STRH {
					base = 0x8000
				}
				return e.narrow(base | uint16(imm/2)<<6 | lo3(in.Rn)<<3 | lo3(in.Rd)), nil
			}
			return nil, fmt.Errorf("%v has no narrow immediate form", in.Op)
		}
		if imm > 4095 {
			return nil, fmt.Errorf("memory offset %d not encodable", imm)
		}
		hw1, ok := wideMemOpcode(in.Op)
		if !ok {
			return nil, fmt.Errorf("%v not supported wide", in.Op)
		}
		return e.pair(hw1|r4(in.Rn), r4(in.Rd)<<12|uint16(imm)), nil

	case isa.AddrReg, isa.AddrRegLSL:
		if !e.wide {
			base := map[isa.Op]uint16{
				isa.STR: 0x5000, isa.STRH: 0x5200, isa.STRB: 0x5400,
				isa.LDRSB: 0x5600, isa.LDR: 0x5800, isa.LDRH: 0x5A00,
				isa.LDRB: 0x5C00, isa.LDRSH: 0x5E00,
			}[in.Op]
			return e.narrow(base | lo3(in.Rm)<<6 | lo3(in.Rn)<<3 | lo3(in.Rd)), nil
		}
		hw1, ok := wideMemRegOpcode(in.Op)
		if !ok {
			return nil, fmt.Errorf("%v not supported wide (register)", in.Op)
		}
		return e.pair(hw1|r4(in.Rn), r4(in.Rd)<<12|uint16(in.Shift&3)<<4|r4(in.Rm)), nil
	}
	return nil, fmt.Errorf("addressing mode %d unsupported", in.Mode)
}

func wideMemOpcode(op isa.Op) (uint16, bool) {
	switch op {
	case isa.LDR:
		return 0xF8D0, true
	case isa.STR:
		return 0xF8C0, true
	case isa.LDRB:
		return 0xF890, true
	case isa.STRB:
		return 0xF880, true
	case isa.LDRH:
		return 0xF8B0, true
	case isa.STRH:
		return 0xF8A0, true
	case isa.LDRSB:
		return 0xF990, true
	case isa.LDRSH:
		return 0xF9B0, true
	}
	return 0, false
}

func wideMemRegOpcode(op isa.Op) (uint16, bool) {
	switch op {
	case isa.LDR:
		return 0xF850, true
	case isa.STR:
		return 0xF840, true
	case isa.LDRB:
		return 0xF810, true
	case isa.STRB:
		return 0xF800, true
	case isa.LDRH:
		return 0xF830, true
	case isa.STRH:
		return 0xF820, true
	case isa.LDRSB:
		return 0xF910, true
	case isa.LDRSH:
		return 0xF930, true
	}
	return 0, false
}

// literal encodes ldr rd, [pc, #off] against the instruction's assigned
// literal-pool slot.
func (e *encoder) literal() ([]uint16, error) {
	lit := e.pl.LitAddrs[e.idx]
	if lit == 0 {
		return nil, fmt.Errorf("ldr literal without a pool slot")
	}
	base := (e.addr + 4) &^ 3
	off := int64(lit) - int64(base)
	if !e.wide {
		if off < 0 || off > 1020 || off%4 != 0 {
			return nil, fmt.Errorf("narrow literal offset %d out of range", off)
		}
		return e.narrow(0x4800 | lo3(e.in.Rd)<<8 | uint16(off/4)), nil
	}
	u := uint16(1)
	if off < 0 {
		u = 0
		off = -off
	}
	if off > 4095 {
		return nil, fmt.Errorf("wide literal offset %d out of range", off)
	}
	hw1 := uint16(0xF85F) | u<<7
	return e.pair(hw1, r4(e.in.Rd)<<12|uint16(off)), nil
}

func condBits(c isa.Cond) uint16 {
	switch c {
	case isa.EQ:
		return 0
	case isa.NE:
		return 1
	case isa.CS:
		return 2
	case isa.CC:
		return 3
	case isa.MI:
		return 4
	case isa.PL:
		return 5
	case isa.VS:
		return 6
	case isa.VC:
		return 7
	case isa.HI:
		return 8
	case isa.LS:
		return 9
	case isa.GE:
		return 10
	case isa.LT:
		return 11
	case isa.GT:
		return 12
	case isa.LE:
		return 13
	}
	return 14 // AL
}

func (e *encoder) branch() ([]uint16, error) {
	in := e.in
	tgt, err := e.targetAddr(in.Sym)
	if err != nil {
		return nil, err
	}
	off := int64(tgt) - int64(e.addr+4)
	if in.Cond == isa.AL {
		if !e.wide {
			if off < -2048 || off > 2046 {
				return nil, fmt.Errorf("narrow b offset %d out of range", off)
			}
			return e.narrow(0xE000 | uint16(off/2)&0x7FF), nil
		}
		// B.W (T4).
		if off < -(1<<24) || off >= 1<<24 {
			return nil, fmt.Errorf("b.w offset %d out of range", off)
		}
		return e.pair(encodeT4(off)), nil
	}
	if !e.wide {
		if off < -256 || off > 254 {
			return nil, fmt.Errorf("narrow conditional b offset %d out of range", off)
		}
		return e.narrow(0xD000 | condBits(in.Cond)<<8 | uint16(off/2)&0xFF), nil
	}
	// B<c>.W (T3): ±1 MiB.
	if off < -(1<<20) || off >= 1<<20 {
		return nil, fmt.Errorf("b<c>.w offset %d out of range", off)
	}
	o := uint32(off) >> 1
	s := uint16(o>>19) & 1
	j2 := uint16(o>>18) & 1
	j1 := uint16(o>>17) & 1
	imm6 := uint16(o>>11) & 0x3F
	imm11 := uint16(o) & 0x7FF
	hw1 := 0xF000 | s<<10 | condBits(in.Cond)<<6 | imm6
	hw2 := 0x8000 | j1<<13 | j2<<11 | imm11
	return e.pair(hw1, hw2), nil
}

// encodeBL emits the BL encoding (T1) for a target address.
func (e *encoder) encodeBL(tgt uint32) ([]uint16, error) {
	off := int64(tgt) - int64(e.addr+4)
	if off < -(1<<24) || off >= 1<<24 {
		return nil, fmt.Errorf("bl offset %d out of range", off)
	}
	hw1, hw2 := encodeT4(off)
	hw2 |= 0x4000 // the L bit distinguishing BL from B.W
	return e.pair(hw1, hw2), nil
}

// encodeT4 produces the common halfwords of B.W (T4) / BL for an offset.
func encodeT4(off int64) (uint16, uint16) {
	o := uint32(off) >> 1
	s := uint16(o>>23) & 1
	i1 := uint16(o>>22) & 1
	i2 := uint16(o>>21) & 1
	imm10 := uint16(o>>11) & 0x3FF
	imm11 := uint16(o) & 0x7FF
	j1 := (^(i1 ^ s)) & 1
	j2 := (^(i2 ^ s)) & 1
	hw1 := 0xF000 | s<<10 | imm10
	hw2 := 0x9000 | j1<<13 | j2<<11 | imm11
	return hw1, hw2
}

// thumbExpandImm inverts ThumbExpandImm: finds the 12-bit modified
// immediate encoding i:imm3:imm8 of a 32-bit constant, if one exists.
func thumbExpandImm(v uint32) (uint16, bool) {
	// 00xx: 0x000000ab, 0x00ab00ab, 0xab00ab00, 0xabababab.
	if v <= 0xFF {
		return uint16(v), true
	}
	b := v & 0xFF
	if v == b|b<<16 {
		return uint16(0x100 | b), true
	}
	if b8 := (v >> 8) & 0xFF; v == b8<<8|b8<<24 {
		return uint16(0x200 | b8), true
	}
	if b := v & 0xFF; v == b|b<<8|b<<16|b<<24 {
		return uint16(0x300 | b), true
	}
	// Rotated 8-bit value with a leading 1: 1bcdefgh rotated.
	for rot := uint32(8); rot < 32; rot++ {
		rotated := v<<rot | v>>(32-rot)
		if rotated <= 0xFF && rotated >= 0x80 {
			return uint16(rot<<7 | rotated&0x7F), true
		}
	}
	return 0, false
}

// Image encodes every instruction of a laid-out program and materializes
// the flash and RAM code contents (including literal pools). Returns the
// initialized flash image and the .ramcode bytes (RAM-relative).
func Image(img *layout.Image) (flash []byte, ramcode []byte, err error) {
	flash = make([]byte, img.Config.FlashSize)
	ramcode = make([]byte, img.RAMCodeBytes)

	writeAt := func(addr uint32, data []byte) error {
		mem, ok := img.MemoryOf(addr)
		if !ok {
			return fmt.Errorf("encode: write outside memory at %#x", addr)
		}
		if mem == power.Flash {
			copy(flash[addr-img.Config.FlashBase:], data)
			return nil
		}
		off := addr - img.Config.RAMBase
		if int(off)+len(data) > len(ramcode) {
			return fmt.Errorf("encode: ram code write at %#x out of section", addr)
		}
		copy(ramcode[off:], data)
		return nil
	}

	for _, pl := range img.Blocks {
		for i := range pl.Block.Instrs {
			bytes, err := EncodeInstr(img, pl, i)
			if err != nil {
				return nil, nil, err
			}
			if err := writeAt(pl.InstrAddrs[i], bytes); err != nil {
				return nil, nil, err
			}
			// Literal pool word.
			if lit := pl.LitAddrs[i]; lit != 0 {
				in := &pl.Block.Instrs[i]
				var w uint32
				if in.Sym != "" {
					a, ok := img.Symbols[in.Sym]
					if !ok {
						return nil, nil, fmt.Errorf("encode: unresolved literal %q", in.Sym)
					}
					w = a
					// Thumb function/label pointers carry bit 0 set when
					// used as branch targets; our indirect branches mask
					// it, so emit the plain address.
				} else {
					w = uint32(in.Imm)
				}
				var buf [4]byte
				binary.LittleEndian.PutUint32(buf[:], w)
				if err := writeAt(lit, buf[:]); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return flash, ramcode, nil
}
