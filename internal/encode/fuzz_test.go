package encode

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
)

// synthProgram deterministically builds a verifiable program from fuzz
// bytes: every 3 bytes pick one instruction from a table of encodable
// shapes, the final byte picks the terminator. The generator only emits
// combinations the encoder documents support for, so any layout or
// encode failure on the result is a finding, not noise.
func synthProgram(data []byte) *ir.Program {
	if len(data) < 4 {
		return nil
	}
	p := ir.NewProgram()
	p.AddGlobal(&ir.Global{Name: "gdata", Size: 16})
	leaf := p.AddFunc(&ir.Function{Name: "leaf"})
	ir.Build(leaf.AddBlock("leaf_entry")).Ret()

	f := p.AddFunc(&ir.Function{Name: "main"})
	body := f.AddBlock("m0")
	bb := ir.Build(body)

	lo := func(b byte) isa.Reg { return isa.Reg(b & 7) }   // r0..r7
	mid := func(b byte) isa.Reg { return isa.Reg(b % 13) } // r0..r12
	imm8 := func(b byte) int32 { return int32(b) }         // 0..255
	shamt := func(b byte) int32 { return int32(b%31) + 1 } // 1..31
	list := func(b byte) []isa.Reg {
		var regs []isa.Reg
		for r := isa.R0; r <= isa.R7; r++ {
			if b&(1<<r) != 0 {
				regs = append(regs, r)
			}
		}
		if len(regs) == 0 {
			regs = []isa.Reg{isa.R4}
		}
		return regs
	}

	// Cap the body so a cbz terminator can still reach the next block.
	n := (len(data) - 1) / 3
	if n > 25 {
		n = 25
	}
	for i := 0; i < n; i++ {
		op, a, b := data[3*i], data[3*i+1], data[3*i+2]
		switch op % 32 {
		case 0:
			bb.Nop()
		case 1:
			bb.Mov(mid(a), mid(b))
		case 2:
			bb.MovImm(lo(a), imm8(b))
		case 3:
			bb.Add(lo(op), lo(a), lo(b))
		case 4:
			bb.AddImm(lo(a), lo(a), imm8(b))
		case 5:
			bb.Sub(lo(op), lo(a), lo(b))
		case 6:
			bb.SubImm(lo(a), lo(a), imm8(b))
		case 7:
			bb.Mul(lo(a), lo(a), lo(b))
		case 8:
			bb.CmpImm(lo(a), imm8(b))
		case 9:
			bb.Cmp(lo(a), lo(b))
		case 10:
			bb.Op3(isa.AND, lo(a), lo(a), lo(b))
		case 11:
			bb.Op3(isa.ORR, lo(a), lo(a), lo(b))
		case 12:
			bb.Op3(isa.EOR, lo(a), lo(a), lo(b))
		case 13:
			bb.Op3(isa.BIC, lo(a), lo(a), lo(b))
		case 14:
			bb.OpImm(isa.LSL, lo(a), lo(b), shamt(op))
		case 15:
			bb.OpImm(isa.LSR, lo(a), lo(b), shamt(op))
		case 16:
			bb.OpImm(isa.ASR, lo(a), lo(b), shamt(op))
		case 17:
			bb.Op3(isa.MVN, lo(a), isa.NoReg, lo(b))
		case 18:
			bb.Op3(isa.SXTB, lo(a), isa.NoReg, lo(b))
		case 19:
			bb.Op3(isa.UXTB, lo(a), isa.NoReg, lo(b))
		case 20:
			bb.Op3(isa.UXTH, lo(a), isa.NoReg, lo(b))
		case 21:
			bb.Op3(isa.UDIV, mid(op), mid(a), mid(b))
		case 22:
			bb.Op3(isa.SDIV, mid(op), mid(a), mid(b))
		case 23:
			bb.Op3(isa.MLA, mid(op), mid(a), mid(b))
		case 24:
			bb.Ldr(lo(a), lo(b), int32(op%32)*4)
		case 25:
			bb.Str(lo(a), lo(b), int32(op%32)*4)
		case 26:
			bb.OpMem(isa.LDRB, lo(a), lo(b), int32(op%32))
		case 27:
			bb.OpMem(isa.STRH, lo(a), lo(b), int32(op%32)*2)
		case 28:
			bb.LdrIdx(lo(a), lo(b), lo(op), (a>>4)&3)
		case 29:
			bb.LdrConst(lo(a), int32(a)<<8|int32(b))
		case 30:
			bb.LdrLit(lo(a), "gdata")
		case 31:
			if op&1 == 0 {
				bb.Push(list(a)...)
			} else {
				bb.Pop(list(a)...)
			}
		}
		if op%37 == 5 {
			bb.Bl("leaf")
		}
	}

	// m1 gives a cbz/cbnz something to skip: a branch to the adjacent
	// block would need offset −2, below the encoding's forward-only range.
	switch t := data[len(data)-1]; t % 5 {
	case 0:
		bb.Ret()
	case 1:
		bb.B("m2")
	case 2:
		bb.Bcond([]isa.Cond{isa.EQ, isa.NE, isa.LT, isa.GE, isa.GT, isa.LE, isa.HI, isa.LS}[t%8], "m2")
	case 3:
		bb.Cbz(lo(t), "m2")
	case 4:
		bb.Cbnz(lo(t), "m2")
	}
	ir.Build(f.AddBlock("m1")).Nop()
	ir.Build(f.AddBlock("m2")).Ret()
	p.Reindex()
	return p
}

// FuzzRoundTrip synthesizes a program from the fuzz input, lays it out,
// and checks that every encoded instruction decodes back to the same
// structural fields. The checked-in corpus under testdata/fuzz mixes the
// instruction profiles of the BEEBS benchmarks: load/store loops (crc32,
// matmult), multiply-accumulate chains (fdct, 2dfir), compare-and-branch
// ladders (dijkstra) and call-heavy bodies (blowfish, sha).
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("\x18\x01\x02\x19\x03\x04\x03\x01\x02\x08\x05\x00\x04"))
	f.Add([]byte("\x07\x02\x03\x17\x04\x05\x07\x01\x06\x18\x02\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := synthProgram(data)
		if prog == nil {
			return
		}
		if err := ir.Verify(prog); err != nil {
			t.Fatalf("synthesized program fails Verify: %v", err)
		}
		img, err := layout.New(prog, layout.DefaultConfig(), nil)
		if err != nil {
			t.Fatalf("layout rejected an encodable synthesis: %v", err)
		}
		for _, pl := range img.Blocks {
			for i := range pl.Block.Instrs {
				if err := checkRoundTrip(img, pl, i); err != nil {
					t.Errorf("%s[%d]: %v", pl.Block.Label, i, err)
				}
			}
		}
	})
}
