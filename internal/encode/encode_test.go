package encode

import (
	"encoding/binary"
	"testing"

	"repro/internal/beebs"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/mcc"
	"repro/internal/transform"
)

// encodeOne lays out a minimal program around a single instruction and
// encodes it, returning the halfwords.
func encodeOne(t *testing.T, in isa.Instr) []uint16 {
	t.Helper()
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("b0")
	b.Append(in)
	// Terminate the block so layout accepts it.
	if !blockTerminated(b) {
		b.Append(isa.Instr{Op: isa.BX, Rm: isa.LR})
	}
	p.Reindex()
	img, err := layout.New(p, layout.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	pl, _ := img.PlacedBlock("b0")
	bytes, err := EncodeInstr(img, pl, 0)
	if err != nil {
		t.Fatalf("EncodeInstr(%s): %v", in.String(), err)
	}
	var hw []uint16
	for i := 0; i < len(bytes); i += 2 {
		hw = append(hw, binary.LittleEndian.Uint16(bytes[i:]))
	}
	return hw
}

func blockTerminated(b *ir.Block) bool { return b.Terminator() != nil }

// TestKnownEncodings pins instruction encodings against values from the
// ARMv7-M Architecture Reference Manual (the ones any disassembler
// displays).
func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		in   isa.Instr
		want []uint16
	}{
		{isa.Instr{Op: isa.NOP}, []uint16{0xBF00}},
		{isa.Instr{Op: isa.MOV, Rd: isa.R0, Imm: 1, HasImm: true}, []uint16{0x2001}},
		{isa.Instr{Op: isa.MOV, Rd: isa.R5, Imm: 255, HasImm: true}, []uint16{0x25FF}},
		{isa.Instr{Op: isa.MOV, Rd: isa.R2, Rm: isa.R3}, []uint16{0x461A}},
		{isa.Instr{Op: isa.MOV, Rd: isa.R8, Rm: isa.R1}, []uint16{0x4688}},
		{isa.Instr{Op: isa.ADD, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, []uint16{0x1888}},
		{isa.Instr{Op: isa.SUB, Rd: isa.R3, Rn: isa.R4, Rm: isa.R5}, []uint16{0x1B63}},
		{isa.Instr{Op: isa.ADD, Rd: isa.R0, Rn: isa.R0, Imm: 100, HasImm: true}, []uint16{0x3064}},
		{isa.Instr{Op: isa.ADD, Rd: isa.R1, Rn: isa.R2, Imm: 3, HasImm: true}, []uint16{0x1CD1}},
		{isa.Instr{Op: isa.SUB, Rd: isa.SP, Rn: isa.SP, Imm: 16, HasImm: true}, []uint16{0xB084}},
		{isa.Instr{Op: isa.ADD, Rd: isa.SP, Rn: isa.SP, Imm: 16, HasImm: true}, []uint16{0xB004}},
		{isa.Instr{Op: isa.ADD, Rd: isa.R2, Rn: isa.SP, Imm: 8, HasImm: true}, []uint16{0xAA02}},
		{isa.Instr{Op: isa.CMP, Rn: isa.R0, Imm: 0, HasImm: true}, []uint16{0x2800}},
		{isa.Instr{Op: isa.CMP, Rn: isa.R1, Rm: isa.R2}, []uint16{0x4291}},
		{isa.Instr{Op: isa.MUL, Rd: isa.R0, Rn: isa.R0, Rm: isa.R1}, []uint16{0x4348}},
		{isa.Instr{Op: isa.MUL, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2},
			[]uint16{0xFB01, 0xF002}},
		{isa.Instr{Op: isa.SDIV, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2},
			[]uint16{0xFB91, 0xF0F2}},
		{isa.Instr{Op: isa.UDIV, Rd: isa.R3, Rn: isa.R4, Rm: isa.R5},
			[]uint16{0xFBB4, 0xF3F5}},
		{isa.Instr{Op: isa.AND, Rd: isa.R0, Rn: isa.R0, Rm: isa.R1}, []uint16{0x4008}},
		{isa.Instr{Op: isa.EOR, Rd: isa.R2, Rn: isa.R2, Rm: isa.R3}, []uint16{0x405A}},
		{isa.Instr{Op: isa.ORR, Rd: isa.R1, Rn: isa.R1, Rm: isa.R4}, []uint16{0x4321}},
		{isa.Instr{Op: isa.LSL, Rd: isa.R0, Rm: isa.R1, Imm: 4, HasImm: true}, []uint16{0x0108}},
		{isa.Instr{Op: isa.LSR, Rd: isa.R2, Rm: isa.R3, Imm: 8, HasImm: true}, []uint16{0x0A1A}},
		{isa.Instr{Op: isa.ASR, Rd: isa.R4, Rm: isa.R5, Imm: 1, HasImm: true}, []uint16{0x106C}},
		{isa.Instr{Op: isa.LDR, Rd: isa.R0, Rn: isa.R1, Mode: isa.AddrOffset, Imm: 4},
			[]uint16{0x6848}},
		{isa.Instr{Op: isa.STR, Rd: isa.R2, Rn: isa.R3, Mode: isa.AddrOffset, Imm: 0},
			[]uint16{0x601A}},
		{isa.Instr{Op: isa.LDR, Rd: isa.R1, Rn: isa.SP, Mode: isa.AddrOffset, Imm: 8},
			[]uint16{0x9902}},
		{isa.Instr{Op: isa.STR, Rd: isa.R0, Rn: isa.SP, Mode: isa.AddrOffset, Imm: 4},
			[]uint16{0x9001}},
		{isa.Instr{Op: isa.LDRB, Rd: isa.R0, Rn: isa.R1, Mode: isa.AddrOffset, Imm: 3},
			[]uint16{0x78C8}},
		{isa.Instr{Op: isa.LDR, Rd: isa.R4, Rn: isa.R1, Mode: isa.AddrReg, Rm: isa.R2},
			[]uint16{0x588C}},
		{isa.Instr{Op: isa.SXTB, Rd: isa.R0, Rm: isa.R1}, []uint16{0xB248}},
		{isa.Instr{Op: isa.UXTH, Rd: isa.R2, Rm: isa.R3}, []uint16{0xB29A}},
		{isa.Instr{Op: isa.PUSH, RegList: 1<<isa.R4 | 1<<isa.LR}, []uint16{0xB510}},
		{isa.Instr{Op: isa.POP, RegList: 1<<isa.R4 | 1<<isa.PC}, []uint16{0xBD10}},
		{isa.Instr{Op: isa.BX, Rm: isa.LR}, []uint16{0x4770}},
		{isa.Instr{Op: isa.BLX, Rm: isa.R3}, []uint16{0x4798}},
		{isa.Instr{Op: isa.IT, Cond: isa.EQ}, []uint16{0xBF08}},
		{isa.Instr{Op: isa.IT, Cond: isa.NE, ITMask: "e"}, []uint16{0xBF14}},
		{isa.Instr{Op: isa.RSB, Rd: isa.R0, Rn: isa.R1, Imm: 0, HasImm: true}, []uint16{0x4248}},
		{isa.Instr{Op: isa.MVN, Rd: isa.R0, Rm: isa.R1}, []uint16{0x43C8}},
	}
	for _, c := range cases {
		got := encodeOne(t, c.in)
		if len(got) != len(c.want) {
			t.Errorf("%s: encoded %04X, want %04X", c.in.String(), got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: encoded % 04X, want % 04X", c.in.String(), got, c.want)
				break
			}
		}
	}
}

func TestBranchEncodings(t *testing.T) {
	// Build a function with two blocks to get real offsets.
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b0 := f.AddBlock("b0")
	ir.Build(b0).Bcond(isa.EQ, "b1") // conditional forward to next block
	b1 := f.AddBlock("b1")
	ir.Build(b1).B("b0") // backward unconditional
	p.Reindex()
	// b1 never returns; give the program a terminator-correct shape.
	img, err := layout.New(p, layout.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pl0, _ := img.PlacedBlock("b0")
	pl1, _ := img.PlacedBlock("b1")

	// beq b1: at 0x08000000, target 0x08000002 → off = -2+4... off =
	// tgt-(pc+4) = 2-4 = -2 → imm8 = -1 → 0xD0FF.
	by, err := EncodeInstr(img, pl0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hw := binary.LittleEndian.Uint16(by); hw != 0xD0FF {
		t.Errorf("beq: %04X, want D0FF", hw)
	}
	// b b0: at 0x08000002, target 0x08000000 → off = -6 → imm11 = -3 →
	// 0xE7FD.
	by, err = EncodeInstr(img, pl1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hw := binary.LittleEndian.Uint16(by); hw != 0xE7FD {
		t.Errorf("b: %04X, want E7FD", hw)
	}
}

func TestBLEncoding(t *testing.T) {
	// bl to the next halfword-aligned address: classic self-call offset.
	p := ir.NewProgram()
	callee := p.AddFunc(&ir.Function{Name: "callee"})
	cb := callee.AddBlock("callee_b")
	ir.Build(cb).Ret()
	m := p.AddFunc(&ir.Function{Name: "main"})
	mb := m.AddBlock("main_b")
	ir.Build(mb).Push(isa.R4, isa.LR).Bl("callee").Pop(isa.R4, isa.PC)
	p.Reindex()
	img, err := layout.New(p, layout.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := img.PlacedBlock("main_b")
	by, err := EncodeInstr(img, pl, 1) // the bl
	if err != nil {
		t.Fatal(err)
	}
	hw1 := binary.LittleEndian.Uint16(by)
	hw2 := binary.LittleEndian.Uint16(by[2:])
	// callee_b at flash base (0x08000000); bl at base+2+... main comes
	// after callee in program order: callee at 0x08000000 (2 bytes), main
	// at 0x08000002: push(2) → bl at 0x08000004, target 0x08000000,
	// off = -8 → o=0x7FFFFC(>>1=...)… verify via decode arithmetic instead:
	off := decodeBL(hw1, hw2)
	want := int64(img.Symbols["callee"]) - int64(pl.InstrAddrs[1]+4)
	if off != want {
		t.Errorf("bl offset decodes to %d, want %d (hw %04X %04X)", off, want, hw1, hw2)
	}
	if hw2&0x4000 == 0 {
		t.Errorf("BL bit not set: %04X", hw2)
	}
}

// decodeBL inverts the BL encoding for the test.
func decodeBL(hw1, hw2 uint16) int64 {
	s := int64(hw1>>10) & 1
	imm10 := int64(hw1) & 0x3FF
	j1 := int64(hw2>>13) & 1
	j2 := int64(hw2>>11) & 1
	imm11 := int64(hw2) & 0x7FF
	i1 := (^(j1 ^ s)) & 1
	i2 := (^(j2 ^ s)) & 1
	v := s<<24 | i1<<23 | i2<<22 | imm10<<12 | imm11<<1
	// Sign extend from bit 24.
	v = v << (64 - 25) >> (64 - 25)
	return v
}

func TestThumbExpandImm(t *testing.T) {
	cases := []struct {
		v  uint32
		ok bool
	}{
		{0, true}, {255, true}, {0x00AB00AB, true}, {0xAB00AB00, true},
		{0xABABABAB, true}, {0x000001FE, true}, {0xFF000000, true},
		{0x00012345, false}, {0x0000FF01, false},
	}
	for _, c := range cases {
		enc, ok := thumbExpandImm(c.v)
		if ok != c.ok {
			t.Errorf("thumbExpandImm(%#x) ok=%v, want %v", c.v, ok, c.ok)
			continue
		}
		if ok {
			if got := thumbContractImm(enc); got != c.v {
				t.Errorf("thumbExpandImm(%#x) = %#x which re-expands to %#x", c.v, enc, got)
			}
		}
	}
}

// thumbContractImm is the forward ThumbExpandImm from the ARM manual.
func thumbContractImm(enc uint16) uint32 {
	imm12 := uint32(enc)
	if imm12>>10 == 0 {
		b := imm12 & 0xFF
		switch (imm12 >> 8) & 3 {
		case 0:
			return b
		case 1:
			return b | b<<16
		case 2:
			return b<<8 | b<<24
		default:
			return b | b<<8 | b<<16 | b<<24
		}
	}
	rot := imm12 >> 7
	v := uint32(0x80) | imm12&0x7F
	return v>>rot | v<<(32-rot)
}

// TestEncodeEveryBEEBSInstruction is the big cross-check: every
// instruction of every BEEBS benchmark (all levels, baseline AND
// transformed placements) must encode, and its byte length must equal the
// Size() the layout and the cost model used.
func TestEncodeEveryBEEBSInstruction(t *testing.T) {
	levels := []mcc.OptLevel{mcc.O0, mcc.O2}
	total := 0
	for _, bench := range beebs.All() {
		for _, level := range levels {
			prog, err := mcc.Compile(bench.Source, level)
			if err != nil {
				t.Fatal(err)
			}
			img, err := layout.New(prog, layout.DefaultConfig(), nil)
			if err != nil {
				t.Fatal(err)
			}
			flash, ramcode, err := Image(img)
			if err != nil {
				t.Fatalf("%s %v: %v", bench.Name, level, err)
			}
			if len(ramcode) != 0 {
				t.Errorf("%s: baseline has RAM code", bench.Name)
			}
			nonZero := 0
			for _, by := range flash[:img.FlashCodeBytes] {
				if by != 0 {
					nonZero++
				}
			}
			if nonZero < img.FlashCodeBytes/4 {
				t.Errorf("%s %v: flash image suspiciously empty (%d/%d nonzero)",
					bench.Name, level, nonZero, img.FlashCodeBytes)
			}
			for _, pl := range img.Blocks {
				total += len(pl.Block.Instrs)
			}
		}
	}
	t.Logf("encoded %d instructions across BEEBS with byte-exact Size agreement", total)
}

// TestEncodeTransformedPlacement: the instrumented programs (with their
// it/ldr/ldr/bx sequences and RAM sections) must also encode cleanly.
func TestEncodeTransformedPlacement(t *testing.T) {
	prog, err := mcc.Compile(beebs.Get("fdct").Source, mcc.O2)
	if err != nil {
		t.Fatal(err)
	}
	// A placement that exercises the instrumentation shapes.
	inRAM := map[string]bool{}
	for _, f := range prog.Funcs {
		if f.Name == "fdct_rows" || f.Name == "fdct_cols" {
			for _, b := range f.Blocks {
				inRAM[b.Label] = true
			}
		}
	}
	q := prog.Clone()
	if _, err := transform.Apply(q, inRAM); err != nil {
		t.Fatal(err)
	}
	img, err := layout.New(q, layout.DefaultConfig(), inRAM)
	if err != nil {
		t.Fatal(err)
	}
	flash, ramcode, err := Image(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(ramcode) == 0 {
		t.Fatal("no RAM code emitted")
	}
	_ = flash
	// The literal pools inside the RAM section must contain resolvable
	// addresses (non-zero words pointing into flash or RAM).
	found := false
	for _, pl := range img.Blocks {
		if !pl.InRAM {
			continue
		}
		for i := range pl.Block.Instrs {
			if pl.LitAddrs[i] != 0 {
				off := pl.LitAddrs[i] - img.Config.RAMBase
				w := binary.LittleEndian.Uint32(ramcode[off:])
				if _, ok := img.MemoryOf(w); w != 0 && !ok {
					t.Errorf("literal word %#x points outside memory", w)
				}
				if w != 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no populated literal words in the RAM section")
	}
}
