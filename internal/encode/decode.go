package encode

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/layout"
)

// Decoded is one disassembled instruction: the structural fields recovered
// from the bit pattern. Symbolic information (label names) is gone; PC-
// relative operands are materialized as absolute Target addresses.
type Decoded struct {
	Op     isa.Op
	Cond   isa.Cond
	Rd     isa.Reg
	Rn     isa.Reg
	Rm     isa.Reg
	Imm    int32
	HasImm bool
	// Target is the absolute address of a branch destination or
	// literal-pool slot.
	Target  uint32
	RegList uint16
	Size    int
	// Mnemonic is a human-readable rendering.
	Mnemonic string
}

// Decode disassembles the instruction at data[0:], fetched from addr.
// It covers exactly the encodings the encoder emits.
func Decode(data []byte, addr uint32) (*Decoded, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("decode: truncated stream")
	}
	hw1 := uint16(data[0]) | uint16(data[1])<<8
	if isWidePrefix(hw1) {
		if len(data) < 4 {
			return nil, fmt.Errorf("decode: truncated 32-bit instruction")
		}
		hw2 := uint16(data[2]) | uint16(data[3])<<8
		return decodeWide(hw1, hw2, addr)
	}
	return decodeNarrow(hw1, addr)
}

// isWidePrefix reports whether hw1 begins a 32-bit Thumb-2 encoding.
func isWidePrefix(hw1 uint16) bool {
	top := hw1 >> 11
	return top == 0b11101 || top == 0b11110 || top == 0b11111
}

func reg(v uint16) isa.Reg { return isa.Reg(v & 15) }

func mk(op isa.Op, size int) *Decoded {
	return &Decoded{Op: op, Cond: isa.AL, Rd: isa.NoReg, Rn: isa.NoReg,
		Rm: isa.NoReg, Size: size}
}

func decodeNarrow(h uint16, addr uint32) (*Decoded, error) {
	switch {
	case h == 0xBF00:
		d := mk(isa.NOP, 2)
		d.Mnemonic = "nop"
		return d, nil

	case h&0xFF00 == 0xBF00: // IT
		d := mk(isa.IT, 2)
		d.Cond = condFromBits(h >> 4 & 0xF)
		d.Mnemonic = "it"
		return d, nil

	case h&0xF800 == 0x2000: // MOVS rd, #imm8
		d := mk(isa.MOV, 2)
		d.Rd = reg(h >> 8 & 7)
		d.Imm = int32(h & 0xFF)
		d.HasImm = true
		d.Mnemonic = fmt.Sprintf("movs %s, #%d", d.Rd, d.Imm)
		return d, nil

	case h&0xFF00 == 0x4600: // MOV rd, rm (T1)
		d := mk(isa.MOV, 2)
		d.Rd = reg(h&7 | h>>4&8)
		d.Rm = reg(h >> 3 & 15)
		d.Mnemonic = fmt.Sprintf("mov %s, %s", d.Rd, d.Rm)
		return d, nil

	case h&0xFE00 == 0x1800 || h&0xFE00 == 0x1A00: // ADDS/SUBS reg
		op := isa.ADD
		if h&0x0200 != 0 {
			op = isa.SUB
		}
		d := mk(op, 2)
		d.Rd = reg(h & 7)
		d.Rn = reg(h >> 3 & 7)
		d.Rm = reg(h >> 6 & 7)
		d.Mnemonic = fmt.Sprintf("%vs %s, %s, %s", op, d.Rd, d.Rn, d.Rm)
		return d, nil

	case h&0xFE00 == 0x1C00 || h&0xFE00 == 0x1E00: // ADDS/SUBS imm3
		op := isa.ADD
		if h&0x0200 != 0 {
			op = isa.SUB
		}
		d := mk(op, 2)
		d.Rd = reg(h & 7)
		d.Rn = reg(h >> 3 & 7)
		d.Imm = int32(h >> 6 & 7)
		d.HasImm = true
		return d, nil

	case h&0xF800 == 0x3000 || h&0xF800 == 0x3800: // ADDS/SUBS imm8
		op := isa.ADD
		if h&0x0800 != 0 {
			op = isa.SUB
		}
		d := mk(op, 2)
		d.Rd = reg(h >> 8 & 7)
		d.Rn = d.Rd
		d.Imm = int32(h & 0xFF)
		d.HasImm = true
		return d, nil

	case h&0xFF80 == 0xB000 || h&0xFF80 == 0xB080: // ADD/SUB sp, #imm7
		op := isa.ADD
		if h&0x0080 != 0 {
			op = isa.SUB
		}
		d := mk(op, 2)
		d.Rd, d.Rn = isa.SP, isa.SP
		d.Imm = int32(h&0x7F) * 4
		d.HasImm = true
		return d, nil

	case h&0xF800 == 0xA800: // ADD rd, sp, #imm8
		d := mk(isa.ADD, 2)
		d.Rd = reg(h >> 8 & 7)
		d.Rn = isa.SP
		d.Imm = int32(h&0xFF) * 4
		d.HasImm = true
		return d, nil

	case h&0xF800 == 0xA000: // ADR
		d := mk(isa.ADR, 2)
		d.Rd = reg(h >> 8 & 7)
		d.Target = ((addr + 4) &^ 3) + uint32(h&0xFF)*4
		return d, nil

	case h&0xF800 == 0x2800: // CMP rn, #imm8
		d := mk(isa.CMP, 2)
		d.Rn = reg(h >> 8 & 7)
		d.Imm = int32(h & 0xFF)
		d.HasImm = true
		return d, nil

	case h&0xFF00 == 0x4500: // CMP rn, rm (T2, high)
		d := mk(isa.CMP, 2)
		d.Rn = reg(h&7 | h>>4&8)
		d.Rm = reg(h >> 3 & 15)
		return d, nil

	case h&0xF800 == 0x0000 && h&0xFFC0 != 0x0000,
		h&0xF800 == 0x0800, h&0xF800 == 0x1000:
		// LSL/LSR/ASR rd, rm, #imm5 (LSL #0 with zero imm handled as MOV
		// by real tools; we never emit it).
		var op isa.Op
		switch h >> 11 & 3 {
		case 0:
			op = isa.LSL
		case 1:
			op = isa.LSR
		default:
			op = isa.ASR
		}
		d := mk(op, 2)
		d.Rd = reg(h & 7)
		d.Rm = reg(h >> 3 & 7)
		d.Imm = int32(h >> 6 & 31)
		d.HasImm = true
		return d, nil

	case h&0xFC00 == 0x4000: // data-processing register (T1)
		return decodeALU(h)

	case h&0xF800 == 0x4800: // LDR literal
		d := mk(isa.LDRLIT, 2)
		d.Rd = reg(h >> 8 & 7)
		d.Target = ((addr + 4) &^ 3) + uint32(h&0xFF)*4
		return d, nil

	case h&0xE000 == 0x6000: // LDR/STR word/byte imm5
		d := mk(isa.LDR, 2)
		if h&0x1000 != 0 { // byte form
			if h&0x0800 != 0 {
				d.Op = isa.LDRB
			} else {
				d.Op = isa.STRB
			}
			d.Imm = int32(h >> 6 & 31)
		} else {
			if h&0x0800 != 0 {
				d.Op = isa.LDR
			} else {
				d.Op = isa.STR
			}
			d.Imm = int32(h>>6&31) * 4
		}
		d.Rd = reg(h & 7)
		d.Rn = reg(h >> 3 & 7)
		d.HasImm = true
		return d, nil

	case h&0xF000 == 0x8000: // LDRH/STRH imm5
		d := mk(isa.STRH, 2)
		if h&0x0800 != 0 {
			d.Op = isa.LDRH
		}
		d.Rd = reg(h & 7)
		d.Rn = reg(h >> 3 & 7)
		d.Imm = int32(h>>6&31) * 2
		d.HasImm = true
		return d, nil

	case h&0xF000 == 0x9000: // LDR/STR sp-relative
		d := mk(isa.STR, 2)
		if h&0x0800 != 0 {
			d.Op = isa.LDR
		}
		d.Rd = reg(h >> 8 & 7)
		d.Rn = isa.SP
		d.Imm = int32(h&0xFF) * 4
		d.HasImm = true
		return d, nil

	case h&0xF000 == 0x5000: // load/store register offset
		ops := [8]isa.Op{isa.STR, isa.STRH, isa.STRB, isa.LDRSB,
			isa.LDR, isa.LDRH, isa.LDRB, isa.LDRSH}
		d := mk(ops[h>>9&7], 2)
		d.Rd = reg(h & 7)
		d.Rn = reg(h >> 3 & 7)
		d.Rm = reg(h >> 6 & 7)
		return d, nil

	case h&0xFF00 == 0xB200: // SXTH/SXTB/UXTH/UXTB
		ops := [4]isa.Op{isa.SXTH, isa.SXTB, isa.UXTH, isa.UXTB}
		d := mk(ops[h>>6&3], 2)
		d.Rd = reg(h & 7)
		d.Rm = reg(h >> 3 & 7)
		return d, nil

	case h&0xFE00 == 0xB400: // PUSH
		d := mk(isa.PUSH, 2)
		d.RegList = h & 0xFF
		if h&0x100 != 0 {
			d.RegList |= 1 << isa.LR
		}
		return d, nil

	case h&0xFE00 == 0xBC00: // POP
		d := mk(isa.POP, 2)
		d.RegList = h & 0xFF
		if h&0x100 != 0 {
			d.RegList |= 1 << isa.PC
		}
		return d, nil

	case h&0xF500 == 0xB100: // CBZ/CBNZ
		op := isa.CBZ
		if h&0x0800 != 0 {
			op = isa.CBNZ
		}
		d := mk(op, 2)
		d.Rn = reg(h & 7)
		off := uint32(h>>3&0x1F)*2 + uint32(h>>9&1)<<6
		d.Target = addr + 4 + off
		return d, nil

	case h&0xFF80 == 0x4700: // BX
		d := mk(isa.BX, 2)
		d.Rm = reg(h >> 3 & 15)
		return d, nil
	case h&0xFF80 == 0x4780: // BLX
		d := mk(isa.BLX, 2)
		d.Rm = reg(h >> 3 & 15)
		return d, nil

	case h&0xF000 == 0xD000 && h>>8&0xF < 14: // B<cond> T1
		d := mk(isa.B, 2)
		d.Cond = condFromBits(h >> 8 & 0xF)
		off := int32(int8(h&0xFF)) * 2
		d.Target = uint32(int64(addr) + 4 + int64(off))
		return d, nil

	case h&0xF800 == 0xE000: // B T2
		d := mk(isa.B, 2)
		off := int32(h&0x7FF) << 21 >> 20 // sign-extend imm11, ×2
		d.Target = uint32(int64(addr) + 4 + int64(off))
		return d, nil
	}
	return nil, fmt.Errorf("decode: unrecognized 16-bit encoding %04X", h)
}

func decodeALU(h uint16) (*Decoded, error) {
	ops := [16]isa.Op{
		isa.AND, isa.EOR, isa.LSL, isa.LSR, isa.ASR, isa.ADC, isa.SBC,
		isa.ROR, isa.TST, isa.RSB, isa.CMP, isa.CMN, isa.ORR, isa.MUL,
		isa.BIC, isa.MVN,
	}
	code := h >> 6 & 0xF
	op := ops[code]
	d := mk(op, 2)
	rdn := reg(h & 7)
	rm := reg(h >> 3 & 7)
	switch op {
	case isa.TST, isa.CMP, isa.CMN:
		d.Rn, d.Rm = rdn, rm
	case isa.MVN:
		d.Rd, d.Rm = rdn, rm
	case isa.RSB: // NEGS rd, rn
		d.Rd, d.Rn = rdn, rm
		d.Imm, d.HasImm = 0, true
	case isa.MUL:
		d.Rd, d.Rn, d.Rm = rdn, rdn, rm
	default:
		d.Rd, d.Rn, d.Rm = rdn, rdn, rm
	}
	return d, nil
}

func decodeWide(hw1, hw2 uint16, addr uint32) (*Decoded, error) {
	switch {
	case hw1 == 0xE92D: // PUSH.W (stmdb sp!)
		d := mk(isa.PUSH, 4)
		d.RegList = hw2
		return d, nil
	case hw1 == 0xE8BD: // POP.W (ldmia sp!)
		d := mk(isa.POP, 4)
		d.RegList = hw2
		return d, nil

	case hw1&0xFBF0 == 0xF240: // MOVW
		d := mk(isa.MOV, 4)
		d.Rd = reg(hw2 >> 8)
		imm := uint32(hw1&0xF)<<12 | uint32(hw1>>10&1)<<11 |
			uint32(hw2>>12&7)<<8 | uint32(hw2&0xFF)
		d.Imm = int32(imm)
		d.HasImm = true
		return d, nil

	case hw1&0xFBF0 == 0xF200 || hw1&0xFBF0 == 0xF2A0: // ADDW/SUBW
		op := isa.ADD
		if hw1&0x0080 != 0 { // 0xF2A0 bit pattern
			op = isa.SUB
		}
		d := mk(op, 4)
		d.Rn = reg(hw1)
		d.Rd = reg(hw2 >> 8)
		d.Imm = int32(uint32(hw1>>10&1)<<11 | uint32(hw2>>12&7)<<8 | uint32(hw2&0xFF))
		d.HasImm = true
		return d, nil

	case hw1&0xFBF0 == 0xF1B0 && hw2&0x0F00 == 0x0F00: // CMP.W imm
		d := mk(isa.CMP, 4)
		d.Rn = reg(hw1)
		enc := uint16(hw1>>10&1)<<11 | hw2>>12&7<<8 | hw2&0xFF
		d.Imm = int32(thumbContractImmDecode(enc))
		d.HasImm = true
		return d, nil

	case hw1&0xFBF0 == 0xF1C0: // RSB.W imm
		d := mk(isa.RSB, 4)
		d.Rn = reg(hw1)
		d.Rd = reg(hw2 >> 8)
		enc := uint16(hw1>>10&1)<<11 | hw2>>12&7<<8 | hw2&0xFF
		d.Imm = int32(thumbContractImmDecode(enc))
		d.HasImm = true
		return d, nil

	case hw1&0xFFE0 == 0xEB00, hw1&0xFFE0 == 0xEBA0, hw1&0xFFE0 == 0xEBC0,
		hw1&0xFFE0 == 0xEA00, hw1&0xFFE0 == 0xEA40, hw1&0xFFE0 == 0xEA80,
		hw1&0xFFE0 == 0xEA20, hw1&0xFFE0 == 0xEB40, hw1&0xFFE0 == 0xEB60:
		var op isa.Op
		switch hw1 & 0xFFE0 {
		case 0xEB00:
			op = isa.ADD
		case 0xEBA0:
			op = isa.SUB
		case 0xEBC0:
			op = isa.RSB
		case 0xEA00:
			op = isa.AND
		case 0xEA40:
			op = isa.ORR
		case 0xEA80:
			op = isa.EOR
		case 0xEA20:
			op = isa.BIC
		case 0xEB40:
			op = isa.ADC
		case 0xEB60:
			op = isa.SBC
		}
		d := mk(op, 4)
		d.Rn = reg(hw1)
		d.Rd = reg(hw2 >> 8)
		d.Rm = reg(hw2)
		d.Imm = int32(hw2>>12&7)<<2 | int32(hw2>>6&3)
		return d, nil

	case hw1 == 0xEA6F: // MVN.W
		d := mk(isa.MVN, 4)
		d.Rd = reg(hw2 >> 8)
		d.Rm = reg(hw2)
		return d, nil

	case hw1 == 0xEA4F: // MOV.W rd, rm, shift (our wide shift-immediate)
		ty := hw2 >> 4 & 3
		ops := [3]isa.Op{isa.LSL, isa.LSR, isa.ASR}
		if ty > 2 {
			return nil, fmt.Errorf("decode: unsupported shift type %d", ty)
		}
		d := mk(ops[ty], 4)
		d.Rd = reg(hw2 >> 8)
		d.Rm = reg(hw2)
		d.Imm = int32(hw2>>12&7)<<2 | int32(hw2>>6&3)
		d.HasImm = true
		return d, nil

	case (hw1&0xFFE0 == 0xFA00 || hw1&0xFFE0 == 0xFA20 || hw1&0xFFE0 == 0xFA40) &&
		hw2&0xF0F0 == 0xF000 && hw1&0xF != 0xF:
		// register-shift forms; rn=15 with a 0xF08x second halfword is the
		// extend group handled below
		ops := map[uint16]isa.Op{0xFA00: isa.LSL, 0xFA20: isa.LSR, 0xFA40: isa.ASR}
		d := mk(ops[hw1&0xFFE0], 4)
		d.Rn = reg(hw1)
		d.Rd = reg(hw2 >> 8)
		d.Rm = reg(hw2)
		return d, nil

	case hw1&0xFFF0 == 0xFB00 && hw2&0xF0F0 == 0xF000: // MUL
		d := mk(isa.MUL, 4)
		d.Rn = reg(hw1)
		d.Rd = reg(hw2 >> 8)
		d.Rm = reg(hw2)
		return d, nil

	case hw1&0xFFF0 == 0xFB00: // MLA
		d := mk(isa.MLA, 4)
		d.Rn = reg(hw1)
		d.Rd = reg(hw2 >> 8)
		d.Rm = reg(hw2)
		return d, nil

	case hw1&0xFFF0 == 0xFB90: // SDIV
		d := mk(isa.SDIV, 4)
		d.Rn = reg(hw1)
		d.Rd = reg(hw2 >> 8)
		d.Rm = reg(hw2)
		return d, nil
	case hw1&0xFFF0 == 0xFBB0: // UDIV
		d := mk(isa.UDIV, 4)
		d.Rn = reg(hw1)
		d.Rd = reg(hw2 >> 8)
		d.Rm = reg(hw2)
		return d, nil

	case hw1&0xFFF0 == 0xFAB0: // CLZ
		d := mk(isa.CLZ, 4)
		d.Rd = reg(hw2 >> 8)
		d.Rm = reg(hw2)
		return d, nil

	case hw1 == 0xFA0F, hw1 == 0xFA1F, hw1 == 0xFA4F, hw1 == 0xFA5F:
		ops := map[uint16]isa.Op{
			0xFA0F: isa.SXTH, 0xFA1F: isa.UXTH, 0xFA4F: isa.SXTB, 0xFA5F: isa.UXTB,
		}
		d := mk(ops[hw1], 4)
		d.Rd = reg(hw2 >> 8)
		d.Rm = reg(hw2)
		return d, nil

	case hw1&0xFF7F == 0xF85F: // LDR.W literal
		d := mk(isa.LDRLIT, 4)
		d.Rd = reg(hw2 >> 12)
		off := int64(hw2 & 0xFFF)
		if hw1&0x0080 == 0 {
			off = -off
		}
		d.Target = uint32(int64((addr+4)&^3) + off)
		return d, nil

	case hw1&0xFF00 == 0xF800 || hw1&0xFF00 == 0xF900:
		return decodeWideMem(hw1, hw2)

	case hw1&0xF800 == 0xF000 && hw2&0x9000 == 0x9000:
		// BL / B.W (T4): hw2 = 1 L J1 1 J2 imm11
		op := isa.B
		if hw2&0x4000 != 0 {
			op = isa.BL
		}
		d := mk(op, 4)
		s := int64(hw1>>10) & 1
		imm10 := int64(hw1) & 0x3FF
		j1 := int64(hw2>>13) & 1
		j2 := int64(hw2>>11) & 1
		imm11 := int64(hw2) & 0x7FF
		i1 := (^(j1 ^ s)) & 1
		i2 := (^(j2 ^ s)) & 1
		v := s<<24 | i1<<23 | i2<<22 | imm10<<12 | imm11<<1
		v = v << (64 - 25) >> (64 - 25)
		d.Target = uint32(int64(addr) + 4 + v)
		return d, nil

	case hw1&0xF800 == 0xF000 && hw2&0x9000 == 0x8000:
		// B<cond>.W (T3): hw2 = 1 0 J1 0 J2 imm11
		d := mk(isa.B, 4)
		d.Cond = condFromBits(hw1 >> 6 & 0xF)
		s := int64(hw1>>10) & 1
		imm6 := int64(hw1) & 0x3F
		j1 := int64(hw2>>13) & 1
		j2 := int64(hw2>>11) & 1
		imm11 := int64(hw2) & 0x7FF
		v := s<<20 | j2<<19 | j1<<18 | imm6<<12 | imm11<<1
		v = v << (64 - 21) >> (64 - 21)
		d.Target = uint32(int64(addr) + 4 + v)
		return d, nil
	}
	return nil, fmt.Errorf("decode: unrecognized 32-bit encoding %04X %04X", hw1, hw2)
}

func decodeWideMem(hw1, hw2 uint16) (*Decoded, error) {
	immForm := map[uint16]isa.Op{
		0xF8D0: isa.LDR, 0xF8C0: isa.STR, 0xF890: isa.LDRB, 0xF880: isa.STRB,
		0xF8B0: isa.LDRH, 0xF8A0: isa.STRH, 0xF990: isa.LDRSB, 0xF9B0: isa.LDRSH,
	}
	regForm := map[uint16]isa.Op{
		0xF850: isa.LDR, 0xF840: isa.STR, 0xF810: isa.LDRB, 0xF800: isa.STRB,
		0xF830: isa.LDRH, 0xF820: isa.STRH, 0xF910: isa.LDRSB, 0xF930: isa.LDRSH,
	}
	base := hw1 & 0xFFF0
	if op, ok := immForm[base]; ok {
		d := mk(op, 4)
		d.Rn = reg(hw1)
		d.Rd = reg(hw2 >> 12)
		d.Imm = int32(hw2 & 0xFFF)
		d.HasImm = true
		return d, nil
	}
	if op, ok := regForm[base]; ok && hw2&0x0FC0&^0x30 == 0 {
		d := mk(op, 4)
		d.Rn = reg(hw1)
		d.Rd = reg(hw2 >> 12)
		d.Rm = reg(hw2)
		d.Imm = int32(hw2 >> 4 & 3) // shift amount
		return d, nil
	}
	return nil, fmt.Errorf("decode: unrecognized memory encoding %04X %04X", hw1, hw2)
}

func condFromBits(b uint16) isa.Cond {
	conds := [14]isa.Cond{
		isa.EQ, isa.NE, isa.CS, isa.CC, isa.MI, isa.PL, isa.VS, isa.VC,
		isa.HI, isa.LS, isa.GE, isa.LT, isa.GT, isa.LE,
	}
	if int(b) < len(conds) {
		return conds[b]
	}
	return isa.AL
}

// thumbContractImmDecode expands a 12-bit modified immediate (same as the
// test helper; duplicated here so production code does not depend on test
// files).
func thumbContractImmDecode(enc uint16) uint32 {
	imm12 := uint32(enc)
	if imm12>>10 == 0 {
		b := imm12 & 0xFF
		switch (imm12 >> 8) & 3 {
		case 0:
			return b
		case 1:
			return b | b<<16
		case 2:
			return b<<8 | b<<24
		default:
			return b | b<<8 | b<<16 | b<<24
		}
	}
	rot := imm12 >> 7
	v := uint32(0x80) | imm12&0x7F
	return v>>rot | v<<(32-rot)
}

// Disassemble renders the encoded form of every instruction in the image,
// in address order per block — the view a debugger would show of the
// flashed binary.
func Disassemble(img *layout.Image) ([]string, error) {
	var out []string
	for _, pl := range img.Blocks {
		out = append(out, fmt.Sprintf("%08x <%s>:", pl.Addr, pl.Block.Label))
		for i := range pl.Block.Instrs {
			bytes, err := EncodeInstr(img, pl, i)
			if err != nil {
				return nil, err
			}
			d, err := Decode(bytes, pl.InstrAddrs[i])
			if err != nil {
				return nil, err
			}
			hex := ""
			for j := 0; j+1 < len(bytes); j += 2 {
				hex += fmt.Sprintf("%02x%02x ", bytes[j+1], bytes[j])
			}
			src := pl.Block.Instrs[i].String()
			tgt := ""
			if d.Target != 0 {
				tgt = fmt.Sprintf(" ; -> %08x", d.Target)
			}
			out = append(out, fmt.Sprintf("%8x:  %-10s %s%s", pl.InstrAddrs[i], hex, src, tgt))
		}
	}
	return out, nil
}
