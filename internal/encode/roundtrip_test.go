package encode

import (
	"fmt"
	"testing"

	"repro/internal/beebs"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/mcc"
	"repro/internal/transform"
)

// checkRoundTrip encodes one placed instruction and verifies the decoder
// recovers its structural fields.
func checkRoundTrip(img *layout.Image, pl *layout.Placed, idx int) error {
	in := &pl.Block.Instrs[idx]
	bytes, err := EncodeInstr(img, pl, idx)
	if err != nil {
		return err
	}
	d, err := Decode(bytes, pl.InstrAddrs[idx])
	if err != nil {
		return fmt.Errorf("%s: %w", in.String(), err)
	}
	if d.Size != len(bytes) {
		return fmt.Errorf("%s: decoded size %d, encoded %d", in.String(), d.Size, len(bytes))
	}

	mismatch := func(field string, got, want interface{}) error {
		return fmt.Errorf("%s: decoded %s = %v, want %v (bytes % X)",
			in.String(), field, got, want, bytes)
	}

	switch in.Op {
	case isa.B:
		if d.Op != isa.B {
			return mismatch("op", d.Op, in.Op)
		}
		if d.Cond != in.Cond {
			return mismatch("cond", d.Cond, in.Cond)
		}
		want := img.Symbols[in.Sym]
		if d.Target != want {
			return mismatch("target", d.Target, want)
		}
	case isa.BL, isa.CBZ, isa.CBNZ:
		if d.Op != in.Op {
			return mismatch("op", d.Op, in.Op)
		}
		want := img.Symbols[in.Sym]
		if d.Target != want {
			return mismatch("target", d.Target, want)
		}
	case isa.LDRLIT:
		if d.Op != isa.LDRLIT {
			return mismatch("op", d.Op, in.Op)
		}
		if d.Target != pl.LitAddrs[idx] {
			return mismatch("literal slot", d.Target, pl.LitAddrs[idx])
		}
		if in.Rd == isa.PC && d.Rd != isa.PC {
			return mismatch("rd", d.Rd, isa.PC)
		}
	case isa.ADD, isa.SUB:
		// The encoder canonicalizes negative immediates to the opposite
		// operation.
		okSame := d.Op == in.Op && (!in.HasImm || d.Imm == in.Imm)
		flipped := isa.SUB
		if in.Op == isa.SUB {
			flipped = isa.ADD
		}
		okFlip := in.HasImm && d.Op == flipped && d.Imm == -in.Imm
		if !okSame && !okFlip {
			return mismatch("op/imm", fmt.Sprintf("%v #%d", d.Op, d.Imm),
				fmt.Sprintf("%v #%d", in.Op, in.Imm))
		}
		if in.Rd != isa.NoReg && d.Rd != in.Rd {
			return mismatch("rd", d.Rd, in.Rd)
		}
	case isa.PUSH, isa.POP:
		if d.Op != in.Op || d.RegList != in.RegList {
			return mismatch("reglist", d.RegList, in.RegList)
		}
	case isa.IT:
		if d.Op != isa.IT || d.Cond != in.Cond {
			return mismatch("cond", d.Cond, in.Cond)
		}
	case isa.MOV:
		if d.Op != isa.MOV {
			return mismatch("op", d.Op, in.Op)
		}
		if in.HasImm && d.Imm != in.Imm {
			return mismatch("imm", d.Imm, in.Imm)
		}
		if d.Rd != in.Rd {
			return mismatch("rd", d.Rd, in.Rd)
		}
		if !in.HasImm && d.Rm != in.Rm {
			return mismatch("rm", d.Rm, in.Rm)
		}
	default:
		if d.Op != in.Op {
			return mismatch("op", d.Op, in.Op)
		}
		if in.Rd != isa.NoReg && d.Rd != isa.NoReg && d.Rd != in.Rd {
			return mismatch("rd", d.Rd, in.Rd)
		}
		if in.HasImm && d.HasImm && d.Imm != in.Imm {
			return mismatch("imm", d.Imm, in.Imm)
		}
	}
	return nil
}

func roundTripProgram(t *testing.T, prog *ir.Program, inRAM map[string]bool) int {
	t.Helper()
	img, err := layout.New(prog, layout.DefaultConfig(), inRAM)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, pl := range img.Blocks {
		for i := range pl.Block.Instrs {
			if err := checkRoundTrip(img, pl, i); err != nil {
				t.Errorf("%s[%d]: %v", pl.Block.Label, i, err)
			}
			n++
		}
	}
	return n
}

// TestRoundTripBEEBS decodes every encoded instruction of every BEEBS
// benchmark at two levels, baseline layout.
func TestRoundTripBEEBS(t *testing.T) {
	total := 0
	for _, bench := range beebs.All() {
		for _, level := range []mcc.OptLevel{mcc.O0, mcc.O2} {
			prog, err := mcc.Compile(bench.Source, level)
			if err != nil {
				t.Fatal(err)
			}
			total += roundTripProgram(t, prog, nil)
		}
		if t.Failed() {
			t.Fatalf("aborting after %s", bench.Name)
		}
	}
	t.Logf("round-tripped %d instructions", total)
}

// TestRoundTripTransformed also covers the instrumentation sequences and
// RAM-resident code.
func TestRoundTripTransformed(t *testing.T) {
	for _, name := range []string{"fdct", "crc32", "dijkstra"} {
		prog, err := mcc.Compile(beebs.Get(name).Source, mcc.O2)
		if err != nil {
			t.Fatal(err)
		}
		// Move half the blocks of each non-library function.
		inRAM := map[string]bool{}
		for _, f := range prog.Funcs {
			if f.Library {
				continue
			}
			for i, b := range f.Blocks {
				if i%2 == 0 {
					inRAM[b.Label] = true
				}
			}
		}
		q := prog.Clone()
		if _, err := transform.Apply(q, inRAM); err != nil {
			t.Fatal(err)
		}
		n := roundTripProgram(t, q, inRAM)
		if t.Failed() {
			t.Fatalf("aborting after %s (%d instructions)", name, n)
		}
	}
}

func TestDisassemble(t *testing.T) {
	prog, err := mcc.Compile(beebs.Get("crc32").Source, mcc.O2)
	if err != nil {
		t.Fatal(err)
	}
	img, err := layout.New(prog, layout.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 50 {
		t.Fatalf("disassembly suspiciously short: %d lines", len(lines))
	}
	// Every instruction line carries hex bytes and the source mnemonic.
	found := false
	for _, l := range lines {
		if len(l) > 0 && l[0] == ' ' && len(l) > 20 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no instruction lines in disassembly")
	}
}
