package layout

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/power"
)

func TestAllFlashBaseline(t *testing.T) {
	p := ir.Figure2Program()
	img, err := New(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.RAMCodeBytes != 0 {
		t.Errorf("RAMCodeBytes = %d, want 0 for baseline", img.RAMCodeBytes)
	}
	if img.FlashCodeBytes <= 0 {
		t.Error("FlashCodeBytes must be positive")
	}
	// Entry symbol points into flash.
	mem, ok := img.MemoryOf(img.Symbols["main"])
	if !ok || mem != power.Flash {
		t.Errorf("main at %#x in %v, want flash", img.Symbols["main"], mem)
	}
	// fn symbol equals its entry block address.
	if img.Symbols["fn"] != img.Symbols["fn_init"] {
		t.Error("function symbol must equal entry-block address")
	}
	// Data in RAM.
	mem, ok = img.MemoryOf(img.Symbols["result"])
	if !ok || mem != power.RAM {
		t.Errorf("result in %v, want RAM", mem)
	}
	if img.DataBytes != 4 {
		t.Errorf("DataBytes = %d, want 4", img.DataBytes)
	}
}

// instrumentedProgram is a program whose RAM-destined function is reached
// only through indirect transfers (ldr =sym + blx, bx lr), the shape the
// paper's transformation produces; it can therefore be laid out with
// ramfn's block in RAM without further rewriting.
func instrumentedProgram() *ir.Program {
	p := ir.NewProgram()
	rf := p.AddFunc(&ir.Function{Name: "ramfn"})
	body := rf.AddBlock("ramfn_body")
	ir.Build(body).
		LdrLit(isa.R1, "result"). // literal travels with the block
		MovImm(isa.R0, 42).
		Str(isa.R0, isa.R1, 0).
		Ret()

	m := p.AddFunc(&ir.Function{Name: "main"})
	mb := m.AddBlock("main_entry")
	ir.Build(mb).
		Push(isa.R4, isa.LR).
		LdrLit(isa.R4, "ramfn").
		Blx(isa.R4).
		Pop(isa.R4, isa.PC)

	p.AddGlobal(&ir.Global{Name: "result", Size: 4})
	p.Reindex()
	return p
}

func TestRAMPlacement(t *testing.T) {
	p := instrumentedProgram()
	img, err := New(p, DefaultConfig(), map[string]bool{"ramfn_body": true})
	if err != nil {
		t.Fatal(err)
	}
	pl, ok := img.PlacedBlock("ramfn_body")
	if !ok || !pl.InRAM {
		t.Fatal("ramfn_body not placed in RAM")
	}
	mem, _ := img.MemoryOf(pl.Addr)
	if mem != power.RAM {
		t.Errorf("ramfn_body at %#x (%v), want RAM", pl.Addr, mem)
	}
	if img.RAMCodeBytes <= 0 {
		t.Error("RAMCodeBytes must be positive with a RAM block")
	}
	pl, _ = img.PlacedBlock("main_entry")
	mem, _ = img.MemoryOf(pl.Addr)
	if mem != power.Flash {
		t.Errorf("main_entry in %v, want flash", mem)
	}
	// Writable data sits above the RAM code.
	if img.Symbols["result"] < img.Config.RAMBase+uint32(img.RAMCodeBytes) {
		t.Error("data must be placed above .ramcode")
	}
}

func TestSeveredFallThroughRejected(t *testing.T) {
	// Moving only fn_loop of the Figure 2 function to RAM severs both its
	// fall-through edge and fn_init's; layout must refuse (this is why
	// the transformation exists).
	p := ir.Figure2Program()
	_, err := New(p, DefaultConfig(), map[string]bool{"fn_loop": true})
	if err == nil || !strings.Contains(err.Error(), "fall-through") {
		t.Fatalf("err = %v, want severed fall-through", err)
	}
}

func TestCrossMemoryDirectCallRejected(t *testing.T) {
	// Moving the whole callee to RAM leaves main's direct bl unable to
	// span the flash↔RAM distance.
	p := ir.Figure2Program()
	all := map[string]bool{
		"fn_init": true, "fn_loop": true, "fn_if": true,
		"fn_iftrue": true, "fn_return": true,
	}
	_, err := New(p, DefaultConfig(), all)
	if err == nil || !strings.Contains(err.Error(), "indirect-branch instrumentation") {
		t.Fatalf("err = %v, want reachability error", err)
	}
}

func TestInstrAddressesMonotoneAndResolvable(t *testing.T) {
	p := instrumentedProgram()
	img, err := New(p, DefaultConfig(), map[string]bool{"ramfn_body": true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range img.Blocks {
		prev := pl.Addr
		for i, a := range pl.InstrAddrs {
			if i > 0 && a <= prev {
				t.Fatalf("%s: non-monotone instruction addresses", pl.Block.Label)
			}
			prev = a
			ref, ok := img.InstrAt(a)
			if !ok || ref.Placed != pl || ref.Index != i {
				t.Fatalf("InstrAt(%#x) failed for %s[%d]", a, pl.Block.Label, i)
			}
		}
		if pl.End < pl.Addr {
			t.Fatalf("%s: End below Addr", pl.Block.Label)
		}
	}
}

func TestDenseBlockIDsAndCodeBounds(t *testing.T) {
	p := instrumentedProgram()
	img, err := New(p, DefaultConfig(), map[string]bool{"ramfn_body": true})
	if err != nil {
		t.Fatal(err)
	}
	for i, pl := range img.Blocks {
		if pl.ID != i {
			t.Errorf("%s: ID = %d, want dense index %d", pl.Block.Label, pl.ID, i)
		}
		mem := power.Flash
		if pl.InRAM {
			mem = power.RAM
		}
		base, length := img.CodeBounds(mem)
		for j, a := range pl.InstrAddrs {
			if a < base || a >= base+length {
				t.Errorf("%s[%d]: addr %#x outside CodeBounds(%v) [%#x, %#x)",
					pl.Block.Label, j, a, mem, base, base+length)
			}
		}
	}
	fBase, fLen := img.CodeBounds(power.Flash)
	rBase, rLen := img.CodeBounds(power.RAM)
	if fBase != img.Config.FlashBase || int(fLen) != img.FlashCodeBytes {
		t.Errorf("flash bounds (%#x, %d) != (%#x, %d)", fBase, fLen, img.Config.FlashBase, img.FlashCodeBytes)
	}
	if rBase != img.Config.RAMBase || int(rLen) != img.RAMCodeBytes {
		t.Errorf("RAM bounds (%#x, %d) != (%#x, %d)", rBase, rLen, img.Config.RAMBase, img.RAMCodeBytes)
	}
}

func TestLiteralPoolPlacement(t *testing.T) {
	p := ir.Figure2Program()
	img, err := New(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := img.PlacedBlock("main_entry")
	found := false
	for i := range pl.Block.Instrs {
		if pl.Block.Instrs[i].Op == isa.LDRLIT {
			found = true
			if pl.LitAddrs[i] == 0 {
				t.Fatal("LDRLIT has no literal address")
			}
			if pl.LitAddrs[i]%4 != 0 {
				t.Error("literal not word aligned")
			}
			if pl.LitAddrs[i] < pl.InstrAddrs[len(pl.InstrAddrs)-1] {
				t.Error("literal pool must follow the block")
			}
			mem, _ := img.MemoryOf(pl.LitAddrs[i])
			if mem != power.Flash {
				t.Errorf("flash block's literal pool in %v", mem)
			}
		}
	}
	if !found {
		t.Fatal("expected a literal in main_entry")
	}
}

func TestLiteralPoolMovesWithBlock(t *testing.T) {
	p := instrumentedProgram()
	img, err := New(p, DefaultConfig(), map[string]bool{"ramfn_body": true})
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := img.PlacedBlock("ramfn_body")
	found := false
	for i := range pl.Block.Instrs {
		if pl.Block.Instrs[i].Op == isa.LDRLIT {
			found = true
			mem, _ := img.MemoryOf(pl.LitAddrs[i])
			if mem != power.RAM {
				t.Errorf("RAM block's literal pool in %v, want RAM", mem)
			}
		}
	}
	if !found {
		t.Fatal("expected a literal in ramfn_body")
	}
}

func TestDeferredLiteralPool(t *testing.T) {
	// A fall-through block with a literal must not have its pool between
	// itself and its successor.
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	a := f.AddBlock("a")
	ir.Build(a).LdrLit(isa.R0, "g") // falls through
	b := f.AddBlock("b")
	ir.Build(b).AddImm(isa.R0, isa.R0, 1).Ret()
	p.AddGlobal(&ir.Global{Name: "g", Size: 4})
	p.Reindex()

	img, err := New(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := img.PlacedBlock("a")
	pb, _ := img.PlacedBlock("b")
	if pb.Addr != pa.CodeEnd {
		t.Fatalf("successor at %#x, want adjacent to %#x", pb.Addr, pa.CodeEnd)
	}
	if pa.LitAddrs[0] < pb.Addr {
		t.Errorf("literal at %#x sits inside the fall-through path", pa.LitAddrs[0])
	}
}

func TestRAMOverflowRejected(t *testing.T) {
	p := ir.Figure2Program()
	cfg := DefaultConfig()
	cfg.RAMSize = 1024
	cfg.StackReserve = 1021 // leaves 3 bytes: the 4-byte global overflows
	_, err := New(p, cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "RAM overflow") {
		t.Fatalf("err = %v, want RAM overflow", err)
	}
}

func TestFlashOverflowRejected(t *testing.T) {
	p := ir.Figure2Program()
	cfg := DefaultConfig()
	cfg.FlashSize = 8
	_, err := New(p, cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "flash overflow") {
		t.Fatalf("err = %v, want flash overflow", err)
	}
}

func TestBranchWidening(t *testing.T) {
	// A function with a big block between a branch and its target forces
	// the conditional branch out of ±254 narrow range.
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	head := f.AddBlock("head")
	ir.Build(head).CmpImm(isa.R0, 0).Bcond(isa.NE, "tail")
	big := f.AddBlock("big")
	bb := ir.Build(big)
	for i := 0; i < 300; i++ {
		bb.Nop() // 600 bytes of nops
	}
	tail := f.AddBlock("tail")
	ir.Build(tail).Ret()
	p.Reindex()

	img, err := New(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := img.PlacedBlock("head")
	last := len(pl.Block.Instrs) - 1
	if !pl.Wide[last] {
		t.Error("out-of-range conditional branch was not widened")
	}
	if pl.InstrSize(last) != 4 {
		t.Errorf("widened branch size = %d, want 4", pl.InstrSize(last))
	}
}

func TestCbzOutOfRangeRejected(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	head := f.AddBlock("head")
	ir.Build(head).Cbz(isa.R0, "tail")
	big := f.AddBlock("big")
	bb := ir.Build(big)
	for i := 0; i < 100; i++ {
		bb.Nop()
	}
	tail := f.AddBlock("tail")
	ir.Build(tail).Ret()
	p.Reindex()
	_, err := New(p, DefaultConfig(), nil)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want cbz range error", err)
	}
}

func TestRodataStaysInFlash(t *testing.T) {
	p := ir.Figure2Program()
	p.AddGlobal(&ir.Global{Name: "table", Size: 64, RO: true})
	img, err := New(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mem, _ := img.MemoryOf(img.Symbols["table"])
	if mem != power.Flash {
		t.Errorf("rodata in %v, want flash", mem)
	}
	if img.RodataBytes != 64 {
		t.Errorf("RodataBytes = %d, want 64", img.RodataBytes)
	}
}

func TestSpareRAM(t *testing.T) {
	p := ir.Figure2Program() // 4 bytes of data
	cfg := DefaultConfig()
	got := SpareRAM(p, cfg)
	want := cfg.RAMSize - 4 - cfg.StackReserve
	if got != want {
		t.Errorf("SpareRAM = %d, want %d", got, want)
	}
	cfg.RAMSize = 100
	cfg.StackReserve = 200
	if got := SpareRAM(p, cfg); got != 0 {
		t.Errorf("SpareRAM clamped = %d, want 0", got)
	}
}

func TestStackTopAligned(t *testing.T) {
	p := ir.Figure2Program()
	img, err := New(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	top := img.StackTop()
	if top%8 != 0 {
		t.Errorf("stack top %#x not 8-byte aligned", top)
	}
	if top != img.Config.RAMBase+uint32(img.Config.RAMSize) {
		t.Errorf("stack top = %#x, want top of RAM", top)
	}
}

func TestMemoryOfOutside(t *testing.T) {
	p := ir.Figure2Program()
	img, _ := New(p, DefaultConfig(), nil)
	if _, ok := img.MemoryOf(0); ok {
		t.Error("address 0 should not classify")
	}
	if _, ok := img.MemoryOf(0xFFFFFFF0); ok {
		t.Error("high address should not classify")
	}
}
