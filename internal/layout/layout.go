// Package layout is the linker of the toolchain: it assigns every
// instruction, literal pool word and global an address in the SoC's
// memory map, honouring the placement decision (which basic blocks live
// in the .ramcode section that the startup runtime copies into RAM).
//
// Memory map of the paper's SoC (STM32F100RB-class):
//
//	flash  0x08000000 .. +64 KiB   code, rodata, initial data image
//	RAM    0x20000000 .. +8 KiB    data, .ramcode, stack
//
// Branches start in their narrow Thumb encodings and are widened to
// 32-bit encodings when the assigned addresses put a target out of narrow
// range (classic relaxation fixpoint).
package layout

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/power"
)

// Config describes the memory map and reservations.
type Config struct {
	FlashBase uint32
	FlashSize int
	RAMBase   uint32
	RAMSize   int
	// StackReserve is RAM held back for the stack (and any heap); code
	// placed in RAM may not grow into it.
	StackReserve int
}

// DefaultConfig is the paper's SoC: 64 KiB flash, 8 KiB RAM.
func DefaultConfig() Config {
	return Config{
		FlashBase:    0x08000000,
		FlashSize:    64 * 1024,
		RAMBase:      0x20000000,
		RAMSize:      8 * 1024,
		StackReserve: 1024,
	}
}

// Placed is one basic block with assigned addresses.
type Placed struct {
	Block *ir.Block
	InRAM bool
	// ID is the block's dense index within Image.Blocks (program order).
	// The simulator uses it for array-indexed per-block counters; it is
	// stable for the life of the image.
	ID         int
	Addr       uint32   // address of the first instruction
	InstrAddrs []uint32 // address of each instruction
	Wide       []bool   // widened-branch flag per instruction
	LitAddrs   []uint32 // literal word address per instruction (0 = none)
	CodeEnd    uint32   // first address past the last instruction
	End        uint32   // first address past the block + any literal pool
}

// InstrRef locates an instruction within an image.
type InstrRef struct {
	Placed *Placed
	Index  int
}

// Image is a fully laid-out program ready for simulation.
type Image struct {
	Prog   *ir.Program
	Config Config

	Blocks  []*Placed
	byLabel map[string]*Placed
	byAddr  map[uint32]InstrRef

	// Symbols maps function names, block labels and global names to
	// addresses. A function's symbol is its entry block's address.
	Symbols map[string]uint32

	FlashCodeBytes int // code + literal pools resident in flash
	RAMCodeBytes   int // code + literal pools copied to RAM (.ramcode)
	DataBytes      int // writable globals in RAM
	RodataBytes    int // read-only globals in flash
}

// New lays out the program. inRAM selects the basic blocks (by label) for
// the .ramcode section; pass nil for the all-flash baseline.
func New(p *ir.Program, cfg Config, inRAM map[string]bool) (*Image, error) {
	img := &Image{
		Prog:    p,
		Config:  cfg,
		byLabel: make(map[string]*Placed),
		byAddr:  make(map[uint32]InstrRef),
		Symbols: make(map[string]uint32),
	}

	// Create placement records in program order.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			pl := &Placed{
				Block:      b,
				InRAM:      inRAM[b.Label],
				ID:         len(img.Blocks),
				InstrAddrs: make([]uint32, len(b.Instrs)),
				Wide:       make([]bool, len(b.Instrs)),
				LitAddrs:   make([]uint32, len(b.Instrs)),
			}
			img.Blocks = append(img.Blocks, pl)
			img.byLabel[b.Label] = pl
		}
	}

	// Relaxation fixpoint: assign addresses, widen out-of-range branches,
	// repeat until stable.
	for iter := 0; ; iter++ {
		if iter > 64 {
			return nil, fmt.Errorf("layout: branch relaxation did not converge")
		}
		img.assignAddresses()
		if err := img.checkCapacity(); err != nil {
			return nil, err
		}
		if !img.widenPass() {
			break
		}
	}

	// Data addresses: writable globals at the bottom of RAM (above
	// .ramcode), read-only globals in flash after code.
	if err := img.assignData(); err != nil {
		return nil, err
	}

	// Function symbols point at their entry blocks.
	for _, f := range p.Funcs {
		if e := f.Entry(); e != nil {
			img.Symbols[f.Name] = img.byLabel[e.Label].Addr
		}
	}

	// Range-check short conditional branches (cbz/cbnz cannot be widened)
	// and literal loads (bounded by the wide ldr's ±4095 reach).
	if err := img.checkShortBranches(); err != nil {
		return nil, err
	}
	if err := img.checkLiterals(); err != nil {
		return nil, err
	}

	// Enforce the physical limits that motivate the paper's
	// instrumentation: even the widest direct branch (±16 MiB) cannot span
	// the 0x18000000 flash↔RAM distance, and a block that falls through
	// must be followed in memory by its control-flow successor.
	if err := img.checkReachability(); err != nil {
		return nil, err
	}
	if err := img.checkFallThroughs(); err != nil {
		return nil, err
	}

	// Index instructions by address for the simulator.
	for _, pl := range img.Blocks {
		for i, a := range pl.InstrAddrs {
			img.byAddr[a] = InstrRef{Placed: pl, Index: i}
		}
	}
	return img, nil
}

// assignAddresses walks flash blocks then RAM blocks, laying each block's
// instructions and literal pools. A pool cannot sit between a block and
// its fall-through successor (execution would run into data), so pools of
// fall-through blocks are deferred until the next block in the region
// that does not fall through — the same thing GNU as does when it inserts
// an .ltorg after an unconditional transfer.
func (img *Image) assignAddresses() {
	img.FlashCodeBytes, img.RAMCodeBytes = 0, 0

	layoutRegion := func(inRAM bool, cursor uint32) uint32 {
		var pending []*Placed // blocks whose pools are deferred
		emitPool := func(pl *Placed, cur uint32) uint32 {
			b := pl.Block
			for i := range b.Instrs {
				if isa.LiteralBytes(&b.Instrs[i]) > 0 {
					pl.LitAddrs[i] = cur
					cur += 4
				} else {
					pl.LitAddrs[i] = 0
				}
			}
			return cur
		}
		hasLits := func(pl *Placed) bool {
			for i := range pl.Block.Instrs {
				if isa.LiteralBytes(&pl.Block.Instrs[i]) > 0 {
					return true
				}
			}
			return false
		}
		flush := func(cur uint32) uint32 {
			if len(pending) == 0 {
				return cur
			}
			if cur%4 != 0 {
				cur += 4 - cur%4
			}
			for _, q := range pending {
				cur = emitPool(q, cur)
				q.End = cur
			}
			pending = pending[:0]
			return cur
		}

		for _, pl := range img.Blocks {
			if pl.InRAM != inRAM {
				continue
			}
			b := pl.Block
			pl.Addr = cursor
			for i := range b.Instrs {
				pl.InstrAddrs[i] = cursor
				sz := isa.Size(&b.Instrs[i])
				if pl.Wide[i] && sz < 4 {
					sz = 4
				}
				cursor += uint32(sz)
			}
			pl.CodeEnd = cursor
			pl.End = cursor
			img.Symbols[b.Label] = pl.Addr
			if b.FallsThrough() {
				if hasLits(pl) {
					pending = append(pending, pl)
				}
			} else {
				if hasLits(pl) || len(pending) > 0 {
					if cursor%4 != 0 {
						cursor += 4 - cursor%4
					}
					cursor = emitPool(pl, cursor)
					pl.End = cursor
					cursor = flush(cursor)
				}
			}
		}
		return flush(cursor)
	}

	flashEnd := layoutRegion(false, img.Config.FlashBase)
	img.FlashCodeBytes = int(flashEnd - img.Config.FlashBase)
	ramEnd := layoutRegion(true, img.Config.RAMBase)
	img.RAMCodeBytes = int(ramEnd - img.Config.RAMBase)
}

// widenPass widens any narrow b whose target is out of ±2046 bytes, and
// any narrow pc-relative literal load whose pool slot is beyond the
// 1020-byte narrow range (deferred pools can land far from their block).
// Returns true if something changed.
func (img *Image) widenPass() bool {
	changed := false
	for _, pl := range img.Blocks {
		b := pl.Block
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if pl.Wide[i] {
				continue
			}
			switch in.Op {
			case isa.B:
				tgt, ok := img.byLabel[in.Sym]
				if !ok {
					continue
				}
				delta := int64(tgt.Addr) - int64(pl.InstrAddrs[i]+4)
				limit := int64(2046)
				if in.Cond != isa.AL {
					limit = 254 // narrow conditional branch range ±254
				}
				if delta < -limit-2 || delta > limit {
					pl.Wide[i] = true
					changed = true
				}
			case isa.LDRLIT:
				if pl.LitAddrs[i] == 0 {
					continue
				}
				base := (pl.InstrAddrs[i] + 4) &^ 3
				off := int64(pl.LitAddrs[i]) - int64(base)
				if off < 0 || off > 1020 {
					pl.Wide[i] = true
					changed = true
				}
			}
		}
	}
	return changed
}

// checkLiterals verifies, after relaxation, that every literal load can
// reach its pool slot within the wide ±4095-byte encoding.
func (img *Image) checkLiterals() error {
	for _, pl := range img.Blocks {
		b := pl.Block
		for i := range b.Instrs {
			if b.Instrs[i].Op != isa.LDRLIT || pl.LitAddrs[i] == 0 {
				continue
			}
			base := (pl.InstrAddrs[i] + 4) &^ 3
			off := int64(pl.LitAddrs[i]) - int64(base)
			if off < -4095 || off > 4095 {
				return fmt.Errorf(
					"layout: %s: literal pool slot %d bytes away exceeds the ±4095 ldr range "+
						"(function too large for deferred pools)", b.Label, off)
			}
		}
	}
	return nil
}

// checkShortBranches verifies cbz/cbnz targets are in forward short range.
func (img *Image) checkShortBranches() error {
	for _, pl := range img.Blocks {
		b := pl.Block
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != isa.CBZ && in.Op != isa.CBNZ {
				continue
			}
			tgt, ok := img.byLabel[in.Sym]
			if !ok {
				return fmt.Errorf("layout: %s: cbz/cbnz to unknown label %q", b.Label, in.Sym)
			}
			delta := int64(tgt.Addr) - int64(pl.InstrAddrs[i]+4)
			if delta < 0 || delta > 126 {
				return fmt.Errorf("layout: %s: cbz/cbnz target %q out of range (%d bytes)",
					b.Label, in.Sym, delta)
			}
		}
	}
	return nil
}

// checkReachability verifies that every direct branch (b) and call (bl)
// can physically encode the distance to its target: ±16 MiB for the wide
// encodings. Flash and RAM are 0x18000000 apart on this SoC, so any
// direct transfer between the memories fails here — the code must instead
// be instrumented with an indirect branch (Figure 4 of the paper).
func (img *Image) checkReachability() error {
	const wideRange = 16 << 20
	for _, pl := range img.Blocks {
		b := pl.Block
		for i := range b.Instrs {
			in := &b.Instrs[i]
			var tgt uint32
			switch in.Op {
			case isa.B:
				t, ok := img.byLabel[in.Sym]
				if !ok {
					continue
				}
				tgt = t.Addr
			case isa.BL:
				t, ok := img.Symbols[in.Sym]
				if !ok {
					continue
				}
				tgt = t
			default:
				continue
			}
			delta := int64(tgt) - int64(pl.InstrAddrs[i]+4)
			if delta < -wideRange || delta > wideRange {
				return fmt.Errorf(
					"layout: %s: direct %s to %q spans %d bytes (max ±16 MiB); "+
						"cross-memory transfers need indirect-branch instrumentation",
					b.Label, in.Op, in.Sym, delta)
			}
		}
	}
	return nil
}

// checkFallThroughs verifies that any block that can fall through is
// immediately followed in memory by its in-function successor. Moving a
// block to RAM severs fall-through paths unless the transformation added
// the Figure 4 "no branch" instrumentation.
func (img *Image) checkFallThroughs() error {
	for _, pl := range img.Blocks {
		b := pl.Block
		if !b.FallsThrough() {
			continue
		}
		if b.Index+1 >= len(b.Func.Blocks) {
			return fmt.Errorf("layout: %s: falls through off function end", b.Label)
		}
		succ := b.Func.Blocks[b.Index+1]
		spl := img.byLabel[succ.Label]
		if spl.Addr != pl.CodeEnd {
			return fmt.Errorf(
				"layout: %s falls through to %s but memory follows with a different block; "+
					"the placement severed a fall-through edge (needs instrumentation)",
				b.Label, succ.Label)
		}
	}
	return nil
}

// assignData places globals: writable ones in RAM above the .ramcode
// section, read-only ones in flash after code.
func (img *Image) assignData() error {
	ram := img.Config.RAMBase + uint32(img.RAMCodeBytes)
	flash := img.Config.FlashBase + uint32(img.FlashCodeBytes)
	align4 := func(a uint32) uint32 {
		if a%4 != 0 {
			a += 4 - a%4
		}
		return a
	}
	ram = align4(ram)
	flash = align4(flash)
	img.DataBytes, img.RodataBytes = 0, 0
	for _, g := range img.Prog.Globals {
		if g.RO {
			img.Symbols[g.Name] = flash
			flash += uint32(g.Size)
			flash = align4(flash)
			img.RodataBytes += g.Size
		} else {
			img.Symbols[g.Name] = ram
			ram += uint32(g.Size)
			ram = align4(ram)
			img.DataBytes += g.Size
		}
	}
	return img.checkCapacity()
}

// checkCapacity validates flash and RAM budgets including stack reserve.
func (img *Image) checkCapacity() error {
	flashUsed := img.FlashCodeBytes + img.RodataBytes
	if flashUsed > img.Config.FlashSize {
		return fmt.Errorf("layout: flash overflow: %d bytes used, %d available",
			flashUsed, img.Config.FlashSize)
	}
	ramUsed := img.RAMCodeBytes + img.DataBytes + img.Config.StackReserve
	if ramUsed > img.Config.RAMSize {
		return fmt.Errorf("layout: RAM overflow: %d bytes used (incl. %d stack reserve), %d available",
			ramUsed, img.Config.StackReserve, img.Config.RAMSize)
	}
	return nil
}

// MemoryOf classifies an address.
func (img *Image) MemoryOf(addr uint32) (power.Memory, bool) {
	c := img.Config
	switch {
	case addr >= c.FlashBase && addr < c.FlashBase+uint32(c.FlashSize):
		return power.Flash, true
	case addr >= c.RAMBase && addr < c.RAMBase+uint32(c.RAMSize):
		return power.RAM, true
	}
	return power.None, false
}

// InstrAt resolves a fetch address.
func (img *Image) InstrAt(addr uint32) (InstrRef, bool) {
	r, ok := img.byAddr[addr]
	return r, ok
}

// CodeBounds returns the base address and byte length of the code region
// (instructions plus literal pools) resident in mem. Every instruction
// address of a block in mem lies in [base, base+length); the simulator's
// predecoded fetch table is indexed over exactly this range.
func (img *Image) CodeBounds(mem power.Memory) (base uint32, length uint32) {
	if mem == power.RAM {
		return img.Config.RAMBase, uint32(img.RAMCodeBytes)
	}
	return img.Config.FlashBase, uint32(img.FlashCodeBytes)
}

// PlacedBlock returns the placement record for a block label.
func (img *Image) PlacedBlock(label string) (*Placed, bool) {
	pl, ok := img.byLabel[label]
	return pl, ok
}

// InstrSize returns the laid-out size of instruction i of pl, including
// any widening.
func (pl *Placed) InstrSize(i int) int {
	sz := isa.Size(&pl.Block.Instrs[i])
	if pl.Wide[i] && sz < 4 {
		sz = 4
	}
	return sz
}

// SpareRAM returns the RAM bytes available for code given the data and
// stack reservation but ignoring any code already placed in RAM. This is
// the model's Rspare upper limit (§4.1): "derived statically, by
// considering the size of the variables in RAM, heap and the stack usage".
func SpareRAM(p *ir.Program, cfg Config) int {
	data := 0
	for _, g := range p.Globals {
		if !g.RO {
			data += g.Size
			if data%4 != 0 {
				data += 4 - data%4
			}
		}
	}
	spare := cfg.RAMSize - data - cfg.StackReserve
	if spare < 0 {
		return 0
	}
	return spare
}

// StackTop returns the initial stack pointer (top of RAM, 8-byte aligned).
func (img *Image) StackTop() uint32 {
	top := img.Config.RAMBase + uint32(img.Config.RAMSize)
	return top &^ 7
}
