package layout

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

func TestAnalyzeStackFigure2(t *testing.T) {
	p := ir.Figure2Program()
	an, err := AnalyzeStack(p)
	if err != nil {
		t.Fatal(err)
	}
	// main pushes {r4, lr} = 8 bytes; fn pushes nothing.
	if an.PerFunction["main"] != 8 {
		t.Errorf("main frame = %d, want 8", an.PerFunction["main"])
	}
	if an.PerFunction["fn"] != 0 {
		t.Errorf("fn frame = %d, want 0", an.PerFunction["fn"])
	}
	if an.MaxDepth != 8 {
		t.Errorf("MaxDepth = %d, want 8 (main + leaf fn)", an.MaxDepth)
	}
	if len(an.DeepestPath) == 0 || an.DeepestPath[0] != "main" {
		t.Errorf("DeepestPath = %v", an.DeepestPath)
	}
}

func TestAnalyzeStackChain(t *testing.T) {
	p := ir.NewProgram()
	mk := func(name string, frame int32, callee string) {
		f := p.AddFunc(&ir.Function{Name: name})
		b := f.AddBlock(name + "_entry")
		bb := ir.Build(b).Push(isa.R4, isa.LR)
		if frame > 0 {
			bb.SubImm(isa.SP, isa.SP, frame)
		}
		if callee != "" {
			bb.Bl(callee)
		}
		if frame > 0 {
			bb.AddImm(isa.SP, isa.SP, frame)
		}
		bb.Pop(isa.R4, isa.PC)
	}
	mk("main", 16, "mid")
	mk("mid", 32, "leaf")
	mk("leaf", 8, "")
	p.Reindex()

	an, err := AnalyzeStack(p)
	if err != nil {
		t.Fatal(err)
	}
	// Each frame: 8 (push) + explicit sub.
	want := (8 + 16) + (8 + 32) + (8 + 8)
	if an.MaxDepth != want {
		t.Errorf("MaxDepth = %d, want %d", an.MaxDepth, want)
	}
	if strings.Join(an.DeepestPath, ">") != "main>mid>leaf" {
		t.Errorf("path = %v", an.DeepestPath)
	}
}

func TestAnalyzeStackRejectsRecursion(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("main_entry")
	ir.Build(b).Push(isa.R4, isa.LR).Bl("main").Pop(isa.R4, isa.PC)
	p.Reindex()
	if _, err := AnalyzeStack(p); err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("err = %v, want recursion", err)
	}
}

func TestAnalyzeStackResolvesLdrBlxIdiom(t *testing.T) {
	p := ir.NewProgram()
	leaf := p.AddFunc(&ir.Function{Name: "leaf"})
	lb := leaf.AddBlock("leaf_entry")
	ir.Build(lb).Push(isa.R4, isa.R5, isa.LR).Pop(isa.R4, isa.R5, isa.PC)
	m := p.AddFunc(&ir.Function{Name: "main"})
	mb := m.AddBlock("main_entry")
	ir.Build(mb).Push(isa.R4, isa.LR).
		LdrLit(isa.R12, "leaf").
		Blx(isa.R12).
		Pop(isa.R4, isa.PC)
	p.Reindex()

	an, err := AnalyzeStack(p)
	if err != nil {
		t.Fatal(err)
	}
	if an.MaxDepth != 8+12 {
		t.Errorf("MaxDepth = %d, want 20 (main 8 + leaf 12)", an.MaxDepth)
	}
}

func TestAnalyzeStackUnresolvableIndirect(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("main_entry")
	ir.Build(b).Push(isa.R4, isa.LR).
		Mov(isa.R3, isa.R0). // r3 holds an unknown function pointer
		Blx(isa.R3).
		Pop(isa.R4, isa.PC)
	p.Reindex()
	if _, err := AnalyzeStack(p); err == nil || !strings.Contains(err.Error(), "indirect") {
		t.Fatalf("err = %v, want unresolvable indirect", err)
	}
}

func TestAnalyzeStackClobberedLiteralReg(t *testing.T) {
	// ldr r12,=leaf; mov r12, r0; blx r12 must NOT resolve to leaf.
	p := ir.NewProgram()
	leaf := p.AddFunc(&ir.Function{Name: "leaf"})
	lb := leaf.AddBlock("leaf_entry")
	ir.Build(lb).Ret()
	m := p.AddFunc(&ir.Function{Name: "main"})
	mb := m.AddBlock("main_entry")
	ir.Build(mb).Push(isa.R4, isa.LR).
		LdrLit(isa.R12, "leaf").
		Mov(isa.R12, isa.R0).
		Blx(isa.R12).
		Pop(isa.R4, isa.PC)
	p.Reindex()
	if _, err := AnalyzeStack(p); err == nil || !strings.Contains(err.Error(), "indirect") {
		t.Fatalf("err = %v, want unresolvable after clobber", err)
	}
}

func TestDeriveRspare(t *testing.T) {
	p := ir.Figure2Program() // 4 data bytes, 8 stack bytes
	cfg := DefaultConfig()
	spare, an, err := DeriveRspare(p, cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.RAMSize - 4 - 8 - 64
	if spare != want {
		t.Errorf("DeriveRspare = %d, want %d", spare, want)
	}
	if an == nil || an.MaxDepth != 8 {
		t.Errorf("analysis = %+v", an)
	}
	// The statically derived budget exceeds the fixed-reserve heuristic
	// (which holds back a whole KiB).
	if spare <= SpareRAM(p, cfg) {
		t.Errorf("derived %d should beat heuristic %d for this tiny program",
			spare, SpareRAM(p, cfg))
	}
}

func TestDeriveRspareFallsBack(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("main_entry")
	ir.Build(b).Push(isa.R4, isa.LR).Bl("main").Pop(isa.R4, isa.PC) // recursive
	p.Reindex()
	cfg := DefaultConfig()
	spare, _, err := DeriveRspare(p, cfg, 64)
	if err == nil {
		t.Fatal("expected recursion error alongside the fallback")
	}
	if spare != SpareRAM(p, cfg) {
		t.Errorf("fallback spare = %d, want heuristic %d", spare, SpareRAM(p, cfg))
	}
}
