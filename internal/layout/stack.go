package layout

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// StackAnalysis is the result of the static stack-usage analysis the
// paper references for deriving Rspare (§4.1, citing Brylow et al.'s
// static checking): the worst-case stack depth over the call graph.
type StackAnalysis struct {
	// MaxDepth is the worst-case stack bytes consumed from the entry
	// function, including every frame on the deepest call path.
	MaxDepth int
	// PerFunction is each function's own activation size (pushed
	// registers + local frame).
	PerFunction map[string]int
	// DeepestPath is one call chain achieving MaxDepth.
	DeepestPath []string
}

// AnalyzeStack computes the worst-case stack usage of the program by
// walking the call graph. It fails on recursion (unbounded stack) and on
// indirect calls it cannot resolve — a blx is resolved when the scratch
// register was just loaded with `ldr rX, =function` (the shape our own
// instrumentation emits).
func AnalyzeStack(p *ir.Program) (*StackAnalysis, error) {
	an := &StackAnalysis{PerFunction: make(map[string]int, len(p.Funcs))}
	for _, f := range p.Funcs {
		an.PerFunction[f.Name] = frameBytes(f)
	}

	type state int
	const (
		unvisited state = iota
		inProgress
		done
	)
	st := make(map[string]state, len(p.Funcs))
	depth := make(map[string]int, len(p.Funcs))
	deepCallee := make(map[string]string)

	var visit func(name string) error
	visit = func(name string) error {
		switch st[name] {
		case done:
			return nil
		case inProgress:
			return fmt.Errorf("layout: stack analysis: recursion through %q (unbounded stack)", name)
		}
		st[name] = inProgress
		f := p.Func(name)
		if f == nil {
			return fmt.Errorf("layout: stack analysis: unknown function %q", name)
		}
		worst := 0
		for _, callee := range callees(f) {
			if callee == "" {
				return fmt.Errorf("layout: stack analysis: unresolvable indirect call in %q", name)
			}
			if err := visit(callee); err != nil {
				return err
			}
			if depth[callee] > worst {
				worst = depth[callee]
				deepCallee[name] = callee
			}
		}
		depth[name] = an.PerFunction[name] + worst
		st[name] = done
		return nil
	}
	if err := visit(p.Entry); err != nil {
		return nil, err
	}
	an.MaxDepth = depth[p.Entry]
	for name := p.Entry; name != ""; name = deepCallee[name] {
		an.DeepestPath = append(an.DeepestPath, name)
	}
	return an, nil
}

// frameBytes sums a function's activation record: pushed registers plus
// explicit stack adjustment in its entry block.
func frameBytes(f *ir.Function) int {
	entry := f.Entry()
	if entry == nil {
		return 0
	}
	bytes := 0
	for i := range entry.Instrs {
		in := &entry.Instrs[i]
		switch {
		case in.Op == isa.PUSH:
			n := 0
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if in.RegList&(1<<r) != 0 {
					n++
				}
			}
			bytes += 4 * n
		case in.Op == isa.SUB && in.Rd == isa.SP && in.Rn == isa.SP && in.HasImm:
			bytes += int(in.Imm)
		}
	}
	return bytes
}

// callees lists the functions a function can call. Direct bl targets are
// returned by name; an unresolvable indirect call yields "".
func callees(f *ir.Function) []string {
	var out []string
	seen := map[string]bool{}
	for _, b := range f.Blocks {
		lastLit := ""           // symbol most recently loaded with ldr =f
		lastLitReg := isa.NoReg // ...and the register holding it
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case isa.BL:
				if !seen[in.Sym] {
					seen[in.Sym] = true
					out = append(out, in.Sym)
				}
			case isa.LDRLIT:
				if in.Rd != isa.PC && in.Sym != "" {
					lastLit, lastLitReg = in.Sym, in.Rd
				}
			case isa.BLX:
				// Resolvable only as the ldr rX,=f; blx rX idiom.
				if lastLit != "" && in.Rm == lastLitReg {
					if !seen[lastLit] {
						seen[lastLit] = true
						out = append(out, lastLit)
					}
				} else {
					out = append(out, "")
				}
			default:
				// A write to the literal-holding register invalidates
				// the pending resolution.
				for _, d := range in.Defs() {
					if d == lastLitReg {
						lastLit, lastLitReg = "", isa.NoReg
					}
				}
			}
		}
	}
	return out
}

// DeriveRspare computes the model's RAM budget entirely statically, the
// way §4.1 proposes: total RAM − data − analyzed worst-case stack − a
// safety margin. Falls back to the configured StackReserve when the
// analysis cannot bound the stack (recursion, unresolved indirect calls).
func DeriveRspare(p *ir.Program, cfg Config, margin int) (int, *StackAnalysis, error) {
	an, err := AnalyzeStack(p)
	if err != nil {
		return SpareRAM(p, cfg), nil, err
	}
	data := 0
	for _, g := range p.Globals {
		if !g.RO {
			data += g.Size
			if data%4 != 0 {
				data += 4 - data%4
			}
		}
	}
	spare := cfg.RAMSize - data - an.MaxDepth - margin
	if spare < 0 {
		spare = 0
	}
	return spare, an, nil
}
