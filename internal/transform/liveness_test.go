package transform

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/power"
	"repro/internal/sim"
)

func TestLiveOutFigure2(t *testing.T) {
	p := ir.Figure2Program()
	f := p.Func("fn")
	lo, err := liveOutSets(p, f)
	if err != nil {
		t.Fatal(err)
	}
	loop := f.Block("fn_loop")
	// r1 (x) and r2 (k) are live across the loop's back edge; r0 (i) too.
	for _, r := range []isa.Reg{isa.R0, isa.R1, isa.R2} {
		if !lo[loop].has(r) {
			t.Errorf("%v not live-out of fn_loop", r)
		}
	}
	// r3 is never used and is caller-saved: the only scavengeable low
	// register inside fn.
	if lo[loop].has(isa.R3) {
		t.Errorf("r3 incorrectly live-out of fn_loop")
	}
	// r4-r7 are callee-saved and fn does not push them, so the CALLER's
	// values flow through: they must be considered live (clobbering them
	// in an instrumentation sequence would corrupt main's state).
	for _, r := range []isa.Reg{isa.R4, isa.R5, isa.R6, isa.R7} {
		if !lo[loop].has(r) {
			t.Errorf("callee-saved %v must be live through fn", r)
		}
	}
	// Return block has no successors: empty live-out set.
	ret := f.Block("fn_return")
	if lo[ret] != 0 {
		t.Errorf("return block live-out = %016b, want empty", lo[ret])
	}
}

func TestScavengePicksLowestDead(t *testing.T) {
	var s regSet
	s.add(isa.R0)
	s.add(isa.R1)
	r, ok := scavenge(s)
	if !ok || r != isa.R2 {
		t.Errorf("scavenge = %v/%v, want r2", r, ok)
	}
	full := regSet(0xFF) // r0-r7 all live
	if _, ok := scavenge(full); ok {
		t.Error("scavenge found a register in a full set")
	}
}

// TestScavengedInstrumentation: the Figure 2 placement must scavenge (r3
// is dead at the loop exits) and still compute the right answer.
func TestScavengedInstrumentation(t *testing.T) {
	base := ir.Figure2Program()
	baseImg, err := layout.New(base, layout.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mBase := sim.New(baseImg, power.STM32F100())
	if _, err := mBase.Run(); err != nil {
		t.Fatal(err)
	}
	want, _ := mBase.ReadGlobal("result")

	inRAM := map[string]bool{"fn_loop": true, "fn_if": true}
	p := base.Clone()
	rep, err := Apply(p, inRAM)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scavenged == 0 {
		t.Error("no sequences scavenged; r3 is provably dead in fn")
	}
	// The rewritten fn_if must use a low register, not r12.
	ifB := p.Func("fn").Block("fn_if")
	for i := range ifB.Instrs {
		in := &ifB.Instrs[i]
		if in.Op == isa.LDRLIT && in.Rd != isa.PC {
			if !in.Rd.IsLow() {
				t.Errorf("instrumentation ldr uses %v, expected a scavenged low register", in.Rd)
			}
		}
	}

	img, err := layout.New(p, layout.DefaultConfig(), inRAM)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(img, power.STM32F100())
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadGlobal("result")
	if got != want {
		t.Fatalf("scavenged program result %d != baseline %d", got, want)
	}
}

// TestScavengeAblation: scavenging shrinks the instrumented code versus
// the forced-r12 variant, and both run correctly.
func TestScavengeAblation(t *testing.T) {
	base := ir.Figure2Program()
	inRAM := map[string]bool{"fn_loop": true, "fn_if": true}

	withScav := base.Clone()
	repS, err := ApplyWithOptions(withScav, inRAM, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without := base.Clone()
	repN, err := ApplyWithOptions(without, inRAM, Options{NoScavenge: true})
	if err != nil {
		t.Fatal(err)
	}
	if repN.Scavenged != 0 {
		t.Error("NoScavenge still scavenged")
	}
	if repS.ExtraBytes >= repN.ExtraBytes {
		t.Errorf("scavenged bytes %d not below r12 bytes %d",
			repS.ExtraBytes, repN.ExtraBytes)
	}
	// Both semantically intact.
	for _, prog := range []*ir.Program{withScav, without} {
		img, err := layout.New(prog, layout.DefaultConfig(), inRAM)
		if err != nil {
			t.Fatal(err)
		}
		m := sim.New(img, power.STM32F100())
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScavengeRespectsLiveRegisters: a block whose low registers are all
// live must fall back to r12.
func TestScavengeRespectsLiveRegisters(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	e := f.AddBlock("entry")
	// Make r0-r7 all carry values consumed after the conditional.
	bb := ir.Build(e)
	for r := isa.R0; r <= isa.R7; r++ {
		bb.MovImm(r, int32(r)+1)
	}
	bb.CmpImm(isa.R0, 5).Bcond(isa.NE, "sink")
	mid := f.AddBlock("mid")
	ir.Build(mid).AddImm(isa.R1, isa.R1, 1)
	sink := f.AddBlock("sink")
	sb := ir.Build(sink).LdrLit(isa.R8, "out")
	for r := isa.R0; r <= isa.R7; r++ {
		sb.StrIdx(r, isa.R8, isa.R8, 0) // consume every low register
	}
	sb.Ret()
	p.AddGlobal(&ir.Global{Name: "out", Size: 4})
	p.Reindex()

	q := p.Clone()
	rep, err := Apply(q, map[string]bool{"entry": true, "mid": true})
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	entry := q.Func("main").Block("entry")
	for i := range entry.Instrs {
		in := &entry.Instrs[i]
		if in.Op == isa.LDRLIT && in.Rd != isa.PC && in.Rd.IsLow() {
			t.Fatalf("scavenged %v although all low registers are live", in.Rd)
		}
	}
}
