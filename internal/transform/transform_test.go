package transform

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/power"
	"repro/internal/sim"
)

func TestFigure4PaperCosts(t *testing.T) {
	cases := []struct {
		shape  Shape
		bytes  int
		cycles int
	}{
		{ShapeUncond, 4, 4},
		{ShapeCond, 8, 7},
		{ShapeShortCond, 10, 8},
		{ShapeFallThrough, 4, 4},
		{ShapeReturn, 0, 0},
		{ShapeIndirect, 0, 0},
	}
	for _, c := range cases {
		b, cy := PaperCost(c.shape)
		if b != c.bytes || cy != c.cycles {
			t.Errorf("PaperCost(%v) = %dB/%dcy, want %dB/%dcy (Figure 4)",
				c.shape, b, cy, c.bytes, c.cycles)
		}
	}
}

func TestShapeOf(t *testing.T) {
	p := ir.Figure2Program()
	fn := p.Func("fn")
	cases := map[string]Shape{
		"fn_init":   ShapeFallThrough,
		"fn_loop":   ShapeCond,
		"fn_if":     ShapeCond,
		"fn_iftrue": ShapeFallThrough,
		"fn_return": ShapeReturn,
	}
	for lbl, want := range cases {
		if got := ShapeOf(fn.Block(lbl)); got != want {
			t.Errorf("ShapeOf(%s) = %v, want %v", lbl, got, want)
		}
	}
	mb := p.Func("main").Block("main_entry")
	if got := ShapeOf(mb); got != ShapeReturn { // pop {r4, pc}
		t.Errorf("ShapeOf(main_entry) = %v, want return", got)
	}
}

func TestInstrumentationCostShapes(t *testing.T) {
	p := ir.Figure2Program()
	fn := p.Func("fn")
	// fn_loop: conditional, r12 scratch → it(2)+2×ldr.w(4)+bx(2)−b(2)=10,
	// pool 8, cycles 7−3=4.
	c := InstrumentationCost(fn.Block("fn_loop"))
	if c.Bytes != 10 || c.PoolBytes != 8 || c.Cycles != 4 {
		t.Errorf("cond cost = %+v, want {10 8 4}", c)
	}
	// fn_return: return shape, zero cost.
	c = InstrumentationCost(fn.Block("fn_return"))
	if c.Total() != 0 || c.Cycles != 0 {
		t.Errorf("return cost = %+v, want zero", c)
	}
	// main_entry: return terminator but one call → call rewrite cost:
	// ldr.w(4)+blx(2)−bl(4)=2 bytes, pool 4, cycles 2.
	c = InstrumentationCost(p.Func("main").Block("main_entry"))
	if c.Bytes != 2 || c.PoolBytes != 4 || c.Cycles != 2 {
		t.Errorf("call cost = %+v, want {2 4 2}", c)
	}
}

func runProgram(t *testing.T, p *ir.Program, inRAM map[string]bool) (*sim.Machine, *sim.Stats) {
	t.Helper()
	img, err := layout.New(p, layout.DefaultConfig(), inRAM)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	m := sim.New(img, power.STM32F100())
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, st
}

func TestApplyPaperPlacement(t *testing.T) {
	base := ir.Figure2Program()
	mBase, stBase := runProgram(t, base, nil)
	rBase, _ := mBase.ReadGlobal("result")

	p := base.Clone()
	inRAM := map[string]bool{"fn_loop": true, "fn_if": true}
	rep, err := Apply(p, inRAM)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moved) != 2 {
		t.Errorf("Moved = %v, want 2 blocks", rep.Moved)
	}
	// fn_init must have been instrumented (falls through into RAM), and
	// fn_if (its successors are in flash).
	joined := strings.Join(rep.Instrumented, ",")
	for _, want := range []string{"fn_init", "fn_if"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Instrumented = %v, missing %s", rep.Instrumented, want)
		}
	}
	if rep.ExtraBytes <= 0 || rep.ExtraCycles <= 0 {
		t.Errorf("report deltas = %+v, want positive", rep)
	}

	mOpt, stOpt := runProgram(t, p, inRAM)
	rOpt, _ := mOpt.ReadGlobal("result")
	if rOpt != rBase {
		t.Fatalf("optimized result %d != baseline %d", rOpt, rBase)
	}
	if stOpt.EnergyNJ >= stBase.EnergyNJ {
		t.Errorf("energy %.0f nJ not reduced (baseline %.0f)", stOpt.EnergyNJ, stBase.EnergyNJ)
	}
	if stOpt.Cycles <= stBase.Cycles {
		t.Errorf("cycles %d not increased (baseline %d)", stOpt.Cycles, stBase.Cycles)
	}
	if pw, pb := mOpt.AveragePowerMW(stOpt), mBase.AveragePowerMW(stBase); pw >= pb {
		t.Errorf("power %.2f mW not reduced (baseline %.2f)", pw, pb)
	}
}

// TestEveryPlacementPreservesSemantics is the key property test: for every
// subset of the Figure 2 program's six blocks, the transformed program
// must lay out, run, and produce the baseline result.
func TestEveryPlacementPreservesSemantics(t *testing.T) {
	base := ir.Figure2Program()
	mBase, _ := runProgram(t, base, nil)
	want, _ := mBase.ReadGlobal("result")

	labels := []string{"fn_init", "fn_loop", "fn_if", "fn_iftrue", "fn_return", "main_entry"}
	for mask := 0; mask < 1<<len(labels); mask++ {
		inRAM := make(map[string]bool)
		for i, lbl := range labels {
			if mask&(1<<i) != 0 {
				inRAM[lbl] = true
			}
		}
		p := base.Clone()
		if _, err := Apply(p, inRAM); err != nil {
			t.Fatalf("mask %06b: Apply: %v", mask, err)
		}
		m, _ := runProgram(t, p, inRAM)
		got, _ := m.ReadGlobal("result")
		if got != want {
			t.Fatalf("mask %06b: result %d, want %d", mask, got, want)
		}
	}
}

func TestCallRewrite(t *testing.T) {
	// Whole callee in RAM: main's bl must become ldr r12,=fn + blx r12.
	base := ir.Figure2Program()
	p := base.Clone()
	inRAM := map[string]bool{
		"fn_init": true, "fn_loop": true, "fn_if": true,
		"fn_iftrue": true, "fn_return": true,
	}
	rep, err := Apply(p, inRAM)
	if err != nil {
		t.Fatal(err)
	}
	mb := p.Func("main").Block("main_entry")
	foundBlx := false
	for i := range mb.Instrs {
		if mb.Instrs[i].Op == isa.BL {
			t.Error("direct bl survived a cross-memory call")
		}
		if mb.Instrs[i].Op == isa.BLX && mb.Instrs[i].Rm == ScratchReg {
			foundBlx = true
			if i == 0 || mb.Instrs[i-1].Op != isa.LDRLIT || mb.Instrs[i-1].Sym != "fn" {
				t.Error("blx not preceded by ldr r12, =fn")
			}
		}
	}
	if !foundBlx {
		t.Fatal("no blx emitted for cross-memory call")
	}
	if len(rep.Instrumented) == 0 {
		t.Error("main_entry should be reported instrumented")
	}

	// And it runs correctly.
	mBase, _ := runProgram(t, base, nil)
	want, _ := mBase.ReadGlobal("result")
	m, _ := runProgram(t, p, inRAM)
	got, _ := m.ReadGlobal("result")
	if got != want {
		t.Fatalf("result %d, want %d", got, want)
	}
}

func TestSameMemoryCallUntouched(t *testing.T) {
	p := ir.Figure2Program().Clone()
	rep, err := Apply(p, nil) // everything stays in flash
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instrumented) != 0 || len(rep.Moved) != 0 {
		t.Errorf("no-op placement changed code: %+v", rep)
	}
	mb := p.Func("main").Block("main_entry")
	hasBL := false
	for i := range mb.Instrs {
		if mb.Instrs[i].Op == isa.BL {
			hasBL = true
		}
	}
	if !hasBL {
		t.Error("same-memory bl should be untouched")
	}
}

func TestLibraryBlocksRefuse(t *testing.T) {
	p := ir.Figure2Program()
	p.Funcs[0].Library = true // fn becomes a library function
	_, err := Apply(p.Clone(), map[string]bool{"fn_loop": true})
	if err == nil || !strings.Contains(err.Error(), "library") {
		t.Fatalf("err = %v, want library refusal", err)
	}
}

func TestShortCondRewrite(t *testing.T) {
	// A cbnz loop crossing memories gets the cmp+it+ldr+ldr+bx form.
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	e := f.AddBlock("entry")
	ir.Build(e).MovImm(isa.R0, 5).LdrLit(isa.R2, "out")
	loop := f.AddBlock("loop")
	ir.Build(loop).SubImm(isa.R0, isa.R0, 1).Cbnz(isa.R0, "loop")
	done := f.AddBlock("done")
	ir.Build(done).Str(isa.R0, isa.R2, 0).Ret()
	p.AddGlobal(&ir.Global{Name: "out", Size: 4, Init: []byte{9, 9, 9, 9}})
	p.Reindex()

	inRAM := map[string]bool{"loop": true}
	q := p.Clone()
	if _, err := Apply(q, inRAM); err != nil {
		t.Fatal(err)
	}
	lb := q.Func("main").Block("loop")
	ops := make([]isa.Op, len(lb.Instrs))
	for i := range lb.Instrs {
		ops[i] = lb.Instrs[i].Op
	}
	// sub, cmp, it, ldr, ldr, bx
	wantOps := []isa.Op{isa.SUB, isa.CMP, isa.IT, isa.LDRLIT, isa.LDRLIT, isa.BX}
	if len(ops) != len(wantOps) {
		t.Fatalf("loop ops = %v, want %v", ops, wantOps)
	}
	for i := range ops {
		if ops[i] != wantOps[i] {
			t.Fatalf("loop ops = %v, want %v", ops, wantOps)
		}
	}
	m, _ := runProgram(t, q, inRAM)
	got, _ := m.ReadGlobal("out")
	if got != 0 {
		t.Errorf("out = %d, want 0", got)
	}
}

func TestApplyOnCloneLeavesOriginal(t *testing.T) {
	base := ir.Figure2Program()
	before := base.String()
	q := base.Clone()
	if _, err := Apply(q, map[string]bool{"fn_loop": true, "fn_if": true}); err != nil {
		t.Fatal(err)
	}
	if base.String() != before {
		t.Error("Apply mutated the original program through the clone")
	}
}
