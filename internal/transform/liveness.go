package transform

import (
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/isa"
)

// Register liveness at the machine level, used to scavenge a dead low
// register for the Figure 4 conditional instrumentation sequences. With a
// low register the two predicated ldr literals get 16-bit encodings and
// the rewrite costs exactly what the paper's figure prints (8/10 bytes);
// when nothing is provably dead we fall back to r12, the AAPCS scratch
// register, at 12 bytes.

// regSet is a bitmask over r0..pc.
type regSet uint16

func (s regSet) has(r isa.Reg) bool { return s&(1<<r) != 0 }
func (s *regSet) add(r isa.Reg)     { *s |= 1 << r }
func (s *regSet) del(r isa.Reg)     { *s &^= 1 << r }

// returnLive is the conservative live-out set of a returning block: the
// result registers, every callee-saved register, SP and LR.
const returnLive = regSet(1<<isa.R0 | 1<<isa.R1 |
	1<<isa.R4 | 1<<isa.R5 | 1<<isa.R6 | 1<<isa.R7 |
	1<<isa.R8 | 1<<isa.R9 | 1<<isa.R10 | 1<<isa.R11 |
	1<<isa.SP | 1<<isa.LR)

// instrUses returns the registers an instruction reads, augmented for
// liveness soundness: calls consume the argument registers, returns
// consume the conservative return-live set.
func instrUses(in *isa.Instr) regSet {
	var s regSet
	for _, r := range in.Uses() {
		s.add(r)
	}
	switch in.Op {
	case isa.BL, isa.BLX:
		// AAPCS arguments.
		s.add(isa.R0)
		s.add(isa.R1)
		s.add(isa.R2)
		s.add(isa.R3)
	case isa.BX:
		if in.Rm == isa.LR {
			s |= returnLive
		}
	case isa.POP:
		if in.RegList&(1<<isa.PC) != 0 {
			s |= returnLive
		}
	}
	return s
}

func instrDefs(in *isa.Instr) regSet {
	var s regSet
	for _, r := range in.Defs() {
		s.add(r)
	}
	return s
}

// liveOutSets computes per-block live-out register sets for one function
// using its CFG. Blocks with indirect terminators whose targets are
// unknown are given the conservative return-live set.
func liveOutSets(p *ir.Program, f *ir.Function) (map[*ir.Block]regSet, error) {
	g, err := cfg.Build(p, f)
	if err != nil {
		return nil, err
	}

	gen := make(map[*ir.Block]regSet, len(f.Blocks))
	kill := make(map[*ir.Block]regSet, len(f.Blocks))
	for _, b := range f.Blocks {
		var g, k regSet
		for i := range b.Instrs {
			in := &b.Instrs[i]
			g |= instrUses(in) &^ k
			k |= instrDefs(in)
		}
		gen[b], kill[b] = g, k
	}

	liveIn := make(map[*ir.Block]regSet, len(f.Blocks))
	liveOut := make(map[*ir.Block]regSet, len(f.Blocks))
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			var out regSet
			succs := g.Succs(b)
			if len(succs) == 0 && !b.IsReturn() {
				// Unknown indirect successors (bx reg): be conservative.
				out = returnLive
			}
			for _, s := range succs {
				out |= liveIn[s]
			}
			in := gen[b] | (out &^ kill[b])
			if out != liveOut[b] || in != liveIn[b] {
				changed = true
			}
			liveOut[b], liveIn[b] = out, in
		}
	}
	return liveOut, nil
}

// LiveSet is an exported register bitmask over r0..pc, for consumers that
// need to cross-check the scavenger's decisions (internal/analysis).
type LiveSet uint16

// Has reports whether the register is in the set.
func (s LiveSet) Has(r isa.Reg) bool { return regSet(s).has(r) }

// LiveOut computes the per-block live-out register sets of one function,
// keyed by block label. It is the same analysis the scavenger uses, so a
// verifier comparing against it sees exactly the facts the transformation
// relied on.
func LiveOut(p *ir.Program, f *ir.Function) (map[string]LiveSet, error) {
	lo, err := liveOutSets(p, f)
	if err != nil {
		return nil, err
	}
	out := make(map[string]LiveSet, len(lo))
	for b, s := range lo {
		out[b.Label] = LiveSet(s)
	}
	return out, nil
}

// UsesOf returns the liveness-augmented use set of an instruction: plain
// register reads plus the AAPCS argument registers for calls and the
// conservative return-live set for returns.
func UsesOf(in *isa.Instr) LiveSet { return LiveSet(instrUses(in)) }

// DefsOf returns the registers the instruction writes.
func DefsOf(in *isa.Instr) LiveSet { return LiveSet(instrDefs(in)) }

// scavenge returns a provably dead low register at the end of block b, or
// (ScratchReg, false) when none can be proven dead.
func scavenge(liveOut regSet) (isa.Reg, bool) {
	for r := isa.R0; r <= isa.R7; r++ {
		if !liveOut.has(r) {
			return r, true
		}
	}
	return ScratchReg, false
}
