// Package transform implements the paper's code transformation (§5): given
// the set R of basic blocks chosen for RAM, it relocates them (by marking;
// internal/layout does the address assignment) and rewrites every control
// transfer that crosses between flash and RAM into a long-range indirect
// form, following Figure 4:
//
//	unconditional b label   →  ldr pc, =label
//	b<cc> label             →  it<cc,e>; ldr<cc> rS,=label; ldr<cc'> rS,=fallthrough; bx rS
//	cbz/cbnz rn, label      →  cmp rn, #0; the conditional form with eq/ne
//	fall-through            →  ldr pc, =next
//	bl callee               →  ldr rS, =callee; blx rS
//
// rS is r12 (IP), the AAPCS scratch register reserved for exactly this
// kind of veneer; the paper's figure shows r5 for illustration. The
// package also computes the per-block instrumentation costs Kb (bytes) and
// Tb (cycles) the ILP model needs (§4.1).
package transform

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// ScratchReg is the register used by the indirect-branch sequences.
const ScratchReg = isa.R12

// Shape classifies a block's terminator for instrumentation purposes.
type Shape int

// Terminator shapes (Figure 4 rows).
const (
	ShapeReturn      Shape = iota // bx lr / pop {...,pc}: never instrumented
	ShapeUncond                   // b label
	ShapeCond                     // b<cc> label with fall-through
	ShapeShortCond                // cbz/cbnz rn, label with fall-through
	ShapeFallThrough              // no terminator
	ShapeIndirect                 // bx reg / ldr pc: already long-range
)

func (s Shape) String() string {
	switch s {
	case ShapeReturn:
		return "return"
	case ShapeUncond:
		return "unconditional"
	case ShapeCond:
		return "conditional"
	case ShapeShortCond:
		return "short conditional"
	case ShapeFallThrough:
		return "fall-through"
	case ShapeIndirect:
		return "indirect"
	}
	return "shape(?)"
}

// ShapeOf classifies a block.
func ShapeOf(b *ir.Block) Shape {
	t := b.Terminator()
	if t == nil {
		return ShapeFallThrough
	}
	switch t.Op {
	case isa.B:
		if t.Cond == isa.AL {
			return ShapeUncond
		}
		return ShapeCond
	case isa.CBZ, isa.CBNZ:
		return ShapeShortCond
	case isa.BX:
		if t.Rm == isa.LR {
			return ShapeReturn
		}
		return ShapeIndirect
	case isa.POP:
		return ShapeReturn
	case isa.LDRLIT:
		return ShapeIndirect
	}
	return ShapeFallThrough
}

// Cost is the instrumentation overhead of one block.
type Cost struct {
	// Bytes is the extra instruction bytes (the paper's Kb, Figure 4).
	Bytes int
	// PoolBytes is the extra literal-pool bytes the new ldr =sym
	// instructions require; the model adds these to Kb because they
	// occupy RAM alongside the block.
	PoolBytes int
	// Cycles is the extra cycles on the executed path (the paper's Tb).
	Cycles int
}

// Total returns instruction plus pool bytes — the RAM the instrumentation
// actually occupies.
func (c Cost) Total() int { return c.Bytes + c.PoolBytes }

// shapeCost returns the Figure 4 delta for a terminator shape, using the
// given scratch register (encoding width depends on it: the paper's
// illustration uses low r5, our emission uses r12).
func shapeCost(s Shape, scratch isa.Reg) Cost {
	ldrW := 2 // narrow ldr rd, [pc, #imm]
	if !scratch.IsLow() {
		ldrW = 4
	}
	switch s {
	case ShapeUncond:
		// b(2B,3cy) → ldr pc,=l (4B,4cy) + 1 pool word
		return Cost{Bytes: 4 - 2, PoolBytes: 4, Cycles: 4 - 3}
	case ShapeCond:
		// b<cc>(2B,3cy taken) → it(2)+ldr+ldr+bx(2) (7cy executed path)
		return Cost{Bytes: 2 + 2*ldrW + 2 - 2, PoolBytes: 8, Cycles: 7 - 3}
	case ShapeShortCond:
		// cbz(2B,3cy) → cmp(2)+it(2)+ldr+ldr+bx(2) (8cy)
		return Cost{Bytes: 2 + 2 + 2*ldrW + 2 - 2, PoolBytes: 8, Cycles: 8 - 3}
	case ShapeFallThrough:
		// nothing → ldr pc,=l (4B,4cy)
		return Cost{Bytes: 4, PoolBytes: 4, Cycles: 4}
	default:
		return Cost{}
	}
}

// callCost is the delta for rewriting one direct call:
// bl(4B,4cy) → ldr rS,=f + blx rS (2B, ldr 2cy + blx 4cy).
func callCost(scratch isa.Reg) Cost {
	ldrW := 2
	if !scratch.IsLow() {
		ldrW = 4
	}
	return Cost{Bytes: ldrW + 2 - 4, PoolBytes: 4, Cycles: 2 + 4 - 4}
}

// InstrumentationCost returns the worst-case cost of instrumenting the
// block: the terminator rewrite plus a rewrite of every direct call it
// contains. This is the constant Kb/Tb the model uses; the actual
// transformation only rewrites the transfers that really cross memories,
// so the model is conservative for multi-call blocks.
func InstrumentationCost(b *ir.Block) Cost {
	c := shapeCost(ShapeOf(b), ScratchReg)
	nCalls := len(b.Calls())
	if nCalls > 0 {
		cc := callCost(ScratchReg)
		c.Bytes += nCalls * cc.Bytes
		c.PoolBytes += nCalls * cc.PoolBytes
		c.Cycles += nCalls * cc.Cycles
	}
	return c
}

// PaperCost returns the cost table of Figure 4 exactly as printed — the
// full sequence sizes/cycles with the paper's low scratch register —
// used by tests that pin our arithmetic to the paper's numbers.
func PaperCost(s Shape) (bytes, cycles int) {
	switch s {
	case ShapeUncond:
		return 4, 4 // ldr pc, =label
	case ShapeCond:
		return 8, 7 // it + 2×ldr(narrow r5) + bx
	case ShapeShortCond:
		return 10, 8 // cmp + it + 2×ldr + bx
	case ShapeFallThrough:
		return 4, 4 // ldr pc, =label
	default:
		return 0, 0
	}
}

// Report summarizes what Apply changed.
type Report struct {
	Moved        []string // labels placed in RAM
	Instrumented []string // labels whose control flow was rewritten
	ExtraBytes   int      // instruction + pool bytes added program-wide
	ExtraCycles  int      // per-execution extra cycles (sum over blocks)
	// Scavenged counts conditional rewrites that found a dead low
	// register (16-bit ldr encodings, the paper's r5-style costs) rather
	// than falling back to r12.
	Scavenged int
}

// Options adjust the transformation.
type Options struct {
	// LinkTime permits relocating library-function blocks (§8).
	LinkTime bool
	// NoScavenge disables dead-register scavenging, forcing every
	// conditional sequence to use r12 (for the encoding-cost ablation).
	NoScavenge bool
}

// Apply rewrites the program in place for the given placement and returns
// a report. The program should be a Clone if the caller still needs the
// original. Apply refuses placements that move library-function blocks;
// ApplyLinkTime lifts that restriction (the paper's §8 future work).
func Apply(p *ir.Program, inRAM map[string]bool) (*Report, error) {
	return ApplyWithOptions(p, inRAM, Options{})
}

// ApplyLinkTime is Apply with full link-time visibility: library-function
// blocks may be relocated and instrumented like any other code.
func ApplyLinkTime(p *ir.Program, inRAM map[string]bool) (*Report, error) {
	return ApplyWithOptions(p, inRAM, Options{LinkTime: true})
}

// ApplyWithOptions is the general entry point.
func ApplyWithOptions(p *ir.Program, inRAM map[string]bool, o Options) (*Report, error) {
	return apply(p, inRAM, o)
}

func apply(p *ir.Program, inRAM map[string]bool, o Options) (*Report, error) {
	linkTime := o.LinkTime
	rep := &Report{}

	// Map every label to its memory.
	blockRAM := func(label string) bool { return inRAM[label] }

	for _, f := range p.Funcs {
		if f.Library && !linkTime {
			for _, b := range f.Blocks {
				if inRAM[b.Label] {
					return nil, fmt.Errorf(
						"transform: block %q belongs to library function %q and cannot move",
						b.Label, f.Name)
				}
			}
			continue
		}
		// Liveness for dead-register scavenging (computed on the original
		// CFG; rewrites do not change block-level successor sets).
		var liveOut map[*ir.Block]regSet
		if !o.NoScavenge {
			lo, err := liveOutSets(p, f)
			if err != nil {
				return nil, fmt.Errorf("transform: liveness for %s: %w", f.Name, err)
			}
			liveOut = lo
		}

		for bi, b := range f.Blocks {
			if inRAM[b.Label] {
				rep.Moved = append(rep.Moved, b.Label)
			}
			myRAM := blockRAM(b.Label)
			changed := false
			oldBytes, oldCycles := b.SizeWithLiterals(), b.Cycles()

			// Rewrite crossing calls first (mid-block, indexes stable as
			// we replace 1 instruction with 2 going backwards).
			for ii := len(b.Instrs) - 1; ii >= 0; ii-- {
				in := b.Instrs[ii]
				if in.Op != isa.BL {
					continue
				}
				callee := p.Func(in.Sym)
				if callee == nil || callee.Entry() == nil {
					continue
				}
				calleeRAM := blockRAM(callee.Entry().Label)
				if calleeRAM == myRAM {
					continue
				}
				seq := []isa.Instr{
					{Op: isa.LDRLIT, Rd: ScratchReg, Sym: in.Sym},
					{Op: isa.BLX, Rm: ScratchReg},
				}
				b.Instrs = append(b.Instrs[:ii], append(seq, b.Instrs[ii+1:]...)...)
				changed = true
			}

			// Terminator rewrite if any control edge crosses.
			shape := ShapeOf(b)
			switch shape {
			case ShapeReturn, ShapeIndirect:
				// Long-range already.
			case ShapeUncond:
				t := &b.Instrs[len(b.Instrs)-1]
				if blockRAM(t.Sym) != myRAM {
					*t = isa.Instr{Op: isa.LDRLIT, Rd: isa.PC, Sym: t.Sym}
					changed = true
				}
			case ShapeCond, ShapeShortCond, ShapeFallThrough:
				var target, fallthru string
				var cond isa.Cond
				if shape == ShapeFallThrough {
					if bi+1 >= len(f.Blocks) {
						return nil, fmt.Errorf("transform: %s falls off function end", b.Label)
					}
					fallthru = f.Blocks[bi+1].Label
					if blockRAM(fallthru) == myRAM {
						break
					}
					b.Instrs = append(b.Instrs, isa.Instr{Op: isa.LDRLIT, Rd: isa.PC, Sym: fallthru})
					changed = true
					break
				}
				t := b.Instrs[len(b.Instrs)-1]
				target = t.Sym
				if bi+1 >= len(f.Blocks) {
					return nil, fmt.Errorf("transform: %s falls off function end", b.Label)
				}
				fallthru = f.Blocks[bi+1].Label
				if blockRAM(target) == myRAM && blockRAM(fallthru) == myRAM {
					break // both edges stay local
				}
				switch shape {
				case ShapeCond:
					cond = t.Cond
					b.Instrs = b.Instrs[:len(b.Instrs)-1]
				case ShapeShortCond:
					// cbz → eq condition, cbnz → ne, preceded by cmp #0.
					cond = isa.NE
					if t.Op == isa.CBZ {
						cond = isa.EQ
					}
					b.Instrs = b.Instrs[:len(b.Instrs)-1]
					b.Instrs = append(b.Instrs,
						isa.Instr{Op: isa.CMP, Rn: t.Rn, Imm: 0, HasImm: true})
				}
				scratch := ScratchReg
				if liveOut != nil {
					if r, ok := scavenge(liveOut[b]); ok {
						scratch = r
						rep.Scavenged++
					}
				}
				b.Instrs = append(b.Instrs,
					isa.Instr{Op: isa.IT, Cond: cond, ITMask: "e"},
					isa.Instr{Op: isa.LDRLIT, Cond: cond, Rd: scratch, Sym: target},
					isa.Instr{Op: isa.LDRLIT, Cond: cond.Invert(), Rd: scratch, Sym: fallthru},
					isa.Instr{Op: isa.BX, Rm: scratch},
				)
				changed = true
			}

			if changed {
				rep.Instrumented = append(rep.Instrumented, b.Label)
				rep.ExtraBytes += b.SizeWithLiterals() - oldBytes
				rep.ExtraCycles += b.Cycles() - oldCycles
			}
		}
	}
	p.Reindex()
	if err := ir.Verify(p); err != nil {
		return nil, fmt.Errorf("transform: produced invalid program: %w", err)
	}
	return rep, nil
}
