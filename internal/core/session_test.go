package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/mcc"
	"repro/internal/sim"
)

func sessionForTest(t testing.TB, bench string, level mcc.OptLevel) *core.Session {
	t.Helper()
	b := beebs.Get(bench)
	if b == nil {
		t.Fatalf("benchmark %q missing", bench)
	}
	prog, err := mcc.Compile(b.Source, level)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSession(prog, core.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sessionConfigs are deliberately overlapping: several share the model,
// several share only the baseline, two are identical. Concurrent solves
// over them exercise every stage's sharing path.
var sessionConfigs = []core.Options{
	{},
	{}, // identical to the first: must resolve to the same Report
	{UseProfile: true},
	{Xlimit: 1.05},
	{Xlimit: 1.5},
	{Solver: core.SolverGreedy},
	{Solver: core.SolverFunction},
	{Rspare: 256},
	{LinkTime: true},
}

// TestSessionConcurrentSolves runs overlapping configurations of one
// Session concurrently (twice each) and asserts every result is
// byte-identical to a serial fresh-session reference. Under -race this
// is the "two solves from one Session don't share mutable state" check:
// any cross-configuration mutation of a shared artifact either trips the
// race detector or diverges from the reference fingerprints.
func TestSessionConcurrentSolves(t *testing.T) {
	const bench, level = "int_matmult", mcc.O2

	// Serial references, one pristine session each.
	want := make([][]byte, len(sessionConfigs))
	for i, opts := range sessionConfigs {
		rep, err := sessionForTest(t, bench, level).Optimize(context.Background(), opts)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		want[i] = fingerprintJSON(t, bench, level, rep)
	}

	s := sessionForTest(t, bench, level)
	reports := make([]*core.Report, 2*len(sessionConfigs))
	var wg sync.WaitGroup
	for round := 0; round < 2; round++ {
		for i := range sessionConfigs {
			wg.Add(1)
			go func(slot, cfg int) {
				defer wg.Done()
				rep, err := s.Optimize(context.Background(), sessionConfigs[cfg])
				if err != nil {
					t.Errorf("config %d: %v", cfg, err)
					return
				}
				reports[slot] = rep
			}(round*len(sessionConfigs)+i, i)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for slot, rep := range reports {
		cfg := slot % len(sessionConfigs)
		if got := fingerprintJSON(t, bench, level, rep); !bytes.Equal(got, want[cfg]) {
			t.Errorf("config %d via shared session diverges from fresh-session reference:\n got %s\nwant %s",
				cfg, got, want[cfg])
		}
	}

	// Identical configurations must share one memoized Report...
	if reports[0] != reports[1] {
		t.Error("two identical configurations built two Reports from one session")
	}
	// ...and the counters must show it: 9 distinct configs (two of the
	// ten are identical), each requested twice.
	st := s.Stats()
	if distinct := uint64(len(sessionConfigs) - 1); st.Optimize.Misses != distinct {
		t.Errorf("optimize misses = %d, want %d", st.Optimize.Misses, distinct)
	}
	if st.Baseline.Misses != 1 {
		t.Errorf("baseline simulated %d times across all configurations, want 1", st.Baseline.Misses)
	}
	if st.Reuses() == 0 {
		t.Error("shared session reported zero stage reuses")
	}
}

func fingerprintJSON(t testing.TB, bench string, level mcc.OptLevel, rep *core.Report) []byte {
	t.Helper()
	data, err := json.Marshal(fingerprint(bench, level.String(), rep))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSessionStageSharing pins which stages a profiled run shares with a
// static run of the same session: the baseline simulation and CFG are
// reused, the frequency estimate and model are not.
func TestSessionStageSharing(t *testing.T) {
	s := sessionForTest(t, "crc32", mcc.O2)
	if _, err := s.Optimize(context.Background(), core.Options{}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Baseline.Misses != 1 || st.Freq.Misses != 1 || st.Model.Misses != 1 {
		t.Fatalf("static run: baseline/freq/model misses = %d/%d/%d, want 1/1/1",
			st.Baseline.Misses, st.Freq.Misses, st.Model.Misses)
	}

	if _, err := s.Optimize(context.Background(), core.Options{UseProfile: true}); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Baseline.Misses != 1 {
		t.Errorf("profiled run re-simulated the baseline (%d misses)", st.Baseline.Misses)
	}
	if st.Baseline.Hits == 0 {
		t.Error("profiled run did not reuse the baseline")
	}
	if st.Freq.Misses != 2 || st.Model.Misses != 2 {
		t.Errorf("freq/model misses = %d/%d, want 2/2 (profiled needs its own)",
			st.Freq.Misses, st.Model.Misses)
	}
	if st.SimRuns != 2 {
		// Shared baseline + ONE optimized run: crc32's static and profiled
		// solves pick the same placement, so the optimized simulation is
		// also shared via the opt-run memo.
		t.Errorf("sim runs = %d, want 2", st.SimRuns)
	}
	if st.OptRun.Hits == 0 {
		t.Error("same-placement profiled run did not reuse the optimized simulation")
	}
	if st.CyclesSimulated == 0 {
		t.Error("cycles simulated not counted")
	}
}

// TestSessionTracedBaselineServesUntraced: a traced baseline measurement
// satisfies later untraced requests (the observer is passive), so Trace
// then no-Trace costs one baseline simulation, not two.
func TestSessionTracedBaselineServesUntraced(t *testing.T) {
	s := sessionForTest(t, "crc32", mcc.O2)
	if _, err := s.Optimize(context.Background(), core.Options{Trace: true}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Optimize(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineTrace != nil {
		t.Error("untraced request returned a traced report")
	}
	if st := s.Stats(); st.Baseline.Misses != 1 {
		t.Errorf("baseline simulated %d times for traced+untraced, want 1", st.Baseline.Misses)
	}
}

// TestSessionMachineReuseMatchesFresh: the session runs its simulations
// on one pooled sim.Machine retargeted across images via SetImage. Every
// such run must be statistically indistinguishable from a machine
// allocated fresh for that image — Stats down to the float bits and the
// per-block profile.
func TestSessionMachineReuseMatchesFresh(t *testing.T) {
	s := sessionForTest(t, "crc32", mcc.O2)
	// Optimize runs the baseline and the optimized simulation in
	// sequence; the second acquires the machine the first parked.
	rep, err := s.Optimize(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Measure(context.Background(), nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, img *layout.Image, got *sim.Stats) {
		t.Helper()
		fresh := sim.New(img, s.Profile())
		want, err := fresh.Run()
		if err != nil {
			t.Fatalf("%s fresh run: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: pooled-machine stats diverge from fresh machine:\n got %+v\nwant %+v",
				name, got, want)
		}
	}
	check("baseline", base.Image, base.Stats)
	check("optimized", rep.Image, rep.Optimized.Stats)
}

// TestSessionProfileMismatch: a Session refuses Options that contradict
// its fixed board profile instead of silently ignoring them.
func TestSessionProfileMismatch(t *testing.T) {
	s := sessionForTest(t, "crc32", mcc.O2)
	other := *s.Profile()
	if _, err := s.Optimize(context.Background(), core.Options{Profile: &other}); err == nil {
		t.Fatal("mismatched profile accepted")
	}
}
