// Package core is the public face of the reproduction: it wires the whole
// pipeline together the way the paper's prototype does —
//
//	program (IR) → CFG analysis → Fb estimation → cost model (Eqs. 1–9)
//	→ ILP solve → code transformation (Figure 4) → layout → simulation
//
// and reports baseline-versus-optimized energy, execution time and
// average power, validating along the way that the transformed program
// computes exactly the same results as the original.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transform"
)

// Solver selects the placement algorithm.
type Solver string

// Available solvers.
const (
	SolverILP        Solver = "ilp"        // the paper's formulation (default)
	SolverGreedy     Solver = "greedy"     // density heuristic baseline
	SolverFunction   Solver = "function"   // whole-function granularity baseline
	SolverExhaustive Solver = "exhaustive" // true optimum over the hottest blocks
)

// Options configures a pipeline run. The zero value means: STM32F100
// profile, default memory map, Rspare derived statically from the data
// and stack budget, Xlimit 2.0, static frequency estimate, ILP solver.
type Options struct {
	Profile *power.Profile
	Layout  layout.Config

	// Rspare caps RAM used for code, in bytes. 0 derives it statically
	// (RAM − data − stack reserve), as §4.1 suggests.
	Rspare float64
	// Xlimit is the maximum execution-time ratio (Eq. 9). 0 means 2.0.
	Xlimit float64
	// UseProfile runs the baseline once and feeds the measured block
	// frequencies to the model instead of the static estimate — the
	// "w/Frequency" variant in Figure 5.
	UseProfile bool
	// Solver picks the placement algorithm ("" = ILP).
	Solver Solver
	// MaxCandidates caps ILP branching variables (0 = model default).
	MaxCandidates int
	// ExhaustiveK bounds the exhaustive solver's block set (0 = 12).
	ExhaustiveK int
	// LinkTime enables the paper's §8 future-work mode: the optimizer
	// sees library code (soft-float runtime) and may place it in RAM,
	// as if the pass ran in the linker with a full view of the program.
	LinkTime bool
	// Trace attaches an energy-attribution collector (internal/trace) to
	// both simulations and fills Report.BaselineTrace/OptimizedTrace.
	Trace bool
	// MaxInstrs bounds each simulated run (0 = simulator default); runs
	// exceeding it fault with the current block and function named.
	MaxInstrs uint64

	// SolveMaxNodes caps branch-and-bound nodes in the ILP solve
	// (0 = the solver default). When the cap trips, the degradation
	// ladder keeps the best incumbent instead of failing; the Report's
	// Strategy records which rung produced the placement.
	SolveMaxNodes int
	// SolveMaxLPIter caps simplex pivots per LP relaxation (0 = none).
	SolveMaxLPIter int
	// SolveTimeout bounds the ILP solve's wall time (0 = none). Unlike
	// the count budgets it is non-deterministic by nature; the ladder
	// records a deterministic reason string, never the elapsed time.
	SolveTimeout time.Duration

	// PowerTrace selects the intermittent-computing environment
	// (DESIGN.md §6l): a built-in harvest profile name (steady, bursty,
	// adversarial — generated against the baseline run's cycle count) or
	// inline trace text/JSON. Both images then also run trace-driven
	// (sim.RunIntermittent) and Report.Intermittent compares them; the
	// same concrete outage schedule is injected into baseline and
	// optimized runs. "" (the default) is the always-powered pipeline,
	// byte-identical to builds without this field.
	PowerTrace string
	// CheckpointCycles is the periodic checkpoint interval for the
	// trace-driven runs (0 = sim.DefaultCheckpointCycles). Ignored
	// without PowerTrace.
	CheckpointCycles uint64
	// CkptAware makes the placement solve intermittent-aware: the model
	// objective charges each RAM-placed byte its journal traffic over
	// the run's expected checkpoints and outages (model.Params.
	// CkptNJPerByte). Off, the placement is checkpoint-oblivious and the
	// trace only affects measurement. Ignored without PowerTrace.
	CkptAware bool
}

func (o *Options) fill() {
	if o.Profile == nil {
		o.Profile = power.STM32F100()
	}
	if o.Layout == (layout.Config{}) {
		o.Layout = layout.DefaultConfig()
	}
	if o.Xlimit == 0 {
		o.Xlimit = 2.0
	}
	if o.Solver == "" {
		o.Solver = SolverILP
	}
	if o.ExhaustiveK == 0 {
		o.ExhaustiveK = 12
	}
}

// RunMetrics captures one simulated execution.
type RunMetrics struct {
	EnergyMJ     float64
	TimeS        float64
	PowerMW      float64
	Cycles       uint64
	Instructions uint64
	RAMCodeBytes int
	Stats        *sim.Stats
}

// Report is the outcome of an Optimize run.
type Report struct {
	Baseline  RunMetrics
	Optimized RunMetrics

	Placement  *placement.Result
	Model      *model.Model
	Transform  *transform.Report
	Optimized0 *ir.Program // the transformed program
	Image      *layout.Image
	Analysis   *analysis.Result // static verification of the transformed image

	// BaselineTrace and OptimizedTrace are the per-block energy
	// attributions of the two runs (nil unless Options.Trace).
	BaselineTrace  *trace.Profile
	OptimizedTrace *trace.Profile

	// Strategy names the degradation-ladder rung that produced the
	// placement ("ilp-optimal" when nothing degraded; see the
	// placement.Strategy* constants). StrategyReason is the deterministic
	// explanation of why a degraded rung was taken ("" for the exact
	// solve).
	Strategy       string
	StrategyReason string

	// EnergyChange, TimeChange and PowerChange are fractional changes
	// (optimized/baseline − 1); negative is an improvement for energy
	// and power.
	EnergyChange float64
	TimeChange   float64
	PowerChange  float64
	// Ke and Kt are the case-study factors of Eq. 11.
	Ke, Kt float64

	// Intermittent compares the two images under the injected power
	// trace (nil unless Options.PowerTrace).
	Intermittent *IntermittentComparison

	// StartupCopyCycles and StartupCopyEnergyMJ estimate the one-time
	// boot cost of the runtime's flash→RAM copy of .data and .ramcode
	// ("loaded to RAM at start-up by the runtime", §5). The paper leaves
	// this out — it amortizes over the application's lifetime — and this
	// report surfaces it so that assumption can be checked: it is a few
	// thousand cycles against millions per run.
	StartupCopyCycles   uint64
	StartupCopyEnergyMJ float64
}

// IntermittentComparison is the trace-driven half of a Report: both
// images replayed against the same concrete outage schedule.
type IntermittentComparison struct {
	// Spec is the resolved schedule in canonical trace text ("at down"
	// per line) — profile names resolve against the baseline cycle count
	// before keying, so two spellings of one schedule share this value.
	// Outages is the schedule length.
	Spec    string
	Outages int
	// CheckpointCycles is the resolved periodic checkpoint interval.
	CheckpointCycles uint64
	// CkptAware and CkptNJPerByte record whether — and at what per-byte
	// price — the placement solve saw the checkpoint term.
	CkptAware     bool
	CkptNJPerByte float64

	Baseline  *sim.IntermittentReport
	Optimized *sim.IntermittentReport
}

// WorkPerMJChange is the fractional change in completed work per
// millijoule (optimized/baseline − 1); positive is an improvement.
func (c *IntermittentComparison) WorkPerMJChange() float64 {
	b := c.Baseline.WorkPerMJ()
	if b == 0 {
		return 0
	}
	return c.Optimized.WorkPerMJ()/b - 1
}

// Optimize runs the full pipeline on the program. It is a thin wrapper
// over a single-use Session; sweeps that revisit the same program should
// build one Session and call its Optimize instead, so the compile,
// baseline simulation, CFG, frequency and model stages are shared across
// configurations.
func Optimize(p *ir.Program, opts Options) (*Report, error) {
	return OptimizeContext(context.Background(), p, opts)
}

// OptimizeContext is Optimize with cooperative cancellation: ctx reaches
// the solver's branch-and-bound loop and both simulated runs, so a
// cancelled or deadline-expired context stops the pipeline within their
// poll windows with an error matching the context error.
func OptimizeContext(ctx context.Context, p *ir.Program, opts Options) (*Report, error) {
	opts.fill()
	s, err := NewSession(p, SessionConfig{Profile: opts.Profile, Layout: opts.Layout})
	if err != nil {
		return nil, err
	}
	return s.Optimize(ctx, opts)
}

// startupCopyCost estimates the boot-time copy of .data and .ramcode: a
// word-copy loop (ldr+str+index+branch ≈ 6 cycles per word) fetching from
// flash.
func startupCopyCost(img *layout.Image, prof *power.Profile) (uint64, float64) {
	words := uint64((img.RAMCodeBytes + img.DataBytes + 3) / 4)
	cycles := words * 6
	mw := prof.FetchPower[power.Flash][0] // ClassALU-dominated loop
	energyNJ := float64(cycles) * prof.EnergyPerCycle(mw)
	return cycles, energyNJ * 1e-6
}

func metrics(m *sim.Machine, st *sim.Stats, img *layout.Image) RunMetrics {
	return RunMetrics{
		EnergyMJ:     st.EnergyMJ(),
		TimeS:        m.TimeSeconds(st),
		PowerMW:      m.AveragePowerMW(st),
		Cycles:       st.Cycles,
		Instructions: st.Instructions,
		RAMCodeBytes: img.RAMCodeBytes,
		Stats:        st,
	}
}

// BlockSaving attributes part of the run-level energy change to one
// block: the difference between its baseline and optimized attributed
// energy. Positive SavedNJ is a saving. Blocks that appear in only one
// run (e.g. never executed after optimization) still get a row.
type BlockSaving struct {
	Label       string
	Func        string
	InRAM       bool // placed in RAM in the optimized image
	BaselineNJ  float64
	OptimizedNJ float64
	SavedNJ     float64
}

// BlockSavings ranks blocks by their contribution to the measured energy
// change, largest absolute contribution first (n <= 0 returns all).
// Requires Options.Trace; returns nil when the report has no traces.
func (r *Report) BlockSavings(n int) []BlockSaving {
	if r.BaselineTrace == nil || r.OptimizedTrace == nil {
		return nil
	}
	rows := make(map[string]*BlockSaving)
	get := func(label, fn string) *BlockSaving {
		s := rows[label]
		if s == nil {
			s = &BlockSaving{Label: label, Func: fn}
			rows[label] = s
		}
		return s
	}
	for lbl, b := range r.BaselineTrace.Blocks {
		get(lbl, b.Func).BaselineNJ = b.EnergyNJ
	}
	for lbl, b := range r.OptimizedTrace.Blocks {
		s := get(lbl, b.Func)
		s.OptimizedNJ = b.EnergyNJ
		s.InRAM = b.InRAM
	}
	out := make([]BlockSaving, 0, len(rows))
	for _, s := range rows {
		s.SavedNJ = s.BaselineNJ - s.OptimizedNJ
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].SavedNJ), math.Abs(out[j].SavedNJ)
		if ai != aj {
			return ai > aj
		}
		return out[i].Label < out[j].Label
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// MovedLabels returns the RAM-placed block labels, sorted.
func (r *Report) MovedLabels() []string {
	var out []string
	for lbl, in := range r.Placement.InRAM {
		if in {
			out = append(out, lbl)
		}
	}
	sort.Strings(out)
	return out
}

// Summary renders a one-paragraph human-readable report.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"energy %+.1f%% (%.4f → %.4f mJ), time %+.1f%% (%.4f → %.4f ms), "+
			"power %+.1f%% (%.2f → %.2f mW), %d blocks in RAM (%d bytes of code)",
		100*r.EnergyChange, r.Baseline.EnergyMJ, r.Optimized.EnergyMJ,
		100*r.TimeChange, 1e3*r.Baseline.TimeS, 1e3*r.Optimized.TimeS,
		100*r.PowerChange, r.Baseline.PowerMW, r.Optimized.PowerMW,
		len(r.MovedLabels()), r.Optimized.RAMCodeBytes)
}
