package core_test

// Golden equivalence harness for the Session refactor: the fingerprints
// in testdata/session_goldens.json were generated from the monolithic
// pre-Session core.Optimize (go test -run TestSessionGolden -update at
// that commit) and pin every externally visible Report quantity for all
// ten BEEBS benchmarks at the paper's two levels. The staged pipeline
// must reproduce them byte-for-byte.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/mcc"
)

var updateGoldens = flag.Bool("update", false, "rewrite testdata goldens from the current pipeline")

// reportFingerprint flattens a Report into a deterministic, fully
// comparable form: every externally visible number, no pointer identity.
type reportFingerprint struct {
	Bench string `json:"bench"`
	Level string `json:"level"`

	Baseline  metricsFingerprint `json:"baseline"`
	Optimized metricsFingerprint `json:"optimized"`

	EnergyChange float64 `json:"energy_change"`
	TimeChange   float64 `json:"time_change"`
	PowerChange  float64 `json:"power_change"`
	Ke           float64 `json:"ke"`
	Kt           float64 `json:"kt"`

	StartupCopyCycles   uint64  `json:"startup_copy_cycles"`
	StartupCopyEnergyMJ float64 `json:"startup_copy_energy_mj"`

	Moved []string `json:"moved"`

	PlacementMethod string  `json:"placement_method"`
	PlacementNodes  int     `json:"placement_nodes"`
	PlacementProven bool    `json:"placement_proven"`
	OutcomeEnergyNJ float64 `json:"outcome_energy_nj"`
	OutcomeCycles   float64 `json:"outcome_cycles"`
	OutcomeRAMBytes float64 `json:"outcome_ram_bytes"`

	ModelBaseCycles   float64 `json:"model_base_cycles"`
	ModelBaseEnergyNJ float64 `json:"model_base_energy_nj"`
	ModelBlocks       int     `json:"model_blocks"`

	TransformMoved        []string `json:"transform_moved"`
	TransformInstrumented []string `json:"transform_instrumented"`
	TransformExtraBytes   int      `json:"transform_extra_bytes"`
	TransformExtraCycles  int      `json:"transform_extra_cycles"`
	TransformScavenged    int      `json:"transform_scavenged"`

	ImageFlashCodeBytes int `json:"image_flash_code_bytes"`
	ImageRAMCodeBytes   int `json:"image_ram_code_bytes"`
	ImageDataBytes      int `json:"image_data_bytes"`
	ImageRodataBytes    int `json:"image_rodata_bytes"`

	AnalysisDiags int `json:"analysis_diags"`
}

type metricsFingerprint struct {
	EnergyMJ         float64 `json:"energy_mj"`
	TimeS            float64 `json:"time_s"`
	PowerMW          float64 `json:"power_mw"`
	Cycles           uint64  `json:"cycles"`
	Instructions     uint64  `json:"instructions"`
	RAMCodeBytes     int     `json:"ram_code_bytes"`
	ContentionStalls uint64  `json:"contention_stalls"`
}

func metricsFP(m core.RunMetrics) metricsFingerprint {
	return metricsFingerprint{
		EnergyMJ:         m.EnergyMJ,
		TimeS:            m.TimeS,
		PowerMW:          m.PowerMW,
		Cycles:           m.Cycles,
		Instructions:     m.Instructions,
		RAMCodeBytes:     m.RAMCodeBytes,
		ContentionStalls: m.Stats.ContentionStalls,
	}
}

func fingerprint(bench, level string, rep *core.Report) reportFingerprint {
	return reportFingerprint{
		Bench:               bench,
		Level:               level,
		Baseline:            metricsFP(rep.Baseline),
		Optimized:           metricsFP(rep.Optimized),
		EnergyChange:        rep.EnergyChange,
		TimeChange:          rep.TimeChange,
		PowerChange:         rep.PowerChange,
		Ke:                  rep.Ke,
		Kt:                  rep.Kt,
		StartupCopyCycles:   rep.StartupCopyCycles,
		StartupCopyEnergyMJ: rep.StartupCopyEnergyMJ,
		Moved:               rep.MovedLabels(),
		PlacementMethod:     rep.Placement.Method,
		PlacementNodes:      rep.Placement.Nodes,
		PlacementProven:     rep.Placement.Proven,
		OutcomeEnergyNJ:     rep.Placement.Outcome.EnergyNJ,
		OutcomeCycles:       rep.Placement.Outcome.Cycles,
		OutcomeRAMBytes:     rep.Placement.Outcome.RAMBytes,
		ModelBaseCycles:     rep.Model.BaseCycles,
		ModelBaseEnergyNJ:   rep.Model.BaseEnergyNJ,
		ModelBlocks:         len(rep.Model.Blocks),
		TransformMoved:      append([]string(nil), rep.Transform.Moved...),

		TransformInstrumented: append([]string(nil), rep.Transform.Instrumented...),
		TransformExtraBytes:   rep.Transform.ExtraBytes,
		TransformExtraCycles:  rep.Transform.ExtraCycles,
		TransformScavenged:    rep.Transform.Scavenged,
		ImageFlashCodeBytes:   rep.Image.FlashCodeBytes,
		ImageRAMCodeBytes:     rep.Image.RAMCodeBytes,
		ImageDataBytes:        rep.Image.DataBytes,
		ImageRodataBytes:      rep.Image.RodataBytes,
		AnalysisDiags:         len(rep.Analysis.Diags),
	}
}

const goldenPath = "testdata/session_goldens.json"

func goldenLevels() []mcc.OptLevel { return []mcc.OptLevel{mcc.O2, mcc.Os} }

// computeFingerprints runs the full pipeline for every benchmark × level
// through core.Optimize and fingerprints each report.
func computeFingerprints(t testing.TB) []reportFingerprint {
	t.Helper()
	var out []reportFingerprint
	for _, b := range beebs.All() {
		for _, level := range goldenLevels() {
			prog, err := mcc.Compile(b.Source, level)
			if err != nil {
				t.Fatalf("%s %v: %v", b.Name, level, err)
			}
			rep, err := core.Optimize(prog, core.Options{})
			if err != nil {
				t.Fatalf("%s %v: %v", b.Name, level, err)
			}
			out = append(out, fingerprint(b.Name, level.String(), rep))
		}
	}
	return out
}

func marshalFingerprints(t testing.TB, fps []reportFingerprint) []byte {
	t.Helper()
	data, err := json.MarshalIndent(fps, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestSessionGolden asserts that the pipeline — today a thin wrapper over
// core.Session — reproduces the monolithic pre-refactor reports exactly,
// for all ten BEEBS benchmarks at O2 and Os.
func TestSessionGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10×2 golden sweep in long mode only")
	}
	got := marshalFingerprints(t, computeFingerprints(t))
	if *updateGoldens {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing goldens (run with -update at a known-good commit): %v", err)
	}
	if !bytes.Equal(got, want) {
		// Decode both to name the first diverging run.
		var gf, wf []reportFingerprint
		if json.Unmarshal(got, &gf) == nil && json.Unmarshal(want, &wf) == nil && len(gf) == len(wf) {
			for i := range gf {
				gj, _ := json.Marshal(gf[i])
				wj, _ := json.Marshal(wf[i])
				if !bytes.Equal(gj, wj) {
					t.Errorf("%s %s diverges:\n got %s\nwant %s",
						gf[i].Bench, gf[i].Level, gj, wj)
				}
			}
		}
		t.Fatalf("session pipeline output differs from the pre-refactor goldens (%d vs %d bytes)",
			len(got), len(want))
	}
}
