package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/analysis/bounds"
	"repro/internal/cfg"
	"repro/internal/errs"
	"repro/internal/freq"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transform"
)

// Session is the staged form of the pipeline: one program, one board
// profile, one memory map — and every expensive artifact (baseline
// image/run, CFG, frequency estimates, cost models, placements, whole
// reports) materialized at most once and shared across configurations.
// The paper's experiments are sweeps: Figure 5 solves every benchmark
// twice (static and profiled Fb), Figure 6 re-solves one program at a
// dozen constraint points, and the §6 aggregate revisits the same
// benchmark×level cells other experiments already ran. A Session makes
// all of that share work instead of recompiling and re-simulating the
// identical baseline each time.
//
// Every artifact handed out is treated as immutable once built: models,
// graphs and estimates are read-only to the solvers, the baseline
// machine state is snapshotted into plain bytes, and each Optimize call
// transforms a fresh clone of the program. That makes concurrent solves
// over one Session safe (the evaluation sweeps run them across a worker
// pool under the race detector).
type Session struct {
	prog      *ir.Program
	profile   *power.Profile
	layout    layout.Config
	warmSolve bool
	noFuse    bool

	counters sessionCounters

	// warmIdx is the warm-start registry: per solve family (same model
	// inputs except the Rspare/Xlimit bounds, same solver and budget),
	// the completed proven solves and their reusable state. A solve at
	// one constraint point consults its nearest single-axis neighbor
	// here before paying for a cold solve.
	warmIdx struct {
		mu  sync.Mutex
		idx map[solveFamily][]solvePoint
	}

	// machines is a one-slot pool of simulator instances. sim.Machine
	// retargets across images via SetImage, keeping its memory arrays and
	// predecode-table storage, so the session's many runs (baseline,
	// optimized, sweep points) reuse one machine instead of allocating
	// per run. Concurrent solves that find the slot empty just allocate —
	// pooling is an optimization, never a correctness dependency.
	machines struct {
		mu   sync.Mutex
		free *sim.Machine
	}

	graphs     memo[struct{}, map[string]*cfg.Graph]
	spare      memo[struct{}, float64]
	measures   memo[measureKey, *Measurement]
	freqs      memo[freqKey, freq.Estimate]
	models     memo[modelKey, *model.Model]
	solves     memo[solveKey, *placement.Result]
	transforms memo[transformKey, *transformed]
	optRuns    memo[optRunKey, *Measurement]
	reports    memo[reportKey, *Report]
	// intermits memoizes trace-driven runs per (image, trace, interval):
	// the zero transform key is the baseline image, so an oblivious and
	// an aware configuration that test the same image under the same
	// schedule replay it once.
	intermits memo[intermitKey, *sim.IntermittentReport]
	// brackets memoizes the static energy/cycle bounds per placed image;
	// the zero key is the all-in-flash baseline image.
	brackets memo[transformKey, *bounds.Result]
}

// SessionConfig fixes the per-session invariants. Zero values mean the
// pipeline defaults (STM32F100 profile, default memory map) — the same
// defaults Options.fill applies.
type SessionConfig struct {
	Profile *power.Profile
	Layout  layout.Config
	// WarmSolve enables the warm-start registry: an ILP solve consults
	// the completed solve at a neighboring Rspare/Xlimit point and reuses
	// its incumbent, bound and simplex basis. The placement and every
	// RunJSON-level output are identical to a cold solve's (golden
	// tests); what changes is solver effort — Result.Nodes, the recorded
	// warm-ilp-optimal strategy — and which neighbor is consulted can
	// depend on completion order under concurrency. Consumers that
	// fingerprint solver effort (or need it deterministic under
	// concurrent solves) must leave this off; the sweeps and the service
	// turn it on.
	WarmSolve bool
	// NoFuse forces every simulator run to slot-at-a-time dispatch,
	// bypassing the superblock engine (sim.Machine.NoFuse). Outputs are
	// byte-identical either way — that identity is the fused engine's
	// contract and what the differential sweeps assert — so this is a
	// debug/verification knob (beebsbench -nofuse), never a semantics
	// switch.
	NoFuse bool
}

// NewSession verifies the program once and wraps it in an empty staged
// pipeline. The program must not be mutated afterwards; every transform
// the Session performs works on a clone.
func NewSession(p *ir.Program, cfg SessionConfig) (*Session, error) {
	if cfg.Profile == nil {
		cfg.Profile = power.STM32F100()
	}
	if cfg.Layout == (layout.Config{}) {
		cfg.Layout = layout.DefaultConfig()
	}
	if err := ir.Verify(p); err != nil {
		return nil, errs.Wrap(errs.StageVerify, err)
	}
	return &Session{prog: p, profile: cfg.Profile, layout: cfg.Layout, warmSolve: cfg.WarmSolve, noFuse: cfg.NoFuse}, nil
}

// Program returns the session's (immutable) input program.
func (s *Session) Program() *ir.Program { return s.prog }

// acquireMachine returns a simulator targeted at img: the pooled machine
// retargeted via SetImage when it is idle, a fresh one otherwise.
func (s *Session) acquireMachine(img *layout.Image) *sim.Machine {
	s.machines.mu.Lock()
	m := s.machines.free
	s.machines.free = nil
	s.machines.mu.Unlock()
	if m == nil {
		m = sim.New(img, s.profile)
	} else {
		m.SetImage(img)
	}
	m.NoFuse = s.noFuse
	return m
}

// releaseMachine detaches any observer and parks the machine for reuse.
// If another run already parked one, this machine is simply dropped.
func (s *Session) releaseMachine(m *sim.Machine) {
	m.Attach(nil)
	m.MaxInstrs = 0
	s.machines.mu.Lock()
	if s.machines.free == nil {
		s.machines.free = m
	}
	s.machines.mu.Unlock()
}

// Profile returns the session's board power profile.
func (s *Session) Profile() *power.Profile { return s.profile }

// LayoutConfig returns the session's memory map.
func (s *Session) LayoutConfig() layout.Config { return s.layout }

// ---------------------------------------------------------------------
// Stage keys. Each stage is memoized on exactly the parameters that can
// change its output; everything else is a session invariant.

// measureKey identifies one simulated run of the session program: the
// placement (canonicalized label set), the instruction limit, and
// whether the energy-attribution collector was attached.
type measureKey struct {
	placement string
	maxInstrs uint64
	traced    bool
}

// freqKey identifies a frequency estimate: the static estimate has one
// value per session; the profiled estimate depends on the baseline run,
// hence on the instruction limit.
type freqKey struct {
	profiled  bool
	maxInstrs uint64
}

// modelKey carries every parameter that reaches model.Build: the Fb
// source, the (resolved) RAM and time budgets, the candidate cap,
// link-time visibility, and the checkpoint term (0 = always-powered).
// EFlash/ERAM come from the session profile.
type modelKey struct {
	freq          freqKey
	rspare        float64
	xlimit        float64
	maxCandidates int
	linkTime      bool
	ckptNJPerByte float64
}

// solveKey is a modelKey plus the solver choice and its resource budget.
// The budget is part of the key: a budget-degraded placement must never
// be served to a caller that asked for the exact solve, and vice versa.
type solveKey struct {
	model       modelKey
	solver      Solver
	exhaustiveK int
	budget      placement.Budget
}

// reportKey identifies a full Optimize outcome: the solve plus the
// run-level knobs (tracing, instruction limit, injected power trace).
type reportKey struct {
	solve        solveKey
	traced       bool
	maxInstrs    uint64
	intermittent intermittentSpec
}

// intermittentSpec is the resolved intermittent environment of one
// configuration: the concrete outage schedule (canonical text form — a
// profile name plus the measured horizon resolves to this before keying,
// so identical schedules share memo slots however they were spelled),
// the checkpoint interval, and whether the solve saw the checkpoint
// term. The zero value is the always-powered pipeline.
type intermittentSpec struct {
	enabled    bool
	trace      string
	ckptCycles uint64
	aware      bool
}

// transformKey identifies a transformed program: the chosen placement,
// the transform mode, and the RAM budget the static analysis verifies
// against. Two solves that pick the same block set — common between the
// static and profiled Figure 5 variants, which also share the derived
// budget — share one transformed program, optimized image and analysis.
type transformKey struct {
	placement string
	linkTime  bool
	rspare    float64
}

// optRunKey identifies one simulated run of a transformed program.
type optRunKey struct {
	transform transformKey
	traced    bool
	maxInstrs uint64
}

// intermitKey identifies one trace-driven run: the image (zero transform
// key = the all-in-flash baseline), the canonical trace text, the
// checkpoint interval and the instruction limit.
type intermitKey struct {
	transform  transformKey
	trace      string
	ckptCycles uint64
	maxInstrs  uint64
}

func canonicalPlacement(inRAM map[string]bool) string {
	if len(inRAM) == 0 {
		return ""
	}
	labels := make([]string, 0, len(inRAM))
	for lbl, in := range inRAM {
		if in {
			labels = append(labels, lbl)
		}
	}
	sort.Strings(labels)
	return strings.Join(labels, "\x00")
}

// resolve normalizes Options into stage keys, filling the same defaults
// the monolithic path fills, so that e.g. Xlimit 0 and Xlimit 2.0 hit
// the same cache slot. With PowerTrace set, resolution includes the
// baseline run (memoized — it is the trace horizon and the checkpoint
// term's event-count basis), which is why it takes a context.
func (s *Session) resolve(ctx context.Context, opts Options) (reportKey, error) {
	if opts.Profile != nil && opts.Profile != s.profile {
		return reportKey{}, fmt.Errorf("core: session profile mismatch (build a new Session for a different board)")
	}
	if opts.Layout != (layout.Config{}) && opts.Layout != s.layout {
		return reportKey{}, fmt.Errorf("core: session layout mismatch (build a new Session for a different memory map)")
	}
	opts.Profile, opts.Layout = s.profile, s.layout
	opts.fill()
	rspare := opts.Rspare
	if rspare == 0 {
		var err error
		rspare, err = s.SpareRAM()
		if err != nil {
			return reportKey{}, err
		}
	}
	mc := opts.MaxCandidates
	if mc == 0 {
		mc = model.DefaultMaxCandidates
	}
	ispec, ckptNJ, err := s.resolveIntermittent(ctx, opts)
	if err != nil {
		return reportKey{}, err
	}
	return reportKey{
		solve: solveKey{
			model: modelKey{
				freq:          freqKey{profiled: opts.UseProfile, maxInstrs: profiledMaxInstrs(opts.UseProfile, opts.MaxInstrs)},
				rspare:        rspare,
				xlimit:        opts.Xlimit,
				maxCandidates: mc,
				linkTime:      opts.LinkTime,
				ckptNJPerByte: ckptNJ,
			},
			solver:      opts.Solver,
			exhaustiveK: opts.ExhaustiveK,
			budget: placement.Budget{
				MaxNodes:  opts.SolveMaxNodes,
				MaxLPIter: opts.SolveMaxLPIter,
				Timeout:   opts.SolveTimeout,
			},
		},
		traced:       opts.Trace,
		maxInstrs:    opts.MaxInstrs,
		intermittent: ispec,
	}, nil
}

// resolveIntermittent turns the PowerTrace/CheckpointCycles/CkptAware
// knobs into the resolved spec plus the model's checkpoint term. The
// horizon for profile generation is the baseline run's cycle count, so
// the outage density scales with the workload; the same concrete trace
// is injected into the baseline and optimized runs. The checkpoint term
// prices each RAM-placed byte at its journal traffic over the run's
// expected checkpoint count (baseline cycles / interval) and the
// schedule's outage count — deterministic in the key inputs, so the
// model memo stays exact.
func (s *Session) resolveIntermittent(ctx context.Context, opts Options) (intermittentSpec, float64, error) {
	if opts.PowerTrace == "" {
		return intermittentSpec{}, 0, nil
	}
	base, err := s.Measure(ctx, nil, false, opts.MaxInstrs)
	if err != nil {
		return intermittentSpec{}, 0, err
	}
	tr, err := sim.ResolveTrace(opts.PowerTrace, base.Stats.Cycles)
	if err != nil {
		return intermittentSpec{}, 0, err
	}
	ispec := intermittentSpec{
		enabled:    true,
		trace:      tr.String(),
		ckptCycles: opts.CheckpointCycles,
		aware:      opts.CkptAware,
	}
	if ispec.ckptCycles == 0 {
		ispec.ckptCycles = sim.DefaultCheckpointCycles
	}
	var ckptNJ float64
	if opts.CkptAware {
		perCkptNJ, perRestoreNJ := sim.CheckpointCostPerByteNJ(s.profile)
		nCkpt := float64(base.Stats.Cycles / ispec.ckptCycles)
		nOut := float64(len(tr.Outages))
		ckptNJ = nCkpt*perCkptNJ + nOut*perRestoreNJ
	}
	return ispec, ckptNJ, nil
}

// profiledMaxInstrs keeps the static-estimate key independent of the
// instruction limit (the estimate never simulates).
func profiledMaxInstrs(profiled bool, maxInstrs uint64) uint64 {
	if !profiled {
		return 0
	}
	return maxInstrs
}

// ---------------------------------------------------------------------
// Stages.

// Graphs builds (once) the per-function control-flow graphs.
func (s *Session) Graphs() (map[string]*cfg.Graph, error) {
	return s.graphs.do(&s.counters.cfg, struct{}{}, func() (map[string]*cfg.Graph, error) {
		g, err := cfg.BuildAll(s.prog)
		if err != nil {
			return nil, errs.Wrap(errs.StageCFG, err)
		}
		return g, nil
	})
}

// SpareRAM derives (once) the default Rspare: physical RAM minus data
// and the statically bounded stack, as §4.1 suggests.
func (s *Session) SpareRAM() (float64, error) {
	return s.spare.do(&s.counters.cfg, struct{}{}, func() (float64, error) {
		return float64(layout.SpareRAM(s.prog, s.layout)), nil
	})
}

// Measurement is one simulated execution of the session program under a
// given placement: the image, the run statistics, the derived headline
// metrics, the optional energy attribution, and a snapshot of every
// writable global's final bytes (for semantic-equivalence checks).
type Measurement struct {
	Image   *layout.Image
	Stats   *sim.Stats
	Metrics RunMetrics
	// Trace is the per-block energy attribution (nil unless the run was
	// requested with tracing).
	Trace *trace.Profile

	globals map[string][]byte
}

// Measure lays out the session program with the given placement and
// simulates it, memoizing on (placement, instruction limit, tracing).
// A nil placement is the all-in-flash baseline. An untraced request is
// satisfied by an already-completed traced run of the same
// configuration: the observer is passive, so the statistics and final
// memory state are identical. Cancelling ctx stops the simulation within
// its poll window; a cancelled computation is evicted from the memo so a
// later caller with a live context can retry.
func (s *Session) Measure(ctx context.Context, inRAM map[string]bool, traced bool, maxInstrs uint64) (*Measurement, error) {
	key := measureKey{placement: canonicalPlacement(inRAM), maxInstrs: maxInstrs, traced: traced}
	if !traced {
		tk := key
		tk.traced = true
		if m, ok := s.measures.peek(tk); ok {
			s.counters.baseline.hit()
			return m, nil
		}
	}
	return s.measures.do(&s.counters.baseline, key, func() (*Measurement, error) {
		img, err := layout.New(s.prog, s.layout, inRAM)
		if err != nil {
			return nil, errs.Wrap(errs.StageLayout, err)
		}
		machine := s.acquireMachine(img)
		defer s.releaseMachine(machine)
		machine.MaxInstrs = maxInstrs
		var col *trace.Collector
		if traced {
			col = trace.NewCollector()
			machine.Attach(col)
		}
		stats, err := machine.RunContext(ctx)
		if err != nil {
			return nil, errs.Wrap(errs.StageBaseline, err)
		}
		s.counters.simRuns.Add(1)
		s.counters.cyclesSimulated.Add(stats.Cycles)
		m := &Measurement{
			Image:   img,
			Stats:   stats,
			Metrics: metrics(machine, stats, img),
			globals: snapshotGlobals(s.prog, machine),
		}
		if col != nil {
			m.Trace = col.Profile()
		}
		return m, nil
	})
}

// Baseline is the all-in-flash Measure with the default instruction
// limit — the shared denominator of every configuration.
func (s *Session) Baseline(ctx context.Context) (*Measurement, error) {
	return s.Measure(ctx, nil, false, 0)
}

// Frequencies returns the Fb estimate: the static loop-depth estimate,
// or the measured block counts of the baseline run.
func (s *Session) Frequencies(ctx context.Context, useProfile bool, maxInstrs uint64) (freq.Estimate, error) {
	key := freqKey{profiled: useProfile, maxInstrs: profiledMaxInstrs(useProfile, maxInstrs)}
	return s.freqs.do(&s.counters.freq, key, func() (freq.Estimate, error) {
		if useProfile {
			base, err := s.Measure(ctx, nil, false, maxInstrs)
			if err != nil {
				return nil, errs.Wrap(errs.StageFreq, err)
			}
			return freq.FromProfile(base.Stats), nil
		}
		graphs, err := s.Graphs()
		if err != nil {
			return nil, err
		}
		return freq.Static(s.prog, graphs), nil
	})
}

// ModelSpec selects one cost-model instance. Unlike Options.Rspare,
// the Rspare here is literal bytes — a zero budget is a real (placeable-
// nothing) configuration in the Figure 6 sweeps; callers wanting the
// derived default pass SpareRAM(). Xlimit 0 and MaxCandidates 0 resolve
// to the pipeline defaults.
type ModelSpec struct {
	UseProfile    bool
	Rspare        float64
	Xlimit        float64
	MaxCandidates int
	LinkTime      bool
	// MaxInstrs only matters when UseProfile is set (it bounds the
	// profiling run).
	MaxInstrs uint64
	// CkptNJPerByte is the intermittent checkpoint term passed through
	// to model.Params (0 = always-powered).
	CkptNJPerByte float64
}

func (s *Session) resolveModel(spec ModelSpec) modelKey {
	if spec.Xlimit == 0 {
		spec.Xlimit = 2.0
	}
	if spec.MaxCandidates == 0 {
		spec.MaxCandidates = model.DefaultMaxCandidates
	}
	return modelKey{
		freq:          freqKey{profiled: spec.UseProfile, maxInstrs: profiledMaxInstrs(spec.UseProfile, spec.MaxInstrs)},
		rspare:        spec.Rspare,
		xlimit:        spec.Xlimit,
		maxCandidates: spec.MaxCandidates,
		linkTime:      spec.LinkTime,
		ckptNJPerByte: spec.CkptNJPerByte,
	}
}

// Model assembles (or reuses) the Eq. 1–9 cost model for the spec.
func (s *Session) Model(ctx context.Context, spec ModelSpec) (*model.Model, error) {
	return s.model(ctx, s.resolveModel(spec))
}

func (s *Session) model(ctx context.Context, key modelKey) (*model.Model, error) {
	return s.models.do(&s.counters.model, key, func() (*model.Model, error) {
		graphs, err := s.Graphs()
		if err != nil {
			return nil, err
		}
		est, err := s.Frequencies(ctx, key.freq.profiled, key.freq.maxInstrs)
		if err != nil {
			return nil, err
		}
		ef, er := s.profile.Coefficients()
		mdl, err := model.Build(s.prog, graphs, est, model.Params{
			EFlash: ef, ERAM: er,
			Rspare: key.rspare, Xlimit: key.xlimit,
			MaxCandidates:  key.maxCandidates,
			IncludeLibrary: key.linkTime,
			CkptNJPerByte:  key.ckptNJPerByte,
		})
		if err != nil {
			return nil, errs.Wrap(errs.StageModel, err)
		}
		return mdl, nil
	})
}

// SolveSpec is a ModelSpec plus the placement algorithm.
type SolveSpec struct {
	ModelSpec
	Solver Solver
	// ExhaustiveK bounds the exhaustive solver's block set (0 = 12).
	ExhaustiveK int
	// Budget bounds the ILP solve; when any of its limits trips, the
	// degradation ladder (placement.SolveLadder) steps down and the
	// result's Strategy records the rung. The zero budget is the exact
	// solve.
	Budget placement.Budget
}

// Solve runs (or reuses) the placement solver on the spec's model.
func (s *Session) Solve(ctx context.Context, spec SolveSpec) (*placement.Result, error) {
	if spec.Solver == "" {
		spec.Solver = SolverILP
	}
	if spec.ExhaustiveK == 0 {
		spec.ExhaustiveK = 12
	}
	return s.solve(ctx, solveKey{
		model:       s.resolveModel(spec.ModelSpec),
		solver:      spec.Solver,
		exhaustiveK: spec.ExhaustiveK,
		budget:      spec.Budget,
	})
}

func (s *Session) solve(ctx context.Context, key solveKey) (*placement.Result, error) {
	return s.solves.do(&s.counters.solve, key, func() (*placement.Result, error) {
		mdl, err := s.model(ctx, key.model)
		if err != nil {
			return nil, err
		}
		var res *placement.Result
		switch key.solver {
		case SolverILP:
			// The ladder degrades through incumbent → rounding → greedy →
			// identity when the budget trips; with the zero budget and a
			// live context it is exactly the exact ILP solve.
			var warm *placement.Warm
			if s.warmSolve {
				warm = s.neighborWarm(key)
			}
			res, err = placement.SolveLadder(ctx, mdl, key.budget, warm)
			if err == nil && s.warmSolve {
				s.accountWarm(warm, res)
				s.recordWarm(key, res.Warm)
			}
		case SolverGreedy:
			res = placement.SolveGreedy(mdl)
		case SolverFunction:
			res = placement.SolveFunctionLevel(mdl, s.prog)
		case SolverExhaustive:
			res, err = placement.SolveExhaustive(mdl, key.exhaustiveK)
		default:
			return nil, fmt.Errorf("core: unknown solver %q", key.solver)
		}
		if err != nil {
			return nil, errs.Wrap(errs.StageSolve, err)
		}
		return res, nil
	})
}

// solveFamily groups solves that differ only in their Rspare/Xlimit
// constraint bounds — the model columns and objective are identical
// across a family, which is exactly the precondition for warm reuse.
type solveFamily struct {
	model       modelKey // rspare and xlimit zeroed
	solver      Solver
	exhaustiveK int
	budget      placement.Budget
}

// solvePoint is one completed proven solve within a family.
type solvePoint struct {
	rspare, xlimit float64
	warm           *placement.Warm
}

func familyOf(key solveKey) solveFamily {
	mk := key.model
	mk.rspare, mk.xlimit = 0, 0
	return solveFamily{model: mk, solver: key.solver, exhaustiveK: key.exhaustiveK, budget: key.budget}
}

// neighborWarm picks the carried state for a solve: the nearest
// completed solve in the same family that differs on exactly one
// constraint axis. Preference order is deterministic for a fixed
// registry state — rspare neighbors before xlimit neighbors, then
// smallest bound distance, then the tighter of two equidistant points —
// so identical solve sequences always consult identical neighbors.
func (s *Session) neighborWarm(key solveKey) *placement.Warm {
	fam := familyOf(key)
	s.warmIdx.mu.Lock()
	pts := s.warmIdx.idx[fam]
	s.warmIdx.mu.Unlock()

	best := -1
	bestAxis, bestDist, bestVal := 2, 0.0, 0.0
	for i, pt := range pts {
		sameR := pt.rspare == key.model.rspare
		sameX := pt.xlimit == key.model.xlimit
		var axis int // 0 = rspare neighbor, 1 = xlimit neighbor
		var dist, val float64
		switch {
		case sameX && !sameR:
			axis, dist, val = 0, absf(pt.rspare-key.model.rspare), pt.rspare
		case sameR && !sameX:
			axis, dist, val = 1, absf(pt.xlimit-key.model.xlimit), pt.xlimit
		default:
			continue // same point (impossible: memoized) or diagonal
		}
		if best < 0 || axis < bestAxis ||
			(axis == bestAxis && (dist < bestDist ||
				(dist == bestDist && val < bestVal))) {
			best, bestAxis, bestDist, bestVal = i, axis, dist, val
		}
	}
	if best < 0 {
		return nil
	}
	return pts[best].warm
}

// recordWarm registers a completed solve's donated state (nil for
// unproven results — only proven optima may seed future solves).
func (s *Session) recordWarm(key solveKey, warm *placement.Warm) {
	if warm == nil {
		return
	}
	fam := familyOf(key)
	s.warmIdx.mu.Lock()
	if s.warmIdx.idx == nil {
		s.warmIdx.idx = make(map[solveFamily][]solvePoint)
	}
	s.warmIdx.idx[fam] = append(s.warmIdx.idx[fam],
		solvePoint{rspare: key.model.rspare, xlimit: key.model.xlimit, warm: warm})
	s.warmIdx.mu.Unlock()
}

// accountWarm ledgers one ILP solve's warm outcome.
func (s *Session) accountWarm(warm *placement.Warm, res *placement.Result) {
	if warm == nil || !res.WarmUse.Consumed {
		s.counters.warmMisses.Add(1)
		return
	}
	s.counters.warmHits.Add(1)
	if res.WarmUse.Incumbent {
		s.counters.warmIncumbents.Add(1)
	}
	if res.WarmUse.InstantProof {
		s.counters.warmProofs.Add(1)
	}
	if res.WarmUse.ItersSaved > 0 {
		s.counters.simplexItersSaved.Add(uint64(res.WarmUse.ItersSaved))
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// transformed is the placement-determined artifact set: the transformed
// program clone, the transformation report, the optimized image, and its
// static analysis. All immutable after construction.
type transformed struct {
	prog *ir.Program
	trep *transform.Report
	img  *layout.Image
	ares *analysis.Result
}

// transformFor clones, transforms, lays out and statically verifies the
// program for one placement. res.InRAM must canonicalize to
// key.placement.
func (s *Session) transformFor(key transformKey, inRAM map[string]bool) (*transformed, error) {
	return s.transforms.do(&s.counters.transform, key, func() (*transformed, error) {
		// Transformation on a clone: the shared session program stays
		// pristine for every other configuration.
		opt := s.prog.Clone()
		applyFn := transform.Apply
		if key.linkTime {
			applyFn = transform.ApplyLinkTime
		}
		trep, err := applyFn(opt, inRAM)
		if err != nil {
			return nil, errs.Wrap(errs.StageTransform, err)
		}
		optImg, err := layout.New(opt, s.layout, inRAM)
		if err != nil {
			return nil, errs.Wrap(errs.StageLayout, err)
		}

		// Static verification of the transformed artifact: every branch in
		// range, every cross-memory edge instrumented with a dead scratch,
		// the CFG preserved, the memory map sound, the stack bounded. Error
		// diagnostics abort the run before simulation can mask them.
		ares, err := analysis.Analyze(&analysis.Context{
			Original: s.prog, Prog: opt, InRAM: inRAM,
			Config: s.layout, Image: optImg, Rspare: key.rspare,
		})
		if err != nil {
			return nil, errs.Wrap(errs.StageAnalysis, err)
		}
		if n := len(ares.Errors()); n > 0 {
			return nil, errs.Wrap(errs.StageAnalysis, fmt.Errorf("found %d error(s):\n%s", n, ares))
		}
		return &transformed{prog: opt, trep: trep, img: optImg, ares: ares}, nil
	})
}

// optRun simulates a transformed image, memoized on (placement, mode,
// tracing, instruction limit) — so the static and profiled variants of a
// configuration that land on the same placement simulate it once. As
// with Measure, a completed traced run satisfies untraced requests.
func (s *Session) optRun(ctx context.Context, key optRunKey, tf *transformed) (*Measurement, error) {
	if !key.traced {
		tk := key
		tk.traced = true
		if m, ok := s.optRuns.peek(tk); ok {
			s.counters.optrun.hit()
			return m, nil
		}
	}
	return s.optRuns.do(&s.counters.optrun, key, func() (*Measurement, error) {
		machine := s.acquireMachine(tf.img)
		defer s.releaseMachine(machine)
		machine.MaxInstrs = key.maxInstrs
		var col *trace.Collector
		if key.traced {
			col = trace.NewCollector()
			machine.Attach(col)
		}
		stats, err := machine.RunContext(ctx)
		if err != nil {
			return nil, errs.Wrap(errs.StageOptRun, err)
		}
		s.counters.simRuns.Add(1)
		s.counters.cyclesSimulated.Add(stats.Cycles)
		m := &Measurement{
			Image:   tf.img,
			Stats:   stats,
			Metrics: metrics(machine, stats, tf.img),
			globals: snapshotGlobals(s.prog, machine),
		}
		if col != nil {
			m.Trace = col.Profile()
			// The attribution invariant is cheap to check and catastrophic
			// to miss: every nanojoule the simulator charged must have
			// landed in exactly one block.
			if err := m.Trace.CheckConservation(stats); err != nil {
				return nil, errs.Wrap(errs.StageOptRun, err)
			}
		}
		return m, nil
	})
}

// intermittentRun replays the key's power trace against one image,
// memoized on the image's placement and the schedule. The trace is
// re-parsed from its canonical text so the stage depends on nothing but
// its key; parsing the canonical form cannot fail for keys produced by
// resolveIntermittent, but a defensive error path keeps the invariant
// visible.
func (s *Session) intermittentRun(ctx context.Context, key intermitKey, img *layout.Image) (*sim.IntermittentReport, error) {
	return s.intermits.do(&s.counters.intermit, key, func() (*sim.IntermittentReport, error) {
		tr := &sim.PowerTrace{}
		if key.trace != "" {
			var err error
			tr, err = sim.ParsePowerTrace([]byte(key.trace))
			if err != nil {
				return nil, errs.Wrap(errs.StageIntermittent, err)
			}
		}
		machine := s.acquireMachine(img)
		defer s.releaseMachine(machine)
		machine.MaxInstrs = key.maxInstrs
		rep, err := machine.RunIntermittent(ctx, sim.IntermittentConfig{
			Trace:            tr,
			CheckpointCycles: key.ckptCycles,
		})
		if err != nil {
			return nil, errs.Wrap(errs.StageIntermittent, err)
		}
		s.counters.simRuns.Add(1)
		s.counters.cyclesSimulated.Add(rep.Stats.Cycles)
		return rep, nil
	})
}

// boundsFor brackets (once per placement) the placed image's energy and
// cycles without simulating it. The zero key is the all-in-flash
// baseline; any other key reuses — or builds — the placement's
// transformed image. Structure (CFG, loops, calls) always comes from the
// pristine session program; costs from the placed blocks.
func (s *Session) boundsFor(key transformKey, inRAM map[string]bool) (*bounds.Result, error) {
	return s.brackets.do(&s.counters.bounds, key, func() (*bounds.Result, error) {
		graphs, err := s.Graphs()
		if err != nil {
			return nil, err
		}
		var img *layout.Image
		if key == (transformKey{}) {
			img, err = layout.New(s.prog, s.layout, nil)
			if err != nil {
				return nil, errs.Wrap(errs.StageLayout, err)
			}
		} else {
			tf, err := s.transformFor(key, inRAM)
			if err != nil {
				return nil, err
			}
			img = tf.img
		}
		br, err := bounds.Compute(s.prog, graphs, img, s.profile)
		if err != nil {
			return nil, errs.Wrap(errs.StageAnalysis, err)
		}
		return br, nil
	})
}

// BaselineBounds brackets the all-in-flash baseline image statically —
// no simulation runs.
func (s *Session) BaselineBounds() (*bounds.Result, error) {
	return s.boundsFor(transformKey{}, nil)
}

// StaticBounds runs the static half of the pipeline for one
// configuration — solve, transform, layout, verification, but no
// simulation — and brackets the resulting image. This is the sweep
// pruning primitive: an O(blocks) estimate of a cell that a simulated
// run can never undercut.
func (s *Session) StaticBounds(ctx context.Context, opts Options) (*bounds.Result, error) {
	key, err := s.resolve(ctx, opts)
	if err != nil {
		return nil, err
	}
	res, err := s.solve(ctx, key.solve)
	if err != nil {
		return nil, err
	}
	tkey := transformKey{
		placement: canonicalPlacement(res.InRAM),
		linkTime:  key.solve.model.linkTime,
		rspare:    key.solve.model.rspare,
	}
	return s.boundsFor(tkey, res.InRAM)
}

// PruneAgainst decides admissible pruning for one configuration: true
// when its static lower energy bound already exceeds incumbentNJ (the
// simulated optimized energy, in nanojoules, of the best configuration
// seen so far), so simulating the cell provably cannot produce a new
// winner. Every decision lands in the session ledger
// (SessionStats.PruneChecked / PruneSkipped).
func (s *Session) PruneAgainst(ctx context.Context, opts Options, incumbentNJ float64) (bool, error) {
	br, err := s.StaticBounds(ctx, opts)
	if err != nil {
		return false, err
	}
	s.counters.pruneChecked.Add(1)
	if br.Whole.LoEnergyNJ > incumbentNJ {
		s.counters.pruneSkipped.Add(1)
		return true, nil
	}
	return false, nil
}

// Optimize runs the full pipeline for one configuration, reusing every
// stage the session has already materialized. Identical configurations
// return the same (immutable) Report. Cancelling ctx aborts the run at
// the next stage boundary or simulator/solver poll; a stage computation
// that failed with a cancellation is evicted from its memo, so a retry
// with a live context recomputes instead of replaying the cancellation.
func (s *Session) Optimize(ctx context.Context, opts Options) (*Report, error) {
	key, err := s.resolve(ctx, opts)
	if err != nil {
		return nil, err
	}
	return s.reports.do(&s.counters.optimize, key, func() (*Report, error) {
		return s.optimize(ctx, key)
	})
}

// optimize assembles one Report from the staged artifacts plus the
// per-configuration tail (transform, optimized run, semantic check) —
// each of which is itself memoized on the placement the solve chose.
func (s *Session) optimize(ctx context.Context, key reportKey) (*Report, error) {
	base, err := s.Measure(ctx, nil, key.traced, key.maxInstrs)
	if err != nil {
		return nil, err
	}
	res, err := s.solve(ctx, key.solve)
	if err != nil {
		return nil, err
	}
	mdl, err := s.model(ctx, key.solve.model)
	if err != nil {
		return nil, err
	}

	tkey := transformKey{
		placement: canonicalPlacement(res.InRAM),
		linkTime:  key.solve.model.linkTime,
		rspare:    key.solve.model.rspare,
	}
	tf, err := s.transformFor(tkey, res.InRAM)
	if err != nil {
		return nil, err
	}
	orun, err := s.optRun(ctx, optRunKey{transform: tkey, traced: key.traced, maxInstrs: key.maxInstrs}, tf)
	if err != nil {
		return nil, err
	}

	// Semantic validation: every writable global must hold identical
	// bytes after both runs.
	if err := compareGlobals(s.prog, base.globals, orun.globals); err != nil {
		return nil, errs.Wrap(errs.StageValidate,
			fmt.Errorf("transformation changed program behaviour: %w", err))
	}

	rep := &Report{
		Baseline:       base.Metrics,
		Optimized:      orun.Metrics,
		Placement:      res,
		Model:          mdl,
		Transform:      tf.trep,
		Optimized0:     tf.prog,
		Image:          tf.img,
		Analysis:       tf.ares,
		Strategy:       res.Strategy,
		StrategyReason: res.StrategyReason,
	}
	if key.traced {
		rep.BaselineTrace = base.Trace
		rep.OptimizedTrace = orun.Trace
		// Baseline conservation is checked here (the optimized run checks
		// its own when it is simulated).
		if err := rep.BaselineTrace.CheckConservation(base.Stats); err != nil {
			return nil, errs.Wrap(errs.StageBaseline, err)
		}
	}
	if rep.Baseline.EnergyMJ > 0 {
		rep.Ke = rep.Optimized.EnergyMJ / rep.Baseline.EnergyMJ
		rep.EnergyChange = rep.Ke - 1
	}
	if rep.Baseline.TimeS > 0 {
		rep.Kt = rep.Optimized.TimeS / rep.Baseline.TimeS
		rep.TimeChange = rep.Kt - 1
	}
	if rep.Baseline.PowerMW > 0 {
		rep.PowerChange = rep.Optimized.PowerMW/rep.Baseline.PowerMW - 1
	}
	rep.StartupCopyCycles, rep.StartupCopyEnergyMJ = startupCopyCost(tf.img, s.profile)

	// The intermittent tail: replay the same concrete outage schedule
	// against both images. The baseline run shares the zero transform
	// key across configurations; the optimized run keys on the chosen
	// placement, so aware and oblivious solves that land on different
	// placements measure separately while identical placements share.
	if is := key.intermittent; is.enabled {
		baseRep, err := s.intermittentRun(ctx, intermitKey{
			trace: is.trace, ckptCycles: is.ckptCycles, maxInstrs: key.maxInstrs,
		}, base.Image)
		if err != nil {
			return nil, err
		}
		optRep, err := s.intermittentRun(ctx, intermitKey{
			transform: tkey, trace: is.trace, ckptCycles: is.ckptCycles, maxInstrs: key.maxInstrs,
		}, tf.img)
		if err != nil {
			return nil, err
		}
		nOut := 0
		if is.trace != "" {
			if tr, err := sim.ParsePowerTrace([]byte(is.trace)); err == nil {
				nOut = len(tr.Outages)
			}
		}
		rep.Intermittent = &IntermittentComparison{
			Spec:             is.trace,
			Outages:          nOut,
			CheckpointCycles: is.ckptCycles,
			CkptAware:        is.aware,
			CkptNJPerByte:    key.solve.model.ckptNJPerByte,
			Baseline:         baseRep,
			Optimized:        optRep,
		}
	}
	return rep, nil
}

// snapshotGlobals captures the final bytes of every writable global so
// later optimized runs can be checked against the baseline without
// retaining the (mutable) machine.
func snapshotGlobals(p *ir.Program, m *sim.Machine) map[string][]byte {
	out := make(map[string][]byte)
	for _, g := range p.Globals {
		if g.RO {
			continue
		}
		if b, err := m.ReadGlobalBytes(g.Name, g.Size); err == nil {
			out[g.Name] = b
		}
	}
	return out
}

func compareGlobals(p *ir.Program, base, opt map[string][]byte) error {
	for _, g := range p.Globals {
		if g.RO {
			continue
		}
		av := base[g.Name]
		bv := opt[g.Name]
		for i := range av {
			if av[i] != bv[i] {
				return fmt.Errorf("global %q differs at byte %d: %#x vs %#x",
					g.Name, i, av[i], bv[i])
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Stage accounting.

// StageStats counts one stage's memo lookups: a miss computes the
// artifact, a hit reuses it.
type StageStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// SessionStats is a snapshot of how much work a Session (or a set of
// sessions, via Add) performed versus reused. `beebsbench -json` emits
// it so the sweep-level saving is observable.
type SessionStats struct {
	Baseline  StageStats `json:"baseline"`
	CFG       StageStats `json:"cfg"`
	Freq      StageStats `json:"freq"`
	Model     StageStats `json:"model"`
	Solve     StageStats `json:"solve"`
	Transform StageStats `json:"transform"`
	OptRun    StageStats `json:"opt_run"`
	Optimize  StageStats `json:"optimize"`
	Bounds    StageStats `json:"bounds"`
	// SimRuns and CyclesSimulated count actual simulator executions
	// (baseline + optimized, deduplicated by the memo).
	SimRuns         uint64 `json:"sim_runs"`
	CyclesSimulated uint64 `json:"cycles_simulated"`
	// PruneChecked/PruneSkipped ledger the admissible static-bound
	// pruning decisions: how many cells were tested against an incumbent
	// and how many of those skipped simulation outright.
	PruneChecked uint64 `json:"prune_checked"`
	PruneSkipped uint64 `json:"prune_skipped"`
	// WarmHits/WarmMisses ledger the warm-start registry: ILP solves
	// that consumed carried neighbor state versus solves that ran cold
	// (no usable neighbor, or the carried state was rejected).
	WarmHits   uint64 `json:"warm_hits"`
	WarmMisses uint64 `json:"warm_misses"`
}

// Reuses totals the stage hits: how many artifact computations the
// session avoided.
func (st SessionStats) Reuses() uint64 {
	return st.Baseline.Hits + st.CFG.Hits + st.Freq.Hits +
		st.Model.Hits + st.Solve.Hits + st.Transform.Hits +
		st.OptRun.Hits + st.Optimize.Hits + st.Bounds.Hits
}

// Add accumulates another snapshot (for aggregating across sessions).
func (st *SessionStats) Add(o SessionStats) {
	st.Baseline.Hits += o.Baseline.Hits
	st.Baseline.Misses += o.Baseline.Misses
	st.CFG.Hits += o.CFG.Hits
	st.CFG.Misses += o.CFG.Misses
	st.Freq.Hits += o.Freq.Hits
	st.Freq.Misses += o.Freq.Misses
	st.Model.Hits += o.Model.Hits
	st.Model.Misses += o.Model.Misses
	st.Solve.Hits += o.Solve.Hits
	st.Solve.Misses += o.Solve.Misses
	st.Transform.Hits += o.Transform.Hits
	st.Transform.Misses += o.Transform.Misses
	st.OptRun.Hits += o.OptRun.Hits
	st.OptRun.Misses += o.OptRun.Misses
	st.Optimize.Hits += o.Optimize.Hits
	st.Optimize.Misses += o.Optimize.Misses
	st.Bounds.Hits += o.Bounds.Hits
	st.Bounds.Misses += o.Bounds.Misses
	st.SimRuns += o.SimRuns
	st.CyclesSimulated += o.CyclesSimulated
	st.PruneChecked += o.PruneChecked
	st.PruneSkipped += o.PruneSkipped
	st.WarmHits += o.WarmHits
	st.WarmMisses += o.WarmMisses
}

// SolverStats is the solver-level warm-start ledger — finer grained
// than SessionStats' hit/miss pair. `beebsbench -json` and the daemon's
// /statsz emit it as the solver_stats section.
type SolverStats struct {
	// WarmHits counts ILP solves that consumed carried warm state;
	// WarmMisses those that ran cold (no neighbor, or state rejected).
	WarmHits   uint64 `json:"warm_hits"`
	WarmMisses uint64 `json:"warm_misses"`
	// IncumbentsAccepted counts solves whose starting incumbent came
	// from a neighbor's proven optimum.
	IncumbentsAccepted uint64 `json:"incumbents_accepted"`
	// WarmProofs counts solves closed by the carried bound alone — zero
	// LP relaxations solved.
	WarmProofs uint64 `json:"warm_proofs"`
	// SimplexItersSaved estimates root-relaxation simplex pivots avoided
	// across all warm solves.
	SimplexItersSaved uint64 `json:"simplex_iters_saved"`
}

// Add accumulates another snapshot (for aggregating across sessions).
func (st *SolverStats) Add(o SolverStats) {
	st.WarmHits += o.WarmHits
	st.WarmMisses += o.WarmMisses
	st.IncumbentsAccepted += o.IncumbentsAccepted
	st.WarmProofs += o.WarmProofs
	st.SimplexItersSaved += o.SimplexItersSaved
}

// SolverStats snapshots the session's warm-start solver counters.
func (s *Session) SolverStats() SolverStats {
	return SolverStats{
		WarmHits:           s.counters.warmHits.Load(),
		WarmMisses:         s.counters.warmMisses.Load(),
		IncumbentsAccepted: s.counters.warmIncumbents.Load(),
		WarmProofs:         s.counters.warmProofs.Load(),
		SimplexItersSaved:  s.counters.simplexItersSaved.Load(),
	}
}

type stageCounter struct {
	hits, misses atomic.Uint64
}

func (c *stageCounter) hit()  { c.hits.Add(1) }
func (c *stageCounter) miss() { c.misses.Add(1) }

func (c *stageCounter) snapshot() StageStats {
	return StageStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

type sessionCounters struct {
	baseline, cfg, freq, model, solve, transform, optrun, optimize stageCounter
	bounds                                                         stageCounter
	// intermit ledgers the trace-driven run memo. Deliberately not part
	// of SessionStats: that schema is golden-tested, and always-powered
	// sweeps never touch this stage.
	intermit stageCounter

	simRuns, cyclesSimulated   atomic.Uint64
	pruneChecked, pruneSkipped atomic.Uint64

	warmHits, warmMisses, warmIncumbents atomic.Uint64
	warmProofs, simplexItersSaved        atomic.Uint64
}

// Stats snapshots the session's stage hit/miss counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Baseline:        s.counters.baseline.snapshot(),
		CFG:             s.counters.cfg.snapshot(),
		Freq:            s.counters.freq.snapshot(),
		Model:           s.counters.model.snapshot(),
		Solve:           s.counters.solve.snapshot(),
		Transform:       s.counters.transform.snapshot(),
		OptRun:          s.counters.optrun.snapshot(),
		Optimize:        s.counters.optimize.snapshot(),
		Bounds:          s.counters.bounds.snapshot(),
		SimRuns:         s.counters.simRuns.Load(),
		CyclesSimulated: s.counters.cyclesSimulated.Load(),
		PruneChecked:    s.counters.pruneChecked.Load(),
		PruneSkipped:    s.counters.pruneSkipped.Load(),
		WarmHits:        s.counters.warmHits.Load(),
		WarmMisses:      s.counters.warmMisses.Load(),
	}
}

// ---------------------------------------------------------------------
// Concurrency-safe per-key memoization. First caller computes, everyone
// else blocks on that computation and shares the (immutable) result.

type memoEntry[V any] struct {
	once sync.Once
	done atomic.Bool
	val  V
	err  error
}

type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

func (c *memo[K, V]) do(st *stageCounter, k K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e := c.m[k]
	if e == nil {
		e = new(memoEntry[V])
		c.m[k] = e
		st.miss()
	} else {
		st.hit()
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.val, e.err = fn()
		e.done.Store(true)
	})
	// A computation that died of cancellation says nothing about the
	// artifact — evict it so a later caller with a live context retries
	// instead of replaying the stale cancellation forever.
	if e.err != nil && errs.IsCancellation(e.err) {
		c.mu.Lock()
		if c.m[k] == e {
			delete(c.m, k)
		}
		c.mu.Unlock()
	}
	return e.val, e.err
}

// peek returns a key's value only if its computation already finished
// successfully — it never blocks on an in-flight computation.
func (c *memo[K, V]) peek(k K) (V, bool) {
	c.mu.Lock()
	e := c.m[k]
	c.mu.Unlock()
	if e == nil || !e.done.Load() || e.err != nil {
		var zero V
		return zero, false
	}
	return e.val, true
}
