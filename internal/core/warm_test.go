package core_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/mcc"
	"repro/internal/placement"
)

func warmSessionForTest(t testing.TB, bench string, level mcc.OptLevel) *core.Session {
	t.Helper()
	b := beebs.Get(bench)
	if b == nil {
		t.Fatalf("benchmark %q missing", bench)
	}
	prog, err := mcc.Compile(b.Source, level)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSession(prog, core.SessionConfig{WarmSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func solveAt(t *testing.T, s *core.Session, rspare, xlimit float64) *placement.Result {
	t.Helper()
	res, err := s.Solve(context.Background(), core.SolveSpec{
		ModelSpec: core.ModelSpec{Rspare: rspare, Xlimit: xlimit},
		Solver:    core.SolverILP,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWarmSolveMatchesCold walks the Figure 6 RAM sweep tightest-last on
// a warm session and checks every placement — the blocks moved, the
// modeled outcome, provenness — is exactly what a cold session computes
// for the same point. Warm starts may only change solver effort, never
// the answer.
func TestWarmSolveMatchesCold(t *testing.T) {
	const bench, level = "int_matmult", mcc.O2
	sweep := []float64{4096, 2048, 1024, 512, 256, 128, 64, 0}

	warm := warmSessionForTest(t, bench, level)
	cold := sessionForTest(t, bench, level)

	for _, rs := range sweep {
		w := solveAt(t, warm, rs, 1e9)
		c := solveAt(t, cold, rs, 1e9)
		if !reflect.DeepEqual(w.InRAM, c.InRAM) {
			t.Errorf("rspare %v: warm placement %v, cold %v", rs, w.InRAM, c.InRAM)
		}
		if w.Outcome != c.Outcome {
			t.Errorf("rspare %v: warm outcome %+v, cold %+v", rs, w.Outcome, c.Outcome)
		}
		if w.Proven != c.Proven || !w.Proven {
			t.Errorf("rspare %v: proven warm=%v cold=%v, want both true", rs, w.Proven, c.Proven)
		}
	}

	ws := warm.SolverStats()
	if ws.WarmHits == 0 {
		t.Errorf("tightening sweep never consumed warm state: %+v", ws)
	}
	if ws.WarmHits+ws.WarmMisses != uint64(len(sweep)) {
		t.Errorf("warm ledger covers %d solves, want %d: %+v", ws.WarmHits+ws.WarmMisses, len(sweep), ws)
	}
	cs := cold.SolverStats()
	if cs != (core.SolverStats{}) {
		t.Errorf("cold session has a warm ledger: %+v", cs)
	}
}

// TestWarmSolveRungProvenance pins the strategy bookkeeping: the
// warm-ilp-optimal rung is recorded exactly when carried warm state was
// consumed — never on the first solve of a family, never on a cold
// session, and always in lockstep with WarmUse.Consumed.
func TestWarmSolveRungProvenance(t *testing.T) {
	const bench, level = "int_matmult", mcc.O2
	s := warmSessionForTest(t, bench, level)

	first := solveAt(t, s, 2048, 1e9)
	if first.Strategy != placement.StrategyILPOptimal {
		t.Fatalf("first solve strategy = %q, want %q (no donor exists yet)",
			first.Strategy, placement.StrategyILPOptimal)
	}
	if first.WarmUse.Consumed {
		t.Fatalf("first solve consumed warm state: %+v", first.WarmUse)
	}
	if first.Warm == nil {
		t.Fatal("proven solve donated no warm state")
	}

	second := solveAt(t, s, 1024, 1e9)
	if !second.Proven {
		t.Fatalf("second solve not proven: %+v", second)
	}
	wantStrategy := placement.StrategyILPOptimal
	if second.WarmUse.Consumed {
		wantStrategy = placement.StrategyWarmILPOptimal
	}
	if second.Strategy != wantStrategy {
		t.Errorf("strategy = %q with WarmUse %+v, want %q",
			second.Strategy, second.WarmUse, wantStrategy)
	}
	if !second.WarmUse.Consumed {
		t.Errorf("tightening re-solve with a donor consumed nothing: %+v", second.WarmUse)
	}

	// The memo returns the recorded result as-is: re-solving the first
	// point must not rewrite its provenance now that donors exist.
	again := solveAt(t, s, 2048, 1e9)
	if again.Strategy != placement.StrategyILPOptimal {
		t.Errorf("memoized solve strategy rewritten to %q", again.Strategy)
	}

	// A cold session never records the warm rung.
	c := sessionForTest(t, bench, level)
	for _, rs := range []float64{2048, 1024} {
		if res := solveAt(t, c, rs, 1e9); res.Strategy == placement.StrategyWarmILPOptimal {
			t.Errorf("cold solve at rspare %v recorded %q", rs, res.Strategy)
		}
	}
}

// TestWarmSolveSessionStats checks the session-level warm counters are
// wired through SessionStats (the session ledger) as well as the
// dedicated SolverStats document.
func TestWarmSolveSessionStats(t *testing.T) {
	const bench, level = "int_matmult", mcc.O2
	s := warmSessionForTest(t, bench, level)
	for _, rs := range []float64{1024, 512, 256} {
		solveAt(t, s, rs, 1e9)
	}
	st := s.Stats()
	ws := s.SolverStats()
	if st.WarmHits != ws.WarmHits || st.WarmMisses != ws.WarmMisses {
		t.Errorf("SessionStats warm counters %d/%d diverge from SolverStats %d/%d",
			st.WarmHits, st.WarmMisses, ws.WarmHits, ws.WarmMisses)
	}
	if ws.WarmHits+ws.WarmMisses != 3 {
		t.Errorf("ledger covers %d solves, want 3: %+v", ws.WarmHits+ws.WarmMisses, ws)
	}
	if ws.WarmHits > 0 && ws.IncumbentsAccepted == 0 && ws.WarmProofs == 0 && ws.SimplexItersSaved == 0 {
		t.Errorf("hits with no recorded ingredient: %+v", ws)
	}
}
