package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// This file is the session-cache contract the long-running service
// (internal/service) and the sweep drivers (internal/evaluation) share.
// A Session already memoizes every pipeline stage on exactly that
// stage's inputs; what a cross-request cache adds is the outermost key —
// which program the stages belong to. Content-addressing that key (a
// hash of the source text and compile knobs, not a file name or tenant
// id) is what lets identical stage inputs from different requests and
// different tenants land on one shared memo.

// SessionKey content-addresses one compiled pipeline input: a SHA-256
// over the length-prefixed parts (source text, optimization level, and
// any further knobs that reach the compiler). Two requests with the same
// parts — regardless of tenant, file name, or arrival order — get the
// same key and therefore the same Session, whose per-stage memos are
// keyed on exactly the remaining knobs (placement, budgets, tracing).
// The hex form is stable across processes, so it can serve as an
// external cache key or an ETag.
func SessionKey(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SessionCache is a cross-request store of Sessions, content-addressed
// by SessionKey. Implementations must be safe for concurrent use and
// must run build at most once per live key (single-flight), so that two
// concurrent requests with identical stage inputs share one stage
// execution. internal/service.Store is the bounded-LRU implementation;
// evaluation.Sweep delegates its per-benchmark session map to one when
// its Cache field is set, which is how a daemon's sweep endpoint shares
// compiles and baseline runs with its single-shot endpoint.
type SessionCache interface {
	// GetSession returns the session for key, building (and retaining)
	// it on first use. A failed build is not retained: the error is
	// returned to every waiter of that flight, and a later request with
	// the same key retries.
	GetSession(key string, build func() (*Session, error)) (*Session, error)
	// CacheStats snapshots the cache's hit/miss/eviction ledger.
	CacheStats() CacheStats
}

// CacheStats is the session-granular ledger of a SessionCache: how many
// lookups were served from a live entry, how many had to build, and how
// many entries the size bound pushed out.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Entries is the current number of live sessions.
	Entries int `json:"entries"`
}

// CacheTotals collapses a ledger to the one number operators watch: the
// cumulative hit rate across every cache layer (session lookups plus all
// per-stage memos). `beebsbench -json` and the daemon's /statsz both
// emit it, so the sweep ledger and the service ledger share one schema.
type CacheTotals struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// add accumulates one stage's counters; finish derives the rate once
// every layer is in.
func (t *CacheTotals) add(s StageStats) {
	t.Hits += s.Hits
	t.Misses += s.Misses
}

// finish derives the hit rate from the accumulated counters.
func (t *CacheTotals) finish() {
	if n := t.Hits + t.Misses; n > 0 {
		t.HitRate = float64(t.Hits) / float64(n)
	}
}

// Totals sums every stage's hit/miss counters into one cumulative
// ledger line. Callers layering a session cache on top (evaluation.
// SweepStats, the service /statsz) add their session-level counters
// before reading the rate; NewCacheTotals does both at once.
func (st SessionStats) Totals() CacheTotals {
	var t CacheTotals
	for _, s := range []StageStats{
		st.Baseline, st.CFG, st.Freq, st.Model, st.Solve,
		st.Transform, st.OptRun, st.Optimize, st.Bounds,
	} {
		t.add(s)
	}
	t.finish()
	return t
}

// NewCacheTotals folds session-level lookup counters (hits/misses of a
// session cache) together with the per-stage counters of the sessions
// behind them into one cumulative totals line.
func NewCacheTotals(sessionHits, sessionMisses uint64, stages SessionStats) CacheTotals {
	t := stages.Totals()
	t.Hits += sessionHits
	t.Misses += sessionMisses
	t.finish()
	return t
}
