package core_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/mcc"
	"repro/internal/placement"
)

// ladderLevels is the Figure 5 pair the acceptance criteria sweep.
var ladderLevels = []mcc.OptLevel{mcc.O2, mcc.Os}

// TestLadderTinyBudgetAllBenchmarks starves the solver (a one-node
// branch-and-bound budget) on every BEEBS benchmark at O2 and Os and
// asserts the degradation ladder holds its contract everywhere:
//
//   - every cell still produces a complete, validated Report (the
//     pipeline's simulate-and-verify stages run on whatever placement the
//     rung produced);
//   - Report.Strategy names the rung and a degraded rung carries a
//     deterministic reason;
//   - running the identical cell again from a fresh session is
//     byte-identical — same rung, same placement, same numbers.
func TestLadderTinyBudgetAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-budget ladder sweep is 40 pipeline runs")
	}
	known := map[string]bool{
		placement.StrategyILPOptimal:   true,
		placement.StrategyILPIncumbent: true,
		placement.StrategyLPRounding:   true,
		placement.StrategyGreedy:       true,
		placement.StrategyIdentity:     true,
	}
	opts := core.Options{SolveMaxNodes: 1}
	for _, level := range ladderLevels {
		for _, b := range beebs.All() {
			t.Run(b.Name+"/"+level.String(), func(t *testing.T) {
				run := func() *core.Report {
					rep, err := sessionForTest(t, b.Name, level).Optimize(context.Background(), opts)
					if err != nil {
						t.Fatalf("tiny budget must degrade, not fail: %v", err)
					}
					return rep
				}
				rep := run()
				if !known[rep.Strategy] {
					t.Fatalf("Strategy = %q, want a ladder rung", rep.Strategy)
				}
				if rep.Strategy != placement.StrategyILPOptimal && rep.StrategyReason == "" {
					t.Errorf("degraded rung %q has no reason", rep.Strategy)
				}
				if rep.Optimized.Instructions == 0 || rep.Baseline.Instructions == 0 {
					t.Error("degraded Report was not simulated")
				}
				if rep.Analysis == nil || len(rep.Analysis.Errors()) > 0 {
					t.Errorf("degraded placement failed static verification: %v", rep.Analysis)
				}

				again := run()
				if again.Strategy != rep.Strategy || again.StrategyReason != rep.StrategyReason {
					t.Fatalf("rung not deterministic: %q (%q) then %q (%q)",
						rep.Strategy, rep.StrategyReason, again.Strategy, again.StrategyReason)
				}
				a := fingerprintJSON(t, b.Name, level, rep)
				c := fingerprintJSON(t, b.Name, level, again)
				if !bytes.Equal(a, c) {
					t.Errorf("same budget, same rung, different result:\n first %s\nsecond %s", a, c)
				}
			})
		}
	}
}

// TestLadderRungProgression pins the rung classification on one cell as
// the budget tightens: an unconstrained solve proves optimality, a
// one-node budget falls to the rounded root relaxation, a slightly larger
// (still insufficient) budget keeps the best incumbent, and an
// already-expired solve deadline yields the identity placement — while a
// cancelled parent context propagates instead of degrading.
func TestLadderRungProgression(t *testing.T) {
	// sha at O2 with a 320-byte RAM budget makes the root relaxation
	// fractional: the exact solve needs well over a dozen branch-and-bound
	// nodes, leaving room for every rung between "proven" and "root only".
	const bench = "sha"
	level := mcc.O2
	base := core.Options{Rspare: 320}
	solve := func(opts core.Options) *core.Report {
		t.Helper()
		opts.Rspare = base.Rspare
		rep, err := sessionForTest(t, bench, level).Optimize(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	exact := solve(core.Options{})
	if exact.Strategy != placement.StrategyILPOptimal || exact.StrategyReason != "" {
		t.Fatalf("unconstrained solve: strategy %q (%q), want proven %q",
			exact.Strategy, exact.StrategyReason, placement.StrategyILPOptimal)
	}
	if exact.Placement.Nodes <= 2 {
		t.Fatalf("exact solve finished in %d nodes; the cell no longer exercises the ladder", exact.Placement.Nodes)
	}

	rounded := solve(core.Options{SolveMaxNodes: 1})
	if rounded.Strategy != placement.StrategyLPRounding {
		t.Errorf("one-node budget: strategy %q, want %q", rounded.Strategy, placement.StrategyLPRounding)
	}

	incumbent := solve(core.Options{SolveMaxNodes: exact.Placement.Nodes - 1})
	if incumbent.Strategy != placement.StrategyILPIncumbent {
		t.Errorf("starved budget: strategy %q, want %q", incumbent.Strategy, placement.StrategyILPIncumbent)
	}
	// The incumbent can never beat the proven optimum, and keeping it
	// must never be worse than the root rounding (PR-pinned solver
	// contract: the incumbent survives a budget trip).
	if incumbent.Placement.Outcome.EnergyNJ < exact.Placement.Outcome.EnergyNJ {
		t.Errorf("incumbent energy %f beats proven optimum %f",
			incumbent.Placement.Outcome.EnergyNJ, exact.Placement.Outcome.EnergyNJ)
	}
	if incumbent.Placement.Outcome.EnergyNJ > rounded.Placement.Outcome.EnergyNJ {
		t.Errorf("incumbent energy %f worse than root rounding %f",
			incumbent.Placement.Outcome.EnergyNJ, rounded.Placement.Outcome.EnergyNJ)
	}

	// A solve deadline that is already unpayable before the first pivot:
	// the ladder bottoms out at the identity placement rather than erring.
	identity := solve(core.Options{SolveTimeout: time.Nanosecond})
	if identity.Strategy != placement.StrategyIdentity {
		t.Errorf("expired solve deadline: strategy %q, want %q", identity.Strategy, placement.StrategyIdentity)
	}
	if len(identity.MovedLabels()) != 0 {
		t.Errorf("identity placement moved %v", identity.MovedLabels())
	}
	if identity.EnergyChange != 0 || identity.TimeChange != 0 {
		t.Errorf("identity placement changed the program: energy %+f time %+f",
			identity.EnergyChange, identity.TimeChange)
	}

	// Parent cancellation is not a budget: it must propagate as an error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sessionForTest(t, bench, level).Optimize(ctx, core.Options{}); err == nil {
		t.Error("cancelled parent context degraded instead of failing")
	}
}
