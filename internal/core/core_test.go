package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestOptimizeFigure2(t *testing.T) {
	p := ir.Figure2Program()
	rep, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnergyChange >= 0 {
		t.Errorf("energy change %+.1f%%, want negative", 100*rep.EnergyChange)
	}
	if rep.TimeChange <= 0 {
		t.Errorf("time change %+.1f%%, want positive (instrumentation overhead)",
			100*rep.TimeChange)
	}
	if rep.PowerChange >= 0 {
		t.Errorf("power change %+.1f%%, want negative", 100*rep.PowerChange)
	}
	if len(rep.MovedLabels()) == 0 {
		t.Fatal("no blocks moved to RAM")
	}
	if rep.Optimized.RAMCodeBytes == 0 {
		t.Error("no RAM code bytes after placement")
	}
	if rep.Ke >= 1 || rep.Kt <= 1 {
		t.Errorf("ke=%.3f kt=%.3f, want ke<1, kt>1", rep.Ke, rep.Kt)
	}
	if !strings.Contains(rep.Summary(), "blocks in RAM") {
		t.Error("summary missing placement info")
	}
}

func TestOptimizeWithProfile(t *testing.T) {
	p := ir.Figure2Program()
	static, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Optimize(p, Options{UseProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both must save energy; the paper's point is they are close (§6).
	if prof.EnergyChange >= 0 {
		t.Errorf("profiled run saves nothing: %+.1f%%", 100*prof.EnergyChange)
	}
	diff := prof.EnergyChange - static.EnergyChange
	if diff < -0.15 || diff > 0.15 {
		t.Errorf("static %+.3f vs profiled %+.3f energy change: too far apart",
			static.EnergyChange, prof.EnergyChange)
	}
}

func TestOptimizeAllSolvers(t *testing.T) {
	p := ir.Figure2Program()
	var ilpEnergy float64
	for _, s := range []Solver{SolverILP, SolverGreedy, SolverFunction, SolverExhaustive} {
		rep, err := Optimize(p, Options{Solver: s})
		if err != nil {
			t.Fatalf("solver %s: %v", s, err)
		}
		if rep.Optimized.EnergyMJ <= 0 {
			t.Errorf("solver %s: nonpositive energy", s)
		}
		if s == SolverILP {
			ilpEnergy = rep.Optimized.EnergyMJ
		}
		if s == SolverExhaustive && rep.Optimized.EnergyMJ < ilpEnergy-1e-9 {
			// Both optimize the model, not measured energy; they should
			// agree on this small instance.
			t.Errorf("exhaustive measured %.6f mJ < ILP %.6f mJ", rep.Optimized.EnergyMJ, ilpEnergy)
		}
	}
}

func TestOptimizeBadSolver(t *testing.T) {
	p := ir.Figure2Program()
	if _, err := Optimize(p, Options{Solver: "magic"}); err == nil {
		t.Fatal("expected unknown-solver error")
	}
}

func TestOptimizeRejectsInvalidProgram(t *testing.T) {
	p := ir.NewProgram() // no entry function
	if _, err := Optimize(p, Options{}); err == nil {
		t.Fatal("expected verification error")
	}
}

func TestTightXlimitReducesSlowdown(t *testing.T) {
	p := ir.Figure2Program()
	loose, err := Optimize(p, Options{Xlimit: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Optimize(p, Options{Xlimit: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	if tight.TimeChange > loose.TimeChange+1e-9 {
		t.Errorf("tight Xlimit slowdown %.3f exceeds loose %.3f",
			tight.TimeChange, loose.TimeChange)
	}
	// With almost no time slack the solver must pick nearly nothing.
	if tight.Optimized.RAMCodeBytes > loose.Optimized.RAMCodeBytes {
		t.Errorf("tight Xlimit uses more RAM code (%d) than loose (%d)",
			tight.Optimized.RAMCodeBytes, loose.Optimized.RAMCodeBytes)
	}
}

func TestTinyRspare(t *testing.T) {
	p := ir.Figure2Program()
	rep, err := Optimize(p, Options{Rspare: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MovedLabels()) != 0 {
		t.Errorf("4-byte budget moved blocks: %v", rep.MovedLabels())
	}
	if rep.EnergyChange != 0 || rep.TimeChange != 0 {
		t.Errorf("no-op placement changed metrics: %+v", rep)
	}
}

func TestStartupCopyCostIsAmortizable(t *testing.T) {
	p := ir.Figure2Program()
	rep, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StartupCopyCycles == 0 {
		t.Fatal("startup copy cost not accounted (blocks were moved)")
	}
	// The paper's implicit assumption: the one-time copy is negligible
	// against even one run of the application.
	if rep.StartupCopyCycles > rep.Optimized.Cycles {
		t.Errorf("startup copy %d cycles exceeds a whole run (%d); amortization claim broken",
			rep.StartupCopyCycles, rep.Optimized.Cycles)
	}
	if rep.StartupCopyEnergyMJ <= 0 {
		t.Error("startup energy must be positive when code moved")
	}
}
