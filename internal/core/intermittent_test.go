package core_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mcc"
	"repro/internal/sim"
)

// The intermittent tail of a Report: both images replayed under the same
// schedule, deterministic across sessions, with forward progress equal
// to the uninterrupted run on both sides.
func TestOptimizeIntermittent(t *testing.T) {
	s := sessionForTest(t, "int_matmult", mcc.O2)
	ctx := context.Background()
	opts := core.Options{PowerTrace: sim.ProfileSteady}
	rep, err := s.Optimize(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	ic := rep.Intermittent
	if ic == nil {
		t.Fatal("PowerTrace set but Report.Intermittent is nil")
	}
	if ic.Outages == 0 || ic.Spec == "" {
		t.Fatalf("steady profile resolved to an empty schedule: %+v", ic)
	}
	if ic.CheckpointCycles != sim.DefaultCheckpointCycles {
		t.Fatalf("CheckpointCycles = %d, want default %d", ic.CheckpointCycles, sim.DefaultCheckpointCycles)
	}
	if ic.CkptAware || ic.CkptNJPerByte != 0 {
		t.Fatalf("oblivious run carries a checkpoint term: %+v", ic)
	}
	if got, want := ic.Baseline.UsefulInstructions(), rep.Baseline.Instructions; got != want {
		t.Fatalf("baseline forward progress %d != uninterrupted %d", got, want)
	}
	if got, want := ic.Optimized.UsefulInstructions(), rep.Optimized.Instructions; got != want {
		t.Fatalf("optimized forward progress %d != uninterrupted %d", got, want)
	}
	if ic.Baseline.TotalEnergyNJ() <= rep.Baseline.Stats.EnergyNJ {
		t.Fatal("intermittent baseline cannot cost less than the plain run")
	}

	// Determinism across sessions: a fresh session under the same options
	// produces a deeply equal comparison.
	s2 := sessionForTest(t, "int_matmult", mcc.O2)
	rep2, err := s2.Optimize(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Intermittent, rep2.Intermittent) {
		t.Fatalf("intermittent comparison not deterministic:\n%+v\nvs\n%+v", rep.Intermittent, rep2.Intermittent)
	}

	// No trace ⇒ no intermittent section, and the always-powered halves
	// of the report are untouched by the trace knob.
	plain, err := s.Optimize(ctx, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Intermittent != nil {
		t.Fatal("Intermittent present without PowerTrace")
	}
	if !reflect.DeepEqual(plain.Baseline, rep.Baseline) || !reflect.DeepEqual(plain.Optimized, rep.Optimized) {
		t.Fatal("PowerTrace perturbed the always-powered measurements")
	}
}

// CkptAware changes the solve's model (the checkpoint term prices RAM
// residency) without touching the always-powered baseline, and records
// the term in the comparison.
func TestOptimizeCheckpointAware(t *testing.T) {
	s := sessionForTest(t, "int_matmult", mcc.O2)
	ctx := context.Background()
	aware, err := s.Optimize(ctx, core.Options{PowerTrace: sim.ProfileAdversarial, CkptAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if !aware.Intermittent.CkptAware || aware.Intermittent.CkptNJPerByte <= 0 {
		t.Fatalf("aware solve lost its checkpoint term: %+v", aware.Intermittent)
	}
	obl, err := s.Optimize(ctx, core.Options{PowerTrace: sim.ProfileAdversarial})
	if err != nil {
		t.Fatal(err)
	}
	if obl.Intermittent.CkptNJPerByte != 0 {
		t.Fatalf("oblivious solve carries a term: %+v", obl.Intermittent)
	}
	// Same schedule on both: baseline replay is shared (identical trace,
	// identical image) and deeply equal.
	if !reflect.DeepEqual(aware.Intermittent.Baseline, obl.Intermittent.Baseline) {
		t.Fatal("baseline replay differs between aware and oblivious configurations")
	}
	if aware.Intermittent.Spec != obl.Intermittent.Spec {
		t.Fatal("aware and oblivious resolved different schedules")
	}

	// An inline trace spec works end to end and an invalid one is a
	// typed error.
	inline, err := s.Optimize(ctx, core.Options{PowerTrace: "5000 200\n90000 1000\n"})
	if err != nil {
		t.Fatal(err)
	}
	if inline.Intermittent.Outages != 2 {
		t.Fatalf("inline trace: %d outages, want 2", inline.Intermittent.Outages)
	}
	if _, err := s.Optimize(ctx, core.Options{PowerTrace: "10 0\n"}); err == nil {
		t.Fatal("zero-length outage accepted by Optimize")
	}
}
