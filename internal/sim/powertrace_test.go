package sim

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/errs"
)

func TestParsePowerTraceAccepts(t *testing.T) {
	want := &PowerTrace{Outages: []Outage{{At: 100, Down: 20}, {At: 500, Down: 1}}}
	cases := []struct {
		name string
		in   string
	}{
		{"text", "100 20\n500 1\n"},
		{"text no trailing newline", "100 20\n500 1"},
		{"text comments and blanks", "# harvest log\n\n100 20   # first dip\n500 1\n"},
		{"text tabs", "100\t20\n500\t1\n"},
		{"json object", `{"outages":[{"at_cycles":100,"down_cycles":20},{"at_cycles":500,"down_cycles":1}]}`},
		{"json array", `[{"at_cycles":100,"down_cycles":20},{"at_cycles":500,"down_cycles":1}]`},
		{"json leading space", "  \n\t" + `[{"at_cycles":100,"down_cycles":20},{"at_cycles":500,"down_cycles":1}]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParsePowerTrace([]byte(tc.in))
			if err != nil {
				t.Fatalf("ParsePowerTrace: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("got %+v want %+v", got, want)
			}
		})
	}
}

func TestParsePowerTraceEmptyInputs(t *testing.T) {
	for _, in := range []string{"", "\n\n", "# only a comment\n", `{"outages":[]}`, `[]`} {
		got, err := ParsePowerTrace([]byte(in))
		if err != nil {
			t.Fatalf("ParsePowerTrace(%q): %v", in, err)
		}
		if !got.Empty() {
			t.Fatalf("ParsePowerTrace(%q) = %+v, want empty", in, got)
		}
	}
}

func TestParsePowerTraceRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"one field", "100\n"},
		{"three fields", "100 20 7\n"},
		{"non-numeric instant", "abc 20\n"},
		{"non-numeric length", "100 x\n"},
		{"negative instant", "-1 20\n"},
		{"float instant", "1.5 20\n"},
		{"instant overflow", "18446744073709551616 20\n"},
		{"zero length", "100 0\n"},
		{"overlap", "100 20\n110 5\n"},
		{"touching is fine but reorder is not", "500 1\n100 20\n"},
		{"interval overflows counter", "18446744073709551615 1\n"},
		{"json zero length", `{"outages":[{"at_cycles":100,"down_cycles":0}]}`},
		{"json unknown field", `{"outages":[{"at_cycles":100,"down_cycles":20,"volts":3}]}`},
		{"json unknown top-level field", `{"outages":[],"seed":7}`},
		{"json trailing garbage", `[{"at_cycles":100,"down_cycles":20}] {"outages":[]}`},
		{"json truncated", `{"outages":[{"at_cycles":100,`},
		{"json wrong shape", `{"outages":{"at_cycles":100}}`},
		{"json negative", `[{"at_cycles":-5,"down_cycles":20}]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePowerTrace([]byte(tc.in))
			if err == nil {
				t.Fatal("ParsePowerTrace accepted malformed input")
			}
			if !errors.Is(err, errs.ErrBadInput) {
				t.Fatalf("error is not ErrBadInput: %v", err)
			}
		})
	}
}

// Back-to-back outages (At exactly at the previous interval's end) are
// legal: the machine restores and immediately loses power again.
func TestParsePowerTraceTouchingIntervals(t *testing.T) {
	got, err := ParsePowerTrace([]byte("100 20\n120 5\n"))
	if err != nil {
		t.Fatalf("touching intervals rejected: %v", err)
	}
	if len(got.Outages) != 2 {
		t.Fatalf("got %d outages, want 2", len(got.Outages))
	}
}

func TestPowerTraceStringRoundTrip(t *testing.T) {
	orig := &PowerTrace{Outages: []Outage{{At: 0, Down: 3}, {At: 100, Down: 20}, {At: 1 << 40, Down: 1}}}
	if err := orig.Validate(); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePowerTrace([]byte(orig.String()))
	if err != nil {
		t.Fatalf("re-parsing String(): %v", err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip changed the trace:\norig: %+v\nback: %+v", orig, back)
	}
}

func TestGenerateTraceProfiles(t *testing.T) {
	for _, prof := range HarvestProfiles() {
		t.Run(prof, func(t *testing.T) {
			a, err := GenerateTrace(prof, 1_000_000)
			if err != nil {
				t.Fatalf("GenerateTrace: %v", err)
			}
			if a.Empty() {
				t.Fatal("profile generated an empty trace")
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("generated trace invalid: %v", err)
			}
			// Pure arithmetic: same inputs, same schedule.
			b, err := GenerateTrace(prof, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("GenerateTrace is not deterministic")
			}
			// The floor keeps tiny horizons sane.
			small, err := GenerateTrace(prof, 10)
			if err != nil {
				t.Fatalf("tiny horizon: %v", err)
			}
			if err := small.Validate(); err != nil {
				t.Fatalf("tiny-horizon trace invalid: %v", err)
			}
		})
	}
	if _, err := GenerateTrace("solar-flare", 1000); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("unknown profile: got %v, want ErrBadInput", err)
	}
}

func TestResolveTrace(t *testing.T) {
	if tr, err := ResolveTrace("", 1000); err != nil || tr != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", tr, err)
	}
	prof, err := ResolveTrace(ProfileSteady, 1_000_000)
	if err != nil || prof.Empty() {
		t.Fatalf("profile spec: got %+v, %v", prof, err)
	}
	gen, _ := GenerateTrace(ProfileSteady, 1_000_000)
	if !reflect.DeepEqual(prof, gen) {
		t.Fatal("ResolveTrace(steady) differs from GenerateTrace(steady)")
	}
	inline, err := ResolveTrace("100 20\n", 1_000_000)
	if err != nil || len(inline.Outages) != 1 {
		t.Fatalf("inline spec: got %+v, %v", inline, err)
	}
	if _, err := ResolveTrace("100 0\n", 1000); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("bad inline spec: got %v, want ErrBadInput", err)
	}
}

// FuzzPowerTrace is the robustness property for the trace parser: any
// byte string either parses to a trace that passes Validate and
// round-trips through String, or fails with a typed errs.ErrBadInput —
// never a panic, never an untyped error. The seed corpus under
// testdata/fuzz covers both formats, comments, overlaps, zero lengths,
// overflow-scale numbers and JSON trailing garbage; CI replays it under
// -race like FuzzFusedVsSlot.
func FuzzPowerTrace(f *testing.F) {
	f.Add([]byte("100 20\n500 1\n"))
	f.Add([]byte("# comment\n\n100 20\n"))
	f.Add([]byte(`{"outages":[{"at_cycles":100,"down_cycles":20}]}`))
	f.Add([]byte(`[{"at_cycles":100,"down_cycles":20}]`))
	f.Add([]byte("100 20\n110 5\n"))
	f.Add([]byte("100 0\n"))
	f.Add([]byte("18446744073709551615 1\n"))
	f.Add([]byte(`[{"at_cycles":100,"down_cycles":20}] junk`))
	f.Add([]byte("not a trace at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParsePowerTrace(data)
		if err != nil {
			if !errors.Is(err, errs.ErrBadInput) {
				t.Fatalf("parse failure is not ErrBadInput: %v", err)
			}
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("parser returned an invalid trace: %v", err)
		}
		back, err := ParsePowerTrace([]byte(tr.String()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v", err)
		}
		if len(back.Outages) != len(tr.Outages) {
			t.Fatalf("round trip changed outage count: %d vs %d", len(tr.Outages), len(back.Outages))
		}
		for i := range tr.Outages {
			if back.Outages[i] != tr.Outages[i] {
				t.Fatalf("round trip changed outage %d: %+v vs %+v", i, tr.Outages[i], back.Outages[i])
			}
		}
	})
}
