package sim

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/power"
)

func mustImage(t *testing.T, p *ir.Program, inRAM map[string]bool) *layout.Image {
	t.Helper()
	img, err := layout.New(p, layout.DefaultConfig(), inRAM)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return img
}

func run(t *testing.T, p *ir.Program, inRAM map[string]bool) (*Machine, *Stats) {
	t.Helper()
	m := New(mustImage(t, p, inRAM), power.STM32F100())
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, st
}

// fig2Expected mirrors the Figure 2 function's semantics in Go.
func fig2Expected(k int32) uint32 {
	x := uint32(1)
	for i := 0; i < 64; i++ {
		x *= uint32(k)
	}
	if int32(x) > 255 {
		x = 255
	}
	return x
}

func TestFigure2Baseline(t *testing.T) {
	p := ir.Figure2Program()
	m, st := run(t, p, nil)

	got, err := m.ReadGlobal("result")
	if err != nil {
		t.Fatal(err)
	}
	if want := fig2Expected(3); got != want {
		t.Errorf("result = %d, want %d", got, want)
	}
	if st.BlockCounts["fn_loop"] != 64 {
		t.Errorf("fn_loop executed %d times, want 64", st.BlockCounts["fn_loop"])
	}
	if st.BlockCounts["fn_init"] != 1 || st.BlockCounts["fn_if"] != 1 {
		t.Errorf("init/if counts = %d/%d, want 1/1",
			st.BlockCounts["fn_init"], st.BlockCounts["fn_if"])
	}
	if st.Cycles == 0 || st.EnergyNJ <= 0 {
		t.Error("cycles/energy not accounted")
	}
	// Baseline executes everything from flash.
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if st.CyclesByMem[power.RAM][c] != 0 {
			t.Errorf("RAM cycles for class %v in all-flash baseline", c)
		}
	}
	// fn_loop: 63 iterations at mul+add+cmp+bne(taken)=6, 1 at bne not
	// taken = 4. Spot-check the loop contributes 63*6+4 = 382 cycles.
	if st.Cycles < 382 {
		t.Errorf("total cycles %d too small to contain the loop", st.Cycles)
	}
}

// optimizedFigure2 reproduces the right-hand column of Figure 2: fn_loop
// and fn_if live in RAM; fn_init jumps in with ldr pc; fn_if returns to
// flash through the it/ldr/ldr/bx sequence.
func optimizedFigure2() (*ir.Program, map[string]bool) {
	p := ir.NewProgram()

	fn := p.AddFunc(&ir.Function{Name: "fn"})
	initB := fn.AddBlock("fn_init")
	ir.Build(initB).
		Mov(isa.R2, isa.R0).
		MovImm(isa.R1, 1).
		MovImm(isa.R0, 0)
	initB.Append(isa.Instr{Op: isa.LDRLIT, Rd: isa.PC, Sym: "fn_loop"})

	loop := fn.AddBlock("fn_loop")
	ir.Build(loop).
		Mul(isa.R1, isa.R1, isa.R2).
		AddImm(isa.R0, isa.R0, 1).
		CmpImm(isa.R0, 64).
		Bcond(isa.NE, "fn_loop")

	ifB := fn.AddBlock("fn_if")
	ir.Build(ifB).CmpImm(isa.R1, 255)
	ifB.Append(isa.Instr{Op: isa.IT, Cond: isa.LE, ITMask: "e"})
	ifB.Append(isa.Instr{Op: isa.LDRLIT, Cond: isa.LE, Rd: isa.R5, Sym: "fn_return"})
	ifB.Append(isa.Instr{Op: isa.LDRLIT, Cond: isa.GT, Rd: isa.R5, Sym: "fn_iftrue"})
	ifB.Append(isa.Instr{Op: isa.BX, Rm: isa.R5})

	iftrue := fn.AddBlock("fn_iftrue")
	ir.Build(iftrue).MovImm(isa.R1, 255)

	ret := fn.AddBlock("fn_return")
	ir.Build(ret).Mov(isa.R0, isa.R1).Ret()

	m := p.AddFunc(&ir.Function{Name: "main"})
	mb := m.AddBlock("main_entry")
	ir.Build(mb).
		Push(isa.R4, isa.LR).
		MovImm(isa.R0, 3).
		Bl("fn").
		LdrLit(isa.R4, "result").
		Str(isa.R0, isa.R4, 0).
		Pop(isa.R4, isa.PC)

	p.AddGlobal(&ir.Global{Name: "result", Size: 4})
	p.Reindex()
	return p, map[string]bool{"fn_loop": true, "fn_if": true}
}

func TestFigure2OptimizedMatchesBaselineSemantics(t *testing.T) {
	base := ir.Figure2Program()
	mBase, stBase := run(t, base, nil)

	opt, inRAM := optimizedFigure2()
	if err := ir.Verify(opt); err != nil {
		t.Fatalf("optimized program invalid: %v", err)
	}
	mOpt, stOpt := run(t, opt, inRAM)

	rBase, _ := mBase.ReadGlobal("result")
	rOpt, _ := mOpt.ReadGlobal("result")
	if rBase != rOpt {
		t.Fatalf("optimized result %d != baseline %d", rOpt, rBase)
	}

	// The paper's core claim: moving the hot blocks to RAM lowers energy
	// and average power while increasing execution time.
	if stOpt.EnergyNJ >= stBase.EnergyNJ {
		t.Errorf("optimized energy %.1f nJ >= baseline %.1f nJ", stOpt.EnergyNJ, stBase.EnergyNJ)
	}
	if stOpt.Cycles <= stBase.Cycles {
		t.Errorf("optimized cycles %d <= baseline %d (instrumentation must cost time)",
			stOpt.Cycles, stBase.Cycles)
	}
	pBase := mBase.AveragePowerMW(stBase)
	pOpt := mOpt.AveragePowerMW(stOpt)
	if pOpt >= pBase {
		t.Errorf("optimized power %.2f mW >= baseline %.2f mW", pOpt, pBase)
	}
	// Most cycles now run from RAM.
	var ramCycles, flashCycles uint64
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		ramCycles += stOpt.CyclesByMem[power.RAM][c]
		flashCycles += stOpt.CyclesByMem[power.Flash][c]
	}
	if ramCycles <= flashCycles {
		t.Errorf("RAM cycles %d <= flash cycles %d; the loop dominates and is in RAM",
			ramCycles, flashCycles)
	}
}

func TestContentionStalls(t *testing.T) {
	// A RAM-resident block loading from RAM pays the single-port stall.
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "ramfn"})
	b := f.AddBlock("ramfn_body")
	ir.Build(b).
		LdrLit(isa.R1, "buf").
		Ldr(isa.R0, isa.R1, 0).
		Ret()
	m := p.AddFunc(&ir.Function{Name: "main"})
	mb := m.AddBlock("main_entry")
	ir.Build(mb).
		Push(isa.R4, isa.LR).
		LdrLit(isa.R4, "ramfn").
		Blx(isa.R4).
		Pop(isa.R4, isa.PC)
	p.AddGlobal(&ir.Global{Name: "buf", Size: 4, Init: []byte{7, 0, 0, 0}})
	p.Reindex()

	_, st := run(t, p, map[string]bool{"ramfn_body": true})
	// Two stalls: the literal load (pool in RAM) and the data load (buf in
	// RAM), both fetched from RAM.
	if st.ContentionStalls != 2 {
		t.Errorf("ContentionStalls = %d, want 2", st.ContentionStalls)
	}

	// Same program all in flash: no stalls.
	p2 := p.Clone()
	_, st2 := run(t, p2, nil)
	if st2.ContentionStalls != 0 {
		t.Errorf("flash run stalls = %d, want 0", st2.ContentionStalls)
	}
}

func TestCrossLoadPowerCharged(t *testing.T) {
	// RAM code loading a flash constant draws CrossLoadPower (the tall
	// final bar of Figure 1) — total energy must exceed the same code
	// loading from RAM.
	build := func(ro bool) *ir.Program {
		p := ir.NewProgram()
		f := p.AddFunc(&ir.Function{Name: "ramfn"})
		b := f.AddBlock("ramfn_body")
		bb := ir.Build(b).LdrLit(isa.R1, "cdata")
		for i := 0; i < 32; i++ {
			bb.Ldr(isa.R0, isa.R1, 0)
		}
		bb.Ret()
		m := p.AddFunc(&ir.Function{Name: "main"})
		mb := m.AddBlock("main_entry")
		ir.Build(mb).
			Push(isa.R4, isa.LR).
			LdrLit(isa.R4, "ramfn").
			Blx(isa.R4).
			Pop(isa.R4, isa.PC)
		p.AddGlobal(&ir.Global{Name: "cdata", Size: 4, RO: ro})
		p.Reindex()
		return p
	}
	inRAM := map[string]bool{"ramfn_body": true}
	_, stFlashData := run(t, build(true), inRAM)
	_, stRAMData := run(t, build(false), inRAM)
	if stFlashData.EnergyNJ <= stRAMData.EnergyNJ {
		t.Errorf("flash-data energy %.1f <= RAM-data energy %.1f; Figure 1's last bar requires more",
			stFlashData.EnergyNJ, stRAMData.EnergyNJ)
	}
	// But the RAM-data version stalls, so it takes more cycles.
	if stRAMData.Cycles <= stFlashData.Cycles {
		t.Errorf("RAM-data cycles %d <= flash-data cycles %d; contention stall expected",
			stRAMData.Cycles, stFlashData.Cycles)
	}
}

func TestStoreToFlashFaults(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("entry")
	ir.Build(b).
		LdrLit(isa.R1, "ro").
		MovImm(isa.R0, 1).
		Str(isa.R0, isa.R1, 0).
		Ret()
	p.AddGlobal(&ir.Global{Name: "ro", Size: 4, RO: true})
	p.Reindex()

	m := New(mustImage(t, p, nil), power.STM32F100())
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "store to flash") {
		t.Fatalf("err = %v, want store-to-flash fault", err)
	}
}

func TestBadJumpFaults(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("entry")
	ir.Build(b).
		MovImm(isa.R0, 0x1000).
		Blx(isa.R0).
		Ret()
	p.Reindex()
	m := New(mustImage(t, p, nil), power.STM32F100())
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "non-instruction") {
		t.Fatalf("err = %v, want bad-jump fault", err)
	}
}

func TestInstructionLimit(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("spin")
	ir.Build(b).B("spin")
	p.Reindex()
	m := New(mustImage(t, p, nil), power.STM32F100())
	m.MaxInstrs = 1000
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Fatalf("err = %v, want instruction limit", err)
	}
}

func TestArithmeticOps(t *testing.T) {
	// One block computing a mix of operations, storing results to memory.
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("entry")
	bb := ir.Build(b)
	bb.LdrLit(isa.R7, "out")
	// r0 = 100; r1 = 7
	bb.MovImm(isa.R0, 100).MovImm(isa.R1, 7)
	bb.Op3(isa.SDIV, isa.R2, isa.R0, isa.R1) // 14
	bb.Str(isa.R2, isa.R7, 0)
	bb.Op3(isa.UDIV, isa.R2, isa.R0, isa.R1) // 14
	bb.Str(isa.R2, isa.R7, 4)
	bb.OpImm(isa.LSL, isa.R2, isa.R0, 3) // 800
	bb.Str(isa.R2, isa.R7, 8)
	bb.OpImm(isa.ASR, isa.R2, isa.R0, 2) // 25
	bb.Str(isa.R2, isa.R7, 12)
	bb.Op3(isa.EOR, isa.R2, isa.R0, isa.R1) // 99
	bb.Str(isa.R2, isa.R7, 16)
	bb.Op3(isa.BIC, isa.R2, isa.R0, isa.R1) // 100 &^ 7 = 96
	bb.Str(isa.R2, isa.R7, 20)
	bb.OpImm(isa.RSB, isa.R2, isa.R1, 0) // -7
	bb.Str(isa.R2, isa.R7, 24)
	// sdiv by zero → 0
	bb.MovImm(isa.R3, 0)
	bb.Op3(isa.SDIV, isa.R2, isa.R0, isa.R3)
	bb.Str(isa.R2, isa.R7, 28)
	bb.Ret()
	p.AddGlobal(&ir.Global{Name: "out", Size: 32})
	p.Reindex()

	m, _ := run(t, p, nil)
	base := m.Img.Symbols["out"]
	wants := []uint32{14, 14, 800, 25, 99, 96, uint32(0xFFFFFFF9), 0}
	for i, w := range wants {
		got, err := m.ReadWord(base + uint32(4*i))
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("out[%d] = %d (%#x), want %d", i, got, got, w)
		}
	}
}

func TestByteHalfwordAccess(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("entry")
	bb := ir.Build(b)
	bb.LdrLit(isa.R7, "buf").LdrLit(isa.R6, "out")
	// Store 0x80 as a byte, load signed and unsigned.
	bb.MovImm(isa.R0, 0x80)
	bb.OpMem(isa.STRB, isa.R0, isa.R7, 0)
	bb.OpMem(isa.LDRB, isa.R1, isa.R7, 0)
	bb.Str(isa.R1, isa.R6, 0) // 0x80
	bb.OpMem(isa.LDRSB, isa.R1, isa.R7, 0)
	bb.Str(isa.R1, isa.R6, 4) // 0xFFFFFF80
	// Halfword 0x8000.
	bb.LdrConst(isa.R0, 0x8000)
	bb.OpMem(isa.STRH, isa.R0, isa.R7, 4)
	bb.OpMem(isa.LDRH, isa.R1, isa.R7, 4)
	bb.Str(isa.R1, isa.R6, 8) // 0x8000
	bb.OpMem(isa.LDRSH, isa.R1, isa.R7, 4)
	bb.Str(isa.R1, isa.R6, 12) // 0xFFFF8000
	bb.Ret()
	p.AddGlobal(&ir.Global{Name: "buf", Size: 8})
	p.AddGlobal(&ir.Global{Name: "out", Size: 16})
	p.Reindex()

	m, _ := run(t, p, nil)
	base := m.Img.Symbols["out"]
	wants := []uint32{0x80, 0xFFFFFF80, 0x8000, 0xFFFF8000}
	for i, w := range wants {
		got, _ := m.ReadWord(base + uint32(4*i))
		if got != w {
			t.Errorf("out[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestGlobalInitCopied(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("entry")
	ir.Build(b).
		LdrLit(isa.R1, "init").
		Ldr(isa.R0, isa.R1, 0).
		LdrLit(isa.R2, "out").
		Str(isa.R0, isa.R2, 0).
		Ret()
	p.AddGlobal(&ir.Global{Name: "init", Size: 4, Init: []byte{0x78, 0x56, 0x34, 0x12}})
	p.AddGlobal(&ir.Global{Name: "out", Size: 4})
	p.Reindex()
	m, _ := run(t, p, nil)
	got, _ := m.ReadGlobal("out")
	if got != 0x12345678 {
		t.Errorf("out = %#x, want 0x12345678", got)
	}
}

func TestReadGlobalErrors(t *testing.T) {
	p := ir.Figure2Program()
	m := New(mustImage(t, p, nil), power.STM32F100())
	if _, err := m.ReadGlobal("nosuch"); err == nil {
		t.Error("expected error for unknown global")
	}
	if _, err := m.ReadGlobalBytes("nosuch", 4); err == nil {
		t.Error("expected error for unknown global")
	}
	if _, err := m.ReadWord(0); err == nil {
		t.Error("expected error for unmapped address")
	}
}

func TestResetReproducibility(t *testing.T) {
	p := ir.Figure2Program()
	m := New(mustImage(t, p, nil), power.STM32F100())
	st1, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	st2, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cycles != st2.Cycles || st1.EnergyNJ != st2.EnergyNJ ||
		st1.Instructions != st2.Instructions {
		t.Errorf("runs differ after Reset: %+v vs %+v", st1, st2)
	}
}

// straddleProg builds a program performing one word access at addr.
func straddleProg(addr uint32, store bool) *ir.Program {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("entry")
	bb := ir.Build(b).LdrConst(isa.R1, int32(addr))
	if store {
		bb.MovImm(isa.R0, 1).Str(isa.R0, isa.R1, 0)
	} else {
		bb.Ldr(isa.R0, isa.R1, 0)
	}
	bb.Ret()
	p.Reindex()
	return p
}

func TestAccessStraddleFaults(t *testing.T) {
	c := layout.DefaultConfig()
	cases := []struct {
		name  string
		addr  uint32
		store bool
		want  string
	}{
		{"load across flash end", c.FlashBase + uint32(c.FlashSize) - 2, false,
			"4-byte load at 0x800fffe straddles the flash boundary"},
		{"load across ram end", c.RAMBase + uint32(c.RAMSize) - 2, false,
			"4-byte load at 0x20001ffe straddles the ram boundary"},
		{"store across ram end", c.RAMBase + uint32(c.RAMSize) - 2, true,
			"4-byte store at 0x20001ffe straddles the ram boundary"},
		{"load fully outside", 0x40000000, false, "load outside memory at 0x40000000"},
		{"store fully outside", 0x40000000, true, "store outside memory at 0x40000000"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(mustImage(t, straddleProg(tc.addr, tc.store), nil), power.STM32F100())
			_, err := m.Run()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestStraddleAdjacentMemories(t *testing.T) {
	// With RAM mapped directly after flash, a word load across the seam
	// touches both memories. The pre-predecode simulator silently charged
	// the access to whichever memory held the last byte; now it faults, as
	// no single power domain can be attributed.
	c := layout.DefaultConfig()
	c.RAMBase = c.FlashBase + uint32(c.FlashSize)
	addr := c.RAMBase - 2
	img, err := layout.New(straddleProg(addr, false), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New(img, power.STM32F100())
	if _, err := m.Run(); err == nil ||
		!strings.Contains(err.Error(), "straddles the flash boundary") {
		t.Fatalf("err = %v, want flash-boundary straddle fault", err)
	}
}

// recordingObserver copies out every event for later comparison.
type recordingObserver struct{ events []Event }

func (r *recordingObserver) Event(e *Event) { r.events = append(r.events, *e) }

func TestSetImageReuseMatchesFresh(t *testing.T) {
	// One machine retargeted across images via SetImage must produce
	// exactly the stats and event stream of a machine built fresh for each
	// image — this is the contract core.Session's machine pool relies on.
	progs := []struct {
		p     *ir.Program
		inRAM map[string]bool
	}{
		{ir.Figure2Program(), nil},
		{func() *ir.Program { p, _ := optimizedFigure2(); return p }(),
			map[string]bool{"fn_loop": true, "fn_if": true}},
		{ir.Figure2Program(), nil}, // distinct image: retarget back to all-flash
	}
	reused := &Machine{Profile: power.STM32F100()}
	for i, tc := range progs {
		img := mustImage(t, tc.p, tc.inRAM)

		fresh := New(img, power.STM32F100())
		fObs := &recordingObserver{}
		fresh.Attach(fObs)
		fSt, err := fresh.Run()
		if err != nil {
			t.Fatalf("prog %d fresh: %v", i, err)
		}

		reused.SetImage(img)
		rObs := &recordingObserver{}
		reused.Attach(rObs)
		rSt, err := reused.Run()
		if err != nil {
			t.Fatalf("prog %d reused: %v", i, err)
		}

		if fSt.Instructions != rSt.Instructions || fSt.Cycles != rSt.Cycles ||
			fSt.EnergyNJ != rSt.EnergyNJ || fSt.ContentionStalls != rSt.ContentionStalls ||
			fSt.CyclesByMem != rSt.CyclesByMem {
			t.Errorf("prog %d: reused stats %+v != fresh %+v", i, rSt, fSt)
		}
		if len(fSt.BlockCounts) != len(rSt.BlockCounts) {
			t.Errorf("prog %d: block count maps differ", i)
		}
		for k, v := range fSt.BlockCounts {
			if rSt.BlockCounts[k] != v {
				t.Errorf("prog %d: BlockCounts[%s] = %d, want %d", i, k, rSt.BlockCounts[k], v)
			}
		}
		if len(fObs.events) != len(rObs.events) {
			t.Fatalf("prog %d: %d events reused vs %d fresh", i, len(rObs.events), len(fObs.events))
		}
		for j := range fObs.events {
			if fObs.events[j] != rObs.events[j] {
				t.Fatalf("prog %d event %d: reused %+v != fresh %+v",
					i, j, rObs.events[j], fObs.events[j])
			}
		}
	}
}

func TestSetImageSameImageSkipsRebuild(t *testing.T) {
	img := mustImage(t, ir.Figure2Program(), nil)
	m := New(img, power.STM32F100())
	st1, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	tbl := &m.eng.flash[0]
	m.SetImage(img) // same image: tables must be kept, state reset
	if &m.eng.flash[0] != tbl {
		t.Error("SetImage with unchanged image rebuilt the predecode table")
	}
	st2, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cycles != st2.Cycles || st1.EnergyNJ != st2.EnergyNJ {
		t.Errorf("stats differ after same-image SetImage: %+v vs %+v", st1, st2)
	}
}

func TestPredicationCostsOneCycle(t *testing.T) {
	// mov(1) + cmp(1) + it(1) + failing addeq(1) + passing addne(1) + bx(3)
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("entry")
	ir.Build(b).MovImm(isa.R0, 1).CmpImm(isa.R0, 0)
	b.Append(isa.Instr{Op: isa.IT, Cond: isa.EQ, ITMask: "e"})
	b.Append(isa.Instr{Op: isa.ADD, Cond: isa.EQ, Rd: isa.R1, Rn: isa.R1, Imm: 5, HasImm: true})
	b.Append(isa.Instr{Op: isa.ADD, Cond: isa.NE, Rd: isa.R1, Rn: isa.R1, Imm: 9, HasImm: true})
	b.Append(isa.Instr{Op: isa.BX, Rm: isa.LR})
	p.Reindex()
	m, st := run(t, p, nil)
	if got := m.Reg(isa.R1); got != 9 {
		t.Errorf("r1 = %d, want 9 (eq path must be skipped)", got)
	}
	if st.Cycles != 8 {
		t.Errorf("cycles = %d, want 8", st.Cycles)
	}
}
