package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/errs"
)

// Harvested-power fault injection: a PowerTrace schedules power-failure
// instants in simulated wall-clock time. RunIntermittent replays a trace
// against a program — on each outage the machine loses its volatile RAM
// state and registers, flash persists, and execution resumes from the
// last flash checkpoint when power returns (DESIGN.md §6l).
//
// Traces come from two places: ParsePowerTrace reads the external text
// or JSON format (CLI -powertrace files), and GenerateTrace derives the
// named harvest profiles (steady, bursty, adversarial) from a cycle
// horizon with pure arithmetic — no randomness, so a profile name plus a
// horizon is a complete, replayable description of the environment.

// Outage is one power failure: power is lost at wall-clock cycle At and
// returns Down cycles later. Wall-clock time includes executed cycles,
// checkpoint/restore overhead and earlier outages' down time.
type Outage struct {
	// At is the failure instant in wall-clock cycles.
	At uint64 `json:"at_cycles"`
	// Down is the outage length in cycles (≥ 1).
	Down uint64 `json:"down_cycles"`
}

// PowerTrace is a validated, time-ordered schedule of power failures.
type PowerTrace struct {
	Outages []Outage `json:"outages"`
}

// Validate checks the trace invariants: every outage has positive
// length, instants are in increasing order, intervals do not overlap
// (each At is at least the previous At+Down), and no interval overflows
// the cycle counter. All failures are errs.ErrBadInput.
func (t *PowerTrace) Validate() error {
	end := uint64(0)
	for i, o := range t.Outages {
		if o.Down == 0 {
			return errs.BadInput(fmt.Errorf("power trace: outage %d at cycle %d has zero length", i, o.At))
		}
		if o.At > ^uint64(0)-o.Down {
			return errs.BadInput(fmt.Errorf("power trace: outage %d at cycle %d overflows the cycle counter", i, o.At))
		}
		if i > 0 && o.At < end {
			return errs.BadInput(fmt.Errorf("power trace: outage %d at cycle %d overlaps the previous outage ending at %d", i, o.At, end))
		}
		end = o.At + o.Down
	}
	return nil
}

// Empty reports whether the trace schedules no outages (nil-safe): the
// condition under which every run is byte-identical to a plain Run.
func (t *PowerTrace) Empty() bool { return t == nil || len(t.Outages) == 0 }

// String renders the canonical text form ("at down" per line) — the
// fingerprint session memos key on, and a valid ParsePowerTrace input.
func (t *PowerTrace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, o := range t.Outages {
		fmt.Fprintf(&b, "%d %d\n", o.At, o.Down)
	}
	return b.String()
}

// ParsePowerTrace parses a power trace from its external form and
// validates it. Two formats are accepted, distinguished by the first
// non-space byte:
//
//   - JSON ('{' or '['): either {"outages":[{"at_cycles":A,"down_cycles":D},…]}
//     or the bare outage array. Unknown fields are rejected.
//   - Text (anything else): one "<at> <down>" pair per line, both in
//     cycles; blank lines and '#' comments are ignored.
//
// Every failure — syntax, negative or non-numeric fields, zero-length or
// overlapping outages — is a typed errs.ErrBadInput, never a panic, so
// the daemon maps it to 400 and the CLIs exit without a stack trace.
func ParsePowerTrace(data []byte) (*PowerTrace, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[') {
		return parseTraceJSON(trimmed)
	}
	return parseTraceText(data)
}

func parseTraceJSON(data []byte) (*PowerTrace, error) {
	t := &PowerTrace{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var err error
	if data[0] == '[' {
		err = dec.Decode(&t.Outages)
	} else {
		err = dec.Decode(t)
	}
	if err != nil {
		return nil, errs.BadInput(fmt.Errorf("power trace: %w", err))
	}
	// A second document after the first is trailing garbage.
	if dec.More() {
		return nil, errs.BadInput(fmt.Errorf("power trace: trailing data after JSON document"))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseTraceText(data []byte) (*PowerTrace, error) {
	t := &PowerTrace{}
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, errs.BadInput(fmt.Errorf("power trace line %d: want \"<at> <down>\", got %d fields", ln+1, len(fields)))
		}
		at, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, errs.BadInput(fmt.Errorf("power trace line %d: bad instant %q", ln+1, fields[0]))
		}
		down, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, errs.BadInput(fmt.Errorf("power trace line %d: bad length %q", ln+1, fields[1]))
		}
		t.Outages = append(t.Outages, Outage{At: at, Down: down})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Harvest profile names GenerateTrace accepts.
const (
	ProfileSteady      = "steady"
	ProfileBursty      = "bursty"
	ProfileAdversarial = "adversarial"
)

// HarvestProfiles lists the built-in profile names in report order.
func HarvestProfiles() []string {
	return []string{ProfileSteady, ProfileBursty, ProfileAdversarial}
}

// GenerateTrace derives a named harvest profile from a cycle horizon —
// normally the uninterrupted run's executed-cycle count, so the outage
// density scales with the workload. The schedules are pure arithmetic in
// the horizon (no randomness, no clock), so identical inputs always
// yield identical traces:
//
//   - steady: a regular charge/discharge rhythm — an outage every
//     horizon/8 cycles, each lasting a quarter period. The friendly
//     environment: few outages, long stretches of power.
//   - bursty: power arrives in clusters — every horizon/6 cycles a
//     burst of three closely spaced short outages. Models a harvester
//     browning out repeatedly while its storage is near empty.
//   - adversarial: many short outages, one every horizon/64 cycles —
//     the schedule that maximizes checkpoint/replay overhead relative
//     to delivered energy, so per-outage costs dominate.
//
// Schedules extend to roughly 4× the horizon because overhead and down
// time stretch the wall clock past the uninterrupted run; outages the
// program outruns simply never fire.
func GenerateTrace(profile string, horizon uint64) (*PowerTrace, error) {
	// A floor keeps the traces sane for tiny programs: below it the
	// outage rhythm no longer scales down, the program just finishes
	// inside the first power-on interval.
	const minPeriod = 256
	period := func(div uint64) uint64 {
		p := horizon / div
		if p < minPeriod {
			p = minPeriod
		}
		return p
	}
	t := &PowerTrace{}
	switch profile {
	case ProfileSteady:
		p := period(8)
		for k := uint64(1); k <= 32; k++ {
			t.Outages = append(t.Outages, Outage{At: k * p, Down: p / 4})
		}
	case ProfileBursty:
		p := period(6)
		for k := uint64(1); k <= 24; k++ {
			c := k * p
			t.Outages = append(t.Outages,
				Outage{At: c, Down: p / 32},
				Outage{At: c + p/8, Down: p / 32},
				Outage{At: c + p/4, Down: p / 32})
		}
	case ProfileAdversarial:
		p := period(64)
		for k := uint64(1); k <= 256; k++ {
			t.Outages = append(t.Outages, Outage{At: k * p, Down: p / 8})
		}
	default:
		return nil, errs.BadInput(fmt.Errorf("power trace: unknown harvest profile %q (want %s)",
			profile, strings.Join(HarvestProfiles(), ", ")))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ResolveTrace turns a -powertrace flag value into a trace: a built-in
// harvest profile name is generated against the horizon, anything else
// is parsed as inline trace text/JSON. Empty means no trace.
func ResolveTrace(spec string, horizon uint64) (*PowerTrace, error) {
	switch spec {
	case "":
		return nil, nil
	case ProfileSteady, ProfileBursty, ProfileAdversarial:
		return GenerateTrace(spec, horizon)
	}
	return ParsePowerTrace([]byte(spec))
}
