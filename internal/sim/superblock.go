package sim

import (
	"repro/internal/isa"
	"repro/internal/power"
)

// Superblock fusion: at predecode time, maximal straight-line runs of
// slots are compiled into flat micro-op (uop) traces with every operand,
// cycle count and energy outcome resolved up front. The hot loop then
// dispatches a whole run with one bounds check, and each fused
// instruction executes from one contiguous 32-byte record — no slot or
// isa.Instr pointer chases, no operand-form or set-flags branching, no
// per-instruction observer check.
//
// Legality and fallback rules (DESIGN.md §6k):
//
//   - Run bodies take unconditional data-processing instructions,
//     resolved ADR/LDRLIT (LDRLIT only when Rd != PC — that form
//     branches), and loads/stores. Loads and stores can fault and their
//     data memory is dynamic, so their uops carry both precomputed
//     energy outcomes (flash/RAM) and the executor accounts them
//     in order; a fault mid-run flushes the exact partial stats the
//     slot path would have accumulated and reports the same Fault.
//   - A run may close with one terminal control transfer whose charge
//     outcomes are static per direction: B (conditional or not, both
//     target and fall-through energies precomputed), CBZ/CBNZ, BL
//     (records the LR write), and BX/BLX (dynamic target from a
//     register, static charge).
//   - PUSH/POP (multi-access, RegList-dependent), predicated
//     non-branch instructions, unresolved symbols and LDRLIT-to-PC end
//     a run and stay on the slot path.
//   - A superblock is entered only at its head slot. Statically known
//     entry points — branch targets, call-return addresses, ADR and
//     symbol-valued LDRLIT results (potential computed-jump targets),
//     the program entry — split runs so those entries land on a head.
//     A dynamic entry mid-run lands on a slot with sb < 0 and falls
//     back to slot dispatch: slower, never wrong.
//   - Fusion is bypassed entirely when an observer is attached (the
//     event stream is per-instruction) or Machine.NoFuse is set, and a
//     run that would cross MaxInstrs falls back to slot dispatch so the
//     limit faults on the exact instruction.
//
// Stats stay byte-identical to the slot path by construction: energy is
// applied per uop in program order through a single running float64
// (float addition is not associative, so any reassociation would drift
// from the slot path's bit pattern), while the integer stats — cycles
// and the per-class split — are pre-aggregated per run at fuse time,
// which is exact because uint64 addition is associative. Only the
// dynamic parts (load stalls, conditional-terminal direction) are
// accounted at run time.

// minFuse is the shortest run worth a descriptor: a lone slot costs
// more through the superblock indirection than through straight
// dispatch.
const minFuse = 2

// maxFuse caps run length at the cancellation poll interval so one
// fused run can never stretch the poll gap past cancelCheckMask+1
// dispatched slots (runFrom polls before dispatching a run that would
// cross its re-armed mark).
const maxFuse = cancelCheckMask + 1

// uop opcodes. Operand forms are specialized at compile time (…I takes
// u.imm, …R takes m.regs[u.rm] << u.sh) so the executor never tests
// HasImm or Shift. Unary immediate forms (mov/mvn/sxtb/… #imm, adr,
// value-known LDRLIT) all fold to uMOVI with a precomputed imm.
const (
	uNOP = iota
	uMOVI
	uLDL // LDRLIT with Rd != PC: uMOVI plus load-class charge and stall
	uMOVR
	uMVNR
	uSXTBR
	uSXTHR
	uUXTBR
	uUXTHR
	uCLZR
	uADDI
	uADDR
	uADCI
	uADCR
	uSUBI
	uSUBR
	uSBCI
	uSBCR
	uRSBI
	uRSBR
	uMULR
	uMLAR
	uSDIVR
	uUDIVR
	uANDI
	uANDR
	uORRI
	uORRR
	uEORI
	uEORR
	uBICI
	uBICR
	uLSLI
	uLSLR
	uLSRI
	uLSRR
	uASRI
	uASRR
	uRORI
	uRORR
	uCMPI
	uCMPR
	uCMNI
	uCMNR
	uTSTI
	uTSTR
	uLDRI // load [rn, #imm]
	uLDRR // load [rn, rm, lsl #sh]
	uSTRI
	uSTRR
	// Terminal uops — always last in a run.
	uB    // unconditional direct branch: pc = imm
	uBCC  // conditional direct branch: cond in rd, fall-through in imm2
	uCBZ  // pc = imm when regs[rn] == 0, else imm2
	uCBNZ // pc = imm when regs[rn] != 0, else imm2
	uBL   // LR = imm2, pc = imm
	uBX   // pc = regs[rm] &^ 1
	uBLX  // LR = imm2, pc = regs[rm] &^ 1
)

// uop flag bits.
const (
	fS     = 1 << iota // apply the instruction's SetFlags rule
	fSign              // load sign-extends
	fStall             // RAM-resident fetch: a RAM data access stalls
)

// uop is one compiled instruction of a superblock trace: 32 bytes, laid
// out contiguously per run so the executor streams them. Terminal-only
// extras that exist once per run (fall-through PC and cycles, link
// value) live on the superblock instead.
type uop struct {
	code uint8
	rd   uint8 // destination; the condition code of a uBCC
	rn   uint8
	rm   uint8
	sh   uint8 // operand/address shift amount (…R forms)
	cyc  uint8 // charged cycles (taken direction for terminals)
	cl   uint8 // isa.Class, for the CyclesByMem split
	fl   uint8 // fS | fSign | fStall
	sz   uint8 // load/store access bytes

	imm uint32

	energy  float64 // charge in the taken / flash-data outcome
	energy2 float64 // charge in the fall-through / RAM-data outcome
}

// superblock is one fused run.
type superblock struct {
	uops []uop
	// slots parallels uops for the cold paths only: fault attribution
	// and the partial stats flush when a load or store faults mid-run.
	slots  []*slot
	blocks []int32 // IDs of blocks entered in the run (index-0 slots)
	n      uint64  // == len(uops)
	next   uint32  // static successor (fall-through or direct target)
	// nextSB chains runs whose successor is static (fall-through, uB,
	// uBL) and itself a run head: the executor continues there without
	// returning to the dispatch loop, as long as the caller's dispatch
	// limit (poll mark, MaxInstrs) permits. -1 ends the chain.
	nextSB int32
	// staticCycles and perClass pre-aggregate every statically charged
	// cycle of the run (bodies and unconditional terminals); only
	// dynamic load stalls and conditional-terminal outcomes are
	// accounted at run time. perClass is a fixed array so the flush is
	// branch-free adds straight out of the descriptor (fetch memory is
	// uniform across a run, so only the class dimension is needed).
	staticCycles uint64
	perClass     [isa.NumClasses]uint64
	// maxCycles is the worst-case cycle cost of one execution of the
	// run: staticCycles plus every possible dynamic load stall plus the
	// dearer direction of a conditional terminal. runFrom and the chain
	// gate compare it against the intermittent stop mark — a run that
	// could reach the mark is declined, so the boundary instructions
	// always slot-dispatch (intermittent.go).
	maxCycles uint64
	fetchMem  power.Memory
	tail      *slot // last instruction — blames wild jumps out of the run

	// Terminal extras (conditional terminals and link writes).
	termImm2 uint32 // fall-through PC (uBCC/uCBZ/uCBNZ), link value (uBL/uBLX)
	termCyc2 uint8  // fall-through cycles
}

// compileBody translates one fusible body slot to a uop. ok is false
// when the slot has no fused form (the run breaks there instead).
func compileBody(s *slot, fetchMem power.Memory) (u uop, ok bool) {
	in := s.in
	if in.Cond != isa.AL {
		return u, false
	}
	u.cyc = s.cycles
	u.cl = uint8(s.class)
	u.energy = float64(s.cycles) * s.epc[power.None]
	u.rd, u.rn = uint8(in.Rd), uint8(in.Rn)
	if in.SetFlags {
		u.fl |= fS
	}
	setRM := func() {
		u.rm, u.sh = uint8(in.Rm), in.Shift
	}
	// operand2 of the immediate forms, for compile-time folding.
	imm := uint32(in.Imm)

	switch s.op {
	case isa.NOP, isa.IT:
		u.code, u.fl = uNOP, u.fl&^fS
	case isa.MOV, isa.MVN, isa.SXTB, isa.SXTH, isa.UXTB, isa.UXTH, isa.CLZ:
		if in.HasImm {
			// Fold the unary op over the constant operand now.
			u.code = uMOVI
			switch s.op {
			case isa.MOV:
				u.imm = imm
			case isa.MVN:
				u.imm = ^imm
			case isa.SXTB:
				u.imm = uint32(int32(int8(imm)))
			case isa.SXTH:
				u.imm = uint32(int32(int16(imm)))
			case isa.UXTB:
				u.imm = imm & 0xFF
			case isa.UXTH:
				u.imm = imm & 0xFFFF
			case isa.CLZ:
				u.imm = clz(imm)
			}
		} else {
			setRM()
			switch s.op {
			case isa.MOV:
				u.code = uMOVR
			case isa.MVN:
				u.code = uMVNR
			case isa.SXTB:
				u.code = uSXTBR
			case isa.SXTH:
				u.code = uSXTHR
			case isa.UXTB:
				u.code = uUXTBR
			case isa.UXTH:
				u.code = uUXTHR
			case isa.CLZ:
				u.code = uCLZR
			}
		}
	case isa.ADD, isa.ADC, isa.SUB, isa.SBC, isa.RSB,
		isa.AND, isa.ORR, isa.EOR, isa.BIC,
		isa.LSL, isa.LSR, isa.ASR, isa.ROR,
		isa.CMP, isa.CMN, isa.TST:
		type pair struct{ i, r uint8 }
		forms := map[isa.Op]pair{
			isa.ADD: {uADDI, uADDR}, isa.ADC: {uADCI, uADCR},
			isa.SUB: {uSUBI, uSUBR}, isa.SBC: {uSBCI, uSBCR},
			isa.RSB: {uRSBI, uRSBR},
			isa.AND: {uANDI, uANDR}, isa.ORR: {uORRI, uORRR},
			isa.EOR: {uEORI, uEORR}, isa.BIC: {uBICI, uBICR},
			isa.LSL: {uLSLI, uLSLR}, isa.LSR: {uLSRI, uLSRR},
			isa.ASR: {uASRI, uASRR}, isa.ROR: {uRORI, uRORR},
			isa.CMP: {uCMPI, uCMPR}, isa.CMN: {uCMNI, uCMNR},
			isa.TST: {uTSTI, uTSTR},
		}
		f := forms[s.op]
		if in.HasImm {
			u.code, u.imm = f.i, imm
		} else {
			u.code = f.r
			setRM()
		}
	case isa.MUL, isa.MLA, isa.SDIV, isa.UDIV:
		if in.HasImm {
			return u, false // immediate forms never emitted; keep slot path
		}
		setRM()
		switch s.op {
		case isa.MUL:
			u.code = uMULR
		case isa.MLA:
			u.code = uMLAR
		case isa.SDIV:
			u.code = uSDIVR
		case isa.UDIV:
			u.code = uUDIVR
		}
	case isa.ADR:
		if !s.targetOK {
			return u, false
		}
		// The reference ADR ignores SetFlags; so must the fold.
		u.code, u.imm, u.fl = uMOVI, s.target, u.fl&^fS
	case isa.LDRLIT:
		if !s.targetOK || in.Rd == isa.PC {
			return u, false
		}
		u.code, u.imm, u.fl = uLDL, s.target, u.fl&^fS
		cyc := int(s.cycles)
		if s.fetchMem == power.RAM && s.litMem == power.RAM {
			cyc += isa.RAMContentionStall
			u.fl |= fStall
		}
		u.cyc = uint8(cyc)
		u.energy = float64(cyc) * s.epc[s.litMem]
	case isa.LDR, isa.LDRB, isa.LDRH, isa.LDRSB, isa.LDRSH:
		u.code = uLDRI
		switch in.Mode {
		case isa.AddrOffset:
			u.imm = imm
		case isa.AddrReg:
			u.code = uLDRR
			u.rm = uint8(in.Rm)
		case isa.AddrRegLSL:
			u.code = uLDRR
			u.rm, u.sh = uint8(in.Rm), in.Shift
		default:
			u.imm = 0 // effAddr's fallback: base register only
		}
		u.sz = s.memSize
		if s.memSign {
			u.fl |= fSign
		}
		cyc := int(s.cycles)
		u.energy = float64(cyc) * s.epc[power.Flash]
		if fetchMem == power.RAM {
			u.fl |= fStall
			cyc += isa.RAMContentionStall
		}
		u.energy2 = float64(cyc) * s.epc[power.RAM]
	case isa.STR, isa.STRB, isa.STRH:
		u.code = uSTRI
		switch in.Mode {
		case isa.AddrOffset:
			u.imm = imm
		case isa.AddrReg:
			u.code = uSTRR
			u.rm = uint8(in.Rm)
		case isa.AddrRegLSL:
			u.code = uSTRR
			u.rm, u.sh = uint8(in.Rm), in.Shift
		default:
			u.imm = 0
		}
		u.sz = s.memSize
		// A successful store always hits RAM (stores to flash fault).
		u.energy = float64(s.cycles) * s.epc[power.RAM]
	default:
		return u, false
	}
	return u, true
}

// compileTerminal translates a run-closing control transfer to a uop.
// imm2 (fall-through PC for conditional forms, link value for BL/BLX) and
// cyc2 (fall-through cycles) live on the superblock — a run has at most
// one terminal, so they are returned separately rather than widening
// every uop.
func compileTerminal(s *slot) (u uop, imm2 uint32, cyc2 uint8, ok bool) {
	in := s.in
	u.cyc = s.cycles
	u.cl = uint8(s.class)
	u.energy = float64(s.cycles) * s.epc[power.None]
	switch s.op {
	case isa.B:
		if !s.targetOK {
			return u, 0, 0, false
		}
		u.imm = s.target
		if in.Cond == isa.AL {
			u.code = uB
		} else {
			u.code, u.rd = uBCC, uint8(in.Cond)
			imm2, cyc2 = s.seqNext, s.cyclesNT
			u.energy2 = float64(s.cyclesNT) * s.epc[power.None]
		}
	case isa.CBZ, isa.CBNZ:
		if in.Cond != isa.AL || !s.targetOK {
			return u, 0, 0, false
		}
		u.code = uCBZ
		if s.op == isa.CBNZ {
			u.code = uCBNZ
		}
		u.rn = uint8(in.Rn)
		u.imm = s.target
		imm2, cyc2 = s.seqNext, s.cyclesNT
		u.energy2 = float64(s.cyclesNT) * s.epc[power.None]
	case isa.BL:
		if in.Cond != isa.AL || !s.targetOK {
			return u, 0, 0, false
		}
		u.code = uBL
		u.imm, imm2 = s.target, s.seqNext
	case isa.BX:
		if in.Cond != isa.AL {
			return u, 0, 0, false
		}
		u.code, u.rm = uBX, uint8(in.Rm)
	case isa.BLX:
		if in.Cond != isa.AL {
			return u, 0, 0, false
		}
		u.code, u.rm = uBLX, uint8(in.Rm)
		imm2 = s.seqNext
	default:
		return u, 0, 0, false
	}
	return u, imm2, cyc2, true
}

// fuse builds the superblock table for the current predecode tables.
// entry is the program entry address; like every statically known branch
// target it must start its own run. Called from predecode only — targets
// are read from the already-resolved slots, never from the symbol map.
func (m *Machine) fuse(entry uint32) {
	e := &m.eng
	e.super = e.super[:0]

	// Addresses that must be run heads so statically known entries land
	// on a descriptor: resolved branch targets, call-return addresses,
	// ADR results and symbol-valued LDRLIT results (potential computed
	// jumps), and the entry point. Value-only LDRLIT constants are
	// excluded — they are data, and splitting at whatever code address
	// they happen to alias would chop runs for nothing.
	split := map[uint32]struct{}{entry: {}}
	for _, tbl := range [2][]slot{e.flash, e.ram} {
		for i := range tbl {
			s := &tbl[i]
			if s.pl == nil {
				continue
			}
			switch s.op {
			case isa.B, isa.CBZ, isa.CBNZ:
				if s.targetOK {
					split[s.target] = struct{}{}
				}
			case isa.BL:
				if s.targetOK {
					split[s.target] = struct{}{}
				}
				split[s.seqNext] = struct{}{}
			case isa.BLX:
				split[s.seqNext] = struct{}{}
			case isa.ADR:
				if s.targetOK {
					split[s.target] = struct{}{}
				}
			case isa.LDRLIT:
				if s.targetOK && s.in.Sym != "" {
					split[s.target] = struct{}{}
				}
			}
		}
	}

	e.fuseRegion(e.flash, e.flashBase, e.flashLen, power.Flash, split)
	e.fuseRegion(e.ram, e.ramBase, e.ramLen, power.RAM, split)

	// Link pass: chain runs whose successor is static and fused. Both
	// regions must be carved before successors can be resolved.
	for i := range e.super {
		sb := &e.super[i]
		sb.nextSB = -1
		if last := sb.uops[len(sb.uops)-1].code; last == uBCC || last == uCBZ ||
			last == uCBNZ || last == uBX || last == uBLX {
			continue // dynamic successor: the chain ends here
		}
		if s := e.slotAt(sb.next); s != nil && s.sb >= 0 {
			sb.nextSB = s.sb
		}
	}
}

// fuseRegion scans one region's slot table in address order, carving it
// into maximal fusible runs and appending their descriptors.
func (e *engine) fuseRegion(tbl []slot, base, codeLen uint32, fetchMem power.Memory, split map[uint32]struct{}) {
	for i := 0; i < len(tbl); {
		head := &tbl[i]
		if head.pl == nil {
			i++
			continue
		}
		hu, ok := compileBody(head, fetchMem)
		if !ok {
			i++
			continue
		}
		uops := []uop{hu}
		slots := []*slot{head}
		var term *slot
		var termU uop
		var termImm2 uint32
		var termCyc2 uint8
		cur := head
		for len(uops) < maxFuse {
			d := cur.seqNext - base
			if d >= codeLen {
				break
			}
			nx := &tbl[d>>1]
			if nx.pl == nil {
				break
			}
			// A terminal is absorbed even at a split address: it could
			// never head a run of its own, so nothing is lost, and a
			// direct entry at it still slot-dispatches correctly.
			if tu, i2, c2, ok := compileTerminal(nx); ok {
				term, termU, termImm2, termCyc2 = nx, tu, i2, c2
				break
			}
			if _, isHead := split[cur.seqNext]; isHead {
				break
			}
			bu, ok := compileBody(nx, fetchMem)
			if !ok {
				break
			}
			uops = append(uops, bu)
			slots = append(slots, nx)
			cur = nx
		}

		// Resume the scan after everything this run consumed.
		endAddr := cur.seqNext
		if term != nil {
			endAddr = term.seqNext
		}
		i = int(endAddr-base) >> 1

		total := len(uops)
		if term != nil {
			total++
		}
		if total < minFuse {
			continue
		}

		sb := superblock{
			n:        uint64(total),
			next:     cur.seqNext,
			fetchMem: fetchMem,
			tail:     cur,
		}
		if term != nil {
			uops = append(uops, termU)
			slots = append(slots, term)
			sb.next, sb.tail = term.target, term // uB/uBL; others override at run time
			sb.termImm2, sb.termCyc2 = termImm2, termCyc2
		}
		sb.uops, sb.slots = uops, slots
		for _, s := range slots {
			if s.index == 0 {
				sb.blocks = append(sb.blocks, s.blockID)
			}
		}
		// Pre-aggregate every statically charged cycle: bodies (a load's
		// dynamic stall cycle is excluded — u.cyc is its base cost) and
		// unconditional terminals. Conditional terminals pick a direction
		// at run time and account themselves. uint64 addition is
		// associative, so pre-summing cycles is exact; only energy must
		// stay strictly per-uop.
		for k := range uops {
			u := &uops[k]
			if u.code == uBCC || u.code == uCBZ || u.code == uCBNZ {
				continue
			}
			sb.perClass[u.cl] += uint64(u.cyc)
			sb.staticCycles += uint64(u.cyc)
		}
		// Worst-case cycle bound for the intermittent stop gate: every
		// stall-capable load stalls, and a conditional terminal takes
		// its dearer direction.
		sb.maxCycles = sb.staticCycles
		for k := range uops {
			u := &uops[k]
			switch u.code {
			case uBCC, uCBZ, uCBNZ:
				mc := uint64(u.cyc)
				if c2 := uint64(termCyc2); c2 > mc {
					mc = c2
				}
				sb.maxCycles += mc
			case uLDRI, uLDRR:
				if u.fl&fStall != 0 {
					sb.maxCycles += isa.RAMContentionStall
				}
			}
		}
		head.sb = int32(len(e.super))
		e.super = append(e.super, sb)
	}
}

// runSuperblock executes one fused run — and chains straight into
// statically linked successor runs while the dispatch limit permits —
// returning the next PC and the last executed run's tail, or a located
// Fault when a load or store faults mid-run. Energy accumulates per uop
// in program order through a single local (bit-identity demands the slot
// path's exact float addition order); cycles and the per-class split
// were pre-aggregated at fuse time, so at run time only the dynamic
// parts remain — load stalls, conditional-terminal direction — and the
// hot per-uop tail is one float add.
//
// limit is the instruction count the chain must not cross: the nearer of
// the re-armed cancellation poll mark and MaxInstrs. The caller polls or
// faults at the boundary, so chaining never stretches either guarantee.
// stop is the executed-cycle pause mark (never-reached sentinel outside
// intermittent runs): a successor whose worst-case cycle bound could
// reach it ends the chain, mirroring runFrom's entry gate.
func (m *Machine) runSuperblock(sb *superblock, limit, stop uint64) (uint32, *slot, *Fault) {
	st := &m.stats
	e := st.EnergyNJ
	super := m.eng.super
	counts := m.eng.blockCounts
chain:
	cbm := &st.CyclesByMem[sb.fetchMem]
	// stallCyc counts dynamic load stall cycles (charged to ClassLoad),
	// stallEv the stall events; tcyc is the conditional terminal's chosen
	// cycle cost (zero when the run ends unconditionally — those cycles
	// are in staticCycles).
	var stallCyc, stallEv, tcyc uint64
	next := sb.next
	uops := sb.uops
	for i := 0; i < len(uops); i++ {
		u := &uops[i]
		switch u.code {
		case uNOP:
		case uMOVI:
			m.regs[u.rd] = u.imm
			if u.fl&fS != 0 {
				m.setNZ(u.imm)
			}
		case uLDL:
			// The stall cycle (if any) is static — litMem is known — and
			// already folded into u.cyc/u.energy; only the event counts.
			m.regs[u.rd] = u.imm
			if u.fl&fStall != 0 {
				stallEv++
			}
		case uMOVR:
			v := m.regs[u.rm] << u.sh
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uMVNR:
			v := ^(m.regs[u.rm] << u.sh)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uSXTBR:
			v := uint32(int32(int8(m.regs[u.rm] << u.sh)))
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uSXTHR:
			v := uint32(int32(int16(m.regs[u.rm] << u.sh)))
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uUXTBR:
			v := (m.regs[u.rm] << u.sh) & 0xFF
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uUXTHR:
			v := (m.regs[u.rm] << u.sh) & 0xFFFF
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uCLZR:
			v := clz(m.regs[u.rm] << u.sh)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uADDI:
			a := m.regs[u.rn]
			v := a + u.imm
			if u.fl&fS != 0 {
				m.setAddFlags(a, u.imm, 0)
			}
			m.regs[u.rd] = v
		case uADDR:
			a, b := m.regs[u.rn], m.regs[u.rm]<<u.sh
			v := a + b
			if u.fl&fS != 0 {
				m.setAddFlags(a, b, 0)
			}
			m.regs[u.rd] = v
		case uADCI:
			a := m.regs[u.rn]
			carry := uint32(0)
			if m.c {
				carry = 1
			}
			v := a + u.imm + carry
			if u.fl&fS != 0 {
				m.setAddFlags(a, u.imm, carry)
			}
			m.regs[u.rd] = v
		case uADCR:
			a, b := m.regs[u.rn], m.regs[u.rm]<<u.sh
			carry := uint32(0)
			if m.c {
				carry = 1
			}
			v := a + b + carry
			if u.fl&fS != 0 {
				m.setAddFlags(a, b, carry)
			}
			m.regs[u.rd] = v
		case uSUBI:
			a := m.regs[u.rn]
			v := a - u.imm
			if u.fl&fS != 0 {
				m.setSubFlags(a, u.imm)
			}
			m.regs[u.rd] = v
		case uSUBR:
			a, b := m.regs[u.rn], m.regs[u.rm]<<u.sh
			v := a - b
			if u.fl&fS != 0 {
				m.setSubFlags(a, b)
			}
			m.regs[u.rd] = v
		case uSBCI:
			borrow := uint32(1)
			if m.c {
				borrow = 0
			}
			v := m.regs[u.rn] - u.imm - borrow
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uSBCR:
			borrow := uint32(1)
			if m.c {
				borrow = 0
			}
			v := m.regs[u.rn] - m.regs[u.rm]<<u.sh - borrow
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uRSBI:
			a := m.regs[u.rn]
			v := u.imm - a
			if u.fl&fS != 0 {
				m.setSubFlags(u.imm, a)
			}
			m.regs[u.rd] = v
		case uRSBR:
			a, b := m.regs[u.rn], m.regs[u.rm]<<u.sh
			v := b - a
			if u.fl&fS != 0 {
				m.setSubFlags(b, a)
			}
			m.regs[u.rd] = v
		case uMULR:
			v := m.regs[u.rn] * (m.regs[u.rm] << u.sh)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uMLAR:
			v := m.regs[u.rd] + m.regs[u.rn]*(m.regs[u.rm]<<u.sh)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uSDIVR:
			a, b := m.regs[u.rn], m.regs[u.rm]<<u.sh
			var v uint32
			if b == 0 {
				v = 0 // ARM defines divide-by-zero result as 0
			} else if int32(a) == -1<<31 && int32(b) == -1 {
				v = a // overflow case: result is the dividend
			} else {
				v = uint32(int32(a) / int32(b))
			}
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uUDIVR:
			a, b := m.regs[u.rn], m.regs[u.rm]<<u.sh
			var v uint32
			if b != 0 {
				v = a / b
			}
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uANDI:
			v := m.regs[u.rn] & u.imm
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uANDR:
			v := m.regs[u.rn] & (m.regs[u.rm] << u.sh)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uORRI:
			v := m.regs[u.rn] | u.imm
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uORRR:
			v := m.regs[u.rn] | m.regs[u.rm]<<u.sh
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uEORI:
			v := m.regs[u.rn] ^ u.imm
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uEORR:
			v := m.regs[u.rn] ^ m.regs[u.rm]<<u.sh
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uBICI:
			v := m.regs[u.rn] &^ u.imm
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uBICR:
			v := m.regs[u.rn] &^ (m.regs[u.rm] << u.sh)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uLSLI:
			v := shiftL(m.regs[u.rn], u.imm)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uLSLR:
			v := shiftL(m.regs[u.rn], m.regs[u.rm]<<u.sh)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uLSRI:
			v := shiftR(m.regs[u.rn], u.imm)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uLSRR:
			v := shiftR(m.regs[u.rn], m.regs[u.rm]<<u.sh)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uASRI:
			v := shiftAR(m.regs[u.rn], u.imm)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uASRR:
			v := shiftAR(m.regs[u.rn], m.regs[u.rm]<<u.sh)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uRORI:
			v := rotR(m.regs[u.rn], u.imm)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uRORR:
			v := rotR(m.regs[u.rn], m.regs[u.rm]<<u.sh)
			m.regs[u.rd] = v
			if u.fl&fS != 0 {
				m.setNZ(v)
			}
		case uCMPI:
			m.setSubFlags(m.regs[u.rn], u.imm)
		case uCMPR:
			m.setSubFlags(m.regs[u.rn], m.regs[u.rm]<<u.sh)
		case uCMNI:
			m.setAddFlags(m.regs[u.rn], u.imm, 0)
		case uCMNR:
			m.setAddFlags(m.regs[u.rn], m.regs[u.rm]<<u.sh, 0)
		case uTSTI:
			m.setNZ(m.regs[u.rn] & u.imm)
		case uTSTR:
			m.setNZ(m.regs[u.rn] & (m.regs[u.rm] << u.sh))
		case uLDRI, uLDRR:
			// m.load open-coded (it is beyond the inlining budget; the
			// fused path pays for a call here on every load): same bounds
			// rule, same fault, same sign extension.
			addr := m.regs[u.rn] + u.imm
			if u.code == uLDRR {
				addr = m.regs[u.rn] + m.regs[u.rm]<<u.sh
			}
			var v uint32
			ram := false
			if d := addr - m.flashBase; uint64(d)+uint64(u.sz) <= uint64(m.flashSize) {
				v = readLE(m.flash[d:], int(u.sz))
			} else if d := addr - m.ramBase; uint64(d)+uint64(u.sz) <= uint64(m.ramSize) {
				v = readLE(m.ram[d:], int(u.sz))
				ram = true
			} else {
				return 0, nil, m.flushFault(sb, i, stallCyc, stallEv, e,
					m.accessFault("load", addr, int(u.sz)))
			}
			if u.fl&fSign != 0 {
				shift := uint(32 - 8*u.sz)
				v = uint32(int32(v<<shift) >> shift)
			}
			m.regs[u.rd] = v
			if ram {
				if u.fl&fStall != 0 {
					stallCyc++
					stallEv++
				}
				e += u.energy2
			} else {
				e += u.energy
			}
			continue
		case uSTRI, uSTRR:
			addr := m.regs[u.rn] + u.imm
			if u.code == uSTRR {
				addr = m.regs[u.rn] + m.regs[u.rm]<<u.sh
			}
			if d := addr - m.ramBase; uint64(d)+uint64(u.sz) <= uint64(m.ramSize) {
				writeLE(m.ram[d:], m.regs[u.rd], int(u.sz))
			} else if _, err := m.store(addr, m.regs[u.rd], int(u.sz)); err != nil {
				// m.store re-derives the flash/unmapped/straddle fault.
				return 0, nil, m.flushFault(sb, i, stallCyc, stallEv, e, err)
			}
		case uB:
			// next is already sb.next == the target.
		case uBCC:
			if isa.Cond(u.rd).Holds(m.n, m.z, m.c, m.v) {
				next, tcyc = u.imm, uint64(u.cyc)
				e += u.energy
			} else {
				next, tcyc = sb.termImm2, uint64(sb.termCyc2)
				e += u.energy2
			}
			continue
		case uCBZ:
			if m.regs[u.rn] == 0 {
				next, tcyc = u.imm, uint64(u.cyc)
				e += u.energy
			} else {
				next, tcyc = sb.termImm2, uint64(sb.termCyc2)
				e += u.energy2
			}
			continue
		case uCBNZ:
			if m.regs[u.rn] != 0 {
				next, tcyc = u.imm, uint64(u.cyc)
				e += u.energy
			} else {
				next, tcyc = sb.termImm2, uint64(sb.termCyc2)
				e += u.energy2
			}
			continue
		case uBL:
			m.regs[isa.LR] = sb.termImm2
		case uBX:
			next = m.regs[u.rm] &^ 1
		case uBLX:
			m.regs[isa.LR] = sb.termImm2
			next = m.regs[u.rm] &^ 1
		}
		e += u.energy
	}
	st.Instructions += sb.n
	st.Cycles += sb.staticCycles + stallCyc + tcyc
	// Dynamic charges land on fixed classes: load stalls on ClassLoad,
	// a conditional terminal (tcyc is zero otherwise) on ClassBranch.
	cbm[isa.ClassLoad] += stallCyc
	cbm[isa.ClassBranch] += tcyc
	st.ContentionStalls += stallEv
	st.EnergyNJ = e
	for cl := range sb.perClass {
		cbm[cl] += sb.perClass[cl]
	}
	for _, id := range sb.blocks {
		counts[id]++
	}
	m.fusedInstrs += sb.n
	if sb.nextSB >= 0 {
		if nb := &super[sb.nextSB]; st.Instructions+nb.n <= limit && st.Cycles+nb.maxCycles < stop {
			sb = nb
			goto chain
		}
	}
	return next, sb.tail, nil
}

// flushFault commits the exact partial stats of a run that faulted at
// uop i (the faulting instruction has charged nothing, but its block
// entry counts — the slot path increments before stepping) and returns
// the located fault. Cold path: it reconstructs the prefix's static
// cycles and class split by walking uops[:i] — energies and dynamic
// stalls were tracked in order by the caller and arrive as arguments.
func (m *Machine) flushFault(sb *superblock, i int, stallCyc, stallEv uint64, e float64, err error) *Fault {
	st := &m.stats
	cbm := &st.CyclesByMem[sb.fetchMem]
	var cycles uint64
	for k := 0; k < i; k++ {
		u := &sb.uops[k]
		cycles += uint64(u.cyc)
		cbm[u.cl] += uint64(u.cyc)
	}
	st.Instructions += uint64(i)
	st.Cycles += cycles + stallCyc
	cbm[isa.ClassLoad] += stallCyc
	st.ContentionStalls += stallEv
	st.EnergyNJ = e
	counts := m.eng.blockCounts
	for _, s := range sb.slots[:i+1] {
		if s.index == 0 {
			counts[s.blockID]++
		}
	}
	m.fusedInstrs += uint64(i)
	s := sb.slots[i]
	f := &Fault{PC: s.pl.InstrAddrs[s.index], Reason: err.Error()}
	f.locate(s.ref())
	return f
}
