package sim

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/power"
)

// synthExecProgram deterministically builds a runnable program from fuzz
// bytes: every 3 bytes pick one instruction from a table of encodable
// shapes, the final byte picks the terminator and the first byte picks
// the flash/RAM placement. The shapes mirror internal/encode's round-trip
// generator, biased toward what exercises the superblock engine: flag
// writers feeding conditional terminals, loads/stores that mostly hit the
// global buffer but sometimes fault, multiplies, literal loads. Programs
// are straight-line plus forward branches and a leaf call, so every
// synthesis terminates.
func synthExecProgram(data []byte) (*ir.Program, map[string]bool) {
	if len(data) < 4 {
		return nil, nil
	}
	p := ir.NewProgram()
	p.AddGlobal(&ir.Global{Name: "gdata", Size: 128})
	leaf := p.AddFunc(&ir.Function{Name: "leaf"})
	ir.Build(leaf.AddBlock("leaf_entry")).
		AddImm(isa.R6, isa.R6, 1).
		Ret()

	f := p.AddFunc(&ir.Function{Name: "main"})
	body := f.AddBlock("m0")
	bb := ir.Build(body)
	bb.Push(isa.R4, isa.LR)
	bb.LdrLit(isa.R7, "gdata") // memory ops mostly land in gdata

	lo := func(b byte) isa.Reg { return isa.Reg(b & 7) }
	imm8 := func(b byte) int32 { return int32(b) }
	shamt := func(b byte) int32 { return int32(b%31) + 1 }

	n := (len(data) - 2) / 3
	if n > 25 {
		n = 25
	}
	for i := 0; i < n; i++ {
		op, a, b := data[3*i+1], data[3*i+2], data[3*i+3]
		switch op % 26 {
		case 0:
			bb.Nop()
		case 1:
			bb.MovImm(lo(a), imm8(b))
		case 2:
			bb.Add(lo(op), lo(a), lo(b))
		case 3:
			bb.AddImm(lo(a), lo(a), imm8(b))
		case 4:
			bb.Sub(lo(op), lo(a), lo(b))
		case 5:
			bb.SubImm(lo(a), lo(a), imm8(b))
		case 6:
			bb.Mul(lo(a), lo(a), lo(b))
		case 7:
			bb.CmpImm(lo(a), imm8(b))
		case 8:
			bb.Cmp(lo(a), lo(b))
		case 9:
			bb.Op3(isa.AND, lo(a), lo(a), lo(b))
		case 10:
			bb.Op3(isa.ORR, lo(a), lo(a), lo(b))
		case 11:
			bb.Op3(isa.EOR, lo(a), lo(a), lo(b))
		case 12:
			bb.Op3(isa.BIC, lo(a), lo(a), lo(b))
		case 13:
			bb.OpImm(isa.LSL, lo(a), lo(b), shamt(op))
		case 14:
			bb.OpImm(isa.LSR, lo(a), lo(b), shamt(op))
		case 15:
			bb.OpImm(isa.ASR, lo(a), lo(b), shamt(op))
		case 16:
			bb.Op3(isa.MVN, lo(a), isa.NoReg, lo(b))
		case 17:
			bb.Op3(isa.SXTB, lo(a), isa.NoReg, lo(b))
		case 18:
			bb.Op3(isa.UXTB, lo(a), isa.NoReg, lo(b))
		case 19:
			bb.Op3(isa.UDIV, lo(op), lo(a), lo(b))
		case 20:
			bb.Op3(isa.SDIV, lo(op), lo(a), lo(b))
		case 21:
			// In-bounds of gdata for offsets 0..124; the value loaded
			// feeds later ops, diverging the two engines on any slip.
			bb.Ldr(lo(a), isa.R7, int32(op%32)*4)
		case 22:
			bb.Str(lo(a), isa.R7, int32(op%32)*4)
		case 23:
			bb.OpMem(isa.LDRSB, lo(a), isa.R7, int32(op%32))
		case 24:
			bb.OpMem(isa.STRH, lo(a), isa.R7, int32(op%32)*2)
		case 25:
			// Raw register base: usually faults — the fault message and
			// the partial stats must match between the engines.
			bb.Ldr(lo(a), lo(b), int32(op%32)*4)
		}
		if op%37 == 5 {
			bb.Bl("leaf")
		}
	}

	switch t := data[len(data)-1]; t % 5 {
	case 0:
		// fall through to m1
	case 1:
		bb.B("m2")
	case 2:
		bb.Bcond([]isa.Cond{isa.EQ, isa.NE, isa.LT, isa.GE, isa.GT, isa.LE, isa.HI, isa.LS}[t%8], "m2")
	case 3:
		bb.Cbz(lo(t), "m2")
	case 4:
		bb.Cbnz(lo(t), "m2")
	}
	ir.Build(f.AddBlock("m1")).AddImm(isa.R5, isa.R5, 1)
	ir.Build(f.AddBlock("m2")).Pop(isa.R4, isa.PC)
	p.Reindex()

	// All-flash or all-RAM: a direct bl may not cross memories without
	// indirect-branch instrumentation, which is above this layer.
	if data[0]%2 == 1 {
		return p, map[string]bool{"m0": true, "m1": true, "m2": true, "leaf_entry": true}
	}
	return p, nil
}

// FuzzFusedVsSlot is the differential property test for the superblock
// engine: any synthesized program must produce identical stats, fault
// messages, registers and block counts through fused dispatch and forced
// slot dispatch (the beebsbench -nofuse knob). The seed corpus under
// testdata/fuzz covers ALU-only runs, load/store mixes, faulting
// accesses, conditional terminators and RAM placements; CI replays it
// under -race.
func FuzzFusedVsSlot(f *testing.F) {
	f.Add([]byte("\x00\x01\x02\x03\x15\x04\x00\x02\x05\x06\x07\x01\x02\x03"))
	f.Add([]byte("\x01\x19\x02\x03\x15\x01\x00\x16\x02\x04\x07\x05\x00\x04"))
	f.Add([]byte("\x02\x06\x03\x04\x15\x02\x01\x17\x03\x05\x13\x06\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, inRAM := synthExecProgram(data)
		if p == nil {
			return
		}
		if err := ir.Verify(p); err != nil {
			t.Fatalf("synthesized program fails Verify: %v", err)
		}
		img, err := layout.New(p, layout.DefaultConfig(), inRAM)
		if err != nil {
			t.Fatalf("layout rejected an encodable synthesis: %v", err)
		}

		fused := New(img, power.STM32F100())
		fused.MaxInstrs = 100_000
		_, fErr := fused.Run()

		slot := New(img, power.STM32F100())
		slot.MaxInstrs = 100_000
		slot.NoFuse = true
		_, sErr := slot.Run()

		switch {
		case (fErr == nil) != (sErr == nil):
			t.Fatalf("fault divergence: fused=%v slot=%v", fErr, sErr)
		case fErr != nil && fErr.Error() != sErr.Error():
			t.Fatalf("fault mismatch:\nfused: %v\nslot:  %v", fErr, sErr)
		}
		compareMachinesFuzz(t, fused, slot)
	})
}

// compareMachinesFuzz is compareMachines without *testing.T helpers that
// only exist on tests (the fuzz target shares the assertion body).
func compareMachinesFuzz(t *testing.T, fused, slot *Machine) {
	f, s := &fused.stats, &slot.stats
	if f.Instructions != s.Instructions || f.Cycles != s.Cycles ||
		f.EnergyNJ != s.EnergyNJ || f.CyclesByMem != s.CyclesByMem ||
		f.ContentionStalls != s.ContentionStalls {
		t.Fatalf("stats divergence:\nfused: %+v\nslot:  %+v", f, s)
	}
	if fused.regs != slot.regs {
		t.Fatalf("register divergence:\nfused: %v\nslot:  %v", fused.regs, slot.regs)
	}
	fb, sb := fused.blockCountsMap(), slot.blockCountsMap()
	if len(fb) != len(sb) {
		t.Fatalf("block count divergence: %v vs %v", fb, sb)
	}
	for k, v := range sb {
		if fb[k] != v {
			t.Fatalf("BlockCounts[%s]: fused %d != slot %d", k, fb[k], v)
		}
	}
}
