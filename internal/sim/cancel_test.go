package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/power"
)

// spinProgram busy-loops forever: the only way out is MaxInstrs or a
// cancelled context.
func spinProgram() *ir.Program {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("spin")
	ir.Build(b).B("spin")
	p.Reindex()
	return p
}

// cancelAfter is an observer that cancels the run's context after n
// charged instructions — a deterministic mid-run cancellation trigger.
type cancelAfter struct {
	n      uint64
	seen   uint64
	cancel context.CancelFunc
}

func (c *cancelAfter) Event(*Event) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	m := New(mustImage(t, spinProgram(), nil), power.STM32F100())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.RunContext(ctx)
	if err == nil {
		t.Fatal("pre-cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not match context.Canceled", err)
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %T, want *Fault", err)
	}
	// The poll fires at instruction 0, before anything executes, and the
	// fault names the entry instruction it landed on.
	if f.Block != "spin" || f.Func != "main" {
		t.Fatalf("fault located at block %q func %q, want spin/main", f.Block, f.Func)
	}
	if m.stats.Instructions != 0 {
		t.Fatalf("%d instructions executed under a pre-cancelled context", m.stats.Instructions)
	}
}

func TestRunContextMidRunCancel(t *testing.T) {
	m := New(mustImage(t, spinProgram(), nil), power.STM32F100())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const after = 5000
	m.Attach(&cancelAfter{n: after, cancel: cancel})
	_, err := m.RunContext(ctx)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not match context.Canceled", err)
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %T, want *Fault", err)
	}
	if f.Block != "spin" || f.Func != "main" {
		t.Fatalf("fault located at block %q func %q, want spin/main", f.Block, f.Func)
	}
	if !strings.Contains(f.Error(), "run cancelled") {
		t.Fatalf("fault message %q does not say the run was cancelled", f.Error())
	}
	// The poll runs once every cancelCheckMask+1 instructions, so the run
	// must stop within one check window of the cancellation point.
	got := m.stats.Instructions
	if got < after {
		t.Fatalf("stopped after %d instructions, before the cancellation at %d", got, after)
	}
	if got > after+cancelCheckMask+1 {
		t.Fatalf("stopped after %d instructions; cancellation at %d should stop within %d",
			got, after, cancelCheckMask+1)
	}
}

// TestRunContextBackgroundIdentical: threading a background context must
// not change any statistic relative to Run.
func TestRunContextBackgroundIdentical(t *testing.T) {
	img := mustImage(t, ir.Figure2Program(), nil)
	m := New(img, power.STM32F100())
	plain, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	viaCtx, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Instructions != viaCtx.Instructions || plain.Cycles != viaCtx.Cycles ||
		plain.EnergyNJ != viaCtx.EnergyNJ || plain.ContentionStalls != viaCtx.ContentionStalls {
		t.Fatalf("RunContext(Background) diverged from Run: %+v vs %+v", viaCtx, plain)
	}
}

// TestRunContextDeadline: an expired deadline surfaces as a fault matching
// context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	m := New(mustImage(t, spinProgram(), nil), power.STM32F100())
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	_, err := m.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, does not match context.DeadlineExceeded", err)
	}
}
