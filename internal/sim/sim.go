// Package sim is this reproduction's stand-in for the paper's
// power-instrumented Cortex-M3 board: a cycle-level interpreter for the
// laid-out program image that charges every cycle the power of the memory
// it fetches from (internal/power), models the single-port RAM contention
// stall on loads executed from RAM (the paper's Lb effect), pays the
// pipeline-refill penalty on taken branches, and counts per-basic-block
// execution frequencies (the profiler behind the "w/Frequency" results in
// Figure 5).
package sim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/power"
)

// exitLR is the magic return address planted in LR before calling the
// entry function; returning to it ends the simulation (the hardware
// equivalent is EXC_RETURN).
const exitLR = 0xFFFFFFFE

// Event describes one executed (and charged) instruction for an attached
// Observer. The same Event value is reused across calls — observers must
// copy out anything they keep.
type Event struct {
	Block *layout.Placed // the placed basic block being executed
	Index int            // instruction index within the block
	PC    uint32

	Class    isa.Class
	FetchMem power.Memory // memory the fetch hit (block residence)
	DataMem  power.Memory // memory a data access hit (power.None if none)

	// Cycles is the total cycle cost charged, including Stall.
	Cycles uint64
	// Stall is the RAM-port contention stall included in Cycles (the
	// paper's Lb effect).
	Stall uint64
	// EnergyNJ is the energy charged for this instruction.
	EnergyNJ float64
	// Taken is true when the instruction redirected control flow (taken
	// branch, call, return, pop-to-pc, ldr pc,=...), i.e. it paid the
	// pipeline-refill penalty.
	Taken bool
	// BlockEntry is true on the first charged instruction of a block
	// activation — exactly when Stats.BlockCounts is incremented.
	BlockEntry bool
}

// Observer receives one Event per executed instruction. A nil observer
// (the default) keeps the simulator on its fast path; Run's inner loop
// only pays a nil check per instruction.
type Observer interface {
	Event(*Event)
}

// Attach installs an observer (nil detaches). Attach before Run; events
// are emitted for every charged instruction, including failed-predication
// issue cycles.
func (m *Machine) Attach(o Observer) { m.obs = o }

// Machine is one simulated SoC instance.
type Machine struct {
	Img     *layout.Image
	Profile *power.Profile

	// MaxInstrs aborts runaway programs (0 = default 500 million).
	MaxInstrs uint64

	regs  [isa.NumRegs]uint32
	n, z  bool
	c, v  bool
	flash []byte
	ram   []byte

	obs   Observer
	ev    Event // reused event buffer when obs != nil
	stats Stats
}

// Stats aggregates one run.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	// EnergyNJ is total energy in nanojoules.
	EnergyNJ float64
	// CyclesByMem[mem][class] splits cycles by fetch memory and class.
	CyclesByMem [2][isa.NumClasses]uint64
	// ContentionStalls counts RAM-port load stalls (the Lb effect).
	ContentionStalls uint64
	// BlockCounts is the per-basic-block execution profile.
	BlockCounts map[string]uint64
}

// TimeSeconds converts the cycle count to wall time at the profile clock.
func (s *Stats) timeSeconds(clockHz float64) float64 {
	return float64(s.Cycles) / clockHz
}

// EnergyMJ returns total energy in millijoules.
func (s *Stats) EnergyMJ() float64 { return s.EnergyNJ * 1e-6 }

// Fault is a simulated hardware fault (bad memory access, bad jump, ...).
// Block and Func locate the faulting instruction in the program ("" when
// the PC resolves to no block, e.g. a wild jump).
type Fault struct {
	PC     uint32
	Block  string
	Func   string
	Reason string
}

func (f *Fault) Error() string {
	if f.Block != "" {
		return fmt.Sprintf("sim: fault at pc=%#x (block %s, func %s): %s",
			f.PC, f.Block, f.Func, f.Reason)
	}
	return fmt.Sprintf("sim: fault at pc=%#x: %s", f.PC, f.Reason)
}

// locate fills a fault's Block/Func from an instruction reference.
func (f *Fault) locate(ref layout.InstrRef) {
	if f.Block != "" || ref.Placed == nil {
		return
	}
	f.Block = ref.Placed.Block.Label
	if fn := ref.Placed.Block.Func; fn != nil {
		f.Func = fn.Name
	}
}

// New prepares a machine for the image: zeroed registers, data sections
// initialized (the startup runtime's flash→RAM copy of .data and .ramcode
// has happened), SP at the top of RAM.
func New(img *layout.Image, prof *power.Profile) *Machine {
	m := &Machine{
		Img:     img,
		Profile: prof,
		flash:   make([]byte, img.Config.FlashSize),
		ram:     make([]byte, img.Config.RAMSize),
	}
	m.reset()
	return m
}

func (m *Machine) reset() {
	for i := range m.regs {
		m.regs[i] = 0
	}
	m.n, m.z, m.c, m.v = false, false, false, false
	for i := range m.flash {
		m.flash[i] = 0
	}
	for i := range m.ram {
		m.ram[i] = 0
	}
	m.stats = Stats{BlockCounts: make(map[string]uint64)}

	// Initialize globals.
	for _, g := range m.Img.Prog.Globals {
		base := m.Img.Symbols[g.Name]
		for i, by := range g.Init {
			m.pokeByte(base+uint32(i), by)
		}
	}
	// Materialize literal pool words so raw memory is consistent.
	for _, pl := range m.Img.Blocks {
		for i := range pl.Block.Instrs {
			in := &pl.Block.Instrs[i]
			if in.Op != isa.LDRLIT || pl.LitAddrs[i] == 0 {
				continue
			}
			var w uint32
			if in.Sym != "" {
				w = m.Img.Symbols[in.Sym]
			} else {
				w = uint32(in.Imm)
			}
			m.pokeWord(pl.LitAddrs[i], w)
		}
	}
	m.regs[isa.SP] = m.Img.StackTop()
	m.regs[isa.LR] = exitLR
}

// pokeByte writes initialization data, ignoring faults (validated later).
func (m *Machine) pokeByte(addr uint32, b byte) {
	c := m.Img.Config
	switch {
	case addr >= c.FlashBase && addr < c.FlashBase+uint32(c.FlashSize):
		m.flash[addr-c.FlashBase] = b
	case addr >= c.RAMBase && addr < c.RAMBase+uint32(c.RAMSize):
		m.ram[addr-c.RAMBase] = b
	}
}

func (m *Machine) pokeWord(addr uint32, w uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], w)
	for i, b := range buf {
		m.pokeByte(addr+uint32(i), b)
	}
}

// Reg returns a register value (for tests and result extraction).
func (m *Machine) Reg(r isa.Reg) uint32 { return m.regs[r] }

// SetReg sets a register before a run (argument passing in tests).
func (m *Machine) SetReg(r isa.Reg, v uint32) { m.regs[r] = v }

// ReadWord reads a 32-bit little-endian word from simulated memory.
func (m *Machine) ReadWord(addr uint32) (uint32, error) {
	var w uint32
	for i := uint32(0); i < 4; i++ {
		b, _, err := m.loadByte(addr + i)
		if err != nil {
			return 0, err
		}
		w |= uint32(b) << (8 * i)
	}
	return w, nil
}

// ReadGlobal reads the first word of a named global.
func (m *Machine) ReadGlobal(name string) (uint32, error) {
	a, ok := m.Img.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("sim: unknown global %q", name)
	}
	return m.ReadWord(a)
}

// ReadGlobalBytes copies n bytes of a named global.
func (m *Machine) ReadGlobalBytes(name string, n int) ([]byte, error) {
	a, ok := m.Img.Symbols[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown global %q", name)
	}
	out := make([]byte, n)
	for i := range out {
		b, _, err := m.loadByte(a + uint32(i))
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

func (m *Machine) loadByte(addr uint32) (byte, power.Memory, error) {
	c := m.Img.Config
	switch {
	case addr >= c.FlashBase && addr < c.FlashBase+uint32(c.FlashSize):
		return m.flash[addr-c.FlashBase], power.Flash, nil
	case addr >= c.RAMBase && addr < c.RAMBase+uint32(c.RAMSize):
		return m.ram[addr-c.RAMBase], power.RAM, nil
	}
	return 0, power.None, fmt.Errorf("load outside memory at %#x", addr)
}

func (m *Machine) storeByte(addr uint32, b byte) (power.Memory, error) {
	c := m.Img.Config
	switch {
	case addr >= c.RAMBase && addr < c.RAMBase+uint32(c.RAMSize):
		m.ram[addr-c.RAMBase] = b
		return power.RAM, nil
	case addr >= c.FlashBase && addr < c.FlashBase+uint32(c.FlashSize):
		return power.None, fmt.Errorf("store to flash at %#x", addr)
	}
	return power.None, fmt.Errorf("store outside memory at %#x", addr)
}

func (m *Machine) load(addr uint32, size int, signed bool) (uint32, power.Memory, error) {
	var v uint32
	var mem power.Memory
	for i := 0; i < size; i++ {
		b, mm, err := m.loadByte(addr + uint32(i))
		if err != nil {
			return 0, power.None, err
		}
		v |= uint32(b) << (8 * i)
		mem = mm
	}
	if signed {
		shift := uint(32 - 8*size)
		v = uint32(int32(v<<shift) >> shift)
	}
	return v, mem, nil
}

func (m *Machine) store(addr uint32, v uint32, size int) (power.Memory, error) {
	var mem power.Memory
	for i := 0; i < size; i++ {
		mm, err := m.storeByte(addr+uint32(i), byte(v>>(8*i)))
		if err != nil {
			return power.None, err
		}
		mem = mm
	}
	return mem, nil
}

// Reset restores the machine to its power-on state (registers, memory,
// statistics), re-running the startup data initialization. New returns an
// already-reset machine; call Reset only to reuse one across runs.
func (m *Machine) Reset() { m.reset() }

// Run executes the program from its entry function until it returns, and
// returns the collected statistics. The machine must be freshly created or
// Reset; register values planted with SetReg are preserved.
func (m *Machine) Run() (*Stats, error) {
	entry, ok := m.Img.Symbols[m.Img.Prog.Entry]
	if !ok {
		return nil, fmt.Errorf("sim: no entry symbol %q", m.Img.Prog.Entry)
	}
	if err := m.runFrom(entry); err != nil {
		return nil, err
	}
	st := m.stats
	return &st, nil
}

// TimeSeconds converts collected cycles to seconds at this profile's clock.
func (m *Machine) TimeSeconds(s *Stats) float64 { return s.timeSeconds(m.Profile.ClockHz) }

func (m *Machine) runFrom(entry uint32) error {
	maxInstrs := m.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = 500_000_000
	}
	pc := entry
	var last layout.InstrRef // previous instruction, for wild-jump faults
	for {
		if pc == exitLR {
			return nil
		}
		ref, ok := m.Img.InstrAt(pc)
		if !ok {
			f := &Fault{PC: pc, Reason: "jump to non-instruction address"}
			f.locate(last) // blame the transferring block
			return f
		}
		if m.stats.Instructions >= maxInstrs {
			f := &Fault{PC: pc, Reason: fmt.Sprintf("instruction limit %d exceeded", maxInstrs)}
			f.locate(ref)
			return f
		}
		if ref.Index == 0 {
			m.stats.BlockCounts[ref.Placed.Block.Label]++
		}
		next, err := m.step(ref, pc)
		if err != nil {
			if f, ok := err.(*Fault); ok {
				f.locate(ref)
			}
			return err
		}
		last = ref
		pc = next
	}
}

// step executes one instruction, charges cycles and energy, and returns
// the next PC.
func (m *Machine) step(ref layout.InstrRef, pc uint32) (uint32, error) {
	pl := ref.Placed
	in := &pl.Block.Instrs[ref.Index]
	fetchMem := power.Flash
	if pl.InRAM {
		fetchMem = power.RAM
	}
	seqNext := pc + uint32(pl.InstrSize(ref.Index))

	// stall and taken are set before charging so the observer event can
	// attribute contention stalls and pipeline-refill penalties.
	stall, taken := 0, false
	charge := func(cycles int, dataMem power.Memory) {
		cl := isa.ClassOf(in.Op)
		m.stats.Instructions++
		m.stats.Cycles += uint64(cycles)
		m.stats.CyclesByMem[fetchMem][cl] += uint64(cycles)
		mw := m.Profile.InstrPower(fetchMem, cl, dataMem)
		e := float64(cycles) * m.Profile.EnergyPerCycle(mw)
		m.stats.EnergyNJ += e
		if m.obs != nil {
			m.ev = Event{
				Block: pl, Index: ref.Index, PC: pc,
				Class: cl, FetchMem: fetchMem, DataMem: dataMem,
				Cycles: uint64(cycles), Stall: uint64(stall),
				EnergyNJ: e, Taken: taken, BlockEntry: ref.Index == 0,
			}
			m.obs.Event(&m.ev)
		}
	}

	// Predication: a failed condition costs one issue cycle, no effects.
	// (Conditional branches handle their own taken/not-taken charging.)
	if in.Cond != isa.AL && in.Op != isa.B {
		if !in.Cond.Holds(m.n, m.z, m.c, m.v) {
			charge(isa.CyclesNotTaken(in), power.None)
			return seqNext, nil
		}
	}

	// chargeLoad adds the RAM-contention stall when both the fetch and
	// the data access hit RAM (single RAM port; paper §4, Eq. 6).
	chargeLoad := func(dataMem power.Memory, baseCycles int) {
		cyc := baseCycles
		if fetchMem == power.RAM && dataMem == power.RAM {
			cyc += isa.RAMContentionStall
			stall = isa.RAMContentionStall
			m.stats.ContentionStalls++
		}
		charge(cyc, dataMem)
	}

	switch in.Op {
	case isa.NOP, isa.IT:
		charge(isa.Cycles(in), power.None)
		return seqNext, nil

	case isa.MOV, isa.MVN, isa.SXTB, isa.SXTH, isa.UXTB, isa.UXTH, isa.CLZ:
		src := m.operand2(in)
		var v uint32
		switch in.Op {
		case isa.MOV:
			v = src
		case isa.MVN:
			v = ^src
		case isa.SXTB:
			v = uint32(int32(int8(src)))
		case isa.SXTH:
			v = uint32(int32(int16(src)))
		case isa.UXTB:
			v = src & 0xFF
		case isa.UXTH:
			v = src & 0xFFFF
		case isa.CLZ:
			v = clz(src)
		}
		m.regs[in.Rd] = v
		if in.SetFlags {
			m.setNZ(v)
		}
		charge(isa.Cycles(in), power.None)
		return seqNext, nil

	case isa.ADD, isa.ADC, isa.SUB, isa.SBC, isa.RSB, isa.MUL, isa.MLA,
		isa.SDIV, isa.UDIV, isa.AND, isa.ORR, isa.EOR, isa.BIC,
		isa.LSL, isa.LSR, isa.ASR, isa.ROR:
		a := m.regs[in.Rn]
		b := m.operand2(in)
		var v uint32
		switch in.Op {
		case isa.ADD:
			v = a + b
			if in.SetFlags {
				m.setAddFlags(a, b, 0)
			}
		case isa.ADC:
			carry := uint32(0)
			if m.c {
				carry = 1
			}
			v = a + b + carry
			if in.SetFlags {
				m.setAddFlags(a, b, carry)
			}
		case isa.SUB:
			v = a - b
			if in.SetFlags {
				m.setSubFlags(a, b)
			}
		case isa.SBC:
			borrow := uint32(1)
			if m.c {
				borrow = 0
			}
			v = a - b - borrow
		case isa.RSB:
			v = b - a
			if in.SetFlags {
				m.setSubFlags(b, a)
			}
		case isa.MUL:
			v = a * b
		case isa.MLA:
			v = m.regs[in.Rd] + a*b
		case isa.SDIV:
			if b == 0 {
				v = 0 // ARM defines divide-by-zero result as 0
			} else if int32(a) == -1<<31 && int32(b) == -1 {
				v = a // overflow case: result is the dividend
			} else {
				v = uint32(int32(a) / int32(b))
			}
		case isa.UDIV:
			if b == 0 {
				v = 0
			} else {
				v = a / b
			}
		case isa.AND:
			v = a & b
		case isa.ORR:
			v = a | b
		case isa.EOR:
			v = a ^ b
		case isa.BIC:
			v = a &^ b
		case isa.LSL:
			v = shiftL(a, b)
		case isa.LSR:
			v = shiftR(a, b)
		case isa.ASR:
			v = shiftAR(a, b)
		case isa.ROR:
			v = rotR(a, b)
		}
		m.regs[in.Rd] = v
		if in.SetFlags {
			switch in.Op {
			case isa.ADD, isa.ADC, isa.SUB, isa.RSB:
				// full flags already set above (including C and V)
			default:
				m.setNZ(v)
			}
		}
		charge(isa.Cycles(in), power.None)
		return seqNext, nil

	case isa.CMP:
		m.setSubFlags(m.regs[in.Rn], m.operand2(in))
		charge(isa.Cycles(in), power.None)
		return seqNext, nil
	case isa.CMN:
		m.setAddFlags(m.regs[in.Rn], m.operand2(in), 0)
		charge(isa.Cycles(in), power.None)
		return seqNext, nil
	case isa.TST:
		m.setNZ(m.regs[in.Rn] & m.operand2(in))
		charge(isa.Cycles(in), power.None)
		return seqNext, nil

	case isa.LDR, isa.LDRB, isa.LDRH, isa.LDRSB, isa.LDRSH:
		addr := m.effAddr(in)
		size, signed := memWidth(in.Op)
		v, dataMem, err := m.load(addr, size, signed)
		if err != nil {
			return 0, &Fault{PC: pc, Reason: err.Error()}
		}
		m.regs[in.Rd] = v
		chargeLoad(dataMem, isa.Cycles(in))
		return seqNext, nil

	case isa.STR, isa.STRB, isa.STRH:
		addr := m.effAddr(in)
		size, _ := memWidth(in.Op)
		dataMem, err := m.store(addr, m.regs[in.Rd], size)
		if err != nil {
			return 0, &Fault{PC: pc, Reason: err.Error()}
		}
		charge(isa.Cycles(in), dataMem)
		return seqNext, nil

	case isa.LDRLIT:
		litAddr := pl.LitAddrs[ref.Index]
		dataMem := fetchMem // the pool travels with its block
		if litAddr != 0 {
			if mm, ok := m.Img.MemoryOf(litAddr); ok {
				dataMem = mm
			}
		}
		var v uint32
		if in.Sym != "" {
			sv, ok := m.Img.Symbols[in.Sym]
			if !ok {
				return 0, &Fault{PC: pc, Reason: fmt.Sprintf("unresolved literal %q", in.Sym)}
			}
			v = sv
		} else {
			v = uint32(in.Imm)
		}
		if in.Rd == isa.PC {
			taken = true
			chargeLoad(dataMem, isa.Cycles(in))
			return v, nil
		}
		m.regs[in.Rd] = v
		chargeLoad(dataMem, isa.Cycles(in))
		return seqNext, nil

	case isa.ADR:
		sv, ok := m.Img.Symbols[in.Sym]
		if !ok {
			return 0, &Fault{PC: pc, Reason: fmt.Sprintf("unresolved adr %q", in.Sym)}
		}
		m.regs[in.Rd] = sv
		charge(isa.Cycles(in), power.None)
		return seqNext, nil

	case isa.PUSH:
		count := popCount(in.RegList)
		sp := m.regs[isa.SP] - 4*uint32(count)
		a := sp
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if in.RegList&(1<<r) != 0 {
				if _, err := m.store(a, m.regs[r], 4); err != nil {
					return 0, &Fault{PC: pc, Reason: err.Error()}
				}
				a += 4
			}
		}
		m.regs[isa.SP] = sp
		charge(isa.Cycles(in), power.RAM)
		return seqNext, nil

	case isa.POP:
		a := m.regs[isa.SP]
		var newPC uint32
		gotPC := false
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if in.RegList&(1<<r) != 0 {
				v, _, err := m.load(a, 4, false)
				if err != nil {
					return 0, &Fault{PC: pc, Reason: err.Error()}
				}
				if r == isa.PC {
					newPC = v &^ 1
					gotPC = true
				} else {
					m.regs[r] = v
				}
				a += 4
			}
		}
		m.regs[isa.SP] = a
		taken = gotPC
		chargeLoad(power.RAM, isa.Cycles(in))
		if gotPC {
			return newPC, nil
		}
		return seqNext, nil

	case isa.B:
		if in.Cond == isa.AL || in.Cond.Holds(m.n, m.z, m.c, m.v) {
			taken = true
			charge(isa.Cycles(in), power.None)
			return m.labelAddr(pc, in.Sym)
		}
		charge(isa.CyclesNotTaken(in), power.None)
		return seqNext, nil

	case isa.CBZ, isa.CBNZ:
		if (m.regs[in.Rn] == 0) == (in.Op == isa.CBZ) {
			taken = true
			charge(isa.Cycles(in), power.None)
			return m.labelAddr(pc, in.Sym)
		}
		charge(isa.CyclesNotTaken(in), power.None)
		return seqNext, nil

	case isa.BL:
		m.regs[isa.LR] = seqNext
		taken = true
		charge(isa.Cycles(in), power.None)
		return m.labelAddr(pc, in.Sym)

	case isa.BLX:
		m.regs[isa.LR] = seqNext
		taken = true
		charge(isa.Cycles(in), power.None)
		return m.regs[in.Rm] &^ 1, nil

	case isa.BX:
		taken = true
		charge(isa.Cycles(in), power.None)
		return m.regs[in.Rm] &^ 1, nil
	}
	return 0, &Fault{PC: pc, Reason: fmt.Sprintf("unimplemented op %v", in.Op)}
}

func (m *Machine) labelAddr(pc uint32, sym string) (uint32, error) {
	a, ok := m.Img.Symbols[sym]
	if !ok {
		return 0, &Fault{PC: pc, Reason: fmt.Sprintf("branch to unresolved %q", sym)}
	}
	return a, nil
}

// operand2 evaluates the flexible second operand (register or immediate,
// with optional shift).
func (m *Machine) operand2(in *isa.Instr) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	v := m.regs[in.Rm]
	if in.Shift != 0 {
		v <<= in.Shift
	}
	return v
}

// effAddr computes a load/store effective address.
func (m *Machine) effAddr(in *isa.Instr) uint32 {
	base := m.regs[in.Rn]
	switch in.Mode {
	case isa.AddrOffset:
		return base + uint32(in.Imm)
	case isa.AddrReg:
		return base + m.regs[in.Rm]
	case isa.AddrRegLSL:
		return base + m.regs[in.Rm]<<in.Shift
	}
	return base
}

func (m *Machine) setNZ(v uint32) {
	m.n = int32(v) < 0
	m.z = v == 0
}

func (m *Machine) setAddFlags(a, b, carry uint32) {
	r64 := uint64(a) + uint64(b) + uint64(carry)
	r := uint32(r64)
	m.n = int32(r) < 0
	m.z = r == 0
	m.c = r64 > 0xFFFFFFFF
	m.v = (a^r)&(b^r)&0x80000000 != 0
}

func (m *Machine) setSubFlags(a, b uint32) {
	r := a - b
	m.n = int32(r) < 0
	m.z = r == 0
	m.c = a >= b // no borrow
	m.v = (a^b)&(a^r)&0x80000000 != 0
}

func memWidth(op isa.Op) (size int, signed bool) {
	switch op {
	case isa.LDR, isa.STR:
		return 4, false
	case isa.LDRB, isa.STRB:
		return 1, false
	case isa.LDRH, isa.STRH:
		return 2, false
	case isa.LDRSB:
		return 1, true
	case isa.LDRSH:
		return 2, true
	}
	return 4, false
}

func popCount(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func clz(x uint32) uint32 {
	n := uint32(0)
	for i := 31; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			break
		}
		n++
	}
	return n
}

func shiftL(a, b uint32) uint32 {
	s := b & 0xFF
	if s >= 32 {
		return 0
	}
	return a << s
}

func shiftR(a, b uint32) uint32 {
	s := b & 0xFF
	if s >= 32 {
		return 0
	}
	return a >> s
}

func shiftAR(a, b uint32) uint32 {
	s := b & 0xFF
	if s >= 32 {
		s = 31
	}
	return uint32(int32(a) >> s)
}

func rotR(a, b uint32) uint32 {
	s := b & 31
	if s == 0 {
		return a
	}
	return a>>s | a<<(32-s)
}

// AveragePowerMW returns the run's average power in milliwatts:
// energy / time.
func (m *Machine) AveragePowerMW(s *Stats) float64 {
	t := m.TimeSeconds(s)
	if t == 0 {
		return 0
	}
	return s.EnergyMJ() / t // mJ per second = mW
}
