// Package sim is this reproduction's stand-in for the paper's
// power-instrumented Cortex-M3 board: a cycle-level interpreter for the
// laid-out program image that charges every cycle the power of the memory
// it fetches from (internal/power), models the single-port RAM contention
// stall on loads executed from RAM (the paper's Lb effect), pays the
// pipeline-refill penalty on taken branches, and counts per-basic-block
// execution frequencies (the profiler behind the "w/Frequency" results in
// Figure 5).
//
// Execution runs over a predecoded instruction table (see predecode.go):
// the image is compiled once per SetImage into dense per-memory slot
// arrays, and the run loop is a pure array-indexed dispatch with no map
// lookups, closures or symbol resolution per instruction.
package sim

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/power"
)

// exitLR is the magic return address planted in LR before calling the
// entry function; returning to it ends the simulation (the hardware
// equivalent is EXC_RETURN).
const exitLR = 0xFFFFFFFE

// Event describes one executed (and charged) instruction for an attached
// Observer. The same Event value is reused across calls — observers must
// copy out anything they keep.
type Event struct {
	Block *layout.Placed // the placed basic block being executed
	Index int            // instruction index within the block
	PC    uint32

	Class    isa.Class
	FetchMem power.Memory // memory the fetch hit (block residence)
	DataMem  power.Memory // memory a data access hit (power.None if none)

	// Cycles is the total cycle cost charged, including Stall.
	Cycles uint64
	// Stall is the RAM-port contention stall included in Cycles (the
	// paper's Lb effect).
	Stall uint64
	// EnergyNJ is the energy charged for this instruction.
	EnergyNJ float64
	// Taken is true when the instruction redirected control flow (taken
	// branch, call, return, pop-to-pc, ldr pc,=...), i.e. it paid the
	// pipeline-refill penalty.
	Taken bool
	// BlockEntry is true on the first charged instruction of a block
	// activation — exactly when Stats.BlockCounts is incremented.
	BlockEntry bool
}

// Observer receives one Event per executed instruction. A nil observer
// (the default) keeps the simulator on its fast path; Run's inner loop
// only pays a nil check per instruction.
type Observer interface {
	Event(*Event)
}

// Attach installs an observer (nil detaches). Attach before Run; events
// are emitted for every charged instruction, including failed-predication
// issue cycles.
func (m *Machine) Attach(o Observer) { m.obs = o }

// Machine is one simulated SoC instance.
type Machine struct {
	Img     *layout.Image
	Profile *power.Profile

	// MaxInstrs aborts runaway programs (0 = default 500 million).
	MaxInstrs uint64

	// NoFuse forces slot-by-slot dispatch even where superblock
	// descriptors exist (superblock.go) — the differential-testing knob
	// behind beebsbench -nofuse. An attached observer bypasses fusion
	// regardless, since the event stream is per-instruction.
	NoFuse bool

	regs  [isa.NumRegs]uint32
	n, z  bool
	c, v  bool
	flash []byte
	ram   []byte

	// Memory map bounds, cached flat so load/store need no pointer chase.
	flashBase, ramBase uint32
	flashSize, ramSize uint32

	eng engine // predecoded instruction tables (predecode.go)

	obs   Observer
	ev    Event // reused event buffer when obs != nil
	stats Stats

	// stopCycles, when nonzero, pauses runFrom at the first instruction
	// boundary whose executed-cycle count has reached it — the segment
	// mechanism behind RunIntermittent (intermittent.go). pausePC holds
	// the resume address of a paused run. Zero (the steady state outside
	// intermittent runs) means no stop.
	stopCycles uint64
	pausePC    uint32

	// polls counts cancellation-poll selects this run; the regression
	// test beside TestSimCancellationOverhead pigeonholes it against the
	// instruction count to prove no fused run stretched the poll
	// interval past cancelCheckMask+1 dispatched slots.
	polls uint64
	// fusedInstrs counts instructions retired through superblocks this
	// run (fusion-rate reporting; Stats stays byte-identical either way).
	fusedInstrs uint64
}

// Stats aggregates one run.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	// EnergyNJ is total energy in nanojoules.
	EnergyNJ float64
	// CyclesByMem[mem][class] splits cycles by fetch memory and class.
	CyclesByMem [2][isa.NumClasses]uint64
	// ContentionStalls counts RAM-port load stalls (the Lb effect).
	ContentionStalls uint64
	// BlockCounts is the per-basic-block execution profile. During a run
	// the counts accumulate in a dense array indexed by block ID; this
	// map is materialized when the run completes.
	BlockCounts map[string]uint64
}

// TimeSeconds converts the cycle count to wall time at the profile clock.
func (s *Stats) timeSeconds(clockHz float64) float64 {
	return float64(s.Cycles) / clockHz
}

// EnergyMJ returns total energy in millijoules.
func (s *Stats) EnergyMJ() float64 { return s.EnergyNJ * 1e-6 }

// Fault is a simulated hardware fault (bad memory access, bad jump, ...)
// or an externally forced stop. Block and Func locate the faulting
// instruction in the program ("" when the PC resolves to no block, e.g. a
// wild jump). Cause, when set, is the underlying error — a cancelled run
// carries its context error here, so errors.Is(f, context.Canceled) works.
type Fault struct {
	PC     uint32
	Block  string
	Func   string
	Reason string
	Cause  error
}

// Unwrap exposes the underlying cause (nil for plain hardware faults).
func (f *Fault) Unwrap() error { return f.Cause }

func (f *Fault) Error() string {
	if f.Block != "" {
		return fmt.Sprintf("sim: fault at pc=%#x (block %s, func %s): %s",
			f.PC, f.Block, f.Func, f.Reason)
	}
	return fmt.Sprintf("sim: fault at pc=%#x: %s", f.PC, f.Reason)
}

// locate fills a fault's Block/Func from an instruction reference.
func (f *Fault) locate(ref layout.InstrRef) {
	if f.Block != "" || ref.Placed == nil {
		return
	}
	f.Block = ref.Placed.Block.Label
	if fn := ref.Placed.Block.Func; fn != nil {
		f.Func = fn.Name
	}
}

// New prepares a machine for the image: zeroed registers, data sections
// initialized (the startup runtime's flash→RAM copy of .data and .ramcode
// has happened), SP at the top of RAM.
func New(img *layout.Image, prof *power.Profile) *Machine {
	m := &Machine{Profile: prof}
	m.SetImage(img)
	return m
}

// SetImage retargets the machine to an image, reusing the existing
// flash/RAM arrays and predecode-table storage when capacities allow, and
// resets to power-on state. Passing the image the machine already runs
// skips the predecode rebuild (the table depends only on image and
// profile). This is how core.Session reuses one machine across the
// baseline and optimized runs instead of allocating per run.
func (m *Machine) SetImage(img *layout.Image) {
	rebuild := img != m.Img
	m.Img = img
	c := img.Config
	m.flashBase, m.flashSize = c.FlashBase, uint32(c.FlashSize)
	m.ramBase, m.ramSize = c.RAMBase, uint32(c.RAMSize)
	m.flash = resizeBytes(m.flash, c.FlashSize)
	m.ram = resizeBytes(m.ram, c.RAMSize)
	if rebuild {
		m.predecode()
	}
	m.reset()
}

func resizeBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

func (m *Machine) reset() {
	for i := range m.regs {
		m.regs[i] = 0
	}
	m.n, m.z, m.c, m.v = false, false, false, false
	clear(m.flash)
	clear(m.ram)
	clear(m.eng.blockCounts)
	m.stats = Stats{}
	m.polls, m.fusedInstrs = 0, 0

	// Initialize globals.
	for _, g := range m.Img.Prog.Globals {
		base := m.Img.Symbols[g.Name]
		for i, by := range g.Init {
			m.pokeByte(base+uint32(i), by)
		}
	}
	// Materialize literal pool words so raw memory is consistent.
	for _, pl := range m.Img.Blocks {
		for i := range pl.Block.Instrs {
			in := &pl.Block.Instrs[i]
			if in.Op != isa.LDRLIT || pl.LitAddrs[i] == 0 {
				continue
			}
			var w uint32
			if in.Sym != "" {
				w = m.Img.Symbols[in.Sym]
			} else {
				w = uint32(in.Imm)
			}
			m.pokeWord(pl.LitAddrs[i], w)
		}
	}
	m.regs[isa.SP] = m.Img.StackTop()
	m.regs[isa.LR] = exitLR
}

// pokeByte writes initialization data, ignoring faults (validated later).
func (m *Machine) pokeByte(addr uint32, b byte) {
	switch {
	case addr-m.flashBase < m.flashSize:
		m.flash[addr-m.flashBase] = b
	case addr-m.ramBase < m.ramSize:
		m.ram[addr-m.ramBase] = b
	}
}

func (m *Machine) pokeWord(addr uint32, w uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], w)
	for i, b := range buf {
		m.pokeByte(addr+uint32(i), b)
	}
}

// FusedInstructions reports how many of the current run's instructions
// retired through superblock descriptors — fusion-rate reporting only;
// Stats is byte-identical with fusion on or off.
func (m *Machine) FusedInstructions() uint64 { return m.fusedInstrs }

// Reg returns a register value (for tests and result extraction).
func (m *Machine) Reg(r isa.Reg) uint32 { return m.regs[r] }

// SetReg sets a register before a run (argument passing in tests).
func (m *Machine) SetReg(r isa.Reg, v uint32) { m.regs[r] = v }

// ReadWord reads a 32-bit little-endian word from simulated memory.
func (m *Machine) ReadWord(addr uint32) (uint32, error) {
	var w uint32
	for i := uint32(0); i < 4; i++ {
		b, _, err := m.loadByte(addr + i)
		if err != nil {
			return 0, err
		}
		w |= uint32(b) << (8 * i)
	}
	return w, nil
}

// ReadGlobal reads the first word of a named global.
func (m *Machine) ReadGlobal(name string) (uint32, error) {
	a, ok := m.Img.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("sim: unknown global %q", name)
	}
	return m.ReadWord(a)
}

// ReadGlobalBytes copies n bytes of a named global.
func (m *Machine) ReadGlobalBytes(name string, n int) ([]byte, error) {
	a, ok := m.Img.Symbols[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown global %q", name)
	}
	out := make([]byte, n)
	for i := range out {
		b, _, err := m.loadByte(a + uint32(i))
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

func (m *Machine) loadByte(addr uint32) (byte, power.Memory, error) {
	switch {
	case addr-m.flashBase < m.flashSize:
		return m.flash[addr-m.flashBase], power.Flash, nil
	case addr-m.ramBase < m.ramSize:
		return m.ram[addr-m.ramBase], power.RAM, nil
	}
	return 0, power.None, fmt.Errorf("load outside memory at %#x", addr)
}

// load reads a size-byte little-endian value. The access must lie
// entirely inside one memory — that memory is the attributed power
// domain. An access that starts inside a memory but does not fit (it
// would straddle into the other memory or off the end) faults: real
// hardware would split it across bus ports, and attributing the power of
// only the last byte (the pre-predecode behaviour) mis-charges it.
func (m *Machine) load(addr uint32, size int, signed bool) (uint32, power.Memory, error) {
	var v uint32
	var mem power.Memory
	if d := addr - m.flashBase; uint64(d)+uint64(size) <= uint64(m.flashSize) {
		v, mem = readLE(m.flash[d:], size), power.Flash
	} else if d := addr - m.ramBase; uint64(d)+uint64(size) <= uint64(m.ramSize) {
		v, mem = readLE(m.ram[d:], size), power.RAM
	} else {
		return 0, power.None, m.accessFault("load", addr, size)
	}
	if signed {
		shift := uint(32 - 8*size)
		v = uint32(int32(v<<shift) >> shift)
	}
	return v, mem, nil
}

func (m *Machine) store(addr uint32, v uint32, size int) (power.Memory, error) {
	if d := addr - m.ramBase; uint64(d)+uint64(size) <= uint64(m.ramSize) {
		writeLE(m.ram[d:], v, size)
		return power.RAM, nil
	}
	if addr-m.flashBase < m.flashSize {
		return power.None, fmt.Errorf("store to flash at %#x", addr)
	}
	return power.None, m.accessFault("store", addr, size)
}

// accessFault distinguishes an access that is simply unmapped from one
// that starts inside a memory but does not fit within it.
func (m *Machine) accessFault(kind string, addr uint32, size int) error {
	switch {
	case addr-m.flashBase < m.flashSize:
		return fmt.Errorf("%d-byte %s at %#x straddles the flash boundary", size, kind, addr)
	case addr-m.ramBase < m.ramSize:
		return fmt.Errorf("%d-byte %s at %#x straddles the ram boundary", size, kind, addr)
	}
	return fmt.Errorf("%s outside memory at %#x", kind, addr)
}

func readLE(b []byte, size int) uint32 {
	switch size {
	case 1:
		return uint32(b[0])
	case 2:
		return uint32(binary.LittleEndian.Uint16(b))
	}
	return binary.LittleEndian.Uint32(b)
}

func writeLE(b []byte, v uint32, size int) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	default:
		binary.LittleEndian.PutUint32(b, v)
	}
}

// Reset restores the machine to its power-on state (registers, memory,
// statistics), re-running the startup data initialization. New returns an
// already-reset machine; call Reset only to reuse one across runs. The
// predecode tables are kept — they depend only on the image.
func (m *Machine) Reset() { m.reset() }

// Run executes the program from its entry function until it returns, and
// returns the collected statistics. The machine must be freshly created or
// Reset; register values planted with SetReg are preserved.
func (m *Machine) Run() (*Stats, error) {
	return m.RunContext(context.Background())
}

// cancelCheckMask gates the run loop's cancellation poll: the context is
// checked once every 4096 dispatched instructions, so the fast path pays a
// nil test and mask per instruction and a cancelled run stops within at
// most 4096 further instructions.
const cancelCheckMask = 4095

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// or its deadline expires, the run stops within cancelCheckMask+1 further
// instructions and returns a *Fault whose Cause is the context error
// (errors.Is against context.Canceled / DeadlineExceeded both work) and
// whose Block/Func name the instruction the stop landed on.
func (m *Machine) RunContext(ctx context.Context) (*Stats, error) {
	entry, ok := m.Img.Symbols[m.Img.Prog.Entry]
	if !ok {
		return nil, fmt.Errorf("sim: no entry symbol %q", m.Img.Prog.Entry)
	}
	if err := m.runFrom(ctx, entry); err != nil {
		return nil, err
	}
	st := m.stats
	st.BlockCounts = m.blockCountsMap()
	return &st, nil
}

// blockCountsMap materializes the dense per-block counters into the
// public map form: one entry per block that executed at least once —
// exactly the entries the per-step map increment used to create.
func (m *Machine) blockCountsMap() map[string]uint64 {
	out := make(map[string]uint64)
	for id, n := range m.eng.blockCounts {
		if n != 0 {
			out[m.Img.Blocks[id].Block.Label] = n
		}
	}
	return out
}

// TimeSeconds converts collected cycles to seconds at this profile's clock.
func (m *Machine) TimeSeconds(s *Stats) float64 { return s.timeSeconds(m.Profile.ClockHz) }

func (m *Machine) runFrom(ctx context.Context, entry uint32) error {
	maxInstrs := m.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = 500_000_000
	}
	// stop is the executed-cycle pause mark (intermittent segments);
	// zero means none and degrades to a never-reached sentinel so the
	// hot loop pays one compare either way.
	stop := m.stopCycles
	if stop == 0 {
		stop = ^uint64(0)
	}
	done := ctx.Done() // nil for context.Background: poll compiles out
	counts := m.eng.blockCounts
	super := m.eng.super
	// Fused dispatch needs per-instruction observer events off and the
	// differential knob unset; both are fixed for the whole run.
	fuse := m.obs == nil && !m.NoFuse
	// nextPoll is the instruction count at which the context must be
	// polled again. Re-arming it after every poll (instead of masking
	// the count) keeps the <= cancelCheckMask+1 dispatched-slots
	// guarantee when superblocks retire thousands of instructions at
	// once: a run that would cross the mark polls before dispatching.
	var nextPoll uint64
	pc := entry
	var last *slot // previous instruction, for wild-jump faults
	for {
		if pc == exitLR {
			return nil
		}
		s := m.slotAt(pc)
		if s == nil {
			f := &Fault{PC: pc, Reason: "jump to non-instruction address"}
			if last != nil {
				f.locate(last.ref()) // blame the transferring block
			}
			return f
		}
		if fuse && s.sb >= 0 {
			sb := &super[s.sb]
			// A run that would cross MaxInstrs falls through to slot
			// dispatch so the limit faults on the exact instruction; one
			// whose worst-case cycle bound could reach the stop mark
			// falls through so the boundary instruction slot-dispatches
			// identically in both engines.
			if m.stats.Instructions+sb.n <= maxInstrs && m.stats.Cycles+sb.maxCycles < stop {
				if done != nil && m.stats.Instructions+sb.n > nextPoll {
					m.polls++
					select {
					case <-done:
						cause := context.Cause(ctx)
						f := &Fault{PC: pc, Reason: "run cancelled: " + cause.Error(), Cause: cause}
						f.locate(s.ref())
						return f
					default:
					}
					nextPoll = m.stats.Instructions + cancelCheckMask + 1
				}
				// The chain inside runSuperblock may not cross the nearer
				// of the poll mark and the instruction limit; it returns
				// at the boundary and this loop polls or faults there.
				limit := maxInstrs
				if done != nil && nextPoll < limit {
					limit = nextPoll
				}
				next, tail, f := m.runSuperblock(sb, limit, stop)
				if f != nil {
					return f // located by flushFault
				}
				last = tail
				pc = next
				continue
			}
		}
		// The pause rule: an instruction executes iff its pre-execution
		// cycle count is below the stop mark. It depends only on Stats,
		// so fused and slot dispatch pause at the same boundary.
		if m.stats.Cycles >= stop {
			m.pausePC = pc
			return errStopCycles
		}
		if m.stats.Instructions >= maxInstrs {
			f := &Fault{PC: pc, Reason: fmt.Sprintf("instruction limit %d exceeded", maxInstrs)}
			f.locate(s.ref())
			return f
		}
		if done != nil && m.stats.Instructions >= nextPoll {
			m.polls++
			select {
			case <-done:
				cause := context.Cause(ctx)
				f := &Fault{PC: pc, Reason: "run cancelled: " + cause.Error(), Cause: cause}
				f.locate(s.ref())
				return f
			default:
			}
			nextPoll = m.stats.Instructions + cancelCheckMask + 1
		}
		if s.index == 0 {
			counts[s.blockID]++
		}
		next, err := m.step(s, pc)
		if err != nil {
			if f, ok := err.(*Fault); ok {
				f.locate(s.ref())
			}
			return err
		}
		last = s
		pc = next
	}
}

// chargeState carries the per-step attribution inputs the charge path
// needs beyond the slot: the PC, the contention stall and the
// taken-branch flag. It lives on the step frame — no per-step allocation.
type chargeState struct {
	s     *slot
	pc    uint32
	stall uint64
	taken bool
}

// charge accounts one instruction: cycles, per-memory/class split, energy
// (from the slot's precomputed per-cycle table) and the observer event.
func (m *Machine) charge(cs *chargeState, cycles int, dataMem power.Memory) {
	s := cs.s
	m.stats.Instructions++
	m.stats.Cycles += uint64(cycles)
	m.stats.CyclesByMem[s.fetchMem][s.class] += uint64(cycles)
	e := float64(cycles) * s.epc[dataMem]
	m.stats.EnergyNJ += e
	if m.obs != nil {
		m.ev = Event{
			Block: s.pl, Index: int(s.index), PC: cs.pc,
			Class: s.class, FetchMem: s.fetchMem, DataMem: dataMem,
			Cycles: uint64(cycles), Stall: cs.stall,
			EnergyNJ: e, Taken: cs.taken, BlockEntry: s.index == 0,
		}
		m.obs.Event(&m.ev)
	}
}

// chargeLoad adds the RAM-contention stall when both the fetch and the
// data access hit RAM (single RAM port; paper §4, Eq. 6).
func (m *Machine) chargeLoad(cs *chargeState, dataMem power.Memory, baseCycles int) {
	cyc := baseCycles
	if cs.s.fetchMem == power.RAM && dataMem == power.RAM {
		cyc += isa.RAMContentionStall
		cs.stall = isa.RAMContentionStall
		m.stats.ContentionStalls++
	}
	m.charge(cs, cyc, dataMem)
}

// step executes one predecoded instruction, charges cycles and energy,
// and returns the next PC.
func (m *Machine) step(s *slot, pc uint32) (uint32, error) {
	in := s.in
	seqNext := s.seqNext
	cs := chargeState{s: s, pc: pc}

	// Predication: a failed condition costs one issue cycle, no effects.
	// (Conditional branches handle their own taken/not-taken charging.)
	if in.Cond != isa.AL && s.op != isa.B {
		if !in.Cond.Holds(m.n, m.z, m.c, m.v) {
			m.charge(&cs, int(s.cyclesNT), power.None)
			return seqNext, nil
		}
	}

	switch s.op {
	case isa.NOP, isa.IT,
		isa.MOV, isa.MVN, isa.SXTB, isa.SXTH, isa.UXTB, isa.UXTH, isa.CLZ,
		isa.ADD, isa.ADC, isa.SUB, isa.SBC, isa.RSB, isa.MUL, isa.MLA,
		isa.SDIV, isa.UDIV, isa.AND, isa.ORR, isa.EOR, isa.BIC,
		isa.LSL, isa.LSR, isa.ASR, isa.ROR,
		isa.CMP, isa.CMN, isa.TST:
		// Data-processing effects are shared with the superblock engine
		// (execALU); every one of these charges (cycles, power.None).
		m.execALU(s)
		m.charge(&cs, int(s.cycles), power.None)
		return seqNext, nil

	case isa.LDR, isa.LDRB, isa.LDRH, isa.LDRSB, isa.LDRSH:
		addr := m.effAddr(in)
		v, dataMem, err := m.load(addr, int(s.memSize), s.memSign)
		if err != nil {
			return 0, &Fault{PC: pc, Reason: err.Error()}
		}
		m.regs[in.Rd] = v
		m.chargeLoad(&cs, dataMem, int(s.cycles))
		return seqNext, nil

	case isa.STR, isa.STRB, isa.STRH:
		addr := m.effAddr(in)
		dataMem, err := m.store(addr, m.regs[in.Rd], int(s.memSize))
		if err != nil {
			return 0, &Fault{PC: pc, Reason: err.Error()}
		}
		m.charge(&cs, int(s.cycles), dataMem)
		return seqNext, nil

	case isa.LDRLIT:
		if !s.targetOK {
			return 0, &Fault{PC: pc, Reason: fmt.Sprintf("unresolved literal %q", in.Sym)}
		}
		if in.Rd == isa.PC {
			cs.taken = true
			m.chargeLoad(&cs, s.litMem, int(s.cycles))
			return s.target, nil
		}
		m.regs[in.Rd] = s.target
		m.chargeLoad(&cs, s.litMem, int(s.cycles))
		return seqNext, nil

	case isa.ADR:
		if !s.targetOK {
			return 0, &Fault{PC: pc, Reason: fmt.Sprintf("unresolved adr %q", in.Sym)}
		}
		m.regs[in.Rd] = s.target
		m.charge(&cs, int(s.cycles), power.None)
		return seqNext, nil

	case isa.PUSH:
		count := popCount(in.RegList)
		sp := m.regs[isa.SP] - 4*uint32(count)
		a := sp
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if in.RegList&(1<<r) != 0 {
				if _, err := m.store(a, m.regs[r], 4); err != nil {
					return 0, &Fault{PC: pc, Reason: err.Error()}
				}
				a += 4
			}
		}
		m.regs[isa.SP] = sp
		m.charge(&cs, int(s.cycles), power.RAM)
		return seqNext, nil

	case isa.POP:
		a := m.regs[isa.SP]
		var newPC uint32
		gotPC := false
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if in.RegList&(1<<r) != 0 {
				v, _, err := m.load(a, 4, false)
				if err != nil {
					return 0, &Fault{PC: pc, Reason: err.Error()}
				}
				if r == isa.PC {
					newPC = v &^ 1
					gotPC = true
				} else {
					m.regs[r] = v
				}
				a += 4
			}
		}
		m.regs[isa.SP] = a
		cs.taken = gotPC
		m.chargeLoad(&cs, power.RAM, int(s.cycles))
		if gotPC {
			return newPC, nil
		}
		return seqNext, nil

	case isa.B:
		if in.Cond == isa.AL || in.Cond.Holds(m.n, m.z, m.c, m.v) {
			cs.taken = true
			m.charge(&cs, int(s.cycles), power.None)
			return m.branchTarget(s, pc)
		}
		m.charge(&cs, int(s.cyclesNT), power.None)
		return seqNext, nil

	case isa.CBZ, isa.CBNZ:
		if (m.regs[in.Rn] == 0) == (s.op == isa.CBZ) {
			cs.taken = true
			m.charge(&cs, int(s.cycles), power.None)
			return m.branchTarget(s, pc)
		}
		m.charge(&cs, int(s.cyclesNT), power.None)
		return seqNext, nil

	case isa.BL:
		m.regs[isa.LR] = seqNext
		cs.taken = true
		m.charge(&cs, int(s.cycles), power.None)
		return m.branchTarget(s, pc)

	case isa.BLX:
		m.regs[isa.LR] = seqNext
		cs.taken = true
		m.charge(&cs, int(s.cycles), power.None)
		return m.regs[in.Rm] &^ 1, nil

	case isa.BX:
		cs.taken = true
		m.charge(&cs, int(s.cycles), power.None)
		return m.regs[in.Rm] &^ 1, nil
	}
	return 0, &Fault{PC: pc, Reason: fmt.Sprintf("unimplemented op %v", s.op)}
}

// branchTarget returns the slot's predecode-resolved target. Unresolved
// symbols fault on execution, as the interpret-on-fetch loop did.
func (m *Machine) branchTarget(s *slot, pc uint32) (uint32, error) {
	if !s.targetOK {
		return 0, &Fault{PC: pc, Reason: fmt.Sprintf("branch to unresolved %q", s.in.Sym)}
	}
	return s.target, nil
}

// execALU applies the register and flag effects of one data-processing
// instruction — the reference semantics the superblock compiler's
// specialized uops (superblock.go) must reproduce and the differential
// fuzz target checks them against. The caller has already settled
// predication and does the charging itself.
func (m *Machine) execALU(s *slot) {
	in := s.in
	switch s.op {
	case isa.NOP, isa.IT:

	case isa.MOV, isa.MVN, isa.SXTB, isa.SXTH, isa.UXTB, isa.UXTH, isa.CLZ:
		src := m.operand2(in)
		var v uint32
		switch s.op {
		case isa.MOV:
			v = src
		case isa.MVN:
			v = ^src
		case isa.SXTB:
			v = uint32(int32(int8(src)))
		case isa.SXTH:
			v = uint32(int32(int16(src)))
		case isa.UXTB:
			v = src & 0xFF
		case isa.UXTH:
			v = src & 0xFFFF
		case isa.CLZ:
			v = clz(src)
		}
		m.regs[in.Rd] = v
		if in.SetFlags {
			m.setNZ(v)
		}

	case isa.ADD, isa.ADC, isa.SUB, isa.SBC, isa.RSB, isa.MUL, isa.MLA,
		isa.SDIV, isa.UDIV, isa.AND, isa.ORR, isa.EOR, isa.BIC,
		isa.LSL, isa.LSR, isa.ASR, isa.ROR:
		a := m.regs[in.Rn]
		b := m.operand2(in)
		var v uint32
		switch s.op {
		case isa.ADD:
			v = a + b
			if in.SetFlags {
				m.setAddFlags(a, b, 0)
			}
		case isa.ADC:
			carry := uint32(0)
			if m.c {
				carry = 1
			}
			v = a + b + carry
			if in.SetFlags {
				m.setAddFlags(a, b, carry)
			}
		case isa.SUB:
			v = a - b
			if in.SetFlags {
				m.setSubFlags(a, b)
			}
		case isa.SBC:
			borrow := uint32(1)
			if m.c {
				borrow = 0
			}
			v = a - b - borrow
		case isa.RSB:
			v = b - a
			if in.SetFlags {
				m.setSubFlags(b, a)
			}
		case isa.MUL:
			v = a * b
		case isa.MLA:
			v = m.regs[in.Rd] + a*b
		case isa.SDIV:
			if b == 0 {
				v = 0 // ARM defines divide-by-zero result as 0
			} else if int32(a) == -1<<31 && int32(b) == -1 {
				v = a // overflow case: result is the dividend
			} else {
				v = uint32(int32(a) / int32(b))
			}
		case isa.UDIV:
			if b == 0 {
				v = 0
			} else {
				v = a / b
			}
		case isa.AND:
			v = a & b
		case isa.ORR:
			v = a | b
		case isa.EOR:
			v = a ^ b
		case isa.BIC:
			v = a &^ b
		case isa.LSL:
			v = shiftL(a, b)
		case isa.LSR:
			v = shiftR(a, b)
		case isa.ASR:
			v = shiftAR(a, b)
		case isa.ROR:
			v = rotR(a, b)
		}
		m.regs[in.Rd] = v
		if in.SetFlags {
			switch s.op {
			case isa.ADD, isa.ADC, isa.SUB, isa.RSB:
				// full flags already set above (including C and V)
			default:
				m.setNZ(v)
			}
		}

	case isa.CMP:
		m.setSubFlags(m.regs[in.Rn], m.operand2(in))
	case isa.CMN:
		m.setAddFlags(m.regs[in.Rn], m.operand2(in), 0)
	case isa.TST:
		m.setNZ(m.regs[in.Rn] & m.operand2(in))
	}
}

// operand2 evaluates the flexible second operand (register or immediate,
// with optional shift).
func (m *Machine) operand2(in *isa.Instr) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	v := m.regs[in.Rm]
	if in.Shift != 0 {
		v <<= in.Shift
	}
	return v
}

// effAddr computes a load/store effective address.
func (m *Machine) effAddr(in *isa.Instr) uint32 {
	base := m.regs[in.Rn]
	switch in.Mode {
	case isa.AddrOffset:
		return base + uint32(in.Imm)
	case isa.AddrReg:
		return base + m.regs[in.Rm]
	case isa.AddrRegLSL:
		return base + m.regs[in.Rm]<<in.Shift
	}
	return base
}

func (m *Machine) setNZ(v uint32) {
	m.n = int32(v) < 0
	m.z = v == 0
}

func (m *Machine) setAddFlags(a, b, carry uint32) {
	r64 := uint64(a) + uint64(b) + uint64(carry)
	r := uint32(r64)
	m.n = int32(r) < 0
	m.z = r == 0
	m.c = r64 > 0xFFFFFFFF
	m.v = (a^r)&(b^r)&0x80000000 != 0
}

func (m *Machine) setSubFlags(a, b uint32) {
	r := a - b
	m.n = int32(r) < 0
	m.z = r == 0
	m.c = a >= b // no borrow
	m.v = (a^b)&(a^r)&0x80000000 != 0
}

func memWidth(op isa.Op) (size int, signed bool) {
	switch op {
	case isa.LDR, isa.STR:
		return 4, false
	case isa.LDRB, isa.STRB:
		return 1, false
	case isa.LDRH, isa.STRH:
		return 2, false
	case isa.LDRSB:
		return 1, true
	case isa.LDRSH:
		return 2, true
	}
	return 4, false
}

func popCount(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func clz(x uint32) uint32 {
	n := uint32(0)
	for i := 31; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			break
		}
		n++
	}
	return n
}

func shiftL(a, b uint32) uint32 {
	s := b & 0xFF
	if s >= 32 {
		return 0
	}
	return a << s
}

func shiftR(a, b uint32) uint32 {
	s := b & 0xFF
	if s >= 32 {
		return 0
	}
	return a >> s
}

func shiftAR(a, b uint32) uint32 {
	s := b & 0xFF
	if s >= 32 {
		s = 31
	}
	return uint32(int32(a) >> s)
}

func rotR(a, b uint32) uint32 {
	s := b & 31
	if s == 0 {
		return a
	}
	return a>>s | a<<(32-s)
}

// AveragePowerMW returns the run's average power in milliwatts:
// energy / time.
func (m *Machine) AveragePowerMW(s *Stats) float64 {
	t := m.TimeSeconds(s)
	if t == 0 {
		return 0
	}
	return s.EnergyMJ() / t // mJ per second = mW
}
