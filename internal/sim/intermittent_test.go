package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/power"
)

// longLoopProgram counts down 12800 iterations (~60k cycles): long
// enough that checkpoints, outages and replays all land mid-run with the
// default-scale costs, and loop-shaped so the superblock engine fuses
// nearly all of it — the pause-at-boundary path gets real exercise.
func longLoopProgram() *ir.Program {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	ir.Build(f.AddBlock("entry")).
		MovImm(isa.R0, 200).
		OpImm(isa.LSL, isa.R0, isa.R0, 6). // 200<<6 = 12800 iterations
		MovImm(isa.R1, 0)
	ir.Build(f.AddBlock("loop")).
		AddImm(isa.R1, isa.R1, 1).
		SubImm(isa.R0, isa.R0, 1).
		CmpImm(isa.R0, 0).
		Bcond(isa.NE, "loop")
	ir.Build(f.AddBlock("done")).Ret()
	p.Reindex()
	return p
}

// runIntermittentPair executes one program under the same trace+config on
// fused and forced-slot machines and asserts the reports — stats, every
// intermittent dimension, registers — are byte-identical. Returns the
// fused report for further assertions.
func runIntermittentPair(t *testing.T, p *ir.Program, inRAM map[string]bool, cfg IntermittentConfig) *IntermittentReport {
	t.Helper()
	img := mustImage(t, p, inRAM)
	fused := New(img, power.STM32F100())
	fRep, fErr := fused.RunIntermittent(context.Background(), cfg)
	slot := New(img, power.STM32F100())
	slot.NoFuse = true
	sRep, sErr := slot.RunIntermittent(context.Background(), cfg)
	if fErr != nil || sErr != nil {
		t.Fatalf("unexpected faults: fused=%v slot=%v", fErr, sErr)
	}
	if !reflect.DeepEqual(fRep, sRep) {
		t.Fatalf("intermittent report divergence:\nfused: %+v\nslot:  %+v", fRep, sRep)
	}
	compareMachines(t, fused, slot)
	return fRep
}

// An empty trace with an interval the program never reaches is a plain
// run: identical stats, zero intermittent overhead.
func TestIntermittentEmptyTraceNoCheckpoints(t *testing.T) {
	img := mustImage(t, ir.Figure2Program(), nil)
	plain := New(img, power.STM32F100())
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := New(img, power.STM32F100())
	rep, err := m.RunIntermittent(context.Background(), IntermittentConfig{CheckpointCycles: 1 << 60})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Stats, *want) {
		t.Fatalf("stats differ from plain run:\nintermittent: %+v\nplain:        %+v", rep.Stats, *want)
	}
	if rep.Checkpoints != 0 || rep.Outages != 0 || rep.ReplayedInstrs != 0 ||
		rep.CheckpointEnergyNJ != 0 || rep.RestoreEnergyNJ != 0 || rep.DownCycles != 0 {
		t.Fatalf("phantom intermittent overhead: %+v", rep)
	}
	if rep.WallCycles != want.Cycles {
		t.Fatalf("WallCycles %d != executed %d with no overhead", rep.WallCycles, want.Cycles)
	}
	if rep.UsefulInstructions() != want.Instructions {
		t.Fatalf("UsefulInstructions %d != %d", rep.UsefulInstructions(), want.Instructions)
	}
}

// Periodic checkpoints without outages never perturb the executed-cycle
// stats — overhead is itemized separately — and every checkpoint adds the
// same journal cost.
func TestIntermittentCheckpointAccounting(t *testing.T) {
	img := mustImage(t, ir.Figure2Program(), nil)
	plain := New(img, power.STM32F100())
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	const interval = 200
	m := New(img, power.STM32F100())
	rep, err := m.RunIntermittent(context.Background(), IntermittentConfig{CheckpointCycles: interval})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Stats, *want) {
		t.Fatalf("checkpoints perturbed executed stats:\nintermittent: %+v\nplain:        %+v", rep.Stats, *want)
	}
	if rep.Checkpoints == 0 {
		t.Fatalf("no checkpoints over %d cycles at interval %d", want.Cycles, interval)
	}
	cyc, nj := m.checkpointCost()
	if got := uint64(rep.Checkpoints) * cyc; rep.CheckpointOverheadCycles != got {
		t.Fatalf("CheckpointOverheadCycles %d != %d checkpoints × %d", rep.CheckpointOverheadCycles, rep.Checkpoints, cyc)
	}
	if got := float64(rep.Checkpoints) * nj; rep.CheckpointEnergyNJ != got {
		t.Fatalf("CheckpointEnergyNJ %v != %d checkpoints × %v", rep.CheckpointEnergyNJ, rep.Checkpoints, nj)
	}
	if rep.WallCycles != want.Cycles+rep.CheckpointOverheadCycles {
		t.Fatalf("WallCycles %d != executed %d + overhead %d", rep.WallCycles, want.Cycles, rep.CheckpointOverheadCycles)
	}
}

// An outage mid-run replays lost work: total executed instructions grow,
// but forward progress equals the uninterrupted run exactly — execution
// is deterministic, so the replayed prefix retires the same instructions.
// The checkpoint interval is set beyond the program so the snapshot stays
// at reset and the outage demonstrably loses the whole first half.
func TestIntermittentOutageReplay(t *testing.T) {
	img := mustImage(t, longLoopProgram(), nil)
	plain := New(img, power.STM32F100())
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	trace := &PowerTrace{Outages: []Outage{{At: want.Cycles / 2, Down: 1000}}}
	m := New(img, power.STM32F100())
	rep, err := m.RunIntermittent(context.Background(), IntermittentConfig{Trace: trace, CheckpointCycles: 1 << 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outages != 1 {
		t.Fatalf("Outages = %d, want 1", rep.Outages)
	}
	if rep.ReplayedInstrs == 0 {
		t.Fatal("outage with no checkpoint lost no work")
	}
	if rep.Checkpoints != 0 || rep.CheckpointOverheadCycles != 0 {
		t.Fatalf("phantom checkpoints: %+v", rep)
	}
	if rep.Stats.Instructions != want.Instructions+rep.ReplayedInstrs {
		t.Fatalf("executed %d != uninterrupted %d + replayed %d",
			rep.Stats.Instructions, want.Instructions, rep.ReplayedInstrs)
	}
	if rep.UsefulInstructions() != want.Instructions {
		t.Fatalf("UsefulInstructions %d != uninterrupted %d", rep.UsefulInstructions(), want.Instructions)
	}
	if rep.DownCycles != 1000 {
		t.Fatalf("DownCycles = %d, want 1000", rep.DownCycles)
	}
	if rep.RestoreOverheadCycles == 0 || rep.RestoreEnergyNJ == 0 {
		t.Fatal("restore cost not charged")
	}
	wall := rep.Stats.Cycles + rep.CheckpointOverheadCycles + rep.RestoreOverheadCycles + rep.DownCycles
	if rep.WallCycles != wall {
		t.Fatalf("WallCycles %d != %d", rep.WallCycles, wall)
	}
	if rep.TotalEnergyNJ() <= want.EnergyNJ {
		t.Fatal("an interrupted run cannot cost less energy than the uninterrupted one")
	}
	if rep.WorkPerMJ() <= 0 || rep.WorkPerMJ() >= float64(want.Instructions)/(want.EnergyNJ*1e-6) {
		t.Fatalf("WorkPerMJ %v not strictly below the uninterrupted figure", rep.WorkPerMJ())
	}
}

// A checkpoint between reset and the outage bounds the loss: the replay
// restarts from the checkpoint, not from reset, so the lost work is a
// small fraction of the progress made.
func TestIntermittentCheckpointBoundsLoss(t *testing.T) {
	img := mustImage(t, longLoopProgram(), nil)
	plain := New(img, power.STM32F100())
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	const interval = 10_000
	// Land the outage roughly 1/4 interval past a checkpoint: executed
	// marks shift by the accumulated checkpoint overhead, so aim past the
	// second checkpoint's wall-clock time with margin.
	m := New(img, power.STM32F100())
	ckptCyc, _ := m.checkpointCost()
	at := 2*interval + 2*ckptCyc + interval/4
	rep, err := m.RunIntermittent(context.Background(), IntermittentConfig{
		Trace:            &PowerTrace{Outages: []Outage{{At: at, Down: 500}}},
		CheckpointCycles: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outages != 1 || rep.Checkpoints < 2 {
		t.Fatalf("scenario not hit: %d outages, %d checkpoints", rep.Outages, rep.Checkpoints)
	}
	if rep.ReplayedInstrs == 0 {
		t.Fatal("outage mid-interval lost no work")
	}
	// The loss is at most one interval's worth of instructions (~1/6 of
	// the run), nowhere near the from-reset half.
	if lost, total := rep.ReplayedInstrs, want.Instructions; lost*4 > total {
		t.Fatalf("checkpoint did not bound the loss: replayed %d of %d", lost, total)
	}
	if rep.UsefulInstructions() != want.Instructions {
		t.Fatalf("UsefulInstructions %d != uninterrupted %d", rep.UsefulInstructions(), want.Instructions)
	}
}

// The byte-identity contract extends to trace-driven runs: fused and slot
// dispatch must pause, checkpoint and replay at identical boundaries.
func TestIntermittentFusedVsSlotIdentity(t *testing.T) {
	progs := []struct {
		name  string
		p     *ir.Program
		inRAM map[string]bool
	}{
		{"figure2", ir.Figure2Program(), nil},
		{"figure2-optimized", func() *ir.Program { p, _ := optimizedFigure2(); return p }(),
			map[string]bool{"fn_loop": true, "fn_if": true}},
		{"long-loop", longLoopProgram(), nil},
	}
	traces := []struct {
		name string
		cfg  IntermittentConfig
	}{
		{"empty-small-interval", IntermittentConfig{CheckpointCycles: 97}},
		{"single-outage", IntermittentConfig{
			Trace:            &PowerTrace{Outages: []Outage{{At: 301, Down: 50}}},
			CheckpointCycles: 113,
		}},
		{"dense-outages", IntermittentConfig{
			Trace: &PowerTrace{Outages: []Outage{
				{At: 150, Down: 10}, {At: 400, Down: 25}, {At: 700, Down: 5}, {At: 1200, Down: 100},
			}},
			CheckpointCycles: 73,
		}},
		{"deep-outages", IntermittentConfig{
			Trace: &PowerTrace{Outages: []Outage{
				{At: 9_000, Down: 300}, {At: 26_000, Down: 40}, {At: 55_000, Down: 2_000},
			}},
			CheckpointCycles: 7_001,
		}},
	}
	for _, tp := range progs {
		for _, tr := range traces {
			t.Run(tp.name+"/"+tr.name, func(t *testing.T) {
				runIntermittentPair(t, tp.p, tp.inRAM, tr.cfg)
			})
		}
	}
}

// Identical trace + config ⇒ identical report, run to run: the
// deterministic-replay acceptance criterion at the sim layer.
func TestIntermittentDeterministicReplay(t *testing.T) {
	img := mustImage(t, ir.Figure2Program(), nil)
	cfg := IntermittentConfig{
		Trace:            &PowerTrace{Outages: []Outage{{At: 200, Down: 40}, {At: 900, Down: 10}}},
		CheckpointCycles: 128,
	}
	a, err := New(img, power.STM32F100()).RunIntermittent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(img, power.STM32F100()).RunIntermittent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay divergence:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// Generated harvest profiles drive both engines identically too — this is
// the exact configuration the evaluation sweep runs.
func TestIntermittentHarvestProfilesIdentity(t *testing.T) {
	img := mustImage(t, longLoopProgram(), nil)
	horizon, err := New(img, power.STM32F100()).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range HarvestProfiles() {
		t.Run(prof, func(t *testing.T) {
			trace, err := GenerateTrace(prof, horizon.Cycles)
			if err != nil {
				t.Fatal(err)
			}
			rep := runIntermittentPair(t, longLoopProgram(), nil, IntermittentConfig{Trace: trace})
			if rep.UsefulInstructions() != horizon.Instructions {
				t.Fatalf("forward progress %d != uninterrupted %d", rep.UsefulInstructions(), horizon.Instructions)
			}
		})
	}
}

// A trace dense enough to starve the program of progress must trip
// MaxInstrs (replays count), not spin forever: with no checkpoints, each
// power-on window shorter than the program replays from reset and dies
// again, and the replayed instructions accumulate toward the limit.
func TestIntermittentStarvationHitsMaxInstrs(t *testing.T) {
	img := mustImage(t, longLoopProgram(), nil)
	m := New(img, power.STM32F100())
	// Space the outages so each attempt gets ~2000 executed cycles after
	// paying the restore: far short of the ~60k the loop needs.
	restoreCyc, _ := m.restoreCost()
	spacing := restoreCyc + 1 + 2000
	trace := &PowerTrace{}
	for k := uint64(1); k <= 4096; k++ {
		trace.Outages = append(trace.Outages, Outage{At: k * spacing, Down: 1})
	}
	m.MaxInstrs = 50_000
	_, err := m.RunIntermittent(context.Background(), IntermittentConfig{Trace: trace, CheckpointCycles: 1 << 60})
	if err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Fatalf("got %v, want instruction-limit fault", err)
	}
}

// Invalid traces are rejected up front with the typed error, before any
// execution.
func TestIntermittentRejectsInvalidTrace(t *testing.T) {
	img := mustImage(t, ir.Figure2Program(), nil)
	m := New(img, power.STM32F100())
	bad := &PowerTrace{Outages: []Outage{{At: 10, Down: 0}}}
	if _, err := m.RunIntermittent(context.Background(), IntermittentConfig{Trace: bad}); err == nil {
		t.Fatal("zero-length outage accepted")
	}
	if m.stats.Instructions != 0 {
		t.Fatal("machine ran before trace validation")
	}
}
