package sim

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/power"
)

// runPair executes one program on two fresh machines — fused dispatch and
// forced slot dispatch (the beebsbench -nofuse knob) — and returns both
// machines plus their run errors. Stats are compared via compareMachines
// so faulting runs (Run returns nil stats) still diff their partials.
func runPair(t *testing.T, p *ir.Program, inRAM map[string]bool, maxInstrs uint64) (fused, slot *Machine, fErr, sErr error) {
	t.Helper()
	img := mustImage(t, p, inRAM)
	fused = New(img, power.STM32F100())
	fused.MaxInstrs = maxInstrs
	_, fErr = fused.Run()
	slot = New(img, power.STM32F100())
	slot.MaxInstrs = maxInstrs
	slot.NoFuse = true
	_, sErr = slot.Run()
	return
}

// compareMachines asserts every statistic of a fused run is byte-identical
// to its slot-dispatch twin: the superblock engine's core contract.
func compareMachines(t *testing.T, fused, slot *Machine) {
	t.Helper()
	f, s := &fused.stats, &slot.stats
	if f.Instructions != s.Instructions {
		t.Errorf("Instructions: fused %d != slot %d", f.Instructions, s.Instructions)
	}
	if f.Cycles != s.Cycles {
		t.Errorf("Cycles: fused %d != slot %d", f.Cycles, s.Cycles)
	}
	if f.EnergyNJ != s.EnergyNJ {
		t.Errorf("EnergyNJ: fused %v != slot %v (bit-exact required)", f.EnergyNJ, s.EnergyNJ)
	}
	if f.CyclesByMem != s.CyclesByMem {
		t.Errorf("CyclesByMem: fused %v != slot %v", f.CyclesByMem, s.CyclesByMem)
	}
	if f.ContentionStalls != s.ContentionStalls {
		t.Errorf("ContentionStalls: fused %d != slot %d", f.ContentionStalls, s.ContentionStalls)
	}
	fb, sb := fused.blockCountsMap(), slot.blockCountsMap()
	if len(fb) != len(sb) {
		t.Errorf("BlockCounts: %d entries fused vs %d slot", len(fb), len(sb))
	}
	for k, v := range sb {
		if fb[k] != v {
			t.Errorf("BlockCounts[%s]: fused %d != slot %d", k, fb[k], v)
		}
	}
	for r := range fused.regs {
		if fused.regs[r] != slot.regs[r] {
			t.Errorf("r%d: fused %#x != slot %#x", r, fused.regs[r], slot.regs[r])
		}
	}
}

func TestFusedMatchesSlotDispatch(t *testing.T) {
	progs := []struct {
		name  string
		p     *ir.Program
		inRAM map[string]bool
	}{
		{"figure2", ir.Figure2Program(), nil},
		{"figure2-optimized", func() *ir.Program { p, _ := optimizedFigure2(); return p }(),
			map[string]bool{"fn_loop": true, "fn_if": true}},
	}
	for _, tc := range progs {
		t.Run(tc.name, func(t *testing.T) {
			fused, slot, fErr, sErr := runPair(t, tc.p, tc.inRAM, 0)
			if fErr != nil || sErr != nil {
				t.Fatalf("unexpected faults: fused=%v slot=%v", fErr, sErr)
			}
			compareMachines(t, fused, slot)
			if fused.FusedInstructions() == 0 {
				t.Error("fused run retired no instructions through superblocks")
			}
			if slot.FusedInstructions() != 0 {
				t.Errorf("NoFuse run retired %d fused instructions", slot.FusedInstructions())
			}
		})
	}
}

// TestFusedObserverBypassIdentity: attaching an observer must force the
// per-slot path (fusion would skip per-instruction events) and still
// produce the stats of the fused run.
func TestFusedObserverBypassIdentity(t *testing.T) {
	img := mustImage(t, ir.Figure2Program(), nil)
	fused := New(img, power.STM32F100())
	if _, err := fused.Run(); err != nil {
		t.Fatal(err)
	}
	obs := New(img, power.STM32F100())
	rec := &recordingObserver{}
	obs.Attach(rec)
	if _, err := obs.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.FusedInstructions() != 0 {
		t.Errorf("observer-attached run fused %d instructions", obs.FusedInstructions())
	}
	if uint64(len(rec.events)) != obs.stats.Instructions {
		t.Errorf("%d events for %d instructions", len(rec.events), obs.stats.Instructions)
	}
	compareMachines(t, fused, obs)
}

// TestFusedMidRunLoadFault: a load faulting in the middle of a superblock
// must flush the exact partial stats and the exact fault the slot path
// produces — including the faulting instruction's block entry (counted
// before the step) but none of its charge.
func TestFusedMidRunLoadFault(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("entry")
	ir.Build(b).
		MovImm(isa.R0, 1).
		AddImm(isa.R0, isa.R0, 2).
		LdrConst(isa.R1, 0x40000000).
		Ldr(isa.R2, isa.R1, 0). // faults mid-run: unmapped address
		Ret()
	p.Reindex()

	fused, slot, fErr, sErr := runPair(t, p, nil, 0)
	if fErr == nil || sErr == nil {
		t.Fatalf("expected faults, got fused=%v slot=%v", fErr, sErr)
	}
	if fErr.Error() != sErr.Error() {
		t.Errorf("fault mismatch:\nfused: %v\nslot:  %v", fErr, sErr)
	}
	if !strings.Contains(fErr.Error(), "load outside memory") {
		t.Errorf("fault %v does not name the bad load", fErr)
	}
	compareMachines(t, fused, slot)
	if fused.stats.Instructions == 0 {
		t.Error("no partial stats flushed before the fault")
	}
}

// TestFusedMidRunStoreFault: same contract for the store fast path's
// fallback (store to flash is resolved by the slow path).
func TestFusedMidRunStoreFault(t *testing.T) {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("entry")
	ir.Build(b).
		LdrLit(isa.R1, "ro").
		MovImm(isa.R0, 7).
		AddImm(isa.R0, isa.R0, 1).
		Str(isa.R0, isa.R1, 0). // store to flash faults
		Ret()
	p.AddGlobal(&ir.Global{Name: "ro", Size: 4, RO: true})
	p.Reindex()

	fused, slot, fErr, sErr := runPair(t, p, nil, 0)
	if fErr == nil || sErr == nil {
		t.Fatalf("expected faults, got fused=%v slot=%v", fErr, sErr)
	}
	if fErr.Error() != sErr.Error() {
		t.Errorf("fault mismatch:\nfused: %v\nslot:  %v", fErr, sErr)
	}
	compareMachines(t, fused, slot)
}

// TestFusedMaxInstrsExact: a run that would cross MaxInstrs inside a
// superblock must fall back to slot dispatch so the limit faults on the
// exact instruction, like the unfused engine.
func TestFusedMaxInstrsExact(t *testing.T) {
	fused, slot, fErr, sErr := runPair(t, spinProgram(), nil, 1000)
	if fErr == nil || sErr == nil {
		t.Fatalf("expected instruction-limit faults, got fused=%v slot=%v", fErr, sErr)
	}
	if fErr.Error() != sErr.Error() {
		t.Errorf("fault mismatch:\nfused: %v\nslot:  %v", fErr, sErr)
	}
	if fused.stats.Instructions != 1000 {
		t.Errorf("fused stopped at %d instructions, want exactly 1000", fused.stats.Instructions)
	}
	compareMachines(t, fused, slot)
}

// TestFusedMidRunEntry: a computed jump into the middle of a fused run
// lands on a slot without a descriptor and must fall back to slot
// dispatch with identical results. The entry address is derived
// numerically (symbol + one instruction) so it is not in the static
// split set.
func TestFusedMidRunEntry(t *testing.T) {
	p := ir.NewProgram()
	fn := p.AddFunc(&ir.Function{Name: "fn"})
	b := fn.AddBlock("fn_body")
	ir.Build(b).
		Nop(). // skipped by the mid-run entry
		MovImm(isa.R0, 5).
		AddImm(isa.R0, isa.R0, 3).
		AddImm(isa.R0, isa.R0, 2).
		Ret()

	m := p.AddFunc(&ir.Function{Name: "main"})
	mb := m.AddBlock("main_entry")
	ir.Build(mb).
		Push(isa.R4, isa.LR).
		LdrLit(isa.R4, "fn_body").
		AddImm(isa.R4, isa.R4, 2). // past the 2-byte nop: mid-run address
		Blx(isa.R4).
		Pop(isa.R4, isa.PC)
	p.Reindex()

	fused, slot, fErr, sErr := runPair(t, p, nil, 0)
	if fErr != nil || sErr != nil {
		t.Fatalf("unexpected faults: fused=%v slot=%v", fErr, sErr)
	}
	if got := fused.Reg(isa.R0); got != 10 {
		t.Errorf("r0 = %d, want 10 (nop skipped, adds executed)", got)
	}
	compareMachines(t, fused, slot)
}

// longStraightProgram spins a block of n straight-line instructions — a
// single maximal superblock per iteration, chained back to itself — so a
// cancellable run must keep polling inside the fused path.
func longStraightProgram(n int) *ir.Program {
	p := ir.NewProgram()
	f := p.AddFunc(&ir.Function{Name: "main"})
	b := f.AddBlock("spin")
	bb := ir.Build(b)
	for i := 0; i < n; i++ {
		bb.AddImm(isa.R0, isa.R0, 1)
	}
	bb.B("spin")
	p.Reindex()
	return p
}

// TestSuperblockPollGranularity: the cancellation poll must fire at least
// once every cancelCheckMask+1 dispatched instructions even when whole
// superblock chains retire thousands of slots per dispatch — a long run
// may not stretch the <2% cancellation-latency guarantee. Pigeonhole: N
// instructions under a live context need at least N/(mask+1) polls.
func TestSuperblockPollGranularity(t *testing.T) {
	m := New(mustImage(t, longStraightProgram(600), nil), power.STM32F100())
	m.MaxInstrs = 50_000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := m.RunContext(ctx) // never cancelled: runs to the limit fault
	if err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Fatalf("err = %v, want instruction limit", err)
	}
	if m.fusedInstrs == 0 {
		t.Fatal("straight-line spin did not exercise the fused path")
	}
	instrs := m.stats.Instructions
	if instrs != 50_000 {
		t.Fatalf("stopped at %d instructions, want exactly 50000", instrs)
	}
	window := uint64(cancelCheckMask + 1)
	if instrs > (m.polls+1)*window {
		t.Errorf("%d instructions with %d polls: some poll interval exceeded %d slots",
			instrs, m.polls, window)
	}
}

// TestSuperblockChaining: statically linked runs execute without returning
// to the dispatch loop, and the chain stays byte-identical to slot
// dispatch.
func TestSuperblockChaining(t *testing.T) {
	img := mustImage(t, ir.Figure2Program(), nil)
	m := New(img, power.STM32F100())
	var chained bool
	for i := range m.eng.super {
		if m.eng.super[i].nextSB >= 0 {
			chained = true
			break
		}
	}
	if !chained {
		t.Error("no superblock chain links were resolved")
	}
	for i := range m.eng.super {
		sb := &m.eng.super[i]
		if sb.n < minFuse {
			t.Errorf("superblock %d has %d uops, below minFuse", i, sb.n)
		}
		if sb.n > maxFuse {
			t.Errorf("superblock %d has %d uops, above the poll window", i, sb.n)
		}
	}
}
