package sim

import (
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/power"
)

// The predecoded execution engine: at SetImage time the placed image is
// compiled once into dense per-memory instruction tables, so the run loop
// dispatches on an array index instead of a map lookup and every
// per-instruction constant — class, cycle costs, sequential successor,
// resolved branch target, literal value, per-cycle energy — is computed
// exactly once instead of once per executed instruction.
//
// Invariants (enforced by the sim tests and the PR 3 session goldens):
//
//   - Stats, fault messages and the observer event stream are
//     byte-identical to the reference interpret-on-fetch loop. In
//     particular the per-cycle energies are precomputed with the same
//     float64 expression the interpreter evaluated per step, so energy
//     accumulates bit-for-bit identically.
//   - The table is rebuilt on any image change (Machine.SetImage) and
//     only then; Reset keeps it.

// slot is one predecoded instruction. Slots are indexed by
// (pc - regionBase) >> 1 within their memory's table; a slot whose pl is
// nil is not an instruction start (literal pool words, alignment padding,
// the second half of a 32-bit encoding) and faults like any other
// non-instruction address.
type slot struct {
	pl *layout.Placed
	in *isa.Instr

	// epc is the energy charged per cycle (nJ) for each possible data
	// memory outcome, indexed by power.Memory (Flash, RAM, None).
	epc [3]float64

	seqNext uint32 // pc + laid-out instruction size
	// target is the resolved control-transfer destination (B/CBZ/CBNZ/BL),
	// literal value (LDRLIT) or symbol address (ADR); valid iff targetOK.
	target   uint32
	index    int32 // instruction index within the block
	blockID  int32 // dense layout.Placed.ID, for array-indexed counters
	op       isa.Op
	class    isa.Class
	fetchMem power.Memory
	litMem   power.Memory // LDRLIT data memory (pool residence)
	memSize  uint8        // load/store access width in bytes
	memSign  bool         // load sign-extends
	cycles   uint8        // isa.Cycles(in)
	cyclesNT uint8        // isa.CyclesNotTaken(in)
	targetOK bool
	// sb indexes engine.super when this slot heads a fused run, -1
	// otherwise (superblock.go). Only head slots carry a descriptor — a
	// jump into the middle of a run falls back to slot dispatch.
	sb int32
}

// engine holds the predecoded tables for the two code regions plus the
// dense per-block entry counters.
type engine struct {
	flash, ram         []slot
	flashBase, ramBase uint32
	flashLen, ramLen   uint32 // code byte extents (table covers len>>1 slots)

	// blockCounts is the dense form of Stats.BlockCounts, indexed by
	// layout.Placed.ID and materialized into the public map form only
	// when a run completes.
	blockCounts []uint64

	// super holds the fused straight-line run descriptors, indexed by
	// slot.sb (superblock.go). Rebuilt with the tables on SetImage.
	super []superblock
}

// slotAt resolves a fetch address against the predecoded tables. It
// returns nil exactly when the reference interpreter's per-address map
// lookup missed: odd addresses, addresses outside the code regions, and
// addresses inside them that are not an instruction start.
func (m *Machine) slotAt(pc uint32) *slot { return m.eng.slotAt(pc) }

func (e *engine) slotAt(pc uint32) *slot {
	if pc&1 != 0 {
		return nil
	}
	// Unsigned wraparound makes the single compare also reject pc < base.
	if d := pc - e.flashBase; d < e.flashLen {
		if s := &e.flash[d>>1]; s.pl != nil {
			return s
		}
		return nil
	}
	if d := pc - e.ramBase; d < e.ramLen {
		if s := &e.ram[d>>1]; s.pl != nil {
			return s
		}
	}
	return nil
}

// ref converts a slot back to the layout reference used by faults.
func (s *slot) ref() layout.InstrRef {
	return layout.InstrRef{Placed: s.pl, Index: int(s.index)}
}

// predecode compiles the current image into the engine tables. Called by
// SetImage only — the tables depend on nothing but the image and the
// profile, both fixed until the next SetImage.
func (m *Machine) predecode() {
	img, prof := m.Img, m.Profile
	e := &m.eng
	e.flashBase, e.flashLen = img.CodeBounds(power.Flash)
	e.ramBase, e.ramLen = img.CodeBounds(power.RAM)
	e.flash = resizeSlots(e.flash, int(e.flashLen+1)>>1)
	e.ram = resizeSlots(e.ram, int(e.ramLen+1)>>1)
	e.blockCounts = resizeCounts(e.blockCounts, len(img.Blocks))

	// Per (fetchMem, class, dataMem) energy table, shared by every slot
	// with that outcome. The expression mirrors the reference loop's
	// EnergyPerCycle(InstrPower(...)) exactly, for bit-identical charges.
	var epc [2][isa.NumClasses][3]float64
	for fm := power.Flash; fm <= power.RAM; fm++ {
		for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
			for dm := 0; dm < 3; dm++ {
				epc[fm][cl][dm] = prof.EnergyPerCycle(prof.InstrPower(fm, cl, power.Memory(dm)))
			}
		}
	}

	for _, pl := range img.Blocks {
		fetchMem, tbl, base := power.Flash, e.flash, e.flashBase
		if pl.InRAM {
			fetchMem, tbl, base = power.RAM, e.ram, e.ramBase
		}
		for i := range pl.Block.Instrs {
			in := &pl.Block.Instrs[i]
			s := &tbl[(pl.InstrAddrs[i]-base)>>1]
			cl := isa.ClassOf(in.Op)
			*s = slot{
				pl:       pl,
				in:       in,
				epc:      epc[fetchMem][cl],
				seqNext:  pl.InstrAddrs[i] + uint32(pl.InstrSize(i)),
				index:    int32(i),
				blockID:  int32(pl.ID),
				op:       in.Op,
				class:    cl,
				fetchMem: fetchMem,
				cycles:   uint8(isa.Cycles(in)),
				cyclesNT: uint8(isa.CyclesNotTaken(in)),
				sb:       -1,
			}
			switch in.Op {
			case isa.B, isa.CBZ, isa.CBNZ, isa.BL:
				s.target, s.targetOK = img.Symbols[in.Sym]
			case isa.ADR:
				s.target, s.targetOK = img.Symbols[in.Sym]
			case isa.LDRLIT:
				// The pool travels with its block unless the slot address
				// resolves elsewhere — same rule as the reference loop.
				s.litMem = fetchMem
				if la := pl.LitAddrs[i]; la != 0 {
					if mm, ok := img.MemoryOf(la); ok {
						s.litMem = mm
					}
				}
				if in.Sym != "" {
					s.target, s.targetOK = img.Symbols[in.Sym]
				} else {
					s.target, s.targetOK = uint32(in.Imm), true
				}
			case isa.LDR, isa.LDRB, isa.LDRH, isa.LDRSB, isa.LDRSH,
				isa.STR, isa.STRB, isa.STRH:
				size, signed := memWidth(in.Op)
				s.memSize, s.memSign = uint8(size), signed
			}
		}
	}

	// With every target resolved, fuse straight-line runs into
	// superblock descriptors (superblock.go). The one symbol lookup here
	// is per-SetImage, not per-instruction: fuse itself reads only the
	// resolved slots.
	m.fuse(img.Symbols[img.Prog.Entry])
}

// resizeSlots reuses the backing array across SetImage calls when it is
// big enough (the session pipeline retargets one machine per run).
func resizeSlots(s []slot, n int) []slot {
	if cap(s) < n {
		return make([]slot, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeCounts(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	clear(s)
	return s
}
