package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/power"
)

// Intermittent execution (DESIGN.md §6l): RunIntermittent replays a
// PowerTrace against the program. Execution proceeds in segments of
// executed cycles; each segment ends at the nearer of the next periodic
// checkpoint mark and the next outage instant. A checkpoint journals the
// volatile state (registers, flags, RAM) to flash and charges the
// journal's write cost; an outage discards the volatile state, waits out
// the trace's down time, charges the restore cost (journal read-back
// plus the flash→RAM copy of RAM-resident code and data) and resumes at
// the last checkpoint, re-executing — and re-charging — the lost work.
//
// The segment boundaries live in executed-cycle space and the stop rule
// is "an instruction executes iff its pre-execution cycle count is below
// the stop mark", which depends only on Stats — not on how instructions
// are dispatched — so a trace-driven run is byte-identical between the
// fused and slot engines: runFrom declines the fused path for any
// superblock whose worst-case cycle bound could reach the mark, and the
// boundary instructions slot-dispatch identically in both.

// errStopCycles is runFrom's internal pause signal: the executed-cycle
// stop mark was reached at an instruction boundary. Machine.pausePC
// holds the resume address. Never escapes RunIntermittent.
var errStopCycles = errors.New("sim: cycle stop reached")

// DefaultCheckpointCycles is the checkpoint interval used when
// IntermittentConfig leaves it zero: frequent enough that an outage
// rarely loses more than a few percent of a BEEBS run, sparse enough
// that journal writes stay a small overhead.
const DefaultCheckpointCycles = 20000

// ckptFixedWords is the placement-independent part of the checkpoint
// journal: the register file and flags (17 words) plus a fixed reserve
// for the live stack, rounded up to a deliberately simple bound.
const ckptFixedWords = 82

// ckptCyclesPerWord prices one journal word through the flash port —
// the same per-word cost the startup .data/.ramcode copy charges
// (core.startupCopyCost), so boot-time and checkpoint-time flash↔RAM
// traffic are priced consistently.
const ckptCyclesPerWord = 6

// CheckpointCostPerByteNJ prices the journal traffic one RAM-placed byte
// adds to each checkpoint (store-class flash write out) and each restore
// (load-class read back), in nJ per byte per event — the basis a
// checkpoint-aware placement uses for model.Params.CkptNJPerByte. Uses
// the same per-word cycle cost the simulator charges, so the model term
// and the measured overhead agree.
func CheckpointCostPerByteNJ(prof *power.Profile) (ckptNJ, restoreNJ float64) {
	perByte := float64(ckptCyclesPerWord) / 4
	ckptNJ = perByte * prof.EnergyPerCycle(prof.FetchPower[power.Flash][isa.ClassStore])
	restoreNJ = perByte * prof.EnergyPerCycle(prof.FetchPower[power.Flash][isa.ClassLoad])
	return ckptNJ, restoreNJ
}

// IntermittentConfig parameterizes one trace-driven run.
type IntermittentConfig struct {
	// Trace schedules the power failures (nil or empty = none; the run
	// then differs from Run only by its periodic checkpoint costs).
	Trace *PowerTrace
	// CheckpointCycles is the executed-cycle interval between periodic
	// checkpoints (0 = DefaultCheckpointCycles).
	CheckpointCycles uint64
}

// IntermittentReport is the outcome of a trace-driven run. Stats keeps
// its usual meaning — every executed instruction, replays included — and
// the intermittent dimensions (overhead, down time, lost work) are
// itemized alongside so completed-work-per-joule and time-to-completion
// are derivable exactly.
type IntermittentReport struct {
	// Stats covers every executed instruction, including work that an
	// outage later discarded and the machine re-executed.
	Stats Stats
	// CheckpointIntervalCycles echoes the configured interval.
	CheckpointIntervalCycles uint64
	// Outages endured and checkpoints taken (the implicit power-on
	// checkpoint is free and uncounted).
	Outages     int
	Checkpoints int
	// ReplayedInstrs is the total work discarded by outages — every one
	// of these instructions was executed (and charged) at least twice.
	ReplayedInstrs uint64
	// DownCycles is wall-clock time spent with power off.
	DownCycles uint64
	// Checkpoint/restore overhead: journal traffic cycles and energy.
	CheckpointOverheadCycles uint64
	RestoreOverheadCycles    uint64
	CheckpointEnergyNJ       float64
	RestoreEnergyNJ          float64
	// WallCycles is time-to-completion: executed cycles plus overhead
	// plus down time.
	WallCycles uint64
}

// TotalEnergyNJ is everything the harvester had to deliver: execution
// (replays included) plus checkpoint and restore traffic.
func (r *IntermittentReport) TotalEnergyNJ() float64 {
	return r.Stats.EnergyNJ + r.CheckpointEnergyNJ + r.RestoreEnergyNJ
}

// UsefulInstructions is the program's forward progress: executed
// instructions minus the replays (each lost instruction re-executes
// exactly once per outage that discarded it).
func (r *IntermittentReport) UsefulInstructions() uint64 {
	return r.Stats.Instructions - r.ReplayedInstrs
}

// WorkPerMJ is completed work per delivered energy, in useful
// instructions per millijoule — the intermittent-computing figure of
// merit (forward progress per charge).
func (r *IntermittentReport) WorkPerMJ() float64 {
	e := r.TotalEnergyNJ() * 1e-6
	if e == 0 {
		return 0
	}
	return float64(r.UsefulInstructions()) / e
}

// TimeToCompletionS converts WallCycles to seconds at a clock rate.
func (r *IntermittentReport) TimeToCompletionS(clockHz float64) float64 {
	return float64(r.WallCycles) / clockHz
}

// ckptSnapshot is the volatile state a checkpoint preserves. The RAM
// image covers everything lost on an outage — data, stack and the
// RAM-resident code the restore copies back from flash.
type ckptSnapshot struct {
	regs       [isa.NumRegs]uint32
	n, z, c, v bool
	ram        []byte
	pc         uint32
	// instrs is Stats.Instructions at snapshot time — the replay
	// baseline for lost-work accounting.
	instrs uint64
}

func (m *Machine) takeSnapshot(s *ckptSnapshot, pc uint32) {
	s.regs = m.regs
	s.n, s.z, s.c, s.v = m.n, m.z, m.c, m.v
	if cap(s.ram) < len(m.ram) {
		s.ram = make([]byte, len(m.ram))
	}
	s.ram = s.ram[:len(m.ram)]
	copy(s.ram, m.ram)
	s.pc = pc
	s.instrs = m.stats.Instructions
}

func (m *Machine) restoreSnapshot(s *ckptSnapshot) {
	m.regs = s.regs
	m.n, m.z, m.c, m.v = s.n, s.z, s.c, s.v
	copy(m.ram, s.ram)
}

// checkpointFootprintWords is the journal size: RAM-resident code and
// data (this is where placement meets intermittence — every block moved
// to RAM grows every checkpoint and restore) plus the fixed register,
// flag and stack reserve.
func (m *Machine) checkpointFootprintWords() uint64 {
	return uint64(m.Img.RAMCodeBytes+m.Img.DataBytes+3)/4 + ckptFixedWords
}

// checkpointCost prices one journal write: flash-port store traffic.
func (m *Machine) checkpointCost() (cycles uint64, energyNJ float64) {
	cycles = m.checkpointFootprintWords() * ckptCyclesPerWord
	mw := m.Profile.FetchPower[power.Flash][isa.ClassStore]
	return cycles, float64(cycles) * m.Profile.EnergyPerCycle(mw)
}

// restoreCost prices one power-on restore: journal read-back and the
// flash→RAM copy-back, as flash-port load traffic.
func (m *Machine) restoreCost() (cycles uint64, energyNJ float64) {
	cycles = m.checkpointFootprintWords() * ckptCyclesPerWord
	mw := m.Profile.FetchPower[power.Flash][isa.ClassLoad]
	return cycles, float64(cycles) * m.Profile.EnergyPerCycle(mw)
}

// RunIntermittent executes the program under the power trace and returns
// the intermittent report. The machine must be freshly created or Reset.
// Outage instants are wall-clock; they convert to executed-cycle stop
// marks by subtracting the wall time not spent executing (overhead and
// down time so far), and an instant the wall clock has already passed —
// power failing during a restore, or back-to-back outages — fires at the
// very next instruction boundary. MaxInstrs counts replayed instructions
// too, so a trace that starves the program of progress faults instead of
// spinning forever; cancellation works exactly as in RunContext.
func (m *Machine) RunIntermittent(ctx context.Context, cfg IntermittentConfig) (*IntermittentReport, error) {
	trace := cfg.Trace
	if trace == nil {
		trace = &PowerTrace{}
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	interval := cfg.CheckpointCycles
	if interval == 0 {
		interval = DefaultCheckpointCycles
	}
	entry, ok := m.Img.Symbols[m.Img.Prog.Entry]
	if !ok {
		return nil, fmt.Errorf("sim: no entry symbol %q", m.Img.Prog.Entry)
	}

	rep := &IntermittentReport{CheckpointIntervalCycles: interval}
	var snap ckptSnapshot
	// The implicit checkpoint zero is the power-on state: flash holds
	// the whole image, so losing power before the first checkpoint just
	// replays from reset at restore cost.
	m.takeSnapshot(&snap, entry)

	pc := entry
	var extra, down uint64 // wall-clock cycles beyond executed: overhead, outage time
	nextCkpt := interval
	outIdx := 0
	for {
		// The next stop in executed-cycle space: the nearer of the
		// periodic checkpoint mark and the next outage. A tie goes to
		// the checkpoint — progress is saved just before the lights go
		// out, which is also the deterministic choice.
		stop, isOutage := nextCkpt, false
		if outIdx < len(trace.Outages) {
			at := trace.Outages[outIdx].At
			stopOut := uint64(0)
			if at > extra+down {
				stopOut = at - (extra + down)
			}
			if stopOut < stop {
				stop, isOutage = stopOut, true
			}
		}
		// A mark at or below the current count pauses with no execution
		// (an instruction overshooting one stop can land past the next).
		if stop > m.stats.Cycles {
			err := m.runSegment(ctx, pc, stop)
			if err == nil {
				break // ran to completion
			}
			if !errors.Is(err, errStopCycles) {
				return nil, err // fault, MaxInstrs, cancellation
			}
			pc = m.pausePC
		}
		if !isOutage {
			cyc, nj := m.checkpointCost()
			rep.Checkpoints++
			rep.CheckpointOverheadCycles += cyc
			rep.CheckpointEnergyNJ += nj
			extra += cyc
			m.takeSnapshot(&snap, pc)
			nextCkpt = m.stats.Cycles + interval
			continue
		}
		o := trace.Outages[outIdx]
		outIdx++
		rep.Outages++
		rep.ReplayedInstrs += m.stats.Instructions - snap.instrs
		down += o.Down
		m.restoreSnapshot(&snap)
		pc = snap.pc
		cyc, nj := m.restoreCost()
		rep.RestoreOverheadCycles += cyc
		rep.RestoreEnergyNJ += nj
		extra += cyc
		// Work after this restore is a fresh attempt: lost-work
		// accounting restarts here, not at the (older) checkpoint.
		snap.instrs = m.stats.Instructions
	}
	rep.Stats = m.stats
	rep.Stats.BlockCounts = m.blockCountsMap()
	rep.DownCycles = down
	rep.WallCycles = m.stats.Cycles + extra + down
	return rep, nil
}

// runSegment runs from pc until the executed-cycle count reaches
// stopCycles (errStopCycles, resume address in pausePC), the program
// exits (nil), or a fault/cancellation surfaces. stopCycles is always
// nonzero here: RunIntermittent never starts a segment whose mark is at
// or below the current count, and runFrom treats zero as "no stop".
func (m *Machine) runSegment(ctx context.Context, pc uint32, stopCycles uint64) error {
	m.stopCycles = stopCycles
	err := m.runFrom(ctx, pc)
	m.stopCycles = 0
	return err
}
