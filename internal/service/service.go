package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/evaluation"
	"repro/internal/mcc"
	"repro/internal/sim"
)

// Config fixes a Server's invariants.
type Config struct {
	// Workers bounds both the admission gate (concurrent requests being
	// executed; excess requests queue) and the worker pool a sweep
	// request runs its cells through. 0 means max(2, GOMAXPROCS).
	Workers int
	// MaxSessions bounds the cross-request store (0 means
	// DefaultMaxSessions).
	MaxSessions int
	// DefaultTimeout is the per-request deadline applied when a request
	// does not carry its own timeout_ms (0 = none). Expiry surfaces as
	// 504 via errs.HTTPStatus.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 = 4 MiB) — inline sources are
	// kilobytes; anything larger is a mistake or an attack.
	MaxBodyBytes int64
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
}

// Server is the placement service: the cross-request store, the
// admission gate, and the request ledger behind /statsz. Build one with
// New and serve its Handler.
type Server struct {
	cfg   Config
	store *Store
	sem   chan struct{}
	start time.Time

	draining atomic.Bool

	requests struct {
		total, inFlight              atomic.Uint64
		ok, clientErr, serverErr     atomic.Uint64
		canceled, timedOut, rejected atomic.Uint64
		notModified                  atomic.Uint64
	}
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	cfg.fill()
	return &Server{
		cfg:   cfg,
		store: NewStore(cfg.MaxSessions),
		sem:   make(chan struct{}, cfg.Workers),
		start: time.Now(),
	}
}

// Store exposes the server's cross-request session store (the loadtest
// harness reads its ledger directly when running in-process).
func (s *Server) Store() *Store { return s.store }

// StartDrain flips the server into drain mode: /healthz reports 503 so
// load balancers stop routing here, and new optimization requests are
// rejected with 503 while in-flight ones run to completion. The caller
// (cmd/flashramd) follows up with http.Server.Shutdown, which waits for
// the in-flight responses.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's routed handler:
//
//	POST /v1/optimize  one pipeline run    → Report JSON (shared schema)
//	POST /v1/sweep     many pipeline runs  → NDJSON stream, index order
//	GET  /healthz      liveness (503 while draining)
//	GET  /statsz       request + cache ledger
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

// ---------------------------------------------------------------------
// Request schema.

// OptimizeRequest is the JSON body of /v1/optimize and one cell of
// /v1/sweep: which program (a built-in BEEBS benchmark or inline mcc
// source) and the pipeline knobs the CLIs expose as flags. Zero values
// mean the pipeline defaults, exactly as for the CLIs, so the same
// logical request hits the same stage memos no matter how it is spelled.
type OptimizeRequest struct {
	// Bench names a built-in BEEBS benchmark; Source carries inline mcc
	// source (exactly one of the two must be set). Name labels inline
	// source in the report ("source" when empty).
	Bench  string `json:"bench,omitempty"`
	Source string `json:"source,omitempty"`
	Name   string `json:"name,omitempty"`

	Level  string  `json:"level,omitempty"`  // O0..Os, default O2
	Solver string  `json:"solver,omitempty"` // ilp greedy function exhaustive
	Xlimit float64 `json:"xlimit,omitempty"`
	Rspare float64 `json:"rspare,omitempty"`

	UseProfile bool   `json:"use_profile,omitempty"`
	LinkTime   bool   `json:"link_time,omitempty"`
	MaxInstrs  uint64 `json:"max_instrs,omitempty"`

	// PowerTrace schedules injected power failures for an intermittent
	// replay (DESIGN.md §6l): a harvest-profile name or an inline trace
	// spec. CheckpointCycles and CkptAware mirror the flashram flags.
	PowerTrace       string `json:"power_trace,omitempty"`
	CheckpointCycles uint64 `json:"checkpoint_cycles,omitempty"`
	CkptAware        bool   `json:"ckpt_aware,omitempty"`

	SolveMaxNodes  int `json:"solve_max_nodes,omitempty"`
	SolveMaxLPIter int `json:"solve_max_lp_iter,omitempty"`
	SolveTimeoutMS int `json:"solve_timeout_ms,omitempty"`

	// TimeoutMS bounds this request's wall clock (0 = the server
	// default). Expiry maps to 504.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SweepRequest is the JSON body of /v1/sweep.
type SweepRequest struct {
	Cells []OptimizeRequest `json:"cells"`
}

// errorDoc is the JSON error envelope.
type errorDoc struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// sweepRow is one NDJSON line of the /v1/sweep stream: the cell's index
// in the request, and either its report or its classified error.
type sweepRow struct {
	Index  int                 `json:"index"`
	Run    *evaluation.RunJSON `json:"run,omitempty"`
	Error  string              `json:"error,omitempty"`
	Status int                 `json:"status,omitempty"`
}

// resolve validates one request into a sweep cell. Every failure here is
// request-shaped (errs.ErrBadInput → 400): the pipeline was never going
// to run.
func (r *OptimizeRequest) resolve() (evaluation.Cell, error) {
	var cell evaluation.Cell
	switch {
	case r.Bench != "" && r.Source != "":
		return cell, errs.BadInput(fmt.Errorf("bench and source are mutually exclusive"))
	case r.Bench != "":
		b := beebs.Get(r.Bench)
		if b == nil {
			return cell, errs.BadInput(fmt.Errorf("unknown benchmark %q", r.Bench))
		}
		cell.Bench = b
	case r.Source != "":
		name := r.Name
		if name == "" {
			name = "source"
		}
		cell.Bench = &beebs.Benchmark{Name: name, Source: r.Source}
	default:
		return cell, errs.BadInput(fmt.Errorf("one of bench or source is required"))
	}
	levelStr := r.Level
	if levelStr == "" {
		levelStr = "O2"
	}
	level, err := mcc.ParseOptLevel(levelStr)
	if err != nil {
		return cell, errs.BadInput(err)
	}
	cell.Level = level
	switch core.Solver(r.Solver) {
	case "", core.SolverILP, core.SolverGreedy, core.SolverFunction, core.SolverExhaustive:
	default:
		return cell, errs.BadInput(fmt.Errorf("unknown solver %q", r.Solver))
	}
	if r.Xlimit < 0 || r.Rspare < 0 || r.TimeoutMS < 0 || r.SolveTimeoutMS < 0 {
		return cell, errs.BadInput(fmt.Errorf("negative knobs are invalid"))
	}
	if r.PowerTrace != "" {
		// Resolve against a placeholder horizon: profile names generate
		// lazily per program, but a malformed inline trace spec must fail
		// here (400), not inside the pipeline. ResolveTrace's errors are
		// already request-shaped; BadInput is idempotent.
		if _, err := sim.ResolveTrace(r.PowerTrace, 1<<20); err != nil {
			return cell, errs.BadInput(err)
		}
	}
	cell.Opts = evaluation.Options{
		UseProfile:       r.UseProfile,
		Solver:           core.Solver(r.Solver),
		Xlimit:           r.Xlimit,
		Rspare:           r.Rspare,
		LinkTime:         r.LinkTime,
		MaxInstrs:        r.MaxInstrs,
		PowerTrace:       r.PowerTrace,
		CheckpointCycles: r.CheckpointCycles,
		CkptAware:        r.CkptAware,
		SolveMaxNodes:    r.SolveMaxNodes,
		SolveMaxLPIter:   r.SolveMaxLPIter,
		SolveTimeout:     time.Duration(r.SolveTimeoutMS) * time.Millisecond,
	}
	return cell, nil
}

// ---------------------------------------------------------------------
// Handlers.

// requestContext applies the request's (or the server's default)
// deadline on top of the connection context.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// admit takes one execution slot, or fails when the server is draining
// or the request's deadline expires while queued. A drain rejection is
// errs.ErrUnavailable (→ 503 + Retry-After), not bad input: the request
// was fine, this replica is going away.
func (s *Server) admit(ctx context.Context) error {
	if s.draining.Load() {
		s.requests.rejected.Add(1)
		return fmt.Errorf("server is draining: %w", errs.ErrUnavailable)
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.requests.total.Add(1)
	s.requests.inFlight.Add(1)
	defer func() { s.requests.inFlight.Add(^uint64(0)) }()

	var req OptimizeRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	cell, err := req.resolve()
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The response for a given request is deterministic (the byte-
	// identity contract below), so a validator derived purely from the
	// request fingerprint is sound: same program, level and knobs mean
	// the same document, however it was solved. A client replaying a
	// request with If-None-Match skips the pipeline entirely.
	etag := optimizeETag(cell)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		s.countStatus(http.StatusNotModified)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	if s.draining.Load() {
		s.requests.rejected.Add(1)
		s.writeError(w, fmt.Errorf("server is draining: %w", errs.ErrUnavailable))
		return
	}
	if err := s.admit(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()

	run, err := s.runCell(ctx, cell)
	if err != nil {
		s.writeError(w, err)
		return
	}
	doc := evaluation.NewRunJSON(run)
	s.countStatus(http.StatusOK)
	w.Header().Set("ETag", etag)
	// Byte-identity contract: this is exactly the document (and exactly
	// the encoding — two-space indent, trailing newline) `flashram
	// -json` writes for the same request, cold or warm.
	writeJSON(w, http.StatusOK, doc)
}

// optimizeETag fingerprints a resolved /v1/optimize request into a
// strong entity tag: the same content-addressed hash scheme the session
// store keys on (core.SessionKey), extended over every knob that can
// reach the emitted document. TimeoutMS is deliberately excluded — it
// changes whether the request finishes, never what it says.
func optimizeETag(cell evaluation.Cell) string {
	o := cell.Opts
	return `"` + core.SessionKey(
		"optimize/v1",
		cell.Bench.Name, cell.Bench.Source, cell.Level.String(),
		string(o.Solver),
		fmt.Sprintf("%g/%g", o.Xlimit, o.Rspare),
		fmt.Sprintf("%v/%v/%d", o.UseProfile, o.LinkTime, o.MaxInstrs),
		// The trace spec is its own part (it is free-form text; folding it
		// into a printf row could collide with a crafted spec), the small
		// intermittent knobs share one.
		o.PowerTrace,
		fmt.Sprintf("%d/%v", o.CheckpointCycles, o.CkptAware),
		fmt.Sprintf("%d/%d/%d", o.SolveMaxNodes, o.SolveMaxLPIter, int64(o.SolveTimeout)),
	) + `"`
}

// etagMatches implements the If-None-Match comparison: a comma-
// separated validator list, "*" matching anything, weak validators
// compared by opaque tag (RFC 9110's weak comparison — the document is
// deterministic, so weak and strong coincide here).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, tok := range strings.Split(header, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "*" {
			return true
		}
		if strings.TrimPrefix(tok, "W/") == etag {
			return true
		}
	}
	return false
}

// runCell executes one pipeline run against the shared store, under the
// sweep workers' panic isolation: a panicking request costs one 500,
// never the process.
func (s *Server) runCell(ctx context.Context, cell evaluation.Cell) (*evaluation.Run, error) {
	var run *evaluation.Run
	err := evaluation.Isolated(func() error {
		// The daemon's sessions solve warm: requests at neighbouring
		// constraints (a client walking a trade-off curve) reuse each
		// other's solve state, and the emitted documents are identical
		// either way.
		sess, err := s.store.GetSession(
			core.SessionKey(cell.Bench.Source, cell.Level.String()),
			func() (*core.Session, error) { return evaluation.NewWarmSession(cell.Bench, cell.Level) })
		if err != nil {
			// The session build is compile + verify: its failures are
			// request-shaped (the source does not compile), not server
			// faults.
			return errs.BadInput(err)
		}
		rep, err := sess.Optimize(ctx, cell.Opts.Core())
		if err != nil {
			return err
		}
		run = &evaluation.Run{Bench: cell.Bench.Name, Level: cell.Level, Report: rep}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return run, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.requests.total.Add(1)
	s.requests.inFlight.Add(1)
	defer func() { s.requests.inFlight.Add(^uint64(0)) }()

	var req SweepRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Cells) == 0 {
		s.writeError(w, errs.BadInput(fmt.Errorf("sweep needs at least one cell")))
		return
	}
	cells := make([]evaluation.Cell, len(req.Cells))
	var timeoutMS int
	for i := range req.Cells {
		cell, err := req.Cells[i].resolve()
		if err != nil {
			s.writeError(w, errs.BadInput(fmt.Errorf("cell %d: %w", i, err)))
			return
		}
		cells[i] = cell
		if req.Cells[i].TimeoutMS > timeoutMS {
			timeoutMS = req.Cells[i].TimeoutMS
		}
	}
	ctx, cancel := s.requestContext(r, timeoutMS)
	defer cancel()

	if s.draining.Load() {
		s.requests.rejected.Add(1)
		s.writeError(w, fmt.Errorf("server is draining: %w", errs.ErrUnavailable))
		return
	}
	// One admission slot per sweep request; the cells then fan out over
	// the sweep's own bounded pool, whose sessions come from — and stay
	// in — the cross-request store.
	if err := s.admit(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()

	sw := &evaluation.Sweep{Workers: s.cfg.Workers, Cache: s.store}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// The pool delivers results as cells finish (any order); rows are
	// streamed strictly in index order, each flushed as soon as its
	// predecessors are out, so a slow cell delays only its successors.
	type doneMsg struct {
		i   int
		run *evaluation.Run
		err error
	}
	results := make(chan doneMsg)
	go func() {
		sw.RunCells(ctx, cells, func(i int, run *evaluation.Run, err error) {
			results <- doneMsg{i: i, run: run, err: err}
		})
		close(results)
	}()
	pending := make(map[int]doneMsg, len(cells))
	next := 0
	failures := 0
	for msg := range results {
		pending[msg.i] = msg
		for {
			m, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			row := sweepRow{Index: m.i}
			if m.err != nil {
				failures++
				row.Error = m.err.Error()
				row.Status = errs.HTTPStatus(m.err)
			} else {
				doc := evaluation.NewRunJSON(m.run)
				row.Run = &doc
			}
			line, err := json.Marshal(row)
			if err != nil {
				line, _ = json.Marshal(sweepRow{Index: m.i, Error: err.Error(), Status: http.StatusInternalServerError})
			}
			w.Write(append(line, '\n'))
			if flusher != nil {
				flusher.Flush()
			}
			next++
		}
	}
	// The stream already committed a 200 header; the per-row statuses
	// carry the failures. The ledger still records how the sweep went.
	if failures == 0 {
		s.countStatus(http.StatusOK)
	} else {
		s.countStatus(http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StatsDoc is the /statsz document: the request ledger, the store's
// hit/miss/eviction ledger, and the same session_stats schema
// `beebsbench -json` emits — one set of field names across the sweep
// CLIs and the service.
type StatsDoc struct {
	UptimeMS float64 `json:"uptime_ms"`
	Workers  int     `json:"workers"`
	Draining bool    `json:"draining"`

	Requests RequestStats `json:"requests"`

	// Store is the session-granular (cross-request) ledger; the
	// SessionStats totals fold it together with the per-stage memos.
	Store        core.CacheStats       `json:"store"`
	SessionStats evaluation.SweepStats `json:"session_stats"`
	// SolverStats is the warm-start solver ledger aggregated over every
	// session the store has held — the same schema `beebsbench -json`
	// emits, so sweep-local and cross-request solver reuse read alike.
	SolverStats core.SolverStats `json:"solver_stats"`
}

// RequestStats counts requests by outcome class.
type RequestStats struct {
	Total    uint64 `json:"total"`
	InFlight uint64 `json:"in_flight"`
	// OK counts 2xx; ClientError 4xx; ServerError 5xx; Canceled the
	// 499s (client went away); Rejected the drain-mode 503s (also in
	// ServerError); TimedOut the 504s (also in ServerError);
	// NotModified the conditional-request 304s (also in OK — the client
	// got exactly what it asked for, without a pipeline run).
	OK          uint64 `json:"ok"`
	ClientError uint64 `json:"client_error"`
	ServerError uint64 `json:"server_error"`
	Canceled    uint64 `json:"canceled"`
	TimedOut    uint64 `json:"timed_out"`
	Rejected    uint64 `json:"rejected"`
	NotModified uint64 `json:"not_modified"`
}

// Stats snapshots the server's ledger (the /statsz document).
func (s *Server) Stats() StatsDoc {
	cs := s.store.CacheStats()
	return StatsDoc{
		UptimeMS: float64(time.Since(s.start).Microseconds()) / 1e3,
		Workers:  s.cfg.Workers,
		Draining: s.draining.Load(),
		Requests: RequestStats{
			Total:       s.requests.total.Load(),
			InFlight:    s.requests.inFlight.Load(),
			OK:          s.requests.ok.Load(),
			ClientError: s.requests.clientErr.Load(),
			ServerError: s.requests.serverErr.Load(),
			Canceled:    s.requests.canceled.Load(),
			TimedOut:    s.requests.timedOut.Load(),
			Rejected:    s.requests.rejected.Load(),
			NotModified: s.requests.notModified.Load(),
		},
		Store:        cs,
		SessionStats: evaluation.NewSweepStats(cs.Hits, cs.Misses, s.store.StageStats()),
		SolverStats:  s.store.SolverStats(),
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// ---------------------------------------------------------------------
// Plumbing.

// decode reads a strict JSON body: unknown fields are bad input, so a
// typo'd knob fails loudly instead of silently running the default.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errs.BadInput(fmt.Errorf("decoding request: %w", err))
	}
	return nil
}

func (s *Server) countStatus(status int) {
	switch {
	case status == errs.StatusClientClosedRequest:
		s.requests.canceled.Add(1)
	case status == http.StatusNotModified:
		s.requests.ok.Add(1)
		s.requests.notModified.Add(1)
	case status >= 200 && status < 300:
		s.requests.ok.Add(1)
	case status >= 400 && status < 500:
		s.requests.clientErr.Add(1)
	default:
		s.requests.serverErr.Add(1)
		if status == http.StatusGatewayTimeout {
			s.requests.timedOut.Add(1)
		}
	}
}

// writeError classifies err through errs.HTTPStatus and writes the
// error envelope. Retriable rejections — drain 503s and deadline 504s —
// carry a Retry-After header so well-behaved clients back off instead
// of hammering a replica that is shutting down or saturated.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := errs.HTTPStatus(err)
	s.countStatus(status)
	if status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorDoc{Error: err.Error(), Status: status})
}

// writeJSON writes v with the CLIs' encoder settings (two-space indent,
// trailing newline) — the byte-identity anchor for /v1/optimize.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection owns delivery
}
