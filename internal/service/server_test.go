package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/beebs"
	"repro/internal/evaluation"
	"repro/internal/mcc"
)

const tinySource = `int result[1];
int main() {
    int i, acc = 0;
    for (i = 0; i < 32; i++) acc += i * i;
    result[0] = acc;
    return 0;
}
`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	req := OptimizeRequest{Bench: "crc32", Level: "O2"}

	status, cold := postJSON(t, ts.URL+"/v1/optimize", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, cold)
	}
	var doc evaluation.RunJSON
	if err := json.Unmarshal(cold, &doc); err != nil {
		t.Fatalf("response is not a RunJSON document: %v", err)
	}
	if doc.Bench != "crc32" || doc.Level != "O2" {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Baseline.Cycles == 0 || doc.Optimized.Cycles == 0 {
		t.Fatalf("empty metrics: %+v", doc)
	}

	// Warm serve: byte-identical to the cold one.
	status, warm := postJSON(t, ts.URL+"/v1/optimize", req)
	if status != http.StatusOK || !bytes.Equal(cold, warm) {
		t.Fatalf("warm serve differs (status %d):\ncold %s\nwarm %s", status, cold, warm)
	}

	// CLI identity: the exact bytes `flashram -json` would emit for the
	// same request — same document, same encoder settings.
	b := beebs.Get("crc32")
	sess, err := evaluation.NewSession(b, mcc.O2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Optimize(t.Context(), evaluation.Options{}.Core())
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	enc := json.NewEncoder(&cli)
	enc.SetIndent("", "  ")
	if err := enc.Encode(evaluation.NewRunJSON(&evaluation.Run{Bench: "crc32", Level: mcc.O2, Report: rep})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, cli.Bytes()) {
		t.Fatalf("service document differs from the CLI document:\nservice %s\ncli %s", cold, cli.Bytes())
	}
}

func TestOptimizeConditionalRequest(t *testing.T) {
	srv, ts := newTestServer(t)
	req := OptimizeRequest{Bench: "crc32", Level: "O2"}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	post := func(inm string) *http.Response {
		t.Helper()
		hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		if inm != "" {
			hreq.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	first := post("")
	io.Copy(io.Discard, first.Body)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", first.StatusCode)
	}
	etag := first.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("ETag = %q, want a quoted validator", etag)
	}

	// Replaying the identical request with the validator skips the
	// pipeline: 304, no body, same tag.
	for _, inm := range []string{etag, "W/" + etag, `"stale-tag", ` + etag, "*"} {
		resp := post(inm)
		got, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status = %d, want 304 (%s)", inm, resp.StatusCode, got)
		}
		if resp.Header.Get("ETag") != etag {
			t.Fatalf("If-None-Match %q: ETag = %q, want %q", inm, resp.Header.Get("ETag"), etag)
		}
		if len(got) != 0 {
			t.Fatalf("304 carried a body: %s", got)
		}
	}

	// A stale validator re-runs the request and re-sends the document.
	resp := post(`"stale-tag"`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != etag {
		t.Fatalf("stale validator: status %d etag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}
	io.Copy(io.Discard, resp.Body)

	// A different request fingerprint gets a different tag even when the
	// client presents the old one.
	other, err := json.Marshal(OptimizeRequest{Bench: "crc32", Level: "O2", Rspare: 256})
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", bytes.NewReader(other))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("If-None-Match", etag)
	oresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer oresp.Body.Close()
	io.Copy(io.Discard, oresp.Body)
	if oresp.StatusCode != http.StatusOK {
		t.Fatalf("different knobs under old validator: status = %d, want 200", oresp.StatusCode)
	}
	if oetag := oresp.Header.Get("ETag"); oetag == etag || oetag == "" {
		t.Fatalf("different knobs share a validator: %q", oetag)
	}

	stats := srv.Stats()
	if stats.Requests.NotModified != 4 {
		t.Fatalf("not_modified = %d, want 4", stats.Requests.NotModified)
	}
	if stats.Requests.OK != 3+4 { // three 200s + four 304s
		t.Fatalf("ok = %d, want 7", stats.Requests.OK)
	}
}

func TestOptimizeInlineSource(t *testing.T) {
	_, ts := newTestServer(t)
	status, body := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Source: tinySource, Name: "tiny", Level: "O2"})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var doc evaluation.RunJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "tiny" {
		t.Fatalf("inline source label = %q, want %q", doc.Bench, "tiny")
	}
}

func TestBadRequestsMapTo400(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"unknown bench", `{"bench":"nope"}`},
		{"missing program", `{}`},
		{"bench and source", `{"bench":"crc32","source":"int main(){return 0;}"}`},
		{"bad level", `{"bench":"crc32","level":"O9"}`},
		{"bad solver", `{"bench":"crc32","solver":"quantum"}`},
		{"unknown field", `{"bench":"crc32","xlimt":2}`},
		{"negative timeout", `{"bench":"crc32","timeout_ms":-5}`},
		{"uncompilable source", `{"source":"int main( {"}`},
		{"malformed json", `{"bench":`},
		{"non-numeric power trace", `{"bench":"crc32","power_trace":"nonsense trace"}`},
		{"zero-length outage", `{"bench":"crc32","power_trace":"10 0\n"}`},
		{"overlapping outages", `{"bench":"crc32","power_trace":"50 10\n20 5\n"}`},
		{"malformed trace json", `{"bench":"crc32","power_trace":"{\"outages\":[{\"at\":1}]}"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		var ed errorDoc
		if err := json.Unmarshal(body, &ed); err != nil || ed.Error == "" || ed.Status != http.StatusBadRequest {
			t.Errorf("%s: malformed error envelope %s", tc.name, body)
		}
	}
}

// A power-trace request runs the intermittent replay and reports it in
// the shared document schema; the trace knobs reach the ETag, so a
// trace-free response can never be served for a traced request.
func TestOptimizePowerTrace(t *testing.T) {
	_, ts := newTestServer(t)
	plain := OptimizeRequest{Bench: "crc32", Level: "O2"}
	traced := OptimizeRequest{Bench: "crc32", Level: "O2", PowerTrace: "steady", CkptAware: true}

	status, body := postJSON(t, ts.URL+"/v1/optimize", traced)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var doc evaluation.RunJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Intermittent == nil {
		t.Fatalf("traced run carries no intermittent section: %s", body)
	}
	if doc.Intermittent.Outages == 0 || !doc.Intermittent.CkptAware {
		t.Fatalf("intermittent section = %+v", doc.Intermittent)
	}

	if status, body := postJSON(t, ts.URL+"/v1/optimize", plain); status != http.StatusOK {
		t.Fatalf("plain status = %d: %s", status, body)
	} else {
		var pd evaluation.RunJSON
		if err := json.Unmarshal(body, &pd); err != nil {
			t.Fatal(err)
		}
		if pd.Intermittent != nil {
			t.Fatalf("trace-free run grew an intermittent section: %+v", pd.Intermittent)
		}
	}

	if optimizeETag(mustResolve(t, traced)) == optimizeETag(mustResolve(t, plain)) {
		t.Fatal("traced and trace-free requests share an ETag")
	}
	ckpt := traced
	ckpt.CheckpointCycles = 4096
	if optimizeETag(mustResolve(t, ckpt)) == optimizeETag(mustResolve(t, traced)) {
		t.Fatal("checkpoint interval does not reach the ETag")
	}
}

func mustResolve(t *testing.T, r OptimizeRequest) evaluation.Cell {
	t.Helper()
	cell, err := r.resolve()
	if err != nil {
		t.Fatal(err)
	}
	return cell
}

// Retriable rejections carry Retry-After; terminal ones must not — a
// client should not re-send a request the server called malformed.
func TestRetryAfterOnRetriableRejections(t *testing.T) {
	cases := []struct {
		name       string
		prep       func(srv *Server)
		body       string
		status     int
		retryAfter bool
	}{
		{
			name:       "drain 503",
			prep:       func(srv *Server) { srv.StartDrain() },
			body:       `{"bench":"crc32"}`,
			status:     http.StatusServiceUnavailable,
			retryAfter: true,
		},
		{
			name:       "deadline 504",
			body:       `{"bench":"float_matmult","level":"O0","timeout_ms":1}`,
			status:     http.StatusGatewayTimeout,
			retryAfter: true,
		},
		{
			name:       "bad input 400",
			body:       `{"bench":"crc32","power_trace":"10 0\n"}`,
			status:     http.StatusBadRequest,
			retryAfter: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts := newTestServer(t)
			if tc.prep != nil {
				tc.prep(srv)
			}
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if got := resp.Header.Get("Retry-After") != ""; got != tc.retryAfter {
				t.Fatalf("Retry-After present = %v, want %v (header %q)", got, tc.retryAfter, resp.Header.Get("Retry-After"))
			}
			var ed errorDoc
			if err := json.Unmarshal(body, &ed); err != nil || ed.Status != tc.status {
				t.Fatalf("malformed error envelope: %s", body)
			}
		})
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	_, ts := newTestServer(t)
	// 1 ms against a cold cell: the deadline expires before the pipeline
	// can finish compiling and simulating, and the request reports 504.
	status, body := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Bench: "float_matmult", Level: "O0", TimeoutMS: 1})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", status, body)
	}
	// The cancelled computation must not have poisoned the memo: the
	// same cell with a sane deadline completes.
	status, body = postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Bench: "float_matmult", Level: "O0", TimeoutMS: 60000})
	if status != http.StatusOK {
		t.Fatalf("retry after expiry: status = %d, want 200: %s", status, body)
	}
}

func TestSweepEndpointStreamsInOrder(t *testing.T) {
	_, ts := newTestServer(t)
	req := SweepRequest{Cells: []OptimizeRequest{
		{Bench: "crc32", Level: "O2"},
		{Bench: "sha", Level: "O2"},
		{Bench: "crc32", Level: "O2"}, // identical to cell 0: same document
		{Bench: "crc32", Level: "Os"},
	}}
	b, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var rows []sweepRow
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row sweepRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(req.Cells) {
		t.Fatalf("got %d rows, want %d", len(rows), len(req.Cells))
	}
	for i, row := range rows {
		if row.Index != i {
			t.Fatalf("row %d has index %d (stream out of order)", i, row.Index)
		}
		if row.Error != "" || row.Run == nil {
			t.Fatalf("row %d failed: %+v", i, row)
		}
	}
	// Identical cells produce identical documents.
	r0, _ := json.Marshal(rows[0].Run)
	r2, _ := json.Marshal(rows[2].Run)
	if !bytes.Equal(r0, r2) {
		t.Fatalf("identical cells diverged:\n%s\n%s", r0, r2)
	}
	if bytes.Equal(r0, mustMarshal(t, rows[3].Run)) {
		t.Fatal("distinct cells produced the same document")
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSweepRejectsBadCellUpfront(t *testing.T) {
	_, ts := newTestServer(t)
	status, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Cells: []OptimizeRequest{
		{Bench: "crc32"},
		{Bench: "nope"},
	}})
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", status, body)
	}
	if !strings.Contains(string(body), "cell 1") {
		t.Fatalf("error does not attribute the bad cell: %s", body)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	srv.StartDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining healthz = %d %s", resp.StatusCode, body)
	}
	status, body2 := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Bench: "crc32"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("optimize while draining = %d: %s", status, body2)
	}
}

func TestStatszLedger(t *testing.T) {
	_, ts := newTestServer(t)
	const repeats = 6
	for i := 0; i < repeats; i++ {
		if status, body := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Bench: "crc32"}); status != http.StatusOK {
			t.Fatalf("optimize = %d: %s", status, body)
		}
	}
	postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Bench: "nope"})

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc StatsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Requests.Total != repeats+1 || doc.Requests.OK != repeats || doc.Requests.ClientError != 1 {
		t.Fatalf("request ledger = %+v", doc.Requests)
	}
	if doc.Store.Misses != 1 || doc.Store.Hits != repeats-1 || doc.Store.Entries != 1 {
		t.Fatalf("store ledger = %+v", doc.Store)
	}
	// The service ledger carries the exact sweep-CLI schema: session
	// hits/misses mirror the store and the totals fold in the stage memos.
	if doc.SessionStats.SessionHits != doc.Store.Hits || doc.SessionStats.SessionMisses != doc.Store.Misses {
		t.Fatalf("session_stats diverges from store: %+v vs %+v", doc.SessionStats, doc.Store)
	}
	if doc.SessionStats.Totals.HitRate <= 0.5 {
		t.Fatalf("repeated identical requests should dominate the totals hit rate: %+v", doc.SessionStats.Totals)
	}
	if doc.Workers != 4 || doc.Draining {
		t.Fatalf("service section = %+v", doc)
	}
}

func TestMethodRouting(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/optimize = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/nope", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /nope = %d, want 404", resp.StatusCode)
	}
}

func TestLoadTestHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness in -short mode")
	}
	rep, err := LoadTest(t.Context(), LoadConfig{N: 60, Concurrency: 12, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}
	if rep.HitRate <= 0.5 {
		t.Fatalf("hit rate %.2f on a repeated mix", rep.HitRate)
	}
	if fmt.Sprint(rep) == "" {
		t.Fatal("empty ledger rendering")
	}
}
