// Package service is the placement-as-a-service subsystem: a
// long-running HTTP/JSON daemon (cmd/flashramd) wrapping core.Session,
// with a content-addressed artifact store shared across requests and
// tenants, an admission/worker layer reusing the evaluation sweep's
// panic isolation, and a load-test harness that publishes the
// hit-rate/latency ledger EXPERIMENTS.md records.
//
// The cache architecture is two-level, mirroring PR 3's memo keys
// exactly. The outer level — the Store here — content-addresses whole
// Sessions on core.SessionKey(source, level): a hash of the inputs that
// reach the compiler. The inner level is the Session's own per-stage
// memos, keyed on exactly the knobs that reach each stage (placement,
// budgets, tracing). A request's effective stage key is therefore
// (program hash, stage knobs), so identical stage inputs from different
// requests, connections, or tenants land on one shared computation —
// the same guarantee the in-process sweeps already had, lifted across
// requests.
package service

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// DefaultMaxSessions bounds the store when the configuration leaves it
// zero. Sessions retain compiled programs, baseline simulations and
// solved placements; ~64 programs is a few hundred MB worst-case on the
// BEEBS-sized inputs the daemon serves, and the LRU keeps the working
// set hot under churn.
const DefaultMaxSessions = 64

// Store is the daemon's cross-request artifact cache: a bounded,
// least-recently-used map from content-addressed program keys to live
// core.Sessions. It implements core.SessionCache, so an
// evaluation.Sweep pointed at it shares sessions with every other
// request the daemon has served.
//
// Builds are single-flight per key: the first request computes, every
// concurrent identical request blocks on that computation and shares
// the (immutable) result — the cross-request analogue of the Session's
// own stage memos. A failed build is not retained, so a transiently
// broken request cannot poison the key for later callers.
type Store struct {
	mu      sync.Mutex
	max     int
	entries map[string]*storeEntry
	lru     *list.List // front = most recently used

	hits, misses, evictions uint64

	// retired accumulates the stage counters of evicted sessions
	// (snapshotted at eviction), so the /statsz ledger stays cumulative
	// over the daemon's lifetime rather than resetting when the LRU
	// turns over. retiredSolver does the same for the warm-start solver
	// counters.
	retired       core.SessionStats
	retiredSolver core.SolverStats
}

type storeEntry struct {
	key  string
	elem *list.Element
	once sync.Once
	sess *core.Session
	err  error
	// built is set (under the store lock) once the flight finished
	// successfully; only built entries are eviction candidates, so a
	// key's single-flight guarantee holds even under capacity pressure.
	built bool
}

// NewStore returns a store retaining at most max sessions (<= 0 means
// DefaultMaxSessions).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultMaxSessions
	}
	return &Store{
		max:     max,
		entries: make(map[string]*storeEntry),
		lru:     list.New(),
	}
}

// GetSession implements core.SessionCache: return the session for key,
// building it at most once per live key.
func (s *Store) GetSession(key string, build func() (*core.Session, error)) (*core.Session, error) {
	s.mu.Lock()
	e := s.entries[key]
	if e != nil {
		s.hits++
		s.lru.MoveToFront(e.elem)
	} else {
		s.misses++
		e = &storeEntry{key: key}
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
	}
	s.mu.Unlock()

	e.once.Do(func() {
		e.sess, e.err = build()
		s.mu.Lock()
		defer s.mu.Unlock()
		if e.err != nil {
			// Drop the failed flight: waiters of this flight still see
			// the error, but the next request with this key retries.
			if s.entries[key] == e {
				delete(s.entries, key)
				s.lru.Remove(e.elem)
			}
			return
		}
		e.built = true
		s.evictLocked()
	})
	return e.sess, e.err
}

// evictLocked trims least-recently-used built entries until the store is
// within its bound. In-flight entries are never evicted (that would
// break single-flight); if every entry is mid-build the store briefly
// exceeds its bound and settles as flights land.
func (s *Store) evictLocked() {
	for len(s.entries) > s.max {
		victim := (*storeEntry)(nil)
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*storeEntry); e.built {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		delete(s.entries, victim.key)
		s.lru.Remove(victim.elem)
		s.evictions++
		if victim.sess != nil {
			// Snapshot the evicted session's stage ledger so the
			// cumulative totals survive the eviction. A request still
			// holding the session finishes fine — sessions are self-
			// contained — but work it does after this snapshot is not
			// re-counted.
			s.retired.Add(victim.sess.Stats())
			s.retiredSolver.Add(victim.sess.SolverStats())
		}
	}
}

// CacheStats implements core.SessionCache: the hit/miss/eviction ledger.
func (s *Store) CacheStats() core.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.CacheStats{
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Entries:   len(s.entries),
	}
}

// StageStats aggregates the per-stage memo counters across every live
// session plus the retained snapshots of evicted ones — the cumulative
// stage half of the /statsz ledger.
func (s *Store) StageStats() core.SessionStats {
	s.mu.Lock()
	live := make([]*core.Session, 0, len(s.entries))
	for _, e := range s.entries {
		if e.built && e.sess != nil {
			live = append(live, e.sess)
		}
	}
	out := s.retired
	s.mu.Unlock()
	for _, sess := range live {
		out.Add(sess.Stats())
	}
	return out
}

// SolverStats aggregates the warm-start solver counters across every
// live session plus the retained snapshots of evicted ones — the
// `solver_stats` half of the /statsz ledger.
func (s *Store) SolverStats() core.SolverStats {
	s.mu.Lock()
	live := make([]*core.Session, 0, len(s.entries))
	for _, e := range s.entries {
		if e.built && e.sess != nil {
			live = append(live, e.sess)
		}
	}
	out := s.retiredSolver
	s.mu.Unlock()
	for _, sess := range live {
		out.Add(sess.SolverStats())
	}
	return out
}
