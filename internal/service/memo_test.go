package service

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/evaluation"
	"repro/internal/mcc"
)

// TestCrossRequestMemoCorrectness is the cross-request sharing
// contract: N concurrent "requests" (distinct goroutines, as distinct
// tenants' connections would be) with identical stage inputs must
// produce byte-identical Report documents while executing every
// pipeline stage exactly once. It runs under -race in CI.
func TestCrossRequestMemoCorrectness(t *testing.T) {
	store := NewStore(0)
	b := beebs.Get("crc32")
	key := core.SessionKey(b.Source, mcc.O2.String())
	opts := evaluation.Options{Xlimit: 1.5}

	const requests = 8
	docs := make([][]byte, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := store.GetSession(key, func() (*core.Session, error) {
				return evaluation.NewSession(b, mcc.O2)
			})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			rep, err := sess.Optimize(t.Context(), opts.Core())
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			doc := evaluation.NewRunJSON(&evaluation.Run{Bench: b.Name, Level: mcc.O2, Report: rep})
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			docs[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i := 1; i < requests; i++ {
		if !bytes.Equal(docs[i], docs[0]) {
			t.Fatalf("request %d produced a different document:\n%s\nvs\n%s", i, docs[i], docs[0])
		}
	}

	// Exactly one execution of every stage: one compile (store miss) and
	// one miss per stage memo; every other lookup a hit.
	cs := store.CacheStats()
	if cs.Misses != 1 || cs.Hits != requests-1 {
		t.Fatalf("store ledger = %+v, want 1 miss / %d hits", cs, requests-1)
	}
	st := store.StageStats()
	// (The cfg counter covers two memos — graphs and the derived spare-RAM
	// budget — so it is asserted via SimRuns below rather than here.)
	for name, stage := range map[string]core.StageStats{
		"baseline": st.Baseline, "freq": st.Freq,
		"model": st.Model, "solve": st.Solve, "transform": st.Transform,
		"optrun": st.OptRun, "optimize": st.Optimize,
	} {
		if stage.Misses != 1 {
			t.Errorf("stage %s executed %d times, want exactly 1 (ledger %+v)", name, stage.Misses, stage)
		}
	}
	if st.SimRuns != 2 {
		t.Errorf("sim runs = %d, want exactly 2 (baseline + optimized) across all %d requests", st.SimRuns, requests)
	}
}
