package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/beebs"
)

// LoadConfig drives one load-test run against the service: N requests
// drawn round-robin from a repeated workload mix, all of them in flight
// at once up to Concurrency. With an empty BaseURL the harness boots an
// in-process server (the -selftest path); pointing BaseURL at a running
// daemon load-tests it over real sockets (the CI smoke).
type LoadConfig struct {
	N           int    // total requests (0 = 1000)
	Concurrency int    // concurrent client requests (0 = N, i.e. all at once)
	BaseURL     string // target daemon; "" boots an in-process server

	// Workers/MaxSessions configure the in-process server (ignored with
	// BaseURL set).
	Workers     int
	MaxSessions int

	// Mix is the request workload cycled through (empty = every BEEBS
	// benchmark at O2 and Os, plus a profiled and a tight-rspare variant
	// — a mixed, repeated workload whose repeats must hit the store).
	Mix []OptimizeRequest
}

// DefaultMix is the standard repeated workload: all ten BEEBS
// benchmarks at both paper levels, plus two knob variants that exercise
// distinct stage keys inside shared sessions.
func DefaultMix() []OptimizeRequest {
	var mix []OptimizeRequest
	for _, b := range beebs.All() {
		mix = append(mix,
			OptimizeRequest{Bench: b.Name, Level: "O2"},
			OptimizeRequest{Bench: b.Name, Level: "Os"})
	}
	mix = append(mix,
		OptimizeRequest{Bench: "sha", Level: "O2", UseProfile: true},
		OptimizeRequest{Bench: "crc32", Level: "O2", Rspare: 512})
	return mix
}

// Percentiles summarizes a latency distribution, in milliseconds.
type Percentiles struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// LoadReport is the published ledger of one load-test run — the table
// EXPERIMENTS.md records and the CI smoke asserts on.
type LoadReport struct {
	N           int `json:"n"`
	Concurrency int `json:"concurrency"`
	UniqueCells int `json:"unique_cells"`

	OK           int         `json:"ok"`
	NonOK        int         `json:"non_ok"`
	Dropped      int         `json:"dropped"` // no HTTP response at all
	StatusCounts map[int]int `json:"status_counts"`

	Latency    Percentiles `json:"latency"`
	WallMS     float64     `json:"wall_ms"`
	Throughput float64     `json:"requests_per_s"`

	// Store deltas over the run: the cross-request session ledger and
	// the cumulative (session + stage memo) hit rate.
	StoreHits      uint64  `json:"store_hits"`
	StoreMisses    uint64  `json:"store_misses"`
	StoreEvictions uint64  `json:"store_evictions"`
	HitRate        float64 `json:"hit_rate"`
	TotalsHitRate  float64 `json:"totals_hit_rate"`

	// ColdWarmIdentical reports whether the probe request returned
	// byte-identical documents served cold (first ever) and warm (after
	// the full run) — the determinism contract of the report schema.
	ColdWarmIdentical bool `json:"cold_warm_identical"`
}

// String renders the ledger the way EXPERIMENTS.md records it.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadtest: %d requests, %d concurrent, %d unique cells\n", r.N, r.Concurrency, r.UniqueCells)
	fmt.Fprintf(&b, "  responses : %d ok, %d non-2xx, %d dropped\n", r.OK, r.NonOK, r.Dropped)
	fmt.Fprintf(&b, "  latency   : p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max %.2f ms (mean %.2f)\n",
		r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.Max, r.Latency.Mean)
	fmt.Fprintf(&b, "  wall clock: %.0f ms (%.0f req/s)\n", r.WallMS, r.Throughput)
	fmt.Fprintf(&b, "  store     : %d hits, %d misses, %d evictions — %.1f%% session hit rate, %.1f%% with stage memos\n",
		r.StoreHits, r.StoreMisses, r.StoreEvictions, 100*r.HitRate, 100*r.TotalsHitRate)
	fmt.Fprintf(&b, "  cold==warm: %v (byte-identical probe documents)\n", r.ColdWarmIdentical)
	return b.String()
}

// Check enforces the acceptance bar: every request answered 2xx, none
// dropped, the repeated workload hit the cross-request store more than
// half the time, and the probe document identical cold and warm.
func (r *LoadReport) Check() error {
	switch {
	case r.Dropped > 0:
		return fmt.Errorf("loadtest: %d requests dropped without a response", r.Dropped)
	case r.NonOK > 0:
		return fmt.Errorf("loadtest: %d non-2xx responses %v", r.NonOK, r.StatusCounts)
	case !r.ColdWarmIdentical:
		return fmt.Errorf("loadtest: probe documents differ between cold and warm serves")
	case r.N > 2*r.UniqueCells && r.HitRate <= 0.5:
		return fmt.Errorf("loadtest: cross-request hit rate %.1f%% on a repeated workload (want > 50%%)", 100*r.HitRate)
	}
	return nil
}

// LoadTest runs the harness. ctx bounds the whole run.
func LoadTest(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.N <= 0 {
		cfg.N = 1000
	}
	if cfg.Concurrency <= 0 || cfg.Concurrency > cfg.N {
		cfg.Concurrency = cfg.N
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}

	base := cfg.BaseURL
	if base == "" {
		srv := New(Config{Workers: cfg.Workers, MaxSessions: cfg.MaxSessions})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency,
		MaxIdleConnsPerHost: cfg.Concurrency,
	}}
	defer client.CloseIdleConnections()

	before, err := fetchStats(ctx, client, base)
	if err != nil {
		return nil, fmt.Errorf("loadtest: statsz before run: %w", err)
	}

	bodies := make([][]byte, len(mix))
	for i := range mix {
		b, err := json.Marshal(mix[i])
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	// Cold probe: the first-ever serve of mix[0]; compared byte-for-byte
	// against the warm serve after the run.
	coldStatus, coldBody, _, err := post(ctx, client, base, bodies[0])
	if err != nil {
		return nil, fmt.Errorf("loadtest: cold probe: %w", err)
	}
	if coldStatus != http.StatusOK {
		return nil, fmt.Errorf("loadtest: cold probe answered %d: %s", coldStatus, coldBody)
	}

	rep := &LoadReport{
		N:            cfg.N,
		Concurrency:  cfg.Concurrency,
		UniqueCells:  len(mix),
		StatusCounts: make(map[int]int),
	}
	latencies := make([]float64, cfg.N)
	statuses := make([]int, cfg.N)
	droppedFlags := make([]bool, cfg.N)

	start := time.Now()
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				status, _, dt, err := post(ctx, client, base, bodies[i%len(bodies)])
				latencies[i] = float64(dt.Microseconds()) / 1e3
				if err != nil {
					droppedFlags[i] = true
					continue
				}
				statuses[i] = status
			}
		}()
	}
	for i := 0; i < cfg.N; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	rep.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	if rep.WallMS > 0 {
		rep.Throughput = float64(cfg.N) / (rep.WallMS / 1e3)
	}

	for i := 0; i < cfg.N; i++ {
		switch {
		case droppedFlags[i]:
			rep.Dropped++
		case statuses[i] >= 200 && statuses[i] < 300:
			rep.OK++
			rep.StatusCounts[statuses[i]]++
		default:
			rep.NonOK++
			rep.StatusCounts[statuses[i]]++
		}
	}
	rep.Latency = percentiles(latencies)

	// Warm probe: after thousands of serves the same request must still
	// produce the same bytes.
	warmStatus, warmBody, _, err := post(ctx, client, base, bodies[0])
	if err != nil {
		return nil, fmt.Errorf("loadtest: warm probe: %w", err)
	}
	rep.ColdWarmIdentical = warmStatus == http.StatusOK && bytes.Equal(coldBody, warmBody)

	after, err := fetchStats(ctx, client, base)
	if err != nil {
		return nil, fmt.Errorf("loadtest: statsz after run: %w", err)
	}
	rep.StoreHits = after.Store.Hits - before.Store.Hits
	rep.StoreMisses = after.Store.Misses - before.Store.Misses
	rep.StoreEvictions = after.Store.Evictions - before.Store.Evictions
	if n := rep.StoreHits + rep.StoreMisses; n > 0 {
		rep.HitRate = float64(rep.StoreHits) / float64(n)
	}
	dh := after.SessionStats.Totals.Hits - before.SessionStats.Totals.Hits
	dm := after.SessionStats.Totals.Misses - before.SessionStats.Totals.Misses
	if n := dh + dm; n > 0 {
		rep.TotalsHitRate = float64(dh) / float64(n)
	}
	return rep, nil
}

func post(ctx context.Context, client *http.Client, base string, body []byte) (status int, respBody []byte, dt time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/optimize", bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	dt = time.Since(start)
	if err != nil {
		return 0, nil, dt, err
	}
	defer resp.Body.Close()
	respBody, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, dt, err
	}
	return resp.StatusCode, respBody, dt, nil
}

func fetchStats(ctx context.Context, client *http.Client, base string) (*StatsDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/statsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc StatsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

func percentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Percentiles{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}
