package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/beebs"
	"repro/internal/core"
	"repro/internal/evaluation"
	"repro/internal/mcc"
)

// buildSession compiles a real (tiny) benchmark session — store tests
// exercise the same artifact type production uses.
func buildSession(t *testing.T, bench string) func() (*core.Session, error) {
	t.Helper()
	b := beebs.Get(bench)
	if b == nil {
		t.Fatalf("benchmark %q missing", bench)
	}
	return func() (*core.Session, error) { return evaluation.NewSession(b, mcc.O2) }
}

func TestStoreSingleFlight(t *testing.T) {
	s := NewStore(8)
	var builds atomic.Int32
	inner := buildSession(t, "crc32")
	build := func() (*core.Session, error) {
		builds.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the race window
		return inner()
	}

	const callers = 16
	sessions := make([]*core.Session, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := s.GetSession("k", build)
			if err != nil {
				t.Errorf("GetSession: %v", err)
				return
			}
			sessions[i] = sess
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times for one key, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if sessions[i] != sessions[0] {
			t.Fatalf("caller %d got a different session instance", i)
		}
	}
	cs := s.CacheStats()
	if cs.Misses != 1 || cs.Hits != callers-1 || cs.Entries != 1 {
		t.Fatalf("ledger = %+v, want 1 miss, %d hits, 1 entry", cs, callers-1)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(2)
	get := func(key string) {
		t.Helper()
		if _, err := s.GetSession(key, buildSession(t, "crc32")); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now the LRU victim
	get("c") // evicts b
	cs := s.CacheStats()
	if cs.Entries != 2 || cs.Evictions != 1 {
		t.Fatalf("ledger = %+v, want 2 entries and 1 eviction", cs)
	}
	// b must rebuild (a fresh miss), a must still hit.
	before := cs
	get("a")
	get("b")
	cs = s.CacheStats()
	if cs.Hits != before.Hits+1 {
		t.Fatalf("a should have hit: %+v", cs)
	}
	if cs.Misses != before.Misses+1 {
		t.Fatalf("b should have rebuilt after eviction: %+v", cs)
	}
	if cs.Evictions != 2 {
		t.Fatalf("rebuilding b should have evicted the next victim: %+v", cs)
	}
}

// TestStoreEvictionKeepsCumulativeStats: evicting a session must fold
// its stage counters into the retained ledger, not lose them.
func TestStoreEvictionKeepsCumulativeStats(t *testing.T) {
	s := NewStore(1)
	sess, err := s.GetSession("a", buildSession(t, "crc32"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Baseline(t.Context()); err != nil {
		t.Fatal(err)
	}
	work := sess.Stats()
	if work.Baseline.Misses == 0 {
		t.Fatal("baseline run did not register in the session ledger")
	}
	if _, err := s.GetSession("b", buildSession(t, "sha")); err != nil { // evicts a
		t.Fatal(err)
	}
	agg := s.StageStats()
	if agg.Baseline.Misses < work.Baseline.Misses {
		t.Fatalf("evicted session's stage counters vanished: agg=%+v work=%+v", agg, work)
	}
}

func TestStoreFailedBuildNotRetained(t *testing.T) {
	s := NewStore(4)
	boom := errors.New("boom")
	var builds int
	_, err := s.GetSession("k", func() (*core.Session, error) {
		builds++
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if cs := s.CacheStats(); cs.Entries != 0 {
		t.Fatalf("failed build was retained: %+v", cs)
	}
	// A later identical request retries the build instead of replaying
	// the stale failure.
	sess, err := s.GetSession("k", func() (*core.Session, error) {
		builds++
		return buildSession(t, "crc32")()
	})
	if err != nil || sess == nil {
		t.Fatalf("retry failed: %v", err)
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2 (fail, then retry)", builds)
	}
}

// TestStoreNeverEvictsInFlight pins the single-flight guarantee under
// capacity pressure: an entry mid-build is not an eviction candidate,
// so a concurrent identical request can never start a second build.
func TestStoreNeverEvictsInFlight(t *testing.T) {
	s := NewStore(1)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.GetSession("slow", func() (*core.Session, error) {
			close(started)
			<-release
			return buildSession(t, "crc32")()
		})
	}()
	<-started
	// Overflow the store while the build is in flight.
	for i := 0; i < 3; i++ {
		if _, err := s.GetSession(fmt.Sprintf("k%d", i), buildSession(t, "crc32")); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	wg.Wait()
	// The slow entry must have survived to completion: a lookup now hits.
	before := s.CacheStats()
	if _, err := s.GetSession("slow", func() (*core.Session, error) {
		t.Error("in-flight entry was evicted: build ran twice")
		return buildSession(t, "crc32")()
	}); err != nil {
		t.Fatal(err)
	}
	if cs := s.CacheStats(); cs.Hits != before.Hits+1 {
		t.Fatalf("slow key did not hit after overflow: %+v", cs)
	}
}
