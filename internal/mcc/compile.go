package mcc

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/softfloat"
)

// Compile translates mcc source to a laid-out-ready machine program at the
// given optimization level. When the source uses float arithmetic, the
// soft-float runtime is linked in as library code (Library=true), which
// the placement optimizer cannot touch — the paper's libgcc limitation.
func Compile(src string, level OptLevel) (*ir.Program, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := check(ast, true); err != nil {
		return nil, err
	}
	mp, err := Lower(ast)
	if err != nil {
		return nil, err
	}
	Optimize(mp, level)

	prog := ir.NewProgram()

	// Link the soft-float runtime if needed, compiled at a fixed -O2 the
	// way a prebuilt libgcc would be.
	if len(mp.FloatCalled) > 0 {
		for _, f := range mp.Funcs {
			for _, rt := range softfloat.Routines() {
				if f.Name == rt {
					return nil, fmt.Errorf("mcc: user function %q collides with the soft-float runtime", rt)
				}
			}
		}
		libAST, err := Parse(softfloat.Source)
		if err != nil {
			return nil, fmt.Errorf("mcc: internal: soft-float source: %w", err)
		}
		if err := check(libAST, false); err != nil {
			return nil, fmt.Errorf("mcc: internal: soft-float check: %w", err)
		}
		libMP, err := Lower(libAST)
		if err != nil {
			return nil, fmt.Errorf("mcc: internal: soft-float lower: %w", err)
		}
		Optimize(libMP, O2)
		for _, f := range libMP.Funcs {
			irf, err := genWithLevel(f, O2)
			if err != nil {
				return nil, fmt.Errorf("mcc: internal: soft-float codegen: %w", err)
			}
			irf.Library = true
			prog.AddFunc(irf)
		}
	}

	for _, f := range mp.Funcs {
		irf, err := genWithLevel(f, level)
		if err != nil {
			return nil, err
		}
		prog.AddFunc(irf)
	}

	for _, g := range mp.Globals {
		irg, err := lowerGlobal(g)
		if err != nil {
			return nil, err
		}
		prog.AddGlobal(irg)
	}

	prog.Entry = "main"
	prog.Reindex()
	if err := ir.Verify(prog); err != nil {
		return nil, fmt.Errorf("mcc: generated invalid program: %w", err)
	}
	return prog, nil
}

// check wraps Check with the main-function requirement toggled (library
// translation units have no main).
func check(prog *SourceProgram, requireMain bool) error {
	return checkUnit(prog, requireMain)
}

func genWithLevel(f *MFunc, level OptLevel) (*ir.Function, error) {
	var alloc *Allocation
	if level == O0 {
		alloc = AllocateSpillAll(f)
	} else {
		alloc = Allocate(f, level == Os)
	}
	return GenFunc(f, alloc)
}

// lowerGlobal turns a checked global declaration into initialized bytes.
func lowerGlobal(g *VarDecl) (*ir.Global, error) {
	size := g.Type.ByteSize()
	irg := &ir.Global{Name: g.Name, Size: size, RO: g.Const}

	elemType := g.Type
	var elems []Expr
	switch {
	case g.InitList != nil:
		elems = g.InitList
		elemType = g.Type.Elem
		for elemType.Kind == TArray {
			elemType = elemType.Elem
		}
	case g.Init != nil:
		elems = []Expr{g.Init}
	default:
		return irg, nil // zero-initialized (.bss)
	}

	esz := elemType.ByteSize()
	buf := make([]byte, size)
	for i, e := range elems {
		iv, fv, ok := ConstEval(e)
		if !ok {
			return nil, fmt.Errorf("mcc: global %q: non-constant initializer", g.Name)
		}
		var word uint32
		if elemType.Kind == TFloat {
			if e.TypeOf() != nil && e.TypeOf().Kind != TFloat {
				fv = float64(iv)
			}
			word = math.Float32bits(float32(fv))
		} else {
			if e.TypeOf() != nil && e.TypeOf().Kind == TFloat {
				iv = int64(fv)
			}
			word = uint32(int32(iv))
		}
		off := i * esz
		if off+esz > size {
			return nil, fmt.Errorf("mcc: global %q: initializer overflows", g.Name)
		}
		switch esz {
		case 1:
			buf[off] = byte(word)
		case 2:
			binary.LittleEndian.PutUint16(buf[off:], uint16(word))
		default:
			binary.LittleEndian.PutUint32(buf[off:], word)
		}
	}
	irg.Init = buf
	return irg, nil
}
