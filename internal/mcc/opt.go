package mcc

import "fmt"

// OptLevel selects the pass pipeline, mirroring GCC's -O flags (§6 of the
// paper evaluates O0, O1, O2, O3 and Os).
type OptLevel int

// Optimization levels.
const (
	O0 OptLevel = iota // no optimization, naive spill-everything codegen
	O1                 // constant folding, copy propagation, DCE, regalloc
	O2                 // + local CSE, strength reduction, CFG cleanup
	O3                 // + inlining of small functions
	Os                 // O2 pipeline with size-biased codegen
)

// ParseOptLevel parses "O0".."Os".
func ParseOptLevel(s string) (OptLevel, error) {
	switch s {
	case "O0", "0":
		return O0, nil
	case "O1", "1":
		return O1, nil
	case "O2", "2":
		return O2, nil
	case "O3", "3":
		return O3, nil
	case "Os", "s":
		return Os, nil
	}
	return O0, fmt.Errorf("mcc: unknown optimization level %q", s)
}

func (l OptLevel) String() string {
	switch l {
	case O0:
		return "O0"
	case O1:
		return "O1"
	case O2:
		return "O2"
	case O3:
		return "O3"
	case Os:
		return "Os"
	}
	return "O?"
}

// Optimize runs the pass pipeline for the level over the program.
func Optimize(p *MProgram, level OptLevel) {
	if level == O0 {
		return
	}
	if level == O3 {
		inlineSmallFunctions(p, 24)
	}
	for _, f := range p.Funcs {
		passes := 3 // fixpoint-ish: a few rounds are plenty at this scale
		for i := 0; i < passes; i++ {
			simplify(f)
			copyProp(f)
			if level >= O2 {
				localCSE(f)
			}
			deadCodeElim(f)
			cleanCFG(f)
		}
	}
}

// ---- local simplification: constant folding + strength reduction ----

// simplify tracks per-block constants and folds/strength-reduces.
func simplify(f *MFunc) {
	for _, b := range f.Blocks {
		consts := map[VReg]int32{}
		setConst := func(d VReg, v int32) {
			consts[d] = v
		}
		kill := func(d VReg) { delete(consts, d) }

		for i := range b.Ins {
			in := &b.Ins[i]
			ca, aOK := consts[in.A]
			cb, bOK := consts[in.B]

			switch in.Op {
			case MConst:
				setConst(in.Dst, in.Imm)
				continue
			case MMov:
				if aOK {
					*in = MIns{Op: MConst, Dst: in.Dst, Imm: ca}
					setConst(in.Dst, ca)
					continue
				}
			case MAdd, MSub, MMul, MSDiv, MUDiv, MSRem, MURem,
				MAnd, MOr, MXor, MShl, MShr, MSar:
				if aOK && bOK {
					if v, ok := foldBin(in.Op, ca, cb); ok {
						*in = MIns{Op: MConst, Dst: in.Dst, Imm: v}
						setConst(in.Dst, v)
						continue
					}
				}
				// Strength reduction with one constant operand.
				if bOK {
					if rep, ok := strengthReduce(in, cb); ok {
						*in = rep
						kill(in.Dst)
						continue
					}
				}
				if aOK && (in.Op == MAdd || in.Op == MMul || in.Op == MAnd ||
					in.Op == MOr || in.Op == MXor) {
					// Commute the constant to the right; the next pass
					// round will see it there and strength-reduce.
					in.A, in.B = in.B, in.A
				}
			case MNeg:
				if aOK {
					*in = MIns{Op: MConst, Dst: in.Dst, Imm: -ca}
					setConst(in.Dst, -ca)
					continue
				}
			case MNot:
				if aOK {
					*in = MIns{Op: MConst, Dst: in.Dst, Imm: ^ca}
					setConst(in.Dst, ^ca)
					continue
				}
			case MExt:
				if aOK {
					v := extVal(ca, in.Width, in.Signed)
					*in = MIns{Op: MConst, Dst: in.Dst, Imm: v}
					setConst(in.Dst, v)
					continue
				}
			case MSetCC:
				if aOK && bOK {
					v := int32(0)
					if in.CC.Eval(uint32(ca), uint32(cb)) {
						v = 1
					}
					*in = MIns{Op: MConst, Dst: in.Dst, Imm: v}
					setConst(in.Dst, v)
					continue
				}
			case MCmpBr:
				if aOK && bOK {
					target := in.L2
					if in.CC.Eval(uint32(ca), uint32(cb)) {
						target = in.L1
					}
					*in = MIns{Op: MJmp, L1: target}
					continue
				}
			}
			if d := in.Def(); d != NoVReg {
				kill(d)
			}
		}
	}
}

func foldBin(op MOp, a, b int32) (int32, bool) {
	ua, ub := uint32(a), uint32(b)
	switch op {
	case MAdd:
		return a + b, true
	case MSub:
		return a - b, true
	case MMul:
		return a * b, true
	case MSDiv:
		if b == 0 {
			return 0, false
		}
		if a == -1<<31 && b == -1 {
			return a, true // ARM defines the overflow quotient as the dividend
		}
		return a / b, true
	case MUDiv:
		if b == 0 {
			return 0, false
		}
		return int32(ua / ub), true
	case MSRem:
		if b == 0 || (a == -1<<31 && b == -1) {
			return 0, false
		}
		return a % b, true
	case MURem:
		if b == 0 {
			return 0, false
		}
		return int32(ua % ub), true
	case MAnd:
		return a & b, true
	case MOr:
		return a | b, true
	case MXor:
		return a ^ b, true
	case MShl:
		return int32(shiftFold(ua, ub, func(x uint32, s uint32) uint32 { return x << s })), true
	case MShr:
		return int32(shiftFold(ua, ub, func(x uint32, s uint32) uint32 { return x >> s })), true
	case MSar:
		s := ub & 0xFF
		if s >= 32 {
			s = 31
		}
		return a >> s, true
	}
	return 0, false
}

func shiftFold(x, s uint32, f func(uint32, uint32) uint32) uint32 {
	s &= 0xFF
	if s >= 32 {
		return 0
	}
	return f(x, s)
}

func extVal(v int32, width int, signed bool) int32 {
	switch width {
	case 1:
		if signed {
			return int32(int8(v))
		}
		return int32(uint8(v))
	case 2:
		if signed {
			return int32(int16(v))
		}
		return int32(uint16(v))
	}
	return v
}

// strengthReduce rewrites ops with a constant right operand into cheaper
// forms. It may introduce a dependence on the constant staying in a
// register, so it rewrites in place using an immediate-carrying MConst
// fed by later passes; here we only handle the self-contained cases.
func strengthReduce(in *MIns, c int32) (MIns, bool) {
	switch in.Op {
	case MMul:
		switch {
		case c == 0:
			return MIns{Op: MConst, Dst: in.Dst, Imm: 0}, true
		case c == 1:
			return MIns{Op: MMov, Dst: in.Dst, A: in.A}, true
		}
	case MSDiv, MUDiv:
		if c == 1 {
			return MIns{Op: MMov, Dst: in.Dst, A: in.A}, true
		}
		if in.Op == MUDiv && c > 0 && c&(c-1) == 0 {
			// Unsigned divide by power of two → shift; requires the shift
			// amount in a vreg, so keep the const producer: rewrite as
			// Shr with B reused (B already holds the constant c; the
			// shift amount differs). Only rewrite when we can encode the
			// shift via an extra const — handled by emitting MShr with
			// the same B is wrong, so skip unless c == 1.
		}
	case MAdd, MSub, MOr, MXor, MShl, MShr, MSar:
		if c == 0 {
			return MIns{Op: MMov, Dst: in.Dst, A: in.A}, true
		}
	case MAnd:
		if c == 0 {
			return MIns{Op: MConst, Dst: in.Dst, Imm: 0}, true
		}
		if c == -1 {
			return MIns{Op: MMov, Dst: in.Dst, A: in.A}, true
		}
	}
	return MIns{}, false
}

// ---- copy propagation (local) ----

func copyProp(f *MFunc) {
	for _, b := range f.Blocks {
		copyOf := map[VReg]VReg{}
		resolve := func(v VReg) VReg {
			for {
				w, ok := copyOf[v]
				if !ok {
					return v
				}
				v = w
			}
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			// Substitute uses.
			if in.A != NoVReg {
				in.A = resolve(in.A)
			}
			if in.B != NoVReg {
				in.B = resolve(in.B)
			}
			for k := range in.Args {
				in.Args[k] = resolve(in.Args[k])
			}
			d := in.Def()
			if d != NoVReg {
				// Kill copies involving d.
				delete(copyOf, d)
				for k, v := range copyOf {
					if v == d {
						delete(copyOf, k)
					}
				}
				if in.Op == MMov && in.A != d {
					copyOf[d] = in.A
				}
			}
		}
	}
}

// ---- local common subexpression elimination ----

type cseKey struct {
	op     MOp
	a, b   VReg
	imm    int32
	cc     CC
	width  int
	signed bool
	sym    string
}

func localCSE(f *MFunc) {
	for _, b := range f.Blocks {
		avail := map[cseKey]VReg{}
		kill := func(d VReg) {
			for k, v := range avail {
				if v == d || k.a == d || k.b == d {
					delete(avail, k)
				}
			}
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			switch in.Op {
			case MCall:
				// Calls clobber memory: flush loads.
				for k := range avail {
					if k.op == MLoad {
						delete(avail, k)
					}
				}
			case MStore:
				// A store may alias any load.
				for k := range avail {
					if k.op == MLoad {
						delete(avail, k)
					}
				}
				continue
			}
			d := in.Def()
			if !in.Pure() || d == NoVReg {
				if d != NoVReg {
					kill(d)
				}
				continue
			}
			key := cseKey{
				op: in.Op, a: in.A, b: in.B, imm: in.Imm, cc: in.CC,
				width: in.Width, signed: in.Signed, sym: in.Sym,
			}
			if prev, ok := avail[key]; ok && prev != d {
				*in = MIns{Op: MMov, Dst: d, A: prev}
				kill(d)
				continue
			}
			kill(d)
			avail[key] = d
		}
	}
}

// ---- dead code elimination (global liveness) ----

func deadCodeElim(f *MFunc) {
	liveOut := liveness(f)
	for _, b := range f.Blocks {
		live := map[VReg]bool{}
		for v := range liveOut[b] {
			live[v] = true
		}
		// Backward sweep marking kept instructions.
		kept := make([]bool, len(b.Ins))
		for i := len(b.Ins) - 1; i >= 0; i-- {
			in := &b.Ins[i]
			d := in.Def()
			if !in.Pure() || (d != NoVReg && live[d]) || d == NoVReg {
				kept[i] = true
				if d != NoVReg {
					delete(live, d)
				}
				for _, u := range in.Uses() {
					live[u] = true
				}
			}
		}
		var out []MIns
		for i := range b.Ins {
			if kept[i] {
				out = append(out, b.Ins[i])
			}
		}
		b.Ins = out
	}
}

// liveness computes live-out sets per block.
func liveness(f *MFunc) map[*MBlock]map[VReg]bool {
	byLabel := map[string]*MBlock{}
	for _, b := range f.Blocks {
		byLabel[b.Label] = b
	}
	gen := map[*MBlock]map[VReg]bool{}
	killed := map[*MBlock]map[VReg]bool{}
	for _, b := range f.Blocks {
		g, k := map[VReg]bool{}, map[VReg]bool{}
		for i := range b.Ins {
			in := &b.Ins[i]
			for _, u := range in.Uses() {
				if !k[u] {
					g[u] = true
				}
			}
			if d := in.Def(); d != NoVReg {
				k[d] = true
			}
		}
		gen[b], killed[b] = g, k
	}
	liveIn := map[*MBlock]map[VReg]bool{}
	liveOut := map[*MBlock]map[VReg]bool{}
	for _, b := range f.Blocks {
		liveIn[b] = map[VReg]bool{}
		liveOut[b] = map[VReg]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := map[VReg]bool{}
			for _, s := range b.Succs() {
				sb := byLabel[s]
				for v := range liveIn[sb] {
					out[v] = true
				}
			}
			in := map[VReg]bool{}
			for v := range out {
				if !killed[b][v] {
					in[v] = true
				}
			}
			for v := range gen[b] {
				in[v] = true
			}
			if len(out) != len(liveOut[b]) || len(in) != len(liveIn[b]) {
				changed = true
			}
			liveOut[b] = out
			liveIn[b] = in
		}
	}
	return liveOut
}

// ---- CFG cleanup ----

// cleanCFG retargets jumps through empty forwarding blocks, removes
// unreachable blocks and merges single-successor/single-predecessor pairs.
func cleanCFG(f *MFunc) {
	// Forwarding: block whose only instruction is jmp L.
	forward := map[string]string{}
	for _, b := range f.Blocks {
		if len(b.Ins) == 1 && b.Ins[0].Op == MJmp {
			forward[b.Label] = b.Ins[0].L1
		}
	}
	resolve := func(l string) string {
		seen := map[string]bool{}
		for forward[l] != "" && !seen[l] {
			seen[l] = true
			l = forward[l]
		}
		return l
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		switch t.Op {
		case MJmp:
			t.L1 = resolve(t.L1)
		case MCmpBr:
			t.L1 = resolve(t.L1)
			t.L2 = resolve(t.L2)
			if t.L1 == t.L2 {
				*t = MIns{Op: MJmp, L1: t.L1}
			}
		}
	}
	pruneUnreachable(f)

	// Merge chains: b ends in jmp s, s has exactly one predecessor.
	preds := map[string]int{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s]++
		}
	}
	byLabel := map[string]*MBlock{}
	for _, b := range f.Blocks {
		byLabel[b.Label] = b
	}
	merged := map[*MBlock]bool{}
	for _, b := range f.Blocks {
		for {
			if merged[b] {
				break
			}
			t := b.Term()
			if t == nil || t.Op != MJmp {
				break
			}
			s := byLabel[t.L1]
			if s == nil || s == b || preds[s.Label] != 1 || s == f.Blocks[0] {
				break
			}
			// Append s's instructions over b's jump.
			b.Ins = append(b.Ins[:len(b.Ins)-1], s.Ins...)
			merged[s] = true
		}
	}
	var kept []*MBlock
	for _, b := range f.Blocks {
		if !merged[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	pruneUnreachable(f)
}

// ---- inlining (O3) ----

// inlineSmallFunctions inlines calls to non-recursive functions whose
// body is at most maxIns instructions and which contain no calls
// themselves (leaf functions).
func inlineSmallFunctions(p *MProgram, maxIns int) {
	inlinable := map[string]*MFunc{}
	for _, f := range p.Funcs {
		if f.Name == "main" {
			continue
		}
		n := 0
		leaf := true
		for _, b := range f.Blocks {
			n += len(b.Ins)
			for i := range b.Ins {
				if b.Ins[i].Op == MCall {
					leaf = false
				}
			}
		}
		if leaf && n <= maxIns && len(f.SlotSizes) == 0 {
			inlinable[f.Name] = f
		}
	}
	if len(inlinable) == 0 {
		return
	}
	// The label-uniquifying sequence is scoped to the compilation so that
	// concurrent compiles (the parallel evaluation sweep) stay
	// race-free and each program's labels are deterministic.
	inlineSeq := 0
	for _, f := range p.Funcs {
		inlineInto(f, inlinable, &inlineSeq)
	}
}

func inlineInto(f *MFunc, inlinable map[string]*MFunc, inlineSeq *int) {
	for bi := 0; bi < len(f.Blocks); bi++ {
		b := f.Blocks[bi]
		for ii := 0; ii < len(b.Ins); ii++ {
			in := b.Ins[ii]
			if in.Op != MCall {
				continue
			}
			callee, ok := inlinable[in.Sym]
			if !ok || callee.Name == f.Name {
				continue
			}
			*inlineSeq++
			prefix := fmt.Sprintf("%s_il%d_", f.Name, *inlineSeq)

			// Clone callee with remapped vregs and labels.
			remap := make([]VReg, callee.NumVRegs)
			for i := range remap {
				remap[i] = VReg(f.NumVRegs + i)
			}
			f.NumVRegs += callee.NumVRegs
			mapV := func(v VReg) VReg {
				if v == NoVReg {
					return NoVReg
				}
				return remap[v]
			}
			contLabel := prefix + "cont"
			retV := in.Dst

			var clones []*MBlock
			for _, cb := range callee.Blocks {
				nb := &MBlock{Label: prefix + cb.Label}
				for _, ci := range cb.Ins {
					ni := ci
					ni.Dst = mapV(ci.Dst)
					ni.A = mapV(ci.A)
					ni.B = mapV(ci.B)
					if len(ci.Args) > 0 {
						ni.Args = make([]VReg, len(ci.Args))
						for k := range ci.Args {
							ni.Args[k] = mapV(ci.Args[k])
						}
					}
					if ni.Op == MJmp {
						ni.L1 = prefix + ci.L1
					}
					if ni.Op == MCmpBr {
						ni.L1 = prefix + ci.L1
						ni.L2 = prefix + ci.L2
					}
					if ni.Op == MRet {
						if retV != NoVReg && ci.A != NoVReg {
							nb.Ins = append(nb.Ins, MIns{Op: MMov, Dst: retV, A: mapV(ci.A)})
						}
						ni = MIns{Op: MJmp, L1: contLabel}
					}
					nb.Ins = append(nb.Ins, ni)
				}
				clones = append(clones, nb)
			}

			// Split the calling block.
			cont := &MBlock{Label: contLabel, Ins: append([]MIns(nil), b.Ins[ii+1:]...)}
			b.Ins = b.Ins[:ii]
			// Bind arguments.
			for k, a := range in.Args {
				if k < len(callee.ParamRegs) {
					b.Ins = append(b.Ins, MIns{Op: MMov, Dst: mapV(callee.ParamRegs[k]), A: a})
				}
			}
			b.Ins = append(b.Ins, MIns{Op: MJmp, L1: clones[0].Label})

			// Splice: b, clones..., cont, rest.
			rest := append([]*MBlock{}, f.Blocks[bi+1:]...)
			f.Blocks = append(f.Blocks[:bi+1], clones...)
			f.Blocks = append(f.Blocks, cont)
			f.Blocks = append(f.Blocks, rest...)
			break // re-scan from the next block (cont holds the tail)
		}
	}
}
