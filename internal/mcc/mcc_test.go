package mcc

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/power"
	"repro/internal/sim"
)

var allLevels = []OptLevel{O0, O1, O2, O3, Os}

// compileRun compiles at one level, runs on the simulator, and returns the
// machine for result inspection.
func compileRun(t *testing.T, src string, level OptLevel) *sim.Machine {
	t.Helper()
	prog, err := Compile(src, level)
	if err != nil {
		t.Fatalf("%v: compile: %v", level, err)
	}
	img, err := layout.New(prog, layout.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("%v: layout: %v", level, err)
	}
	m := sim.New(img, power.STM32F100())
	if _, err := m.Run(); err != nil {
		t.Fatalf("%v: run: %v", level, err)
	}
	return m
}

// expectOut checks out[i] == want[i] at every optimization level.
func expectOut(t *testing.T, src string, want []uint32) {
	t.Helper()
	for _, level := range allLevels {
		m := compileRun(t, src, level)
		base := m.Img.Symbols["out"]
		for i, w := range want {
			got, err := m.ReadWord(base + uint32(4*i))
			if err != nil {
				t.Fatalf("%v: read out[%d]: %v", level, i, err)
			}
			if got != w {
				t.Errorf("%v: out[%d] = %d (%#x), want %d (%#x)", level, i, got, got, w, w)
			}
		}
	}
}

func TestReturnConstant(t *testing.T) {
	expectOut(t, `
int out[1];
int main() { out[0] = 42; return 0; }
`, []uint32{42})
}

func TestArithmetic(t *testing.T) {
	expectOut(t, `
int out[12];
int main() {
    int a = 100, b = 7;
    out[0] = a + b;
    out[1] = a - b;
    out[2] = a * b;
    out[3] = a / b;
    out[4] = a % b;
    out[5] = a << 3;
    out[6] = a >> 2;
    out[7] = a & b;
    out[8] = a | b;
    out[9] = a ^ b;
    out[10] = -a;
    out[11] = ~a;
    return 0;
}
`, []uint32{107, 93, 700, 14, 2, 800, 25, 4, 103, 99,
		uint32(0xFFFFFF9C), uint32(0xFFFFFF9B)})
}

func TestSignedUnsignedDivisionShift(t *testing.T) {
	expectOut(t, `
int out[6];
int main() {
    int a = -100;
    unsigned int u = 0x80000000u;
    out[0] = a / 7;            // -14
    out[1] = a % 7;            // -2
    out[2] = a >> 2;           // arithmetic: -25
    out[3] = (int)(u >> 28);   // logical: 8
    out[4] = (int)(u / 2u);    // 0x40000000
    out[5] = a * -3;           // 300
    return 0;
}
`, []uint32{uint32(0xFFFFFFF2), uint32(0xFFFFFFFE), uint32(0xFFFFFFE7),
		8, 0x40000000, 300})
}

func TestCharShortTruncation(t *testing.T) {
	expectOut(t, `
int out[6];
int main() {
    char c = 200;          // truncates to -56
    unsigned char uc = 200;
    short s = 40000;       // truncates to -25536
    unsigned short us = 40000;
    out[0] = c;
    out[1] = uc;
    out[2] = s;
    out[3] = us;
    c = c + 100;           // -56+100 = 44
    out[4] = c;
    uc = uc + 100;         // 300 & 0xff = 44
    out[5] = uc;
    return 0;
}
`, []uint32{uint32(0xFFFFFFC8), 200, uint32(0xFFFF9C40), 40000, 44, 44})
}

func TestControlFlow(t *testing.T) {
	expectOut(t, `
int out[5];
int main() {
    int i, sum = 0, prod = 1, n = 0;
    for (i = 1; i <= 10; i++) sum += i;
    out[0] = sum;                       // 55
    i = 0;
    while (i < 5) { prod *= 2; i++; }
    out[1] = prod;                      // 32
    i = 0;
    do { n += 3; i++; } while (i < 4);
    out[2] = n;                         // 12
    sum = 0;
    for (i = 0; i < 10; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        sum += i;
    }
    out[3] = sum;                       // 0+1+2+4+5+6 = 18
    if (sum > 17 && sum < 19) out[4] = 1; else out[4] = 2;
    return 0;
}
`, []uint32{55, 32, 12, 18, 1})
}

func TestArraysAndPointers(t *testing.T) {
	expectOut(t, `
int out[6];
int tab[8];
const int rom[4] = {10, 20, 30, 40};
int main() {
    int i;
    int local[4];
    int *p;
    for (i = 0; i < 8; i++) tab[i] = i * i;
    out[0] = tab[5];               // 25
    for (i = 0; i < 4; i++) local[i] = rom[i] + 1;
    out[1] = local[2];             // 31
    p = tab;
    p = p + 3;
    out[2] = *p;                   // 9
    p++;
    out[3] = *p;                   // 16
    out[4] = p - tab;              // 4
    *p = 99;
    out[5] = tab[4];               // 99
    return 0;
}
`, []uint32{25, 31, 9, 16, 4, 99})
}

func TestTwoDimensionalArrays(t *testing.T) {
	expectOut(t, `
int out[3];
int m[3][4];
const short k[2][2] = {{1, 2}, {3, 4}};
int main() {
    int i, j, sum = 0;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
    out[0] = m[2][3];     // 23
    for (i = 0; i < 3; i++) sum += m[i][1];
    out[1] = sum;         // 1+11+21 = 33
    out[2] = k[1][0];     // 3
    return 0;
}
`, []uint32{23, 33, 3})
}

func TestAddressOfAndSwap(t *testing.T) {
	expectOut(t, `
int out[2];
void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
int main() {
    int x = 3, y = 9;
    swap(&x, &y);
    out[0] = x;
    out[1] = y;
    return 0;
}
`, []uint32{9, 3})
}

func TestRecursion(t *testing.T) {
	expectOut(t, `
int out[2];
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    out[0] = fact(6);  // 720
    out[1] = fib(10);  // 55
    return 0;
}
`, []uint32{720, 55})
}

func TestShortCircuitSideEffects(t *testing.T) {
	expectOut(t, `
int out[4];
int calls;
int bump() { calls++; return 1; }
int main() {
    calls = 0;
    out[0] = (0 && bump());
    out[1] = calls;          // 0: RHS not evaluated
    out[2] = (1 || bump());
    out[3] = calls;          // still 0
    return 0;
}
`, []uint32{0, 0, 1, 0})
}

func TestTernaryAndCompound(t *testing.T) {
	expectOut(t, `
int out[4];
int main() {
    int a = 5, b = 12;
    out[0] = a > b ? a : b;   // 12
    a += 10; out[1] = a;      // 15
    a <<= 2; out[2] = a;      // 60
    b %= 5; out[3] = b;       // 2
    return 0;
}
`, []uint32{12, 15, 60, 2})
}

func TestIncDecSemantics(t *testing.T) {
	expectOut(t, `
int out[6];
int a[4];
int main() {
    int i = 5;
    out[0] = i++;   // 5
    out[1] = i;     // 6
    out[2] = ++i;   // 7
    out[3] = i--;   // 7
    out[4] = --i;   // 5
    a[0] = 10;
    a[0]++;
    out[5] = a[0];  // 11
    return 0;
}
`, []uint32{5, 6, 7, 7, 5, 11})
}

func TestGlobalInitializers(t *testing.T) {
	expectOut(t, `
int out[5];
int g = 1000;
unsigned char bytes[4] = {1, 2, 3, 255};
short halves[2] = {-5, 300};
int main() {
    out[0] = g;
    out[1] = bytes[3];
    out[2] = halves[0];
    out[3] = halves[1];
    out[4] = bytes[0] + bytes[1] + bytes[2];
    return 0;
}
`, []uint32{1000, 255, uint32(0xFFFFFFFB), 300, 6})
}

func TestFloatArithmetic(t *testing.T) {
	const src = `
float out[6];
int iout[4];
float fa = 3.5;
float fb = -1.25;
int main() {
    out[0] = fa + fb;       // 2.25
    out[1] = fa - fb;       // 4.75
    out[2] = fa * fb;       // -4.375
    out[3] = fa / fb;       // -2.8
    out[4] = (float)7;      // 7.0
    out[5] = fa + 1;        // 4.5 (int converted)
    iout[0] = (int)(fa * 2.0f);   // 7
    iout[1] = fa < fb;      // 0
    iout[2] = fa >= fb;     // 1
    iout[3] = (int)fb;      // -1 (truncation toward zero)
    return 0;
}
`
	for _, level := range allLevels {
		m := compileRun(t, src, level)
		outBase := m.Img.Symbols["out"]
		wantF := []float32{2.25, 4.75, -4.375, -2.8, 7.0, 4.5}
		for i, w := range wantF {
			bits, _ := m.ReadWord(outBase + uint32(4*i))
			got := math.Float32frombits(bits)
			if math.Abs(float64(got-w)) > 1e-5*math.Max(1, math.Abs(float64(w))) {
				t.Errorf("%v: out[%d] = %v, want %v", level, i, got, w)
			}
		}
		iBase := m.Img.Symbols["iout"]
		wantI := []uint32{7, 0, 1, uint32(0xFFFFFFFF)}
		for i, w := range wantI {
			got, _ := m.ReadWord(iBase + uint32(4*i))
			if got != w {
				t.Errorf("%v: iout[%d] = %d, want %d", level, i, got, w)
			}
		}
	}
}

// TestSoftFloatProperty drives the soft-float runtime with random inputs
// by patching two float globals and comparing against Go's float32
// arithmetic within a truncation-rounding tolerance.
func TestSoftFloatProperty(t *testing.T) {
	const src = `
float fa = 0.0;
float fb = 0.0;
float out[4];
int cmp[3];
int main() {
    out[0] = fa + fb;
    out[1] = fa - fb;
    out[2] = fa * fb;
    out[3] = fa / fb;
    cmp[0] = fa < fb;
    cmp[1] = fa == fb;
    cmp[2] = fa <= fb;
    return 0;
}
`
	prog, err := Compile(src, O2)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][2]float32{
		{1, 2}, {-1.5, 3.25}, {100.125, -0.5}, {3.14159, 2.71828},
		{1e10, 1e-10}, {-7, -7}, {0.1, 0.2}, {1234.5678, -0.0001},
		{2, 0.5}, {-1e20, 1e20}, {6.02e23, 1.6e-19}, {1, 3},
	}
	for _, c := range cases {
		a, b := c[0], c[1]
		setF := func(name string, v float32) {
			g := prog.Global(name)
			bits := math.Float32bits(v)
			g.Init = []byte{byte(bits), byte(bits >> 8), byte(bits >> 16), byte(bits >> 24)}
		}
		setF("fa", a)
		setF("fb", b)
		img, err := layout.New(prog, layout.DefaultConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		m := sim.New(img, power.STM32F100())
		if _, err := m.Run(); err != nil {
			t.Fatalf("a=%v b=%v: %v", a, b, err)
		}
		outBase := m.Img.Symbols["out"]
		want := []float32{a + b, a - b, a * b, a / b}
		for i, w := range want {
			bits, _ := m.ReadWord(outBase + uint32(4*i))
			got := math.Float32frombits(bits)
			rel := math.Abs(float64(got-w)) / math.Max(1e-30, math.Abs(float64(w)))
			if rel > 2e-6 && math.Abs(float64(got-w)) > 1e-30 {
				t.Errorf("a=%v b=%v op%d: got %v, want %v (rel %.2e)", a, b, i, got, w, rel)
			}
		}
		cmpBase := m.Img.Symbols["cmp"]
		wantC := []uint32{b2u(a < b), b2u(a == b), b2u(a <= b)}
		for i, w := range wantC {
			got, _ := m.ReadWord(cmpBase + uint32(4*i))
			if got != w {
				t.Errorf("a=%v b=%v cmp%d: got %d, want %d", a, b, i, got, w)
			}
		}
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// TestLevelsAgree compiles a mixed workload at every level and checks all
// five produce identical output (differential testing of the optimizer).
func TestLevelsAgree(t *testing.T) {
	const src = `
int out[4];
int scratch[16];
int helper(int x, int y) { return x * y + (x >> 1) - (y & 3); }
int main() {
    int i, acc = 0;
    unsigned int h = 2166136261u;
    for (i = 0; i < 16; i++) {
        scratch[i] = helper(i, 16 - i);
        acc += scratch[i];
        h = (h ^ (unsigned int)scratch[i]) * 16777619u;
    }
    out[0] = acc;
    out[1] = (int)h;
    out[2] = scratch[7];
    out[3] = helper(acc, 3);
    return 0;
}
`
	var ref []uint32
	for _, level := range allLevels {
		m := compileRun(t, src, level)
		base := m.Img.Symbols["out"]
		var got []uint32
		for i := 0; i < 4; i++ {
			w, _ := m.ReadWord(base + uint32(4*i))
			got = append(got, w)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("%v: out[%d] = %d, O0 said %d", level, i, got[i], ref[i])
			}
		}
	}
}

// TestOptimizationReducesWork: O2 must execute fewer instructions than O0
// on a compute-heavy kernel.
func TestOptimizationReducesWork(t *testing.T) {
	const src = `
int out[1];
int main() {
    int i, s = 0;
    for (i = 0; i < 100; i++) s += i * 2 + 1;
    out[0] = s;
    return 0;
}
`
	counts := map[OptLevel]uint64{}
	for _, level := range allLevels {
		prog, err := Compile(src, level)
		if err != nil {
			t.Fatal(err)
		}
		img, err := layout.New(prog, layout.DefaultConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		m := sim.New(img, power.STM32F100())
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		got, _ := m.ReadGlobal("out")
		if got != 10000 {
			t.Fatalf("%v: out = %d, want 10000", level, got)
		}
		counts[level] = st.Instructions
	}
	if counts[O2] >= counts[O0] {
		t.Errorf("O2 executed %d instructions, O0 %d; optimization had no effect",
			counts[O2], counts[O0])
	}
	if counts[O1] > counts[O0] {
		t.Errorf("O1 executed more instructions (%d) than O0 (%d)", counts[O1], counts[O0])
	}
}

func TestInliningAtO3(t *testing.T) {
	const src = `
int out[1];
int tiny(int x) { return x + 1; }
int main() {
    int i, s = 0;
    for (i = 0; i < 50; i++) s += tiny(i);
    out[0] = s;
    return 0;
}
`
	progO2, err := Compile(src, O2)
	if err != nil {
		t.Fatal(err)
	}
	progO3, err := Compile(src, O3)
	if err != nil {
		t.Fatal(err)
	}
	countBL := func(p *ir.Program) int {
		n := 0
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op.String() == "bl" {
						n++
					}
				}
			}
		}
		return n
	}
	if countBL(progO3) >= countBL(progO2) {
		t.Errorf("O3 has %d calls, O2 has %d; inlining did not fire",
			countBL(progO3), countBL(progO2))
	}
	// Results still agree.
	for _, prog := range []*ir.Program{progO2, progO3} {
		img, _ := layout.New(prog, layout.DefaultConfig(), nil)
		m := sim.New(img, power.STM32F100())
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		got, _ := m.ReadGlobal("out")
		if got != 1275 {
			t.Errorf("out = %d, want 1275", got)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no main", `int f() { return 1; }`},
		{"undefined var", `int main() { return x; }`},
		{"undefined func", `int main() { return g(); }`},
		{"too many params", `int f(int a,int b,int c,int d,int e){return 0;} int main(){return 0;}`},
		{"break outside loop", `int main() { break; return 0; }`},
		{"const assignment", `const int k = 3; int main() { k = 4; return 0; }`},
		{"bad arg count", `int f(int a){return a;} int main(){ return f(1,2); }`},
		{"void local", `int main() { void v; return 0; }`},
		{"non-const global init", `int a = 3; int b = a; int main(){return 0;}`},
		{"redefined function", `int f(){return 1;} int f(){return 2;} int main(){return 0;}`},
		{"syntax error", `int main() { return 0 `},
		{"lex error", `int main() { return $; }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile(c.src, O1); err == nil {
				t.Fatalf("compile accepted bad program")
			}
		})
	}
}

func TestMIRVerifyOnLowering(t *testing.T) {
	const src = `
int out[1];
int main() {
    int i, s = 0;
    for (i = 0; i < 4; i++) { if (i == 2) continue; s += i; }
    out[0] = s;
    return 0;
}
`
	ast, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(ast); err != nil {
		t.Fatal(err)
	}
	mp, err := Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, level := range []OptLevel{O1, O2, O3} {
		mp2, _ := Lower(ast)
		Optimize(mp2, level)
		if err := mp2.Verify(); err != nil {
			t.Fatalf("%v: optimized MIR invalid: %v", level, err)
		}
	}
}

func TestUnreachableCodeAfterReturn(t *testing.T) {
	expectOut(t, `
int out[1];
int f() { return 1; out[0] = 99; return 2; }
int main() { out[0] = f(); return 0; }
`, []uint32{1})
}

func TestDeepExpressionSpilling(t *testing.T) {
	// Force more live values than there are allocatable registers.
	expectOut(t, `
int out[1];
int main() {
    int a=1,b=2,c=3,d=4,e=5,f=6,g=7,h=8,i=9,j=10,k=11,l=12;
    out[0] = (a+b)*(c+d)+(e+f)*(g+h)+(i+j)*(k+l)
           + a*b + c*d + e*f + g*h + i*j + k*l;
    return 0;
}
`, []uint32{uint32(1*2 + 3*4 + 5*6 + 7*8 + 9*10 + 11*12 +
		(1+2)*(3+4) + (5+6)*(7+8) + (9+10)*(11+12))})
}
