package mcc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Interp is a reference interpreter for MIR programs. It exists for
// differential testing: the same source can be executed (a) here on the
// unoptimized MIR, (b) here on the optimized MIR, and (c) through
// register allocation, codegen, layout and the board simulator — any
// disagreement pinpoints the guilty stage.
//
// Soft-float runtime calls are executed natively (Go float32 arithmetic),
// which also cross-checks internal/softfloat's bit-twiddling from a
// second, independent direction.
type Interp struct {
	prog *MProgram

	mem        []byte
	globalAddr map[string]uint32
	sp         uint32 // bump allocator for frames, growing downward

	// MaxSteps bounds execution (default 50 million).
	MaxSteps uint64
	steps    uint64
}

const (
	interpMemSize    = 1 << 20
	interpGlobalBase = 0x1000
)

// NewInterp prepares an interpreter with globals laid out and initialized.
func NewInterp(p *MProgram) (*Interp, error) {
	it := &Interp{
		prog:       p,
		mem:        make([]byte, interpMemSize),
		globalAddr: make(map[string]uint32),
		sp:         interpMemSize,
	}
	addr := uint32(interpGlobalBase)
	for _, g := range p.Globals {
		it.globalAddr[g.Name] = addr
		gl, err := lowerGlobal(g)
		if err != nil {
			return nil, err
		}
		copy(it.mem[addr:], gl.Init)
		addr += uint32(g.Type.ByteSize())
		addr = (addr + 3) &^ 3
	}
	if addr >= interpMemSize/2 {
		return nil, fmt.Errorf("mcc: interp: globals too large")
	}
	return it, nil
}

// Run executes main and returns nil on success.
func (it *Interp) Run() error {
	if it.MaxSteps == 0 {
		it.MaxSteps = 50_000_000
	}
	it.steps = 0
	main := it.prog.Func("main")
	if main == nil {
		return fmt.Errorf("mcc: interp: no main")
	}
	_, err := it.call(main, nil)
	return err
}

// ReadGlobal copies n bytes of a global after a run.
func (it *Interp) ReadGlobal(name string, n int) ([]byte, error) {
	a, ok := it.globalAddr[name]
	if !ok {
		return nil, fmt.Errorf("mcc: interp: unknown global %q", name)
	}
	out := make([]byte, n)
	copy(out, it.mem[a:])
	return out, nil
}

// ReadGlobalWords reads n little-endian words of a global.
func (it *Interp) ReadGlobalWords(name string, n int) ([]uint32, error) {
	b, err := it.ReadGlobal(name, 4*n)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out, nil
}

func (it *Interp) call(f *MFunc, args []uint32) (uint32, error) {
	// Frame: slot storage carved from the bump stack.
	frameSize := uint32(0)
	slotAddr := make([]uint32, len(f.SlotSizes))
	for i, sz := range f.SlotSizes {
		frameSize += uint32((sz + 3) &^ 3)
		_ = i
	}
	if it.sp < frameSize+4096 {
		return 0, fmt.Errorf("mcc: interp: stack overflow in %s", f.Name)
	}
	it.sp -= frameSize
	base := it.sp
	{
		off := uint32(0)
		for i, sz := range f.SlotSizes {
			slotAddr[i] = base + off
			off += uint32((sz + 3) &^ 3)
		}
		// Zero the frame (locals are not guaranteed zero in C, but our
		// lowering never reads uninitialized slots; zeroing keeps runs
		// deterministic).
		for i := base; i < base+frameSize; i++ {
			it.mem[i] = 0
		}
	}
	defer func() { it.sp += frameSize }()

	regs := make([]uint32, f.NumVRegs)
	for i, pr := range f.ParamRegs {
		if i < len(args) {
			regs[pr] = args[i]
		}
	}

	if len(f.Blocks) == 0 {
		return 0, fmt.Errorf("mcc: interp: empty function %s", f.Name)
	}
	blk := f.Blocks[0]
	byLabel := make(map[string]*MBlock, len(f.Blocks))
	for _, b := range f.Blocks {
		byLabel[b.Label] = b
	}

	for {
		var next string
		for i := range blk.Ins {
			in := &blk.Ins[i]
			it.steps++
			if it.steps > it.MaxSteps {
				return 0, fmt.Errorf("mcc: interp: step limit exceeded in %s", f.Name)
			}
			switch in.Op {
			case MConst:
				regs[in.Dst] = uint32(in.Imm)
			case MMov:
				regs[in.Dst] = regs[in.A]
			case MAdd:
				regs[in.Dst] = regs[in.A] + regs[in.B]
			case MSub:
				regs[in.Dst] = regs[in.A] - regs[in.B]
			case MMul:
				regs[in.Dst] = regs[in.A] * regs[in.B]
			case MSDiv:
				a, b := int32(regs[in.A]), int32(regs[in.B])
				switch {
				case b == 0:
					regs[in.Dst] = 0
				case a == -1<<31 && b == -1:
					regs[in.Dst] = uint32(a)
				default:
					regs[in.Dst] = uint32(a / b)
				}
			case MUDiv:
				if regs[in.B] == 0 {
					regs[in.Dst] = 0
				} else {
					regs[in.Dst] = regs[in.A] / regs[in.B]
				}
			case MSRem:
				a, b := int32(regs[in.A]), int32(regs[in.B])
				switch {
				case b == 0:
					regs[in.Dst] = regs[in.A]
				case a == -1<<31 && b == -1:
					regs[in.Dst] = 0
				default:
					regs[in.Dst] = uint32(a % b)
				}
			case MURem:
				if regs[in.B] == 0 {
					regs[in.Dst] = regs[in.A]
				} else {
					regs[in.Dst] = regs[in.A] % regs[in.B]
				}
			case MAnd:
				regs[in.Dst] = regs[in.A] & regs[in.B]
			case MOr:
				regs[in.Dst] = regs[in.A] | regs[in.B]
			case MXor:
				regs[in.Dst] = regs[in.A] ^ regs[in.B]
			case MShl:
				s := regs[in.B] & 0xFF
				if s >= 32 {
					regs[in.Dst] = 0
				} else {
					regs[in.Dst] = regs[in.A] << s
				}
			case MShr:
				s := regs[in.B] & 0xFF
				if s >= 32 {
					regs[in.Dst] = 0
				} else {
					regs[in.Dst] = regs[in.A] >> s
				}
			case MSar:
				s := regs[in.B] & 0xFF
				if s >= 32 {
					s = 31
				}
				regs[in.Dst] = uint32(int32(regs[in.A]) >> s)
			case MNeg:
				regs[in.Dst] = -regs[in.A]
			case MNot:
				regs[in.Dst] = ^regs[in.A]
			case MSetCC:
				if in.CC.Eval(regs[in.A], regs[in.B]) {
					regs[in.Dst] = 1
				} else {
					regs[in.Dst] = 0
				}
			case MExt:
				regs[in.Dst] = uint32(extVal(int32(regs[in.A]), in.Width, in.Signed))
			case MLoad:
				v, err := it.load(regs[in.A], in.Width, in.Signed)
				if err != nil {
					return 0, fmt.Errorf("%s/%s: %w", f.Name, blk.Label, err)
				}
				regs[in.Dst] = v
			case MStore:
				if err := it.store(regs[in.A], regs[in.B], in.Width); err != nil {
					return 0, fmt.Errorf("%s/%s: %w", f.Name, blk.Label, err)
				}
			case MAddrG:
				a, ok := it.globalAddr[in.Sym]
				if !ok {
					return 0, fmt.Errorf("mcc: interp: unknown global %q", in.Sym)
				}
				regs[in.Dst] = a
			case MAddrL:
				regs[in.Dst] = slotAddr[in.Imm]
			case MCall:
				vals := make([]uint32, len(in.Args))
				for k, a := range in.Args {
					vals[k] = regs[a]
				}
				ret, err := it.dispatch(in.Sym, vals)
				if err != nil {
					return 0, err
				}
				if in.Dst != NoVReg {
					regs[in.Dst] = ret
				}
			case MJmp:
				next = in.L1
			case MCmpBr:
				if in.CC.Eval(regs[in.A], regs[in.B]) {
					next = in.L1
				} else {
					next = in.L2
				}
			case MRet:
				if in.A != NoVReg {
					return regs[in.A], nil
				}
				return 0, nil
			default:
				return 0, fmt.Errorf("mcc: interp: unhandled %s", in.String())
			}
		}
		if next == "" {
			return 0, fmt.Errorf("mcc: interp: %s/%s fell off block end", f.Name, blk.Label)
		}
		nb, ok := byLabel[next]
		if !ok {
			return 0, fmt.Errorf("mcc: interp: jump to unknown %q", next)
		}
		blk = nb
	}
}

// CallFunction invokes a named MIR function directly with raw 32-bit
// arguments — used by the soft-float conformance tests to drive
// individual runtime routines.
func (it *Interp) CallFunction(name string, args ...uint32) (uint32, error) {
	if it.MaxSteps == 0 {
		it.MaxSteps = 50_000_000
	}
	f := it.prog.Func(name)
	if f == nil {
		return 0, fmt.Errorf("mcc: interp: unknown function %q", name)
	}
	return it.call(f, args)
}

// dispatch calls a user function or a native soft-float builtin.
func (it *Interp) dispatch(name string, args []uint32) (uint32, error) {
	if f := it.prog.Func(name); f != nil {
		return it.call(f, args)
	}
	if fn, ok := floatBuiltins[name]; ok {
		return fn(args), nil
	}
	return 0, fmt.Errorf("mcc: interp: call to unknown function %q", name)
}

// floatBuiltins natively implements the soft-float ABI with Go float32
// arithmetic.
var floatBuiltins = map[string]func([]uint32) uint32{
	FnFAdd: func(a []uint32) uint32 {
		return math.Float32bits(math.Float32frombits(a[0]) + math.Float32frombits(a[1]))
	},
	FnFSub: func(a []uint32) uint32 {
		return math.Float32bits(math.Float32frombits(a[0]) - math.Float32frombits(a[1]))
	},
	FnFMul: func(a []uint32) uint32 {
		return math.Float32bits(math.Float32frombits(a[0]) * math.Float32frombits(a[1]))
	},
	FnFDiv: func(a []uint32) uint32 {
		return math.Float32bits(math.Float32frombits(a[0]) / math.Float32frombits(a[1]))
	},
	FnI2F: func(a []uint32) uint32 {
		return math.Float32bits(float32(int32(a[0])))
	},
	FnUI2F: func(a []uint32) uint32 {
		return math.Float32bits(float32(a[0]))
	},
	FnF2IZ: func(a []uint32) uint32 {
		f := math.Float32frombits(a[0])
		switch {
		case f >= 2147483647:
			return 0x7FFFFFFF
		case f <= -2147483648:
			return 0x80000000
		}
		return uint32(int32(f))
	},
	FnFCmpEq: func(a []uint32) uint32 {
		return b2u32(math.Float32frombits(a[0]) == math.Float32frombits(a[1]))
	},
	FnFCmpLt: func(a []uint32) uint32 {
		return b2u32(math.Float32frombits(a[0]) < math.Float32frombits(a[1]))
	},
	FnFCmpLe: func(a []uint32) uint32 {
		return b2u32(math.Float32frombits(a[0]) <= math.Float32frombits(a[1]))
	},
}

func b2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (it *Interp) load(addr uint32, width int, signed bool) (uint32, error) {
	if addr < interpGlobalBase || int(addr)+width > len(it.mem) {
		return 0, fmt.Errorf("interp load outside memory at %#x", addr)
	}
	var v uint32
	for i := 0; i < width; i++ {
		v |= uint32(it.mem[addr+uint32(i)]) << (8 * i)
	}
	if signed {
		shift := uint(32 - 8*width)
		v = uint32(int32(v<<shift) >> shift)
	}
	return v, nil
}

func (it *Interp) store(addr, val uint32, width int) error {
	if addr < interpGlobalBase || int(addr)+width > len(it.mem) {
		return fmt.Errorf("interp store outside memory at %#x", addr)
	}
	for i := 0; i < width; i++ {
		it.mem[addr+uint32(i)] = byte(val >> (8 * i))
	}
	return nil
}
