package mcc

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// ccToCond maps MIR conditions to ARM condition codes.
func ccToCond(c CC) isa.Cond {
	switch c {
	case CCEq:
		return isa.EQ
	case CCNe:
		return isa.NE
	case CCLt:
		return isa.LT
	case CCLe:
		return isa.LE
	case CCGt:
		return isa.GT
	case CCGe:
		return isa.GE
	case CCULt:
		return isa.CC
	case CCULe:
		return isa.LS
	case CCUGt:
		return isa.HI
	case CCUGe:
		return isa.CS
	}
	panic("mcc: bad cc")
}

// codegen emits one MIR function as an ir.Function.
type codegen struct {
	f     *MFunc
	alloc *Allocation
	out   *ir.Function

	// frame layout (SP-relative byte offsets)
	spillOff []int32
	slotOff  []int32
	frame    int32

	cur *ir.Block
}

// GenFunc lowers an MIR function to machine IR.
func GenFunc(f *MFunc, alloc *Allocation) (*ir.Function, error) {
	cg := &codegen{f: f, alloc: alloc, out: &ir.Function{Name: f.Name}}
	cg.layoutFrame()
	for bi, b := range f.Blocks {
		cg.cur = cg.out.AddBlock(b.Label)
		if bi == 0 {
			cg.prologue()
		}
		next := ""
		if bi+1 < len(f.Blocks) {
			next = f.Blocks[bi+1].Label
		}
		for i := range b.Ins {
			if err := cg.ins(&b.Ins[i], next); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", f.Name, b.Label, err)
			}
		}
	}
	return cg.out, nil
}

func (cg *codegen) layoutFrame() {
	off := int32(0)
	cg.spillOff = make([]int32, cg.alloc.NumSpills)
	for i := range cg.spillOff {
		cg.spillOff[i] = off
		off += 4
	}
	cg.slotOff = make([]int32, len(cg.f.SlotSizes))
	for i, sz := range cg.f.SlotSizes {
		cg.slotOff[i] = off
		off += int32((sz + 3) &^ 3)
	}
	if off%8 != 0 {
		off += 8 - off%8
	}
	cg.frame = off
}

// pushList returns the callee-saved register list plus LR.
func (cg *codegen) pushList() []isa.Reg {
	regs := append([]isa.Reg(nil), cg.alloc.UsedCalleeSaved...)
	return append(regs, isa.LR)
}

func (cg *codegen) prologue() {
	bb := ir.Build(cg.cur)
	bb.Push(cg.pushList()...)
	if cg.frame > 0 {
		bb.SubImm(isa.SP, isa.SP, cg.frame)
	}
	// Move incoming arguments (r0-r3) to their allocated homes.
	for i, pv := range cg.f.ParamRegs {
		src := isa.Reg(i) // r0..r3
		if r, ok := cg.alloc.Reg[pv]; ok {
			bb.Mov(r, src)
		} else if slot, ok := cg.alloc.Spill[pv]; ok {
			bb.Str(src, isa.SP, cg.spillOff[slot])
		}
	}
}

func (cg *codegen) epilogue(bb *ir.BlockBuilder) {
	if cg.frame > 0 {
		bb.AddImm(isa.SP, isa.SP, cg.frame)
	}
	regs := append([]isa.Reg(nil), cg.alloc.UsedCalleeSaved...)
	bb.Pop(append(regs, isa.PC)...)
}

// read ensures the vreg's value is in a register, using scratch when
// spilled, and returns that register.
func (cg *codegen) read(v VReg, scratch isa.Reg) isa.Reg {
	if r, ok := cg.alloc.Reg[v]; ok {
		return r
	}
	slot := cg.alloc.Spill[v]
	ir.Build(cg.cur).Ldr(scratch, isa.SP, cg.spillOff[slot])
	return scratch
}

// dst returns the register to compute a result into, and a commit
// function that stores it back if the vreg is spilled.
func (cg *codegen) dst(v VReg, scratch isa.Reg) (isa.Reg, func()) {
	if r, ok := cg.alloc.Reg[v]; ok {
		return r, func() {}
	}
	slot := cg.alloc.Spill[v]
	off := cg.spillOff[slot]
	return scratch, func() { ir.Build(cg.cur).Str(scratch, isa.SP, off) }
}

func (cg *codegen) ins(in *MIns, next string) error {
	bb := ir.Build(cg.cur)
	switch in.Op {
	case MConst:
		d, commit := cg.dst(in.Dst, isa.R0)
		if in.Imm >= 0 && in.Imm <= 65535 {
			bb.MovImm(d, in.Imm)
		} else {
			bb.LdrConst(d, in.Imm)
		}
		commit()
		return nil

	case MMov:
		a := cg.read(in.A, isa.R0)
		d, commit := cg.dst(in.Dst, isa.R0)
		if d != a {
			bb.Mov(d, a)
		}
		commit()
		return nil

	case MAdd, MSub, MMul, MAnd, MOr, MXor, MShl, MShr, MSar,
		MSDiv, MUDiv:
		a := cg.read(in.A, isa.R0)
		b := cg.read(in.B, isa.R1)
		d, commit := cg.dst(in.Dst, isa.R0)
		op := map[MOp]isa.Op{
			MAdd: isa.ADD, MSub: isa.SUB, MMul: isa.MUL,
			MAnd: isa.AND, MOr: isa.ORR, MXor: isa.EOR,
			MShl: isa.LSL, MShr: isa.LSR, MSar: isa.ASR,
			MSDiv: isa.SDIV, MUDiv: isa.UDIV,
		}[in.Op]
		bb.Op3(op, d, a, b)
		commit()
		return nil

	case MSRem, MURem:
		// rem = a - (a/b)*b; the Cortex-M3 has no remainder instruction.
		a := cg.read(in.A, isa.R0)
		b := cg.read(in.B, isa.R1)
		div := isa.SDIV
		if in.Op == MURem {
			div = isa.UDIV
		}
		d, commit := cg.dst(in.Dst, isa.R2)
		bb.Op3(div, isa.R3, a, b)
		bb.Op3(isa.MUL, isa.R3, isa.R3, b)
		bb.Op3(isa.SUB, d, a, isa.R3)
		commit()
		return nil

	case MNeg:
		a := cg.read(in.A, isa.R0)
		d, commit := cg.dst(in.Dst, isa.R0)
		bb.OpImm(isa.RSB, d, a, 0)
		commit()
		return nil

	case MNot:
		a := cg.read(in.A, isa.R0)
		d, commit := cg.dst(in.Dst, isa.R0)
		cg.cur.Append(isa.Instr{Op: isa.MVN, Rd: d, Rm: a})
		commit()
		return nil

	case MExt:
		a := cg.read(in.A, isa.R0)
		d, commit := cg.dst(in.Dst, isa.R0)
		var op isa.Op
		switch {
		case in.Width == 1 && in.Signed:
			op = isa.SXTB
		case in.Width == 1:
			op = isa.UXTB
		case in.Width == 2 && in.Signed:
			op = isa.SXTH
		default:
			op = isa.UXTH
		}
		cg.cur.Append(isa.Instr{Op: op, Rd: d, Rm: a})
		commit()
		return nil

	case MSetCC:
		a := cg.read(in.A, isa.R0)
		b := cg.read(in.B, isa.R1)
		d, commit := cg.dst(in.Dst, isa.R2)
		bb.Cmp(a, b)
		bb.MovImm(d, 0)
		cond := ccToCond(in.CC)
		cg.cur.Append(isa.Instr{Op: isa.IT, Cond: cond})
		cg.cur.Append(isa.Instr{Op: isa.MOV, Cond: cond, Rd: d, Imm: 1, HasImm: true})
		commit()
		return nil

	case MLoad:
		a := cg.read(in.A, isa.R0)
		d, commit := cg.dst(in.Dst, isa.R1)
		var op isa.Op
		switch {
		case in.Width == 1 && in.Signed:
			op = isa.LDRSB
		case in.Width == 1:
			op = isa.LDRB
		case in.Width == 2 && in.Signed:
			op = isa.LDRSH
		case in.Width == 2:
			op = isa.LDRH
		default:
			op = isa.LDR
		}
		cg.cur.Append(isa.Instr{Op: op, Rd: d, Rn: a, Mode: isa.AddrOffset})
		commit()
		return nil

	case MStore:
		a := cg.read(in.A, isa.R0)
		v := cg.read(in.B, isa.R1)
		var op isa.Op
		switch in.Width {
		case 1:
			op = isa.STRB
		case 2:
			op = isa.STRH
		default:
			op = isa.STR
		}
		cg.cur.Append(isa.Instr{Op: op, Rd: v, Rn: a, Mode: isa.AddrOffset})
		return nil

	case MAddrG:
		d, commit := cg.dst(in.Dst, isa.R0)
		bb.LdrLit(d, in.Sym)
		commit()
		return nil

	case MAddrL:
		d, commit := cg.dst(in.Dst, isa.R0)
		bb.AddImm(d, isa.SP, cg.slotOff[in.Imm])
		commit()
		return nil

	case MCall:
		if len(in.Args) > 4 {
			return fmt.Errorf("call to %s with %d args (max 4)", in.Sym, len(in.Args))
		}
		// Stage arguments: sources live in callee-saved registers or
		// spill slots, so writing r0-r3 in order cannot clobber a source.
		for i, a := range in.Args {
			tgt := isa.Reg(i)
			if r, ok := cg.alloc.Reg[a]; ok {
				if r != tgt {
					bb.Mov(tgt, r)
				}
			} else {
				bb.Ldr(tgt, isa.SP, cg.spillOff[cg.alloc.Spill[a]])
			}
		}
		bb.Bl(in.Sym)
		if in.Dst != NoVReg {
			if r, ok := cg.alloc.Reg[in.Dst]; ok {
				bb.Mov(r, isa.R0)
			} else {
				bb.Str(isa.R0, isa.SP, cg.spillOff[cg.alloc.Spill[in.Dst]])
			}
		}
		return nil

	case MJmp:
		if in.L1 != next {
			bb.B(in.L1)
		}
		return nil

	case MCmpBr:
		a := cg.read(in.A, isa.R0)
		b := cg.read(in.B, isa.R1)
		bb.Cmp(a, b)
		cond := ccToCond(in.CC)
		switch {
		case in.L2 == next:
			bb.Bcond(cond, in.L1)
		case in.L1 == next:
			bb.Bcond(invertCond(cond), in.L2)
		default:
			// Neither target follows: take the conditional branch and
			// fall into a trampoline block that jumps to the false
			// target. The trampoline is appended immediately so it is
			// the next block in layout order.
			bb.Bcond(cond, in.L1)
			tramp := cg.out.AddBlock(cg.cur.Label + "_tr")
			ir.Build(tramp).B(in.L2)
		}
		return nil

	case MRet:
		if in.A != NoVReg {
			a := cg.read(in.A, isa.R0)
			if a != isa.R0 {
				bb.Mov(isa.R0, a)
			}
		}
		cg.epilogue(bb)
		return nil
	}
	return fmt.Errorf("codegen: unhandled %s", in.String())
}

func invertCond(c isa.Cond) isa.Cond { return c.Invert() }
