package mcc

import (
	"fmt"
	"strings"
)

// VReg is a virtual register.
type VReg int

// NoVReg marks an absent operand.
const NoVReg VReg = -1

// MOp is a mid-level IR operation.
type MOp int

// MIR operations. MJmp/MCmpBr/MRet are terminators and appear only as the
// last instruction of a block.
const (
	MConst MOp = iota // Dst = Imm
	MMov              // Dst = A
	MAdd              // Dst = A + B
	MSub              // Dst = A - B
	MMul              // Dst = A * B
	MSDiv             // Dst = A / B (signed)
	MUDiv             // Dst = A / B (unsigned)
	MSRem             // Dst = A % B (signed)
	MURem             // Dst = A % B (unsigned)
	MAnd              // Dst = A & B
	MOr               // Dst = A | B
	MXor              // Dst = A ^ B
	MShl              // Dst = A << B
	MShr              // Dst = A >> B (logical)
	MSar              // Dst = A >> B (arithmetic)
	MNeg              // Dst = -A
	MNot              // Dst = ^A
	MSetCC            // Dst = (A cc B) ? 1 : 0
	MExt              // Dst = extend(A, Width, Signed): value normalization
	MLoad             // Dst = mem[A] (Width, Signed)
	MStore            // mem[A] = B (Width)
	MAddrG            // Dst = &Sym (global, function)
	MAddrL            // Dst = &slot[Imm] (local stack object)
	MCall             // Dst = Sym(Args...); Dst may be NoVReg
	MJmp              // goto L1
	MCmpBr            // if (A cc B) goto L1 else goto L2
	MRet              // return A (or nothing when A == NoVReg)
)

var mopNames = [...]string{
	MConst: "const", MMov: "mov", MAdd: "add", MSub: "sub", MMul: "mul",
	MSDiv: "sdiv", MUDiv: "udiv", MSRem: "srem", MURem: "urem",
	MAnd: "and", MOr: "or", MXor: "xor", MShl: "shl", MShr: "shr",
	MSar: "sar", MNeg: "neg", MNot: "not", MSetCC: "setcc", MExt: "ext",
	MLoad: "load", MStore: "store", MAddrG: "addrg", MAddrL: "addrl",
	MCall: "call", MJmp: "jmp", MCmpBr: "cmpbr", MRet: "ret",
}

func (op MOp) String() string {
	if int(op) < len(mopNames) {
		return mopNames[op]
	}
	return fmt.Sprintf("mop(%d)", int(op))
}

// CC is a comparison condition for MSetCC/MCmpBr.
type CC int

// Comparison conditions. Signedness is encoded in the condition, matching
// the ARM flags the comparison will use.
const (
	CCEq CC = iota
	CCNe
	CCLt  // signed <
	CCLe  // signed <=
	CCGt  // signed >
	CCGe  // signed >=
	CCULt // unsigned <
	CCULe // unsigned <=
	CCUGt // unsigned >
	CCUGe // unsigned >=
)

var ccNames = [...]string{
	CCEq: "eq", CCNe: "ne", CCLt: "lt", CCLe: "le", CCGt: "gt",
	CCGe: "ge", CCULt: "ult", CCULe: "ule", CCUGt: "ugt", CCUGe: "uge",
}

func (c CC) String() string {
	if int(c) < len(ccNames) {
		return ccNames[c]
	}
	return "cc(?)"
}

// Invert returns the negated condition.
func (c CC) Invert() CC {
	switch c {
	case CCEq:
		return CCNe
	case CCNe:
		return CCEq
	case CCLt:
		return CCGe
	case CCLe:
		return CCGt
	case CCGt:
		return CCLe
	case CCGe:
		return CCLt
	case CCULt:
		return CCUGe
	case CCULe:
		return CCUGt
	case CCUGt:
		return CCULe
	case CCUGe:
		return CCULt
	}
	panic("mcc: bad cc")
}

// Eval applies the condition to two 32-bit values.
func (c CC) Eval(a, b uint32) bool {
	sa, sb := int32(a), int32(b)
	switch c {
	case CCEq:
		return a == b
	case CCNe:
		return a != b
	case CCLt:
		return sa < sb
	case CCLe:
		return sa <= sb
	case CCGt:
		return sa > sb
	case CCGe:
		return sa >= sb
	case CCULt:
		return a < b
	case CCULe:
		return a <= b
	case CCUGt:
		return a > b
	case CCUGe:
		return a >= b
	}
	panic("mcc: bad cc")
}

// MIns is one MIR instruction.
type MIns struct {
	Op     MOp
	Dst    VReg
	A, B   VReg
	Imm    int32
	Sym    string
	Width  int  // 1, 2 or 4 for MLoad/MStore/MExt
	Signed bool // for MLoad/MExt
	CC     CC
	Args   []VReg
	L1, L2 string
}

// IsTerm reports terminator instructions.
func (in *MIns) IsTerm() bool {
	return in.Op == MJmp || in.Op == MCmpBr || in.Op == MRet
}

// Uses returns the vregs read by the instruction.
func (in *MIns) Uses() []VReg {
	var out []VReg
	add := func(v VReg) {
		if v != NoVReg {
			out = append(out, v)
		}
	}
	switch in.Op {
	case MConst, MAddrG, MAddrL, MJmp:
	case MCall:
		for _, a := range in.Args {
			add(a)
		}
	case MStore:
		add(in.A)
		add(in.B)
	case MRet:
		add(in.A)
	default:
		add(in.A)
		add(in.B)
	}
	return out
}

// Def returns the vreg written, or NoVReg.
func (in *MIns) Def() VReg {
	switch in.Op {
	case MStore, MJmp, MCmpBr, MRet:
		return NoVReg
	}
	return in.Dst
}

// Pure reports instructions with no side effects (removable when dead).
func (in *MIns) Pure() bool {
	switch in.Op {
	case MStore, MCall, MJmp, MCmpBr, MRet:
		return false
	}
	return true
}

func (in *MIns) String() string {
	v := func(r VReg) string {
		if r == NoVReg {
			return "_"
		}
		return fmt.Sprintf("v%d", r)
	}
	switch in.Op {
	case MConst:
		return fmt.Sprintf("%s = const %d", v(in.Dst), in.Imm)
	case MMov, MNeg, MNot:
		return fmt.Sprintf("%s = %s %s", v(in.Dst), in.Op, v(in.A))
	case MExt:
		sign := "u"
		if in.Signed {
			sign = "s"
		}
		return fmt.Sprintf("%s = ext%s%d %s", v(in.Dst), sign, in.Width, v(in.A))
	case MSetCC:
		return fmt.Sprintf("%s = %s %s %s", v(in.Dst), v(in.A), in.CC, v(in.B))
	case MLoad:
		return fmt.Sprintf("%s = load%d [%s]", v(in.Dst), in.Width, v(in.A))
	case MStore:
		return fmt.Sprintf("store%d [%s] = %s", in.Width, v(in.A), v(in.B))
	case MAddrG:
		return fmt.Sprintf("%s = &%s", v(in.Dst), in.Sym)
	case MAddrL:
		return fmt.Sprintf("%s = &slot%d", v(in.Dst), in.Imm)
	case MCall:
		var args []string
		for _, a := range in.Args {
			args = append(args, v(a))
		}
		return fmt.Sprintf("%s = call %s(%s)", v(in.Dst), in.Sym, strings.Join(args, ", "))
	case MJmp:
		return "jmp " + in.L1
	case MCmpBr:
		return fmt.Sprintf("if %s %s %s goto %s else %s", v(in.A), in.CC, v(in.B), in.L1, in.L2)
	case MRet:
		if in.A == NoVReg {
			return "ret"
		}
		return "ret " + v(in.A)
	default:
		return fmt.Sprintf("%s = %s %s, %s", v(in.Dst), in.Op, v(in.A), v(in.B))
	}
}

// MBlock is a MIR basic block; the last instruction is its terminator.
type MBlock struct {
	Label string
	Ins   []MIns
}

// Term returns the block terminator.
func (b *MBlock) Term() *MIns {
	if len(b.Ins) == 0 {
		return nil
	}
	last := &b.Ins[len(b.Ins)-1]
	if last.IsTerm() {
		return last
	}
	return nil
}

// MFunc is a function in MIR.
type MFunc struct {
	Name     string
	NumParam int
	HasRet   bool
	Blocks   []*MBlock
	NumVRegs int
	// SlotSizes are the byte sizes of addressable stack objects.
	SlotSizes []int
	// ParamRegs[i] is the vreg holding parameter i on entry.
	ParamRegs []VReg
}

// Block returns the block with the given label, or nil.
func (f *MFunc) Block(label string) *MBlock {
	for _, b := range f.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// Succs returns the labels a block can branch to.
func (b *MBlock) Succs() []string {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Op {
	case MJmp:
		return []string{t.L1}
	case MCmpBr:
		return []string{t.L1, t.L2}
	}
	return nil
}

func (f *MFunc) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (%d params, %d vregs)\n", f.Name, f.NumParam, f.NumVRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
		for i := range b.Ins {
			fmt.Fprintf(&sb, "  %s\n", b.Ins[i].String())
		}
	}
	return sb.String()
}

// MProgram is a lowered translation unit.
type MProgram struct {
	Funcs   []*MFunc
	Globals []*VarDecl
	// FloatCalled records which soft-float runtime routines are used.
	FloatCalled map[string]bool
}

// Func returns the function with the given name, or nil.
func (p *MProgram) Func(name string) *MFunc {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Verify checks MIR structural invariants: every block ends in exactly one
// terminator, branch targets resolve, operands are in range.
func (p *MProgram) Verify() error {
	for _, f := range p.Funcs {
		labels := map[string]bool{}
		for _, b := range f.Blocks {
			if labels[b.Label] {
				return fmt.Errorf("mir: %s: duplicate label %s", f.Name, b.Label)
			}
			labels[b.Label] = true
		}
		for _, b := range f.Blocks {
			if b.Term() == nil {
				return fmt.Errorf("mir: %s/%s: missing terminator", f.Name, b.Label)
			}
			for i := range b.Ins {
				in := &b.Ins[i]
				if in.IsTerm() && i != len(b.Ins)-1 {
					return fmt.Errorf("mir: %s/%s: terminator not last", f.Name, b.Label)
				}
				for _, u := range in.Uses() {
					if int(u) >= f.NumVRegs {
						return fmt.Errorf("mir: %s/%s: vreg v%d out of range", f.Name, b.Label, u)
					}
				}
				for _, l := range []string{in.L1, in.L2} {
					if l != "" && (in.Op == MJmp || in.Op == MCmpBr) && !labels[l] {
						return fmt.Errorf("mir: %s/%s: branch to unknown %q", f.Name, b.Label, l)
					}
				}
			}
		}
	}
	return nil
}
