// Package mcc is a from-scratch compiler for a C subset, standing in for
// the GCC 4.8.2 toolchain the paper uses. It compiles BEEBS-style kernels
// to the repository's Thumb-2 subset (internal/isa, internal/ir) at five
// optimization levels (O0, O1, O2, O3, Os), producing the control-flow
// graphs the placement optimization operates on.
//
// The dialect: int/char/short (signed and unsigned), float (lowered to
// soft-float library calls, invisible to the placement pass exactly as
// the paper's statically linked libgcc is), pointers, one-dimensional and
// two-dimensional arrays, global initializers, const (read-only) data,
// the usual statements and operators. No structs, no varargs, at most
// four parameters per function (AAPCS register arguments only).
package mcc

import "fmt"

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokCharLit
	TokString
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	// Val is the numeric value for TokNumber/TokCharLit.
	Val int64
	// IsFloat marks a floating literal; FVal carries its value.
	IsFloat bool
	FVal    float64
	Line    int
	Col     int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "EOF"
	case TokNumber:
		if t.IsFloat {
			return fmt.Sprintf("float(%g)", t.FVal)
		}
		return fmt.Sprintf("num(%d)", t.Val)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"int": true, "char": true, "short": true, "long": true,
	"unsigned": true, "signed": true, "float": true, "void": true,
	"const": true, "static": true,
	"if": true, "else": true, "while": true, "do": true, "for": true,
	"return": true, "break": true, "continue": true,
}

// Pos renders a line:col prefix for diagnostics.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }
