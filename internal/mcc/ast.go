package mcc

import "fmt"

// Type is a (simplified) C type.
type Type struct {
	Kind TypeKind
	// For TInt: Size (1, 2, 4) and Signed.
	Size   int
	Signed bool
	// For TPtr and TArray: element type; for TArray: Len.
	Elem *Type
	Len  int
}

// TypeKind discriminates types.
type TypeKind int

// Type kinds.
const (
	TVoid TypeKind = iota
	TInt
	TFloat
	TPtr
	TArray
)

// Common type singletons.
var (
	TypeVoid   = &Type{Kind: TVoid}
	TypeInt    = &Type{Kind: TInt, Size: 4, Signed: true}
	TypeUInt   = &Type{Kind: TInt, Size: 4, Signed: false}
	TypeChar   = &Type{Kind: TInt, Size: 1, Signed: true}
	TypeUChar  = &Type{Kind: TInt, Size: 1, Signed: false}
	TypeShort  = &Type{Kind: TInt, Size: 2, Signed: true}
	TypeUShort = &Type{Kind: TInt, Size: 2, Signed: false}
	TypeFloat  = &Type{Kind: TFloat, Size: 4}
)

// PtrTo returns a pointer type.
func PtrTo(e *Type) *Type { return &Type{Kind: TPtr, Size: 4, Elem: e} }

// ArrayOf returns an array type.
func ArrayOf(e *Type, n int) *Type { return &Type{Kind: TArray, Elem: e, Len: n} }

// ByteSize returns the storage size of the type.
func (t *Type) ByteSize() int {
	switch t.Kind {
	case TInt, TFloat, TPtr:
		return t.Size
	case TArray:
		return t.Elem.ByteSize() * t.Len
	}
	return 0
}

// IsInteger reports integer-kind types.
func (t *Type) IsInteger() bool { return t.Kind == TInt }

// IsScalar reports types that fit a register.
func (t *Type) IsScalar() bool {
	return t.Kind == TInt || t.Kind == TFloat || t.Kind == TPtr
}

func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TFloat:
		return "float"
	case TInt:
		s := "u"
		if t.Signed {
			s = ""
		}
		switch t.Size {
		case 1:
			return s + "char"
		case 2:
			return s + "short"
		default:
			return s + "int"
		}
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	}
	return "?"
}

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TInt:
		return t.Size == u.Size && t.Signed == u.Signed
	case TPtr:
		return t.Elem.Equal(u.Elem)
	case TArray:
		return t.Len == u.Len && t.Elem.Equal(u.Elem)
	}
	return true
}

// ---- Expressions ----

// Expr is an expression node. Sema fills Type.
type Expr interface {
	exprNode()
	TypeOf() *Type
}

type exprBase struct{ T *Type }

func (e *exprBase) exprNode()     {}
func (e *exprBase) TypeOf() *Type { return e.T }

// IntLit is an integer constant.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a float constant.
type FloatLit struct {
	exprBase
	Val float64
}

// VarRef names a variable (local, param or global).
type VarRef struct {
	exprBase
	Name string
	// Sym is resolved by sema.
	Sym *Symbol
}

// Unary is op expr: - ! ~ * (deref) & (addr) ++ -- (prefix when Post false).
type Unary struct {
	exprBase
	Op   string
	X    Expr
	Post bool // post-increment/decrement
}

// Binary is a binary operation (arithmetic, comparison, logic).
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Assign is L = R, or compound (op non-empty: "+"", "-", ...).
type Assign struct {
	exprBase
	Op   string // "" for plain assignment
	L, R Expr
}

// Cond is c ? a : b.
type Cond struct {
	exprBase
	C, A, B Expr
}

// Call is a function call.
type Call struct {
	exprBase
	Name string
	Args []Expr
	// Fn is resolved by sema.
	Fn *FuncDecl
}

// Index is a[i].
type Index struct {
	exprBase
	Arr, Idx Expr
}

// Cast is (type)expr.
type Cast struct {
	exprBase
	X Expr
}

// ---- Statements ----

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

type stmtBase struct{}

func (stmtBase) stmtNode() {}

// Block is { ... }.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

// DeclStmt declares local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// If statement.
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhile loop.
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// For loop.
type For struct {
	stmtBase
	Init Stmt // may be nil (DeclStmt or ExprStmt)
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
}

// Return statement.
type Return struct {
	stmtBase
	X Expr // may be nil
}

// Break statement.
type Break struct{ stmtBase }

// Continue statement.
type Continue struct{ stmtBase }

// ---- Declarations ----

// VarDecl declares one variable (global or local).
type VarDecl struct {
	Name  string
	Type  *Type
	Const bool
	// Init is the scalar initializer, or nil.
	Init Expr
	// InitList is the brace initializer for arrays (possibly nested for
	// 2-D arrays), or nil.
	InitList []Expr
	// Sym is resolved by sema.
	Sym *Symbol
}

// FuncDecl declares or defines a function.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*VarDecl
	Body   *Block // nil for a prototype
}

// Program is a parsed translation unit.
type SourceProgram struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Symbol is a resolved name.
type Symbol struct {
	Name   string
	Type   *Type
	Global bool
	Const  bool
	// Param index (0-3) when IsParam.
	IsParam  bool
	ParamIdx int
	// Local slot id assigned by sema (unique per function).
	LocalID int
}
