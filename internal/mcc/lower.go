package mcc

import "fmt"

// Soft-float runtime routine names (AEABI style). These are provided by
// internal/softfloat as library functions the placement optimizer cannot
// see — reproducing the paper's statically-linked-libgcc limitation.
const (
	FnFAdd   = "__aeabi_fadd"
	FnFSub   = "__aeabi_fsub"
	FnFMul   = "__aeabi_fmul"
	FnFDiv   = "__aeabi_fdiv"
	FnI2F    = "__aeabi_i2f"
	FnUI2F   = "__aeabi_ui2f"
	FnF2IZ   = "__aeabi_f2iz"
	FnFCmpEq = "__aeabi_fcmpeq"
	FnFCmpLt = "__aeabi_fcmplt"
	FnFCmpLe = "__aeabi_fcmple"
)

// lowerer translates one checked function to MIR.
type lowerer struct {
	prog *MProgram
	fn   *MFunc

	cur *MBlock

	// locals maps symbols to their storage.
	vregOf map[*Symbol]VReg
	slotOf map[*Symbol]int

	addrTaken map[*Symbol]bool

	breakLbl    []string
	continueLbl []string
	labelSeq    int
}

// Lower translates the whole checked program to MIR.
func Lower(src *SourceProgram) (*MProgram, error) {
	mp := &MProgram{FloatCalled: map[string]bool{}}
	mp.Globals = src.Globals
	for _, f := range src.Funcs {
		if f.Body == nil {
			continue
		}
		lf, err := lowerFunc(mp, f)
		if err != nil {
			return nil, err
		}
		mp.Funcs = append(mp.Funcs, lf)
	}
	if err := mp.Verify(); err != nil {
		return nil, err
	}
	return mp, nil
}

func lowerFunc(mp *MProgram, f *FuncDecl) (*MFunc, error) {
	lw := &lowerer{
		prog: mp,
		fn: &MFunc{
			Name:     f.Name,
			NumParam: len(f.Params),
			HasRet:   f.Ret.Kind != TVoid,
		},
		vregOf:    map[*Symbol]VReg{},
		slotOf:    map[*Symbol]int{},
		addrTaken: map[*Symbol]bool{},
	}
	collectAddrTaken(f.Body, lw.addrTaken)

	entry := lw.newBlock("entry")
	lw.cur = entry

	for _, p := range f.Params {
		v := lw.newVReg()
		lw.fn.ParamRegs = append(lw.fn.ParamRegs, v)
		if lw.addrTaken[p.Sym] {
			slot := lw.newSlot(4)
			lw.slotOf[p.Sym] = slot
			addr := lw.newVReg()
			lw.emit(MIns{Op: MAddrL, Dst: addr, Imm: int32(slot)})
			lw.emit(MIns{Op: MStore, A: addr, B: v, Width: 4})
		} else {
			lw.vregOf[p.Sym] = v
		}
	}

	if err := lw.stmt(f.Body); err != nil {
		return nil, err
	}
	// Implicit return at the end.
	if lw.cur != nil && lw.cur.Term() == nil {
		if lw.fn.HasRet {
			z := lw.constV(0)
			lw.emit(MIns{Op: MRet, A: z})
		} else {
			lw.emit(MIns{Op: MRet, A: NoVReg})
		}
	}
	pruneUnreachable(lw.fn)
	return lw.fn, nil
}

// pruneUnreachable drops blocks not reachable from the entry (created by
// code after return/break/continue).
func pruneUnreachable(f *MFunc) {
	if len(f.Blocks) == 0 {
		return
	}
	byLabel := map[string]*MBlock{}
	for _, b := range f.Blocks {
		byLabel[b.Label] = b
	}
	seen := map[*MBlock]bool{f.Blocks[0]: true}
	work := []*MBlock{f.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs() {
			t := byLabel[s]
			if t != nil && !seen[t] {
				seen[t] = true
				work = append(work, t)
			}
		}
	}
	var kept []*MBlock
	for _, b := range f.Blocks {
		if seen[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
}

func collectAddrTaken(s Stmt, out map[*Symbol]bool) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *Unary:
			if x.Op == "&" {
				if v, ok := x.X.(*VarRef); ok {
					out[v.Sym] = true
				}
			}
			walkExpr(x.X)
		case *Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Assign:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Cond:
			walkExpr(x.C)
			walkExpr(x.A)
			walkExpr(x.B)
		case *Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *Index:
			walkExpr(x.Arr)
			walkExpr(x.Idx)
		case *Cast:
			walkExpr(x.X)
		}
	}
	var walk func(Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, t := range st.Stmts {
				walk(t)
			}
		case *ExprStmt:
			walkExpr(st.X)
		case *DeclStmt:
			for _, d := range st.Decls {
				if d.Init != nil {
					walkExpr(d.Init)
				}
			}
		case *If:
			walkExpr(st.Cond)
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *While:
			walkExpr(st.Cond)
			walk(st.Body)
		case *DoWhile:
			walk(st.Body)
			walkExpr(st.Cond)
		case *For:
			if st.Init != nil {
				walk(st.Init)
			}
			if st.Cond != nil {
				walkExpr(st.Cond)
			}
			if st.Post != nil {
				walkExpr(st.Post)
			}
			walk(st.Body)
		case *Return:
			if st.X != nil {
				walkExpr(st.X)
			}
		}
	}
	walk(s)
}

func (lw *lowerer) newVReg() VReg {
	v := VReg(lw.fn.NumVRegs)
	lw.fn.NumVRegs++
	return v
}

func (lw *lowerer) newSlot(size int) int {
	lw.fn.SlotSizes = append(lw.fn.SlotSizes, size)
	return len(lw.fn.SlotSizes) - 1
}

func (lw *lowerer) newBlock(hint string) *MBlock {
	lbl := fmt.Sprintf("%s_%s%d", lw.fn.Name, hint, lw.labelSeq)
	lw.labelSeq++
	b := &MBlock{Label: lbl}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

func (lw *lowerer) emit(in MIns) {
	lw.cur.Ins = append(lw.cur.Ins, in)
}

func (lw *lowerer) constV(v int32) VReg {
	d := lw.newVReg()
	lw.emit(MIns{Op: MConst, Dst: d, Imm: v})
	return d
}

// setCur switches emission to a block, adding a jump from the previous
// block when it lacks a terminator.
func (lw *lowerer) seal(next *MBlock) {
	if lw.cur != nil && lw.cur.Term() == nil {
		lw.emit(MIns{Op: MJmp, L1: next.Label})
	}
	lw.cur = next
}

// ---- statements ----

func (lw *lowerer) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		for _, t := range st.Stmts {
			if err := lw.stmt(t); err != nil {
				return err
			}
		}
		return nil
	case *ExprStmt:
		_, err := lw.expr(st.X)
		return err
	case *DeclStmt:
		for _, d := range st.Decls {
			if err := lw.localDecl(d); err != nil {
				return err
			}
		}
		return nil
	case *If:
		thenB := lw.newBlock("then")
		endB := lw.newBlock("endif")
		elseB := endB
		if st.Else != nil {
			elseB = lw.newBlock("else")
		}
		if err := lw.cond(st.Cond, thenB.Label, elseB.Label); err != nil {
			return err
		}
		lw.cur = thenB
		if err := lw.stmt(st.Then); err != nil {
			return err
		}
		lw.seal(endB)
		if st.Else != nil {
			lw.cur = elseB
			if err := lw.stmt(st.Else); err != nil {
				return err
			}
			lw.seal(endB)
		}
		lw.cur = endB
		return nil
	case *While:
		head := lw.newBlock("while")
		body := lw.newBlock("body")
		end := lw.newBlock("endwhile")
		lw.seal(head)
		if err := lw.cond(st.Cond, body.Label, end.Label); err != nil {
			return err
		}
		lw.cur = body
		lw.breakLbl = append(lw.breakLbl, end.Label)
		lw.continueLbl = append(lw.continueLbl, head.Label)
		err := lw.stmt(st.Body)
		lw.breakLbl = lw.breakLbl[:len(lw.breakLbl)-1]
		lw.continueLbl = lw.continueLbl[:len(lw.continueLbl)-1]
		if err != nil {
			return err
		}
		lw.seal(head)
		lw.fn.Blocks = moveBlockAfter(lw.fn.Blocks, end)
		lw.cur = end
		return nil
	case *DoWhile:
		body := lw.newBlock("do")
		end := lw.newBlock("enddo")
		lw.seal(body)
		lw.breakLbl = append(lw.breakLbl, end.Label)
		lw.continueLbl = append(lw.continueLbl, body.Label)
		err := lw.stmt(st.Body)
		lw.breakLbl = lw.breakLbl[:len(lw.breakLbl)-1]
		lw.continueLbl = lw.continueLbl[:len(lw.continueLbl)-1]
		if err != nil {
			return err
		}
		if lw.cur.Term() == nil {
			if err := lw.cond(st.Cond, body.Label, end.Label); err != nil {
				return err
			}
		}
		lw.fn.Blocks = moveBlockAfter(lw.fn.Blocks, end)
		lw.cur = end
		return nil
	case *For:
		if st.Init != nil {
			if err := lw.stmt(st.Init); err != nil {
				return err
			}
		}
		head := lw.newBlock("for")
		body := lw.newBlock("body")
		post := lw.newBlock("post")
		end := lw.newBlock("endfor")
		lw.seal(head)
		if st.Cond != nil {
			if err := lw.cond(st.Cond, body.Label, end.Label); err != nil {
				return err
			}
		} else {
			lw.emit(MIns{Op: MJmp, L1: body.Label})
		}
		lw.cur = body
		lw.breakLbl = append(lw.breakLbl, end.Label)
		lw.continueLbl = append(lw.continueLbl, post.Label)
		err := lw.stmt(st.Body)
		lw.breakLbl = lw.breakLbl[:len(lw.breakLbl)-1]
		lw.continueLbl = lw.continueLbl[:len(lw.continueLbl)-1]
		if err != nil {
			return err
		}
		lw.seal(post)
		lw.cur = post
		if st.Post != nil {
			if _, err := lw.expr(st.Post); err != nil {
				return err
			}
		}
		lw.emit(MIns{Op: MJmp, L1: head.Label})
		lw.fn.Blocks = moveBlockAfter(lw.fn.Blocks, end)
		lw.cur = end
		return nil
	case *Return:
		if st.X == nil {
			lw.emit(MIns{Op: MRet, A: NoVReg})
		} else {
			v, err := lw.expr(st.X)
			if err != nil {
				return err
			}
			lw.emit(MIns{Op: MRet, A: v})
		}
		// Code after return in the same block is unreachable; open a fresh
		// block so further lowering has somewhere to go.
		lw.cur = lw.newBlock("dead")
		return nil
	case *Break:
		lw.emit(MIns{Op: MJmp, L1: lw.breakLbl[len(lw.breakLbl)-1]})
		lw.cur = lw.newBlock("dead")
		return nil
	case *Continue:
		lw.emit(MIns{Op: MJmp, L1: lw.continueLbl[len(lw.continueLbl)-1]})
		lw.cur = lw.newBlock("dead")
		return nil
	}
	return fmt.Errorf("mcc: lower: unknown statement %T", s)
}

// moveBlockAfter moves b to the end of the block list, keeping source
// order natural (loop exits come after the loop body).
func moveBlockAfter(blocks []*MBlock, b *MBlock) []*MBlock {
	out := blocks[:0]
	for _, x := range blocks {
		if x != b {
			out = append(out, x)
		}
	}
	return append(out, b)
}

func (lw *lowerer) localDecl(d *VarDecl) error {
	sym := d.Sym
	switch {
	case sym.Type.Kind == TArray:
		slot := lw.newSlot(sym.Type.ByteSize())
		lw.slotOf[sym] = slot
		return nil
	case lw.addrTaken[sym]:
		slot := lw.newSlot(4)
		lw.slotOf[sym] = slot
		if d.Init != nil {
			v, err := lw.expr(d.Init)
			if err != nil {
				return err
			}
			addr := lw.newVReg()
			lw.emit(MIns{Op: MAddrL, Dst: addr, Imm: int32(slot)})
			lw.emit(MIns{Op: MStore, A: addr, B: v, Width: widthOf(sym.Type)})
		}
		return nil
	default:
		v := lw.newVReg()
		lw.vregOf[sym] = v
		if d.Init != nil {
			iv, err := lw.expr(d.Init)
			if err != nil {
				return err
			}
			iv = lw.normalize(iv, sym.Type)
			lw.emit(MIns{Op: MMov, Dst: v, A: iv})
		} else {
			lw.emit(MIns{Op: MConst, Dst: v, Imm: 0})
		}
		return nil
	}
}

func widthOf(t *Type) int {
	if t.Kind == TInt {
		return t.Size
	}
	return 4
}

// normalize truncates/extends a value to a sub-int type's range when it
// will live in a full-width vreg.
func (lw *lowerer) normalize(v VReg, t *Type) VReg {
	if t.Kind == TInt && t.Size < 4 {
		d := lw.newVReg()
		lw.emit(MIns{Op: MExt, Dst: d, A: v, Width: t.Size, Signed: t.Signed})
		return d
	}
	return v
}
