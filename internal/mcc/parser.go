package mcc

import "fmt"

// Parser is a recursive-descent parser for the mcc dialect.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a translation unit.
func Parse(src string) (*SourceProgram, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.program()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) is(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) isPunct(text string) bool   { return p.is(TokPunct, text) }
func (p *Parser) isKeyword(text string) bool { return p.is(TokKeyword, text) }

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.is(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) (Token, error) {
	if p.is(kind, text) {
		return p.next(), nil
	}
	return Token{}, fmt.Errorf("mcc: %s: expected %q, found %s", p.cur().Pos(), text, p.cur())
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("mcc: %s: %s", p.cur().Pos(), fmt.Sprintf(format, args...))
}

// program := (funcDecl | varDecl)*
func (p *Parser) program() (*SourceProgram, error) {
	prog := &SourceProgram{}
	for !p.is(TokEOF, "") {
		isConst := false
		for p.isKeyword("const") || p.isKeyword("static") {
			if p.cur().Text == "const" {
				isConst = true
			}
			p.next()
		}
		base, err := p.typeName()
		if err != nil {
			return nil, err
		}
		// Allow const after the type too.
		for p.isKeyword("const") {
			isConst = true
			p.next()
		}
		// Pointers belong to the declarator.
		declType := base
		for p.accept(TokPunct, "*") {
			declType = PtrTo(declType)
		}
		nameTok, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			fn, err := p.funcDecl(declType, nameTok.Text)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		decls, err := p.finishVarDecl(base, declType, nameTok.Text, isConst)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, decls...)
	}
	return prog, nil
}

// typeName := ("unsigned"|"signed")? ("int"|"char"|"short"|"long")* | "float" | "void"
func (p *Parser) typeName() (*Type, error) {
	if !p.is(TokKeyword, "") {
		return nil, p.errorf("expected type name, found %s", p.cur())
	}
	signed := true
	sawSign := false
	sawBase := ""
	for p.is(TokKeyword, "") {
		switch p.cur().Text {
		case "unsigned":
			signed = false
			sawSign = true
			p.next()
		case "signed":
			signed = true
			sawSign = true
			p.next()
		case "int", "char", "short", "long":
			if sawBase != "" && !(sawBase == "long" && p.cur().Text == "int") &&
				!(sawBase == "short" && p.cur().Text == "int") {
				return nil, p.errorf("unexpected %q in type", p.cur().Text)
			}
			if sawBase == "" {
				sawBase = p.cur().Text
			}
			p.next()
		case "float":
			if sawSign || sawBase != "" {
				return nil, p.errorf("cannot combine float with other specifiers")
			}
			p.next()
			return TypeFloat, nil
		case "void":
			if sawSign || sawBase != "" {
				return nil, p.errorf("cannot combine void with other specifiers")
			}
			p.next()
			return TypeVoid, nil
		default:
			goto done
		}
	}
done:
	if sawBase == "" && !sawSign {
		return nil, p.errorf("expected type name")
	}
	switch sawBase {
	case "char":
		if signed {
			return TypeChar, nil
		}
		return TypeUChar, nil
	case "short":
		if signed {
			return TypeShort, nil
		}
		return TypeUShort, nil
	default: // int, long, bare signed/unsigned
		if signed {
			return TypeInt, nil
		}
		return TypeUInt, nil
	}
}

// finishVarDecl parses the remainder of a variable declaration after the
// first declarator's name. base is the undecorated type (for subsequent
// declarators); first is the (possibly pointered) type of the first.
func (p *Parser) finishVarDecl(base, first *Type, firstName string, isConst bool) ([]*VarDecl, error) {
	var out []*VarDecl
	typ, name := first, firstName
	for {
		d := &VarDecl{Name: name, Type: typ, Const: isConst}
		// Array suffixes.
		var dims []int
		for p.accept(TokPunct, "[") {
			n, err := p.expect(TokNumber, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			dims = append(dims, int(n.Val))
		}
		for i := len(dims) - 1; i >= 0; i-- {
			d.Type = ArrayOf(d.Type, dims[i])
		}
		if p.accept(TokPunct, "=") {
			if p.isPunct("{") {
				lst, err := p.initList()
				if err != nil {
					return nil, err
				}
				d.InitList = lst
			} else {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				d.Init = e
			}
		}
		out = append(out, d)
		if p.accept(TokPunct, ",") {
			typ = base
			for p.accept(TokPunct, "*") {
				typ = PtrTo(typ)
			}
			t, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			name = t.Text
			continue
		}
		break
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return out, nil
}

// initList := '{' (expr|initList) (',' ...)* '}' — nested lists are
// flattened in row-major order (sema validates counts).
func (p *Parser) initList() ([]Expr, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Expr
	for !p.isPunct("}") {
		if p.isPunct("{") {
			inner, err := p.initList()
			if err != nil {
				return nil, err
			}
			out = append(out, inner...)
		} else {
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, "}"); err != nil {
		return nil, err
	}
	return out, nil
}

// funcDecl parses parameters and body.
func (p *Parser) funcDecl(ret *Type, name string) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, Ret: ret}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		if p.isKeyword("void") && p.toks[p.pos+1].Text == ")" {
			p.next()
		} else {
			for {
				for p.isKeyword("const") {
					p.next()
				}
				pt, err := p.typeName()
				if err != nil {
					return nil, err
				}
				for p.isKeyword("const") {
					p.next()
				}
				for p.accept(TokPunct, "*") {
					pt = PtrTo(pt)
				}
				nt, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				// Array parameters decay to pointers.
				for p.accept(TokPunct, "[") {
					if p.cur().Kind == TokNumber {
						p.next()
					}
					if _, err := p.expect(TokPunct, "]"); err != nil {
						return nil, err
					}
					pt = PtrTo(pt)
				}
				fn.Params = append(fn.Params, &VarDecl{Name: nt.Text, Type: pt})
				if !p.accept(TokPunct, ",") {
					break
				}
			}
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if p.accept(TokPunct, ";") {
		return fn, nil // prototype
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) block() (*Block, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.isPunct("}") {
		if p.is(TokEOF, "") {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *Parser) isTypeStart() bool {
	if !p.is(TokKeyword, "") {
		return false
	}
	switch p.cur().Text {
	case "int", "char", "short", "long", "unsigned", "signed", "float", "void", "const", "static":
		return true
	}
	return false
}

func (p *Parser) stmt() (Stmt, error) {
	switch {
	case p.isPunct("{"):
		return p.block()
	case p.isTypeStart():
		return p.localDecl()
	case p.isKeyword("if"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(TokKeyword, "else") {
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els}, nil
	case p.isKeyword("while"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil
	case p.isKeyword("do"):
		p.next()
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "while"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &DoWhile{Body: body, Cond: cond}, nil
	case p.isKeyword("for"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		f := &For{}
		if !p.isPunct(";") {
			if p.isTypeStart() {
				d, err := p.localDecl()
				if err != nil {
					return nil, err
				}
				f.Init = d
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				f.Init = &ExprStmt{X: e}
				if _, err := p.expect(TokPunct, ";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.next()
		}
		if !p.isPunct(";") {
			c, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Cond = c
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Post = e
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		f.Body = body
		return f, nil
	case p.isKeyword("return"):
		p.next()
		r := &Return{}
		if !p.isPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = e
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return r, nil
	case p.isKeyword("break"):
		p.next()
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Break{}, nil
	case p.isKeyword("continue"):
		p.next()
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Continue{}, nil
	case p.isPunct(";"):
		p.next()
		return &Block{}, nil
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, nil
	}
}

// localDecl parses a local variable declaration statement (consumes ';').
func (p *Parser) localDecl() (Stmt, error) {
	isConst := false
	for p.isKeyword("const") || p.isKeyword("static") {
		if p.cur().Text == "const" {
			isConst = true
		}
		p.next()
	}
	base, err := p.typeName()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("const") {
		isConst = true
		p.next()
	}
	typ := base
	for p.accept(TokPunct, "*") {
		typ = PtrTo(typ)
	}
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	decls, err := p.finishVarDecl(base, typ, nameTok.Text, isConst)
	if err != nil {
		return nil, err
	}
	return &DeclStmt{Decls: decls}, nil
}

// ---- Expressions (precedence climbing) ----

func (p *Parser) expr() (Expr, error) { return p.commaFreeExpr() }

// commaFreeExpr: our dialect has no comma operator; assignment is the top.
func (p *Parser) commaFreeExpr() (Expr, error) { return p.assignExpr() }

func (p *Parser) assignExpr() (Expr, error) {
	l, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=":
			p.next()
			r, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{L: l, R: r}, nil
		case "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
			p.next()
			r, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{Op: t.Text[:len(t.Text)-1], L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) condExpr() (Expr, error) {
	c, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if p.accept(TokPunct, "?") {
		a, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		b, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{C: c, A: a, B: b}, nil
	}
	return c, nil
}

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) binaryExpr(minPrec int) (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return l, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return l, nil
		}
		p.next()
		r, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.Text, L: l, R: r}
	}
}

func (p *Parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.next()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x}, nil
		case "+":
			p.next()
			return p.unaryExpr()
		case "++", "--":
			p.next()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x}, nil
		case "(":
			// Cast or parenthesized expression.
			if p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text != "void" {
				save := p.pos
				p.next()
				typ, err := p.typeName()
				if err == nil {
					for p.accept(TokPunct, "*") {
						typ = PtrTo(typ)
					}
					if p.accept(TokPunct, ")") {
						x, err := p.unaryExpr()
						if err != nil {
							return nil, err
						}
						c := &Cast{X: x}
						c.T = typ
						return c, nil
					}
				}
				p.pos = save
			}
		}
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("["):
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			e = &Index{Arr: e, Idx: idx}
		case p.isPunct("++"), p.isPunct("--"):
			op := p.next().Text
			e = &Unary{Op: op, X: e, Post: true}
		default:
			return e, nil
		}
	}
}

func (p *Parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if t.IsFloat {
			f := &FloatLit{Val: t.FVal}
			f.T = TypeFloat
			return f, nil
		}
		lit := &IntLit{Val: t.Val}
		return lit, nil
	case t.Kind == TokCharLit:
		p.next()
		lit := &IntLit{Val: t.Val}
		return lit, nil
	case t.Kind == TokIdent:
		p.next()
		if p.isPunct("(") {
			p.next()
			call := &Call{Name: t.Text}
			if !p.isPunct(")") {
				for {
					a, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &VarRef{Name: t.Text}, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("unexpected token %s in expression", t)
}
